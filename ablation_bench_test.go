// Ablation benchmarks for the design choices called out in DESIGN.md:
// positional-encoding scheme, pre- vs post-LayerNorm residuals, attention
// head count, n-gram smoothing, PPMI vs raw co-occurrence counts, and
// weight decay for grokking. Each reports the scientific quantity the
// ablation moves.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/ngram"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/transformer"
)

// trainLMOnPCFG trains a small LM and returns held-out loss, shared by the
// architecture ablations.
func trainLMOnPCFG(b *testing.B, cfg transformer.Config, steps int) float64 {
	b.Helper()
	rng := mathx.NewRNG(31)
	lines := corpus.PCFGText(grammar.TinyEnglish(), 800, 10, rng)
	enc := map[string]int{}
	var stream []int
	for _, l := range lines {
		for _, w := range splitFields(l) {
			id, ok := enc[w]
			if !ok {
				id = len(enc)
				enc[w] = id
			}
			stream = append(stream, id)
		}
	}
	cfg.Vocab = len(enc)
	model := transformer.MustNew(cfg, mathx.NewRNG(32))
	cut := len(stream) * 8 / 10
	windows := corpus.MakeWindows(stream[:cut], cfg.Window)
	test := corpus.MakeWindows(stream[cut:], cfg.Window)
	batches := make([]train.Batch, len(windows))
	for i, w := range windows {
		batches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	testB := make([]train.Batch, len(test))
	for i, w := range test {
		testB[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	if _, err := train.Run(model, batches, train.Config{
		Steps: steps, BatchSize: 4, Schedule: train.Constant(0.003),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 33,
	}); err != nil {
		b.Fatal(err)
	}
	return train.MeanLoss(model, testB)
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// BenchmarkAblationPositional compares sinusoidal, learned and no
// positional embeddings on the same LM task.
func BenchmarkAblationPositional(b *testing.B) {
	kinds := map[string]transformer.PosKind{
		"sinusoidal": transformer.PosSinusoidal,
		"learned":    transformer.PosLearned,
		"none":       transformer.PosNone,
	}
	for name, kind := range kinds {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loss := trainLMOnPCFG(b, transformer.Config{
					Dim: 32, Layers: 1, Heads: 2, Window: 16, Pos: kind, Act: nn.GELU,
				}, 150)
				b.ReportMetric(loss, "test-loss")
			}
		})
	}
}

// BenchmarkAblationNorm compares pre-LN (GPT-2/3) with post-LN (original
// transformer) residual ordering.
func BenchmarkAblationNorm(b *testing.B) {
	for _, post := range []bool{false, true} {
		name := "pre-ln"
		if post {
			name = "post-ln"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loss := trainLMOnPCFG(b, transformer.Config{
					Dim: 32, Layers: 2, Heads: 2, Window: 16,
					Pos: transformer.PosLearned, Act: nn.GELU, PostNorm: post,
				}, 150)
				b.ReportMetric(loss, "test-loss")
			}
		})
	}
}

// BenchmarkAblationHeads sweeps the head count H at fixed p (head width
// q = p/H shrinks as H grows — the §6 trade-off).
func BenchmarkAblationHeads(b *testing.B) {
	for _, h := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("H%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loss := trainLMOnPCFG(b, transformer.Config{
					Dim: 32, Layers: 1, Heads: h, Window: 16,
					Pos: transformer.PosLearned, Act: nn.GELU,
				}, 150)
				b.ReportMetric(loss, "test-loss")
			}
		})
	}
}

// BenchmarkAblationSmoothing compares raw MLE, add-k, and interpolated
// n-gram estimators on held-out perplexity.
func BenchmarkAblationSmoothing(b *testing.B) {
	rng := mathx.NewRNG(35)
	lines := corpus.PCFGText(grammar.TinyEnglish(), 800, 10, rng)
	enc := map[string]int{}
	var stream []int
	for _, l := range lines {
		for _, w := range splitFields(l) {
			id, ok := enc[w]
			if !ok {
				id = len(enc)
				enc[w] = id
			}
			stream = append(stream, id)
		}
	}
	cut := len(stream) * 8 / 10
	variants := map[string]func() *ngram.Model{
		"mle": func() *ngram.Model { return ngram.New(3, len(enc)) },
		"addk": func() *ngram.Model {
			m := ngram.New(3, len(enc))
			m.AddK = 0.1
			return m
		},
		"interp": func() *ngram.Model {
			m := ngram.New(3, len(enc))
			m.AddK = 0.05
			m.Interpolation = []float64{0.1, 0.3, 0.6}
			return m
		},
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mk()
				m.Train(stream[:cut])
				b.ReportMetric(m.Perplexity(stream[cut:]), "perplexity")
			}
		})
	}
}

// BenchmarkAblationPPMI compares raw-count vs PPMI co-occurrence embeddings
// on analogy accuracy.
func BenchmarkAblationPPMI(b *testing.B) {
	rng := mathx.NewRNG(36)
	lines := corpus.AnalogyCorpus(4000, rng)
	v := embed.NewVocabulary(lines)
	cooc := embed.Cooccurrence(lines, v, 4)
	quads := embed.StandardQuads()
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(embed.FromMatrix(v, cooc).AnalogyAccuracy(quads), "analogy-acc")
		}
	})
	b.Run("ppmi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(embed.FromMatrix(v, embed.PPMI(cooc)).AnalogyAccuracy(quads), "analogy-acc")
		}
	})
}

// BenchmarkAblationWeightDecay reruns the grokking recipe with and without
// AdamW decay; without decay the test-accuracy rise stalls.
func BenchmarkAblationWeightDecay(b *testing.B) {
	for _, wd := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("wd%.1f", wd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				const modulus = 13
				rng := mathx.NewRNG(13)
				eqs := corpus.ModularAddition(modulus)
				trainEqs, testEqs := corpus.SplitEquations(eqs, 0.5, rng)
				toBatch := func(eqs []corpus.ModEquation) []train.Batch {
					out := make([]train.Batch, len(eqs))
					for i, e := range eqs {
						ids := corpus.EncodeEquation(e, modulus)
						out[i] = train.Batch{Input: ids[:4], Target: []int{-1, -1, -1, ids[4]}}
					}
					return out
				}
				trainB, testB := toBatch(trainEqs), toBatch(testEqs)
				model := transformer.MustNew(transformer.Config{
					Vocab: corpus.ModVocabSize(modulus), Dim: 48, Layers: 1, Heads: 4,
					Window: 8, Pos: transformer.PosLearned, Act: nn.GELU,
				}, mathx.NewRNG(14))
				res, err := train.Run(model, trainB, train.Config{
					Steps: 800, BatchSize: 16, Schedule: train.Constant(0.002),
					Optimizer: train.NewAdam(wd), ClipNorm: 1,
					EvalEvery: 100, EvalTrain: trainB, EvalTest: testB,
					AccuracyPositions: []int{0},
				})
				if err != nil {
					b.Fatal(err)
				}
				last := res.Curve[len(res.Curve)-1]
				b.ReportMetric(last.TestAcc, "final-test-acc")
			}
		})
	}
}
