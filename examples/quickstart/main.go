// Quickstart: train a small transformer language model on a synthetic
// English-like corpus using the public API, inspect its perplexity, and
// sample text with several decoding strategies (the paper's §6 recipe end
// to end).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/llm"
)

func main() {
	lines := llm.SyntheticCorpus(500, 42)
	fmt.Printf("corpus: %d sentences, e.g. %q\n", len(lines), lines[0])

	cfg := llm.DefaultConfig()
	model, curve, err := llm.Train(lines, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: vocab=%d params=%d final loss=%.3f\n",
		model.Tok.VocabSize(), model.Model.NumParameters(), curve.FinalLoss())

	heldOut := llm.SyntheticCorpus(100, 43)
	fmt.Printf("held-out perplexity: %.2f (vocab size %d = upper bound for a clueless model)\n",
		model.Perplexity(heldOut), model.Tok.VocabSize())

	for _, s := range []struct {
		name  string
		strat llm.Strategy
	}{
		{"greedy (beta -> inf)", llm.Greedy()},
		{"temperature 0.8", llm.Temperature(0.8)},
		{"top-k 5", llm.TopK(5, 0.8)},
		{"nucleus 0.9", llm.TopP(0.9, 0.8)},
	} {
		res, err := model.Gen("the king",
			llm.WithMaxTokens(8), llm.WithStrategy(s.strat), llm.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s the king %s\n", s.name+":", res.Text)
	}

	// Streaming: the same generation delivered token by token.
	fmt.Print("streamed:              the king ")
	if _, err := model.Stream(context.Background(), "the king", func(t llm.Token) error {
		fmt.Print(t.Text)
		return nil
	}, llm.WithMaxTokens(8), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(7)); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
