// Analogies: build distributional word embeddings from co-occurrence
// statistics (§5 of the paper) and demonstrate the Eq. 9 linear analogy
// structure — ι(king) − ι(man) + ι(woman) ≈ ι(queen) — including the PCA
// compression showing low-dimensional projections keep the structure.
//
// Run with: go run ./examples/analogies
package main

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/mathx"
)

func main() {
	rng := mathx.NewRNG(4)
	lines := corpus.AnalogyCorpus(4000, rng)
	fmt.Printf("corpus: %d templated sentences\n", len(lines))

	vocab := embed.NewVocabulary(lines)
	cooc := embed.Cooccurrence(lines, vocab, 4)
	embeddings := embed.FromMatrix(vocab, embed.PPMI(cooc))
	fmt.Printf("embeddings: %d words x %d dims (raw PPMI columns)\n",
		vocab.Size(), embeddings.Dim())

	quads := embed.StandardQuads()
	fmt.Printf("\nanalogy accuracy (full dim): %.0f%%\n",
		100*embeddings.AnalogyAccuracy(quads))

	if got, ok := embeddings.Analogy("man", "woman", "king"); ok {
		fmt.Printf("man : woman :: king : %s\n", got)
	}
	if got, ok := embeddings.Analogy("man", "woman", "prince"); ok {
		fmt.Printf("man : woman :: prince : %s\n", got)
	}

	vq, _ := embeddings.Vector("queen")
	fmt.Println("\nnearest neighbours of 'queen':")
	for _, n := range embeddings.Nearest(vq, 4, "queen") {
		fmt.Printf("  %-10s cos=%.3f\n", n.Word, n.Score)
	}

	for _, k := range []int{4, 12, 24} {
		small := embeddings.Compress(k, mathx.NewRNG(5))
		fmt.Printf("\nPCA to %2d dims: analogy accuracy %.0f%%",
			k, 100*small.AnalogyAccuracy(quads))
	}
	fmt.Println("\n\n(the §7 compression point: far fewer dimensions suffice)")
}
