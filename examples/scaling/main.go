// Scaling: a laptop-scale Figure 2 — train a grid of model sizes on a grid
// of dataset sizes, print the held-out losses, and fit the power laws and
// the Eq. 4 joint ansatz. The paper's 12·D·p² Table 1 check is printed
// first.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/scaling"
)

func main() {
	fmt.Println(scaling.FormatTable1(scaling.Table1()))

	cfg := scaling.DefaultSweep()
	fmt.Printf("sweep: dims %v x data %v, %d steps each\n", cfg.Dims, cfg.DataTokens, cfg.Steps)
	points, err := scaling.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scaling.FormatPoints(points))

	fp := scaling.FitLossVsParams(points)
	fd := scaling.FitLossVsData(points)
	joint := scaling.FitJointAnsatz(points)
	fmt.Printf("\nL ~ P^%.3f (R2 %.2f);  L ~ D^%.3f (R2 %.2f)\n", fp.Alpha, fp.R2, fd.Alpha, fd.R2)
	fmt.Printf("Eq. 4: alphaP=%.3f alphaD=%.3f (paper quotes -0.076..-0.095 at GPT scale)\n",
		joint.AlphaP, joint.AlphaD)
}
