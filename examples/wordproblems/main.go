// Wordproblems: the Figure 1 experiment — chain-of-thought training on
// quantitative word problems versus direct-answer training. Shows the exact
// Figure 1 variance problem and its worked solution, then trains two models
// on the running-chain family and compares held-out solve rates.
//
// Run with: go run ./examples/wordproblems
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/eval"
)

func main() {
	// The paper's Figure 1 instance: variance 10 → n=11, variance 16 → m=7.
	fig1 := corpus.VarianceProblem(11, 7)
	fmt.Println("Figure 1 problem:")
	fmt.Println(" ", fig1.Question)
	for _, s := range fig1.Steps {
		fmt.Println("   ", s)
	}
	fmt.Println("  answer:", fig1.Answer)

	fmt.Println("\nchain-of-thought vs direct training on running-chain problems:")
	ex := eval.RunningChainFixture()
	fmt.Println("  example:", ex.Question)
	fmt.Println("  worked: ", ex.Steps, "-> answer", ex.Answer)

	cfg := eval.DefaultCoT()
	fmt.Printf("\ntraining two %d-dim models (%d steps each)...\n", cfg.Dim, cfg.Steps)
	res, err := eval.ChainOfThoughtExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out solve rate WITH chain of thought:    %.0f%%\n", 100*res.CoTAccuracy)
	fmt.Printf("held-out solve rate WITHOUT (direct answer):  %.0f%%\n", 100*res.DirectAccuracy)
	fmt.Println("\npaper shape: worked intermediate steps lift quantitative QA")
	fmt.Println("(Minerva's chain-of-thought prompting, Figure 1 discussion).")
}
