// Grokking: the §4 delayed-generalization phenomenon on modular addition.
// A transformer is trained on a fraction of all a+b≡c (mod p) equations
// with weight decay; train accuracy saturates long before test accuracy
// jumps. The run prints both curves and the measured grokking gap.
//
// Run with: go run ./examples/grokking
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func main() {
	const (
		modulus   = 13
		trainFrac = 0.5
		steps     = 3000
	)
	rng := mathx.NewRNG(13)
	eqs := corpus.ModularAddition(modulus)
	trainEqs, testEqs := corpus.SplitEquations(eqs, trainFrac, rng)
	fmt.Printf("modular addition mod %d: %d train / %d test equations\n",
		modulus, len(trainEqs), len(testEqs))

	toBatch := func(eqs []corpus.ModEquation) []train.Batch {
		out := make([]train.Batch, len(eqs))
		for i, e := range eqs {
			ids := corpus.EncodeEquation(e, modulus)
			tg := []int{-1, -1, -1, ids[4]}
			out[i] = train.Batch{Input: ids[:4], Target: tg}
		}
		return out
	}
	trainB, testB := toBatch(trainEqs), toBatch(testEqs)

	model := transformer.MustNew(transformer.Config{
		Vocab: corpus.ModVocabSize(modulus), Dim: 48, Layers: 1, Heads: 4,
		Window: 8, Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(14))

	res, err := train.Run(model, trainB, train.Config{
		Steps: steps, BatchSize: 16,
		Schedule:  train.Constant(0.002),
		Optimizer: train.NewAdam(0.3), // AdamW: the decay grokking needs
		ClipNorm:  1,
		EvalEvery: 200, EvalTrain: trainB, EvalTest: testB,
		AccuracyPositions: []int{0},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%6s %10s %9s %9s\n", "step", "loss", "trainAcc", "testAcc")
	for _, r := range res.Curve {
		if !math.IsNaN(r.TrainAcc) {
			fmt.Printf("%6d %10.4f %8.1f%% %8.1f%%\n", r.Step, r.TrainLoss, 100*r.TrainAcc, 100*r.TestAcc)
		}
	}
	// At test-suite budgets the model memorizes within ~200 steps while test
	// accuracy keeps climbing thousands of steps later — the delayed-
	// generalization signature. (Full grokking to ~100% test accuracy takes
	// 10^4-10^6 steps in Power et al; we measure the gap at a threshold this
	// budget reaches.)
	trainStep, testStep, gap := train.GrokkingGap(res.Curve, 0.45)
	fmt.Printf("\ntrain acc crossed 45%% at step %d; test at step %d; grokking gap = %d steps\n",
		trainStep, testStep, gap)
	if gap > 0 {
		fmt.Println("delayed generalization observed: memorization precedes generalization.")
	}
}
