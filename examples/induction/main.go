// Induction: the §7 induction-head experiment. A 2-layer transformer is
// trained on sequences whose second half repeats the first; after training,
// per-head induction scores reveal the "A B … A → B" circuit, and ablating
// the top head degrades repeat accuracy.
//
// Run with: go run ./examples/induction
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/transformer"
)

func main() {
	const (
		vocab  = 8
		seqLen = 16
		steps  = 300
	)
	rng := mathx.NewRNG(42)
	model := transformer.MustNew(transformer.Config{
		Vocab: vocab, Dim: 32, Layers: 2, Heads: 2, Window: seqLen,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}, rng)
	seqs := corpus.RepeatedBigramCorpus(60, seqLen, vocab, rng)

	var data []train.Batch
	for _, s := range seqs {
		tg := make([]int, len(s)-1)
		for i := range tg {
			if i+1 >= len(s)/2 {
				tg[i] = s[i+1]
			} else {
				tg[i] = -1
			}
		}
		data = append(data, train.Batch{Input: s[:len(s)-1], Target: tg})
	}

	before := interp.BestHead(interp.ScoreHeads(model, seqs[:20]))
	fmt.Printf("best induction score before training: layer %d head %d = %.3f\n",
		before.Layer, before.Head, before.Score)

	if _, err := train.Run(model, data, train.Config{
		Steps: steps, BatchSize: 4, Schedule: train.Constant(0.002),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 1,
	}); err != nil {
		log.Fatal(err)
	}

	scores := interp.ScoreHeads(model, seqs[:20])
	fmt.Println("\nper-head induction scores after training:")
	for _, s := range scores {
		fmt.Printf("  layer %d head %d: %.3f\n", s.Layer, s.Head, s.Score)
	}
	best := interp.BestHead(scores)
	fmt.Printf("\nrepeat accuracy: %.1f%% (chance %.1f%%)\n",
		100*interp.RepeatAccuracy(model, seqs), 100.0/vocab)

	ab := interp.AblateHead(model, best.Layer, best.Head)
	fmt.Printf("after ablating the top head (layer %d head %d): %.1f%%\n",
		best.Layer, best.Head, 100*interp.RepeatAccuracy(model, seqs))
	ab.Restore()
	fmt.Printf("restored: %.1f%%\n", 100*interp.RepeatAccuracy(model, seqs))
}
