// Othello-probe: the §7 world-model experiment (Li et al's Othello-GPT).
// A transformer is trained only on legal move sequences of a 6×6 Othello
// variant, then linear probes read board-square occupancy out of its
// activations and probe-guided interventions test whether the
// representation is causally used.
//
// Run with: go run ./examples/othello-probe
package main

import (
	"fmt"
	"log"

	"repro/internal/mathx"
	"repro/internal/othello"
	"repro/internal/probe"
)

func main() {
	// Show the substrate first: a random legal game.
	g := othello.RandomGame(6, 10, mathx.NewRNG(1))
	fmt.Println("a random legal opening on the 6x6 board:")
	for i, m := range g.Moves {
		fmt.Printf("  move %d: %s\n", i+1, m.Notation(6))
	}
	fmt.Printf("position after %d moves:\n%s\n", len(g.Moves), g.Final)

	cfg := probe.DefaultOthello()
	fmt.Printf("training a %d-layer transformer on %d random games...\n", cfg.Layers, cfg.Games)
	res, err := probe.RunOthello(cfg)
	if err != nil {
		log.Fatal(err)
	}
	control, err := probe.UntrainedLegalRate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal-move rate:        %.1f%% (untrained control %.1f%%)\n",
		100*res.LegalMoveRate, 100*control)
	fmt.Printf("board-occupancy probe:  %.1f%% (majority baseline %.1f%%)\n",
		100*res.ProbeAccuracy, 100*res.MajorityBaseline)
	fmt.Printf("interventions flipping the predicted move: %.1f%%\n",
		100*res.InterventionFlipRate)
	fmt.Println("\npaper shape: probes beat the baseline -> the move-sequence model")
	fmt.Println("carries an internal (non-linguistic) board representation.")
}
