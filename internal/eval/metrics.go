package eval

import (
	"strings"
)

// The metrics below mirror the HELM-style auxiliary measurements the paper
// mentions in §4 beyond plain accuracy: degenerate repetition, lexical
// diversity, verbatim regurgitation of training data, and benchmark
// contamination (test items leaking into the training set — the §4
// footnote's memorization pitfall).

// RepetitionRate returns the fraction of tokens in text that repeat the
// immediately preceding token — a cheap detector of degenerate loops in
// greedy decoding.
func RepetitionRate(text string) float64 {
	f := strings.Fields(text)
	if len(f) < 2 {
		return 0
	}
	rep := 0
	for i := 1; i < len(f); i++ {
		if f[i] == f[i-1] {
			rep++
		}
	}
	return float64(rep) / float64(len(f)-1)
}

// DistinctN returns the ratio of distinct n-grams to total n-grams in text
// (1.0 = maximally diverse). Returns 1 for texts shorter than n tokens.
func DistinctN(text string, n int) float64 {
	f := strings.Fields(text)
	if len(f) < n || n <= 0 {
		return 1
	}
	seen := map[string]bool{}
	total := 0
	for i := 0; i+n <= len(f); i++ {
		seen[strings.Join(f[i:i+n], " ")] = true
		total++
	}
	return float64(len(seen)) / float64(total)
}

// LongestCommonRun returns the length (in tokens) of the longest contiguous
// token run shared by text and any training line — the regurgitation
// measurement behind HELM's copyright/memorization metrics.
func LongestCommonRun(text string, trainLines []string) int {
	gen := strings.Fields(text)
	best := 0
	for _, line := range trainLines {
		train := strings.Fields(line)
		for i := range gen {
			for j := range train {
				k := 0
				for i+k < len(gen) && j+k < len(train) && gen[i+k] == train[j+k] {
					k++
				}
				if k > best {
					best = k
				}
			}
		}
	}
	return best
}

// ContaminationReport describes benchmark leakage: test items whose full
// question+answer text appears verbatim in the training corpus.
type ContaminationReport struct {
	Contaminated []int // indices of leaked task items
	Rate         float64
}

// DetectContamination checks each task item against the training lines
// (whitespace-normalized substring match of "question answer").
func DetectContamination(task Task, trainLines []string) ContaminationReport {
	norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
	var normLines []string
	for _, l := range trainLines {
		normLines = append(normLines, norm(l))
	}
	rep := ContaminationReport{}
	for i, it := range task.Items {
		needle := norm(it.Question + " " + it.Answer)
		for _, l := range normLines {
			if strings.Contains(l, needle) {
				rep.Contaminated = append(rep.Contaminated, i)
				break
			}
		}
	}
	if len(task.Items) > 0 {
		rep.Rate = float64(len(rep.Contaminated)) / float64(len(task.Items))
	}
	return rep
}

// FilterContaminated returns a copy of the task without the leaked items —
// the mitigation the paper's references prescribe.
func FilterContaminated(task Task, rep ContaminationReport) Task {
	bad := map[int]bool{}
	for _, i := range rep.Contaminated {
		bad[i] = true
	}
	out := Task{Name: task.Name + "-decontaminated"}
	for i, it := range task.Items {
		if !bad[i] {
			out.Items = append(out.Items, it)
		}
	}
	return out
}
