package eval

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tokenizer"
	"repro/internal/train"
	"repro/internal/transformer"
)

// CoTResult compares chain-of-thought and direct-answer training on the
// Figure 1 word-problem family (experiment E3).
type CoTResult struct {
	CoTAccuracy    float64 // held-out solve rate with worked steps in training
	DirectAccuracy float64 // held-out solve rate with answer-only training
}

// CoTConfig sizes the experiment.
type CoTConfig struct {
	TrainProblems int
	TestProblems  int
	Steps         int
	Dim           int
	Layers        int
	Seed          uint64
}

// DefaultCoT returns test-scale settings: the running-chain family, where
// each worked step reuses a small single-op fact table but the direct
// answer requires composing the whole chain in one forward pass.
func DefaultCoT() CoTConfig {
	return CoTConfig{TrainProblems: 400, TestProblems: 50, Steps: 1500, Dim: 48, Layers: 2, Seed: 3}
}

// ChainOfThoughtExperiment trains two identical models on the same
// problems — one seeing worked steps, one seeing only answers — and scores
// held-out solve rates. This reproduces the shape of the paper's Figure 1
// discussion: intermediate reasoning steps measurably improve quantitative
// QA (Minerva's ~50% regime).
func ChainOfThoughtExperiment(cfg CoTConfig) (CoTResult, error) {
	rng := mathx.NewRNG(cfg.Seed)
	const chainSteps = 3
	trainProbs := corpus.RunningChainSet(cfg.TrainProblems, chainSteps, rng)
	testProbs := corpus.RunningChainSet(cfg.TestProblems, chainSteps, rng.Split())

	trainOne := func(withCoT bool) (float64, error) {
		lines := make([]string, len(trainProbs))
		for i, p := range trainProbs {
			lines[i] = p.FullText(withCoT)
		}
		// Include every number token that can occur so held-out problems
		// never hit <unk>.
		vocabLine := make([]string, 0, 10)
		for v := 0; v <= 9; v++ {
			vocabLine = append(vocabLine, numWord(v))
		}
		tok := tokenizer.NewWord(append(append([]string(nil), lines...), strings.Join(vocabLine, " ")))
		// One aligned sequence per problem (question + solution + EOS), so
		// the model always sees complete, position-consistent problems —
		// stream windowing would cut across problem boundaries and destroy
		// the format.
		var batches []train.Batch
		window := 0
		for _, l := range lines {
			ids := append(tok.Encode(l), tokenizer.EOS)
			batches = append(batches, train.Batch{Input: ids[:len(ids)-1], Target: ids[1:]})
			if len(ids) > window {
				window = len(ids)
			}
		}
		model, err := transformer.New(transformer.Config{
			Vocab: tok.VocabSize(), Dim: cfg.Dim, Layers: cfg.Layers, Heads: 2,
			Window: window + 4, Pos: transformer.PosLearned, Act: nn.GELU,
		}, mathx.NewRNG(cfg.Seed+17))
		if err != nil {
			return 0, err
		}
		if _, err := train.Run(model, batches, train.Config{
			Steps: cfg.Steps, BatchSize: 4,
			Schedule:  train.WarmupCosine(0.003, 0.0003, cfg.Steps/10, cfg.Steps),
			Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
		}); err != nil {
			return 0, err
		}
		correct := 0
		budget := 8
		if withCoT {
			budget = 30
		}
		for _, p := range testProbs {
			ids := tok.Encode(p.Question)
			out := sample.Generate(model.NewPredictor(), ids, budget, sample.Greedy{}, tokenizer.EOS, mathx.NewRNG(1))
			completion := tok.Decode(out)
			if ExtractAnswer(completion) == p.Answer {
				correct++
			}
		}
		return float64(correct) / float64(len(testProbs)), nil
	}

	cot, err := trainOne(true)
	if err != nil {
		return CoTResult{}, err
	}
	direct, err := trainOne(false)
	if err != nil {
		return CoTResult{}, err
	}
	return CoTResult{CoTAccuracy: cot, DirectAccuracy: direct}, nil
}

func numWord(v int) string {
	if v == 0 {
		return "0"
	}
	s := ""
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

// ExtractAnswer pulls the token following the final "answer" marker in a
// completion, or "" when absent.
func ExtractAnswer(completion string) string {
	f := strings.Fields(completion)
	for i := len(f) - 2; i >= 0; i-- {
		if f[i] == "answer" {
			return f[i+1]
		}
	}
	return ""
}

// RunningChainFixture returns a fixed chain problem (3 +2 -1 +4 = 8) used
// by tests and documentation.
func RunningChainFixture() corpus.Problem {
	return corpus.RunningChainProblem(3, []int{2, -1, 4})
}
