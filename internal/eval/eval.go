// Package eval implements the benchmarking methodology of the paper's §4:
// standardized synthetic task sets (the stand-in for BIG-bench / the LM
// Evaluation Harness), few-shot prompt construction (§3's in-context
// learning evaluation), exact-match scoring, consistency checks, and a
// leaderboard renderer.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/mathx"
)

// Generator is anything that can extend a text prompt — the model-facing
// interface of the harness. core.LLM implements it.
type Generator interface {
	// Complete returns the continuation of prompt (not echoing the prompt),
	// stopping after maxTokens tokens or at a natural boundary.
	Complete(prompt string, maxTokens int) string
}

// QA is one task item.
type QA struct {
	Question string
	Answer   string
}

// Task is a named set of QA items drawn from one distribution.
type Task struct {
	Name  string
	Items []QA
}

// ---- Task generators (the synthetic BIG-bench) ----

// letters used by the symbolic tasks.
var letters = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

func randomWord(n int, rng *mathx.RNG) []string {
	w := make([]string, n)
	for i := range w {
		w[i] = letters[rng.Intn(len(letters))]
	}
	return w
}

// CopyTask: echo a letter sequence ("copy a b c ->" → "a b c").
func CopyTask(n, seqLen int, rng *mathx.RNG) Task {
	t := Task{Name: "copy"}
	for i := 0; i < n; i++ {
		w := randomWord(seqLen, rng)
		t.Items = append(t.Items, QA{
			Question: "copy " + strings.Join(w, " ") + " ->",
			Answer:   strings.Join(w, " "),
		})
	}
	return t
}

// ReverseTask: reverse a letter sequence.
func ReverseTask(n, seqLen int, rng *mathx.RNG) Task {
	t := Task{Name: "reverse"}
	for i := 0; i < n; i++ {
		w := randomWord(seqLen, rng)
		r := make([]string, len(w))
		for j := range w {
			r[len(w)-1-j] = w[j]
		}
		t.Items = append(t.Items, QA{
			Question: "reverse " + strings.Join(w, " ") + " ->",
			Answer:   strings.Join(r, " "),
		})
	}
	return t
}

// ArithmeticTask: single-digit addition and subtraction.
func ArithmeticTask(n int, rng *mathx.RNG) Task {
	t := Task{Name: "arithmetic"}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(10), rng.Intn(10)
		if rng.Intn(2) == 0 {
			t.Items = append(t.Items, QA{
				Question: fmt.Sprintf("%d + %d =", a, b),
				Answer:   fmt.Sprintf("%d", a+b),
			})
		} else {
			if a < b {
				a, b = b, a
			}
			t.Items = append(t.Items, QA{
				Question: fmt.Sprintf("%d - %d =", a, b),
				Answer:   fmt.Sprintf("%d", a-b),
			})
		}
	}
	return t
}

// NegationTask probes the negation handling the paper cites benchmarks for:
// "not true ->" → "false" and compositions like "not not false".
func NegationTask(n int, rng *mathx.RNG) Task {
	t := Task{Name: "negation"}
	for i := 0; i < n; i++ {
		depth := 1 + rng.Intn(3)
		val := rng.Intn(2) == 1
		q := ""
		res := val
		for d := 0; d < depth; d++ {
			q += "not "
			res = !res
		}
		t.Items = append(t.Items, QA{
			Question: q + boolWord(val) + " ->",
			Answer:   boolWord(res),
		})
	}
	return t
}

func boolWord(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// CompositionTask requires two chained operations ("compositionality" in
// §4): reverse then take the first letter.
func CompositionTask(n, seqLen int, rng *mathx.RNG) Task {
	t := Task{Name: "composition"}
	for i := 0; i < n; i++ {
		w := randomWord(seqLen, rng)
		t.Items = append(t.Items, QA{
			Question: "last of " + strings.Join(w, " ") + " ->",
			Answer:   w[len(w)-1],
		})
	}
	return t
}

// WordProblemTask wraps the Figure 1 problem families as a QA task; when
// withCoT is true the few-shot examples include the worked steps (chain-of-
// thought prompting).
func WordProblemTask(n int, withCoT bool, rng *mathx.RNG) (Task, []corpus.Problem) {
	name := "wordproblems"
	if withCoT {
		name += "+cot"
	}
	t := Task{Name: name}
	probs := corpus.ProblemSet(n, rng)
	for _, p := range probs {
		t.Items = append(t.Items, QA{Question: p.Question, Answer: p.Answer})
	}
	return t, probs
}

// Suite returns the default benchmark suite.
func Suite(rng *mathx.RNG) []Task {
	return []Task{
		CopyTask(30, 3, rng),
		ReverseTask(30, 3, rng),
		ArithmeticTask(30, rng),
		NegationTask(30, rng),
		CompositionTask(30, 3, rng),
	}
}

// ---- Scoring ----

// PromptConfig controls few-shot prompt construction.
type PromptConfig struct {
	Shots     int    // in-context examples per item (0 = zero-shot)
	Separator string // between examples; default "\n"
	MaxTokens int    // completion budget; default 16
}

// BuildPrompt renders a few-shot prompt: shots solved examples followed by
// the query question.
func BuildPrompt(task Task, itemIdx int, cfg PromptConfig, rng *mathx.RNG) string {
	sep := cfg.Separator
	if sep == "" {
		sep = "\n"
	}
	var b strings.Builder
	used := map[int]bool{itemIdx: true}
	for s := 0; s < cfg.Shots && len(used) < len(task.Items); s++ {
		j := rng.Intn(len(task.Items))
		for used[j] {
			j = rng.Intn(len(task.Items))
		}
		used[j] = true
		b.WriteString(task.Items[j].Question)
		b.WriteString(" ")
		b.WriteString(task.Items[j].Answer)
		b.WriteString(sep)
	}
	b.WriteString(task.Items[itemIdx].Question)
	return b.String()
}

// ScoreTask evaluates exact-match accuracy of g on the task under the given
// prompting configuration. The completion is trimmed and compared up to the
// expected answer length.
func ScoreTask(g Generator, task Task, cfg PromptConfig, rng *mathx.RNG) float64 {
	if len(task.Items) == 0 {
		return 0
	}
	maxTok := cfg.MaxTokens
	if maxTok == 0 {
		maxTok = 16
	}
	correct := 0
	for i := range task.Items {
		prompt := BuildPrompt(task, i, cfg, rng)
		out := g.Complete(prompt, maxTok)
		if MatchAnswer(out, task.Items[i].Answer) {
			correct++
		}
	}
	return float64(correct) / float64(len(task.Items))
}

// MatchAnswer reports whether a completion begins with the expected answer
// (after whitespace normalization), the standard exact-match criterion.
func MatchAnswer(completion, answer string) bool {
	cf := strings.Fields(completion)
	af := strings.Fields(answer)
	if len(cf) < len(af) {
		return false
	}
	for i := range af {
		if cf[i] != af[i] {
			return false
		}
	}
	return true
}

// ConsistencyScore measures answer agreement between two phrasings of the
// same items (§4's consistency benchmarks): the fraction of items where the
// model gives the same (normalized) answer to both forms.
func ConsistencyScore(g Generator, a, b Task, maxTokens int) float64 {
	n := len(a.Items)
	if n == 0 || n != len(b.Items) {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		ra := strings.Join(strings.Fields(g.Complete(a.Items[i].Question, maxTokens)), " ")
		rb := strings.Join(strings.Fields(g.Complete(b.Items[i].Question, maxTokens)), " ")
		if ra == rb {
			same++
		}
	}
	return float64(same) / float64(n)
}

// ---- Leaderboard ----

// Row is one leaderboard entry.
type Row struct {
	Model    string
	Task     string
	Shots    int
	Accuracy float64
}

// Leaderboard accumulates results across models and tasks.
type Leaderboard struct {
	Rows []Row
}

// Add appends a result.
func (l *Leaderboard) Add(model, task string, shots int, acc float64) {
	l.Rows = append(l.Rows, Row{Model: model, Task: task, Shots: shots, Accuracy: acc})
}

// Format renders the board sorted by task then accuracy (descending).
func (l *Leaderboard) Format() string {
	rows := append([]Row(nil), l.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Task != rows[j].Task {
			return rows[i].Task < rows[j].Task
		}
		return rows[i].Accuracy > rows[j].Accuracy
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-14s %6s %9s\n", "Model", "Task", "Shots", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-14s %6d %8.1f%%\n", r.Model, r.Task, r.Shots, 100*r.Accuracy)
	}
	return b.String()
}
