package eval

import (
	"math"
	"testing"
)

func TestRepetitionRate(t *testing.T) {
	cases := map[string]float64{
		"a a a a":   1,
		"a b c d":   0,
		"a a b b":   2.0 / 3,
		"single":    0,
		"":          0,
		"x y x y x": 0,
	}
	for in, want := range cases {
		if got := RepetitionRate(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("RepetitionRate(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestDistinctN(t *testing.T) {
	if got := DistinctN("a b a b", 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("distinct-2 = %v", got) // bigrams: ab, ba, ab → 2/3
	}
	if got := DistinctN("a b c", 1); got != 1 {
		t.Errorf("distinct-1 of unique tokens = %v", got)
	}
	if got := DistinctN("a", 3); got != 1 {
		t.Errorf("short text = %v", got)
	}
}

func TestLongestCommonRun(t *testing.T) {
	train := []string{"the cat sat on the mat", "dogs bark loudly"}
	if got := LongestCommonRun("he said the cat sat down", train); got != 3 {
		t.Errorf("run = %d, want 3 (the cat sat)", got)
	}
	if got := LongestCommonRun("zebra quantum", train); got != 0 {
		t.Errorf("run = %d, want 0", got)
	}
	if got := LongestCommonRun("dogs bark loudly", train); got != 3 {
		t.Errorf("full-line run = %d", got)
	}
}

func TestDetectContamination(t *testing.T) {
	task := Task{Name: "t", Items: []QA{
		{Question: "copy a b ->", Answer: "a b"},
		{Question: "copy c d ->", Answer: "c d"},
	}}
	// Training corpus contains item 0 verbatim (whitespace-normalized).
	train := []string{"some text copy a   b -> a b more text", "unrelated"}
	rep := DetectContamination(task, train)
	if len(rep.Contaminated) != 1 || rep.Contaminated[0] != 0 {
		t.Fatalf("contaminated = %v", rep.Contaminated)
	}
	if math.Abs(rep.Rate-0.5) > 1e-12 {
		t.Errorf("rate = %v", rep.Rate)
	}
	clean := FilterContaminated(task, rep)
	if len(clean.Items) != 1 || clean.Items[0].Question != "copy c d ->" {
		t.Fatalf("filtered = %+v", clean.Items)
	}
	if clean.Name != "t-decontaminated" {
		t.Errorf("name = %q", clean.Name)
	}
}

func TestContaminationCleanCorpus(t *testing.T) {
	task := Task{Name: "t", Items: []QA{{Question: "q", Answer: "a"}}}
	rep := DetectContamination(task, []string{"nothing relevant"})
	if rep.Rate != 0 || len(rep.Contaminated) != 0 {
		t.Errorf("false positive: %+v", rep)
	}
}
