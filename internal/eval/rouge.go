package eval

import "strings"

// ROUGE text-comparison metrics for free-form answers — the §4 alternative
// to exact match "if the answer is free-form text". ROUGE-N measures
// n-gram recall/precision overlap; ROUGE-L uses the longest common
// subsequence.

// RougeScore bundles precision, recall and F1.
type RougeScore struct {
	Precision, Recall, F1 float64
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ngrams(tokens []string, n int) map[string]int {
	out := map[string]int{}
	for i := 0; i+n <= len(tokens); i++ {
		out[strings.Join(tokens[i:i+n], " ")]++
	}
	return out
}

// RougeN computes n-gram overlap between a candidate and a reference.
func RougeN(candidate, reference string, n int) RougeScore {
	c := ngrams(strings.Fields(candidate), n)
	r := ngrams(strings.Fields(reference), n)
	var overlap, cTotal, rTotal int
	for g, rc := range r {
		rTotal += rc
		if cc, ok := c[g]; ok {
			if cc < rc {
				overlap += cc
			} else {
				overlap += rc
			}
		}
	}
	for _, cc := range c {
		cTotal += cc
	}
	var s RougeScore
	if cTotal > 0 {
		s.Precision = float64(overlap) / float64(cTotal)
	}
	if rTotal > 0 {
		s.Recall = float64(overlap) / float64(rTotal)
	}
	s.F1 = f1(s.Precision, s.Recall)
	return s
}

// RougeL computes the longest-common-subsequence variant.
func RougeL(candidate, reference string) RougeScore {
	c := strings.Fields(candidate)
	r := strings.Fields(reference)
	l := lcs(c, r)
	var s RougeScore
	if len(c) > 0 {
		s.Precision = float64(l) / float64(len(c))
	}
	if len(r) > 0 {
		s.Recall = float64(l) / float64(len(r))
	}
	s.F1 = f1(s.Precision, s.Recall)
	return s
}

// lcs returns the longest-common-subsequence length of two token slices.
func lcs(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
