package eval

import "testing"

// TestChainOfThoughtBeatsDirect is experiment E3: on the running-chain
// word-problem family, a model trained with worked steps (chain of thought)
// solves far more held-out problems than the same model trained to emit the
// answer directly — the Figure 1 phenomenon at toy scale.
func TestChainOfThoughtBeatsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	res, err := ChainOfThoughtExperiment(DefaultCoT())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CoT=%.3f Direct=%.3f", res.CoTAccuracy, res.DirectAccuracy)
	if res.CoTAccuracy < res.DirectAccuracy+0.2 {
		t.Errorf("CoT (%.3f) did not clearly beat direct (%.3f)", res.CoTAccuracy, res.DirectAccuracy)
	}
	if res.CoTAccuracy < 0.6 {
		t.Errorf("CoT accuracy %.3f below 0.6", res.CoTAccuracy)
	}
}

func TestExtractAnswer(t *testing.T) {
	cases := map[string]string{
		"3 + 2 = 5 answer 5":            "5",
		"answer 7":                      "7",
		"no marker here":                "",
		"answer":                        "",
		"answer 3 ; revised answer 4":   "4",
		"steps answer 9 trailing words": "9",
	}
	for in, want := range cases {
		if got := ExtractAnswer(in); got != want {
			t.Errorf("ExtractAnswer(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunningChainProblemCorrect(t *testing.T) {
	p := RunningChainFixture()
	if p.Answer != "8" {
		t.Errorf("answer = %q", p.Answer)
	}
	if len(p.Steps) != 3 {
		t.Errorf("steps = %v", p.Steps)
	}
}
