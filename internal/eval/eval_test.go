package eval

import (
	"strings"
	"testing"

	"repro/internal/mathx"
)

// oracle solves the symbolic tasks by rule — the "computational model" that
// scores 100% and validates harness mechanics.
type oracle struct{}

func (oracle) Complete(prompt string, maxTokens int) string {
	// The query is the text after the final newline.
	lines := strings.Split(prompt, "\n")
	q := lines[len(lines)-1]
	f := strings.Fields(q)
	switch {
	case len(f) > 0 && f[0] == "copy":
		return strings.Join(f[1:len(f)-1], " ")
	case len(f) > 0 && f[0] == "reverse":
		mid := f[1 : len(f)-1]
		out := make([]string, len(mid))
		for i := range mid {
			out[len(mid)-1-i] = mid[i]
		}
		return strings.Join(out, " ")
	case len(f) == 4 && f[1] == "+":
		return sumString(f[0], f[2], 1)
	case len(f) == 4 && f[1] == "-":
		return sumString(f[0], f[2], -1)
	case len(f) > 0 && f[0] == "not":
		val := f[len(f)-2] == "true"
		for _, w := range f {
			if w == "not" {
				val = !val
			}
		}
		return boolWord(val)
	case len(f) > 2 && f[0] == "last":
		return f[len(f)-2]
	}
	return ""
}

func sumString(a, b string, sign int) string {
	var x, y int
	for _, c := range a {
		x = x*10 + int(c-'0')
	}
	for _, c := range b {
		y = y*10 + int(c-'0')
	}
	n := x + sign*y
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

// parrot answers every question with a constant.
type parrot struct{ word string }

func (p parrot) Complete(string, int) string { return p.word }

// imitator can only solve a task if examples demonstrate it: with zero
// shots it returns garbage; with shots it applies the transformation shown
// in the first example (copy vs reverse detected from the example pair).
// It models the few-shot/zero-shot asymmetry of experiment E13.
type imitator struct{}

func (imitator) Complete(prompt string, maxTokens int) string {
	lines := strings.Split(strings.TrimSpace(prompt), "\n")
	q := strings.Fields(lines[len(lines)-1])
	if len(lines) < 2 {
		return "???" // zero-shot: no demonstration to imitate
	}
	// Inspect the first solved example to infer the mapping.
	ex := strings.Fields(lines[0])
	arrow := -1
	for i, w := range ex {
		if w == "->" {
			arrow = i
		}
	}
	if arrow < 0 || arrow+1 >= len(ex) {
		return "???"
	}
	in := ex[1:arrow]
	out := ex[arrow+1:]
	reversed := len(in) == len(out)
	for i := range in {
		if len(out) != len(in) || out[len(in)-1-i] != in[i] {
			reversed = false
			break
		}
	}
	mid := q[1 : len(q)-1]
	if reversed && ex[0] == "reverse" {
		r := make([]string, len(mid))
		for i := range mid {
			r[len(mid)-1-i] = mid[i]
		}
		return strings.Join(r, " ")
	}
	return strings.Join(mid, " ")
}

func TestOracleScoresPerfect(t *testing.T) {
	rng := mathx.NewRNG(1)
	for _, task := range Suite(rng) {
		acc := ScoreTask(oracle{}, task, PromptConfig{Shots: 0}, mathx.NewRNG(2))
		if acc != 1 {
			t.Errorf("oracle scored %v on %s", acc, task.Name)
		}
	}
}

func TestParrotScoresLow(t *testing.T) {
	rng := mathx.NewRNG(3)
	task := CopyTask(30, 3, rng)
	acc := ScoreTask(parrot{word: "zzz"}, task, PromptConfig{Shots: 0}, mathx.NewRNG(4))
	if acc != 0 {
		t.Errorf("parrot scored %v", acc)
	}
}

func TestTaskGeneratorsWellFormed(t *testing.T) {
	rng := mathx.NewRNG(5)
	for _, task := range Suite(rng) {
		if len(task.Items) == 0 {
			t.Fatalf("%s empty", task.Name)
		}
		for _, it := range task.Items {
			if it.Question == "" || it.Answer == "" {
				t.Fatalf("%s has malformed item %+v", task.Name, it)
			}
		}
	}
}

func TestNegationTaskCorrectness(t *testing.T) {
	rng := mathx.NewRNG(6)
	task := NegationTask(50, rng)
	for _, it := range task.Items {
		nots := strings.Count(it.Question, "not")
		startTrue := strings.Contains(it.Question, "true")
		want := startTrue == (nots%2 == 0)
		if (it.Answer == "true") != want {
			t.Fatalf("negation item wrong: %+v", it)
		}
	}
}

func TestBuildPromptShots(t *testing.T) {
	rng := mathx.NewRNG(7)
	task := CopyTask(10, 2, rng)
	zero := BuildPrompt(task, 0, PromptConfig{Shots: 0}, mathx.NewRNG(8))
	if zero != task.Items[0].Question {
		t.Errorf("zero-shot prompt = %q", zero)
	}
	three := BuildPrompt(task, 0, PromptConfig{Shots: 3}, mathx.NewRNG(9))
	if got := strings.Count(three, "\n"); got != 3 {
		t.Errorf("3-shot prompt has %d examples:\n%s", got, three)
	}
	if !strings.HasSuffix(three, task.Items[0].Question) {
		t.Error("prompt does not end with the query")
	}
	// The query's own answer must not be leaked as an example.
	if strings.Contains(strings.TrimSuffix(three, task.Items[0].Question),
		task.Items[0].Question+" "+task.Items[0].Answer) {
		t.Error("query item leaked into examples")
	}
}

// TestFewShotBeatsZeroShot is experiment E13 at harness level: a model
// whose ability depends on demonstrations scores higher with shots.
func TestFewShotBeatsZeroShot(t *testing.T) {
	rng := mathx.NewRNG(10)
	task := ReverseTask(30, 3, rng)
	zero := ScoreTask(imitator{}, task, PromptConfig{Shots: 0}, mathx.NewRNG(11))
	few := ScoreTask(imitator{}, task, PromptConfig{Shots: 2}, mathx.NewRNG(11))
	if few <= zero {
		t.Errorf("few-shot %v not above zero-shot %v", few, zero)
	}
	if few < 0.9 {
		t.Errorf("imitator few-shot accuracy = %v", few)
	}
}

func TestMatchAnswer(t *testing.T) {
	cases := []struct {
		completion, answer string
		want               bool
	}{
		{"7", "7", true},
		{"7 and more text", "7", true},
		{" 7 ", "7", true},
		{"17", "7", false},
		{"", "7", false},
		{"a b c", "a b", true},
		{"a c", "a b", false},
	}
	for _, c := range cases {
		if got := MatchAnswer(c.completion, c.answer); got != c.want {
			t.Errorf("MatchAnswer(%q, %q) = %v", c.completion, c.answer, got)
		}
	}
}

func TestConsistencyScore(t *testing.T) {
	rng := mathx.NewRNG(12)
	a := CopyTask(10, 2, rng)
	b := CopyTask(10, 2, rng) // different items, same form
	// A parrot is perfectly consistent (same answer always).
	if c := ConsistencyScore(parrot{word: "x"}, a, b, 4); c != 1 {
		t.Errorf("parrot consistency = %v", c)
	}
}

func TestWordProblemTask(t *testing.T) {
	rng := mathx.NewRNG(13)
	task, probs := WordProblemTask(20, true, rng)
	if len(task.Items) != 20 || len(probs) != 20 {
		t.Fatalf("sizes: %d items, %d problems", len(task.Items), len(probs))
	}
	if task.Name != "wordproblems+cot" {
		t.Errorf("name = %q", task.Name)
	}
	for i := range probs {
		if task.Items[i].Answer != probs[i].Answer {
			t.Fatal("answers misaligned")
		}
	}
}

func TestLeaderboardFormat(t *testing.T) {
	var lb Leaderboard
	lb.Add("gpt-tiny", "copy", 0, 0.5)
	lb.Add("oracle", "copy", 0, 1.0)
	lb.Add("slow-model", "copy", 3, 0.25)
	s := lb.Format()
	// Within task "copy", oracle (100%) precedes gpt-tiny (50%).
	if strings.Index(s, "oracle") > strings.Index(s, "gpt-tiny") {
		t.Errorf("leaderboard not sorted by accuracy:\n%s", s)
	}
	if !strings.Contains(s, "100.0%") || !strings.Contains(s, "25.0%") {
		t.Errorf("percentages missing:\n%s", s)
	}
}
