package eval

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRougeNIdentical(t *testing.T) {
	s := RougeN("the cat sat", "the cat sat", 1)
	if !almost(s.Precision, 1) || !almost(s.Recall, 1) || !almost(s.F1, 1) {
		t.Errorf("identical ROUGE-1 = %+v", s)
	}
}

func TestRougeNDisjoint(t *testing.T) {
	s := RougeN("a b c", "x y z", 1)
	if s.F1 != 0 {
		t.Errorf("disjoint ROUGE-1 = %+v", s)
	}
}

func TestRougeNPartial(t *testing.T) {
	// candidate "the cat" vs reference "the cat sat": recall 2/3, prec 1.
	s := RougeN("the cat", "the cat sat", 1)
	if !almost(s.Precision, 1) || !almost(s.Recall, 2.0/3) {
		t.Errorf("partial ROUGE-1 = %+v", s)
	}
}

func TestRougeNClippedCounts(t *testing.T) {
	// Candidate repeats "the" 3 times but reference has it once: overlap
	// is clipped to 1.
	s := RougeN("the the the", "the cat", 1)
	if !almost(s.Recall, 0.5) {
		t.Errorf("clipped recall = %v", s.Recall)
	}
	if !almost(s.Precision, 1.0/3) {
		t.Errorf("clipped precision = %v", s.Precision)
	}
}

func TestRougeBigrams(t *testing.T) {
	s := RougeN("the cat sat down", "the cat sat", 2)
	// Reference bigrams: "the cat", "cat sat" — both present. Recall 1.
	if !almost(s.Recall, 1) {
		t.Errorf("bigram recall = %v", s.Recall)
	}
	// Candidate bigrams: 3, overlap 2 → precision 2/3.
	if !almost(s.Precision, 2.0/3) {
		t.Errorf("bigram precision = %v", s.Precision)
	}
}

func TestRougeLOrderSensitive(t *testing.T) {
	// Same unigram bag, different order: LCS penalizes reordering where
	// ROUGE-1 does not.
	r1 := RougeN("sat cat the", "the cat sat", 1)
	rl := RougeL("sat cat the", "the cat sat")
	if !almost(r1.F1, 1) {
		t.Errorf("ROUGE-1 = %+v", r1)
	}
	if rl.F1 >= 0.99 {
		t.Errorf("ROUGE-L should penalize reorder: %+v", rl)
	}
}

func TestRougeLKnownLCS(t *testing.T) {
	// LCS("a b c d", "a x c y") = "a c" → 2; prec 2/4, rec 2/4.
	s := RougeL("a b c d", "a x c y")
	if !almost(s.Precision, 0.5) || !almost(s.Recall, 0.5) {
		t.Errorf("ROUGE-L = %+v", s)
	}
}

func TestRougeEmpty(t *testing.T) {
	if s := RougeL("", "a b"); s.F1 != 0 {
		t.Errorf("empty candidate = %+v", s)
	}
	if s := RougeN("a", "", 1); s.F1 != 0 {
		t.Errorf("empty reference = %+v", s)
	}
}
