// Package ffnlm implements the fixed-window feed-forward language model of
// the paper's §5 (the Bengio et al neural probabilistic LM): the L input
// words are embedded, their vectors concatenated into a single L·p vector,
// and a fully connected FFN maps it to next-word logits. It is the "deep
// learning version of the L-gram models" — the historical midpoint between
// N-gram counting and recurrent/transformer models, and the baseline whose
// fixed context motivates adding memory (Eq. 12) and attention (Eq. 13).
package ffnlm

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the model hyperparameters.
type Config struct {
	Vocab   int
	Dim     int // per-word embedding dimension p
	Context int // L: number of preceding words visible
	Hidden  int // FFN hidden width
}

// Model is the fixed-window neural LM.
type Model struct {
	Cfg   Config
	Embed *nn.Embedding
	Net   *nn.MLP // (L·Dim) → Hidden → Vocab
}

// New builds the model.
func New(cfg Config, rng *mathx.RNG) (*Model, error) {
	if cfg.Vocab <= 0 || cfg.Dim <= 0 || cfg.Context <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("ffnlm: non-positive hyperparameter in %+v", cfg)
	}
	return &Model{
		Cfg:   cfg,
		Embed: nn.NewEmbedding(cfg.Vocab, cfg.Dim, rng),
		Net:   nn.NewMLP([]int{cfg.Context * cfg.Dim, cfg.Hidden, cfg.Vocab}, nn.Tanh, rng),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, rng *mathx.RNG) *Model {
	m, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Parameters implements nn.Module.
func (m *Model) Parameters() []*autograd.Node {
	return append(m.Embed.Parameters(), m.Net.Parameters()...)
}

// NumParameters counts trainable scalars.
func (m *Model) NumParameters() int { return nn.NumParameters(m) }

// contextAt returns the L tokens preceding position i in input, left-padded
// with token 0 when the history is short.
func (m *Model) contextAt(input []int, i int) []int {
	ctx := make([]int, m.Cfg.Context)
	for k := 0; k < m.Cfg.Context; k++ {
		j := i - m.Cfg.Context + 1 + k
		if j >= 0 {
			ctx[k] = input[j]
		}
	}
	return ctx
}

// Forward returns the len(input)×Vocab logits node: row i predicts the
// token after position i from the window ending at i. Unlike the
// transformer, information outside the fixed window is invisible — the
// structural limitation §5 calls out.
func (m *Model) Forward(input []int) *autograd.Node {
	if len(input) == 0 {
		panic("ffnlm: empty input")
	}
	rows := make([]*autograd.Node, len(input))
	for i := range input {
		emb := m.Embed.Forward(m.contextAt(input, i))
		// Concatenate the L embedding rows into one 1×(L·Dim) vector —
		// the "direct sum of the input vectors" of §5.
		parts := make([]*autograd.Node, m.Cfg.Context)
		for k := 0; k < m.Cfg.Context; k++ {
			parts[k] = autograd.SliceRows(emb, k, k+1)
		}
		rows[i] = autograd.ConcatCols(parts...)
	}
	x := autograd.ConcatRows(rows...)
	return m.Net.Forward(x)
}

// ForwardLogits returns the raw logits tensor (evaluation interface shared
// with the other model families).
func (m *Model) ForwardLogits(input []int) *tensor.Tensor {
	return m.Forward(input).Value
}

// Loss computes the Eq. 3 objective over one window (targets -1 ignored).
func (m *Model) Loss(input, target []int) *autograd.Node {
	return autograd.CrossEntropy(m.Forward(input), target)
}

// CrossEntropy evaluates held-out mean NLL without gradient state.
func (m *Model) CrossEntropy(input, target []int) float64 {
	lp := tensor.LogSoftmaxRows(m.ForwardLogits(input))
	total, n := 0.0, 0
	for i, t := range target {
		if t < 0 {
			continue
		}
		total -= lp.Row(i)[t]
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Perplexity is exp(CrossEntropy).
func (m *Model) Perplexity(input, target []int) float64 {
	return math.Exp(m.CrossEntropy(input, target))
}

// NextLogits scores the continuation of a prefix (inference entry point).
func (m *Model) NextLogits(prefix []int) []float64 {
	if len(prefix) == 0 {
		panic("ffnlm: empty prefix")
	}
	logits := m.ForwardLogits(prefix)
	return append([]float64(nil), logits.Row(len(prefix)-1)...)
}
