package ffnlm

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

func tinyCfg() Config { return Config{Vocab: 6, Dim: 8, Context: 3, Hidden: 16} }

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}, mathx.NewRNG(1)); err == nil {
		t.Error("zero config accepted")
	}
}

func TestForwardShape(t *testing.T) {
	m := MustNew(tinyCfg(), mathx.NewRNG(1))
	out := m.Forward([]int{1, 2, 3, 4})
	if out.Value.Shape[0] != 4 || out.Value.Shape[1] != 6 {
		t.Fatalf("shape %v", out.Value.Shape)
	}
}

// TestFixedWindowBlindness: tokens older than Context positions must be
// invisible — the defining limitation of §5's L-gram models.
func TestFixedWindowBlindness(t *testing.T) {
	m := MustNew(tinyCfg(), mathx.NewRNG(2)) // context 3
	a := m.ForwardLogits([]int{1, 2, 3, 4, 5})
	b := m.ForwardLogits([]int{5, 2, 3, 4, 5}) // differs only at position 0
	// Prediction at position 4 sees tokens 2..4 only → identical rows.
	for j := 0; j < 6; j++ {
		if math.Abs(a.At(4, j)-b.At(4, j)) > 1e-12 {
			t.Fatal("token outside the window influenced the prediction")
		}
	}
	// But position 2 (window 0..2) must differ.
	diff := 0.0
	for j := 0; j < 6; j++ {
		diff += math.Abs(a.At(2, j) - b.At(2, j))
	}
	if diff == 0 {
		t.Fatal("token inside the window had no influence")
	}
}

func TestGradientCheck(t *testing.T) {
	m := MustNew(Config{Vocab: 4, Dim: 3, Context: 2, Hidden: 5}, mathx.NewRNG(3))
	input := []int{0, 1, 2}
	target := []int{1, 2, 3}
	nn.ZeroGrad(m)
	autograd.Backward(m.Loss(input, target))
	const h = 1e-5
	for pi, p := range m.Parameters() {
		for i := 0; i < p.Value.Size(); i += 2 {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := m.Loss(input, target).Value.Data[0]
			p.Value.Data[i] = orig - h
			lm := m.Loss(input, target).Value.Data[0]
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLearnsCycleViaTrainRun(t *testing.T) {
	m := MustNew(Config{Vocab: 4, Dim: 8, Context: 2, Hidden: 24}, mathx.NewRNG(4))
	in := []int{0, 1, 2, 3, 0, 1, 2, 3}
	tg := []int{1, 2, 3, 0, 1, 2, 3, 0}
	data := []train.Batch{{Input: in, Target: tg}}
	res, err := train.Run(m, data, train.Config{
		Steps: 300, Schedule: train.Constant(0.05), Optimizer: train.SGD{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTrainLoss() > 0.1 {
		t.Errorf("loss = %v after training", res.FinalTrainLoss())
	}
	if acc := train.Accuracy(m, data, nil); acc < 0.99 {
		t.Errorf("cycle accuracy = %v", acc)
	}
}

// TestCannotLearnLongDependency: a dependency at distance > Context is
// unlearnable, in contrast with the LSTM/transformer (the §5 motivation for
// memory and attention).
func TestCannotLearnLongDependency(t *testing.T) {
	// Sequences: first token 0 or 1, then 4 fillers (2), final target equals
	// the first token. Context=3 cannot see position 0 from position 4.
	m := MustNew(Config{Vocab: 3, Dim: 8, Context: 3, Hidden: 24}, mathx.NewRNG(5))
	var data []train.Batch
	for _, first := range []int{0, 1} {
		in := []int{first, 2, 2, 2, 2}
		tg := []int{-1, -1, -1, -1, first}
		data = append(data, train.Batch{Input: in, Target: tg})
	}
	if _, err := train.Run(m, data, train.Config{
		Steps: 400, Schedule: train.Constant(0.05), Optimizer: train.SGD{},
	}); err != nil {
		t.Fatal(err)
	}
	// The final-position windows of the two sequences are identical, so the
	// logits must be identical: the model provably cannot separate them.
	a := m.ForwardLogits(data[0].Input)
	b := m.ForwardLogits(data[1].Input)
	for j := 0; j < 3; j++ {
		if math.Abs(a.At(4, j)-b.At(4, j)) > 1e-12 {
			t.Fatal("model distinguished sequences it cannot see")
		}
	}
}

func TestNextLogits(t *testing.T) {
	m := MustNew(tinyCfg(), mathx.NewRNG(6))
	l := m.NextLogits([]int{1, 2})
	if len(l) != 6 {
		t.Fatalf("logits len %d", len(l))
	}
}

func TestPerplexityUntrained(t *testing.T) {
	m := MustNew(tinyCfg(), mathx.NewRNG(7))
	in := []int{0, 1, 2, 3, 4, 5}
	tg := []int{1, 2, 3, 4, 5, 0}
	pp := m.Perplexity(in, tg)
	if pp < 3 || pp > 12 {
		t.Errorf("untrained perplexity = %v, want near 6", pp)
	}
}

func TestNumParameters(t *testing.T) {
	cfg := Config{Vocab: 10, Dim: 4, Context: 2, Hidden: 8}
	m := MustNew(cfg, mathx.NewRNG(8))
	want := 10*4 + (2*4*8 + 8) + (8*10 + 10)
	if got := m.NumParameters(); got != want {
		t.Errorf("params = %d, want %d", got, want)
	}
}

func TestShortHistoryPadding(t *testing.T) {
	m := MustNew(tinyCfg(), mathx.NewRNG(9))
	// Single-token input must not panic (history left-padded).
	out := m.ForwardLogits([]int{5})
	if out.Shape[0] != 1 {
		t.Fatal("bad shape for single token")
	}
	_ = tensor.New(1) // keep tensor import meaningful
}
