// Package autograd implements tape-based reverse-mode automatic
// differentiation over tensors. It is the backpropagation engine behind the
// paper's training rule (Eq. 16): every differentiable op records a closure
// that propagates gradients to its parents, and Backward replays the tape in
// reverse topological order.
package autograd

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Node is one vertex of the computation graph: a tensor value, its gradient
// accumulator, and the backward rule that created it.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backward     func()
	name         string
}

// Param wraps t as a trainable leaf (gradients are accumulated).
func Param(t *tensor.Tensor) *Node {
	return &Node{Value: t, Grad: tensor.New(t.Shape...), requiresGrad: true, name: "param"}
}

// Const wraps t as a non-trainable leaf (no gradient flows into it).
func Const(t *tensor.Tensor) *Node {
	return &Node{Value: t, name: "const"}
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Name returns the op name that produced the node (for debugging).
func (n *Node) Name() string { return n.name }

func newResult(name string, v *tensor.Tensor, parents ...*Node) *Node {
	req := false
	for _, p := range parents {
		if p.requiresGrad {
			req = true
			break
		}
	}
	out := &Node{Value: v, requiresGrad: req, parents: parents, name: name}
	if req {
		out.Grad = tensor.New(v.Shape...)
	}
	return out
}

// ensureGrad lazily allocates the gradient buffer of a leaf that was created
// before its shape was known.
func (n *Node) ensureGrad() {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Shape...)
	}
}

// ZeroGrad clears the accumulated gradient.
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from n, which must be a scalar
// (size-1) node. Gradients accumulate into every reachable parameter.
func Backward(n *Node) {
	if n.Value.Size() != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar node %v", n.Value.Shape))
	}
	order := topoSort(n)
	// Intermediate (non-leaf) gradients are scratch space for this pass;
	// reset them so repeated Backward calls on one graph don't double-count.
	// Leaf parameters keep accumulating, matching standard autograd.
	for _, node := range order {
		if node.backward != nil && node.Grad != nil {
			node.Grad.Zero()
		}
	}
	n.ensureGrad()
	n.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

func topoSort(root *Node) []*Node {
	var order []*Node
	visited := map[*Node]bool{}
	var visit func(*Node)
	visit = func(n *Node) {
		if visited[n] || !n.requiresGrad {
			return
		}
		visited[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// ---- Arithmetic ----

// Add returns a + b elementwise.
func Add(a, b *Node) *Node {
	out := newResult("add", tensor.Add(a.Value, b.Value), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, out.Grad)
		}
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Node) *Node {
	out := newResult("sub", tensor.Sub(a.Value, b.Value), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			tensor.AddScaledInPlace(b.Grad, -1, out.Grad)
		}
	}
	return out
}

// Mul returns the Hadamard product a ⊙ b.
func Mul(a, b *Node) *Node {
	out := newResult("mul", tensor.Mul(a.Value, b.Value), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Mul(out.Grad, b.Value))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, tensor.Mul(out.Grad, a.Value))
		}
	}
	return out
}

// Scale returns s·a.
func Scale(a *Node, s float64) *Node {
	out := newResult("scale", tensor.Scale(a.Value, s), a)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddScaledInPlace(a.Grad, s, out.Grad)
		}
	}
	return out
}

// MatMul returns the matrix product a·b of 2-D nodes.
func MatMul(a, b *Node) *Node {
	out := newResult("matmul", tensor.MatMul(a.Value, b.Value), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.MatMul(out.Grad, tensor.Transpose(b.Value)))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, tensor.MatMul(tensor.Transpose(a.Value), out.Grad))
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D node.
func Transpose(a *Node) *Node {
	out := newResult("transpose", tensor.Transpose(a.Value), a)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Transpose(out.Grad))
		}
	}
	return out
}

// AddBias adds the 1×n bias node b to every row of the m×n node a.
func AddBias(a, b *Node) *Node {
	if len(b.Value.Shape) != 2 || b.Value.Shape[0] != 1 {
		panic("autograd: AddBias expects a 1×n bias")
	}
	out := newResult("addbias", tensor.AddRowVector(a.Value, b.Value.Row(0)), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			sums := tensor.SumRows(out.Grad)
			brow := b.Grad.Row(0)
			for j, v := range sums {
				brow[j] += v
			}
		}
	}
	return out
}

// ---- Nonlinearities ----

// ReLU returns max(0, a) elementwise (the paper's §5 nonlinearity).
func ReLU(a *Node) *Node {
	out := newResult("relu", tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i, x := range a.Value.Data {
			if x > 0 {
				a.Grad.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Node) *Node {
	out := newResult("tanh", tensor.Apply(a.Value, math.Tanh), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i, y := range out.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise (used by LSTM gates).
func Sigmoid(a *Node) *Node {
	out := newResult("sigmoid", tensor.Apply(a.Value, func(x float64) float64 {
		return 1 / (1 + math.Exp(-x))
	}), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i, y := range out.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * y * (1 - y)
		}
	}
	return out
}

// GELU returns the Gaussian-error linear unit using the tanh approximation
// used by GPT-family models.
func GELU(a *Node) *Node {
	const c = 0.7978845608028654 // sqrt(2/pi)
	f := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	out := newResult("gelu", tensor.Apply(a.Value, f), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i, x := range a.Value.Data {
			u := c * (x + 0.044715*x*x*x)
			th := math.Tanh(u)
			du := c * (1 + 3*0.044715*x*x)
			d := 0.5*(1+th) + 0.5*x*(1-th*th)*du
			a.Grad.Data[i] += out.Grad.Data[i] * d
		}
	}
	return out
}

// ---- Structural ops ----

// ConcatCols concatenates 2-D nodes along columns (used to merge attention
// heads, §6 "attention head" discussion).
func ConcatCols(nodes ...*Node) *Node {
	rows := nodes[0].Value.Shape[0]
	total := 0
	for _, n := range nodes {
		if n.Value.Shape[0] != rows {
			panic("autograd: ConcatCols row mismatch")
		}
		total += n.Value.Shape[1]
	}
	v := tensor.New(rows, total)
	off := 0
	for _, n := range nodes {
		c := n.Value.Shape[1]
		for i := 0; i < rows; i++ {
			copy(v.Row(i)[off:off+c], n.Value.Row(i))
		}
		off += c
	}
	out := newResult("concatcols", v, nodes...)
	out.backward = func() {
		off := 0
		for _, n := range nodes {
			c := n.Value.Shape[1]
			if n.requiresGrad {
				for i := 0; i < rows; i++ {
					src := out.Grad.Row(i)[off : off+c]
					dst := n.Grad.Row(i)
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += c
		}
	}
	return out
}

// ConcatRows stacks 2-D nodes vertically (used by the RNN to assemble
// per-timestep outputs into a sequence).
func ConcatRows(nodes ...*Node) *Node {
	cols := nodes[0].Value.Shape[1]
	total := 0
	for _, n := range nodes {
		if n.Value.Shape[1] != cols {
			panic("autograd: ConcatRows column mismatch")
		}
		total += n.Value.Shape[0]
	}
	v := tensor.New(total, cols)
	off := 0
	for _, n := range nodes {
		for i := 0; i < n.Value.Shape[0]; i++ {
			copy(v.Row(off+i), n.Value.Row(i))
		}
		off += n.Value.Shape[0]
	}
	out := newResult("concatrows", v, nodes...)
	out.backward = func() {
		off := 0
		for _, n := range nodes {
			r := n.Value.Shape[0]
			if n.requiresGrad {
				for i := 0; i < r; i++ {
					src := out.Grad.Row(off + i)
					dst := n.Grad.Row(i)
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += r
		}
	}
	return out
}

// SliceCols returns columns [lo, hi) of a 2-D node.
func SliceCols(a *Node, lo, hi int) *Node {
	rows := a.Value.Shape[0]
	v := tensor.New(rows, hi-lo)
	for i := 0; i < rows; i++ {
		copy(v.Row(i), a.Value.Row(i)[lo:hi])
	}
	out := newResult("slicecols", v, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < rows; i++ {
			src := out.Grad.Row(i)
			dst := a.Grad.Row(i)[lo:hi]
			for j, g := range src {
				dst[j] += g
			}
		}
	}
	return out
}

// SliceRows returns rows [lo, hi) of a 2-D node.
func SliceRows(a *Node, lo, hi int) *Node {
	cols := a.Value.Shape[1]
	v := tensor.New(hi-lo, cols)
	for i := lo; i < hi; i++ {
		copy(v.Row(i-lo), a.Value.Row(i))
	}
	out := newResult("slicerows", v, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		for i := lo; i < hi; i++ {
			src := out.Grad.Row(i - lo)
			dst := a.Grad.Row(i)
			for j, g := range src {
				dst[j] += g
			}
		}
	}
	return out
}

// Embedding gathers rows of the weight node w (vocab×dim) by token ids,
// producing a len(ids)×dim node. This is the embedding map ι of §5 (Eq. 7);
// the backward pass scatter-adds into the selected rows.
func Embedding(w *Node, ids []int) *Node {
	dim := w.Value.Shape[1]
	v := tensor.New(len(ids), dim)
	for i, id := range ids {
		copy(v.Row(i), w.Value.Row(id))
	}
	idsCopy := append([]int(nil), ids...)
	out := newResult("embedding", v, w)
	out.backward = func() {
		if !w.requiresGrad {
			return
		}
		for i, id := range idsCopy {
			src := out.Grad.Row(i)
			dst := w.Grad.Row(id)
			for j, g := range src {
				dst[j] += g
			}
		}
	}
	return out
}

// SoftmaxRows applies a row-wise softmax (the attention weights of Eq. 14).
func SoftmaxRows(a *Node) *Node {
	s := tensor.SoftmaxRows(a.Value)
	out := newResult("softmaxrows", s, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		rows, cols := s.Shape[0], s.Shape[1]
		for i := 0; i < rows; i++ {
			srow := s.Row(i)
			grow := out.Grad.Row(i)
			dot := 0.0
			for j := 0; j < cols; j++ {
				dot += srow[j] * grow[j]
			}
			arow := a.Grad.Row(i)
			for j := 0; j < cols; j++ {
				arow[j] += srow[j] * (grow[j] - dot)
			}
		}
	}
	return out
}

// AddMask adds the constant mask tensor to a. Entries of -Inf (or very
// negative values) implement the causal restriction j ≤ i of Eq. 13.
func AddMask(a *Node, mask *tensor.Tensor) *Node {
	out := newResult("addmask", tensor.Add(a.Value, mask), a)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, out.Grad)
		}
	}
	return out
}

// LayerNorm normalizes each row of a to zero mean and unit variance, then
// applies learnable gain g and bias b (both 1×n). eps stabilizes the
// variance.
func LayerNorm(a, g, b *Node, eps float64) *Node {
	rows, cols := a.Value.Shape[0], a.Value.Shape[1]
	v := tensor.New(rows, cols)
	xhat := tensor.New(rows, cols)
	invStd := make([]float64, rows)
	grow := g.Value.Row(0)
	brow := b.Value.Row(0)
	for i := 0; i < rows; i++ {
		src := a.Value.Row(i)
		mu := mathx.Mean(src)
		varr := 0.0
		for _, x := range src {
			d := x - mu
			varr += d * d
		}
		varr /= float64(cols)
		is := 1 / math.Sqrt(varr+eps)
		invStd[i] = is
		xr := xhat.Row(i)
		vr := v.Row(i)
		for j, x := range src {
			xr[j] = (x - mu) * is
			vr[j] = xr[j]*grow[j] + brow[j]
		}
	}
	out := newResult("layernorm", v, a, g, b)
	out.backward = func() {
		for i := 0; i < rows; i++ {
			gr := out.Grad.Row(i)
			xr := xhat.Row(i)
			if g.requiresGrad {
				gg := g.Grad.Row(0)
				for j := 0; j < cols; j++ {
					gg[j] += gr[j] * xr[j]
				}
			}
			if b.requiresGrad {
				bg := b.Grad.Row(0)
				for j := 0; j < cols; j++ {
					bg[j] += gr[j]
				}
			}
			if a.requiresGrad {
				// dL/dxhat_j = gr_j * gain_j; then standard LN backward.
				n := float64(cols)
				var sumDx, sumDxX float64
				dxhat := make([]float64, cols)
				for j := 0; j < cols; j++ {
					dxhat[j] = gr[j] * grow[j]
					sumDx += dxhat[j]
					sumDxX += dxhat[j] * xr[j]
				}
				ar := a.Grad.Row(i)
				for j := 0; j < cols; j++ {
					ar[j] += invStd[i] / n * (n*dxhat[j] - sumDx - xr[j]*sumDxX)
				}
			}
		}
	}
	return out
}

// MeanAll reduces a to its scalar mean.
func MeanAll(a *Node) *Node {
	v := tensor.FromSlice([]float64{tensor.MeanAll(a.Value)}, 1)
	out := newResult("meanall", v, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		s := out.Grad.Data[0] / float64(a.Value.Size())
		for i := range a.Grad.Data {
			a.Grad.Data[i] += s
		}
	}
	return out
}

// SumAll reduces a to its scalar sum.
func SumAll(a *Node) *Node {
	v := tensor.FromSlice([]float64{tensor.SumAll(a.Value)}, 1)
	out := newResult("sumall", v, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		s := out.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += s
		}
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// the row-wise softmax of logits — exactly the paper's objective Eq. 3, one
// row per predicted position. Rows whose target is < 0 are ignored (padding).
func CrossEntropy(logits *Node, targets []int) *Node {
	rows := logits.Value.Shape[0]
	if rows != len(targets) {
		panic("autograd: CrossEntropy target length mismatch")
	}
	logp := tensor.LogSoftmaxRows(logits.Value)
	count := 0
	loss := 0.0
	for i, t := range targets {
		if t < 0 {
			continue
		}
		loss -= logp.Row(i)[t]
		count++
	}
	if count == 0 {
		count = 1
	}
	loss /= float64(count)
	tcopy := append([]int(nil), targets...)
	out := newResult("crossentropy", tensor.FromSlice([]float64{loss}, 1), logits)
	out.backward = func() {
		if !logits.requiresGrad {
			return
		}
		scale := out.Grad.Data[0] / float64(count)
		for i, t := range tcopy {
			if t < 0 {
				continue
			}
			lrow := logp.Row(i)
			grow := logits.Grad.Row(i)
			for j := range grow {
				p := math.Exp(lrow[j])
				if j == t {
					grow[j] += scale * (p - 1)
				} else {
					grow[j] += scale * p
				}
			}
		}
	}
	return out
}

// MSE returns the scalar mean squared error between a and the constant
// target tensor.
func MSE(a *Node, target *tensor.Tensor) *Node {
	if !a.Value.SameShape(target) {
		panic("autograd: MSE shape mismatch")
	}
	n := float64(a.Value.Size())
	loss := 0.0
	for i := range a.Value.Data {
		d := a.Value.Data[i] - target.Data[i]
		loss += d * d
	}
	loss /= n
	out := newResult("mse", tensor.FromSlice([]float64{loss}, 1), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		s := out.Grad.Data[0] * 2 / n
		for i := range a.Grad.Data {
			a.Grad.Data[i] += s * (a.Value.Data[i] - target.Data[i])
		}
	}
	return out
}
