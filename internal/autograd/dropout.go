package autograd

import (
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Dropout randomly zeroes each element with probability p and scales the
// survivors by 1/(1-p) (inverted dropout), the §3 "many tools of ML"
// regularizer. The same mask gates the backward pass. p must be in [0, 1);
// p = 0 is the identity.
func Dropout(a *Node, p float64, rng *mathx.RNG) *Node {
	if p < 0 || p >= 1 {
		panic("autograd: dropout probability must be in [0, 1)")
	}
	if p == 0 {
		return a
	}
	mask := tensor.New(a.Value.Shape...)
	scale := 1 / (1 - p)
	for i := range mask.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
		}
	}
	out := newResult("dropout", tensor.Mul(a.Value, mask), a)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Mul(out.Grad, mask))
		}
	}
	return out
}
