package autograd

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// checkGrad verifies the analytic gradient of the scalar loss produced by
// forward against central finite differences over every element of each
// param. forward must rebuild the graph from the current param values.
func checkGrad(t *testing.T, forward func() *Node, params []*Node, tol float64) {
	t.Helper()
	loss := forward()
	for _, p := range params {
		p.ZeroGrad()
	}
	Backward(loss)
	const h = 1e-5
	for pi, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := forward().Value.Data[0]
			p.Value.Data[i] = orig - h
			lm := forward().Value.Data[0]
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			ana := p.Grad.Data[i]
			if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", pi, i, ana, num)
			}
		}
	}
}

func randParam(rng *mathx.RNG, shape ...int) *Node {
	return Param(tensor.New(shape...).RandNorm(rng, 0.7))
}

func TestAddBackward(t *testing.T) {
	rng := mathx.NewRNG(1)
	a, b := randParam(rng, 2, 3), randParam(rng, 2, 3)
	checkGrad(t, func() *Node { return MeanAll(Mul(Add(a, b), Add(a, b))) }, []*Node{a, b}, 1e-5)
}

func TestSubBackward(t *testing.T) {
	rng := mathx.NewRNG(2)
	a, b := randParam(rng, 3, 2), randParam(rng, 3, 2)
	checkGrad(t, func() *Node { return MeanAll(Mul(Sub(a, b), Sub(a, b))) }, []*Node{a, b}, 1e-5)
}

func TestMulScaleBackward(t *testing.T) {
	rng := mathx.NewRNG(3)
	a, b := randParam(rng, 2, 2), randParam(rng, 2, 2)
	checkGrad(t, func() *Node { return SumAll(Scale(Mul(a, b), 1.7)) }, []*Node{a, b}, 1e-5)
}

func TestMatMulBackward(t *testing.T) {
	rng := mathx.NewRNG(4)
	a, b := randParam(rng, 3, 4), randParam(rng, 4, 2)
	checkGrad(t, func() *Node { return MeanAll(Mul(MatMul(a, b), MatMul(a, b))) }, []*Node{a, b}, 1e-4)
}

func TestAddBiasBackward(t *testing.T) {
	rng := mathx.NewRNG(5)
	a, b := randParam(rng, 4, 3), randParam(rng, 1, 3)
	checkGrad(t, func() *Node { return MeanAll(Mul(AddBias(a, b), AddBias(a, b))) }, []*Node{a, b}, 1e-5)
}

func TestReLUBackward(t *testing.T) {
	rng := mathx.NewRNG(6)
	a := randParam(rng, 5, 5)
	checkGrad(t, func() *Node { return SumAll(Mul(ReLU(a), ReLU(a))) }, []*Node{a}, 1e-4)
}

func TestTanhSigmoidGELUBackward(t *testing.T) {
	rng := mathx.NewRNG(7)
	a := randParam(rng, 3, 3)
	checkGrad(t, func() *Node { return MeanAll(Tanh(a)) }, []*Node{a}, 1e-5)
	checkGrad(t, func() *Node { return MeanAll(Sigmoid(a)) }, []*Node{a}, 1e-5)
	checkGrad(t, func() *Node { return MeanAll(GELU(a)) }, []*Node{a}, 1e-5)
}

func TestSoftmaxRowsBackward(t *testing.T) {
	rng := mathx.NewRNG(8)
	a := randParam(rng, 3, 4)
	w := Const(tensor.New(3, 4).RandNorm(rng, 1))
	checkGrad(t, func() *Node { return SumAll(Mul(SoftmaxRows(a), w)) }, []*Node{a}, 1e-5)
}

func TestLayerNormBackward(t *testing.T) {
	rng := mathx.NewRNG(9)
	a := randParam(rng, 3, 5)
	g := Param(tensor.New(1, 5).Fill(1))
	b := Param(tensor.New(1, 5))
	w := Const(tensor.New(3, 5).RandNorm(rng, 1))
	checkGrad(t, func() *Node { return SumAll(Mul(LayerNorm(a, g, b, 1e-5), w)) }, []*Node{a, g, b}, 1e-4)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := mathx.NewRNG(10)
	a := Param(tensor.New(4, 8).RandNorm(rng, 3))
	g := Param(tensor.New(1, 8).Fill(1))
	b := Param(tensor.New(1, 8))
	out := LayerNorm(a, g, b, 1e-8)
	for i := 0; i < 4; i++ {
		row := out.Value.Row(i)
		if m := mathx.Mean(row); math.Abs(m) > 1e-9 {
			t.Errorf("row %d mean = %v", i, m)
		}
		if v := mathx.Variance(row); math.Abs(v-1) > 1e-6 {
			t.Errorf("row %d variance = %v", i, v)
		}
	}
}

func TestEmbeddingBackward(t *testing.T) {
	rng := mathx.NewRNG(11)
	w := randParam(rng, 6, 3)
	ids := []int{2, 0, 2, 5}
	checkGrad(t, func() *Node { return MeanAll(Mul(Embedding(w, ids), Embedding(w, ids))) }, []*Node{w}, 1e-5)
}

func TestEmbeddingGathersRows(t *testing.T) {
	w := Param(tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2))
	e := Embedding(w, []int{2, 0})
	if e.Value.At(0, 0) != 5 || e.Value.At(1, 1) != 2 {
		t.Fatalf("gathered = %v", e.Value)
	}
}

func TestConcatSliceColsBackward(t *testing.T) {
	rng := mathx.NewRNG(12)
	a, b := randParam(rng, 3, 2), randParam(rng, 3, 4)
	checkGrad(t, func() *Node {
		c := ConcatCols(a, b)
		return MeanAll(Mul(SliceCols(c, 1, 5), SliceCols(c, 1, 5)))
	}, []*Node{a, b}, 1e-5)
}

func TestSliceRowsBackward(t *testing.T) {
	rng := mathx.NewRNG(13)
	a := randParam(rng, 5, 3)
	checkGrad(t, func() *Node {
		s := SliceRows(a, 1, 4)
		return MeanAll(Mul(s, s))
	}, []*Node{a}, 1e-5)
}

func TestCrossEntropyBackward(t *testing.T) {
	rng := mathx.NewRNG(14)
	logits := randParam(rng, 4, 5)
	targets := []int{1, 4, 0, 2}
	checkGrad(t, func() *Node { return CrossEntropy(logits, targets) }, []*Node{logits}, 1e-5)
}

func TestCrossEntropyIgnoresPadding(t *testing.T) {
	rng := mathx.NewRNG(15)
	logits := randParam(rng, 3, 4)
	full := CrossEntropy(logits, []int{1, 2, 3}).Value.Data[0]
	padded := CrossEntropy(logits, []int{1, -1, -1}).Value.Data[0]
	only := CrossEntropy(SliceRows(logits, 0, 1), []int{1}).Value.Data[0]
	if math.Abs(padded-only) > 1e-12 {
		t.Errorf("padded loss %v != single-row loss %v", padded, only)
	}
	if padded == full {
		t.Error("padding had no effect")
	}
}

func TestCrossEntropyUniformLogits(t *testing.T) {
	logits := Param(tensor.New(2, 10))
	l := CrossEntropy(logits, []int{3, 7})
	want := math.Log(10)
	if math.Abs(l.Value.Data[0]-want) > 1e-12 {
		t.Errorf("uniform CE = %v, want ln 10 = %v", l.Value.Data[0], want)
	}
}

func TestMSEBackward(t *testing.T) {
	rng := mathx.NewRNG(16)
	a := randParam(rng, 3, 3)
	target := tensor.New(3, 3).RandNorm(rng, 1)
	checkGrad(t, func() *Node { return MSE(a, target) }, []*Node{a}, 1e-5)
}

func TestAddMaskBlocksAttention(t *testing.T) {
	rng := mathx.NewRNG(17)
	scores := Param(tensor.New(3, 3).RandNorm(rng, 1))
	mask := tensor.New(3, 3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			mask.Set(i, j, math.Inf(-1))
		}
	}
	att := SoftmaxRows(AddMask(scores, mask))
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if att.Value.At(i, j) != 0 {
				t.Errorf("future position (%d,%d) got attention %v", i, j, att.Value.At(i, j))
			}
		}
		s := mathx.Sum(att.Value.Row(i))
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d attention sums to %v", i, s)
		}
	}
}

func TestConstReceivesNoGrad(t *testing.T) {
	rng := mathx.NewRNG(18)
	a := randParam(rng, 2, 2)
	c := Const(tensor.New(2, 2).Fill(3))
	loss := MeanAll(Mul(a, c))
	Backward(loss)
	if c.Grad != nil {
		t.Error("const grew a gradient")
	}
	if a.Grad == nil || mathx.Sum(a.Grad.Data) == 0 {
		t.Error("param got no gradient")
	}
}

func TestBackwardAccumulates(t *testing.T) {
	a := Param(tensor.FromSlice([]float64{2}, 1, 1))
	loss := MeanAll(Mul(a, a)) // d/da a^2 = 2a = 4
	Backward(loss)
	Backward(loss)
	if g := a.Grad.Data[0]; math.Abs(g-8) > 1e-12 {
		t.Errorf("accumulated grad = %v, want 8", g)
	}
	a.ZeroGrad()
	if a.Grad.Data[0] != 0 {
		t.Error("ZeroGrad failed")
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Backward(Param(tensor.New(2, 2)))
}

// TestSharedSubgraph exercises a diamond-shaped graph where one node feeds
// two consumers; the gradient must be the sum of both paths.
func TestSharedSubgraph(t *testing.T) {
	rng := mathx.NewRNG(19)
	a := randParam(rng, 2, 2)
	checkGrad(t, func() *Node {
		h := Tanh(a)
		return Add(MeanAll(Mul(h, h)), SumAll(h))
	}, []*Node{a}, 1e-5)
}

// TestTinyRegressionConverges trains y = Wx with gradient descent using the
// engine end to end.
func TestTinyRegressionConverges(t *testing.T) {
	rng := mathx.NewRNG(20)
	trueW := tensor.FromSlice([]float64{1.5, -2, 0.5, 3}, 2, 2)
	x := tensor.New(16, 2).RandNorm(rng, 1)
	y := tensor.MatMul(x, tensor.Transpose(trueW))
	w := Param(tensor.New(2, 2).RandNorm(rng, 0.1))
	var last float64
	for step := 0; step < 300; step++ {
		w.ZeroGrad()
		pred := MatMul(Const(x), w)
		loss := MSE(pred, y)
		Backward(loss)
		tensor.AddScaledInPlace(w.Value, -0.1, w.Grad)
		last = loss.Value.Data[0]
	}
	if last > 1e-3 {
		t.Errorf("regression did not converge: loss=%v", last)
	}
	// Check w ≈ trueWᵀ.
	wt := tensor.Transpose(trueW)
	for i := range w.Value.Data {
		if math.Abs(w.Value.Data[i]-wt.Data[i]) > 0.05 {
			t.Errorf("w = %v, want %v", w.Value.Data, wt.Data)
			break
		}
	}
}
