package autograd

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestDropoutZeroIsIdentity(t *testing.T) {
	a := Param(tensor.FromSlice([]float64{1, 2, 3}, 1, 3))
	if Dropout(a, 0, mathx.NewRNG(1)) != a {
		t.Error("p=0 should return the input node")
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	a := Param(tensor.New(1, 1))
	for _, p := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			Dropout(a, p, mathx.NewRNG(1))
		}()
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := mathx.NewRNG(2)
	a := Const(tensor.New(1, 20000).Fill(1))
	out := Dropout(a, 0.3, rng)
	m := tensor.MeanAll(out.Value)
	if math.Abs(m-1) > 0.03 {
		t.Errorf("dropout mean = %v, want ~1 (inverted scaling)", m)
	}
	// Survivors carry exactly the 1/(1-p) scale, dropped are exactly 0.
	for _, v := range out.Value.Data {
		if v != 0 && math.Abs(v-1/0.7) > 1e-12 {
			t.Fatalf("unexpected value %v", v)
		}
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := mathx.NewRNG(3)
	a := Param(tensor.New(4, 4).RandNorm(mathx.NewRNG(4), 1))
	out := Dropout(a, 0.5, rng)
	Backward(SumAll(out))
	// Gradient equals the mask: zero where dropped, 1/(1-p) where kept.
	for i := range a.Grad.Data {
		g := a.Grad.Data[i]
		kept := out.Value.Data[i] != 0
		if kept && math.Abs(g-2) > 1e-12 {
			t.Fatalf("kept grad = %v, want 2", g)
		}
		if !kept && g != 0 {
			t.Fatalf("dropped grad = %v, want 0", g)
		}
	}
}
