package router

import (
	"fmt"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8372", i+1)
	}
	return out
}

// TestSuccessorsCoverAllBackends: every key's successor list is a
// permutation of the fleet — element 0 is the owner, the rest the failover
// order — and lookups are deterministic.
func TestSuccessorsCoverAllBackends(t *testing.T) {
	r := newRing(names(5))
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("session-%d", k)
		succ := r.successors(key)
		if len(succ) != 5 {
			t.Fatalf("key %q: %d successors, want 5", key, len(succ))
		}
		seen := map[int]bool{}
		for _, idx := range succ {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("key %q: bad successor list %v", key, succ)
			}
			seen[idx] = true
		}
		again := r.successors(key)
		if fmt.Sprint(again) != fmt.Sprint(succ) {
			t.Fatalf("key %q: lookup not deterministic: %v vs %v", key, succ, again)
		}
	}
}

// TestRingBalance: with 64 virtual nodes per backend, key ownership is
// roughly uniform — no backend owns a wildly outsized share.
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 8000
	r := newRing(names(backends))
	counts := make([]int, backends)
	for k := 0; k < keys; k++ {
		counts[r.successors(fmt.Sprintf("s%d", k))[0]]++
	}
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %d owns %.1f%% of keys (counts %v), want a roughly uniform share", i, 100*share, counts)
		}
	}
}

// TestMinimalRemapOnMembershipChange is the consistent-hashing contract the
// KV-affinity story rests on: removing one backend moves only the keys it
// owned, and each of those moves to exactly its next ring replica — the
// same backend retries already preferred, so failover and re-hashing agree.
func TestMinimalRemapOnMembershipChange(t *testing.T) {
	all := names(4)
	full := newRing(all)
	const removed = 2
	reduced := newRing(append(append([]string{}, all[:removed]...), all[removed+1:]...))
	// reduced index -> full index
	toFull := func(i int) int {
		if i >= removed {
			return i + 1
		}
		return i
	}
	moved := 0
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("user-%d", k)
		before := full.successors(key)
		after := toFull(reduced.successors(key)[0])
		if before[0] != removed {
			if after != before[0] {
				t.Fatalf("key %q moved from backend %d to %d though its owner stayed in the fleet", key, before[0], after)
			}
			continue
		}
		moved++
		// The orphaned key must land on its old second choice.
		if after != before[1] {
			t.Fatalf("orphaned key %q landed on %d, want next replica %d", key, after, before[1])
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed backend; test is vacuous")
	}
}
