package router

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/httpapi"
)

// Lease TTL clamp bounds for /v1/register. The floor keeps a typo'd
// lease_ms from flapping membership at sweep speed; the ceiling keeps a
// crashed worker from squatting in the ring for an hour.
const (
	minLease = 20 * time.Millisecond
	maxLease = 10 * time.Minute
)

// forgetFactor is the default forget horizon in lease TTLs: a member whose
// lease has been lapsed this many TTLs (and that no probe can reach) is
// removed from the ring entirely. Config.ForgetAfter overrides it.
const forgetFactor = 10

// membership is the router's dynamic view of the fleet: the current member
// set, the consistent-hash ring built over exactly that set, and the epoch
// stamping this (members, ring) version. The three always change together
// under mu; readers take one snapshot and work ring indices against the
// matching members slice. Mutations are copy-on-write — the members slice
// is never edited in place — so a snapshot stays internally consistent for
// as long as a relay holds it, even across concurrent joins and leaves.
//
// Epoch semantics: the epoch counts ring rebuilds. It starts at 0 over the
// seed fleet and increments once per membership change — a new worker
// joining, an explicit deregistration, or a sweep forgetting lapsed
// members (one increment per rebuild, however many members it removed).
// Lease renewal, expiry ejection, and probe ejection/readmission do NOT
// touch the epoch: they change health, not membership, and the ring —
// hence session placement for every healthy member — is a pure function
// of membership. That is what keeps remaps minimal: an ejected worker's
// sessions fail over along the unchanged successor order and snap back on
// readmission; only a genuine join/leave moves ownership, and then only
// of the arcs the joined/left member claims or frees.
type membership struct {
	mu      sync.RWMutex
	members []*backend
	ring    *ring
	epoch   uint64
	// tomb holds deregistration tombstones for peer sync: a member that
	// left keeps a versioned marker so a lagging gossip of its old lease
	// cannot resurrect it. A genuine rejoin re-registers with a version
	// above the tombstone's and clears it; stale tombstones are garbage-
	// collected by the sweep on the same forget horizon as lapsed members.
	tomb map[string]*tombstone
}

// tombstone marks a deregistered member for peer sync. ttl is the lease the
// member last held, kept for the forget-horizon computation.
type tombstone struct {
	version uint64
	at      time.Time
	ttl     time.Duration
}

func newMembership(seeds []*backend) *membership {
	m := &membership{members: seeds, tomb: make(map[string]*tombstone)}
	m.ring = newRing(namesOf(seeds))
	return m
}

func namesOf(bs []*backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.name
	}
	return out
}

// snapshot returns the current (members, ring) pair. The returned slice is
// immutable by construction; ring indices are valid into exactly it.
func (m *membership) snapshot() ([]*backend, *ring) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.members, m.ring
}

// Epoch returns the current membership version.
func (m *membership) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// rebuildLocked rebuilds the ring over the current member set and bumps
// the epoch. Callers hold mu.
func (m *membership) rebuildLocked() {
	m.ring = newRing(namesOf(m.members))
	m.epoch++
}

// register adds b as a leased member, or — when a member with the same
// canonical URL already exists — renews that member's lease instead (the
// heartbeat path, and how a restarted worker readmits itself). Only a
// genuinely new member changes the ring. A new member's transition version
// is stamped above any tombstone left by a previous incarnation, so peers
// adopt the rejoin over the remembered leave; renewals do NOT bump the
// version (see the version comment on backend). rec is the state to relay
// to peer routers.
func (m *membership) register(b *backend, lease time.Duration, now time.Time) (created bool, epoch uint64, rec syncRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.members {
		if e.name == b.name {
			e.renewLease(lease, now)
			rec, _ = e.syncRecord(now)
			return false, m.epoch, rec
		}
	}
	version := uint64(1)
	if t := m.tomb[b.name]; t != nil {
		version = t.version + 1
		delete(m.tomb, b.name)
	}
	b.renewLease(lease, now)
	b.setVersion(version)
	m.members = append(append([]*backend(nil), m.members...), b)
	m.rebuildLocked()
	rec, _ = b.syncRecord(now)
	return true, m.epoch, rec
}

// deregister removes the named member — the graceful-leave path. Removing
// an unknown name is a no-op (deregistration races with expiry sweeps and
// process shutdown, so it must be idempotent). A leased member leaves a
// versioned tombstone behind for peer sync; seeds (config-owned) do not.
func (m *membership) deregister(name string, now time.Time) (removed bool, epoch uint64, rec syncRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range m.members {
		if e.name == name {
			next := make([]*backend, 0, len(m.members)-1)
			next = append(next, m.members[:i]...)
			next = append(next, m.members[i+1:]...)
			m.members = next
			if e.isLeased() {
				t := &tombstone{version: e.getVersion() + 1, at: now, ttl: e.leaseTTL()}
				m.tomb[name] = t
				rec = t.syncRecord(now, name)
			}
			m.rebuildLocked()
			return true, m.epoch, rec
		}
	}
	if t := m.tomb[name]; t != nil {
		rec = t.syncRecord(now, name)
	}
	return false, m.epoch, rec
}

// syncRecord renders a tombstone for a peer-sync exchange.
func (t *tombstone) syncRecord(now time.Time, name string) syncRecord {
	return syncRecord{
		URL:     name,
		Version: t.version,
		Gone:    true,
		LeaseMS: t.ttl.Milliseconds(),
		AgeMS:   now.Sub(t.at).Milliseconds(),
	}
}

// export snapshots every gossiped record — leased members and tombstones —
// for one peer-sync exchange. Seed members are excluded: each router's
// seed list is local configuration, not replicated state.
func (m *membership) export(now time.Time) []syncRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]syncRecord, 0, len(m.members)+len(m.tomb))
	for _, b := range m.members {
		if rec, ok := b.syncRecord(now); ok {
			out = append(out, rec)
		}
	}
	for name, t := range m.tomb {
		out = append(out, t.syncRecord(now, name))
	}
	return out
}

// merge folds one peer's records into the local membership and reports the
// member-set changes it caused. The rules make every router converge on
// the same member set regardless of delivery order:
//
//   - higher transition version wins outright (a rejoin beats the leave it
//     followed; a leave beats the join it followed);
//   - equal versions with both sides leased merge by renewal recency
//     (ages, so clock skew cancels) — same incarnation, later heartbeat;
//   - equal versions with a tombstone on either side resolve toward the
//     tombstone (removal is safe: a live worker's next direct heartbeat
//     re-registers above the tombstone within one interval);
//   - records about local seed members are ignored (config beats gossip);
//   - an unknown member whose gossiped lease already expired in transit is
//     not adopted — peers exchange live state, not corpses.
//
// Lease adoption computes expiry from the origin's renewal instant, so a
// member kept alive by heartbeats to SOME router stays alive on every
// router that syncs with it, within one sync interval.
func (m *membership) merge(recs []syncRecord, now time.Time, defaultLease time.Duration) (joins, leaves int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, rec := range recs {
		name := strings.TrimSuffix(rec.URL, "/")
		if name == "" {
			continue
		}
		var e *backend
		idx := -1
		for i, b := range m.members {
			if b.name == name {
				e, idx = b, i
				break
			}
		}
		eventAt := now.Add(-time.Duration(rec.AgeMS) * time.Millisecond)
		lease := time.Duration(rec.LeaseMS) * time.Millisecond
		if lease <= 0 {
			lease = defaultLease
		}
		if lease < minLease {
			lease = minLease
		}
		if lease > maxLease {
			lease = maxLease
		}
		if rec.Gone {
			if e != nil {
				if !e.isLeased() {
					continue // seeds are config-owned
				}
				if rec.Version >= e.getVersion() {
					next := make([]*backend, 0, len(m.members)-1)
					next = append(next, m.members[:idx]...)
					next = append(next, m.members[idx+1:]...)
					m.members = next
					m.tomb[name] = &tombstone{version: rec.Version, at: eventAt, ttl: e.leaseTTL()}
					leaves++
					changed = true
				}
			} else if t := m.tomb[name]; t == nil || rec.Version > t.version {
				m.tomb[name] = &tombstone{version: rec.Version, at: eventAt, ttl: lease}
			}
			continue
		}
		if t := m.tomb[name]; t != nil && t.version >= rec.Version {
			continue // the remembered leave is at least as recent
		}
		if e != nil {
			if !e.isLeased() {
				continue // seeds are config-owned
			}
			switch v := e.getVersion(); {
			case rec.Version > v:
				e.adoptLease(rec.Version, lease, eventAt, now)
			case rec.Version == v:
				e.freshenLease(lease, eventAt, now)
			}
			continue
		}
		if !eventAt.Add(lease).After(now) {
			continue // expired in transit
		}
		b, err := newBackend(name)
		if err != nil {
			continue
		}
		b.adoptLease(rec.Version, lease, eventAt, now)
		delete(m.tomb, name)
		m.members = append(append([]*backend(nil), m.members...), b)
		joins++
		changed = true
	}
	if changed {
		m.rebuildLocked()
	}
	return joins, leaves
}

// sweep advances every member's lease clock: newly expired leases eject
// their member (exactly like a failed probe crossing the threshold), and
// members lapsed past the forget horizon — with no probe reaching them
// either — are removed from the ring. forgetAfter <= 0 selects the
// default horizon of forgetFactor lease TTLs; the probe-reachability
// guard means a live worker whose heartbeats broke degrades to
// probe-governed health instead of being silently dropped mid-service.
func (m *membership) sweep(now time.Time, forgetAfter time.Duration) (expired, forgotten int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keep []*backend
	for i, b := range m.members {
		newly, lapsedFor := b.expireIfDue(now)
		if newly {
			expired++
		}
		horizon := forgetAfter
		if horizon <= 0 {
			horizon = forgetFactor * b.leaseTTL()
		}
		if lapsedFor > horizon && !b.isHealthy() {
			forgotten++
			if keep == nil {
				keep = append(keep, m.members[:i]...)
			}
			continue
		}
		if keep != nil {
			keep = append(keep, b)
		}
	}
	if forgotten > 0 {
		m.members = keep
		m.rebuildLocked()
	}
	// Tombstone GC on the same horizon: once every peer has had ample time
	// to learn a leave, the marker (and its resurrection guard) can go — a
	// version-1 re-register after this point is indistinguishable from a
	// brand-new member, which is exactly what it is by then.
	for name, t := range m.tomb {
		horizon := forgetAfter
		if horizon <= 0 {
			horizon = forgetFactor * t.ttl
		}
		if now.Sub(t.at) > horizon {
			delete(m.tomb, name)
		}
	}
	return expired, forgotten
}

// digest hashes the member set — sorted canonical URLs plus their
// leased/seed class — into one comparable word. Because the ring is a pure
// function of the member names, equal digests imply identical rings and
// identical session placement: the "epoch-equivalent" check two routers
// run against each other (epochs themselves are local rebuild counters and
// legitimately differ across routers that converged along different event
// orders).
func (m *membership) digest() uint64 {
	m.mu.RLock()
	names := make([]string, 0, len(m.members))
	for _, b := range m.members {
		tag := "seed"
		if b.isLeased() {
			tag = "leased"
		}
		names = append(names, b.name+"|"+tag)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	h := uint64(14695981039346656037)
	for _, s := range names {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= uint64('\n')
		h *= 1099511628211
	}
	return h
}

// leaseTTL reads the member's granted TTL (0 for seed members).
func (b *backend) leaseTTL() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ttl
}

// injectRegister evaluates the control-plane failpoint site shared by the
// register and deregister handlers. Reports whether the handler must stop.
func injectRegister(w http.ResponseWriter) bool {
	err := failpoint.Inject(failpoint.RouterRegister)
	if err == nil {
		return false
	}
	if errors.Is(err, failpoint.ErrDrop) {
		panic(http.ErrAbortHandler)
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	return true
}

// handleRegister serves POST /v1/register: a worker joining the fleet or
// renewing its lease (the two are the same call — a register of an
// existing member is a heartbeat). The granted lease is the requested one
// clamped to [minLease, maxLease], defaulting to Config.DefaultLease.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	if injectRegister(w) {
		return
	}
	var req httpapi.RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.LeaseMS < 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("lease_ms %d must not be negative", req.LeaseMS)})
		return
	}
	b, err := newBackend(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	lease := time.Duration(req.LeaseMS) * time.Millisecond
	if lease == 0 {
		lease = rt.cfg.DefaultLease
	}
	if lease < minLease {
		lease = minLease
	}
	if lease > maxLease {
		lease = maxLease
	}
	created, epoch, rec := rt.mem.register(b, lease, time.Now())
	if created {
		rt.nJoins.Add(1)
		// A genuine join is worth a proactive relay so peers converge at
		// relay speed instead of anti-entropy speed; renewals ride the
		// periodic sync (peers recompute freshness from record ages).
		rt.relayToPeers(rec)
	}
	writeJSON(w, http.StatusOK, httpapi.RegisterResponse{
		Epoch: epoch, LeaseMS: lease.Milliseconds(), Created: created,
	})
}

// handleDeregister serves POST /v1/deregister: a draining worker leaving
// the fleet explicitly, ahead of its lease. Idempotent — deregistering a
// name that is not a member reports removed=false with a 200.
func (rt *Router) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if injectRegister(w) {
		return
	}
	var req httpapi.DeregisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "url required"})
		return
	}
	removed, epoch, rec := rt.mem.deregister(strings.TrimSuffix(req.URL, "/"), time.Now())
	if removed {
		rt.nLeaves.Add(1)
		if rec.Gone {
			// Relay the tombstone so peers drop the member now rather than
			// at their own lease expiry.
			rt.relayToPeers(rec)
		}
	}
	writeJSON(w, http.StatusOK, httpapi.DeregisterResponse{Epoch: epoch, Removed: removed})
}
