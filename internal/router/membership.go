package router

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/httpapi"
)

// Lease TTL clamp bounds for /v1/register. The floor keeps a typo'd
// lease_ms from flapping membership at sweep speed; the ceiling keeps a
// crashed worker from squatting in the ring for an hour.
const (
	minLease = 20 * time.Millisecond
	maxLease = 10 * time.Minute
)

// forgetFactor is the default forget horizon in lease TTLs: a member whose
// lease has been lapsed this many TTLs (and that no probe can reach) is
// removed from the ring entirely. Config.ForgetAfter overrides it.
const forgetFactor = 10

// membership is the router's dynamic view of the fleet: the current member
// set, the consistent-hash ring built over exactly that set, and the epoch
// stamping this (members, ring) version. The three always change together
// under mu; readers take one snapshot and work ring indices against the
// matching members slice. Mutations are copy-on-write — the members slice
// is never edited in place — so a snapshot stays internally consistent for
// as long as a relay holds it, even across concurrent joins and leaves.
//
// Epoch semantics: the epoch counts ring rebuilds. It starts at 0 over the
// seed fleet and increments once per membership change — a new worker
// joining, an explicit deregistration, or a sweep forgetting lapsed
// members (one increment per rebuild, however many members it removed).
// Lease renewal, expiry ejection, and probe ejection/readmission do NOT
// touch the epoch: they change health, not membership, and the ring —
// hence session placement for every healthy member — is a pure function
// of membership. That is what keeps remaps minimal: an ejected worker's
// sessions fail over along the unchanged successor order and snap back on
// readmission; only a genuine join/leave moves ownership, and then only
// of the arcs the joined/left member claims or frees.
type membership struct {
	mu      sync.RWMutex
	members []*backend
	ring    *ring
	epoch   uint64
}

func newMembership(seeds []*backend) *membership {
	m := &membership{members: seeds}
	m.ring = newRing(namesOf(seeds))
	return m
}

func namesOf(bs []*backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.name
	}
	return out
}

// snapshot returns the current (members, ring) pair. The returned slice is
// immutable by construction; ring indices are valid into exactly it.
func (m *membership) snapshot() ([]*backend, *ring) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.members, m.ring
}

// Epoch returns the current membership version.
func (m *membership) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// rebuildLocked rebuilds the ring over the current member set and bumps
// the epoch. Callers hold mu.
func (m *membership) rebuildLocked() {
	m.ring = newRing(namesOf(m.members))
	m.epoch++
}

// register adds b as a leased member, or — when a member with the same
// canonical URL already exists — renews that member's lease instead (the
// heartbeat path, and how a restarted worker readmits itself). Only a
// genuinely new member changes the ring.
func (m *membership) register(b *backend, lease time.Duration, now time.Time) (created bool, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.members {
		if e.name == b.name {
			e.renewLease(lease, now)
			return false, m.epoch
		}
	}
	b.renewLease(lease, now)
	m.members = append(append([]*backend(nil), m.members...), b)
	m.rebuildLocked()
	return true, m.epoch
}

// deregister removes the named member — the graceful-leave path. Removing
// an unknown name is a no-op (deregistration races with expiry sweeps and
// process shutdown, so it must be idempotent).
func (m *membership) deregister(name string) (removed bool, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range m.members {
		if e.name == name {
			next := make([]*backend, 0, len(m.members)-1)
			next = append(next, m.members[:i]...)
			next = append(next, m.members[i+1:]...)
			m.members = next
			m.rebuildLocked()
			return true, m.epoch
		}
	}
	return false, m.epoch
}

// sweep advances every member's lease clock: newly expired leases eject
// their member (exactly like a failed probe crossing the threshold), and
// members lapsed past the forget horizon — with no probe reaching them
// either — are removed from the ring. forgetAfter <= 0 selects the
// default horizon of forgetFactor lease TTLs; the probe-reachability
// guard means a live worker whose heartbeats broke degrades to
// probe-governed health instead of being silently dropped mid-service.
func (m *membership) sweep(now time.Time, forgetAfter time.Duration) (expired, forgotten int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keep []*backend
	for i, b := range m.members {
		newly, lapsedFor := b.expireIfDue(now)
		if newly {
			expired++
		}
		horizon := forgetAfter
		if horizon <= 0 {
			horizon = forgetFactor * b.leaseTTL()
		}
		if lapsedFor > horizon && !b.isHealthy() {
			forgotten++
			if keep == nil {
				keep = append(keep, m.members[:i]...)
			}
			continue
		}
		if keep != nil {
			keep = append(keep, b)
		}
	}
	if forgotten > 0 {
		m.members = keep
		m.rebuildLocked()
	}
	return expired, forgotten
}

// leaseTTL reads the member's granted TTL (0 for seed members).
func (b *backend) leaseTTL() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ttl
}

// injectRegister evaluates the control-plane failpoint site shared by the
// register and deregister handlers. Reports whether the handler must stop.
func injectRegister(w http.ResponseWriter) bool {
	err := failpoint.Inject(failpoint.RouterRegister)
	if err == nil {
		return false
	}
	if errors.Is(err, failpoint.ErrDrop) {
		panic(http.ErrAbortHandler)
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	return true
}

// handleRegister serves POST /v1/register: a worker joining the fleet or
// renewing its lease (the two are the same call — a register of an
// existing member is a heartbeat). The granted lease is the requested one
// clamped to [minLease, maxLease], defaulting to Config.DefaultLease.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	if injectRegister(w) {
		return
	}
	var req httpapi.RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.LeaseMS < 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("lease_ms %d must not be negative", req.LeaseMS)})
		return
	}
	b, err := newBackend(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	lease := time.Duration(req.LeaseMS) * time.Millisecond
	if lease == 0 {
		lease = rt.cfg.DefaultLease
	}
	if lease < minLease {
		lease = minLease
	}
	if lease > maxLease {
		lease = maxLease
	}
	created, epoch := rt.mem.register(b, lease, time.Now())
	if created {
		rt.nJoins.Add(1)
	}
	writeJSON(w, http.StatusOK, httpapi.RegisterResponse{
		Epoch: epoch, LeaseMS: lease.Milliseconds(), Created: created,
	})
}

// handleDeregister serves POST /v1/deregister: a draining worker leaving
// the fleet explicitly, ahead of its lease. Idempotent — deregistering a
// name that is not a member reports removed=false with a 200.
func (rt *Router) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if injectRegister(w) {
		return
	}
	var req httpapi.DeregisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "url required"})
		return
	}
	removed, epoch := rt.mem.deregister(strings.TrimSuffix(req.URL, "/"))
	if removed {
		rt.nLeaves.Add(1)
	}
	writeJSON(w, http.StatusOK, httpapi.DeregisterResponse{Epoch: epoch, Removed: removed})
}
