package router

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// backend is one llm-serve worker behind the router: its address, the
// router's own view of load on it, and its health state machine.
//
// Health is two signals folded into one counter. Passive detection: every
// failed proxy attempt (connect error, 5xx) counts a failure, every
// successful one clears the count — so a dying worker is noticed at traffic
// speed, between health ticks. Active probing: the health loop's /healthz
// result feeds the same counter, which is also the only readmission path a
// worker ejected while idle has. FailThreshold consecutive failures eject
// the backend (routing walks past it); the next successful probe or proxy
// readmits it.
type backend struct {
	name string   // canonical URL string, the ring identity
	base *url.URL // parsed base for building worker endpoints

	// inflight is the router-side count of requests currently proxied to
	// this backend — the always-fresh half of the load signal.
	inflight atomic.Int64

	// Cumulative counters, exported on /v1/stats.
	requests  atomic.Uint64 // proxy attempts sent
	failures  atomic.Uint64 // failed proxy attempts + failed probes
	ejections atomic.Uint64 // healthy -> ejected transitions

	mu      sync.Mutex
	healthy bool
	fails   int  // consecutive failures since the last success
	load    int  // last polled worker gauge: in_flight + queued
	polled  bool // load has been populated at least once

	// Lease state (zero for static seed members, which never expire). A
	// worker that registered via /v1/register must renew within ttl of its
	// last heartbeat; past expires the sweep ejects it exactly like a
	// failed probe would, and once it has stayed lapsed long enough the
	// membership layer forgets it entirely (removes it from the ring).
	leased  bool
	ttl     time.Duration
	expires time.Time
	lapsed  bool // the current lease has expired without renewal

	// Peer-sync state. version orders membership TRANSITIONS for this URL
	// (join, rejoin-after-leave, leave) across routers; it is NOT bumped by
	// renewals, because each router would bump independently and a
	// high-version stale record would then beat a low-version fresh one.
	// Renewal freshness is ordered by renewedAt instead: equal-version
	// records merge by most-recent renewal, carried between routers as an
	// age (duration since renewal) so wall-clock skew cancels out.
	version   uint64
	renewedAt time.Time
}

func newBackend(raw string) (*backend, error) {
	raw = strings.TrimSuffix(raw, "/")
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("router: bad backend URL %q: %w", raw, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("router: backend URL %q needs scheme and host", raw)
	}
	// Optimistically healthy: a cold router must route before its first
	// probe tick, and a wrong guess self-corrects within FailThreshold
	// attempts.
	return &backend{name: raw, base: u, healthy: true}, nil
}

// endpoint returns the worker URL for path (e.g. "/v1/generate").
func (b *backend) endpoint(path string) string { return b.name + path }

// markFailure records one failed attempt or probe against the backend and
// ejects it once threshold consecutive failures accumulate.
func (b *backend) markFailure(threshold int) {
	b.failures.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.healthy && b.fails >= threshold {
		b.healthy = false
		b.ejections.Add(1)
	}
}

// markSuccess clears the failure streak and readmits an ejected backend.
func (b *backend) markSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.healthy = true
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// renewLease grants or renews the backend's registration lease. A
// heartbeat is an affirmative liveness signal from the worker process, so
// it clears the failure streak and readmits an ejected backend the same
// way a successful probe does — which is also what bounds a rejoining
// worker's readmission time to one register round-trip.
func (b *backend) renewLease(ttl time.Duration, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.leased, b.ttl, b.expires, b.lapsed = true, ttl, now.Add(ttl), false
	b.renewedAt = now
	b.fails = 0
	b.healthy = true
}

// adoptLease installs lease state learned from a peer router rather than
// from the worker itself: the transition version is taken as-is and the
// expiry is computed from the renewal instant at the ORIGIN router
// (eventAt = the peer's clock reading translated through an age, so skew
// cancels). Unlike renewLease, a record that is already expired on arrival
// does not readmit the backend — second-hand staleness is not liveness
// evidence — it just updates the books and lets the sweep eject as usual.
func (b *backend) adoptLease(version uint64, ttl time.Duration, eventAt, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.version = version
	b.leased, b.ttl, b.expires = true, ttl, eventAt.Add(ttl)
	b.renewedAt = eventAt
	if b.expires.After(now) {
		b.lapsed = false
		b.fails = 0
		b.healthy = true
	}
}

// freshenLease applies an equal-version peer record: only a renewal more
// recent than the one already on the books moves anything (both routers
// heard from the same incarnation of the worker; the later heartbeat wins).
func (b *backend) freshenLease(ttl time.Duration, eventAt, now time.Time) {
	b.mu.Lock()
	if !b.leased || !eventAt.After(b.renewedAt) {
		b.mu.Unlock()
		return
	}
	v := b.version
	b.mu.Unlock()
	b.adoptLease(v, ttl, eventAt, now)
}

// getVersion reads the member's transition version.
func (b *backend) getVersion() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.version
}

// setVersion stamps the transition version on a freshly created member.
func (b *backend) setVersion(v uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.version = v
}

// isLeased distinguishes registered members from config-seeded ones; peer
// sync never touches seeds (each router's seed list is its own config).
func (b *backend) isLeased() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.leased
}

// syncRecord renders the member for a peer-sync exchange. Seed members are
// not gossiped (ok=false): they are configuration, not observed state.
func (b *backend) syncRecord(now time.Time) (rec syncRecord, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.leased {
		return syncRecord{}, false
	}
	return syncRecord{
		URL:     b.name,
		Version: b.version,
		LeaseMS: b.ttl.Milliseconds(),
		AgeMS:   now.Sub(b.renewedAt).Milliseconds(),
	}, true
}

// expireIfDue checks the lease against now. On the first sweep past the
// expiry it marks the lease lapsed and ejects the backend (one ejection,
// like crossing FailThreshold); newly reports that transition. lapsedFor
// is how long the lease has been expired — the membership layer's
// forget-this-member clock.
func (b *backend) expireIfDue(now time.Time) (newly bool, lapsedFor time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.leased || now.Before(b.expires) {
		return false, 0
	}
	lapsedFor = now.Sub(b.expires)
	if !b.lapsed {
		b.lapsed = true
		newly = true
		if b.healthy {
			b.healthy = false
			b.ejections.Add(1)
		}
	}
	return newly, lapsedFor
}

// leaseInfo snapshots the lease state for /v1/stats.
func (b *backend) leaseInfo(now time.Time) (leased bool, remainingMS int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.leased {
		return false, 0
	}
	return true, b.expires.Sub(now).Milliseconds()
}

// setLoad records the worker-reported queue gauge from a stats poll.
func (b *backend) setLoad(load int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.load = load
	b.polled = true
}

// score is the routing load signal: the router's own in-flight count plus
// the worker's last-polled queue gauge. The first half is exact and
// instantaneous; the second folds in load the worker sees from elsewhere
// (other routers, direct clients) at health-tick freshness.
func (b *backend) score() int {
	b.mu.Lock()
	load := b.load
	b.mu.Unlock()
	return int(b.inflight.Load()) + load
}
