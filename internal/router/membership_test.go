package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/serve"
)

// registerWorker POSTs one /v1/register call and decodes the grant.
func registerWorker(t *testing.T, routerURL, workerURL string, leaseMS int64) httpapi.RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(httpapi.RegisterRequest{URL: workerURL, LeaseMS: leaseMS})
	resp, err := http.Post(routerURL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", workerURL, resp.StatusCode)
	}
	var out httpapi.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// deregisterWorker POSTs one /v1/deregister call.
func deregisterWorker(t *testing.T, routerURL, workerURL string) httpapi.DeregisterResponse {
	t.Helper()
	body, _ := json.Marshal(httpapi.DeregisterRequest{URL: workerURL})
	resp, err := http.Post(routerURL+"/v1/deregister", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister %s: status %d", workerURL, resp.StatusCode)
	}
	var out httpapi.DeregisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// backendIn finds one backend's stats row by name.
func backendIn(st Stats, name string) (BackendStats, bool) {
	for _, b := range st.Backends {
		if b.Name == name {
			return b, true
		}
	}
	return BackendStats{}, false
}

// TestRegisterJoinsRing: a register call adds the worker to the member set
// under a new epoch, grants the default lease when none is requested, and
// the joined worker starts owning ring arcs — keyed traffic reaches it.
func TestRegisterJoinsRing(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	rt, ts := newTestRouter(t, ws, nil)
	if e := rt.Stats().Epoch; e != 0 {
		t.Fatalf("epoch over the seed fleet = %d, want 0", e)
	}

	w3 := newFakeWorker(t, "w2", 2, nil)
	grant := registerWorker(t, ts.URL, w3.ts.URL, 0)
	if !grant.Created || grant.Epoch != 1 {
		t.Fatalf("grant = %+v, want created under epoch 1", grant)
	}
	if grant.LeaseMS != (15 * time.Second).Milliseconds() {
		t.Fatalf("default lease grant = %dms, want 15000", grant.LeaseMS)
	}
	st := rt.Stats()
	if st.Members != 3 || st.Joins != 1 {
		t.Fatalf("members=%d joins=%d after one register, want 3/1", st.Members, st.Joins)
	}
	b, ok := backendIn(st, w3.ts.URL)
	if !ok || !b.Leased {
		t.Fatalf("joined worker missing or not leased in stats: %+v", st.Backends)
	}

	// The new member must actually own arcs: find a session the post-join
	// ring places on it and check the request lands there.
	names := append(urlsOf(ws), w3.ts.URL)
	rg := newRing(names)
	session := ""
	for s := 0; s < 64; s++ {
		key := fmt.Sprintf("sess-%d", s)
		if names[rg.successors(key)[0]] == w3.ts.URL {
			session = key
			break
		}
	}
	if session == "" {
		t.Fatal("no session hashed to the joined worker in 64 tries")
	}
	if status, got, _ := generate(t, ts.URL, session, nil); status != http.StatusOK || got != "w2" {
		t.Fatalf("keyed request for the joined worker's session: status %d completion %q", status, got)
	}

	// Re-registering the same worker is a heartbeat, not a join: no new
	// epoch, no join counted.
	again := registerWorker(t, ts.URL, w3.ts.URL, 0)
	if again.Created || again.Epoch != 1 {
		t.Fatalf("re-register = %+v, want renewal under unchanged epoch 1", again)
	}
	if st := rt.Stats(); st.Joins != 1 || st.Members != 3 {
		t.Fatalf("re-register changed the ledger: joins=%d members=%d", st.Joins, st.Members)
	}
}

// TestLeaseExpiryEjectsAndHeartbeatReadmits: a lease that lapses ejects
// the worker exactly like probe failure — without a membership change —
// renewals keep it alive indefinitely, and a later heartbeat readmits it
// with its ring position intact.
func TestLeaseExpiryEjectsAndHeartbeatReadmits(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rt, ts := newTestRouter(t, ws, nil)

	// An unreachable URL so probes cannot readmit it behind the lease's
	// back; only heartbeats govern it.
	dead := "http://127.0.0.1:1"
	registerWorker(t, ts.URL, dead, 50)

	// Renewals across several TTLs must hold the member healthy-from-lease
	// even though every probe fails... until the failure streak ejects it;
	// what must NOT fire during renewal is a lease expiry.
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		registerWorker(t, ts.URL, dead, 50)
	}
	if st := rt.Stats(); st.LeaseExpiries != 0 {
		t.Fatalf("lease expired despite renewals: %d expiries", st.LeaseExpiries)
	}

	// Stop renewing: the sweep must eject it via exactly the lease path.
	waitFor(t, "lease expiry after renewals stop", func() bool {
		return rt.Stats().LeaseExpiries == 1
	})
	waitFor(t, "ejection of the lapsed member", func() bool {
		b, ok := backendIn(rt.Stats(), dead)
		return ok && !b.Healthy
	})
	st := rt.Stats()
	if st.Members != 2 || st.Epoch != 1 {
		t.Fatalf("expiry changed membership: members=%d epoch=%d, want 2/1", st.Members, st.Epoch)
	}

	// One heartbeat readmits — the bounded-readmission contract.
	grant := registerWorker(t, ts.URL, dead, 50)
	if grant.Created {
		t.Fatal("re-register after expiry created a new member; the lapsed one should have been renewed")
	}
	b, _ := backendIn(rt.Stats(), dead)
	if !b.Healthy {
		t.Fatal("heartbeat did not readmit the lapsed member")
	}
	if st := rt.Stats(); st.Epoch != 1 {
		t.Fatalf("expiry+readmission moved the epoch to %d; health changes must not", st.Epoch)
	}
}

// TestDeregisterRemovesFromRing: graceful leave removes the member under a
// new epoch and is idempotent.
func TestDeregisterRemovesFromRing(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	rt, ts := newTestRouter(t, ws, nil)
	w3 := newFakeWorker(t, "w2", 2, nil)
	registerWorker(t, ts.URL, w3.ts.URL, 0)

	gone := deregisterWorker(t, ts.URL, w3.ts.URL)
	if !gone.Removed || gone.Epoch != 2 {
		t.Fatalf("deregister = %+v, want removed under epoch 2", gone)
	}
	st := rt.Stats()
	if st.Members != 2 || st.Leaves != 1 {
		t.Fatalf("members=%d leaves=%d after leave, want 2/1", st.Members, st.Leaves)
	}
	if _, ok := backendIn(st, w3.ts.URL); ok {
		t.Fatal("departed worker still listed in stats")
	}

	again := deregisterWorker(t, ts.URL, w3.ts.URL)
	if again.Removed || again.Epoch != 2 {
		t.Fatalf("second deregister = %+v, want idempotent no-op", again)
	}
}

// TestForgetLapsedMember: a member that stays lapsed past the forget
// horizon with probes failing too is removed from the ring entirely —
// while a probe-reachable member is merely ejected, never forgotten.
func TestForgetLapsedMember(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rt, ts := newTestRouter(t, ws, func(c *Config) {
		c.ForgetAfter = 60 * time.Millisecond
	})
	registerWorker(t, ts.URL, "http://127.0.0.1:1", 20)

	waitFor(t, "lapsed unreachable member to be forgotten", func() bool {
		return rt.Stats().Forgotten == 1
	})
	st := rt.Stats()
	if st.Members != 1 || st.Epoch != 2 {
		t.Fatalf("after forget: members=%d epoch=%d, want 1 member under epoch 2 (join+forget)", st.Members, st.Epoch)
	}

	// A reachable worker whose heartbeats died degrades to probe-governed
	// health instead: lapsed, ejected-then-readmitted by probes, but never
	// forgotten.
	w2 := newFakeWorker(t, "w1", 2, nil)
	registerWorker(t, ts.URL, w2.ts.URL, 20)
	time.Sleep(150 * time.Millisecond) // many forget horizons past expiry
	st = rt.Stats()
	if st.Forgotten != 1 {
		t.Fatalf("probe-reachable member was forgotten (forgotten=%d); only unreachable ones may be", st.Forgotten)
	}
	if b, ok := backendIn(st, w2.ts.URL); !ok || !b.Healthy {
		t.Fatalf("probe-reachable lapsed member should stay a healthy member: %+v", st.Backends)
	}
}

// TestMinimalRemapAcrossJoinLeave: the routing layer's own candidate
// ordering obeys the ring's minimal-remap guarantee across a membership
// change — a session moves only onto a joiner or off a leaver, never
// between two unaffected members.
func TestMinimalRemapAcrossJoinLeave(t *testing.T) {
	ws := startWorkers(t, 3, 2, nil)
	rt, ts := newTestRouter(t, ws, nil)
	w4 := newFakeWorker(t, "w3", 2, nil)

	const sessions = 40
	before := make([]string, sessions)
	for s := range before {
		before[s] = rt.candidates(fmt.Sprintf("sess-%d", s))[0].name
	}

	registerWorker(t, ts.URL, w4.ts.URL, 0)
	moved := 0
	for s := range before {
		owner := rt.candidates(fmt.Sprintf("sess-%d", s))[0].name
		if owner == before[s] {
			continue
		}
		moved++
		if owner != w4.ts.URL {
			t.Fatalf("session %d moved %s -> %s, but only the joiner may gain sessions", s, before[s], owner)
		}
	}
	if moved == 0 {
		t.Fatalf("joiner claimed no sessions out of %d; the remap check proved nothing", sessions)
	}

	afterJoin := make([]string, sessions)
	for s := range afterJoin {
		afterJoin[s] = rt.candidates(fmt.Sprintf("sess-%d", s))[0].name
	}
	deregisterWorker(t, ts.URL, w4.ts.URL)
	for s := range afterJoin {
		owner := rt.candidates(fmt.Sprintf("sess-%d", s))[0].name
		if afterJoin[s] == w4.ts.URL {
			if owner != before[s] {
				t.Fatalf("session %d did not return to its pre-join owner: %s != %s", s, owner, before[s])
			}
			continue
		}
		if owner != afterJoin[s] {
			t.Fatalf("session %d moved %s -> %s though neither was the leaver", s, afterJoin[s], owner)
		}
	}
}

// TestRetryAfterDerived: the Retry-After hints are derived from the
// configured probe and lease cadences, not hardcoded.
func TestRetryAfterDerived(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rt, ts := newTestRouter(t, ws, func(c *Config) {
		c.HealthInterval = 4 * time.Second
		c.DefaultLease = 60 * time.Second
	})
	if got := rt.retryAfterLoad(); got != "8" {
		t.Fatalf("retryAfterLoad = %q, want 8 (two 4s probe intervals)", got)
	}
	if got := rt.retryAfterMembership(); got != "15" {
		t.Fatalf("retryAfterMembership = %q, want 15 (a quarter of the 60s lease)", got)
	}

	// And the header actually carries the derived value on a flux 503.
	rt.StartDrain()
	status, _, hdr := generate(t, ts.URL, "", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", status)
	}
	if got := hdr.Get("Retry-After"); got != "15" {
		t.Fatalf("draining Retry-After = %q, want the lease-derived 15", got)
	}
}

// TestJitteredBackoffBounds: every draw stays in [d/2, d] and the draws
// are not constant — the desynchronization the jitter exists for.
func TestJitteredBackoffBounds(t *testing.T) {
	const d = 10 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		got := jitteredBackoff(d)
		if got < d/2 || got > d {
			t.Fatalf("jitteredBackoff(%v) = %v outside [%v, %v]", d, got, d/2, d)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 jittered draws were all identical; backoff is not jittered")
	}
	if got := jitteredBackoff(0); got != 0 {
		t.Fatalf("jitteredBackoff(0) = %v, want 0", got)
	}
}

// TestMembershipRace hammers register/renew/expire/deregister while
// traffic, candidate selection, and stats readers run — the -race proof
// that snapshot readers and copy-on-write mutations do not collide.
func TestMembershipRace(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	rt, ts := newTestRouter(t, ws, nil)
	w3 := newFakeWorker(t, "w2", 2, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(stop) })
	running := func() bool {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}

	// Join/leave flapping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for running() {
			registerWorker(t, ts.URL, w3.ts.URL, 0)
			deregisterWorker(t, ts.URL, w3.ts.URL)
		}
	}()
	// A constantly-expiring unreachable member keeps the sweep busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for running() {
			registerWorker(t, ts.URL, "http://127.0.0.1:1", 20)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Traffic (keyed and unkeyed) relays against whatever snapshot it got;
	// some requests may land on flapping members and fail — the race
	// detector, not the status code, is the assertion here.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; running(); i++ {
				session := ""
				if i%2 == 0 {
					session = fmt.Sprintf("sess-%d-%d", c, i%5)
				}
				body := []byte(fmt.Sprintf(`{"prompt":"the king","tokens":2,"session":%q}`, session))
				resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(c)
	}
	// Readers: stats and raw candidate selection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; running(); i++ {
			rt.Stats()
			rt.candidates(fmt.Sprintf("sess-%d", i%7))
			rt.candidates("")
		}
	}()
	wg.Wait()

	// The fleet must still be coherent: both seeds present and healthy.
	waitFor(t, "seed fleet healthy after the churn storm", func() bool {
		st := rt.Stats()
		h := 0
		for _, u := range urlsOf(ws) {
			if b, ok := backendIn(st, u); ok && b.Healthy {
				h++
			}
		}
		return h == len(ws)
	})
	if status, _, _ := generate(t, ts.URL, "after-storm", nil); status != http.StatusOK {
		t.Fatalf("post-storm request failed with %d", status)
	}
}

// TestDrainDeregisterRejoinRoundTrip runs the full worker lifecycle on
// real llm-serve stacks: join via Joiner, drain → graceful deregister via
// the worker's own /v1/drain hook, then a fresh stack rejoining on the
// SAME address as a brand-new member — with routed traffic working at
// every step.
func TestDrainDeregisterRejoinRoundTrip(t *testing.T) {
	lines := corpus.PCFGText(grammar.TinyEnglish(), 80, 8, mathx.NewRNG(7))
	m, err := lm.TrainBackend("ngram", lines, 7)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := New(Config{RetryBackoff: time.Millisecond, HealthInterval: 20 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// startStack boots one real worker on addr (":0" picks a port) whose
	// drain hook deregisters — the llm-serve wiring in miniature.
	startStack := func(addr string) (base string, ln net.Listener, hs *http.Server, stop func()) {
		t.Helper()
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.NewBackend(m, serve.Config{})
		base = "http://" + ln.Addr().String()
		var joiner *httpapi.Joiner
		h := httpapi.New(srv, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := joiner.Leave(ctx); err != nil {
				t.Errorf("leave on drain: %v", err)
			}
		})
		hs = &http.Server{Handler: h}
		go hs.Serve(ln)
		joiner, err = httpapi.StartJoiner(httpapi.JoinConfig{
			Router: front.URL, Self: base,
			Lease: 200 * time.Millisecond, Interval: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		stop = func() {
			joiner.Stop()
			hs.Close()
			srv.Close()
		}
		return base, ln, hs, stop
	}

	base0, _, _, stop0 := startStack("127.0.0.1:0")
	defer stop0()
	base1, ln1, _, stop1 := startStack("127.0.0.1:0")
	defer stop1()
	waitFor(t, "both workers joined and healthy", func() bool {
		st := rt.Stats()
		if st.Members != 2 {
			return false
		}
		for _, b := range st.Backends {
			if !b.Healthy {
				return false
			}
		}
		return true
	})
	if status, _, _ := generate(t, front.URL, "roundtrip", nil); status != http.StatusOK {
		t.Fatalf("pre-drain request failed with %d", status)
	}

	// Drain worker 1 through its own endpoint: the drain hook must
	// deregister it, exactly as SIGTERM does in llm-serve.
	resp, err := http.Post(base1+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, "drained worker to deregister", func() bool {
		st := rt.Stats()
		return st.Members == 1 && st.Leaves == 1
	})
	for i := 0; i < 5; i++ {
		if status, _, _ := generate(t, front.URL, fmt.Sprintf("post-leave-%d", i), nil); status != http.StatusOK {
			t.Fatalf("request %d after graceful leave failed with %d", i, status)
		}
	}

	// Rejoin on the same address: after a deregister the membership is
	// really gone, so the fresh stack joins as a new member.
	stop1()
	rebase, _, _, stop2 := startStack(ln1.Addr().String())
	defer stop2()
	if rebase != base1 {
		t.Fatalf("restart landed on %s, want the old address %s", rebase, base1)
	}
	waitFor(t, "rejoined worker healthy", func() bool {
		st := rt.Stats()
		if st.Members != 2 || st.Joins != 3 {
			return false
		}
		b, ok := backendIn(st, base1)
		return ok && b.Healthy
	})
	if st := rt.Stats(); st.Epoch != 4 {
		t.Fatalf("epoch after join+join+leave+rejoin = %d, want 4", st.Epoch)
	}
	if status, _, _ := generate(t, front.URL, "after-rejoin", nil); status != http.StatusOK {
		t.Fatalf("post-rejoin request failed with %d", status)
	}
	_ = base0
}
