// Package router is the replicated serving tier's front end: a stdlib-HTTP
// reverse proxy that spreads /v1/generate and /v1/stream traffic across a
// fleet of llm-serve workers. One worker process is pinned near its
// memory-bandwidth floor (E19-E22); serving production traffic means N of
// them, and this package is the layer that makes N processes look like one:
//
//   - Membership: the fleet is dynamic (membership.go). Workers join via
//     POST /v1/register (base URL + lease TTL), renew by heartbeating the
//     same endpoint, and leave explicitly via POST /v1/deregister; the
//     -backends list survives as permanent seed membership. A lease that
//     expires without renewal ejects its worker exactly like a failed
//     probe; one lapsed long past its TTL is forgotten — removed from the
//     ring. Every membership change rebuilds the consistent-hash ring
//     under a new epoch (exposed on /v1/stats), and because placement is
//     a pure function of the member set, each rebuild remaps only the
//     sessions the joined/left worker claims or frees.
//   - Placement: requests carrying a session key are routed by consistent
//     hashing (ring.go), so a session's requests keep landing on the same
//     worker — the placement KV/prefix reuse needs. Unkeyed requests go to
//     the least-loaded healthy worker, scored by the router's own in-flight
//     count plus the worker's polled in_flight+queued gauges.
//   - Health: an active /healthz probe loop plus passive per-attempt
//     failure detection feed one state machine per backend (backend.go);
//     ejected workers are routed around and readmitted on probe success
//     (or, for leased members, on their next heartbeat).
//   - Retries: idempotent work (generate always; streams before the first
//     byte reaches the client) fails over to the next ring replica with
//     exponential backoff. A stream that breaks after bytes were written
//     ends with an in-band SSE error frame instead.
//   - Admission control: a global in-flight cap and a per-backend
//     queue-depth limit shed excess load early with 429 + Retry-After,
//     keeping worker queues bounded instead of letting every client time
//     out slowly.
//   - Drain: StartDrain/Drain stop admitting (503, /healthz not-ready),
//     let in-flight requests — including SSE streams — finish, then return,
//     so SIGTERM rolls the tier without dropping a token.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/httpapi"
)

// Config assembles the routing tier. Zero values select the defaults.
type Config struct {
	// Backends is the seed worker fleet, as base URLs
	// (e.g. http://127.0.0.1:8372). Seed members are permanent: they have
	// no lease and are never forgotten. May be empty — a router can start
	// with no members and grow its fleet entirely through /v1/register.
	Backends []string
	// Peers lists the other llm-router instances fronting the same fleet,
	// as base URLs. Peers replicate the lease-based membership state to
	// one another (relay on join/leave + periodic anti-entropy over
	// /v1/sync), so every router converges on the same member set and —
	// placement being a pure function of membership — the same session
	// placement. May be empty: a single router needs no peers.
	Peers []string
	// SyncInterval is the anti-entropy period: how often the full record
	// set is push-pulled with each peer (default 500ms). It should be well
	// under the worker lease TTL, so a router partitioned from a worker
	// keeps its lease fresh through a peer's gossiped renewals.
	SyncInterval time.Duration
	// DefaultLease is the TTL granted to /v1/register calls that do not
	// request one, and the lease scale behind the Retry-After hint on
	// membership-flux rejections (default 15s).
	DefaultLease time.Duration
	// ForgetAfter is how long past expiry a lapsed, unreachable member is
	// kept in the ring before being removed entirely (default: 10 lease
	// TTLs; negative keeps lapsed members forever).
	ForgetAfter time.Duration
	// MaxInFlight is the global admission cap: requests beyond it are shed
	// with 429 (default 256; negative disables).
	MaxInFlight int
	// BackendQueue is the per-backend load limit: when the chosen worker's
	// score (router in-flight + polled worker gauge) reaches it, the
	// request is shed with 429 rather than queued ever deeper (default 32;
	// negative disables).
	BackendQueue int
	// MaxAttempts bounds placement attempts per request, the first try
	// included (default 3, always capped at the fleet size).
	MaxAttempts int
	// RetryBackoff is the nominal sleep before the first retry, doubling
	// per attempt; each sleep is jittered to [1/2, 1] of nominal so a
	// burst of requests orphaned by one worker ejection does not hammer
	// the surviving replicas in lockstep (default 10ms; negative disables
	// the sleep).
	RetryBackoff time.Duration
	// HealthInterval is the active probe + gauge poll period (default
	// 250ms).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failures (passive or probe)
	// eject a backend (default 3).
	FailThreshold int
	// RelayTimeout bounds one non-streaming relay attempt — connect through
	// full response — so a black-holed worker fails the attempt over to the
	// next replica instead of hanging the relay past the retry logic
	// (default 30s; negative disables). Streaming relays are not bounded
	// here (generation length is unbounded); they rely on the propagated
	// deadline budget and the worker's own watchdog.
	RelayTimeout time.Duration
	// Client issues the proxied requests and health probes (default: a
	// dedicated client with sane connection pooling and no global timeout —
	// generation length is unbounded, cancellation rides the request
	// context).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.DefaultLease <= 0 {
		c.DefaultLease = 15 * time.Second
	}
	if c.BackendQueue == 0 {
		c.BackendQueue = 32
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RelayTimeout == 0 {
		c.RelayTimeout = 30 * time.Second
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}}
	}
	return c
}

// Router is the load-aware front end over a fleet of llm-serve workers.
// It serves the same /v1/generate, /v1/stream, /v1/stats, and /healthz
// surface a single worker does, so clients cannot tell one worker from a
// routed fleet.
type Router struct {
	cfg   Config
	mem   *membership
	mux   *http.ServeMux
	peers []*peer

	// initialSync latches once the first anti-entropy round has completed
	// (immediately when no peers are configured); until then /healthz
	// reports not-ready so a cold-started router is not handed traffic
	// before it has tried to pull membership from its peers.
	initialSync atomic.Bool

	inflight atomic.Int64
	draining atomic.Bool
	admitMu  sync.Mutex     // orders admission against StartDrain
	reqs     sync.WaitGroup // admitted (non-rejected) requests in flight

	quit chan struct{}
	once sync.Once
	hwg  sync.WaitGroup

	onDrain   func()
	drainOnce sync.Once

	// Counters, exported on /v1/stats.
	nRequests   atomic.Uint64 // everything that reached the handler
	nProxied    atomic.Uint64 // completed with an upstream response
	nRetries    atomic.Uint64 // extra placement attempts
	nShed       atomic.Uint64 // 429 admission/backpressure rejections
	nRejected   atomic.Uint64 // 503 drain/no-backend rejections
	nErrors     atomic.Uint64 // exhausted retries or broke mid-stream
	nJoins      atomic.Uint64 // new members admitted (register or peer sync)
	nLeaves     atomic.Uint64 // members removed (deregister or peer sync)
	nExpiries   atomic.Uint64 // leases that lapsed without renewal
	nForgotten  atomic.Uint64 // lapsed members removed from the ring
	nSyncRounds atomic.Uint64 // completed anti-entropy rounds
	nSyncsIn    atomic.Uint64 // /v1/sync exchanges served for peers
}

// New builds the router and starts its health loop. onDrain, if non-nil,
// runs once (on its own goroutine) when drain mode is entered via the
// /v1/drain endpoint — the binary hooks graceful shutdown there. Callers
// must Close the router to stop the health loop.
func New(cfg Config, onDrain func()) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, quit: make(chan struct{}), onDrain: onDrain}
	var seeds []*backend
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		b, err := newBackend(raw)
		if err != nil {
			return nil, err
		}
		if seen[b.name] {
			return nil, fmt.Errorf("router: duplicate backend %q", b.name)
		}
		seen[b.name] = true
		seeds = append(seeds, b)
	}
	rt.mem = newMembership(seeds)
	peers, err := newPeers(cfg.Peers)
	if err != nil {
		return nil, err
	}
	rt.peers = peers
	// With no peers there is nothing to sync: the cold-start readiness
	// gate opens immediately.
	rt.initialSync.Store(len(peers) == 0)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		rt.handle(w, r, "/v1/generate", false)
	})
	mux.HandleFunc("POST /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		rt.handle(w, r, "/v1/stream", true)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Stats())
	})
	// /healthz mirrors the worker readiness contract: 200 only when this
	// router can actually serve — it has finished its cold-start peer sync
	// and sees at least one healthy backend — so a client (or a dumb TCP
	// balancer) can fail over between routers on status alone.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if rt.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		if ok, why := rt.ready(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready: "+why)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		rt.StartDrain()
		writeJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
	})
	mux.HandleFunc("POST /v1/register", rt.handleRegister)
	mux.HandleFunc("POST /v1/deregister", rt.handleDeregister)
	mux.HandleFunc("POST /v1/sync", rt.handleSync)
	rt.mux = mux

	rt.hwg.Add(1)
	go rt.healthLoop()
	if len(rt.peers) > 0 {
		rt.hwg.Add(1)
		go rt.syncLoop()
	}
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			panic(v)
		}
		// A handler bug must not take the whole routing tier down with it:
		// answer this request (best-effort once headers are out) and keep
		// serving. net/http would only have killed the goroutine, but an
		// unrecovered panic here means no status, no error frame, and no
		// counter — this path keeps the failure observable.
		rt.nErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": fmt.Sprintf("internal error: %v", v)})
	}()
	rt.mux.ServeHTTP(w, r)
}

// Close stops the health loop. It does not wait for in-flight requests —
// use Drain for that.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.quit) })
	rt.hwg.Wait()
}

// StartDrain flips the router to not-admitting: new generation requests get
// 503 + Retry-After and /healthz turns not-ready, while requests already
// admitted (including SSE streams) run on. The onDrain hook fires once,
// asynchronously.
func (rt *Router) StartDrain() {
	rt.admitMu.Lock()
	rt.draining.Store(true)
	rt.admitMu.Unlock()
	rt.drainOnce.Do(func() {
		if rt.onDrain != nil {
			go rt.onDrain()
		}
	})
}

// Drain is the graceful-shutdown entry point: stop admitting, then wait for
// every admitted request to finish or for ctx to expire.
func (rt *Router) Drain(ctx context.Context) error {
	rt.StartDrain()
	done := make(chan struct{})
	go func() {
		rt.reqs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterLoad is the Retry-After hint on load-shedding 429s: queue
// pressure clears at traffic speed, but the router's view of worker load
// refreshes at probe cadence, so the honest earliest time a retry can see
// a different answer is the next gauge poll — two health intervals,
// rounded up to Retry-After's whole-second resolution.
func (rt *Router) retryAfterLoad() string {
	return ceilSecs(2 * rt.cfg.HealthInterval)
}

// retryAfterMembership is the Retry-After hint on 503s issued during
// membership flux (draining, or no healthy member). The condition clears
// when a probe readmits an ejected worker or a heartbeat renews/creates a
// lease, so the hint is derived from both cadences rather than a
// hardcoded constant: two probe intervals, or a quarter of the default
// lease when that is longer (workers heartbeat at a fraction of their
// TTL — Joiner uses TTL/3 — so lease/4 is one expected heartbeat away).
func (rt *Router) retryAfterMembership() string {
	d := 2 * rt.cfg.HealthInterval
	if hb := rt.cfg.DefaultLease / 4; hb > d {
		d = hb
	}
	return ceilSecs(d)
}

// ceilSecs renders d as whole seconds for a Retry-After header, rounding
// up and flooring at 1 (a Retry-After of 0 would mean "immediately").
func ceilSecs(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// reject writes a 503 rejection with the membership-derived backoff hint.
func (rt *Router) reject(w http.ResponseWriter, why string) {
	rt.nRejected.Add(1)
	w.Header().Set("Retry-After", rt.retryAfterMembership())
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": why})
}

// admit gates one generation request. It returns false after writing the
// rejection when the router is draining or the global cap is hit; on true,
// the caller must call the returned release exactly once.
func (rt *Router) admit(w http.ResponseWriter) (release func(), ok bool) {
	rt.admitMu.Lock()
	if rt.draining.Load() {
		rt.admitMu.Unlock()
		rt.reject(w, "draining")
		return nil, false
	}
	rt.reqs.Add(1)
	rt.admitMu.Unlock()
	if cap := rt.cfg.MaxInFlight; cap > 0 && rt.inflight.Add(1) > int64(cap) {
		rt.inflight.Add(-1)
		rt.reqs.Done()
		rt.shed(w, "router at capacity")
		return nil, false
	}
	return func() {
		rt.inflight.Add(-1)
		rt.reqs.Done()
	}, true
}

// shed writes the 429 load-shedding reply.
func (rt *Router) shed(w http.ResponseWriter, why string) {
	rt.nShed.Add(1)
	w.Header().Set("Retry-After", rt.retryAfterLoad())
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": why})
}

// maxBody bounds buffered request bodies; generation requests are a few
// hundred bytes, so 1MB is generous.
const maxBody = 1 << 20

// requestBudget extracts the request's end-to-end deadline budget: the
// httpapi.TimeoutHeader wins (a malformed one is an error — a deadline must
// not be silently dropped), else the body's timeout_ms field. 0 means no
// budget; negative body values are left for the worker's validation.
func requestBudget(r *http.Request, body []byte) (time.Duration, error) {
	if hd := r.Header.Get(httpapi.TimeoutHeader); hd != "" {
		ms, err := strconv.ParseInt(hd, 10, 64)
		if err != nil || ms < 0 {
			return 0, fmt.Errorf("bad %s %q", httpapi.TimeoutHeader, hd)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	var probe struct {
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && probe.TimeoutMS > 0 {
		return time.Duration(probe.TimeoutMS) * time.Millisecond, nil
	}
	return 0, nil
}

// sessionOf extracts the affinity key: the X-Session-Key header wins, else
// the body's "session" field. Malformed JSON yields no key — the request
// still forwards, and the worker owns the 400.
func sessionOf(r *http.Request, body []byte) string {
	if k := r.Header.Get("X-Session-Key"); k != "" {
		return k
	}
	var probe struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &probe); err == nil {
		return probe.Session
	}
	return ""
}

// candidates returns the placement order for one request: the session's
// ring successors (keyed) or every backend sorted by load score ascending
// (unkeyed), with ejected backends moved to the back in either case — they
// are only tried once every healthy replica has failed.
func (rt *Router) candidates(session string) []*backend {
	members, rg := rt.mem.snapshot()
	var order []*backend
	if session != "" {
		idxs := rg.successors(session)
		order = make([]*backend, len(idxs))
		for i, idx := range idxs {
			order[i] = members[idx]
		}
	} else {
		order = append([]*backend(nil), members...)
		sort.SliceStable(order, func(a, b int) bool { return order[a].score() < order[b].score() })
	}
	healthy := make([]*backend, 0, len(order))
	var ejected []*backend
	for _, b := range order {
		if b.isHealthy() {
			healthy = append(healthy, b)
		} else {
			ejected = append(ejected, b)
		}
	}
	return append(healthy, ejected...)
}

// handle proxies one generation request with placement, retries, and
// backpressure. stream selects SSE passthrough semantics.
func (rt *Router) handle(w http.ResponseWriter, r *http.Request, path string, stream bool) {
	rt.nRequests.Add(1)
	release, ok := rt.admit(w)
	if !ok {
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body read: " + err.Error()})
		return
	}
	budget, err := requestBudget(r, body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	session := sessionOf(r, body)
	cands := rt.candidates(session)
	if len(cands) == 0 || !cands[0].isHealthy() {
		rt.reject(w, "no healthy backend")
		return
	}
	// Per-backend backpressure: the preferred worker (session owner, or the
	// least-loaded one — in which case every worker is at least this busy)
	// is already at its queue limit. Shedding here, rather than piling on,
	// keeps worker queues bounded and, for keyed traffic, keeps the
	// session's KV affinity instead of scattering it under overload.
	if lim := rt.cfg.BackendQueue; lim > 0 && cands[0].score() >= lim {
		rt.shed(w, "backend queue full")
		return
	}

	attempts := rt.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	backoff := rt.cfg.RetryBackoff
	for i := 0; i < attempts; i++ {
		if r.Context().Err() != nil {
			return // client is gone; nothing to answer, nowhere to retry for
		}
		if i > 0 {
			rt.nRetries.Add(1)
			if backoff > 0 {
				time.Sleep(jitteredBackoff(backoff))
				backoff *= 2
			}
		}
		// The deadline budget shrinks across attempts: each relay forwards
		// only what remains, and when retries (or a slow worker) have eaten
		// it all, the router answers 504 itself rather than dispatching work
		// no one is waiting for.
		remaining := time.Duration(-1)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				rt.nErrors.Add(1)
				writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "request deadline budget exhausted"})
				return
			}
		}
		if rt.tryBackend(w, r, cands[i], path, body, stream, remaining) {
			rt.nProxied.Add(1)
			return
		}
	}
	rt.nErrors.Add(1)
	w.Header().Set("Retry-After", rt.retryAfterMembership())
	writeJSON(w, http.StatusBadGateway, map[string]string{"error": "all backends failed"})
}

// jitteredBackoff spreads a nominal backoff uniformly over [d/2, d]. Pure
// doubling would march every request orphaned by the same worker ejection
// through identical sleep schedules, synchronizing their retries into
// bursts against the surviving replicas; the half-width jitter decorrelates
// them while keeping the expected wait within 25% of nominal.
func jitteredBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// retryableStatus marks upstream replies that indicate the worker (not the
// request) is the problem: transport-level gateway errors and 503, which a
// draining or overloaded worker returns for work another replica can take.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// tryBackend sends the request to b and relays the response. It returns
// false when the attempt failed in a retryable way with nothing written to
// the client; once any byte has been relayed the attempt is always
// "handled" (a broken stream ends with an in-band error frame, not a
// retry, because the new worker would re-sample tokens the client already
// saw).
func (rt *Router) tryBackend(w http.ResponseWriter, r *http.Request, b *backend, path string, body []byte, stream bool, remaining time.Duration) bool {
	b.requests.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	if err := failpoint.Inject(failpoint.RouterRelay); err != nil {
		// The injected fault lands exactly where a transport failure would:
		// passive detection, retry to the next replica.
		b.markFailure(rt.cfg.FailThreshold)
		return false
	}

	// Per-attempt timeout for non-streaming relays: a black-holed worker
	// fails this attempt over to the next replica instead of hanging the
	// relay. The request's remaining deadline budget tightens it further.
	ctx := r.Context()
	attempt := time.Duration(0)
	if !stream && rt.cfg.RelayTimeout > 0 {
		attempt = rt.cfg.RelayTimeout
	}
	if remaining >= 0 && (attempt == 0 || remaining < attempt) {
		attempt = remaining
	}
	if !stream && attempt > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, attempt)
		defer cancel()
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.endpoint(path), bytes.NewReader(body))
	if err != nil {
		b.markFailure(rt.cfg.FailThreshold)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	if remaining >= 0 {
		// Forward the remaining budget so the worker enforces the deadline
		// end-to-end; floor at 1ms — a 0 header would mean "no timeout".
		ms := remaining.Milliseconds()
		if ms <= 0 {
			ms = 1
		}
		req.Header.Set(httpapi.TimeoutHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		// Connect/transport failure: passive detection, retryable (unless
		// the client itself is gone, which the attempt loop checks).
		b.markFailure(rt.cfg.FailThreshold)
		return false
	}
	defer resp.Body.Close()
	if retryableStatus(resp.StatusCode) {
		b.markFailure(rt.cfg.FailThreshold)
		io.Copy(io.Discard, resp.Body)
		return false
	}
	b.markSuccess()

	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if !stream {
		io.Copy(w, resp.Body)
		return true
	}
	rt.relayStream(r.Context(), w, resp.Body, b)
	return true
}

// relayStream copies SSE bytes to the client, flushing per read so tokens
// leave the moment the worker emits them. A mid-stream upstream failure
// (worker died) is reported with an in-band error frame — headers are long
// gone — and counts against the backend's health. A client disconnect also
// surfaces as an upstream read error (the proxied request shares the
// client's context), so ctx distinguishes the two: the client leaving is
// not the worker's fault.
func (rt *Router) relayStream(ctx context.Context, w http.ResponseWriter, upstream io.Reader, b *backend) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client hung up; the worker sees the cancel via ctx
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			if ctx.Err() != nil {
				return // client gone mid-stream; nothing to report, no one to blame
			}
			b.markFailure(rt.cfg.FailThreshold)
			rt.nErrors.Add(1)
			fmt.Fprintf(w, "data: %s\n\n", `{"error":"upstream failed mid-stream"}`)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

// decodeBody parses a bounded JSON request body into v, writing the 400
// itself on failure so handlers can just return on error.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
	}
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
