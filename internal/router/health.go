package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// workerGauges is the slice of the worker's /v1/stats the router reads: the
// live load gauges serve.Stats exports (cumulative counters are ignored).
type workerGauges struct {
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
}

// healthLoop actively probes every backend each HealthInterval: /healthz
// decides readiness (a draining worker answers 503 and is ejected exactly
// like a dead one), and — for ready workers — /v1/stats refreshes the load
// gauge behind least-loaded placement and backpressure. The loop is also
// the readmission path: passive detection can only observe backends that
// receive traffic, so an ejected, idle backend re-enters service via its
// next successful probe here. Each tick also sweeps registration leases —
// a worker that stopped heartbeating is ejected when its lease lapses and
// forgotten (removed from the ring) once it has stayed lapsed past the
// forget horizon with probes failing too.
func (rt *Router) healthLoop() {
	defer rt.hwg.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-ticker.C:
			expired, forgotten := rt.mem.sweep(time.Now(), rt.cfg.ForgetAfter)
			rt.nExpiries.Add(uint64(expired))
			rt.nForgotten.Add(uint64(forgotten))
			rt.probeAll()
		}
	}
}

// probeAll checks the whole fleet concurrently and returns when every probe
// finishes, so one wedged backend cannot delay the others' freshness.
func (rt *Router) probeAll() {
	members, _ := rt.mem.snapshot()
	var wg sync.WaitGroup
	for _, b := range members {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probeOne(b)
		}(b)
	}
	wg.Wait()
}

// probeTimeout bounds one probe round-trip: the health interval, clamped so
// very short test intervals do not flake and long intervals do not let a
// black-holed probe stall ejection.
func (rt *Router) probeTimeout() time.Duration {
	d := rt.cfg.HealthInterval
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (rt *Router) probeOne(b *backend) {
	if err := failpoint.Inject(failpoint.RouterProbe); err != nil {
		// An injected probe failure drives the ejection machinery without
		// touching the worker — how the chaos harness measures recovery.
		b.markFailure(rt.cfg.FailThreshold)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
	defer cancel()
	if !rt.getOK(ctx, b.endpoint("/healthz"), nil) {
		b.markFailure(rt.cfg.FailThreshold)
		return
	}
	b.markSuccess()
	var g workerGauges
	if rt.getOK(ctx, b.endpoint("/v1/stats"), &g) {
		b.setLoad(g.InFlight + g.Queued)
	}
}

// getOK issues one GET and reports whether it returned 200, decoding the
// body into out when non-nil.
func (rt *Router) getOK(ctx context.Context, url string, out any) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if out == nil {
		return true
	}
	return json.NewDecoder(resp.Body).Decode(out) == nil
}

// Stats is the router's observability surface, served on its /v1/stats.
type Stats struct {
	Requests uint64 `json:"requests"`  // generation requests received
	Proxied  uint64 `json:"proxied"`   // answered with an upstream response
	Retries  uint64 `json:"retries"`   // extra placement attempts
	Shed     uint64 `json:"shed"`      // 429 admission/backpressure rejections
	Rejected uint64 `json:"rejected"`  // 503 drain/no-backend rejections
	Errors   uint64 `json:"errors"`    // exhausted retries + broken streams
	InFlight int    `json:"in_flight"` // live gauge
	Draining bool   `json:"draining"`

	// Membership counters: the epoch stamps the current (members, ring)
	// version; the rest count fleet transitions since start.
	Epoch         uint64 `json:"epoch"`
	Members       int    `json:"members"`
	Joins         uint64 `json:"joins"`          // new members (register or peer sync)
	Leaves        uint64 `json:"leaves"`         // removals (deregister or peer sync)
	LeaseExpiries uint64 `json:"lease_expiries"` // leases lapsed without renewal
	Forgotten     uint64 `json:"forgotten"`      // lapsed members swept from the ring

	// Router-HA state. RingDigest hashes the member set (sorted URLs +
	// seed/leased class): two routers with equal digests have converged on
	// the same membership and therefore the same ring and placement —
	// epochs are local rebuild counters and legitimately differ. Converged
	// is the readiness gate /healthz applies alongside backend health.
	RingDigest string      `json:"ring_digest"`
	Converged  bool        `json:"converged"`
	SyncRounds uint64      `json:"sync_rounds,omitempty"` // anti-entropy rounds completed
	SyncsIn    uint64      `json:"syncs_in,omitempty"`    // /v1/sync exchanges served
	Peers      []PeerStats `json:"peers,omitempty"`

	Backends []BackendStats `json:"backends"`
}

// PeerStats is one peer router's sync view.
type PeerStats struct {
	URL      string `json:"url"`
	Syncs    uint64 `json:"syncs"`    // successful exchanges initiated here
	Failures uint64 `json:"failures"` // failed exchanges
	// LastOKMS is how long ago the last successful exchange finished, in
	// milliseconds; -1 when no exchange has succeeded yet.
	LastOKMS int64 `json:"last_ok_ms"`
}

// BackendStats is one worker's routing view.
type BackendStats struct {
	Name      string `json:"name"`
	Healthy   bool   `json:"healthy"`
	InFlight  int64  `json:"in_flight"` // router-side live gauge
	Load      int    `json:"load"`      // last polled worker in_flight+queued
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Ejections uint64 `json:"ejections"`
	// Leased marks registered (vs seed) members; LeaseMS is time until the
	// current lease expires (negative once lapsed).
	Leased  bool  `json:"leased,omitempty"`
	LeaseMS int64 `json:"lease_ms,omitempty"`
}

// Stats snapshots the router counters and per-backend state.
func (rt *Router) Stats() Stats {
	st := Stats{
		Requests:      rt.nRequests.Load(),
		Proxied:       rt.nProxied.Load(),
		Retries:       rt.nRetries.Load(),
		Shed:          rt.nShed.Load(),
		Rejected:      rt.nRejected.Load(),
		Errors:        rt.nErrors.Load(),
		InFlight:      int(rt.inflight.Load()),
		Draining:      rt.draining.Load(),
		Epoch:         rt.mem.Epoch(),
		Joins:         rt.nJoins.Load(),
		Leaves:        rt.nLeaves.Load(),
		LeaseExpiries: rt.nExpiries.Load(),
		Forgotten:     rt.nForgotten.Load(),
		RingDigest:    fmt.Sprintf("%016x", rt.mem.digest()),
		Converged:     rt.initialSync.Load(),
		SyncRounds:    rt.nSyncRounds.Load(),
		SyncsIn:       rt.nSyncsIn.Load(),
	}
	for _, p := range rt.peers {
		lastOK := int64(-1)
		if ns := p.lastOK.Load(); ns > 0 {
			lastOK = time.Since(time.Unix(0, ns)).Milliseconds()
		}
		st.Peers = append(st.Peers, PeerStats{
			URL: p.url, Syncs: p.syncs.Load(), Failures: p.failures.Load(), LastOKMS: lastOK,
		})
	}
	members, _ := rt.mem.snapshot()
	st.Members = len(members)
	now := time.Now()
	for _, b := range members {
		b.mu.Lock()
		healthy, load := b.healthy, b.load
		b.mu.Unlock()
		leased, leaseMS := b.leaseInfo(now)
		st.Backends = append(st.Backends, BackendStats{
			Name:      b.name,
			Healthy:   healthy,
			InFlight:  b.inflight.Load(),
			Load:      load,
			Requests:  b.requests.Load(),
			Failures:  b.failures.Load(),
			Ejections: b.ejections.Load(),
			Leased:    leased,
			LeaseMS:   leaseMS,
		})
	}
	return st
}
