package router

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker is the fake slow-backend seam of the router suite (the
// HTTP-level analogue of serve's fakeBatch): a worker whose health, load
// gauge, stream pacing, and failure mode are all test-controlled, so
// routing policy is asserted without model arithmetic or real serving
// loops.
type fakeWorker struct {
	id      string
	ts      *httptest.Server
	healthy atomic.Bool  // /healthz result
	load    atomic.Int64 // gauge reported on /v1/stats
	hits    atomic.Int64 // generation requests served
	tokens  int          // stream frames before the done event
	gate    chan struct{}
	dieMid  atomic.Bool // abort the stream after the first frame
}

// newFakeWorker starts the fake. A non-nil gate paces work: generate waits
// one receive before answering; a stream emits its first frame immediately
// and then waits one receive per further token — close the gate to let
// everything run free.
func newFakeWorker(t *testing.T, id string, tokens int, gate chan struct{}) *fakeWorker {
	t.Helper()
	w := &fakeWorker{id: id, tokens: tokens, gate: gate}
	w.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		if !w.healthy.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/stats", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"in_flight":%d,"queued":0}`, w.load.Load())
	})
	mux.HandleFunc("POST /v1/generate", func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		if w.gate != nil {
			<-w.gate
		}
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"completion":%q,"tokens":[1]}`, w.id)
	})
	mux.HandleFunc("POST /v1/stream", func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		rw.Header().Set("Content-Type", "text/event-stream")
		flusher := rw.(http.Flusher)
		fmt.Fprintf(rw, "data: {\"index\":0,\"id\":1,\"text\":%q}\n\n", w.id)
		flusher.Flush()
		if w.dieMid.Load() {
			panic(http.ErrAbortHandler) // reset mid-stream, like a crash
		}
		for i := 1; i < w.tokens; i++ {
			if w.gate != nil {
				<-w.gate
			}
			fmt.Fprintf(rw, "data: {\"index\":%d,\"id\":1,\"text\":\"t%d\"}\n\n", i, i)
			flusher.Flush()
		}
		fmt.Fprintf(rw, "data: {\"done\":true,\"completion\":%q}\n\n", w.id)
		flusher.Flush()
	})
	w.ts = httptest.NewServer(mux)
	t.Cleanup(w.ts.Close)
	return w
}

func startWorkers(t *testing.T, n, tokens int, gate chan struct{}) []*fakeWorker {
	t.Helper()
	ws := make([]*fakeWorker, n)
	for i := range ws {
		ws[i] = newFakeWorker(t, fmt.Sprintf("w%d", i), tokens, gate)
	}
	return ws
}

func urlsOf(ws []*fakeWorker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ts.URL
	}
	return out
}

// newTestRouter builds a router over ws and serves it on an httptest
// server. Defaults are test-friendly (fast retries); the mut hook adjusts
// the config before construction.
func newTestRouter(t *testing.T, ws []*fakeWorker, mut func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Backends:       urlsOf(ws),
		RetryBackoff:   time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// generate posts one request and returns status, completion, and headers.
func generate(t *testing.T, url, session string, header map[string]string) (int, string, http.Header) {
	t.Helper()
	body := `{"prompt":"the king","tokens":4`
	if session != "" {
		body += fmt.Sprintf(",%q:%q", "session", session)
	}
	body += "}"
	req, err := http.NewRequest(http.MethodPost, url+"/v1/generate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Completion string `json:"completion"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Completion, resp.Header
}

// TestSessionAffinity: keyed requests land on the ring owner, repeatably,
// and the X-Session-Key header outranks the body field.
func TestSessionAffinity(t *testing.T) {
	ws := startWorkers(t, 3, 2, nil)
	_, ts := newTestRouter(t, ws, nil)
	ring := newRing(urlsOf(ws))

	for s := 0; s < 8; s++ {
		key := fmt.Sprintf("sess-%d", s)
		want := ws[ring.successors(key)[0]].id
		for rep := 0; rep < 3; rep++ {
			status, got, _ := generate(t, ts.URL, key, nil)
			if status != http.StatusOK {
				t.Fatalf("session %q status %d", key, status)
			}
			if got != want {
				t.Fatalf("session %q rep %d served by %s, ring owner is %s", key, rep, got, want)
			}
		}
	}

	// Header wins over body.
	headerKey, bodyKey := "header-session", "body-session"
	want := ws[ring.successors(headerKey)[0]].id
	_, got, _ := generate(t, ts.URL, bodyKey, map[string]string{"X-Session-Key": headerKey})
	if got != want {
		t.Fatalf("X-Session-Key routed to %s, want %s", got, want)
	}
}

// TestAffinityStableAcrossWorkerDeath: when one worker dies, only its
// sessions move (each to its next ring replica, via retry and then
// ejection); every other session keeps its worker.
func TestAffinityStableAcrossWorkerDeath(t *testing.T) {
	ws := startWorkers(t, 3, 2, nil)
	rt, ts := newTestRouter(t, ws, func(c *Config) {
		c.FailThreshold = 1
		c.HealthInterval = time.Hour // no probe readmission during the test
	})
	ring := newRing(urlsOf(ws))

	const sessions = 24
	before := make(map[string]string)
	for s := 0; s < sessions; s++ {
		key := fmt.Sprintf("user-%d", s)
		_, served, _ := generate(t, ts.URL, key, nil)
		before[key] = served
	}

	const dead = 1
	orphans := 0
	for _, owner := range before {
		if owner == ws[dead].id {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("no session owned by the dead worker; test is vacuous")
	}
	ws[dead].ts.Close()
	for key, owner := range before {
		status, after, _ := generate(t, ts.URL, key, nil)
		if status != http.StatusOK {
			t.Fatalf("session %q failed after worker death: status %d", key, status)
		}
		if owner != ws[dead].id {
			if after != owner {
				t.Fatalf("session %q moved %s -> %s though its owner is alive", key, owner, after)
			}
			continue
		}
		wantReplica := ws[ring.successors(key)[1]].id
		if after != wantReplica {
			t.Fatalf("orphaned session %q landed on %s, want next replica %s", key, after, wantReplica)
		}
	}
	if st := rt.Stats(); st.Retries == 0 {
		t.Error("no retries recorded though a dead worker was in the placement order")
	}
	// Passive detection must have ejected the dead worker.
	waitFor(t, "dead worker ejection", func() bool {
		return !rt.Stats().Backends[dead].Healthy
	})
}

// TestUnkeyedLeastLoaded: without a session key, traffic avoids the worker
// whose polled queue gauge is high.
func TestUnkeyedLeastLoaded(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	ws[0].load.Store(20)
	rt, ts := newTestRouter(t, ws, nil)
	waitFor(t, "gauge poll", func() bool { return rt.Stats().Backends[0].Load == 20 })

	base := ws[1].hits.Load()
	for i := 0; i < 5; i++ {
		status, got, _ := generate(t, ts.URL, "", nil)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if got != ws[1].id {
			t.Fatalf("unkeyed request served by loaded worker %s", got)
		}
	}
	if ws[1].hits.Load() != base+5 {
		t.Fatalf("idle worker served %d requests, want 5", ws[1].hits.Load()-base)
	}
}

// TestShedAtGlobalCap: with MaxInFlight 1 and one request held in flight,
// the next request is shed with 429 + Retry-After.
func TestShedAtGlobalCap(t *testing.T) {
	gate := make(chan struct{})
	ws := startWorkers(t, 1, 4, gate)
	rt, ts := newTestRouter(t, ws, func(c *Config) { c.MaxInFlight = 1 })

	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(`{"prompt":"x","tokens":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	if _, err := r.ReadString('\n'); err != nil { // first frame: stream is live
		t.Fatal(err)
	}

	status, _, hdr := generate(t, ts.URL, "", nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d at capacity, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if st := rt.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	close(gate)
}

// TestBackendQueueBackpressure: a single worker at its queue limit sheds
// rather than queueing deeper.
func TestBackendQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	ws := startWorkers(t, 1, 4, gate)
	rt, ts := newTestRouter(t, ws, func(c *Config) { c.BackendQueue = 2 })

	var streams []*bufio.Reader
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(`{"prompt":"x","tokens":4}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, r)
	}
	status, _, _ := generate(t, ts.URL, "", nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d with backend queue full, want 429", status)
	}
	if st := rt.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	close(gate)
}

// TestMidStreamWorkerFailure: a worker crashing mid-stream cannot be
// retried (tokens already reached the client); the client gets an in-band
// error frame, and the crash counts toward ejection so the session's next
// request goes to the replica.
func TestMidStreamWorkerFailure(t *testing.T) {
	ws := startWorkers(t, 2, 3, nil)
	ring := newRing(urlsOf(ws))
	// Find a session owned by worker 0 so the failover target is worker 1.
	session := ""
	for s := 0; ; s++ {
		session = fmt.Sprintf("victim-%d", s)
		if ring.successors(session)[0] == 0 {
			break
		}
	}
	ws[0].dieMid.Store(true)
	rt, ts := newTestRouter(t, ws, func(c *Config) {
		c.FailThreshold = 1
		c.HealthInterval = time.Hour // keep the probe from readmitting it
	})

	resp, err := http.Post(ts.URL+"/v1/stream", "application/json",
		strings.NewReader(fmt.Sprintf(`{"prompt":"x","tokens":3,"session":%q}`, session)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var frames []string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(frames) != 2 {
		t.Fatalf("frames %v, want the first token then the in-band error", frames)
	}
	if !strings.Contains(frames[0], ws[0].id) {
		t.Errorf("first frame %q did not come from the session owner", frames[0])
	}
	if !strings.Contains(frames[1], "error") {
		t.Errorf("terminal frame %q is not an error event", frames[1])
	}
	if st := rt.Stats(); st.Errors == 0 {
		t.Error("broken stream not counted in Errors")
	}

	// The crash ejected the owner: the session's next request is served
	// whole by the replica.
	status, got, _ := generate(t, ts.URL, session, nil)
	if status != http.StatusOK || got != ws[1].id {
		t.Fatalf("post-crash request: status %d served by %q, want 200 from %s", status, got, ws[1].id)
	}
}

// TestEjectionAndReadmission drives the health state machine end to end:
// failing probes eject a worker (and traffic avoids it), a recovering
// probe readmits it.
func TestEjectionAndReadmission(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	rt, ts := newTestRouter(t, ws, func(c *Config) { c.FailThreshold = 2 })

	ws[0].healthy.Store(false)
	waitFor(t, "ejection after failing probes", func() bool {
		return !rt.Stats().Backends[0].Healthy
	})
	if ej := rt.Stats().Backends[0].Ejections; ej == 0 {
		t.Error("no ejection counted")
	}
	base := ws[0].hits.Load()
	for i := 0; i < 5; i++ {
		if status, got, _ := generate(t, ts.URL, "", nil); status != http.StatusOK || got != ws[1].id {
			t.Fatalf("request %d: status %d from %q, want 200 from the healthy worker", i, status, got)
		}
	}
	if extra := ws[0].hits.Load() - base; extra != 0 {
		t.Errorf("ejected worker served %d requests", extra)
	}

	ws[0].healthy.Store(true)
	waitFor(t, "readmission after recovering probe", func() bool {
		return rt.Stats().Backends[0].Healthy
	})
}

// TestGracefulDrain: draining rejects new work with 503 and flips
// /healthz, the in-flight SSE stream completes with its done frame, and
// Drain returns only once it has.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	ws := startWorkers(t, 2, 3, gate)
	rt, ts := newTestRouter(t, ws, nil)

	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(`{"prompt":"x","tokens":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	rt.StartDrain()
	status, _, hdr := generate(t, ts.URL, "", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("generate while draining: %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", hresp.StatusCode)
	}

	// The held stream keeps Drain from completing.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := rt.Drain(ctx); err == nil {
		t.Fatal("Drain returned while a stream was in flight")
	}
	cancel()

	close(gate)
	var sawDone bool
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.Contains(line, `"done":true`) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("in-flight stream did not complete through the drain")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := rt.Drain(ctx2); err != nil {
		t.Fatalf("Drain after stream completion: %v", err)
	}
	if st := rt.Stats(); !st.Draining || st.Rejected == 0 {
		t.Errorf("drain stats: %+v", st)
	}
}

// TestRouterStatsEndpoint: the router's own /v1/stats is live and carries
// per-backend state.
func TestRouterStatsEndpoint(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	_, ts := newTestRouter(t, ws, nil)
	if status, _, _ := generate(t, ts.URL, "k", nil); status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Proxied != 1 || len(st.Backends) != 2 {
		t.Fatalf("stats %+v", st)
	}
}
