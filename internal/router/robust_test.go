package router

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/httpapi"
)

// TestRelayTimeoutFailsOverBlackhole: a worker that accepts the connection
// and never answers no longer hangs the relay — the per-attempt timeout
// fails it over to a healthy replica within the deadline logic.
func TestRelayTimeoutFailsOverBlackhole(t *testing.T) {
	// Worker 0 black-holes /v1/generate; worker 1 answers.
	hole := make(chan struct{})
	defer close(hole)
	ws := startWorkers(t, 2, 4, nil)
	blackhole := newFakeWorker(t, "hole", 4, nil)
	blackhole.ts.Config.Handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			<-hole // never answers generation work
			return
		}
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, `{"in_flight":0,"queued":0}`)
	})

	rt, ts := newTestRouter(t, []*fakeWorker{blackhole, ws[1]}, func(c *Config) {
		c.RelayTimeout = 50 * time.Millisecond
		c.MaxAttempts = 2
	})
	_ = rt

	start := time.Now()
	status, completion, _ := generate(t, ts.URL, "", nil)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", status)
	}
	if completion != "w1" {
		t.Fatalf("completion %q, want the healthy worker's", completion)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("failover took %v; relay timeout did not fire", d)
	}
}

// TestRelayFaultRetries: an injected relay fault behaves exactly like a
// transport failure — passive detection plus retry to the next replica, so
// the client still gets a 200.
func TestRelayFaultRetries(t *testing.T) {
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.RouterRelay, Kind: failpoint.KindError, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ws := startWorkers(t, 2, 4, nil)
	rt, ts := newTestRouter(t, ws, nil)

	status, _, _ := generate(t, ts.URL, "", nil)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry", status)
	}
	if st := rt.Stats(); st.Retries == 0 {
		t.Errorf("no retry recorded after injected relay fault: %+v", st)
	}
}

// TestProbeFaultEjectsAndRecovers: injected probe failures eject a healthy
// worker; once the fault schedule is exhausted, the next successful probe
// readmits it — the recovery path the chaos bench times.
func TestProbeFaultEjectsAndRecovers(t *testing.T) {
	ws := startWorkers(t, 1, 4, nil)
	rt, _ := newTestRouter(t, ws, func(c *Config) {
		c.FailThreshold = 2
		c.HealthInterval = 10 * time.Millisecond
	})
	// Every probe fails until Count runs out; FailThreshold 2 ejects after
	// two fired probes.
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.RouterProbe, Kind: failpoint.KindError, Count: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	waitFor(t, "ejection", func() bool {
		st := rt.Stats()
		return len(st.Backends) == 1 && !st.Backends[0].Healthy
	})
	waitFor(t, "readmission", func() bool {
		st := rt.Stats()
		return st.Backends[0].Healthy
	})
}

// TestBudgetHeaderDecrementsAcrossAttempts: the worker sees the router's
// remaining-budget header, and it shrinks after a failed first attempt.
func TestBudgetHeaderDecrementsAcrossAttempts(t *testing.T) {
	var seen atomic.Int64
	seen.Store(-1)
	ws := startWorkers(t, 2, 4, nil)
	for _, w := range ws {
		inner := w.ts.Config.Handler
		w.ts.Config.Handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				if hd := r.Header.Get(httpapi.TimeoutHeader); hd != "" {
					if ms, err := strconv.ParseInt(hd, 10, 64); err == nil {
						seen.Store(ms)
					}
				}
			}
			inner.ServeHTTP(rw, r)
		})
	}

	// One injected relay fault burns the first attempt (and its backoff)
	// before the request reaches a worker.
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.RouterRelay, Kind: failpoint.KindError, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	_, ts := newTestRouter(t, ws, func(c *Config) {
		c.MaxAttempts = 2
		c.RetryBackoff = 20 * time.Millisecond
	})

	status, _, _ := generate(t, ts.URL, "", map[string]string{httpapi.TimeoutHeader: "10000"})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	got := seen.Load()
	if got < 0 {
		t.Fatal("worker never saw the budget header")
	}
	if got >= 10000 || got < 5000 {
		t.Fatalf("forwarded budget %dms; want decremented below 10000 but not collapsed", got)
	}
}

// TestBudgetExhaustedIs504: when the budget is gone before any attempt can
// be made, the router answers 504 itself.
func TestBudgetExhaustedIs504(t *testing.T) {
	// Both attempts fail via injected faults; the 1ms budget is gone by the
	// retry, so the router must answer 504, not 502.
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.RouterRelay, Kind: failpoint.KindError, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ws := startWorkers(t, 2, 4, nil)
	_, ts := newTestRouter(t, ws, func(c *Config) {
		c.MaxAttempts = 2
		c.RetryBackoff = 20 * time.Millisecond
	})
	status, _, _ := generate(t, ts.URL, "", map[string]string{httpapi.TimeoutHeader: "1"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
}

// TestBadBudgetHeaderIs400: a malformed budget header is rejected at the
// router rather than silently forwarded without its deadline.
func TestBadBudgetHeaderIs400(t *testing.T) {
	ws := startWorkers(t, 1, 4, nil)
	_, ts := newTestRouter(t, ws, nil)
	status, _, _ := generate(t, ts.URL, "", map[string]string{httpapi.TimeoutHeader: "whenever"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
}

// TestRouterPanicBecomes500: a panic inside the routing tier answers the
// request with a 500 instead of dying silently, and the router keeps
// serving.
func TestRouterPanicBecomes500(t *testing.T) {
	ws := startWorkers(t, 1, 4, nil)
	rt, ts := newTestRouter(t, ws, nil)
	// No public seam panics on demand, so drive the recovery layer
	// directly with a handler that detonates.
	rt.mux.HandleFunc("POST /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("router bug")
	})
	resp, err := http.Post(ts.URL+"/v1/boom", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if status, _, _ := generate(t, ts.URL, "", nil); status != http.StatusOK {
		t.Fatalf("router did not survive the panic: status %d", status)
	}
}
