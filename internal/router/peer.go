// Router high availability: peer sync. One router process is a single
// point of failure no matter how replicated the worker fleet behind it is,
// so N llm-router instances run as peers (-peers), each holding the full
// lease-based membership state and converging on the same member set — and
// therefore, because placement is a pure function of membership, on the
// same consistent-hash ring and the same session→worker placement, with no
// coordination on the request path.
//
// Three channels keep peers converged, in decreasing order of latency
// criticality:
//
//  1. Direct worker traffic. Workers register with and heartbeat EVERY
//     router (httpapi.Joiner with multiple -join URLs), so each router's
//     view is first-hand and a router that cold-starts with unreachable
//     peers still rebuilds the whole fleet within one heartbeat interval.
//  2. Relay-on-change. A join or leave accepted by one router is pushed to
//     peers immediately, so membership transitions propagate at relay
//     speed instead of waiting for a heartbeat or sync tick.
//  3. Anti-entropy. Every SyncInterval each router push-pulls its full
//     record set (leased members + tombstones) with every peer, healing
//     whatever relays and heartbeats missed — a router partitioned from a
//     worker keeps that worker alive through a peer's gossiped renewals.
//
// Convergence is per-member, ordered by a transition version (join and
// leave events) with renewal recency — carried as an age so wall-clock
// skew between routers cancels — breaking ties within a version; see
// membership.merge for the exact rules. Tombstones stop a lagging gossip
// of an old lease from resurrecting a deregistered worker.

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
)

// syncRecord is one member's replicated state on the peer-sync wire: the
// canonical URL, the membership-transition version, the granted lease, and
// the age of the last renewal (or, with Gone set, of the deregistration).
// Ages rather than absolute timestamps cross the wire so each router works
// exclusively in its own clock domain.
type syncRecord struct {
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	Gone    bool   `json:"gone,omitempty"` // deregistration tombstone
	LeaseMS int64  `json:"lease_ms,omitempty"`
	AgeMS   int64  `json:"age_ms"`
}

// syncRequest is the POST /v1/sync body: the sender's full record set (or,
// on the relay-on-change path, just the changed record).
type syncRequest struct {
	Members []syncRecord `json:"members"`
}

// syncResponse answers with the receiver's full record set, making every
// exchange a push-pull: one round trip converges both directions.
type syncResponse struct {
	Members []syncRecord `json:"members"`
}

// peer is one configured peer router and the exchange bookkeeping against
// it, exported on /v1/stats.
type peer struct {
	url      string
	syncs    atomic.Uint64 // successful exchanges (initiated by this side)
	failures atomic.Uint64 // failed exchanges
	lastOK   atomic.Int64  // unix nanos of the last success; 0 = never
}

// newPeers validates and canonicalizes the configured peer URL list.
func newPeers(raw []string) ([]*peer, error) {
	var out []*peer
	seen := map[string]bool{}
	for _, r := range raw {
		r = strings.TrimSuffix(strings.TrimSpace(r), "/")
		if r == "" {
			continue
		}
		u, err := url.Parse(r)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: bad peer URL %q (need scheme and host)", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("router: duplicate peer %q", r)
		}
		seen[r] = true
		out = append(out, &peer{url: r})
	}
	return out, nil
}

// syncLoop is the anti-entropy driver: an immediate first round (a cold
// router pulls peer state before its first tick — this is what gates
// readiness), then one push-pull with every peer per SyncInterval.
func (rt *Router) syncLoop() {
	defer rt.hwg.Done()
	rt.syncRound()
	rt.initialSync.Store(true)
	ticker := time.NewTicker(rt.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-ticker.C:
			rt.syncRound()
		}
	}
}

// syncRound exchanges the full record set with every peer concurrently and
// returns when all exchanges finish, so one wedged peer cannot starve the
// others' freshness.
func (rt *Router) syncRound() {
	recs := rt.mem.export(time.Now())
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.syncWith(p, recs)
		}(p)
	}
	wg.Wait()
	rt.nSyncRounds.Add(1)
}

// syncTimeout bounds one peer exchange: the sync interval, clamped so very
// short test intervals do not flake and long intervals do not let a
// black-holed peer pin a relay goroutine.
func (rt *Router) syncTimeout() time.Duration {
	d := rt.cfg.SyncInterval
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// syncWith runs one push-pull exchange: POST recs to p, merge whatever p
// answers with. Failures are counted and otherwise dropped on the floor —
// the next anti-entropy tick (or the peer's own) retries; direct worker
// heartbeats keep this router serviceable meanwhile.
func (rt *Router) syncWith(p *peer, recs []syncRecord) bool {
	if err := failpoint.Inject(failpoint.RouterPeerSend); err != nil {
		p.failures.Add(1)
		return false
	}
	body, err := json.Marshal(syncRequest{Members: recs})
	if err != nil {
		p.failures.Add(1)
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.syncTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/sync", bytes.NewReader(body))
	if err != nil {
		p.failures.Add(1)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		p.failures.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.failures.Add(1)
		return false
	}
	var out syncResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		p.failures.Add(1)
		return false
	}
	rt.applyMerge(out.Members)
	p.syncs.Add(1)
	p.lastOK.Store(time.Now().UnixNano())
	return true
}

// applyMerge folds peer records into local membership and charges the
// member-set changes to the same join/leave ledger direct registrations
// use — a member is a member regardless of which router heard it first.
func (rt *Router) applyMerge(recs []syncRecord) {
	if len(recs) == 0 {
		return
	}
	joins, leaves := rt.mem.merge(recs, time.Now(), rt.cfg.DefaultLease)
	rt.nJoins.Add(uint64(joins))
	rt.nLeaves.Add(uint64(leaves))
}

// relayToPeers pushes one changed record (a join or a tombstone) to every
// peer asynchronously. Best-effort: a failed relay is healed by the next
// anti-entropy round, so there is no retry here.
func (rt *Router) relayToPeers(rec syncRecord) {
	if len(rt.peers) == 0 || rec.URL == "" {
		return
	}
	for _, p := range rt.peers {
		go func(p *peer) {
			rt.syncWith(p, []syncRecord{rec})
		}(p)
	}
}

// handleSync serves POST /v1/sync: merge the peer's records, answer with
// the full local record set (the pull half of push-pull).
func (rt *Router) handleSync(w http.ResponseWriter, r *http.Request) {
	if err := failpoint.Inject(failpoint.RouterPeerRecv); err != nil {
		if errors.Is(err, failpoint.ErrDrop) {
			panic(http.ErrAbortHandler)
		}
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	var req syncRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	rt.nSyncsIn.Add(1)
	rt.applyMerge(req.Members)
	writeJSON(w, http.StatusOK, syncResponse{Members: rt.mem.export(time.Now())})
}

// ready is the router's readiness predicate: the initial peer-sync round
// has completed (trivially true with no peers) and at least one member is
// healthy. The sync gate is a cold-start gate only — it never re-latches,
// and it does not require the round to SUCCEED, because a router whose
// peers are all down must still serve (that is the entire point of
// replicating it); membership freshness is then carried by direct worker
// heartbeats.
func (rt *Router) ready() (ok bool, why string) {
	if !rt.initialSync.Load() {
		return false, "initial peer sync pending"
	}
	members, _ := rt.mem.snapshot()
	for _, b := range members {
		if b.isHealthy() {
			return true, ""
		}
	}
	return false, "no healthy backend"
}
