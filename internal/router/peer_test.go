// Router-HA peer sync tests: replicated routers converging on one
// membership through relays, anti-entropy, and tombstones — plus the
// readiness gate and the -race coherence storm.

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// newPeeredRouters starts n routers over the same seed workers, each
// configured with every other as a peer, on real listeners (peer URLs must
// exist before construction, so listeners are bound first).
func newPeeredRouters(t *testing.T, n int, ws []*fakeWorker, mut func(*Config)) ([]*Router, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	rts := make([]*Router, n)
	for i := range rts {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Backends:       urlsOf(ws),
			Peers:          peers,
			SyncInterval:   25 * time.Millisecond,
			RetryBackoff:   time.Millisecond,
			HealthInterval: 20 * time.Millisecond,
		}
		if mut != nil {
			mut(&cfg)
		}
		rt, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		ts := httptest.NewUnstartedServer(rt)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		rts[i] = rt
	}
	return rts, urls
}

// statsFor fetches a router's Stats over HTTP, as the E26 harness does.
func statsFor(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postSync POSTs raw records to a router's /v1/sync, playing a peer.
func postSync(t *testing.T, url string, recs []syncRecord) {
	t.Helper()
	body, _ := json.Marshal(syncRequest{Members: recs})
	resp, err := http.Post(url+"/v1/sync", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d", resp.StatusCode)
	}
}

// TestPeerRegistrationConverges: a worker registering at ONE router
// appears at its peer — leased, routable, and with matching ring digests —
// without ever talking to that peer directly.
func TestPeerRegistrationConverges(t *testing.T) {
	ws := startWorkers(t, 2, 2, nil)
	rts, urls := newPeeredRouters(t, 2, ws, nil)

	w := newFakeWorker(t, "w2", 2, nil)
	grant := registerWorker(t, urls[0], w.ts.URL, 1000)
	if !grant.Created {
		t.Fatalf("grant = %+v, want created", grant)
	}
	waitFor(t, "peer to learn the member", func() bool {
		b, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok && b.Leased
	})
	a, b := rts[0].Stats(), rts[1].Stats()
	if a.RingDigest != b.RingDigest {
		t.Fatalf("ring digests diverge after convergence: %s vs %s", a.RingDigest, b.RingDigest)
	}
	if a.Members != 3 || b.Members != 3 {
		t.Fatalf("members = %d/%d, want 3/3", a.Members, b.Members)
	}

	// The peer-learned member must own the same arcs on both routers: find
	// a session the ring places on it and route through the peer.
	names := append(urlsOf(ws), w.ts.URL)
	rg := newRing(names)
	session := ""
	for s := 0; s < 64; s++ {
		key := fmt.Sprintf("sess-%d", s)
		if names[rg.successors(key)[0]] == w.ts.URL {
			session = key
			break
		}
	}
	if session == "" {
		t.Fatal("no session hashed to the joined worker in 64 tries")
	}
	if status, got, _ := generate(t, urls[1], session, nil); status != http.StatusOK || got != "w2" {
		t.Fatalf("keyed request via the peer router: status %d completion %q", status, got)
	}
}

// TestPeerGossipKeepsLeaseAlive: a worker heartbeating only router A stays
// leased at router B through gossiped renewals — B's copy of the lease
// must never lapse while A keeps hearing from the worker.
func TestPeerGossipKeepsLeaseAlive(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rts, urls := newPeeredRouters(t, 2, ws, nil)

	w := newFakeWorker(t, "w1", 2, nil)
	const leaseMS = 150
	registerWorker(t, urls[0], w.ts.URL, leaseMS)
	waitFor(t, "peer to learn the member", func() bool {
		_, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok
	})

	// Heartbeat A only, well inside the TTL; stop when the test ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				body, _ := json.Marshal(map[string]any{"url": w.ts.URL, "lease_ms": leaseMS})
				if resp, err := http.Post(urls[0]+"/v1/register", "application/json", bytes.NewReader(body)); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	// Watch B for four TTLs: the lease must stay un-lapsed throughout.
	deadline := time.Now().Add(4 * leaseMS * time.Millisecond)
	for time.Now().Before(deadline) {
		b, ok := backendIn(rts[1].Stats(), w.ts.URL)
		if !ok {
			t.Fatal("peer dropped the member while its origin lease was being renewed")
		}
		if b.Leased && b.LeaseMS < -int64(leaseMS) {
			t.Fatalf("peer's lease copy lapsed %dms despite gossiped renewals", -b.LeaseMS)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPeerTombstoneBlocksResurrection: after a deregister propagates, a
// lagging gossip of the dead worker's old lease must NOT resurrect it —
// the tombstone wins — while a genuine re-register (version above the
// tombstone) rejoins and propagates back to the peer.
func TestPeerTombstoneBlocksResurrection(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rts, urls := newPeeredRouters(t, 2, ws, nil)

	w := newFakeWorker(t, "w1", 2, nil)
	registerWorker(t, urls[0], w.ts.URL, 60_000)
	waitFor(t, "peer to learn the member", func() bool {
		_, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok
	})

	deregisterWorker(t, urls[0], w.ts.URL)
	waitFor(t, "peer to drop the member", func() bool {
		_, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return !ok
	})

	// Replay the stale join (version 1, fresh age, long lease) at B — what
	// a lagging peer's anti-entropy would carry. The tombstone (version 2)
	// must block it.
	postSync(t, urls[1], []syncRecord{{URL: w.ts.URL, Version: 1, LeaseMS: 60_000, AgeMS: 0}})
	time.Sleep(50 * time.Millisecond)
	if _, ok := backendIn(rts[1].Stats(), w.ts.URL); ok {
		t.Fatal("stale gossip resurrected a deregistered member over its tombstone")
	}

	// A genuine rejoin at B lands above the tombstone and gossips to A.
	grant := registerWorker(t, urls[1], w.ts.URL, 60_000)
	if !grant.Created {
		t.Fatalf("rejoin grant = %+v, want created", grant)
	}
	waitFor(t, "rejoin to reach the other router", func() bool {
		b, ok := backendIn(rts[0].Stats(), w.ts.URL)
		return ok && b.Leased
	})
	waitFor(t, "digests to reconverge", func() bool {
		return rts[0].Stats().RingDigest == rts[1].Stats().RingDigest
	})
}

// TestPeerPartitionDivergesThenHeals: with peer sync severed (failpoints
// on both the send and receive sites), a router cut off from the worker's
// heartbeats watches its lease copy lapse — honest divergence — and once
// the partition heals, gossip revives the lease without any re-register.
func TestPeerPartitionDivergesThenHeals(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rts, urls := newPeeredRouters(t, 2, ws, nil)

	w := newFakeWorker(t, "w1", 2, nil)
	const leaseMS = 150
	registerWorker(t, urls[0], w.ts.URL, leaseMS)
	waitFor(t, "peer to learn the member", func() bool {
		_, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok
	})

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				body, _ := json.Marshal(map[string]any{"url": w.ts.URL, "lease_ms": leaseMS})
				if resp, err := http.Post(urls[0]+"/v1/register", "application/json", bytes.NewReader(body)); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	// Sever peer sync in both directions (the registry is process-global,
	// which here IS the full partition).
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.RouterPeerSend, Kind: failpoint.KindError},
		{Site: failpoint.RouterPeerRecv, Kind: failpoint.KindError},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	waitFor(t, "partitioned peer's lease copy to lapse", func() bool {
		b, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok && b.LeaseMS < 0
	})
	// A, which hears the worker first-hand, must be unaffected.
	if b, ok := backendIn(rts[0].Stats(), w.ts.URL); !ok || b.LeaseMS <= 0 {
		t.Fatalf("origin router's lease suffered from the peer partition: %+v ok=%v", b, ok)
	}

	failpoint.Disarm()
	waitFor(t, "healed peer to revive the lease via gossip", func() bool {
		b, ok := backendIn(rts[1].Stats(), w.ts.URL)
		return ok && b.LeaseMS > 0 && b.Healthy
	})
	waitFor(t, "digests to reconverge", func() bool {
		return rts[0].Stats().RingDigest == rts[1].Stats().RingDigest
	})
}

// TestReadyGateWithDeadPeer: a router whose only peer is unreachable must
// still become ready — replication exists so that a dead router does not
// take the tier down, so a dead PEER must never gate serving. An
// empty-fleet router stays 503 until a backend exists and is healthy.
func TestReadyGateWithDeadPeer(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	// Bind-then-close: a guaranteed-dead peer address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadPeer := "http://" + ln.Addr().String()
	ln.Close()

	rt, ts := newTestRouter(t, ws, func(c *Config) {
		c.Peers = []string{deadPeer}
		c.SyncInterval = 20 * time.Millisecond
	})
	waitFor(t, "readiness despite the dead peer", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	st := rt.Stats()
	if !st.Converged {
		t.Fatal("router not converged after its initial sync round ran")
	}
	if len(st.Peers) != 1 || st.Peers[0].Syncs != 0 || st.Peers[0].Failures == 0 {
		t.Fatalf("peer stats = %+v, want only failures against the dead peer", st.Peers)
	}

	// No backends at all -> not ready, with the reason in the body.
	rtEmpty, tsEmpty := newTestRouter(t, nil, nil)
	_ = rtEmpty
	resp, err := http.Get(tsEmpty.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet /healthz = %d, want 503", resp.StatusCode)
	}
}

// TestPeerSyncRace is the -race coherence storm: two live peered routers
// exchanging anti-entropy at full tilt while registers, deregisters,
// sweeps, stats reads, and ring reads hammer both from many goroutines.
// The assertions are light — the test's job is making the race detector
// sweat; it ends by checking the storm converges once traffic stops.
func TestPeerSyncRace(t *testing.T) {
	ws := startWorkers(t, 1, 2, nil)
	rts, urls := newPeeredRouters(t, 2, ws, func(c *Config) {
		c.SyncInterval = 5 * time.Millisecond
		c.HealthInterval = 5 * time.Millisecond
	})

	const (
		actors  = 4
		rounds  = 40
		workers = 8
	)
	var wg sync.WaitGroup
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rt, url := rts[a%2], urls[a%2]
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("http://10.255.%d.%d:1", a, i%workers)
				if i%3 == 2 {
					body, _ := json.Marshal(map[string]any{"url": name})
					if resp, err := http.Post(url+"/v1/deregister", "application/json", bytes.NewReader(body)); err == nil {
						resp.Body.Close()
					}
				} else {
					body, _ := json.Marshal(map[string]any{"url": name, "lease_ms": 40})
					if resp, err := http.Post(url+"/v1/register", "application/json", bytes.NewReader(body)); err == nil {
						resp.Body.Close()
					}
				}
				// Snapshot coherence: members and ring must always match.
				members, rg := rt.mem.snapshot()
				if idx := rg.successors(name); len(members) > 0 && len(idx) > 0 {
					_ = members[idx[0]]
				}
				_ = rt.Stats()
			}
		}(a)
	}
	wg.Wait()

	// Quiesce: short leases (40ms) all lapse, both routers sweep and forget
	// the storm's members, digests meet back at the seed fleet.
	waitFor(t, "storm to converge", func() bool {
		a, b := rts[0].Stats(), rts[1].Stats()
		return a.RingDigest == b.RingDigest
	})
}
