package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is how many virtual points each backend contributes to the ring.
// More points smooth the key distribution across backends (the classic
// consistent-hashing variance reduction); 64 keeps per-key lookup and ring
// construction trivial at the fleet sizes a single router fronts.
const vnodes = 64

// ring is a consistent-hash ring over backend indices. Session keys hash
// onto the circle and are owned by the next backend point clockwise; when a
// backend is removed (ejected, drained, scaled down) only the keys it owned
// move, so KV/prefix affinity for every other session survives membership
// churn. The ring is immutable after construction — health is overlaid at
// routing time by walking the successor list past unhealthy entries.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash uint64
	idx  int
}

// newRing builds the ring from backend names (their canonical URLs). Names
// must be distinct — the hash points, and therefore key ownership, are a
// pure function of the name set, so every router over the same fleet agrees
// on placement.
func newRing(names []string) *ring {
	r := &ring{n: len(names)}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", name, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hash64 is FNV-1a over s with a splitmix64 finalizer — stable across
// processes and Go versions, unlike maphash, so placement is reproducible
// and debuggable. The finalizer matters: raw FNV over near-identical
// strings (vnode labels differ by one digit) leaves the low bits clustered,
// and clustered points give one backend an outsized arc of the ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// successors returns every backend index in ring order starting at key's
// position, deduplicated: element 0 owns the key, and the rest are its
// failover replicas in the order retries should try them. The order is a
// pure function of (key, membership), which is what makes retry placement
// stable too: the first replica of a key is always the same backend.
func (r *ring) successors(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
