package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/serve"
)

// TestRouterOverRealWorkers runs the whole tier for real: two llm-serve
// worker stacks (serve.Server + httpapi.Handler) behind one router, mixed
// keyed generate/stream traffic. It pins the end-to-end contract: every
// request succeeds, streamed pieces concatenate to the generate completion
// for the same request, and each session's traffic lands wholly on its ring
// owner (checked against the workers' own request counters).
func TestRouterOverRealWorkers(t *testing.T) {
	lines := corpus.PCFGText(grammar.TinyEnglish(), 80, 8, mathx.NewRNG(7))
	m, err := lm.TrainBackend("ngram", lines, 7)
	if err != nil {
		t.Fatal(err)
	}

	const nWorkers = 2
	srvs := make([]*serve.Server, nWorkers)
	urls := make([]string, nWorkers)
	for i := range srvs {
		srvs[i] = serve.NewBackend(m, serve.Config{})
		t.Cleanup(srvs[i].Close)
		ts := httptest.NewServer(httpapi.New(srvs[i], nil))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Backends: urls}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// Pick sessions until both workers own at least one, so the affinity
	// accounting below cannot pass vacuously.
	ring := newRing(urls)
	var sessions []string
	owner := map[string]int{}
	owned := make([]int, nWorkers)
	for s := 0; len(sessions) < 4 || owned[0] == 0 || owned[1] == 0; s++ {
		key := fmt.Sprintf("tenant-%d", s)
		sessions = append(sessions, key)
		owner[key] = ring.successors(key)[0]
		owned[owner[key]]++
	}

	const perSession = 3 // generate+stream pairs per session
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions)*perSession)
	for _, session := range sessions {
		for rep := 0; rep < perSession; rep++ {
			wg.Add(1)
			go func(session string, rep int) {
				defer wg.Done()
				errs <- runPair(front.URL, session, rep)
			}(session, rep)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Affinity accounting: each worker served exactly its sessions' requests.
	want := make([]uint64, nWorkers)
	for _, session := range sessions {
		want[owner[session]] += 2 * perSession
	}
	for i, srv := range srvs {
		if got := srv.Stats().Requests; got != want[i] {
			t.Errorf("worker %d served %d requests, ring assigns it %d", i, got, want[i])
		}
	}
	st := rt.Stats()
	if wantTotal := uint64(2 * perSession * len(sessions)); st.Proxied != wantTotal {
		t.Errorf("router proxied %d, want %d", st.Proxied, wantTotal)
	}
	if st.Retries != 0 || st.Errors != 0 || st.Shed != 0 {
		t.Errorf("healthy-fleet run recorded retries/errors/shed: %+v", st)
	}
}

// runPair issues one generate and one stream for the same request through
// the router and checks they agree.
func runPair(frontURL, session string, rep int) error {
	req := httpapi.GenRequest{
		Prompt:  "the king",
		Tokens:  6,
		Seed:    uint64(rep + 1),
		Session: session,
	}
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}

	resp, err := http.Post(frontURL+"/v1/generate", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("session %s: generate: %w", session, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("session %s: generate status %d", session, resp.StatusCode)
	}
	var gen httpapi.GenResponse
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		return err
	}
	if gen.Completion == "" {
		return fmt.Errorf("session %s: empty completion", session)
	}

	sresp, err := http.Post(frontURL+"/v1/stream", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("session %s: stream: %w", session, err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != 200 {
		return fmt.Errorf("session %s: stream status %d", session, sresp.StatusCode)
	}
	var pieces []string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		payload, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "data: ")
		if !ok {
			continue
		}
		var probe struct {
			Done       bool   `json:"done"`
			Completion string `json:"completion"`
			Text       string `json:"text"`
			Error      string `json:"error"`
		}
		if err := json.Unmarshal([]byte(payload), &probe); err != nil {
			return fmt.Errorf("session %s: bad frame %q: %w", session, payload, err)
		}
		if probe.Error != "" {
			return fmt.Errorf("session %s: in-band stream error %q", session, probe.Error)
		}
		if probe.Done {
			if joined := strings.Join(pieces, ""); joined != probe.Completion || probe.Completion != gen.Completion {
				return fmt.Errorf("session %s: stream %q / done %q / generate %q disagree",
					session, joined, probe.Completion, gen.Completion)
			}
			return nil
		}
		pieces = append(pieces, probe.Text)
	}
	return fmt.Errorf("session %s: stream ended without a done frame", session)
}
