package nn

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestLinearShapesAndBias(t *testing.T) {
	rng := mathx.NewRNG(1)
	l := NewLinear(4, 3, true, rng)
	x := autograd.Const(tensor.New(5, 4).RandNorm(rng, 1))
	y := l.Forward(x)
	if y.Value.Shape[0] != 5 || y.Value.Shape[1] != 3 {
		t.Fatalf("output shape %v", y.Value.Shape)
	}
	if len(l.Parameters()) != 2 {
		t.Fatalf("want 2 params with bias")
	}
	nb := NewLinear(4, 3, false, rng)
	if len(nb.Parameters()) != 1 {
		t.Fatalf("want 1 param without bias")
	}
}

func TestLinearInitScale(t *testing.T) {
	rng := mathx.NewRNG(2)
	l := NewLinear(256, 256, false, rng)
	std := mathx.Std(l.W.Value.Data)
	want := 1 / math.Sqrt(256)
	if math.Abs(std-want) > want/5 {
		t.Errorf("init std = %v, want ~%v (1/sqrt(in))", std, want)
	}
}

func TestEmbeddingForward(t *testing.T) {
	rng := mathx.NewRNG(3)
	e := NewEmbedding(10, 4, rng)
	out := e.Forward([]int{3, 3, 7})
	if out.Value.Shape[0] != 3 || out.Value.Shape[1] != 4 {
		t.Fatalf("shape %v", out.Value.Shape)
	}
	for j := 0; j < 4; j++ {
		if out.Value.At(0, j) != out.Value.At(1, j) {
			t.Fatal("same token produced different embeddings")
		}
	}
}

func TestLayerNormForward(t *testing.T) {
	rng := mathx.NewRNG(4)
	ln := NewLayerNorm(6)
	x := autograd.Const(tensor.New(3, 6).RandNorm(rng, 5))
	y := ln.Forward(x)
	for i := 0; i < 3; i++ {
		if m := mathx.Mean(y.Value.Row(i)); math.Abs(m) > 1e-9 {
			t.Errorf("row %d mean %v", i, m)
		}
	}
}

func TestFFNTrainsXOR(t *testing.T) {
	// XOR is not linearly separable; a single hidden layer must solve it.
	rng := mathx.NewRNG(5)
	f := NewFFN(2, 8, Tanh, rng)
	head := NewLinear(2, 1, true, rng)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	y := tensor.FromSlice([]float64{0, 1, 1, 0}, 4, 1)
	params := append(f.Parameters(), head.Parameters()...)
	var loss *autograd.Node
	for step := 0; step < 2000; step++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		out := head.Forward(f.Forward(autograd.Const(x)))
		loss = autograd.MSE(out, y)
		autograd.Backward(loss)
		for _, p := range params {
			tensor.AddScaledInPlace(p.Value, -0.2, p.Grad)
		}
	}
	if loss.Value.Data[0] > 0.02 {
		t.Errorf("XOR loss = %v, want < 0.02", loss.Value.Data[0])
	}
}

func TestMLPDepthAndParams(t *testing.T) {
	rng := mathx.NewRNG(6)
	m := NewMLP([]int{3, 5, 7, 2}, ReLU, rng)
	if len(m.Layers) != 3 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	want := (3*5 + 5) + (5*7 + 7) + (7*2 + 2)
	if got := NumParameters(m); got != want {
		t.Errorf("NumParameters = %d, want %d", got, want)
	}
	x := autograd.Const(tensor.New(4, 3).RandNorm(rng, 1))
	y := m.Forward(x)
	if y.Value.Shape[1] != 2 {
		t.Errorf("output dim %v", y.Value.Shape)
	}
}

func TestZeroGrad(t *testing.T) {
	rng := mathx.NewRNG(7)
	l := NewLinear(2, 2, true, rng)
	x := autograd.Const(tensor.New(3, 2).RandNorm(rng, 1))
	autograd.Backward(autograd.MeanAll(l.Forward(x)))
	if mathx.Sum(l.W.Grad.Data) == 0 {
		t.Fatal("no gradient accumulated")
	}
	ZeroGrad(l)
	if mathx.Sum(l.W.Grad.Data) != 0 || mathx.Sum(l.B.Grad.Data) != 0 {
		t.Fatal("ZeroGrad left residue")
	}
}

func TestSequentialComposes(t *testing.T) {
	rng := mathx.NewRNG(8)
	s := NewSequential(NewLinear(3, 4, true, rng), NewLayerNorm(4), NewFFN(4, 8, GELU, rng))
	x := autograd.Const(tensor.New(2, 3).RandNorm(rng, 1))
	y := s.Forward(x)
	if y.Value.Shape[0] != 2 || y.Value.Shape[1] != 4 {
		t.Fatalf("shape %v", y.Value.Shape)
	}
	if len(s.Parameters()) != 2+2+4 {
		t.Errorf("param groups = %d", len(s.Parameters()))
	}
}

func TestActivations(t *testing.T) {
	x := autograd.Const(tensor.FromSlice([]float64{-1, 0, 2}, 1, 3))
	if got := ReLU.Apply(x).Value.Data; got[0] != 0 || got[2] != 2 {
		t.Errorf("relu = %v", got)
	}
	if got := Tanh.Apply(x).Value.Data; math.Abs(got[2]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh = %v", got)
	}
	g := GELU.Apply(x).Value.Data
	if g[1] != 0 || g[2] < 1.9 {
		t.Errorf("gelu = %v", g)
	}
}
