// Package nn provides the neural-network layer library used by the language
// models in this repository: linear maps, embeddings, layer normalization,
// and the feed-forward network of the paper's Eq. 11, together with a
// parameter registry that training code iterates over.
package nn

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Module is anything exposing trainable parameters.
type Module interface {
	// Parameters returns every trainable leaf node, in a stable order.
	Parameters() []*autograd.Node
}

// Replicable is a Module that can produce weight-sharing replicas of itself
// for data-parallel training. A replica aliases the parent's parameter Value
// tensors (so an optimizer step on the parent is immediately visible to every
// replica) but owns fresh gradient buffers, letting each worker goroutine run
// forward/backward passes without racing on gradient accumulation. Replica
// Parameters() must align index-for-index with the parent's.
type Replicable interface {
	Module
	// ReplicaModule returns a new weight-sharing replica.
	ReplicaModule() Module
}

// NumParameters counts the scalar parameters of a module.
func NumParameters(m Module) int {
	n := 0
	for _, p := range m.Parameters() {
		n += p.Value.Size()
	}
	return n
}

// ZeroGrad clears every parameter gradient of m.
func ZeroGrad(m Module) {
	for _, p := range m.Parameters() {
		p.ZeroGrad()
	}
}

// Activation names a pointwise nonlinearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	GELU
	Tanh
)

// Apply applies the activation to a node.
func (a Activation) Apply(x *autograd.Node) *autograd.Node {
	switch a {
	case ReLU:
		return autograd.ReLU(x)
	case GELU:
		return autograd.GELU(x)
	case Tanh:
		return autograd.Tanh(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Linear is a learnable affine map x → x·W + b for row-major inputs
// (rows are positions/examples, columns are features).
type Linear struct {
	W *autograd.Node // in×out
	B *autograd.Node // 1×out, nil when bias disabled
}

// NewLinear creates a Linear with weights drawn N(0, 1/sqrt(in)) — the
// "expected norm independent of the hyperparameters" initialization the
// paper describes in §6 (var(W) ~ 1/p).
func NewLinear(in, out int, bias bool, rng *mathx.RNG) *Linear {
	l := &Linear{
		W: autograd.Param(tensor.New(in, out).RandNorm(rng, 1/math.Sqrt(float64(in)))),
	}
	if bias {
		l.B = autograd.Param(tensor.New(1, out))
	}
	return l
}

// Forward applies the affine map to an n×in node.
func (l *Linear) Forward(x *autograd.Node) *autograd.Node {
	y := autograd.MatMul(x, l.W)
	if l.B != nil {
		y = autograd.AddBias(y, l.B)
	}
	return y
}

// Parameters implements Module.
func (l *Linear) Parameters() []*autograd.Node {
	if l.B == nil {
		return []*autograd.Node{l.W}
	}
	return []*autograd.Node{l.W, l.B}
}

// Replica returns a weight-sharing copy of l with fresh gradient buffers.
func (l *Linear) Replica() *Linear {
	r := &Linear{W: autograd.Param(l.W.Value)}
	if l.B != nil {
		r.B = autograd.Param(l.B.Value)
	}
	return r
}

// Embedding is a learnable token-embedding table (the map ι of Eq. 7).
type Embedding struct {
	W *autograd.Node // vocab×dim
}

// NewEmbedding creates a vocab×dim embedding with N(0, std) entries.
func NewEmbedding(vocab, dim int, rng *mathx.RNG) *Embedding {
	return &Embedding{W: autograd.Param(tensor.New(vocab, dim).RandNorm(rng, 0.02*math.Sqrt(512/float64(dim))))}
}

// Forward gathers the embedding rows for ids.
func (e *Embedding) Forward(ids []int) *autograd.Node {
	return autograd.Embedding(e.W, ids)
}

// Parameters implements Module.
func (e *Embedding) Parameters() []*autograd.Node { return []*autograd.Node{e.W} }

// Replica returns a weight-sharing copy of e with fresh gradient buffers.
func (e *Embedding) Replica() *Embedding {
	return &Embedding{W: autograd.Param(e.W.Value)}
}

// LayerNorm is learnable row-wise normalization.
type LayerNorm struct {
	Gain, Bias *autograd.Node // 1×dim
	Eps        float64
}

// NewLayerNorm creates a LayerNorm over the trailing dimension dim.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Gain: autograd.Param(tensor.New(1, dim).Fill(1)),
		Bias: autograd.Param(tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *autograd.Node) *autograd.Node {
	return autograd.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Parameters implements Module.
func (l *LayerNorm) Parameters() []*autograd.Node {
	return []*autograd.Node{l.Gain, l.Bias}
}

// Replica returns a weight-sharing copy of l with fresh gradient buffers.
func (l *LayerNorm) Replica() *LayerNorm {
	return &LayerNorm{
		Gain: autograd.Param(l.Gain.Value),
		Bias: autograd.Param(l.Bias.Value),
		Eps:  l.Eps,
	}
}

// FFN is the feed-forward block of Eq. 11 with a single hidden layer:
// v = W1·act(W0·u + b0) + b1. Hidden width is typically 4×dim in
// transformer blocks (the paper's ph = 4p).
type FFN struct {
	In, Out *Linear
	Act     Activation
}

// NewFFN builds an FFN mapping dim → hidden → dim.
func NewFFN(dim, hidden int, act Activation, rng *mathx.RNG) *FFN {
	return &FFN{
		In:  NewLinear(dim, hidden, true, rng),
		Out: NewLinear(hidden, dim, true, rng),
		Act: act,
	}
}

// Forward applies the two-layer network row-wise.
func (f *FFN) Forward(x *autograd.Node) *autograd.Node {
	return f.Out.Forward(f.Act.Apply(f.In.Forward(x)))
}

// Parameters implements Module.
func (f *FFN) Parameters() []*autograd.Node {
	return append(f.In.Parameters(), f.Out.Parameters()...)
}

// Replica returns a weight-sharing copy of f with fresh gradient buffers.
func (f *FFN) Replica() *FFN {
	return &FFN{In: f.In.Replica(), Out: f.Out.Replica(), Act: f.Act}
}

// MLP is a general multi-layer perceptron (the fully connected FFN of
// Eq. 11 with arbitrary depth), used for probe models and the FFN-L-gram
// baseline of §5.
type MLP struct {
	Layers []*Linear
	Act    Activation
}

// NewMLP builds an MLP with the given layer sizes, e.g. [in, h1, h2, out].
func NewMLP(sizes []int, act Activation, rng *mathx.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least in and out sizes")
	}
	m := &MLP{Act: act}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], true, rng))
	}
	return m
}

// Forward applies all layers with the activation between (not after) them.
func (m *MLP) Forward(x *autograd.Node) *autograd.Node {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = m.Act.Apply(x)
		}
	}
	return x
}

// Parameters implements Module.
func (m *MLP) Parameters() []*autograd.Node {
	var ps []*autograd.Node
	for _, l := range m.Layers {
		ps = append(ps, l.Parameters()...)
	}
	return ps
}

// Sequential composes modules that share the Forward(node) signature.
type forwarder interface {
	Module
	Forward(*autograd.Node) *autograd.Node
}

// Sequential chains forward modules.
type Sequential struct {
	mods []forwarder
}

// NewSequential builds a sequential container; each module must implement
// Forward(*autograd.Node) *autograd.Node.
func NewSequential(mods ...forwarder) *Sequential { return &Sequential{mods: mods} }

// Forward applies each module in order.
func (s *Sequential) Forward(x *autograd.Node) *autograd.Node {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Parameters implements Module.
func (s *Sequential) Parameters() []*autograd.Node {
	var ps []*autograd.Node
	for _, m := range s.mods {
		ps = append(ps, m.Parameters()...)
	}
	return ps
}
