// Package rnn implements the recurrent language models of the paper's §5
// (Eq. 12): a vanilla (Elman) RNN and an LSTM, trained by backpropagation
// through time via the autograd engine. Both serve as pre-transformer
// baselines in the perplexity-ladder experiment (E5), and as the sequential
// cost baseline of E12 (a window of length L requires L dependent steps).
package rnn

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Kind selects the recurrence cell.
type Kind int

// Supported cells.
const (
	Elman Kind = iota // h_t = tanh(Wx·x_t + Wh·h_{t-1} + b)
	LSTM              // gated cell with long-term memory (Hochreiter-Schmidhuber)
)

// Config holds the recurrent model hyperparameters.
type Config struct {
	Vocab  int
	Dim    int // embedding dimension
	Hidden int // state dimension q of Eq. 12
	Kind   Kind
}

// Model is a recurrent language model.
type Model struct {
	Cfg   Config
	Embed *nn.Embedding

	// Elman parameters.
	wx, wh *nn.Linear
	// LSTM parameters: one projection [x, h] → 4·Hidden for gates i, f, o, g.
	gates *nn.Linear

	Out *nn.Linear // Hidden → Vocab
}

// New builds a recurrent LM.
func New(cfg Config, rng *mathx.RNG) (*Model, error) {
	if cfg.Vocab <= 0 || cfg.Dim <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("rnn: non-positive hyperparameter in %+v", cfg)
	}
	m := &Model{
		Cfg:   cfg,
		Embed: nn.NewEmbedding(cfg.Vocab, cfg.Dim, rng),
		Out:   nn.NewLinear(cfg.Hidden, cfg.Vocab, true, rng),
	}
	switch cfg.Kind {
	case Elman:
		m.wx = nn.NewLinear(cfg.Dim, cfg.Hidden, true, rng)
		m.wh = nn.NewLinear(cfg.Hidden, cfg.Hidden, false, rng)
	case LSTM:
		m.gates = nn.NewLinear(cfg.Dim+cfg.Hidden, 4*cfg.Hidden, true, rng)
		// Bias the forget gate open (standard trick for trainability).
		b := m.gates.B.Value.Row(0)
		for i := cfg.Hidden; i < 2*cfg.Hidden; i++ {
			b[i] = 1
		}
	default:
		return nil, fmt.Errorf("rnn: unknown kind %d", cfg.Kind)
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, rng *mathx.RNG) *Model {
	m, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Parameters implements nn.Module.
func (m *Model) Parameters() []*autograd.Node {
	ps := m.Embed.Parameters()
	if m.wx != nil {
		ps = append(ps, m.wx.Parameters()...)
		ps = append(ps, m.wh.Parameters()...)
	}
	if m.gates != nil {
		ps = append(ps, m.gates.Parameters()...)
	}
	return append(ps, m.Out.Parameters()...)
}

// NumParameters counts trainable scalars.
func (m *Model) NumParameters() int { return nn.NumParameters(m) }

// Forward runs the recurrence over ids and returns the L×Vocab logits —
// the sequential computation whose wall-clock grows with L (§6's contrast
// with the parallelizable transformer).
func (m *Model) Forward(ids []int) *autograd.Node {
	if len(ids) == 0 {
		panic("rnn: empty sequence")
	}
	emb := m.Embed.Forward(ids)
	h := autograd.Const(tensor.New(1, m.Cfg.Hidden))
	var c *autograd.Node
	if m.Cfg.Kind == LSTM {
		c = autograd.Const(tensor.New(1, m.Cfg.Hidden))
	}
	outs := make([]*autograd.Node, len(ids))
	for t := range ids {
		x := autograd.SliceRows(emb, t, t+1)
		switch m.Cfg.Kind {
		case Elman:
			h = autograd.Tanh(autograd.Add(m.wx.Forward(x), m.wh.Forward(h)))
		case LSTM:
			z := m.gates.Forward(autograd.ConcatCols(x, h))
			q := m.Cfg.Hidden
			i := autograd.Sigmoid(autograd.SliceCols(z, 0, q))
			f := autograd.Sigmoid(autograd.SliceCols(z, q, 2*q))
			o := autograd.Sigmoid(autograd.SliceCols(z, 2*q, 3*q))
			g := autograd.Tanh(autograd.SliceCols(z, 3*q, 4*q))
			c = autograd.Add(autograd.Mul(f, c), autograd.Mul(i, g))
			h = autograd.Mul(o, autograd.Tanh(c))
		}
		outs[t] = m.Out.Forward(h)
	}
	return autograd.ConcatRows(outs...)
}

// Loss computes the Eq. 3 objective over one window (targets -1 ignored).
func (m *Model) Loss(input, target []int) *autograd.Node {
	return autograd.CrossEntropy(m.Forward(input), target)
}

// ForwardLogits returns the raw logits tensor for input, for evaluation
// code that does not need gradient state.
func (m *Model) ForwardLogits(input []int) *tensor.Tensor {
	return m.Forward(input).Value
}

// CrossEntropy evaluates mean held-out NLL of the stream (teacher-forced),
// without building gradient state.
func (m *Model) CrossEntropy(input, target []int) float64 {
	logits := m.Forward(input)
	lp := tensor.LogSoftmaxRows(logits.Value)
	total, n := 0.0, 0
	for i, t := range target {
		if t < 0 {
			continue
		}
		total -= lp.Row(i)[t]
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Perplexity is exp(CrossEntropy).
func (m *Model) Perplexity(input, target []int) float64 {
	return math.Exp(m.CrossEntropy(input, target))
}

// StepState is the inference-time recurrent state.
type StepState struct {
	h, c []float64
}

// NewState returns a zero state for step-wise generation.
func (m *Model) NewState() *StepState {
	s := &StepState{h: make([]float64, m.Cfg.Hidden)}
	if m.Cfg.Kind == LSTM {
		s.c = make([]float64, m.Cfg.Hidden)
	}
	return s
}

// Step consumes one token, updates the state in place, and returns the
// next-token logits. Unlike the transformer's parallel attention, each call
// depends on the previous one — the O(L) sequential chain of §6.
func (m *Model) Step(s *StepState, id int) []float64 {
	x := m.Embed.W.Value.Row(id)
	switch m.Cfg.Kind {
	case Elman:
		nh := make([]float64, m.Cfg.Hidden)
		for j := range nh {
			nh[j] = m.wx.B.Value.Row(0)[j]
		}
		addMatVecT(nh, m.wx.W.Value, x)
		addMatVecT(nh, m.wh.W.Value, s.h)
		for j := range nh {
			nh[j] = math.Tanh(nh[j])
		}
		s.h = nh
	case LSTM:
		q := m.Cfg.Hidden
		z := make([]float64, 4*q)
		copy(z, m.gates.B.Value.Row(0))
		addMatVecT(z, m.gates.W.Value, append(append([]float64(nil), x...), s.h...))
		nh := make([]float64, q)
		nc := make([]float64, q)
		for j := 0; j < q; j++ {
			i := sigmoid(z[j])
			f := sigmoid(z[q+j])
			o := sigmoid(z[2*q+j])
			g := math.Tanh(z[3*q+j])
			nc[j] = f*s.c[j] + i*g
			nh[j] = o * math.Tanh(nc[j])
		}
		s.h, s.c = nh, nc
	}
	logits := make([]float64, m.Cfg.Vocab)
	copy(logits, m.Out.B.Value.Row(0))
	addMatVecT(logits, m.Out.W.Value, s.h)
	return logits
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// addMatVecT accumulates xᵀ·W into out for W with Shape [len(x), len(out)].
func addMatVecT(out []float64, w *tensor.Tensor, x []float64) {
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := w.Row(i)
		for j, wv := range row {
			out[j] += xv * wv
		}
	}
}
