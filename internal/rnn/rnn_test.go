package rnn

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func elmanCfg() Config { return Config{Vocab: 6, Dim: 8, Hidden: 12, Kind: Elman} }
func lstmCfg() Config  { return Config{Vocab: 6, Dim: 8, Hidden: 12, Kind: LSTM} }

func TestForwardShapes(t *testing.T) {
	for _, cfg := range []Config{elmanCfg(), lstmCfg()} {
		m := MustNew(cfg, mathx.NewRNG(1))
		out := m.Forward([]int{0, 1, 2, 3})
		if out.Value.Shape[0] != 4 || out.Value.Shape[1] != 6 {
			t.Fatalf("kind %v: shape %v", cfg.Kind, out.Value.Shape)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}, mathx.NewRNG(1)); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Vocab: 2, Dim: 2, Hidden: 2, Kind: Kind(99)}, mathx.NewRNG(1)); err == nil {
		t.Error("bad kind accepted")
	}
}

// TestRecurrentStateCarriesInformation: prediction at position t must depend
// on tokens before t-? — i.e. the state is real memory (Eq. 12).
func TestRecurrentStateCarriesInformation(t *testing.T) {
	for _, cfg := range []Config{elmanCfg(), lstmCfg()} {
		m := MustNew(cfg, mathx.NewRNG(2))
		a := m.Forward([]int{1, 2, 3}).Value
		b := m.Forward([]int{5, 2, 3}).Value
		// Final-row logits must differ: token 0 influences the state that
		// reaches position 2.
		diff := 0.0
		for j := 0; j < 6; j++ {
			diff += math.Abs(a.At(2, j) - b.At(2, j))
		}
		if diff < 1e-9 {
			t.Errorf("kind %v: first token invisible at final position", cfg.Kind)
		}
	}
}

func TestGradientCheckElman(t *testing.T) {
	m := MustNew(Config{Vocab: 4, Dim: 3, Hidden: 4, Kind: Elman}, mathx.NewRNG(3))
	checkModelGrad(t, m, []int{0, 1, 2}, []int{1, 2, 3})
}

func TestGradientCheckLSTM(t *testing.T) {
	m := MustNew(Config{Vocab: 4, Dim: 3, Hidden: 4, Kind: LSTM}, mathx.NewRNG(4))
	checkModelGrad(t, m, []int{0, 1, 2}, []int{1, 2, 3})
}

func checkModelGrad(t *testing.T, m *Model, input, target []int) {
	t.Helper()
	nn.ZeroGrad(m)
	autograd.Backward(m.Loss(input, target))
	const h = 1e-5
	for pi, p := range m.Parameters() {
		for i := 0; i < p.Value.Size(); i += 2 {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := m.Loss(input, target).Value.Data[0]
			p.Value.Data[i] = orig - h
			lm := m.Loss(input, target).Value.Data[0]
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, p.Grad.Data[i], num)
			}
		}
	}
}

func trainCycle(t *testing.T, cfg Config, steps int, lr float64) (*Model, float64) {
	t.Helper()
	m := MustNew(cfg, mathx.NewRNG(5))
	input := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2}
	target := []int{1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	var last float64
	for s := 0; s < steps; s++ {
		nn.ZeroGrad(m)
		loss := m.Loss(input, target)
		autograd.Backward(loss)
		for _, p := range m.Parameters() {
			tensor.AddScaledInPlace(p.Value, -lr, p.Grad)
		}
		last = loss.Value.Data[0]
	}
	return m, last
}

func TestElmanLearnsCycle(t *testing.T) {
	_, loss := trainCycle(t, Config{Vocab: 4, Dim: 8, Hidden: 16, Kind: Elman}, 200, 0.1)
	if loss > 0.2 {
		t.Errorf("Elman loss after training = %v", loss)
	}
}

func TestLSTMLearnsCycle(t *testing.T) {
	_, loss := trainCycle(t, Config{Vocab: 4, Dim: 8, Hidden: 16, Kind: LSTM}, 200, 0.2)
	if loss > 0.2 {
		t.Errorf("LSTM loss after training = %v", loss)
	}
}

func TestStepMatchesForward(t *testing.T) {
	for _, cfg := range []Config{elmanCfg(), lstmCfg()} {
		m := MustNew(cfg, mathx.NewRNG(6))
		ids := []int{3, 1, 4, 1, 5}
		full := m.Forward(ids).Value
		st := m.NewState()
		for i, id := range ids {
			logits := m.Step(st, id)
			for j := range logits {
				if math.Abs(logits[j]-full.At(i, j)) > 1e-9 {
					t.Fatalf("kind %v: step logit (%d,%d) = %v, forward = %v",
						cfg.Kind, i, j, logits[j], full.At(i, j))
				}
			}
		}
	}
}

func TestPerplexityUntrainedNearUniform(t *testing.T) {
	m := MustNew(elmanCfg(), mathx.NewRNG(7))
	input := []int{0, 1, 2, 3, 4, 5, 0, 1}
	target := []int{1, 2, 3, 4, 5, 0, 1, 2}
	pp := m.Perplexity(input, target)
	// Untrained model ≈ uniform over 6 tokens.
	if pp < 3 || pp > 12 {
		t.Errorf("untrained perplexity = %v, want near 6", pp)
	}
}

func TestCrossEntropyIgnoresPadding(t *testing.T) {
	m := MustNew(lstmCfg(), mathx.NewRNG(8))
	in := []int{1, 2, 3}
	ceAll := m.CrossEntropy(in, []int{2, 3, 4})
	cePad := m.CrossEntropy(in, []int{2, -1, -1})
	if ceAll == cePad {
		t.Error("padding had no effect")
	}
	if math.IsNaN(cePad) {
		t.Error("padded CE is NaN")
	}
}

func TestForgetGateBiasInitialized(t *testing.T) {
	m := MustNew(lstmCfg(), mathx.NewRNG(9))
	b := m.gates.B.Value.Row(0)
	q := m.Cfg.Hidden
	for i := q; i < 2*q; i++ {
		if b[i] != 1 {
			t.Fatal("forget-gate bias not opened")
		}
	}
}

func TestNumParameters(t *testing.T) {
	cfg := Config{Vocab: 10, Dim: 4, Hidden: 6, Kind: Elman}
	m := MustNew(cfg, mathx.NewRNG(10))
	want := 10*4 + (4*6 + 6) + 6*6 + (6*10 + 10)
	if got := m.NumParameters(); got != want {
		t.Errorf("params = %d, want %d", got, want)
	}
}

// TestLSTMBeatsElmanOnLongGap: predicting a token that depends on input 12
// steps earlier; the LSTM's gated memory should reach lower loss.
func TestLSTMBeatsElmanOnLongGap(t *testing.T) {
	gap := 8
	rng := mathx.NewRNG(11)
	// Sequences: first token is 0 or 1, then `gap` filler 2s, final target
	// repeats the first token.
	mk := func(first int) ([]int, []int) {
		in := []int{first}
		tg := []int{-1}
		for i := 0; i < gap; i++ {
			in = append(in, 2)
			tg = append(tg, -1)
		}
		tg[len(tg)-1] = first
		return in, tg
	}
	train := func(kind Kind, lr float64) float64 {
		m := MustNew(Config{Vocab: 3, Dim: 6, Hidden: 12, Kind: kind}, rng.Split())
		var last float64
		for s := 0; s < 600; s++ {
			total := 0.0
			for _, first := range []int{0, 1} {
				in, tg := mk(first)
				nn.ZeroGrad(m)
				loss := m.Loss(in, tg)
				autograd.Backward(loss)
				for _, p := range m.Parameters() {
					tensor.AddScaledInPlace(p.Value, -lr, p.Grad)
				}
				total += loss.Value.Data[0]
			}
			last = total / 2
		}
		return last
	}
	elman := train(Elman, 0.1)
	lstm := train(LSTM, 0.2)
	if lstm > 0.5 {
		t.Errorf("LSTM failed the long-gap task: loss %v", lstm)
	}
	if lstm >= elman && elman > 0.1 {
		t.Logf("note: elman=%v lstm=%v (both solved; acceptable)", elman, lstm)
	}
}
