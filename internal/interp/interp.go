// Package interp implements the mechanistic-interpretability toolkit of the
// paper's §7: attention-pattern analysis, induction-head scoring (the
// "A B … A → B" circuit of Elhage/Olsson et al that the paper highlights),
// and head ablation for causal attribution.
package interp

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transformer"
)

// InductionScore measures how strongly an attention head implements the
// induction pattern on seq: for every position i whose token occurred
// earlier at position j, the induction circuit attends from i to j+1 (the
// token that followed the previous occurrence). The score is the mean
// attention weight on that target across all such positions; a head that
// never looks there scores ~1/L, a crisp induction head scores near 1.
func InductionScore(att *tensor.Tensor, seq []int) float64 {
	if att.Shape[0] != len(seq) {
		panic("interp: attention/sequence length mismatch")
	}
	total, n := 0.0, 0
	for i := 1; i < len(seq); i++ {
		// Most recent previous occurrence of seq[i].
		j := -1
		for k := i - 1; k >= 0; k-- {
			if seq[k] == seq[i] {
				j = k
				break
			}
		}
		if j < 0 || j+1 > i {
			continue
		}
		total += att.At(i, j+1)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// PrefixMatchingScore measures attention from position i back to the
// previous occurrence j itself (the "matching" half of the circuit, before
// the one-step shift).
func PrefixMatchingScore(att *tensor.Tensor, seq []int) float64 {
	total, n := 0.0, 0
	for i := 1; i < len(seq); i++ {
		j := -1
		for k := i - 1; k >= 0; k-- {
			if seq[k] == seq[i] {
				j = k
				break
			}
		}
		if j < 0 {
			continue
		}
		total += att.At(i, j)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// PreviousTokenScore measures the mean attention each position places on
// its immediate predecessor — the "previous-token head" that composes with
// the matching head to form the induction circuit.
func PreviousTokenScore(att *tensor.Tensor) float64 {
	l := att.Shape[0]
	if l < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < l; i++ {
		total += att.At(i, i-1)
	}
	return total / float64(l-1)
}

// HeadScore identifies a head by layer and index with a score.
type HeadScore struct {
	Layer, Head int
	Score       float64
}

// ScoreHeads runs the model on each sequence and returns the mean induction
// score for every head, sorted by (layer, head).
func ScoreHeads(m *transformer.Model, seqs [][]int) []HeadScore {
	var sums []([]float64)
	counts := 0
	for _, seq := range seqs {
		var tr transformer.Trace
		m.Forward(seq, &tr)
		if sums == nil {
			sums = make([][]float64, len(tr.Layers))
			for l := range sums {
				sums[l] = make([]float64, len(tr.Layers[l].Attention))
			}
		}
		for l, lt := range tr.Layers {
			for h, att := range lt.Attention {
				sums[l][h] += InductionScore(att, seq)
			}
		}
		counts++
	}
	var out []HeadScore
	for l := range sums {
		for h := range sums[l] {
			out = append(out, HeadScore{Layer: l, Head: h, Score: sums[l][h] / float64(counts)})
		}
	}
	return out
}

// BestHead returns the highest-scoring entry.
func BestHead(scores []HeadScore) HeadScore {
	if len(scores) == 0 {
		panic("interp: no head scores")
	}
	best := scores[0]
	for _, s := range scores[1:] {
		if s.Score > best.Score {
			best = s
		}
	}
	return best
}

// RepeatAccuracy measures greedy next-token accuracy on the second halves
// of repeated sequences — the behavioural signature of induction (the model
// predicts the repetition rather than the unigram prior).
func RepeatAccuracy(m *transformer.Model, seqs [][]int) float64 {
	correct, total := 0, 0
	for _, seq := range seqs {
		logits := m.ForwardLogits(seq)
		half := len(seq) / 2
		for i := half; i < len(seq)-1; i++ {
			pred := argmaxRow(logits, i)
			if pred == seq[i+1] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func argmaxRow(t *tensor.Tensor, i int) int {
	row := t.Row(i)
	best, bv := 0, row[0]
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// Ablation zeroes one attention head's value projection, removing its
// contribution to the residual stream while leaving its attention pattern
// computable. Restore undoes the edit.
type Ablation struct {
	saved []float64
	dst   *tensor.Tensor
	m     *transformer.Model
}

// AblateHead zeroes head h of block layer and returns a handle to restore
// it. It panics on out-of-range indices.
func AblateHead(m *transformer.Model, layer, head int) *Ablation {
	if layer < 0 || layer >= len(m.Blocks) {
		panic(fmt.Sprintf("interp: layer %d out of range", layer))
	}
	attn := m.Blocks[layer].Attn
	if head < 0 || head >= attn.NumHeads() {
		panic(fmt.Sprintf("interp: head %d out of range", head))
	}
	wv := attn.HeadValueWeights(head)
	a := &Ablation{saved: append([]float64(nil), wv.Data...), dst: wv, m: m}
	for i := range wv.Data {
		wv.Data[i] = 0
	}
	// The edit bypasses the trainer, so drop any compiled inference view.
	m.InvalidateCompiled()
	return a
}

// Restore reinstates the ablated weights.
func (a *Ablation) Restore() {
	copy(a.dst.Data, a.saved)
	a.m.InvalidateCompiled()
}
