package interp

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/transformer"
)

// handAttention builds an L×L row-stochastic matrix with all mass on the
// given target per row (target[i] < 0 → uniform over prefix).
func handAttention(targets []int) *tensor.Tensor {
	l := len(targets)
	att := tensor.New(l, l)
	for i := 0; i < l; i++ {
		if targets[i] >= 0 {
			att.Set(i, targets[i], 1)
			continue
		}
		for j := 0; j <= i; j++ {
			att.Set(i, j, 1/float64(i+1))
		}
	}
	return att
}

func TestInductionScorePerfectHead(t *testing.T) {
	// seq = a b c a b: at i=3 (a), previous a at 0 → target 1; at i=4 (b),
	// previous b at 1 → target 2.
	seq := []int{0, 1, 2, 0, 1}
	targets := []int{-1, -1, -1, 1, 2}
	att := handAttention(targets)
	if s := InductionScore(att, seq); math.Abs(s-1) > 1e-12 {
		t.Errorf("perfect induction score = %v", s)
	}
}

func TestInductionScoreUniformIsLow(t *testing.T) {
	seq := []int{0, 1, 2, 0, 1}
	att := handAttention([]int{-1, -1, -1, -1, -1})
	if s := InductionScore(att, seq); s > 0.3 {
		t.Errorf("uniform attention induction score = %v", s)
	}
}

func TestPrefixMatchingScore(t *testing.T) {
	seq := []int{0, 1, 0}
	att := handAttention([]int{-1, -1, 0}) // i=2 attends to previous 0 at j=0
	if s := PrefixMatchingScore(att, seq); math.Abs(s-1) > 1e-12 {
		t.Errorf("matching score = %v", s)
	}
}

func TestPreviousTokenScore(t *testing.T) {
	att := handAttention([]int{-1, 0, 1, 2})
	if s := PreviousTokenScore(att); math.Abs(s-1) > 1e-12 {
		t.Errorf("previous-token score = %v", s)
	}
}

func trainInductionModel(t *testing.T, layers int, steps int) (*transformer.Model, [][]int) {
	t.Helper()
	rng := mathx.NewRNG(42)
	vocab, seqLen := 8, 16
	cfg := transformer.Config{
		Vocab: vocab, Dim: 32, Layers: layers, Heads: 2, Window: seqLen,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}
	m := transformer.MustNew(cfg, rng)
	seqs := corpus.RepeatedBigramCorpus(60, seqLen, vocab, rng)
	var data []train.Batch
	for _, s := range seqs {
		// Supervise only the repeated half (the first half is unpredictable).
		tg := make([]int, len(s)-1)
		for i := range tg {
			if i+1 >= len(s)/2 {
				tg[i] = s[i+1]
			} else {
				tg[i] = -1
			}
		}
		data = append(data, train.Batch{Input: s[:len(s)-1], Target: tg})
	}
	_, err := train.Run(m, data, train.Config{
		Steps: steps, BatchSize: 4, Schedule: train.Constant(0.002),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, seqs
}

// TestInductionScoreRises is experiment E8: after training on repeated
// sequences, some head in layer ≥ 2 develops an induction score far above
// the untrained baseline, and repeat accuracy is high.
func TestInductionScoreRises(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := mathx.NewRNG(7)
	vocab, seqLen := 8, 16
	untrained := transformer.MustNew(transformer.Config{
		Vocab: vocab, Dim: 32, Layers: 2, Heads: 2, Window: seqLen,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}, rng)
	seqs := corpus.RepeatedBigramCorpus(20, seqLen, vocab, mathx.NewRNG(9))
	baseBest := BestHead(ScoreHeads(untrained, seqs))

	m, trainSeqs := trainInductionModel(t, 2, 300)
	best := BestHead(ScoreHeads(m, seqs))
	if best.Score < baseBest.Score+0.1 {
		t.Errorf("induction score did not rise: untrained %v, trained %v", baseBest.Score, best.Score)
	}
	// Behaviour: repeat accuracy beats chance (1/vocab) by a wide margin.
	acc := RepeatAccuracy(m, trainSeqs)
	if acc < 0.5 {
		t.Errorf("repeat accuracy = %v", acc)
	}
}

func TestScoreHeadsShape(t *testing.T) {
	rng := mathx.NewRNG(3)
	m := transformer.MustNew(transformer.Config{
		Vocab: 6, Dim: 16, Layers: 3, Heads: 4, Window: 10,
		Pos: transformer.PosLearned, Act: nn.ReLU,
	}, rng)
	seqs := corpus.RepeatedBigramCorpus(3, 10, 6, rng)
	scores := ScoreHeads(m, seqs)
	if len(scores) != 12 {
		t.Fatalf("got %d head scores", len(scores))
	}
	for _, s := range scores {
		if s.Score < 0 || s.Score > 1 {
			t.Fatalf("score out of range: %+v", s)
		}
	}
}

func TestAblationZeroesAndRestores(t *testing.T) {
	rng := mathx.NewRNG(4)
	m := transformer.MustNew(transformer.Config{
		Vocab: 6, Dim: 8, Layers: 1, Heads: 2, Window: 6,
		Pos: transformer.PosLearned, Act: nn.ReLU,
	}, rng)
	seq := []int{1, 2, 3, 4}
	before := m.ForwardLogits(seq).Clone()
	ab := AblateHead(m, 0, 0)
	during := m.ForwardLogits(seq)
	diff := 0.0
	for i := range before.Data {
		diff += math.Abs(before.Data[i] - during.Data[i])
	}
	if diff == 0 {
		t.Error("ablation had no effect")
	}
	ab.Restore()
	after := m.ForwardLogits(seq)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("restore incomplete")
		}
	}
}

func TestAblationPanicsOutOfRange(t *testing.T) {
	rng := mathx.NewRNG(5)
	m := transformer.MustNew(transformer.Config{
		Vocab: 4, Dim: 8, Layers: 1, Heads: 2, Window: 4,
		Pos: transformer.PosLearned, Act: nn.ReLU,
	}, rng)
	for _, fn := range []func(){
		func() { AblateHead(m, 5, 0) },
		func() { AblateHead(m, 0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestAblatingInductionHeadHurtsRepeats: removing the best induction head
// should reduce repeat accuracy more than removing the worst head.
func TestAblatingInductionHeadHurtsRepeats(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	m, seqs := trainInductionModel(t, 2, 300)
	scores := ScoreHeads(m, seqs)
	best := BestHead(scores)
	worst := scores[0]
	for _, s := range scores {
		if s.Score < worst.Score {
			worst = s
		}
	}
	base := RepeatAccuracy(m, seqs)
	abBest := AblateHead(m, best.Layer, best.Head)
	accNoBest := RepeatAccuracy(m, seqs)
	abBest.Restore()
	abWorst := AblateHead(m, worst.Layer, worst.Head)
	accNoWorst := RepeatAccuracy(m, seqs)
	abWorst.Restore()
	t.Logf("base=%.3f noBest=%.3f noWorst=%.3f (best head %d/%d score %.3f)",
		base, accNoBest, accNoWorst, best.Layer, best.Head, best.Score)
	if accNoBest > base {
		t.Errorf("removing the top induction head improved accuracy: %v -> %v", base, accNoBest)
	}
}
