package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/transformer"
)

func tinyPipeline() Config {
	return Config{
		Tokenizer: WordTok,
		Model: transformer.Config{
			Dim: 24, Layers: 1, Heads: 2, Window: 12,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 200, BatchSize: 4, LR: 0.004, Seed: 1,
	}
}

func pcfgLines(n int, seed uint64) []string {
	return corpus.PCFGText(grammar.TinyEnglish(), n, 10, mathx.NewRNG(seed))
}

func TestTrainRejectsEmptyCorpus(t *testing.T) {
	if _, _, err := Train(nil, tinyPipeline()); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestTrainAndGenerate(t *testing.T) {
	lines := pcfgLines(300, 2)
	llm, res, err := Train(lines, tinyPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTrainLoss() >= res.Curve[0].TrainLoss {
		t.Errorf("loss did not decrease: %v -> %v", res.Curve[0].TrainLoss, res.FinalTrainLoss())
	}
	ids, err := llm.GenerateTokens("the king", 8, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("generated %d tokens, want 8", len(ids))
	}
	// Every generated word must come from the corpus vocabulary.
	vocab := map[string]bool{}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			vocab[w] = true
		}
	}
	out := llm.Tok.Decode(ids)
	for _, w := range strings.Fields(out) {
		if !vocab[w] {
			t.Errorf("generated unknown word %q", w)
		}
	}
}

func TestCompleteImplementsGenerator(t *testing.T) {
	lines := pcfgLines(200, 3)
	llm, _, err := Train(lines, tinyPipeline())
	if err != nil {
		t.Fatal(err)
	}
	// eval.Generator compliance, checked structurally.
	var _ interface {
		Complete(string, int) string
	} = llm
	if got := llm.Complete("the queen", 4); got == "" {
		t.Log("empty completion (acceptable for EOS-first models)")
	}
}

func TestPerplexityImprovesWithTraining(t *testing.T) {
	lines := pcfgLines(300, 4)
	test := pcfgLines(60, 5)
	short := tinyPipeline()
	short.Steps = 5
	llm1, _, err := Train(lines, short)
	if err != nil {
		t.Fatal(err)
	}
	long := tinyPipeline()
	long.Steps = 300
	llm2, _, err := Train(lines, long)
	if err != nil {
		t.Fatal(err)
	}
	p1 := llm1.Perplexity(test)
	p2 := llm2.Perplexity(test)
	if p2 >= p1 {
		t.Errorf("more training did not help: %v -> %v", p1, p2)
	}
}

func TestPromptTruncation(t *testing.T) {
	lines := pcfgLines(200, 6)
	llm, _, err := Train(lines, tinyPipeline())
	if err != nil {
		t.Fatal(err)
	}
	// A prompt far longer than the window must not panic.
	longPrompt := strings.Repeat("the king sees the queen ", 40)
	if _, err := llm.Generate(longPrompt, 4, sample.Greedy{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUnknownPrompt(t *testing.T) {
	lines := pcfgLines(100, 7)
	llm, _, err := Train(lines, tinyPipeline())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown words map to UNK, still generate.
	if _, err := llm.Generate("xylophone quantum", 3, sample.Greedy{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCharAndBPETokenizers(t *testing.T) {
	lines := pcfgLines(150, 8)
	for _, kind := range []TokenizerKind{CharTok, BPETok} {
		cfg := tinyPipeline()
		cfg.Tokenizer = kind
		cfg.Steps = 30
		llm, _, err := Train(lines, cfg)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if llm.Tok.VocabSize() < 5 {
			t.Fatalf("kind %d: vocab %d", kind, llm.Tok.VocabSize())
		}
	}
}

// TestModelLadderOrdering is experiment E5: on structured text, the
// perplexity ladder must descend from 1-gram to the neural models (the
// paper's "statistical estimates in the 100s, best LLMs ~20" contrast,
// reproduced in shape at toy scale).
func TestModelLadderOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder trains three model families")
	}
	trainLines := pcfgLines(500, 9)
	testLines := pcfgLines(100, 10)
	ladder, err := PerplexityLadder(trainLines, testLines, DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatLadder(ladder))
	byName := map[string]float64{}
	for _, e := range ladder {
		if math.IsNaN(e.Perplexity) || e.Perplexity <= 0 {
			t.Fatalf("bad perplexity for %s: %v", e.Name, e.Perplexity)
		}
		byName[e.Name] = e.Perplexity
	}
	if byName["1-gram"] <= byName["2-gram"] {
		t.Errorf("unigram (%v) not worse than bigram (%v)", byName["1-gram"], byName["2-gram"])
	}
	if byName["transformer"] >= byName["1-gram"] {
		t.Errorf("transformer (%v) not better than unigram (%v)", byName["transformer"], byName["1-gram"])
	}
	if byName["lstm"] >= byName["1-gram"] {
		t.Errorf("lstm (%v) not better than unigram (%v)", byName["lstm"], byName["1-gram"])
	}
}

func TestFormatLadder(t *testing.T) {
	s := FormatLadder([]LadderEntry{{Name: "x", Perplexity: 3.14}})
	if !strings.Contains(s, "3.14") {
		t.Errorf("format = %q", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Steps == 0 || c.BatchSize == 0 || c.LR == 0 || c.BPEMerges == 0 || c.ClipNorm == 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
}
