package core

import (
	"bytes"
	"testing"

	"repro/internal/sample"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	lines := pcfgLines(150, 20)
	cfg := tinyPipeline()
	cfg.Steps = 50
	llm, _, err := Train(lines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := llm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical generations from identical state.
	a, err := llm.GenerateTokens("the king", 6, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.GenerateTokens("the king", 6, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation diverged at %d: %v vs %v", i, a, b)
		}
	}
	// Perplexities match.
	test := pcfgLines(30, 21)
	if pa, pb := llm.Perplexity(test), restored.Perplexity(test); pa != pb {
		t.Errorf("perplexity drift: %v vs %v", pa, pb)
	}
}

func TestSaveLoadBPE(t *testing.T) {
	lines := pcfgLines(100, 22)
	cfg := tinyPipeline()
	cfg.Tokenizer = BPETok
	cfg.Steps = 20
	llm, _, err := Train(lines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := llm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tok.VocabSize() != llm.Tok.VocabSize() {
		t.Error("vocab size drift")
	}
}

func TestSaveCharUnsupported(t *testing.T) {
	lines := pcfgLines(80, 23)
	cfg := tinyPipeline()
	cfg.Tokenizer = CharTok
	cfg.Steps = 5
	llm, _, err := Train(lines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := llm.Save(&buf); err == nil {
		t.Error("char tokenizer save should be unsupported")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
}
