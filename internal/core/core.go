// Package core assembles the substrates into the paper's complete "Recipe
// for an LLM" (§6): corpus → tokenizer → transformer → Eq. 16 training →
// Eq. 8 sampling, behind a single pipeline type. It also provides the
// model-ladder comparison of experiment E5 (n-gram → LSTM → transformer
// perplexity on one corpus, the §5 progression).
package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/corpus"
	"repro/internal/ffnlm"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/ngram"
	"repro/internal/nn"
	"repro/internal/rnn"
	"repro/internal/sample"
	"repro/internal/tokenizer"
	"repro/internal/train"
	"repro/internal/transformer"
)

// TokenizerKind selects the text → token scheme (§5 tokenization).
type TokenizerKind int

// Supported tokenizers.
const (
	WordTok TokenizerKind = iota
	CharTok
	BPETok
)

// Config assembles pipeline hyperparameters. Model.Vocab is filled in from
// the trained tokenizer.
type Config struct {
	Tokenizer TokenizerKind
	BPEMerges int // merges for BPETok (default 200)

	Model transformer.Config

	Steps     int
	BatchSize int
	LR        float64
	ClipNorm  float64
	Seed      uint64

	// Workers is the data-parallel worker count per optimizer step (see
	// train.Config.Workers): 0/1 = sequential, >1 = sharded minibatch with
	// deterministic gradient reduction, negative = runtime.NumCPU().
	Workers int
}

// WithDefaults fills unset training fields.
func (c Config) WithDefaults() Config {
	if c.BPEMerges == 0 {
		c.BPEMerges = 200
	}
	if c.Steps == 0 {
		c.Steps = 300
	}
	if c.BatchSize == 0 {
		c.BatchSize = 4
	}
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 1
	}
	return c
}

// LLM is a trained language model: tokenizer plus transformer.
type LLM struct {
	Tok   tokenizer.Tokenizer
	Model *transformer.Model
	Cfg   Config
}

// Train builds the tokenizer from lines, trains a transformer on the
// resulting token stream, and returns the model with its training curve.
func Train(lines []string, cfg Config) (*LLM, *train.Result, error) {
	cfg = cfg.WithDefaults()
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("core: empty corpus")
	}
	var tok tokenizer.Tokenizer
	switch cfg.Tokenizer {
	case WordTok:
		tok = tokenizer.NewWord(lines)
	case CharTok:
		tok = tokenizer.NewChar(lines)
	case BPETok:
		tok = tokenizer.TrainBPE(lines, cfg.BPEMerges)
	default:
		return nil, nil, fmt.Errorf("core: unknown tokenizer kind %d", cfg.Tokenizer)
	}
	mcfg := cfg.Model
	mcfg.Vocab = tok.VocabSize()
	model, err := transformer.New(mcfg, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	stream := corpus.Concat(lines, tok.Encode, tokenizer.EOS)
	windows := corpus.MakeWindows(stream, mcfg.Window)
	if len(windows) == 0 {
		return nil, nil, fmt.Errorf("core: corpus too small for window %d", mcfg.Window)
	}
	batches := make([]train.Batch, len(windows))
	for i, w := range windows {
		batches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	res, err := train.Run(model, batches, train.Config{
		Steps: cfg.Steps, BatchSize: cfg.BatchSize,
		Schedule:  train.WarmupCosine(cfg.LR, cfg.LR/10, cfg.Steps/10, cfg.Steps),
		Optimizer: train.NewAdam(0), ClipNorm: cfg.ClipNorm, Seed: cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return &LLM{Tok: tok, Model: model, Cfg: cfg}, res, nil
}

// promptIDs encodes and window-truncates a prompt, reserving budget tokens.
func (l *LLM) promptIDs(prompt string, budget int) ([]int, error) {
	ids := l.Tok.Encode(prompt)
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: prompt %q encodes to no tokens", prompt)
	}
	room := l.Model.Cfg.Window - budget
	if room < 1 {
		room = 1
	}
	if len(ids) > room {
		ids = ids[len(ids)-room:]
	}
	return ids, nil
}

// PromptWindow encodes prompt and truncates it to the model window while
// reserving budget tokens of generation room — the admission step shared by
// the generation entry points and the batched serving front end.
//
// Deprecated: PromptWindow is the old name of EncodePrompt.
func (l *LLM) PromptWindow(prompt string, budget int) ([]int, error) {
	return l.promptIDs(prompt, budget)
}

// ---- lm.LanguageModel implementation ----

// EncodePrompt implements lm.LanguageModel: tokenize and window-truncate,
// reserving budget tokens of generation room.
func (l *LLM) EncodePrompt(prompt string, budget int) ([]int, error) {
	return l.promptIDs(prompt, budget)
}

// Decode implements lm.LanguageModel.
func (l *LLM) Decode(ids []int) string { return l.Tok.Decode(ids) }

// NewStepper implements lm.LanguageModel: a fresh KV-cache predictor.
func (l *LLM) NewStepper() sample.Stepper { return l.Model.NewPredictor() }

// ContextWindow implements lm.LanguageModel.
func (l *LLM) ContextWindow() int { return l.Model.Cfg.Window }

// Gen extends prompt under the unified generation options (strategy, seed,
// budget, stop behavior): the options-first replacement for the positional
// Generate.
func (l *LLM) Gen(prompt string, opts ...sample.Option) (lm.Result, error) {
	return lm.Gen(l, prompt, opts...)
}

// Stream is Gen with per-token delivery: onToken receives every sampled
// token (id, decoded text piece, index) as it is produced; the pieces
// concatenate to the final Result.Text. Cancelling ctx aborts the
// generation: cancellation is observed between decode steps and once
// before the prompt's chunked prefill pass (see lm.Stream; serving
// deployments needing bounded mid-prefill cancellation latency chunk at
// the scheduling layer via serve.Config.PrefillChunk).
func (l *LLM) Stream(ctx context.Context, prompt string, onToken func(sample.Token) error, opts ...sample.Option) (lm.Result, error) {
	return lm.Stream(ctx, l, prompt, onToken, opts...)
}

// Complete greedily extends prompt by up to maxTokens tokens, stopping at
// the end-of-sequence separator, and returns the decoded continuation.
// It implements eval.Generator.
func (l *LLM) Complete(prompt string, maxTokens int) string {
	ids, err := l.promptIDs(prompt, maxTokens)
	if err != nil {
		return ""
	}
	rng := mathx.NewRNG(977)
	out := sample.Generate(l.Model.NewPredictor(), ids, maxTokens, sample.Greedy{}, tokenizer.EOS, rng)
	if len(out) > 0 && out[len(out)-1] == tokenizer.EOS {
		out = out[:len(out)-1]
	}
	return l.Tok.Decode(out)
}

// GenerateTokens extends prompt by exactly n tokens with the given sampling
// strategy, continuing across sentence separators (free-running generation;
// use Complete for answer-style decoding that stops at EOS).
//
// Deprecated: use Gen with sample.WithMaxTokens/WithStrategy/WithSeed; the
// output for the same parameters is identical.
func (l *LLM) GenerateTokens(prompt string, n int, strat sample.Strategy, seed uint64) ([]int, error) {
	ids, err := l.promptIDs(prompt, n)
	if err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(seed + 977)
	return sample.Generate(l.Model.NewPredictor(), ids, n, strat, -1, rng), nil
}

// Generate is GenerateTokens followed by decoding.
//
// Deprecated: use Gen, which takes the unified functional options and also
// returns the sampled token ids.
func (l *LLM) Generate(prompt string, n int, strat sample.Strategy, seed uint64) (string, error) {
	out, err := l.GenerateTokens(prompt, n, strat, seed)
	if err != nil {
		return "", err
	}
	return l.Tok.Decode(out), nil
}

// CrossEntropy evaluates the Eq. 3 objective on held-out lines (teacher-
// forced, windowed like training).
func (l *LLM) CrossEntropy(lines []string) float64 {
	stream := corpus.Concat(lines, l.Tok.Encode, tokenizer.EOS)
	windows := corpus.MakeWindows(stream, l.Model.Cfg.Window)
	if len(windows) == 0 {
		return math.NaN()
	}
	batches := make([]train.Batch, len(windows))
	for i, w := range windows {
		batches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	return train.MeanLoss(l.Model, batches)
}

// Perplexity is exp(CrossEntropy) on held-out lines.
func (l *LLM) Perplexity(lines []string) float64 {
	return math.Exp(l.CrossEntropy(lines))
}

// ---- Model ladder (experiment E5) ----

// LadderEntry is one model's held-out perplexity.
type LadderEntry struct {
	Name       string
	Perplexity float64
}

// LadderConfig sizes the E5 comparison.
type LadderConfig struct {
	Orders      []int // n-gram orders to include (default 1..3)
	LSTMHidden  int
	LSTMSteps   int
	TransDim    int
	TransLayers int
	TransHeads  int
	TransSteps  int
	Window      int
	Seed        uint64
}

// DefaultLadder returns test-scale settings.
func DefaultLadder() LadderConfig {
	return LadderConfig{
		Orders:     []int{1, 2, 3},
		LSTMHidden: 32, LSTMSteps: 250,
		TransDim: 32, TransLayers: 2, TransHeads: 2, TransSteps: 300,
		Window: 16, Seed: 5,
	}
}

// PerplexityLadder trains every rung on the same word-tokenized corpus and
// evaluates held-out perplexity, reproducing the §5 progression: the
// expected ordering is 1-gram ≫ higher n-grams > neural models.
func PerplexityLadder(trainLines, testLines []string, cfg LadderConfig) ([]LadderEntry, error) {
	tok := tokenizer.NewWord(trainLines)
	trainStream := corpus.Concat(trainLines, tok.Encode, tokenizer.EOS)
	testStream := corpus.Concat(testLines, tok.Encode, tokenizer.EOS)
	vocab := tok.VocabSize()
	var ladder []LadderEntry

	for _, order := range cfg.Orders {
		m := ngram.New(order, vocab)
		m.AddK = 0.05
		m.Train(trainStream)
		ladder = append(ladder, LadderEntry{
			Name:       fmt.Sprintf("%d-gram", order),
			Perplexity: m.Perplexity(testStream),
		})
	}

	windows := corpus.MakeWindows(trainStream, cfg.Window)
	testWindows := corpus.MakeWindows(testStream, cfg.Window)
	batches := make([]train.Batch, len(windows))
	for i, w := range windows {
		batches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	testBatches := make([]train.Batch, len(testWindows))
	for i, w := range testWindows {
		testBatches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}

	ffn := ffnlm.MustNew(ffnlm.Config{
		Vocab: vocab, Dim: 16, Context: 3, Hidden: cfg.LSTMHidden,
	}, mathx.NewRNG(cfg.Seed+3))
	if _, err := train.Run(ffn, batches, train.Config{
		Steps: cfg.LSTMSteps, BatchSize: 4,
		Schedule:  train.Constant(0.004),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
	}); err != nil {
		return nil, err
	}
	ladder = append(ladder, LadderEntry{
		Name:       "ffn-4gram",
		Perplexity: math.Exp(train.MeanLoss(ffn, testBatches)),
	})

	lstm := rnn.MustNew(rnn.Config{Vocab: vocab, Dim: cfg.LSTMHidden, Hidden: cfg.LSTMHidden, Kind: rnn.LSTM},
		mathx.NewRNG(cfg.Seed+1))
	if _, err := train.Run(lstm, batches, train.Config{
		Steps: cfg.LSTMSteps, BatchSize: 4,
		Schedule:  train.Constant(0.004),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
	}); err != nil {
		return nil, err
	}
	ladder = append(ladder, LadderEntry{
		Name:       "lstm",
		Perplexity: math.Exp(train.MeanLoss(lstm, testBatches)),
	})

	tf := transformer.MustNew(transformer.Config{
		Vocab: vocab, Dim: cfg.TransDim, Layers: cfg.TransLayers, Heads: cfg.TransHeads,
		Window: cfg.Window, Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(cfg.Seed+2))
	if _, err := train.Run(tf, batches, train.Config{
		Steps: cfg.TransSteps, BatchSize: 4,
		Schedule:  train.WarmupCosine(0.004, 0.0004, cfg.TransSteps/10, cfg.TransSteps),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
	}); err != nil {
		return nil, err
	}
	ladder = append(ladder, LadderEntry{
		Name:       "transformer",
		Perplexity: math.Exp(train.MeanLoss(tf, testBatches)),
	})
	return ladder, nil
}

// FormatLadder renders the ladder.
func FormatLadder(ladder []LadderEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s\n", "Model", "Perplexity")
	for _, e := range ladder {
		fmt.Fprintf(&b, "%-14s %12.2f\n", e.Name, e.Perplexity)
	}
	return b.String()
}
