package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// llmCheckpoint bundles tokenizer and model state.
type llmCheckpoint struct {
	TokKind   TokenizerKind   `json:"tok_kind"`
	Tokenizer json.RawMessage `json:"tokenizer"`
	Model     json.RawMessage `json:"model"`
}

// Save writes the trained pipeline (tokenizer + model) as JSON. Word and
// BPE tokenizers are supported; the character tokenizer is rebuildable from
// any corpus and is not serialized.
func (l *LLM) Save(w io.Writer) error {
	cp := llmCheckpoint{TokKind: l.Cfg.Tokenizer}
	var err error
	switch t := l.Tok.(type) {
	case *tokenizer.Word:
		cp.Tokenizer, err = json.Marshal(t)
	case *tokenizer.BPE:
		cp.Tokenizer, err = json.Marshal(t)
	default:
		return fmt.Errorf("core: tokenizer kind %d not serializable", l.Cfg.Tokenizer)
	}
	if err != nil {
		return err
	}
	var mb bytes.Buffer
	if err := l.Model.Save(&mb); err != nil {
		return err
	}
	cp.Model = mb.Bytes()
	return json.NewEncoder(w).Encode(cp)
}

// Load restores a pipeline saved with Save.
func Load(r io.Reader) (*LLM, error) {
	var cp llmCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	var tok tokenizer.Tokenizer
	switch cp.TokKind {
	case WordTok:
		var w tokenizer.Word
		if err := json.Unmarshal(cp.Tokenizer, &w); err != nil {
			return nil, err
		}
		tok = &w
	case BPETok:
		var b tokenizer.BPE
		if err := json.Unmarshal(cp.Tokenizer, &b); err != nil {
			return nil, err
		}
		tok = &b
	default:
		return nil, fmt.Errorf("core: unsupported tokenizer kind %d in checkpoint", cp.TokKind)
	}
	model, err := transformer.Load(bytes.NewReader(cp.Model))
	if err != nil {
		return nil, err
	}
	return &LLM{Tok: tok, Model: model, Cfg: Config{Tokenizer: cp.TokKind, Model: model.Cfg}}, nil
}
