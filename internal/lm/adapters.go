package lm

import (
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/ffnlm"
	"repro/internal/mathx"
	"repro/internal/ngram"
	"repro/internal/rnn"
	"repro/internal/sample"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

// logFloor stands in for log(0) in count-based models so the Strategy
// implementations (which expect finite logits) never see -Inf.
const logFloor = -1e9

// encodePrompt is the shared admission step of the adapters: tokenize and
// reject empty encodings. The adapted substrates have no finite total
// context, so no window truncation is applied.
func encodePrompt(tok tokenizer.Tokenizer, prompt string) ([]int, error) {
	ids := tok.Encode(prompt)
	if len(ids) == 0 {
		return nil, fmt.Errorf("lm: prompt %q encodes to no tokens", prompt)
	}
	return ids, nil
}

// ---- n-gram ----

// NGramLM pairs a trained count-based n-gram model with the tokenizer its
// counts were accumulated under, satisfying LanguageModel.
type NGramLM struct {
	Model *ngram.Model
	Tok   tokenizer.Tokenizer
}

// EncodePrompt implements LanguageModel.
func (m NGramLM) EncodePrompt(prompt string, _ int) ([]int, error) {
	return encodePrompt(m.Tok, prompt)
}

// Decode implements LanguageModel.
func (m NGramLM) Decode(ids []int) string { return m.Tok.Decode(ids) }

// ContextWindow implements LanguageModel (n-grams condition on at most N-1
// tokens but accept unbounded sequences).
func (m NGramLM) ContextWindow() int { return 0 }

// NewStepper implements LanguageModel: log-probabilities of the next-token
// distribution serve as logits, so Greedy picks the count argmax and
// Temperature{T: 1} recovers exact Eq. 5/6 sampling.
func (m NGramLM) NewStepper() sample.Stepper {
	var ctx []int
	return sample.StepperFunc(func(id int) []float64 {
		ctx = append(ctx, id)
		dist := m.Model.Dist(ctx)
		logits := make([]float64, len(dist))
		for i, p := range dist {
			if p > 0 {
				logits[i] = math.Log(p)
			} else {
				logits[i] = logFloor
			}
		}
		return logits
	})
}

// ---- fixed-window FFN-LM ----

// FFNLM pairs the Bengio-style fixed-window neural LM with a tokenizer.
type FFNLM struct {
	Model *ffnlm.Model
	Tok   tokenizer.Tokenizer
}

// EncodePrompt implements LanguageModel.
func (m FFNLM) EncodePrompt(prompt string, _ int) ([]int, error) {
	return encodePrompt(m.Tok, prompt)
}

// Decode implements LanguageModel.
func (m FFNLM) Decode(ids []int) string { return m.Tok.Decode(ids) }

// ContextWindow implements LanguageModel (the model sees only its last L
// tokens, but sequences may grow without bound).
func (m FFNLM) ContextWindow() int { return 0 }

// NewStepper implements LanguageModel, keeping only the L-token tail the
// model can see so each step costs one fixed-window forward pass.
func (m FFNLM) NewStepper() sample.Stepper {
	var ctx []int
	return sample.StepperFunc(func(id int) []float64 {
		ctx = append(ctx, id)
		if L := m.Model.Cfg.Context; len(ctx) > L {
			ctx = ctx[len(ctx)-L:]
		}
		return m.Model.NextLogits(ctx)
	})
}

// ---- recurrent (Elman / LSTM) ----

// RNNLM pairs a recurrent LM with a tokenizer; its stepper carries the
// hidden state, the O(1)-per-token inference path of Eq. 12.
type RNNLM struct {
	Model *rnn.Model
	Tok   tokenizer.Tokenizer
}

// EncodePrompt implements LanguageModel.
func (m RNNLM) EncodePrompt(prompt string, _ int) ([]int, error) {
	return encodePrompt(m.Tok, prompt)
}

// Decode implements LanguageModel.
func (m RNNLM) Decode(ids []int) string { return m.Tok.Decode(ids) }

// ContextWindow implements LanguageModel (recurrent state is unbounded).
func (m RNNLM) ContextWindow() int { return 0 }

// NewStepper implements LanguageModel.
func (m RNNLM) NewStepper() sample.Stepper {
	state := m.Model.NewState()
	return sample.StepperFunc(func(id int) []float64 {
		return m.Model.Step(state, id)
	})
}

// ---- backend training ----

// TrainBackend trains one of the non-transformer §5 substrates on lines
// (word tokenizer, ladder-scale hyperparameters) and returns it behind the
// LanguageModel interface. Recognized names: "ngram", "ffn", "rnn". The
// transformer backend is trained through core.Train / llm.Train instead,
// since core already satisfies LanguageModel.
func TrainBackend(name string, lines []string, seed uint64) (LanguageModel, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("lm: empty corpus")
	}
	tok := tokenizer.NewWord(lines)
	stream := corpus.Concat(lines, tok.Encode, tokenizer.EOS)
	switch name {
	case "ngram":
		m := ngram.New(3, tok.VocabSize())
		m.AddK = 0.05
		m.Train(stream)
		return NGramLM{Model: m, Tok: tok}, nil
	case "ffn":
		m := ffnlm.MustNew(ffnlm.Config{
			Vocab: tok.VocabSize(), Dim: 16, Context: 3, Hidden: 32,
		}, mathx.NewRNG(seed+3))
		if err := trainNeural(m, stream); err != nil {
			return nil, err
		}
		return FFNLM{Model: m, Tok: tok}, nil
	case "rnn":
		m := rnn.MustNew(rnn.Config{
			Vocab: tok.VocabSize(), Dim: 32, Hidden: 32, Kind: rnn.LSTM,
		}, mathx.NewRNG(seed+1))
		if err := trainNeural(m, stream); err != nil {
			return nil, err
		}
		return RNNLM{Model: m, Tok: tok}, nil
	default:
		return nil, fmt.Errorf("lm: unknown backend %q (want ngram, ffn or rnn)", name)
	}
}

// trainNeural runs the ladder-scale optimization shared by the neural
// substrates.
func trainNeural(m train.LossModel, stream []int) error {
	windows := corpus.MakeWindows(stream, 16)
	if len(windows) == 0 {
		return fmt.Errorf("lm: corpus too small")
	}
	batches := make([]train.Batch, len(windows))
	for i, w := range windows {
		batches[i] = train.Batch{Input: w.Input, Target: w.Target}
	}
	_, err := train.Run(m, batches, train.Config{
		Steps: 250, BatchSize: 4,
		Schedule:  train.Constant(0.004),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 5,
	})
	return err
}
