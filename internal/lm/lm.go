// Package lm defines the backend-agnostic language-model contract behind
// the unified generation API: any model that can encode a prompt, step one
// token at a time, and decode ids back to text plugs into the same
// generation, streaming, serving, and evaluation machinery. core.LLM (the
// transformer pipeline) satisfies it directly; the §5 ladder substrates —
// n-gram, FFN-LM, RNN/LSTM — are adapted by pairing them with a tokenizer
// (see adapters.go). The Gen and Stream drivers here are the reference
// single-sequence decoding loop: for a fixed (model, prompt, options) they
// produce output bitwise identical to the batched serving path.
package lm

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mathx"
	"repro/internal/sample"
	"repro/internal/tokenizer"
)

// LanguageModel is the encode/step/decode contract every generation entry
// point (direct calls, llm.Server single-sequence mode, the eval harness,
// the CLIs) accepts.
type LanguageModel interface {
	// EncodePrompt tokenizes prompt, reserving budget tokens of generation
	// room within any finite context the model has. It errors when the
	// prompt encodes to no tokens.
	EncodePrompt(prompt string, budget int) ([]int, error)
	// Decode maps token ids back to text (special tokens dropped).
	Decode(ids []int) string
	// NewStepper returns fresh per-sequence decoding state: each Append
	// consumes one token and yields next-token logits.
	NewStepper() sample.Stepper
	// ContextWindow returns the model's total sequence capacity, or 0 when
	// unbounded (n-gram, recurrent and fixed-window models).
	ContextWindow() int
}

// Result is a finished generation.
type Result struct {
	Text   string
	Tokens []int
}

// Gen runs one generation over any LanguageModel with the unified options.
// With the same options and seed it reproduces core.LLM's classic Generate
// exactly.
func Gen(m LanguageModel, prompt string, opts ...sample.Option) (Result, error) {
	return Stream(context.Background(), m, prompt, nil, opts...)
}

// Stream is Gen with per-token delivery: onToken (when non-nil) is invoked
// for every sampled token, in order, with its decoded text piece; the
// concatenation of the pieces equals the final Result.Text. A non-nil error
// from onToken, or ctx cancellation, aborts the generation. Cancellation is
// checked between decode steps; during prompt prefill it is checked once up
// front on the chunked fast path (models whose stepper is a sample.Extender
// ingest the whole prompt in one pass) and between tokens on the per-token
// path — serving deployments needing bounded mid-prefill cancellation
// latency chunk at the scheduling layer (serve.Config.PrefillChunk).
func Stream(ctx context.Context, m LanguageModel, prompt string, onToken func(sample.Token) error, opts ...sample.Option) (Result, error) {
	return StreamOptions(ctx, m, prompt, onToken, sample.BuildOptions(opts...))
}

// StreamOptions is Stream with an already-built options struct — the entry
// point for callers (like the serving loops) that hold request state in
// struct form.
func StreamOptions(ctx context.Context, m LanguageModel, prompt string, onToken func(sample.Token) error, o sample.Options) (Result, error) {
	if o.Strategy == nil {
		o.Strategy = sample.Greedy{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.MaxTokens <= 0 {
		return Result{}, fmt.Errorf("lm: MaxTokens %d must be positive", o.MaxTokens)
	}
	// A windowed model cannot hold even one prompt token plus the budget;
	// reject rather than letting the stepper exhaust its window mid-run.
	if w := m.ContextWindow(); w > 0 && o.MaxTokens >= w {
		return Result{}, fmt.Errorf("lm: MaxTokens %d must be below the model window %d", o.MaxTokens, w)
	}
	ids, err := m.EncodePrompt(prompt, o.MaxTokens)
	if err != nil {
		return Result{}, err
	}
	st := m.NewStepper()
	var logits []float64
	if ex, ok := st.(sample.Extender); ok {
		// Chunked prefill: the whole prompt in one matrix-matrix pass,
		// bitwise identical to the per-token loop below. Cancellation is
		// checked once up front; serving deployments that need bounded
		// cancellation latency chunk at the scheduling layer (see
		// serve.Config.PrefillChunk).
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		logits = ex.Extend(ids)
	} else {
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			logits = st.Append(id)
		}
	}
	stop := -1
	if o.StopAtEOS {
		stop = tokenizer.EOS
	}
	dec := sample.NewDecoder(o.Strategy, stop, o.MaxTokens, mathx.NewRNG(o.Seed+977))
	pd := NewPieceDecoder(m.Decode)
	if o.Speculative != nil {
		if tgt, ok := st.(sample.SpecTarget); ok {
			return streamSpeculative(ctx, m, tgt, dec, pd, ids, logits, onToken, o)
		}
	}
	for !dec.Done() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		tok, done := dec.Next(logits)
		if onToken != nil {
			if err := onToken(pd.Next(tok)); err != nil {
				return Result{}, err
			}
		}
		if !done {
			logits = st.Append(tok)
		}
	}
	return Finish(m, dec.Tokens(), o), nil
}

// Finish applies the options' post-processing (EOS trimming) and decodes
// the final text — shared by this driver and the batched server so both
// produce identical results.
func Finish(m LanguageModel, toks []int, o sample.Options) Result {
	if o.StopAtEOS && len(toks) > 0 && toks[len(toks)-1] == tokenizer.EOS {
		toks = toks[:len(toks)-1]
	}
	return Result{Text: m.Decode(toks), Tokens: toks}
}

// PieceDecoder turns a stream of sampled token ids into incremental text
// pieces whose concatenation equals the decode of the whole sequence. It
// re-decodes the full prefix each step (cheap at interactive scales) and
// diffs against the previous decode, which handles tokenizers that join
// with separators or drop special tokens.
type PieceDecoder struct {
	decode func([]int) string
	toks   []int
	prev   string
	n      int
}

// NewPieceDecoder builds a piece decoder over a Decode function.
func NewPieceDecoder(decode func([]int) string) *PieceDecoder {
	return &PieceDecoder{decode: decode}
}

// Next records one sampled token and returns its stream event.
func (d *PieceDecoder) Next(id int) sample.Token {
	d.toks = append(d.toks, id)
	full := d.decode(d.toks)
	piece := full
	if strings.HasPrefix(full, d.prev) {
		piece = full[len(d.prev):]
	}
	d.prev = full
	ev := sample.Token{Index: d.n, ID: id, Text: piece}
	d.n++
	return ev
}

// Completer adapts a LanguageModel to the eval harness's Generator
// interface: greedy, stop-at-EOS decoding with the harness's fixed seed —
// the same contract core.LLM.Complete implements directly.
type Completer struct{ M LanguageModel }

// Complete implements eval.Generator.
func (c Completer) Complete(prompt string, maxTokens int) string {
	res, err := Gen(c.M, prompt, sample.WithMaxTokens(maxTokens), sample.WithStop())
	if err != nil {
		return ""
	}
	return res.Text
}
