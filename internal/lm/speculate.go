package lm

import (
	"context"

	"repro/internal/mathx"
	"repro/internal/ngram"
	"repro/internal/sample"
	"repro/internal/tokenizer"
)

// This file is the speculative-decoding arm of the unified generation
// driver: the round loop over sample.Speculative for steppers that implement
// block verification (lm.go dispatches here), plus the draft-model side —
// Drafter adapters over the cheap §5 substrates and self-distillation, which
// trains an n-gram proposal on text sampled from the target model itself, so
// speculation needs nothing beyond the checkpoint being served.

// streamSpeculative continues StreamOptions after prefill: the first token
// samples from the prefill logits exactly as the plain loop does, then each
// Round drafts, verifies one chunk, and emits its accepted prefix plus one
// target-sampled token. With a greedy (or ExactMatch) driver the emitted
// stream is bitwise identical to the plain loop's.
func streamSpeculative(ctx context.Context, m LanguageModel, tgt sample.SpecTarget, dec *sample.Decoder, pd *PieceDecoder, ids []int, logits []float64, onToken func(sample.Token) error, o sample.Options) (Result, error) {
	sp := o.Speculative
	deliver := func(tok int) error {
		if onToken == nil {
			return nil
		}
		return onToken(pd.Next(tok))
	}
	tok, done := dec.Next(logits)
	if err := deliver(tok); err != nil {
		return Result{}, err
	}
	// cctx is the full decoded context, ending with the pending token the
	// target has not ingested yet — the shape Round expects.
	cctx := append(append(make([]int, 0, len(ids)+o.MaxTokens), ids...), tok)
	w := m.ContextWindow()
	for !done {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		room := 1 << 30
		if w > 0 {
			room = w - tgt.Len()
		}
		rr := sp.Round(tgt, dec, cctx, room)
		for _, tk := range rr.Emitted {
			if err := deliver(tk); err != nil {
				return Result{}, err
			}
		}
		cctx = append(cctx, rr.Emitted...)
		done = rr.Done
	}
	return Finish(m, dec.Tokens(), o), nil
}

// NGramDrafter adapts a count-based n-gram model to the speculative draft
// contract through the model's bulk DistInto path: longest-observed-order
// backoff with add-k smoothing inside that order, one map probe per order
// rather than per token — the proposal must be much cheaper than one
// verification row to be worth drafting. The returned slice is reused
// across calls.
type NGramDrafter struct {
	Model *ngram.Model
	dist  []float64
}

// NextDist implements sample.Drafter.
func (d *NGramDrafter) NextDist(ctx []int) []float64 {
	if cap(d.dist) < d.Model.Vocab {
		d.dist = make([]float64, d.Model.Vocab)
	}
	d.dist = d.dist[:d.Model.Vocab]
	return d.Model.DistInto(d.dist, ctx)
}

// DistillNGram distills an order-N n-gram draft model from m itself: no
// corpus required beyond the checkpoint (self-speculation). The distillation
// walks a temperature-1 sample stream of the given length — temp-1 sampling
// visits the high-probability contexts decoding will actually reach — and at
// every position records (context → argmax of the teacher's logits) into the
// n-gram counts. Training on the teacher's argmax rather than the sampled
// stream is what makes the drafter useful for exact-match verification: for
// any context the walk covered, the drafter's top token IS the teacher's
// greedy pick, so greedy speculation accepts it. Windowed targets are
// re-armed on a short overlapping tail whenever the context fills. The
// returned model is add-k smoothed so its proposals are everywhere positive.
func DistillNGram(m LanguageModel, order, tokens int, seed uint64) *ngram.Model {
	st := m.NewStepper()
	w := m.ContextWindow()
	rng := mathx.NewRNG(seed)
	strat := sample.Temperature{T: 1}
	stream := make([]int, 0, tokens)
	stream = append(stream, tokenizer.EOS)
	logits := st.Append(tokenizer.EOS)
	vocab := len(logits)
	g := ngram.New(order, vocab)
	g.AddK = 0.05
	n := 1
	for len(stream) < tokens {
		top, _ := mathx.ArgMax(logits)
		g.Observe(stream, top)
		tok := strat.Pick(logits, rng)
		stream = append(stream, tok)
		if len(stream) >= tokens {
			break
		}
		if w > 0 && n+1 >= w {
			// Window nearly full: restart on the last order tokens so the
			// highest-order contexts stay continuous across the seam.
			st = m.NewStepper()
			n = 0
			lo := len(stream) - 1 - order
			if lo < 0 {
				lo = 0
			}
			tail := stream[lo : len(stream)-1]
			for _, id := range tail {
				st.Append(id)
				n++
			}
		}
		logits = st.Append(tok)
		n++
	}
	return g
}

// DistillDrafter is DistillNGram packaged as a ready-to-use Drafter — the
// one-call constructor the CLIs and the serving front end use.
func DistillDrafter(m LanguageModel, order, tokens int, seed uint64) sample.Drafter {
	return &NGramDrafter{Model: DistillNGram(m, order, tokens, seed)}
}
