package lm_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/transformer"
)

// Training dominates test time, so every model is trained once per binary.
var (
	setupOnce sync.Once
	tfModel   *core.LLM
	backends  map[string]lm.LanguageModel
)

func testLines() []string {
	return corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
}

func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		lines := testLines()
		m, _, err := core.Train(lines, core.Config{
			Tokenizer: core.WordTok,
			Model: transformer.Config{
				Dim: 16, Layers: 1, Heads: 2, Window: 16,
				Pos: transformer.PosLearned, Act: nn.GELU,
			},
			Steps: 30, BatchSize: 2, Seed: 7,
		})
		if err != nil {
			panic(err)
		}
		tfModel = m
		backends = map[string]lm.LanguageModel{}
		for _, name := range []string{"ngram", "ffn", "rnn"} {
			b, err := lm.TrainBackend(name, lines, 5)
			if err != nil {
				panic(err)
			}
			backends[name] = b
		}
	})
}

// TestGenMatchesLegacyGenerate pins the core acceptance criterion: the
// unified driver reproduces the positional core.LLM.Generate bitwise for
// every strategy.
func TestGenMatchesLegacyGenerate(t *testing.T) {
	setup(t)
	strategies := []sample.Strategy{
		sample.Greedy{},
		sample.Temperature{T: 0.8},
		sample.TopK{K: 5, T: 0.9},
		sample.TopP{P: 0.9, T: 0.7},
	}
	for i, strat := range strategies {
		seed := uint64(i)
		want, err := tfModel.Generate("the king", 7, strat, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lm.Gen(tfModel, "the king",
			sample.WithMaxTokens(7), sample.WithStrategy(strat), sample.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want {
			t.Errorf("strategy %T: Gen %q != Generate %q", strat, got.Text, want)
		}
		viaMethod, err := tfModel.Gen("the king",
			sample.WithMaxTokens(7), sample.WithStrategy(strat), sample.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if viaMethod.Text != want {
			t.Errorf("strategy %T: LLM.Gen %q != Generate %q", strat, viaMethod.Text, want)
		}
	}
}

// TestStreamPiecesConcatenate asserts the streaming contract: pieces arrive
// in order with consecutive indices and concatenate to exactly the final
// text, for every backend.
func TestStreamPiecesConcatenate(t *testing.T) {
	setup(t)
	models := map[string]lm.LanguageModel{"transformer": tfModel}
	for name, b := range backends {
		models[name] = b
	}
	for name, m := range models {
		var pieces []string
		idx := 0
		res, err := lm.Stream(context.Background(), m, "the king", func(tok sample.Token) error {
			if tok.Index != idx {
				t.Errorf("%s: event index %d, want %d", name, tok.Index, idx)
			}
			idx++
			pieces = append(pieces, tok.Text)
			return nil
		}, sample.WithMaxTokens(6), sample.WithStrategy(sample.Temperature{T: 0.9}), sample.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := strings.Join(pieces, ""); got != res.Text {
			t.Errorf("%s: concatenated pieces %q != final text %q", name, got, res.Text)
		}
		if idx != 6 {
			t.Errorf("%s: %d events, want 6", name, idx)
		}
		// The streamed result equals the non-streamed one.
		plain, err := lm.Gen(m, "the king",
			sample.WithMaxTokens(6), sample.WithStrategy(sample.Temperature{T: 0.9}), sample.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Text != res.Text {
			t.Errorf("%s: streamed %q != plain %q", name, res.Text, plain.Text)
		}
	}
}

func TestStreamCallbackErrorAborts(t *testing.T) {
	setup(t)
	boom := errors.New("boom")
	calls := 0
	_, err := lm.Stream(context.Background(), tfModel, "the king", func(sample.Token) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}, sample.WithMaxTokens(8))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2", calls)
	}
}

func TestStreamCancelledContext(t *testing.T) {
	setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := lm.Stream(ctx, tfModel, "the king", nil, sample.WithMaxTokens(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCompleterMatchesCoreComplete: the generic eval adapter reproduces the
// transformer's own Complete (greedy, stop-at-EOS, fixed seed).
func TestCompleterMatchesCoreComplete(t *testing.T) {
	setup(t)
	for _, prompt := range []string{"the king", "a queen sees"} {
		want := tfModel.Complete(prompt, 8)
		got := lm.Completer{M: tfModel}.Complete(prompt, 8)
		if got != want {
			t.Errorf("prompt %q: Completer %q != Complete %q", prompt, got, want)
		}
	}
}

// TestEvalScoreTaskAcrossBackends runs the unchanged eval harness against
// two non-transformer backends through the LanguageModel interface — the
// acceptance criterion of the API redesign.
func TestEvalScoreTaskAcrossBackends(t *testing.T) {
	setup(t)
	task := eval.CopyTask(8, 2, mathx.NewRNG(1))
	for _, name := range []string{"ngram", "rnn"} {
		acc := eval.ScoreTask(lm.Completer{M: backends[name]}, task,
			eval.PromptConfig{Shots: 1}, mathx.NewRNG(2))
		if acc < 0 || acc > 1 {
			t.Errorf("%s: accuracy %v out of range", name, acc)
		}
		t.Logf("%s copy-task accuracy: %.2f", name, acc)
	}
}

// TestBackendsGenerate: every adapted substrate runs the full option set.
func TestBackendsGenerate(t *testing.T) {
	setup(t)
	for name, b := range backends {
		res, err := lm.Gen(b, "the king",
			sample.WithMaxTokens(5), sample.WithStrategy(sample.TopK{K: 5, T: 1}), sample.WithSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tokens) != 5 {
			t.Errorf("%s: %d tokens, want 5", name, len(res.Tokens))
		}
		// Determinism: same options, same output.
		again, err := lm.Gen(b, "the king",
			sample.WithMaxTokens(5), sample.WithStrategy(sample.TopK{K: 5, T: 1}), sample.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if again.Text != res.Text {
			t.Errorf("%s: nondeterministic: %q != %q", name, again.Text, res.Text)
		}
	}
}

func TestTrainBackendErrors(t *testing.T) {
	if _, err := lm.TrainBackend("nope", testLines(), 1); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := lm.TrainBackend("ngram", nil, 1); err == nil {
		t.Error("empty corpus accepted")
	}
}

// TestOverWindowBudgetErrors: a windowed model rejects budgets it cannot
// decode (instead of panicking mid-generation in the stepper).
func TestOverWindowBudgetErrors(t *testing.T) {
	setup(t)
	w := tfModel.ContextWindow()
	if _, err := lm.Gen(tfModel, "the king", sample.WithMaxTokens(w)); err == nil {
		t.Errorf("MaxTokens = window %d accepted", w)
	}
	if _, err := lm.Gen(tfModel, "the king", sample.WithMaxTokens(w+5)); err == nil {
		t.Errorf("MaxTokens > window accepted")
	}
	// Unbounded backends accept large budgets.
	if _, err := lm.Gen(backends["ngram"], "the king", sample.WithMaxTokens(w+5)); err != nil {
		t.Errorf("ngram rejected MaxTokens %d: %v", w+5, err)
	}
}

func TestEmptyPromptErrors(t *testing.T) {
	setup(t)
	for name, b := range backends {
		if _, err := lm.Gen(b, "", sample.WithMaxTokens(3)); err == nil {
			t.Errorf("%s: empty prompt accepted", name)
		}
	}
}

func TestPieceDecoder(t *testing.T) {
	// A decode that joins with spaces and drops id 0, like the word
	// tokenizer's handling of specials.
	words := []string{"", "alpha", "beta", "gamma"}
	decode := func(ids []int) string {
		var parts []string
		for _, id := range ids {
			if id == 0 {
				continue
			}
			parts = append(parts, words[id])
		}
		return strings.Join(parts, " ")
	}
	pd := lm.NewPieceDecoder(decode)
	var got []string
	for _, id := range []int{1, 0, 2, 3} {
		got = append(got, pd.Next(id).Text)
	}
	if joined := strings.Join(got, ""); joined != "alpha beta gamma" {
		t.Errorf("pieces %q join to %q", got, joined)
	}
	if got[1] != "" {
		t.Errorf("dropped token piece = %q, want empty", got[1])
	}
}

// TestPromptLongerThanWindowKeepsLast pins the over-window prompt policy
// end to end: EncodePrompt keeps the last Window−budget tokens, and the
// generation drivers (whose prefill now runs through the chunked Extend
// path) produce exactly the output of the truncated prompt.
func TestPromptLongerThanWindowKeepsLast(t *testing.T) {
	setup(t)
	long := strings.TrimSpace(strings.Repeat("the king sees the queen ", 6)) // 30 words ≫ window 16
	const budget = 4
	room := tfModel.ContextWindow() - budget

	ids, err := tfModel.EncodePrompt(long, budget)
	if err != nil {
		t.Fatal(err)
	}
	full := tfModel.Tok.Encode(long)
	if len(ids) != room {
		t.Fatalf("EncodePrompt kept %d tokens, want %d", len(ids), room)
	}
	for i, id := range ids {
		if want := full[len(full)-room+i]; id != want {
			t.Fatalf("EncodePrompt[%d] = %d, want keep-last suffix token %d", i, id, want)
		}
	}

	got, err := lm.Gen(tfModel, long, sample.WithMaxTokens(budget), sample.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// The same generation from the pre-truncated prompt text.
	want, err := lm.Gen(tfModel, tfModel.Decode(ids), sample.WithMaxTokens(budget), sample.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Fatalf("overlong prompt generation %q != truncated prompt generation %q", got.Text, want.Text)
	}
}
