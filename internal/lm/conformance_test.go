package lm_test

import (
	"math"
	"testing"

	"repro/internal/lm"
	"repro/internal/sample"
)

// This file is the shared LanguageModel conformance suite: one table-driven
// pass over every backend behind the interface — the count-based n-gram, the
// fixed-window FFN-LM, the recurrent LSTM, and the transformer pipeline —
// checking the contract every generation entry point depends on:
// encode→step→decode round-trips, deterministic re-runs, logit shape and
// vocabulary invariants, the ContextWindow budget contract, and (where
// implemented) the chunked-prefill and speculative-verification fast paths
// against the one-token-at-a-time reference.

// conformanceModels returns every backend under test, keyed by name.
func conformanceModels(t *testing.T) map[string]lm.LanguageModel {
	t.Helper()
	setup(t)
	models := map[string]lm.LanguageModel{"transformer": tfModel}
	for name, b := range backends {
		models[name] = b
	}
	return models
}

func bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestConformance runs the full contract check per backend as subtests, so a
// violation names the backend and the clause it broke.
func TestConformance(t *testing.T) {
	const prompt = "the king sees the queen"
	const budget = 5
	for name, m := range conformanceModels(t) {
		t.Run(name, func(t *testing.T) {
			// --- encode → decode round-trip ---
			ids, err := m.EncodePrompt(prompt, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) == 0 {
				t.Fatal("EncodePrompt returned no tokens without error")
			}
			text := m.Decode(ids)
			if text == "" {
				t.Fatal("Decode of a non-empty encoding is empty")
			}
			again, err := m.EncodePrompt(text, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != len(ids) {
				t.Fatalf("re-encoding the decode gives %d tokens, want %d", len(again), len(ids))
			}
			for i := range ids {
				if again[i] != ids[i] {
					t.Fatalf("encode/decode round-trip diverges at %d: %d != %d", i, again[i], ids[i])
				}
			}

			// --- window/budget contract ---
			if w := m.ContextWindow(); w > 0 {
				if len(ids)+budget > w {
					t.Fatalf("EncodePrompt kept %d tokens for budget %d in window %d", len(ids), budget, w)
				}
			}

			// --- logit shape, vocabulary, and finiteness invariants ---
			st := m.NewStepper()
			var logits []float64
			vocab := 0
			for pos, id := range ids {
				logits = st.Append(id)
				if vocab == 0 {
					vocab = len(logits)
					if vocab < 2 {
						t.Fatalf("vocabulary size %d", vocab)
					}
				}
				if len(logits) != vocab {
					t.Fatalf("position %d: logit length %d, want %d", pos, len(logits), vocab)
				}
				for j, v := range logits {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("position %d: logits[%d] = %v", pos, j, v)
					}
				}
				if id < 0 || id >= vocab {
					t.Fatalf("encoded id %d outside vocabulary %d", id, vocab)
				}
			}

			// --- deterministic re-runs: a fresh stepper reproduces the
			// logits bitwise, position by position ---
			st2 := m.NewStepper()
			for pos, id := range ids {
				l2 := st2.Append(id)
				if pos == len(ids)-1 && !bitsEq(l2, logits) {
					t.Fatalf("fresh stepper diverges at final position %d", pos)
				}
			}

			// --- chunked prefill fast path (when implemented) matches the
			// per-token reference bitwise ---
			if ex, ok := m.NewStepper().(sample.Extender); ok {
				if got := ex.Extend(ids); !bitsEq(got, logits) {
					t.Fatal("Extender.Extend diverges from per-token Append")
				}
			}

			// --- speculative verification surface (when implemented):
			// per-position logits match Append, and Rewind+re-ingest is
			// bitwise transparent ---
			if tgt, ok := m.NewStepper().(sample.SpecTarget); ok {
				rows := tgt.ExtendAll(ids)
				if len(rows) != len(ids) {
					t.Fatalf("ExtendAll returned %d rows for %d ids", len(rows), len(ids))
				}
				if !bitsEq(rows[len(rows)-1], logits) {
					t.Fatal("ExtendAll final row diverges from per-token Append")
				}
				if got := tgt.Len(); got != len(ids) {
					t.Fatalf("Len after ExtendAll = %d, want %d", got, len(ids))
				}
				tgt.Rewind(2)
				if got := tgt.Len(); got != len(ids)-2 {
					t.Fatalf("Len after Rewind(2) = %d, want %d", got, len(ids)-2)
				}
				re := tgt.ExtendAll(ids[len(ids)-2:])
				if !bitsEq(re[len(re)-1], logits) {
					t.Fatal("re-ingesting a rewound suffix diverges from the original logits")
				}
			}

			// --- generation determinism across the strategy set ---
			for _, strat := range []sample.Strategy{
				sample.Greedy{},
				sample.Temperature{T: 0.9},
				sample.TopK{K: 4, T: 1},
				sample.TopP{P: 0.9, T: 0.8},
			} {
				opts := []sample.Option{
					sample.WithMaxTokens(budget), sample.WithStrategy(strat), sample.WithSeed(9),
				}
				a, err := lm.Gen(m, prompt, opts...)
				if err != nil {
					t.Fatalf("%T: %v", strat, err)
				}
				if len(a.Tokens) == 0 || len(a.Tokens) > budget {
					t.Fatalf("%T: %d tokens for budget %d", strat, len(a.Tokens), budget)
				}
				for _, tok := range a.Tokens {
					if tok < 0 || tok >= vocab {
						t.Fatalf("%T: sampled id %d outside vocabulary %d", strat, tok, vocab)
					}
				}
				b, err := lm.Gen(m, prompt, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if a.Text != b.Text {
					t.Fatalf("%T: nondeterministic re-run: %q != %q", strat, a.Text, b.Text)
				}
			}
		})
	}
}

// TestConformanceSpeculative checks the speculative option across every
// backend: targets that implement the verification surface produce bitwise
// the plain greedy output; backends that don't silently ignore the option
// (same output, no error) — so callers can set it unconditionally.
func TestConformanceSpeculative(t *testing.T) {
	for name, m := range conformanceModels(t) {
		t.Run(name, func(t *testing.T) {
			drafter := lm.DistillDrafter(m, 2, 150, 4)
			plain, err := lm.Gen(m, "the king", sample.WithMaxTokens(6), sample.WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			sp := &sample.Speculative{K: 3, Drafter: drafter}
			spec, err := lm.Gen(m, "the king",
				sample.WithMaxTokens(6), sample.WithSeed(2), sample.WithSpeculative(sp))
			if err != nil {
				t.Fatal(err)
			}
			if spec.Text != plain.Text {
				t.Fatalf("speculative greedy %q != plain %q", spec.Text, plain.Text)
			}
			if _, ok := m.NewStepper().(sample.SpecTarget); ok && sp.Stats.Rounds == 0 {
				t.Fatal("speculative target ran no rounds")
			}
		})
	}
}
