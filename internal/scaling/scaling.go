// Package scaling implements the scaling-law experiments of the paper's
// §3-§4: parameter/data sweeps over transformer language models trained on
// a synthetic corpus, power-law fits of held-out loss against model size,
// dataset size and compute (Figure 2), the Eq. 4 joint ansatz, and the
// Table 1 inventory of published LLM sizes checked against the §6
// parameter-count rule 12·D·p².
package scaling

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/transformer"
)

// ---- Table 1 ----

// ModelRow is one row of the paper's Table 1 plus the published
// architecture hyperparameters needed to apply the 12·D·p² estimate.
type ModelRow struct {
	Year            int
	Name            string
	PublishedParams float64 // as quoted in Table 1
	DatasetTokens   float64 // as quoted in Table 1 (0 = undisclosed)
	Blocks          int     // published depth (transformer blocks)
	Dim             int     // published embedding dimension p
}

// Table1 returns the paper's Table 1 with the public architecture shapes.
// GPT-4's row is included with undisclosed architecture (Blocks = Dim = 0),
// as in the paper ("1.4T (?)").
func Table1() []ModelRow {
	return []ModelRow{
		{Year: 2018, Name: "GPT", PublishedParams: 110e6, DatasetTokens: 1e9, Blocks: 12, Dim: 768},
		{Year: 2018, Name: "BERT", PublishedParams: 340e6, DatasetTokens: 3e9, Blocks: 24, Dim: 1024},
		{Year: 2019, Name: "GPT-2", PublishedParams: 1.5e9, DatasetTokens: 10e9, Blocks: 48, Dim: 1600},
		{Year: 2020, Name: "GPT-3", PublishedParams: 175e9, DatasetTokens: 500e9, Blocks: 96, Dim: 12288},
		{Year: 2022, Name: "PaLM", PublishedParams: 540e9, DatasetTokens: 780e9, Blocks: 118, Dim: 18432},
		{Year: 2023, Name: "GPT-4", PublishedParams: 1.4e12, DatasetTokens: 0, Blocks: 0, Dim: 0},
	}
}

// Estimate returns the 12·D·p² parameter estimate for a row, or 0 when the
// architecture is undisclosed.
func (r ModelRow) Estimate() float64 {
	if r.Blocks == 0 || r.Dim == 0 {
		return 0
	}
	return float64(transformer.GPT3Estimate(r.Blocks, r.Dim))
}

// FormatTable1 renders the table with published vs estimated parameters.
func FormatTable1(rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %14s %14s %14s\n", "Year", "Model", "Published", "12*D*p^2", "Tokens")
	for _, r := range rows {
		est := "n/a"
		if e := r.Estimate(); e > 0 {
			est = human(e)
		}
		toks := "?"
		if r.DatasetTokens > 0 {
			toks = human(r.DatasetTokens)
		}
		fmt.Fprintf(&b, "%-5d %-7s %14s %14s %14s\n", r.Year, r.Name, human(r.PublishedParams), est, toks)
	}
	return b.String()
}

func human(x float64) string {
	switch {
	case x >= 1e12:
		return fmt.Sprintf("%.1fT", x/1e12)
	case x >= 1e9:
		return fmt.Sprintf("%.1fB", x/1e9)
	case x >= 1e6:
		return fmt.Sprintf("%.0fM", x/1e6)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}

// ---- Sweeps (Figure 2) ----

// Point is one sweep observation.
type Point struct {
	Params int     // trainable parameters P
	Tokens int     // training tokens D
	FLOPs  float64 // ≈ 6·P·D, the paper's compute axis
	Loss   float64 // held-out cross entropy (Eq. 3)
}

// SweepConfig controls a scaling sweep on the PCFG corpus.
type SweepConfig struct {
	Dims       []int // model widths to sweep (Layers/Heads fixed below)
	DataTokens []int // training-set sizes in tokens
	Layers     int
	Heads      int
	Window     int
	Steps      int // optimizer steps per cell
	BatchSize  int
	LR         float64
	Seed       uint64
}

// DefaultSweep returns a laptop-scale sweep adequate to expose the power-
// law trend (the paper's runs span decades; ours spans what a test suite
// affords — the shape, not the absolute exponents, is the reproduction
// target).
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Dims:       []int{8, 16, 32},
		DataTokens: []int{512, 2048, 8192},
		Layers:     1, Heads: 2, Window: 16,
		Steps: 220, BatchSize: 4, LR: 0.004, Seed: 11,
	}
}

// RunSweep trains one model per (dim, data) cell and measures held-out
// loss, returning all observations.
func RunSweep(cfg SweepConfig) ([]Point, error) {
	rng := mathx.NewRNG(cfg.Seed)
	g := grammar.TinyEnglish()
	// One long shared stream; each cell trains on its prefix. Held-out data
	// is disjoint by construction.
	vocabLines := corpus.PCFGText(g, 4000, 10, rng)
	tok := newWordEncoder(vocabLines)
	stream := corpus.Concat(vocabLines, tok.encode, tok.sep)
	maxData := 0
	for _, d := range cfg.DataTokens {
		if d > maxData {
			maxData = d
		}
	}
	if maxData+4*cfg.Window >= len(stream) {
		return nil, fmt.Errorf("scaling: stream too short (%d) for data size %d", len(stream), maxData)
	}
	heldOut := corpus.MakeWindows(stream[maxData:maxData+40*cfg.Window], cfg.Window)
	var points []Point
	for _, dim := range cfg.Dims {
		for _, data := range cfg.DataTokens {
			mcfg := transformer.Config{
				Vocab: tok.vocab, Dim: dim, Layers: cfg.Layers, Heads: cfg.Heads,
				Window: cfg.Window, Pos: transformer.PosLearned, Act: nn.GELU,
			}
			model := transformer.MustNew(mcfg, mathx.NewRNG(cfg.Seed+uint64(dim*1000+data)))
			windows := corpus.MakeWindows(stream[:data], cfg.Window)
			batches := make([]train.Batch, len(windows))
			for i, w := range windows {
				batches[i] = train.Batch{Input: w.Input, Target: w.Target}
			}
			_, err := train.Run(model, batches, train.Config{
				Steps: cfg.Steps, BatchSize: cfg.BatchSize,
				Schedule:  train.WarmupCosine(cfg.LR, cfg.LR/10, cfg.Steps/10, cfg.Steps),
				Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			var evalBatches []train.Batch
			for _, w := range heldOut {
				evalBatches = append(evalBatches, train.Batch{Input: w.Input, Target: w.Target})
			}
			loss := train.MeanLoss(model, evalBatches)
			p := model.NumParameters()
			// The paper's compute axis: training FLOPs ≈ 6 · P · (tokens
			// processed), where tokens processed = steps × batch × window.
			processed := float64(cfg.Steps * cfg.BatchSize * cfg.Window)
			points = append(points, Point{
				Params: p, Tokens: data,
				FLOPs: 6 * float64(p) * processed,
				Loss:  loss,
			})
		}
	}
	return points, nil
}

// wordEncoder is a minimal closed-vocabulary word tokenizer for the sweep.
type wordEncoder struct {
	idOf  map[string]int
	vocab int
	sep   int
}

func newWordEncoder(lines []string) *wordEncoder {
	e := &wordEncoder{idOf: map[string]int{}}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			if _, ok := e.idOf[w]; !ok {
				e.idOf[w] = len(e.idOf)
			}
		}
	}
	e.sep = len(e.idOf) // end-of-sentence token
	e.vocab = len(e.idOf) + 1
	return e
}

func (e *wordEncoder) encode(line string) []int {
	var ids []int
	for _, w := range strings.Fields(line) {
		ids = append(ids, e.idOf[w])
	}
	return ids
}

// ---- Fits ----

// FitLossVsParams fits L ∝ P^α using, for each distinct model size, the
// observation with the largest data budget (the paper's "performance limited
// by model size" regime).
func FitLossVsParams(points []Point) mathx.PowerLawFit {
	best := map[int]Point{}
	for _, p := range points {
		if cur, ok := best[p.Params]; !ok || p.Tokens > cur.Tokens {
			best[p.Params] = p
		}
	}
	var xs, ys []float64
	for _, p := range best {
		xs = append(xs, float64(p.Params))
		ys = append(ys, p.Loss)
	}
	return mathx.FitPowerLaw(xs, ys)
}

// FitLossVsData fits L ∝ D^α using, for each data size, the largest model.
func FitLossVsData(points []Point) mathx.PowerLawFit {
	best := map[int]Point{}
	for _, p := range points {
		if cur, ok := best[p.Tokens]; !ok || p.Params > cur.Params {
			best[p.Tokens] = p
		}
	}
	var xs, ys []float64
	for _, p := range best {
		xs = append(xs, float64(p.Tokens))
		ys = append(ys, p.Loss)
	}
	return mathx.FitPowerLaw(xs, ys)
}

// FitJointAnsatz fits the Eq. 4 surface to all points.
func FitJointAnsatz(points []Point) mathx.AnsatzFit {
	var ps, ds, ls []float64
	for _, p := range points {
		ps = append(ps, float64(p.Params))
		ds = append(ds, float64(p.Tokens))
		ls = append(ls, p.Loss)
	}
	return mathx.FitAnsatz(ps, ds, ls)
}

// FormatPoints renders sweep observations as the Figure 2 data series.
func FormatPoints(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %14s %10s\n", "Params", "Tokens", "FLOPs", "TestLoss")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %10d %14.3g %10.4f\n", p.Params, p.Tokens, p.FLOPs, p.Loss)
	}
	return b.String()
}
