package scaling

import (
	"math"
	"strings"
	"testing"
)

// TestTable1 is experiment E1: the 12·D·p² rule reproduces the published
// parameter counts of Table 1 within a factor ~1.5 for every model with a
// public architecture.
func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	for _, r := range rows {
		est := r.Estimate()
		if r.Blocks == 0 {
			if est != 0 {
				t.Errorf("%s: estimate for undisclosed architecture", r.Name)
			}
			continue
		}
		ratio := est / r.PublishedParams
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("%s: estimate %g vs published %g (ratio %.2f)",
				r.Name, est, r.PublishedParams, ratio)
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	rows := Table1()
	for i := 1; i < len(rows); i++ {
		if rows[i].Year < rows[i-1].Year {
			t.Error("rows out of chronological order")
		}
		if rows[i].PublishedParams < rows[i-1].PublishedParams {
			t.Error("parameter counts not monotone — Table 1 growth story broken")
		}
	}
}

func TestFormatTable1(t *testing.T) {
	s := FormatTable1(Table1())
	for _, want := range []string{"GPT-3", "175.0B", "PaLM", "GPT-4", "?"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestHuman(t *testing.T) {
	cases := map[float64]string{110e6: "110M", 1.5e9: "1.5B", 1.4e12: "1.4T", 500: "500"}
	for x, want := range cases {
		if got := human(x); got != want {
			t.Errorf("human(%g) = %q, want %q", x, got, want)
		}
	}
}

func TestWordEncoderRoundSanity(t *testing.T) {
	e := newWordEncoder([]string{"a b", "b c"})
	if e.vocab != 4 { // a, b, c + separator
		t.Fatalf("vocab = %d", e.vocab)
	}
	ids := e.encode("a c")
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("encode = %v", ids)
	}
}

// TestPowerLawEmerges is experiment E2 at test scale: across the sweep,
// larger models and more data both reduce held-out loss, and the log-log
// fits have negative exponents.
func TestPowerLawEmerges(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is a training workload")
	}
	cfg := DefaultSweep()
	cfg.Steps = 150 // trimmed for test time; the bench runs the full sweep
	points, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Dims)*len(cfg.DataTokens) {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if math.IsNaN(p.Loss) || p.Loss <= 0 {
			t.Fatalf("bad loss in %+v", p)
		}
	}
	fp := FitLossVsParams(points)
	fd := FitLossVsData(points)
	if fp.Alpha >= 0 {
		t.Errorf("loss does not fall with model size: alpha_P = %v", fp.Alpha)
	}
	if fd.Alpha >= 0 {
		t.Errorf("loss does not fall with data: alpha_D = %v", fd.Alpha)
	}
	joint := FitJointAnsatz(points)
	if math.IsInf(joint.RMSE, 1) || math.IsNaN(joint.RMSE) {
		t.Errorf("ansatz fit failed: %+v", joint)
	}
	t.Logf("alpha_P=%.3f (R2 %.2f) alpha_D=%.3f (R2 %.2f) ansatz RMSE %.3f",
		fp.Alpha, fp.R2, fd.Alpha, fd.R2, joint.RMSE)
}

func TestRunSweepValidatesStream(t *testing.T) {
	cfg := DefaultSweep()
	cfg.DataTokens = []int{1 << 30} // absurd
	if _, err := RunSweep(cfg); err == nil {
		t.Error("oversized data budget accepted")
	}
}

func TestFormatPoints(t *testing.T) {
	s := FormatPoints([]Point{{Params: 100, Tokens: 200, FLOPs: 3e5, Loss: 1.25}})
	if !strings.Contains(s, "100") || !strings.Contains(s, "1.25") {
		t.Errorf("format = %q", s)
	}
}
