package transformer

import (
	"fmt"

	"repro/internal/tensor"
)

// This file is the transformer side of speculative decoding: a verification
// pass that scores a whole block of drafted tokens in one chunked
// matrix-matrix sweep (ExtendAll / PrefillAll), and cache truncation
// (Rewind) that un-ingests the drafted suffix a verifier rejects.
//
// Rewind is a plain length decrement — no KV rows or interleaved key-pack
// lanes are cleared — and is still bitwise-exact, because stale state beyond
// the valid length is provably never read before being overwritten:
//
//   - Decode (Append/Step) at position pos scores keys [0, pos] only. The
//     packed score path reads full sixteen-row blocks up to
//     nb = (pos+1)/16 — every lane of those blocks holds a position ≤ pos —
//     and finishes the tail from the position-major key rows, also bounded
//     by pos. A stale lane lives strictly beyond pos and is skipped.
//   - A chunk pass (Extend/Prefill/ExtendAll) starting at position start
//     first rewrites rows [start, start+rows) of the key/value caches and
//     their pack lanes, then scores causally with full-block reads capped at
//     nFull = (start+rows)/16 — again never past the chunk's own frontier.
//   - Writes are position-addressed (kc.Row(pos), lane pos&15 of block
//     pos>>4), so re-ingesting position p after a rewind lands exactly where
//     the stale value sat, replacing it before any read.
//
// The rewind property test in rewind_test.go checks this bit for bit against
// predictors rebuilt from scratch, across window-boundary crossings, sparse
// and dense attention, and random Append/Extend/ExtendAll/Rewind schedules.

// Rewind discards the last n cached positions, as if the tokens that
// produced them had never been fed. It panics when n is negative or exceeds
// the cached length. The next Append/Extend continues from the truncated
// position with logits bitwise identical to a predictor that never saw the
// discarded tokens.
func (p *Predictor) Rewind(n int) {
	if n < 0 || n > p.n {
		panic(fmt.Sprintf("transformer: Rewind(%d) outside cached length %d", n, p.n))
	}
	p.n -= n
}

// ExtendAll feeds a chunk of tokens like Extend but returns next-token
// logits for every chunk position, not just the last: row r is bitwise
// identical to what Append(ids[r]) would have returned. This is the
// speculative-decoding verification pass — one blocked sweep scores a whole
// draft block, and the rows tell the acceptance loop where the target model
// first disagrees. Keep-last window truncation matches Extend; it returns
// nil when no tokens remain to ingest.
//
// The returned rows are views into the predictor's reusable scratch, valid
// until the next ExtendAll call.
func (p *Predictor) ExtendAll(ids []int) [][]float64 {
	ids = truncTail(ids, p.m.Cfg.Window-p.n)
	if len(ids) == 0 {
		return nil
	}
	rows := len(ids)
	logits := tensor.Ensure(&p.allLogits, rows, p.m.Cfg.Vocab)
	prefillRunAll(p.m, p.c, p.keys, p.vals, p.kpacks, p.n, ids, logits)
	p.n += rows
	if cap(p.allOut) < rows {
		p.allOut = make([][]float64, rows)
	}
	out := p.allOut[:rows]
	for r := range out {
		out[r] = logits.Row(r)
	}
	return out
}

// Rewind discards the last n cached positions of batch sequence id — the
// per-sequence form of Predictor.Rewind, with the same staleness argument
// (each sequence owns its KV cache and key packs; the shared step scratch
// holds no per-position state).
func (bp *BatchedPredictor) Rewind(id, n int) {
	s := bp.seqs[id]
	if s == nil {
		panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
	}
	if n < 0 || n > s.n {
		panic(fmt.Sprintf("transformer: Rewind(%d) outside cached length %d", n, s.n))
	}
	s.n -= n
}

// PrefillAll feeds a chunk to one batch sequence and returns per-position
// logits, the batched counterpart of Predictor.ExtendAll: row r is bitwise
// identical to stepping the sequence alone through Step with ids[r].
// Sequences not named are untouched, so the serving loop can run one
// request's speculative verification pass between batched decode steps.
//
// The returned rows are views into shared scratch, valid until the next
// PrefillAll call.
func (bp *BatchedPredictor) PrefillAll(id int, ids []int) [][]float64 {
	s := bp.seqs[id]
	if s == nil {
		panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
	}
	ids = truncTail(ids, bp.m.Cfg.Window-s.n)
	if len(ids) == 0 {
		return nil
	}
	rows := len(ids)
	logits := tensor.Ensure(&bp.pfAll, rows, bp.m.Cfg.Vocab)
	prefillRunAll(bp.m, bp.c, s.keys, s.vals, s.kpacks, s.n, ids, logits)
	s.n += rows
	if cap(bp.pfAllOut) < rows {
		bp.pfAllOut = make([][]float64, rows)
	}
	out := bp.pfAllOut[:rows]
	for r := range out {
		out[r] = logits.Row(r)
	}
	return out
}
