// Package transformer implements the paper's §6 "Recipe for an LLM": a
// GPT-style decoder-only transformer with multi-head causal self-attention
// (Eq. 13-14, with the bilinear form B factored into key and query
// matrices), position-wise FFN blocks (Eq. 11), residual connections, layer
// normalization, and sinusoidal (Eq. 15) or learned positional embeddings.
//
// The model exposes three views:
//   - Forward: autograd graph for training (backprop per Eq. 16),
//   - Trace: activation and attention-weight capture for probing (§7),
//   - Predictor with KV cache: fast inference without graph construction.
package transformer

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// PosKind selects the positional-embedding scheme.
type PosKind int

// Positional embedding variants (the ablation axis called out in DESIGN.md).
const (
	PosSinusoidal PosKind = iota // fixed sin/cos of Eq. 15
	PosLearned                   // trainable position table
	PosNone                      // no positional information (permutation-invariant)
)

// Config holds the hyperparameters of §6: embedding dimension p, hidden
// dimension ph, window length L, depth D and head count H.
type Config struct {
	Vocab  int
	Dim    int // p: embedding dimension; must be divisible by Heads
	Hidden int // ph: FFN hidden width; 0 means 4*Dim (the GPT-3 choice)
	Layers int // D: number of blocks (each block = one attention + one FFN layer)
	Heads  int // H: attention heads, head width q = p/H
	Window int // L: maximum context length

	Pos          PosKind
	Act          nn.Activation
	PostNorm     bool // use post-LN residuals instead of the default pre-LN
	SparseStride int  // 0 = dense causal attention; s>0 = strided sparse (§6)
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 4 * c.Dim
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Vocab <= 0 || c.Dim <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.Window <= 0 {
		return fmt.Errorf("transformer: non-positive hyperparameter in %+v", c)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("transformer: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// ---- Attention ----

// head is one attention head: the bilinear form B of Eq. 14 factored as
// Wq·Wkᵀ (restricting its rank to q = p/H), plus the value projection.
type head struct {
	Wq, Wk, Wv *nn.Linear // Dim → headDim, no bias
}

// Attention is the multi-head causal self-attention layer of Eq. 13-14.
type Attention struct {
	heads []*head
	Wo    *nn.Linear // Dim → Dim output projection (the linear map W of Eq. 13)
}

func newAttention(dim, numHeads int, rng *mathx.RNG) *Attention {
	hd := dim / numHeads
	a := &Attention{Wo: nn.NewLinear(dim, dim, false, rng)}
	for i := 0; i < numHeads; i++ {
		a.heads = append(a.heads, &head{
			Wq: nn.NewLinear(dim, hd, false, rng),
			Wk: nn.NewLinear(dim, hd, false, rng),
			Wv: nn.NewLinear(dim, hd, false, rng),
		})
	}
	return a
}

// Parameters implements nn.Module.
func (a *Attention) Parameters() []*autograd.Node {
	ps := a.Wo.Parameters()
	for _, h := range a.heads {
		ps = append(ps, h.Wq.Parameters()...)
		ps = append(ps, h.Wk.Parameters()...)
		ps = append(ps, h.Wv.Parameters()...)
	}
	return ps
}

// NumHeads returns the head count.
func (a *Attention) NumHeads() int { return len(a.heads) }

// HeadValueWeights exposes the value-projection weight tensor of head h for
// the ablation experiments of §7 (zeroing it removes the head's output
// while leaving its attention pattern intact).
func (a *Attention) HeadValueWeights(h int) *tensor.Tensor {
	return a.heads[h].Wv.W.Value
}

// forward computes masked multi-head attention over the L×Dim input. When
// trace is non-nil, the per-head attention weight matrices are recorded.
func (a *Attention) forward(x *autograd.Node, mask *tensor.Tensor, trace *LayerTrace) *autograd.Node {
	headDim := a.heads[0].Wq.W.Value.Shape[1]
	scale := 1 / math.Sqrt(float64(headDim))
	outs := make([]*autograd.Node, len(a.heads))
	for i, h := range a.heads {
		q := h.Wq.Forward(x)
		k := h.Wk.Forward(x)
		v := h.Wv.Forward(x)
		// c_{ij} ∝ exp(u_i · B · u_j): scores = (Q Kᵀ)/√q, causally masked,
		// then the Boltzmann weights of Eq. 14 via row softmax.
		scores := autograd.Scale(autograd.MatMul(q, autograd.Transpose(k)), scale)
		weights := autograd.SoftmaxRows(autograd.AddMask(scores, mask))
		if trace != nil {
			trace.Attention = append(trace.Attention, weights.Value.Clone())
		}
		// v_i = Σ_j c_{ij} u_j (Eq. 13), per head.
		outs[i] = autograd.MatMul(weights, v)
	}
	// Concatenate head outputs back to dimension p and apply W.
	return a.Wo.Forward(autograd.ConcatCols(outs...))
}

// ---- Block ----

// Block is one transformer block: attention and FFN sublayers, each wrapped
// in a residual connection with layer normalization.
type Block struct {
	Attn *Attention
	FFN  *nn.FFN
	LN1  *nn.LayerNorm
	LN2  *nn.LayerNorm

	postNorm bool
}

func newBlock(cfg Config, rng *mathx.RNG) *Block {
	return &Block{
		Attn:     newAttention(cfg.Dim, cfg.Heads, rng),
		FFN:      nn.NewFFN(cfg.Dim, cfg.Hidden, cfg.Act, rng),
		LN1:      nn.NewLayerNorm(cfg.Dim),
		LN2:      nn.NewLayerNorm(cfg.Dim),
		postNorm: cfg.PostNorm,
	}
}

// Parameters implements nn.Module.
func (b *Block) Parameters() []*autograd.Node {
	ps := b.Attn.Parameters()
	ps = append(ps, b.FFN.Parameters()...)
	ps = append(ps, b.LN1.Parameters()...)
	ps = append(ps, b.LN2.Parameters()...)
	return ps
}

func (b *Block) forward(x *autograd.Node, mask *tensor.Tensor, trace *LayerTrace) *autograd.Node {
	if b.postNorm {
		// Original-paper ordering: sublayer then norm.
		x = b.LN1.Forward(autograd.Add(x, b.Attn.forward(x, mask, trace)))
		x = b.LN2.Forward(autograd.Add(x, b.FFN.Forward(x)))
		return x
	}
	// Pre-LN (GPT-2/3 style): norm then sublayer; more stable to train.
	x = autograd.Add(x, b.Attn.forward(b.LN1.Forward(x), mask, trace))
	x = autograd.Add(x, b.FFN.Forward(b.LN2.Forward(x)))
	return x
}

// ---- Model ----

// Model is the decoder-only transformer language model.
type Model struct {
	Cfg Config

	TokEmb    *nn.Embedding
	PosTable  *autograd.Node // learned positions (PosLearned) or nil
	sinTable  *tensor.Tensor // fixed sinusoidal table (PosSinusoidal) or nil
	Blocks    []*Block
	FinalNorm *nn.LayerNorm
	Output    *nn.Linear // Dim → Vocab

	masks map[int]*tensor.Tensor // cached causal masks per length

	// Inference-compiled weight snapshot, built lazily by the predictors
	// and shared between them; train.Run invalidates it after mutating the
	// weights (see InvalidateCompiled).
	compiledMu    sync.Mutex
	compiledCache *compiledModel

	// Chunk-prefill scratch, pooled per model so each serving request's
	// fresh predictor reuses a previous request's buffers instead of
	// allocating them on its first Extend/Prefill.
	pfPool sync.Pool
}

// New constructs a model with §6 initialization (weights ~ N(0, 1/√fan-in)).
func New(cfg Config, rng *mathx.RNG) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:       cfg,
		TokEmb:    nn.NewEmbedding(cfg.Vocab, cfg.Dim, rng),
		FinalNorm: nn.NewLayerNorm(cfg.Dim),
		Output:    nn.NewLinear(cfg.Dim, cfg.Vocab, true, rng),
		masks:     map[int]*tensor.Tensor{},
	}
	switch cfg.Pos {
	case PosLearned:
		m.PosTable = autograd.Param(tensor.New(cfg.Window, cfg.Dim).RandNorm(rng, 0.02))
	case PosSinusoidal:
		m.sinTable = SinusoidalTable(cfg.Window, cfg.Dim)
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, newBlock(cfg, rng))
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, rng *mathx.RNG) *Model {
	m, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// SinusoidalTable builds the Eq. 15 positional encoding table (maxLen×dim):
// pairs (cos, sin) at geometrically spaced frequencies.
func SinusoidalTable(maxLen, dim int) *tensor.Tensor {
	t := tensor.New(maxLen, dim)
	for pos := 0; pos < maxLen; pos++ {
		row := t.Row(pos)
		for i := 0; i < dim/2; i++ {
			freq := math.Pow(10000, -2*float64(i)/float64(dim))
			row[2*i] = math.Cos(float64(pos) * freq)
			if 2*i+1 < dim {
				row[2*i+1] = math.Sin(float64(pos) * freq)
			}
		}
	}
	return t
}

// Parameters implements nn.Module.
func (m *Model) Parameters() []*autograd.Node {
	ps := m.TokEmb.Parameters()
	if m.PosTable != nil {
		ps = append(ps, m.PosTable)
	}
	for _, b := range m.Blocks {
		ps = append(ps, b.Parameters()...)
	}
	ps = append(ps, m.FinalNorm.Parameters()...)
	ps = append(ps, m.Output.Parameters()...)
	return ps
}

// NumParameters counts trainable scalars.
func (m *Model) NumParameters() int { return nn.NumParameters(m) }

// Replica returns a weight-sharing copy of m for data-parallel training: it
// aliases every parameter Value tensor (optimizer updates to the parent are
// immediately visible) but owns fresh gradient buffers and a private causal-
// mask cache, so forward/backward passes on the replica are safe to run
// concurrently with passes on the parent or on sibling replicas.
func (m *Model) Replica() *Model {
	r := &Model{
		Cfg:       m.Cfg,
		TokEmb:    m.TokEmb.Replica(),
		sinTable:  m.sinTable,
		FinalNorm: m.FinalNorm.Replica(),
		Output:    m.Output.Replica(),
		masks:     map[int]*tensor.Tensor{},
	}
	if m.PosTable != nil {
		r.PosTable = autograd.Param(m.PosTable.Value)
	}
	for _, b := range m.Blocks {
		r.Blocks = append(r.Blocks, b.replica())
	}
	return r
}

// ReplicaModule implements nn.Replicable.
func (m *Model) ReplicaModule() nn.Module { return m.Replica() }

func (b *Block) replica() *Block {
	return &Block{
		Attn:     b.Attn.replica(),
		FFN:      b.FFN.Replica(),
		LN1:      b.LN1.Replica(),
		LN2:      b.LN2.Replica(),
		postNorm: b.postNorm,
	}
}

func (a *Attention) replica() *Attention {
	r := &Attention{Wo: a.Wo.Replica()}
	for _, h := range a.heads {
		r.heads = append(r.heads, &head{
			Wq: h.Wq.Replica(), Wk: h.Wk.Replica(), Wv: h.Wv.Replica(),
		})
	}
	return r
}

// causalMask returns (cached) the L×L additive mask enforcing j ≤ i
// (Eq. 13's restriction); with SparseStride s > 0, position i additionally
// attends only to the s most recent positions and every s-th earlier one.
func (m *Model) causalMask(l int) *tensor.Tensor {
	if mk, ok := m.masks[l]; ok {
		return mk
	}
	mk := tensor.New(l, l)
	s := m.Cfg.SparseStride
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			blocked := j > i
			if !blocked && s > 0 {
				recent := i-j < s
				strided := j%s == 0
				blocked = !recent && !strided
			}
			if blocked {
				mk.Set(i, j, math.Inf(-1))
			}
		}
	}
	m.masks[l] = mk
	return mk
}

// Trace captures intermediate state for the probing experiments of §7.
type Trace struct {
	// Embedded is the input embedding (after positions), L×Dim.
	Embedded *tensor.Tensor
	// Layers[k] holds the k-th block's outputs and attention maps.
	Layers []*LayerTrace
}

// LayerTrace is per-block capture.
type LayerTrace struct {
	// Attention[h] is the L×L weight matrix of head h.
	Attention []*tensor.Tensor
	// Output is the block's residual-stream output, L×Dim (the
	// "contextualized embeddings" of §7).
	Output *tensor.Tensor
}

// Forward runs the model on a token sequence (length ≤ Window) and returns
// the L×Vocab logits node. A non-nil trace records activations.
func (m *Model) Forward(ids []int, trace *Trace) *autograd.Node {
	l := len(ids)
	if l == 0 || l > m.Cfg.Window {
		panic(fmt.Sprintf("transformer: sequence length %d out of range (1..%d)", l, m.Cfg.Window))
	}
	x := m.TokEmb.Forward(ids)
	switch m.Cfg.Pos {
	case PosLearned:
		x = autograd.Add(x, autograd.SliceRows(m.PosTable, 0, l))
	case PosSinusoidal:
		pos := tensor.New(l, m.Cfg.Dim)
		for i := 0; i < l; i++ {
			copy(pos.Row(i), m.sinTable.Row(i))
		}
		x = autograd.Add(x, autograd.Const(pos))
	}
	if trace != nil {
		trace.Embedded = x.Value.Clone()
	}
	mask := m.causalMask(l)
	for _, b := range m.Blocks {
		var lt *LayerTrace
		if trace != nil {
			lt = &LayerTrace{}
		}
		x = b.forward(x, mask, lt)
		if trace != nil {
			lt.Output = x.Value.Clone()
			trace.Layers = append(trace.Layers, lt)
		}
	}
	x = m.FinalNorm.Forward(x)
	return m.Output.Forward(x)
}

// Loss computes the Eq. 3 objective for one window: the mean cross entropy
// of targets (length L, -1 = ignore) under the model's next-token logits.
func (m *Model) Loss(input, target []int) *autograd.Node {
	return autograd.CrossEntropy(m.Forward(input, nil), target)
}

// ForwardLogits returns the raw logits tensor for input, for evaluation
// code that does not need gradient state.
func (m *Model) ForwardLogits(input []int) *tensor.Tensor {
	return m.Forward(input, nil).Value
}

// HiddenStates runs the blocks and final norm on an already-embedded input
// node (L×Dim) with causal masking, returning the L×Dim hidden states. It
// serves models whose inputs are not discrete tokens — e.g. the in-context
// regression experiment (§4), where each "token" is a feature vector.
// Gradients flow through to both the input node and the block parameters.
func (m *Model) HiddenStates(x *autograd.Node) *autograd.Node {
	mask := m.causalMask(x.Value.Shape[0])
	for _, b := range m.Blocks {
		x = b.forward(x, mask, nil)
	}
	return m.FinalNorm.Forward(x)
}

// InferFromLayer resumes the forward pass from block index start given a
// residual-stream state x (L×Dim) and returns the logits. This is the
// surgery primitive behind the §7 intervention experiment: probe-guided
// edits to an intermediate activation are pushed through the remaining
// layers to observe their causal effect on predictions.
func (m *Model) InferFromLayer(x *tensor.Tensor, start int) *tensor.Tensor {
	if start < 0 || start > len(m.Blocks) {
		panic(fmt.Sprintf("transformer: layer %d out of range", start))
	}
	node := autograd.Const(x.Clone())
	mask := m.causalMask(x.Shape[0])
	for _, b := range m.Blocks[start:] {
		node = b.forward(node, mask, nil)
	}
	node = m.FinalNorm.Forward(node)
	return m.Output.Forward(node).Value
}

// ---- Parameter accounting (Table 1 / §6) ----

// CountParameters returns the exact number of trainable scalars for cfg
// without building a model.
func CountParameters(cfg Config) int {
	cfg = cfg.withDefaults()
	hd := cfg.Dim / cfg.Heads
	perHead := 3 * cfg.Dim * hd                 // Wq, Wk, Wv
	attn := cfg.Heads*perHead + cfg.Dim*cfg.Dim // + Wo
	ffn := cfg.Dim*cfg.Hidden + cfg.Hidden + cfg.Hidden*cfg.Dim + cfg.Dim
	ln := 2 * cfg.Dim // gain + bias
	perBlock := attn + ffn + 2*ln
	emb := cfg.Vocab * cfg.Dim
	pos := 0
	if cfg.Pos == PosLearned {
		pos = cfg.Window * cfg.Dim
	}
	out := cfg.Dim*cfg.Vocab + cfg.Vocab
	return emb + pos + cfg.Layers*perBlock + ln + out
}

// GPT3Estimate returns the paper's §6 closed-form estimate ≈ 12·D·p² for
// the non-embedding parameters of a model with D transformer blocks of
// width p: each block contributes 4p² from attention (Q, K, V and output
// projections) plus 8p² from the FFN with ph = 4p. GPT-3's quoted D = 96,
// p = 12288 yields ≈175B.
func GPT3Estimate(dBlocks, p int) int {
	return 12 * dBlocks * p * p
}

// ---- Inference with KV cache ----

// Predictor performs autoregressive inference with per-layer key/value
// caching, so each new token costs O(L·p) attention work instead of
// rebuilding the full O(L²) graph. It reads the trained weights and does
// not construct autograd state.
//
// Predictor is the decode fast path: NewPredictor runs an inference compile
// step that packs every projection into transposed contiguous layout, the
// KV cache is preallocated to the full window (no copy-growth per token),
// and all intermediate vectors live in a per-predictor scratch arena reused
// across Append calls — steady-state decoding performs zero heap
// allocations while producing logits bitwise identical to the training
// graph's forward pass.
//
// Predictor is the transformer's streaming hook: it satisfies
// sample.Stepper, so the unified generation API (lm.Gen / lm.Stream and the
// serving front end) drives it token by token exactly like the other model
// substrates.
type Predictor struct {
	m *Model
	c *compiledModel
	// Per layer, per head: cached keys and values, preallocated to Window
	// rows; rows [0, n) are valid. kpacks mirrors the key cache in the
	// sixteen-row interleaved layout (see packKeyRow), maintained
	// incrementally as each key row is written, so both decode scoring and
	// chunked prefill read ready-packed blocks instead of re-packing the
	// prefix.
	keys   [][]*tensor.Tensor
	vals   [][]*tensor.Tensor
	kpacks [][][]float64
	n      int

	// Scratch arena, sized once in NewPredictor and reused every Append.
	x      []float64 // residual stream (Dim)
	norm   []float64 // layer-norm output (Dim)
	q      []float64 // all heads' queries, head-major (Dim)
	k      []float64 // all heads' keys (Dim)
	v      []float64 // all heads' values (Dim)
	concat []float64 // concatenated head outputs (Dim)
	att    []float64 // attention output / FFN output (Dim)
	hidden []float64 // FFN hidden (Hidden)
	scores []float64 // attention scores/weights (Window)
	smax   []float64 // softmax scratch (Window)
	logits []float64 // next-token logits (Vocab)

	// Verification scratch, created on first ExtendAll and reused: the
	// per-position logits matrix and the row views handed to the caller.
	allLogits *tensor.Tensor
	allOut    [][]float64
}

// NewPredictor compiles m's weights into the packed inference layout and
// returns an empty-cache predictor over them. The compile step snapshots
// the matrix weights; training m further does not retarget an existing
// predictor.
func (m *Model) NewPredictor() *Predictor {
	cfg := m.Cfg
	p := &Predictor{
		m:      m,
		c:      m.compile(),
		x:      make([]float64, cfg.Dim),
		norm:   make([]float64, cfg.Dim),
		q:      make([]float64, cfg.Dim),
		k:      make([]float64, cfg.Dim),
		v:      make([]float64, cfg.Dim),
		concat: make([]float64, cfg.Dim),
		att:    make([]float64, cfg.Dim),
		hidden: make([]float64, cfg.Hidden),
		scores: make([]float64, cfg.Window),
		smax:   make([]float64, cfg.Window),
		logits: make([]float64, cfg.Vocab),
	}
	hd := cfg.Dim / cfg.Heads
	p.keys = make([][]*tensor.Tensor, len(m.Blocks))
	p.vals = make([][]*tensor.Tensor, len(m.Blocks))
	p.kpacks = make([][][]float64, len(m.Blocks))
	for i, b := range m.Blocks {
		p.keys[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		p.vals[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		p.kpacks[i] = make([][]float64, b.Attn.NumHeads())
		for h := range p.keys[i] {
			p.keys[i][h] = tensor.New(cfg.Window, hd)
			p.vals[i][h] = tensor.New(cfg.Window, hd)
			p.kpacks[i][h] = make([]float64, cfg.keyPackLen(hd))
		}
	}
	return p
}

// keyPackLen is the per-head interleaved key-pack size: the window's full
// sixteen-row blocks. Sparse-stride attention always scores through the
// masked per-row path and never reads a pack, so those configs keep the
// packs empty (packKeyRow on an empty pack is a no-op) rather than
// doubling key-cache memory for nothing.
func (c Config) keyPackLen(hd int) int {
	if c.SparseStride > 0 {
		return 0
	}
	return (c.Window / 16) * 16 * hd
}

// Len returns the number of cached positions.
func (p *Predictor) Len() int { return p.n }

// Append feeds one token and returns the logits for the next position
// (length Vocab). It panics when the window is exhausted.
//
// The returned slice is the predictor's reusable scratch: it is valid until
// the next Append call, matching how every decoding loop in this repository
// consumes logits (pick a token, then step again). Clone it to retain.
func (p *Predictor) Append(id int) []float64 {
	m := p.m
	if p.n >= m.Cfg.Window {
		panic("transformer: predictor window exhausted")
	}
	pos := p.n
	// Embed the single token.
	copy(p.x, m.TokEmb.W.Value.Row(id))
	switch m.Cfg.Pos {
	case PosLearned:
		for j, v := range m.PosTable.Value.Row(pos) {
			p.x[j] += v
		}
	case PosSinusoidal:
		for j, v := range m.sinTable.Row(pos) {
			p.x[j] += v
		}
	}
	for li, b := range m.Blocks {
		p.blockStep(li, b, pos)
	}
	layerNormInto(p.norm, p.x, m.FinalNorm)
	// Unembedding through the packed kernel.
	c := p.c
	c.out.matVec(p.logits, p.norm)
	for o, bv := range c.outB {
		p.logits[o] += bv
	}
	p.n++
	return p.logits
}

// blockStep advances one block over the residual stream in p.x, in place.
func (p *Predictor) blockStep(li int, b *Block, pos int) {
	m := p.m
	cl := &p.c.layers[li]
	hd := m.Cfg.Dim / m.Cfg.Heads
	attnIn := p.x
	if !b.postNorm {
		layerNormInto(p.norm, p.x, b.LN1)
		attnIn = p.norm
	}
	// Q/K/V for every head in three packed sweeps.
	cl.wq.matVec(p.q, attnIn)
	cl.wk.matVec(p.k, attnIn)
	cl.wv.matVec(p.v, attnIn)
	scale := 1 / math.Sqrt(float64(hd))
	stride := m.Cfg.SparseStride
	for hi := 0; hi < m.Cfg.Heads; hi++ {
		kc, vc := p.keys[li][hi], p.vals[li][hi]
		qh := p.q[hi*hd : (hi+1)*hd]
		krow := p.k[hi*hd : (hi+1)*hd]
		copy(kc.Row(pos), krow)
		packKeyRow(p.kpacks[li][hi], krow, pos)
		copy(vc.Row(pos), p.v[hi*hd:(hi+1)*hd])
		scores := p.scores[:pos+1]
		if stride > 0 {
			for j := 0; j <= pos; j++ {
				if pos-j >= stride && j%stride != 0 {
					scores[j] = math.Inf(-1)
					continue
				}
				scores[j] = mathx.Dot(qh, kc.Row(j)) * scale
			}
		} else {
			packedAttnScores(p.scores, qh, p.kpacks[li][hi], kc, pos, scale)
		}
		w := mathx.SoftmaxFastInto(scores, scores, p.smax, 1)
		out := p.concat[hi*hd : (hi+1)*hd]
		weightedValueSum(out, vc, w, pos, hd)
	}
	cl.wo.matVec(p.att, p.concat)
	for i := range p.x {
		p.x[i] += p.att[i]
	}
	if b.postNorm {
		layerNormInto(p.x, p.x, b.LN1)
	}
	ffnIn := p.x
	if !b.postNorm {
		layerNormInto(p.norm, p.x, b.LN2)
		ffnIn = p.norm
	}
	cl.ffnIn.matVec(p.hidden, ffnIn)
	for r, bv := range cl.ffnInB {
		p.hidden[r] = actScalar(b.FFN.Act, p.hidden[r]+bv)
	}
	cl.ffnOut.matVec(p.att, p.hidden)
	for r, bv := range cl.ffnOutB {
		p.att[r] += bv
	}
	for i := range p.x {
		p.x[i] += p.att[i]
	}
	if b.postNorm {
		layerNormInto(p.x, p.x, b.LN2)
	}
}

// weightedValueSum accumulates the attention-weighted value rows into out:
// out[d] = Σ_j w[j]·v_j[d], j ascending (Eq. 13's convex combination). For
// the common 16-wide head, the position-major value cache is exactly the
// element-interleaved layout mathx.DotInterleaved16 consumes (lane d sweeps
// positions in order), so one kernel call does the whole reduction; other
// widths take the scalar loop. Both run every output's additions in the
// same ascending-j order as the training graph.
func weightedValueSum(out []float64, vc *tensor.Tensor, w []float64, pos, hd int) {
	if hd == 16 {
		mathx.DotInterleaved16((*[16]float64)(out), vc.Data[:(pos+1)*16], w[:pos+1])
		return
	}
	for d := range out {
		out[d] = 0
	}
	for j := 0; j <= pos; j++ {
		if w[j] == 0 {
			continue
		}
		vr := vc.Row(j)
		for d := range out {
			out[d] += w[j] * vr[d]
		}
	}
}

// packKeyRow scatters one head's new key row into its interleaved prefix
// pack: lane pos%16 of block pos/16 (element i of all sixteen positions in
// a block is contiguous, the layout mathx.DotInterleaved16 consumes). The
// pack holds only the window's full sixteen-row blocks; a position in the
// final partial block has no pack slot and is scored straight from the
// position-major cache. Maintaining the pack incrementally as each key is
// written — by Append, the batched Step, and the chunked prefill alike —
// means every scoring path reads ready-packed blocks and nothing ever
// re-packs the prefix.
func packKeyRow(kp, row []float64, pos int) {
	hd := len(row)
	blk := pos >> 4
	if (blk+1)*16*hd > len(kp) {
		return
	}
	seg := kp[blk*16*hd:]
	lane := pos & 15
	for i, v := range row {
		seg[i*16+lane] = v
	}
}

// packedAttnScores fills scores[j] = (q · key row j)·scale for j in
// [0, pos]: sixteen keys per interleaved kernel call over the key pack's
// full blocks, then a scalar tail over the position-major cache rows past
// the last full block. Each score accumulates its products in the same
// ascending element order as a plain mathx.Dot, and the scale multiply is
// one multiplication per score either way, so results are bitwise
// identical to the per-row loop this replaces. The caller handles the
// sparse-stride mask, which disables this dense kernel.
func packedAttnScores(scores, q, kp []float64, keys *tensor.Tensor, pos int, scale float64) {
	hd := keys.Shape[1]
	if len(q) != hd {
		panic("transformer: packedAttnScores length mismatch")
	}
	nb := (pos + 1) / 16
	for bk := 0; bk < nb; bk++ {
		mathx.DotInterleaved16((*[16]float64)(scores[bk*16:bk*16+16]),
			kp[bk*16*hd:(bk+1)*16*hd], q)
	}
	for j := nb * 16; j <= pos; j++ {
		scores[j] = mathx.Dot(keys.Row(j), q)
	}
	s := scores[:pos+1]
	for j := range s {
		s[j] *= scale
	}
}

// layerNormInto writes ln(x) into dst (dst may alias x): the inference-path
// layer norm shared by the single-token and batched decode kernels.
func layerNormInto(dst, x []float64, ln *nn.LayerNorm) {
	mu := mathx.Mean(x)
	va := 0.0
	for _, v := range x {
		d := v - mu
		va += d * d
	}
	va /= float64(len(x))
	is := 1 / math.Sqrt(va+ln.Eps)
	g := ln.Gain.Value.Row(0)
	b := ln.Bias.Value.Row(0)
	for i, v := range x {
		dst[i] = (v-mu)*is*g[i] + b[i]
	}
}

func actScalar(a nn.Activation, x float64) float64 {
	switch a {
	case nn.ReLU:
		if x > 0 {
			return x
		}
		return 0
	case nn.Tanh:
		return math.Tanh(x)
	case nn.GELU:
		return mathx.GELU(x)
	default:
		panic("transformer: unknown activation")
	}
}
