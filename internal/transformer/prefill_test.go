package transformer

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// bitsEqual compares logit slices bit for bit.
func bitsEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: logit %d: %v (bits %x) != %v (bits %x)",
				tag, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestExtendMatchesAppendBitwise drives Extend and token-by-token Append
// over identical streams across positional schemes, norm orders, head
// widths (including non-16 head dims), and the sparse mask: the final
// logits, the full KV caches, and every subsequent Append must agree
// bitwise.
func TestExtendMatchesAppendBitwise(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 40, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 23, Dim: 16, Layers: 1, Heads: 4, Window: 40, Pos: PosSinusoidal, Act: nn.ReLU},
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 40, Pos: PosNone, Act: nn.Tanh, PostNorm: true},
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 40, Pos: PosLearned, Act: nn.GELU, SparseStride: 3},
		{Vocab: 31, Dim: 24, Layers: 2, Heads: 2, Window: 37, Pos: PosLearned, Act: nn.GELU},    // head dim 12
		{Vocab: 31, Dim: 40, Layers: 1, Heads: 2, Window: 21, Pos: PosSinusoidal, Act: nn.GELU}, // head dim 20
	} {
		m := MustNew(cfg, mathx.NewRNG(77))
		rng := mathx.NewRNG(78)
		for _, n := range []int{1, 2, 15, 16, 17, cfg.Window} {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = rng.Intn(cfg.Vocab)
			}
			fast := m.NewPredictor()
			slow := m.NewPredictor()
			got := fast.Extend(ids)
			var want []float64
			for _, id := range ids {
				want = slow.Append(id)
			}
			bitsEqual(t, "extend", got, want)
			if fast.Len() != slow.Len() {
				t.Fatalf("cfg %+v n %d: Len %d != %d", cfg, n, fast.Len(), slow.Len())
			}
			// The caches must match too: continue decoding both greedily.
			for fast.Len() < cfg.Window {
				next, _ := mathx.ArgMax(want)
				bitsEqual(t, "decode-after-extend", fast.Append(next), slow.Append(next))
			}
		}
	}
}

// TestExtendProperty fuzzes random configurations and random chunk
// schedules (including chunks of one, re-extension mid-generation, and
// interleaved Append calls): every Extend must match the same tokens fed
// through Append on a shadow predictor, bitwise, at every step.
func TestExtendProperty(t *testing.T) {
	rng := mathx.NewRNG(991)
	for trial := 0; trial < 40; trial++ {
		heads := 1 + rng.Intn(3)
		hd := []int{4, 8, 12, 16, 20}[rng.Intn(5)]
		cfg := Config{
			Vocab:  11 + rng.Intn(40),
			Dim:    heads * hd,
			Hidden: 8 + rng.Intn(64),
			Layers: 1 + rng.Intn(2),
			Heads:  heads,
			Window: 18 + rng.Intn(46),
			Pos:    []PosKind{PosSinusoidal, PosLearned, PosNone}[rng.Intn(3)],
			Act:    []nn.Activation{nn.ReLU, nn.Tanh, nn.GELU}[rng.Intn(3)],
		}
		if rng.Intn(4) == 0 {
			cfg.PostNorm = true
		}
		if rng.Intn(5) == 0 {
			cfg.SparseStride = 2 + rng.Intn(3)
		}
		m := MustNew(cfg, mathx.NewRNG(uint64(trial)*13+1))
		fast := m.NewPredictor()
		slow := m.NewPredictor()
		for fast.Len() < cfg.Window {
			room := cfg.Window - fast.Len()
			n := 1 + rng.Intn(room)
			ids := make([]int, n)
			for i := range ids {
				ids[i] = rng.Intn(cfg.Vocab)
			}
			var got, want []float64
			if rng.Intn(4) == 0 && n == 1 {
				got = fast.Append(ids[0])
			} else {
				got = fast.Extend(ids)
			}
			for _, id := range ids {
				want = slow.Append(id)
			}
			bitsEqual(t, "property", got, want)
		}
	}
}

// TestExtendEdgeLengths pins the length edges: empty chunks, chunk 1, one
// below the window, exactly the window, and beyond the window (keep-last
// truncation).
func TestExtendEdgeLengths(t *testing.T) {
	cfg := Config{Vocab: 19, Dim: 32, Layers: 2, Heads: 2, Window: 24, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(5))
	rng := mathx.NewRNG(6)
	mk := func(n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(cfg.Vocab)
		}
		return ids
	}

	if got := m.NewPredictor().Extend(nil); got != nil {
		t.Fatalf("Extend(nil) = %v, want nil", got)
	}
	if got := m.NewPredictor().Extend([]int{}); got != nil {
		t.Fatalf("Extend(empty) = %v, want nil", got)
	}

	for _, n := range []int{1, cfg.Window - 1, cfg.Window} {
		ids := mk(n)
		fast, slow := m.NewPredictor(), m.NewPredictor()
		var want []float64
		for _, id := range ids {
			want = slow.Append(id)
		}
		bitsEqual(t, "edge", fast.Extend(ids), want)
		if fast.Len() != n {
			t.Fatalf("Len after Extend(%d) = %d", n, fast.Len())
		}
	}

	// Longer than the window: only the last Window ids are ingested.
	long := mk(cfg.Window + 9)
	fast, slow := m.NewPredictor(), m.NewPredictor()
	var want []float64
	for _, id := range long[len(long)-cfg.Window:] {
		want = slow.Append(id)
	}
	bitsEqual(t, "overlong", fast.Extend(long), want)
	if fast.Len() != cfg.Window {
		t.Fatalf("Len after overlong Extend = %d, want %d", fast.Len(), cfg.Window)
	}
	// Window full: further Extend ingests nothing.
	if got := fast.Extend(mk(3)); got != nil {
		t.Fatalf("Extend on a full window = %v, want nil", got)
	}

	// Mid-generation re-extension beyond the room keeps the last room ids.
	fast, slow = m.NewPredictor(), m.NewPredictor()
	head := mk(10)
	fast.Extend(head)
	for _, id := range head {
		slow.Append(id)
	}
	over := mk(cfg.Window) // room is Window-10
	room := cfg.Window - 10
	for _, id := range over[len(over)-room:] {
		want = slow.Append(id)
	}
	bitsEqual(t, "re-extend-overlong", fast.Extend(over), want)
}

// TestBatchedPrefillMatchesStepBitwise drives Prefill against per-token
// Step calls for interleaved sequences: logits after the chunk, and every
// subsequent batched step, must agree bitwise — including sequences
// prefilled while others are mid-decode.
func TestBatchedPrefillMatchesStepBitwise(t *testing.T) {
	cfg := Config{Vocab: 29, Dim: 32, Layers: 2, Heads: 2, Window: 40, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(17))
	rng := mathx.NewRNG(18)

	fast := m.NewBatchedPredictor()
	slow := m.NewBatchedPredictor()
	fa, sa := fast.Add(), slow.Add()

	// Sequence A: prompt via Prefill vs per-token Step.
	prompt := make([]int, 23)
	for i := range prompt {
		prompt[i] = rng.Intn(cfg.Vocab)
	}
	got := fast.Prefill(fa, prompt)
	var want []float64
	for _, id := range prompt {
		want = slow.Step([]int{sa}, []int{id})[0]
	}
	bitsEqual(t, "batched-prefill", got, want)

	// Decode A a few steps, then admit B and prefill it mid-decode.
	tokA := func(l []float64) int { i, _ := mathx.ArgMax(l); return i }
	a := tokA(want)
	for s := 0; s < 3; s++ {
		gl := fast.Step([]int{fa}, []int{a})[0]
		wl := slow.Step([]int{sa}, []int{a})[0]
		bitsEqual(t, "decode-A", gl, wl)
		a = tokA(wl)
	}
	fb, sb := fast.Add(), slow.Add()
	promptB := make([]int, 17)
	for i := range promptB {
		promptB[i] = rng.Intn(cfg.Vocab)
	}
	gotB := fast.Prefill(fb, promptB)
	var wantB []float64
	for _, id := range promptB {
		wantB = slow.Step([]int{sb}, []int{id})[0]
	}
	bitsEqual(t, "batched-prefill-mid-decode", gotB, wantB)
	bf := tokA(wantB)

	// Joint decode of both sequences.
	for s := 0; s < 4; s++ {
		gl := fast.Step([]int{fa, fb}, []int{a, bf})
		wl := slow.Step([]int{sa, sb}, []int{a, bf})
		bitsEqual(t, "decode-joint-A", gl[0], wl[0])
		bitsEqual(t, "decode-joint-B", gl[1], wl[1])
		a, bf = tokA(wl[0]), tokA(wl[1])
	}

	if fast.Len(fa) != slow.Len(sa) || fast.Len(fb) != slow.Len(sb) {
		t.Fatalf("length divergence")
	}

	// Unknown sequence panics, mirroring Step.
	defer func() {
		if recover() == nil {
			t.Fatalf("Prefill of unknown sequence did not panic")
		}
	}()
	fast.Prefill(99, []int{1})
}

// TestExtendAllocs pins the steady-state allocation count of the chunked
// prefill path: after warmup, Extend must stay within two allocations per
// call (zero in practice; the bound leaves room for the runtime).
func TestExtendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	cfg := Config{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 512, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(3))
	rng := mathx.NewRNG(4)
	ids := make([]int, 4)
	for i := range ids {
		ids[i] = rng.Intn(cfg.Vocab)
	}
	p := m.NewPredictor()
	p.Extend(ids) // create and size the chunk scratch
	avg := testing.AllocsPerRun(64, func() {
		p.Extend(ids)
	})
	if avg > 2 {
		t.Fatalf("Extend allocations per call = %v, want <= 2", avg)
	}
}

// BenchmarkPrefillExtendVsAppend is the package-level E20 pair: chunked
// prefill against token-by-token Append (and the legacy pre-compile
// reference) for a 256-token prompt at the E18 serving shape.
func BenchmarkPrefillExtendVsAppend(b *testing.B) {
	cfg := Config{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 288,
		Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(9))
	rng := mathx.NewRNG(10)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = rng.Intn(cfg.Vocab)
	}
	b.Run("extend", func(b *testing.B) {
		p := m.NewPredictor()
		p.Extend(prompt) // warm scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p = m.NewPredictor()
			b.StartTimer()
			p.Extend(prompt)
		}
		b.ReportMetric(float64(b.N*len(prompt))/b.Elapsed().Seconds(), "tok/s")
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := m.NewPredictor()
			b.StartTimer()
			for _, id := range prompt {
				p.Append(id)
			}
		}
		b.ReportMetric(float64(b.N*len(prompt))/b.Elapsed().Seconds(), "tok/s")
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := newLegacyPredictor(m)
			b.StartTimer()
			for _, id := range prompt {
				p.Append(id)
			}
		}
		b.ReportMetric(float64(b.N*len(prompt))/b.Elapsed().Seconds(), "tok/s")
	})
}
