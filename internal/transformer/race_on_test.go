//go:build race

package transformer

// raceEnabled reports that the race detector is active: sync.Pool drops
// items at random under it (to widen race coverage), which breaks strict
// allocation pins on pooled paths.
const raceEnabled = true
