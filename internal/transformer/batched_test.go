package transformer

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// TestBatchedPredictorMatchesPredictor drives several sequences of different
// lengths through one BatchedPredictor and each alone through a Predictor;
// logits must agree bitwise at every step (the batched path reuses the same
// kernels in the same order).
func TestBatchedPredictorMatchesPredictor(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 19, Dim: 16, Layers: 2, Heads: 2, Window: 12, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 19, Dim: 16, Layers: 1, Heads: 4, Window: 12, Pos: PosSinusoidal, Act: nn.ReLU, PostNorm: true},
		{Vocab: 19, Dim: 16, Layers: 2, Heads: 2, Window: 12, Pos: PosNone, Act: nn.GELU, SparseStride: 3},
	} {
		m := MustNew(cfg, mathx.NewRNG(31))
		rng := mathx.NewRNG(32)
		// Three sequences with different lengths.
		seqs := [][]int{
			make([]int, 12),
			make([]int, 7),
			make([]int, 10),
		}
		for _, s := range seqs {
			for i := range s {
				s[i] = rng.Intn(cfg.Vocab)
			}
		}
		// Reference: each sequence alone.
		want := make([][][]float64, len(seqs))
		for si, s := range seqs {
			p := m.NewPredictor()
			for _, id := range s {
				logits := p.Append(id)
				cp := append([]float64(nil), logits...)
				want[si] = append(want[si], cp)
			}
		}
		// Batched: all sequences together; shorter ones drop out when done.
		bp := m.NewBatchedPredictor()
		handles := make([]int, len(seqs))
		for i := range seqs {
			handles[i] = bp.Add()
		}
		for step := 0; ; step++ {
			var ids, toks []int
			var who []int
			for si, s := range seqs {
				if step < len(s) {
					ids = append(ids, handles[si])
					toks = append(toks, s[step])
					who = append(who, si)
				}
			}
			if len(ids) == 0 {
				break
			}
			got := bp.Step(ids, toks)
			for i, si := range who {
				w := want[si][step]
				for o := range w {
					if got[i][o] != w[o] {
						t.Fatalf("cfg %+v: seq %d step %d logit %d: batched %v != solo %v",
							cfg, si, step, o, got[i][o], w[o])
					}
				}
			}
		}
		for si := range seqs {
			if got, want := bp.Len(handles[si]), len(seqs[si]); got != want {
				t.Fatalf("seq %d: Len = %d, want %d", si, got, want)
			}
		}
	}
}

// TestBatchedStepParityAcrossWidths pins the cross-sequence GEMM step at
// the batch sizes the E21 scaling claim is made for (1, 2, 7, 16, 33): the
// X4/X2/X1 row grouping inside matMat and the per-sequence key-pack
// scoring must leave every row bitwise identical to a solo
// Predictor.Append, at every width and every position.
func TestBatchedStepParityAcrossWidths(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 29, Dim: 32, Layers: 2, Heads: 2, Window: 24, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 29, Dim: 24, Layers: 1, Heads: 2, Window: 21, Pos: PosSinusoidal, Act: nn.Tanh, PostNorm: true}, // head dim 12, window not /16
	} {
		m := MustNew(cfg, mathx.NewRNG(91))
		rng := mathx.NewRNG(92)
		for _, batch := range []int{1, 2, 7, 16, 33} {
			steps := cfg.Window
			toks := make([][]int, batch)
			for s := range toks {
				toks[s] = make([]int, steps)
				for j := range toks[s] {
					toks[s][j] = rng.Intn(cfg.Vocab)
				}
			}
			// Reference: each sequence alone through Append.
			want := make([][][]float64, batch)
			for s := range toks {
				p := m.NewPredictor()
				for _, id := range toks[s] {
					want[s] = append(want[s], append([]float64(nil), p.Append(id)...))
				}
			}
			bp := m.NewBatchedPredictor()
			ids := make([]int, batch)
			step := make([]int, batch)
			for i := range ids {
				ids[i] = bp.Add()
			}
			for j := 0; j < steps; j++ {
				for i := range step {
					step[i] = toks[i][j]
				}
				got := bp.Step(ids, step)
				for i := range got {
					bitsEqual(t, "step-width", got[i], want[i][j])
				}
			}
		}
	}
}

// TestBatchedStepProperty fuzzes the batched step against shadow solo
// predictors: random configurations (head widths incl. non-16, windows not
// divisible by 16, both norm orders, sparse masks), random batch
// compositions per step (any subset of the live sequences), and random
// interleaved Prefill chunks. Every returned row must match the shadow's
// Append bitwise.
func TestBatchedStepProperty(t *testing.T) {
	rng := mathx.NewRNG(441)
	for trial := 0; trial < 25; trial++ {
		heads := 1 + rng.Intn(3)
		hd := []int{4, 8, 12, 16, 20}[rng.Intn(5)]
		cfg := Config{
			Vocab:  11 + rng.Intn(40),
			Dim:    heads * hd,
			Hidden: 8 + rng.Intn(64),
			Layers: 1 + rng.Intn(2),
			Heads:  heads,
			Window: 18 + rng.Intn(46),
			Pos:    []PosKind{PosSinusoidal, PosLearned, PosNone}[rng.Intn(3)],
			Act:    []nn.Activation{nn.ReLU, nn.Tanh, nn.GELU}[rng.Intn(3)],
		}
		if rng.Intn(4) == 0 {
			cfg.PostNorm = true
		}
		if rng.Intn(5) == 0 {
			cfg.SparseStride = 2 + rng.Intn(3)
		}
		m := MustNew(cfg, mathx.NewRNG(uint64(trial)*17+3))
		bp := m.NewBatchedPredictor()
		n := 1 + rng.Intn(6)
		ids := make([]int, n)
		shadow := make([]*Predictor, n)
		for i := range ids {
			ids[i] = bp.Add()
			shadow[i] = m.NewPredictor()
		}
		for round := 0; round < 30; round++ {
			// Pick a random non-empty subset with window room left.
			var stepIDs, stepToks []int
			var stepShadow []*Predictor
			for i := range ids {
				if shadow[i].Len() < cfg.Window && rng.Intn(2) == 0 {
					tok := rng.Intn(cfg.Vocab)
					stepIDs = append(stepIDs, ids[i])
					stepToks = append(stepToks, tok)
					stepShadow = append(stepShadow, shadow[i])
				}
			}
			if len(stepIDs) == 0 {
				continue
			}
			// Occasionally prefill one member a short chunk instead.
			if rng.Intn(5) == 0 {
				i := rng.Intn(len(stepIDs))
				chunk := make([]int, 1+rng.Intn(4))
				for j := range chunk {
					chunk[j] = rng.Intn(cfg.Vocab)
				}
				room := cfg.Window - bp.Len(stepIDs[i])
				got := bp.Prefill(stepIDs[i], chunk)
				var want []float64
				for _, id := range truncTail(chunk, room) {
					want = stepShadow[i].Append(id)
				}
				if want != nil {
					bitsEqual(t, "property-prefill", got, want)
				}
				continue
			}
			got := bp.Step(stepIDs, stepToks)
			for i := range got {
				bitsEqual(t, "property-step", got[i], stepShadow[i].Append(stepToks[i]))
			}
		}
	}
}

func TestBatchedPredictorDropAndReuse(t *testing.T) {
	cfg := Config{Vocab: 7, Dim: 8, Layers: 1, Heads: 2, Window: 6, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(3))
	bp := m.NewBatchedPredictor()
	a := bp.Add()
	b := bp.Add()
	if bp.Size() != 2 {
		t.Fatalf("Size = %d", bp.Size())
	}
	bp.Step([]int{a, b}, []int{1, 2})
	bp.Drop(a)
	if bp.Size() != 1 {
		t.Fatalf("Size after drop = %d", bp.Size())
	}
	// b keeps decoding after a is gone, and new sequences can join.
	c := bp.Add()
	out := bp.Step([]int{b, c}, []int{3, 4})
	if len(out) != 2 || len(out[0]) != cfg.Vocab {
		t.Fatalf("step shape %d x %d", len(out), len(out[0]))
	}
	if bp.Len(b) != 2 || bp.Len(c) != 1 {
		t.Fatalf("lengths b=%d c=%d", bp.Len(b), bp.Len(c))
	}
}

func TestBatchedPredictorPanics(t *testing.T) {
	cfg := Config{Vocab: 7, Dim: 8, Layers: 1, Heads: 2, Window: 2, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(3))
	bp := m.NewBatchedPredictor()
	id := bp.Add()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("unknown id", func() { bp.Step([]int{99}, []int{0}) })
	expectPanic("duplicate id", func() { bp.Step([]int{id, id}, []int{0, 0}) })
	expectPanic("length mismatch", func() { bp.Step([]int{id}, []int{0, 1}) })
	bp.Step([]int{id}, []int{0})
	bp.Step([]int{id}, []int{1})
	expectPanic("window exhausted", func() { bp.Step([]int{id}, []int{2}) })
}

// TestReplicaSharesWeightsNotGrads checks the data-parallel contract: a
// replica reads the parent's parameter values (updates flow through) while
// gradients stay private to each copy.
func TestReplicaSharesWeightsNotGrads(t *testing.T) {
	cfg := Config{Vocab: 11, Dim: 16, Layers: 2, Heads: 2, Window: 8, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(5))
	r := m.Replica()
	mp, rp := m.Parameters(), r.Parameters()
	if len(mp) != len(rp) {
		t.Fatalf("parameter count %d != %d", len(mp), len(rp))
	}
	for i := range mp {
		if mp[i].Value != rp[i].Value {
			t.Fatalf("param %d: replica does not alias parent Value", i)
		}
		if mp[i].Grad == rp[i].Grad {
			t.Fatalf("param %d: replica shares parent Grad", i)
		}
	}
	input := []int{1, 2, 3, 4}
	target := []int{2, 3, 4, 5}
	lm := m.Loss(input, target).Value.Data[0]
	lr := r.Loss(input, target).Value.Data[0]
	if lm != lr {
		t.Fatalf("replica loss %v != parent loss %v", lr, lm)
	}
	// A weight edit on the parent is visible to the replica.
	mp[0].Value.Data[0] += 0.25
	if r.Parameters()[0].Value.Data[0] != mp[0].Value.Data[0] {
		t.Fatal("weight edit not visible through replica")
	}
}
