package transformer

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// TestBatchedPredictorMatchesPredictor drives several sequences of different
// lengths through one BatchedPredictor and each alone through a Predictor;
// logits must agree bitwise at every step (the batched path reuses the same
// kernels in the same order).
func TestBatchedPredictorMatchesPredictor(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 19, Dim: 16, Layers: 2, Heads: 2, Window: 12, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 19, Dim: 16, Layers: 1, Heads: 4, Window: 12, Pos: PosSinusoidal, Act: nn.ReLU, PostNorm: true},
		{Vocab: 19, Dim: 16, Layers: 2, Heads: 2, Window: 12, Pos: PosNone, Act: nn.GELU, SparseStride: 3},
	} {
		m := MustNew(cfg, mathx.NewRNG(31))
		rng := mathx.NewRNG(32)
		// Three sequences with different lengths.
		seqs := [][]int{
			make([]int, 12),
			make([]int, 7),
			make([]int, 10),
		}
		for _, s := range seqs {
			for i := range s {
				s[i] = rng.Intn(cfg.Vocab)
			}
		}
		// Reference: each sequence alone.
		want := make([][][]float64, len(seqs))
		for si, s := range seqs {
			p := m.NewPredictor()
			for _, id := range s {
				logits := p.Append(id)
				cp := append([]float64(nil), logits...)
				want[si] = append(want[si], cp)
			}
		}
		// Batched: all sequences together; shorter ones drop out when done.
		bp := m.NewBatchedPredictor()
		handles := make([]int, len(seqs))
		for i := range seqs {
			handles[i] = bp.Add()
		}
		for step := 0; ; step++ {
			var ids, toks []int
			var who []int
			for si, s := range seqs {
				if step < len(s) {
					ids = append(ids, handles[si])
					toks = append(toks, s[step])
					who = append(who, si)
				}
			}
			if len(ids) == 0 {
				break
			}
			got := bp.Step(ids, toks)
			for i, si := range who {
				w := want[si][step]
				for o := range w {
					if got[i][o] != w[o] {
						t.Fatalf("cfg %+v: seq %d step %d logit %d: batched %v != solo %v",
							cfg, si, step, o, got[i][o], w[o])
					}
				}
			}
		}
		for si := range seqs {
			if got, want := bp.Len(handles[si]), len(seqs[si]); got != want {
				t.Fatalf("seq %d: Len = %d, want %d", si, got, want)
			}
		}
	}
}

func TestBatchedPredictorDropAndReuse(t *testing.T) {
	cfg := Config{Vocab: 7, Dim: 8, Layers: 1, Heads: 2, Window: 6, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(3))
	bp := m.NewBatchedPredictor()
	a := bp.Add()
	b := bp.Add()
	if bp.Size() != 2 {
		t.Fatalf("Size = %d", bp.Size())
	}
	bp.Step([]int{a, b}, []int{1, 2})
	bp.Drop(a)
	if bp.Size() != 1 {
		t.Fatalf("Size after drop = %d", bp.Size())
	}
	// b keeps decoding after a is gone, and new sequences can join.
	c := bp.Add()
	out := bp.Step([]int{b, c}, []int{3, 4})
	if len(out) != 2 || len(out[0]) != cfg.Vocab {
		t.Fatalf("step shape %d x %d", len(out), len(out[0]))
	}
	if bp.Len(b) != 2 || bp.Len(c) != 1 {
		t.Fatalf("lengths b=%d c=%d", bp.Len(b), bp.Len(c))
	}
}

func TestBatchedPredictorPanics(t *testing.T) {
	cfg := Config{Vocab: 7, Dim: 8, Layers: 1, Heads: 2, Window: 2, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(3))
	bp := m.NewBatchedPredictor()
	id := bp.Add()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("unknown id", func() { bp.Step([]int{99}, []int{0}) })
	expectPanic("duplicate id", func() { bp.Step([]int{id, id}, []int{0, 0}) })
	expectPanic("length mismatch", func() { bp.Step([]int{id}, []int{0, 1}) })
	bp.Step([]int{id}, []int{0})
	bp.Step([]int{id}, []int{1})
	expectPanic("window exhausted", func() { bp.Step([]int{id}, []int{2}) })
}

// TestReplicaSharesWeightsNotGrads checks the data-parallel contract: a
// replica reads the parent's parameter values (updates flow through) while
// gradients stay private to each copy.
func TestReplicaSharesWeightsNotGrads(t *testing.T) {
	cfg := Config{Vocab: 11, Dim: 16, Layers: 2, Heads: 2, Window: 8, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(5))
	r := m.Replica()
	mp, rp := m.Parameters(), r.Parameters()
	if len(mp) != len(rp) {
		t.Fatalf("parameter count %d != %d", len(mp), len(rp))
	}
	for i := range mp {
		if mp[i].Value != rp[i].Value {
			t.Fatalf("param %d: replica does not alias parent Value", i)
		}
		if mp[i].Grad == rp[i].Grad {
			t.Fatalf("param %d: replica shares parent Grad", i)
		}
	}
	input := []int{1, 2, 3, 4}
	target := []int{2, 3, 4, 5}
	lm := m.Loss(input, target).Value.Data[0]
	lr := r.Loss(input, target).Value.Data[0]
	if lm != lr {
		t.Fatalf("replica loss %v != parent loss %v", lr, lm)
	}
	// A weight edit on the parent is visible to the replica.
	mp[0].Value.Data[0] += 0.25
	if r.Parameters()[0].Value.Data[0] != mp[0].Value.Data[0] {
		t.Fatal("weight edit not visible through replica")
	}
}
