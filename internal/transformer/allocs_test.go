package transformer

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// TestAppendZeroAllocsSteadyState pins the decode fast path's allocation
// behavior: once a Predictor exists, Append must not touch the heap — the
// compiled weights, the preallocated KV cache, and the scratch arena cover
// every intermediate. A regression here silently reintroduces GC pressure
// on the hottest loop in the repository, so it fails rather than warns.
func TestAppendZeroAllocsSteadyState(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 512, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 33, Dim: 32, Layers: 1, Heads: 4, Window: 512, Pos: PosSinusoidal, Act: nn.ReLU, PostNorm: true},
		{Vocab: 33, Dim: 32, Layers: 1, Heads: 2, Window: 512, Pos: PosNone, Act: nn.GELU, SparseStride: 4},
	} {
		m := MustNew(cfg, mathx.NewRNG(3))
		p := m.NewPredictor()
		rng := mathx.NewRNG(4)
		// A few warm-up tokens, then measure. The window (512) is far
		// larger than warm-up + measured appends, so no re-arm happens
		// inside the measurement.
		for i := 0; i < 4; i++ {
			p.Append(rng.Intn(cfg.Vocab))
		}
		allocs := testing.AllocsPerRun(300, func() {
			p.Append(rng.Intn(cfg.Vocab))
		})
		if allocs != 0 {
			t.Errorf("cfg %+v: Append allocates %v per token at steady state, want 0", cfg, allocs)
		}
	}
}

// TestCompiledCacheSharedAndInvalidated checks the compiled-view lifecycle:
// predictors share one packed snapshot, and mutating the weights through
// the sanctioned paths (InvalidateCompiled, as train.Run and
// interp.AblateHead do) makes the next predictor recompile and decode the
// new weights.
func TestCompiledCacheSharedAndInvalidated(t *testing.T) {
	cfg := Config{Vocab: 9, Dim: 16, Layers: 1, Heads: 2, Window: 8, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(11))
	p1 := m.NewPredictor()
	p2 := m.NewPredictor()
	if p1.c != p2.c {
		t.Fatal("predictors built from unchanged weights should share the compiled view")
	}
	before := append([]float64(nil), p1.Append(1)...)
	// Mutate a weight and invalidate, as every sanctioned mutator does.
	m.Output.W.Value.Data[0] += 1
	m.InvalidateCompiled()
	p3 := m.NewPredictor()
	if p3.c == p1.c {
		t.Fatal("InvalidateCompiled did not drop the cached view")
	}
	after := p3.Append(1)
	if before[0] == after[0] {
		t.Error("predictor built after invalidation still decodes the old weights")
	}
	// And the stale predictor keeps its snapshot (documented semantics).
	if got := m.NewPredictor(); got.c != p3.c {
		t.Error("rebuilt view not shared by subsequent predictors")
	}
}

// TestBatchedStepAllocsBounded bounds the batched decoding step at every
// batch size the E21 scaling benchmark sweeps: after the scratch arena has
// grown to the batch size, Step's only remaining allocations are the small
// per-call bookkeeping (map clear is free, tensor views are reused), so the
// whole step must stay within a handful of allocations regardless of batch
// size or position. Each width gets a fresh predictor so the shrink policy
// (constant batch ⇒ capacity == batch ⇒ no trim) never fires mid-measure.
func TestBatchedStepAllocsBounded(t *testing.T) {
	cfg := Config{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 600, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(5))
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		bp := m.NewBatchedPredictor()
		ids := make([]int, batch)
		toks := make([]int, batch)
		for i := range ids {
			ids[i] = bp.Add()
		}
		rng := mathx.NewRNG(6)
		step := func() {
			for i := range toks {
				toks[i] = rng.Intn(cfg.Vocab)
			}
			bp.Step(ids, toks)
		}
		for i := 0; i < 4; i++ {
			step() // warm the scratch
		}
		allocs := testing.AllocsPerRun(300, step)
		if allocs > 2 {
			t.Errorf("batch %d: BatchedPredictor.Step allocates %v per step at steady state, want <= 2", batch, allocs)
		}
	}
}

// TestBatchedScratchShrinksAfterBurst pins the scratch-retention policy: a
// burst of wide steps grows the arena to the burst size, and once the live
// batch stays well below that capacity for scratchShrinkAfter consecutive
// steps, the arena is released and regrown at the live size — a server that
// once saw a 32-wide burst must not pin 32-row scratch while decoding one
// stream. Equal or near-capacity batches must never trigger a trim (the
// steady-state zero-alloc guarantee depends on it).
func TestBatchedScratchShrinksAfterBurst(t *testing.T) {
	cfg := Config{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 2*scratchShrinkAfter + 40, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(7))
	bp := m.NewBatchedPredictor()
	const burst = 32
	ids := make([]int, burst)
	toks := make([]int, burst)
	for i := range ids {
		ids[i] = bp.Add()
	}
	for s := 0; s < 3; s++ {
		bp.Step(ids, toks[:burst])
	}
	if cap(bp.rows) < burst {
		t.Fatalf("scratch capacity %d after a %d-wide burst", cap(bp.rows), burst)
	}
	grown := cap(bp.x.Data)
	// The burst ends; one sequence keeps decoding.
	for s := 0; s < scratchShrinkAfter+1; s++ {
		bp.Step(ids[:1], toks[:1])
	}
	if cap(bp.rows) != 1 {
		t.Errorf("scratch holds %d rows after %d single-row steps, want 1", cap(bp.rows), scratchShrinkAfter+1)
	}
	if cap(bp.x.Data) >= grown {
		t.Errorf("residual scratch kept its burst capacity (%d floats)", cap(bp.x.Data))
	}
	// A batch at (or near) the live capacity never trims: capacities stay
	// put across far more than scratchShrinkAfter steps.
	bp2 := m.NewBatchedPredictor()
	ids2 := make([]int, scratchMinRows)
	for i := range ids2 {
		ids2[i] = bp2.Add()
	}
	for s := 0; s < scratchShrinkAfter+5; s++ {
		bp2.Step(ids2, toks[:len(ids2)])
	}
	if cap(bp2.rows) != scratchMinRows {
		t.Errorf("steady batch of %d saw its scratch resized to %d rows", scratchMinRows, cap(bp2.rows))
	}
}
