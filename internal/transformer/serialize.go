package transformer

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mathx"
)

// checkpoint is the on-disk form of a model: configuration plus every
// parameter tensor in Parameters() order (which is deterministic for a
// given configuration).
type checkpoint struct {
	Config  Config      `json:"config"`
	Weights [][]float64 `json:"weights"`
}

// Save writes the model (configuration + weights) as JSON.
func (m *Model) Save(w io.Writer) error {
	cp := checkpoint{Config: m.Cfg}
	for _, p := range m.Parameters() {
		cp.Weights = append(cp.Weights, append([]float64(nil), p.Value.Data...))
	}
	return json.NewEncoder(w).Encode(cp)
}

// Load reads a model saved with Save. The RNG used for construction is
// irrelevant: every parameter is overwritten by the checkpoint.
func Load(r io.Reader) (*Model, error) {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("transformer: decode checkpoint: %w", err)
	}
	m, err := New(cp.Config, mathx.NewRNG(0))
	if err != nil {
		return nil, err
	}
	params := m.Parameters()
	if len(params) != len(cp.Weights) {
		return nil, fmt.Errorf("transformer: checkpoint has %d tensors, model needs %d",
			len(cp.Weights), len(params))
	}
	for i, p := range params {
		if len(cp.Weights[i]) != p.Value.Size() {
			return nil, fmt.Errorf("transformer: tensor %d has %d values, want %d",
				i, len(cp.Weights[i]), p.Value.Size())
		}
		copy(p.Value.Data, cp.Weights[i])
	}
	return m, nil
}
