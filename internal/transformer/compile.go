package transformer

import (
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// packedMat is one projection compiled for single-token inference: the
// weight matrix transposed to output-major and then packed sixteen output
// rows at a time into the element-interleaved layout mathx.DotInterleaved16
// consumes (block b stores rows 16b..16b+15; within a block, element i of
// all sixteen rows is contiguous). Leftover rows (rows % 16) stay in plain
// transposed row-major form and are reduced with sequential mathx.Dot
// calls. Both paths accumulate every output in ascending input order, so a
// packed matVec is bitwise identical to the training-layout loop it
// replaces.
type packedMat struct {
	rows, cols int
	blocks     []float64      // (rows/16)·cols·16 interleaved elements
	tail       *tensor.Tensor // (rows%16)×cols transposed remainder, or nil
}

// packMat compiles wT (an output-major, i.e. already transposed, weight
// matrix) into the interleaved block layout.
func packMat(wT *tensor.Tensor) *packedMat {
	rows, cols := wT.Shape[0], wT.Shape[1]
	nb := rows / 16
	pm := &packedMat{rows: rows, cols: cols, blocks: make([]float64, nb*cols*16)}
	for b := 0; b < nb; b++ {
		seg := pm.blocks[b*cols*16 : (b+1)*cols*16]
		for k := 0; k < 16; k++ {
			row := wT.Row(b*16 + k)
			for i, v := range row {
				seg[i*16+k] = v
			}
		}
	}
	if rem := rows % 16; rem > 0 {
		pm.tail = tensor.New(rem, cols)
		copy(pm.tail.Data, wT.Data[nb*16*cols:])
	}
	return pm
}

// matVec writes wT·x into dst (len rows), one interleaved block — sixteen
// outputs — per kernel call.
func (pm *packedMat) matVec(dst, x []float64) {
	nb := pm.rows / 16
	for b := 0; b < nb; b++ {
		mathx.DotInterleaved16((*[16]float64)(dst[b*16:b*16+16]),
			pm.blocks[b*pm.cols*16:(b+1)*pm.cols*16], x)
	}
	if pm.tail != nil {
		base := nb * 16
		for r := 0; r < pm.tail.Shape[0]; r++ {
			dst[base+r] = mathx.Dot(pm.tail.Row(r), x)
		}
	}
}

// matMat is the batch (matrix-matrix) form of matVec: it writes wT·x_r into
// row r of dst for every row of xs (dst is rows×pm.rows, xs is rows×pm.cols).
// Weight blocks form the outer loop and batch rows the inner loop, so each
// packed block is streamed from memory once per four-row group instead of
// once per row — the locality shift that makes both chunked prefill and
// the cross-sequence decode step matrix-matrix operations. Rows are
// processed four per weight stream through the fused X4 kernel (then two,
// then one for the remainder). Per row the arithmetic is exactly matVec's
// (same lanes, same ascending accumulation), so results are bitwise
// identical to row-by-row matVec calls at any row count and any grouping.
//
// Large products fan out across GOMAXPROCS along whichever axis offers
// more parallelism while preserving the fused streaming: four-row groups
// (each worker streams every block once for its group — wide prefill
// chunks) when there are at least as many groups as blocks, weight blocks
// (each owns a disjoint sixteen-column stripe of dst, streamed exactly
// once — tall projections over small batches) otherwise. Workers never
// share outputs either way.
func (pm *packedMat) matMat(dst, xs *tensor.Tensor) {
	rows := xs.Shape[0]
	nb := pm.rows / 16
	quads := (rows + 3) / 4
	work := rows * pm.rows * pm.cols
	switch {
	case quads >= nb && parallelRows(quads, work):
		rowParallel(quads, func(g int) {
			lo := g * 4
			for b := 0; b < nb; b++ {
				pm.matMatBlock(b, dst, xs, lo, min(lo+4, rows))
			}
		})
	case parallelRows(nb, work):
		rowParallel(nb, func(b int) { pm.matMatBlock(b, dst, xs, 0, rows) })
	default:
		for b := 0; b < nb; b++ {
			pm.matMatBlock(b, dst, xs, 0, rows)
		}
	}
	if pm.tail != nil {
		base := nb * 16
		for tr := 0; tr < pm.tail.Shape[0]; tr++ {
			trow := pm.tail.Row(tr)
			for r := 0; r < rows; r++ {
				dst.Row(r)[base+tr] = mathx.Dot(trow, xs.Row(r))
			}
		}
	}
}

// matMatBlock runs one packed weight block over rows [lo, hi) of xs, four
// rows per weight stream, then two, then one.
func (pm *packedMat) matMatBlock(b int, dst, xs *tensor.Tensor, lo, hi int) {
	blk := pm.blocks[b*pm.cols*16 : (b+1)*pm.cols*16]
	r := lo
	for ; r+4 <= hi; r += 4 {
		mathx.DotInterleaved16X4(
			(*[16]float64)(dst.Row(r)[b*16:b*16+16]),
			(*[16]float64)(dst.Row(r + 1)[b*16:b*16+16]),
			(*[16]float64)(dst.Row(r + 2)[b*16:b*16+16]),
			(*[16]float64)(dst.Row(r + 3)[b*16:b*16+16]),
			blk, xs.Row(r), xs.Row(r+1), xs.Row(r+2), xs.Row(r+3))
	}
	for ; r+2 <= hi; r += 2 {
		mathx.DotInterleaved16X2(
			(*[16]float64)(dst.Row(r)[b*16:b*16+16]),
			(*[16]float64)(dst.Row(r + 1)[b*16:b*16+16]),
			blk, xs.Row(r), xs.Row(r+1))
	}
	for ; r < hi; r++ {
		mathx.DotInterleaved16((*[16]float64)(dst.Row(r)[b*16:b*16+16]), blk, xs.Row(r))
	}
}

// compiledLayer is one block's weights packed for single-token inference.
// The Q/K/V projections of all heads are stacked into one Dim-output matrix
// each, rows grouped head-major: output h·hd+r is output r of head h, so a
// single packed matVec produces the concatenated per-head vectors the
// attention step consumes.
type compiledLayer struct {
	wq, wk, wv *packedMat // Dim outputs each, head-stacked
	wo         *packedMat // Dim outputs
	ffnIn      *packedMat // Hidden outputs
	ffnOut     *packedMat // Dim outputs
	ffnInB     []float64  // views of the live bias tensors
	ffnOutB    []float64
}

// compiledModel is the inference-compiled view of a Model: packed projection
// layouts for every block plus the unembedding. Biases and layer-norm
// parameters are aliased, not copied — only matrix layouts change.
type compiledModel struct {
	layers []compiledLayer
	out    *packedMat // Vocab outputs
	outB   []float64
}

// compile returns the packed inference view of m's weights, building it on
// first use and sharing it across predictors (serving creates a predictor
// per request; repacking identical weights each time would dominate short
// generations). The view snapshots the matrix weights: training through
// train.Run invalidates the cache (see InvalidateCompiled), so predictors
// built after a run see the trained weights, while predictors built before
// keep decoding against the weights they were compiled from. Code that
// mutates weight tensors directly must call InvalidateCompiled itself.
func (m *Model) compile() *compiledModel {
	m.compiledMu.Lock()
	defer m.compiledMu.Unlock()
	if m.compiledCache == nil {
		m.compiledCache = m.buildCompiled()
	}
	return m.compiledCache
}

// InvalidateCompiled drops the cached inference view; the next predictor
// re-packs the current weights. train.Run calls it after every run.
func (m *Model) InvalidateCompiled() {
	m.compiledMu.Lock()
	m.compiledCache = nil
	m.compiledMu.Unlock()
}

// buildCompiled packs every weight matrix for the decode fast path.
func (m *Model) buildCompiled() *compiledModel {
	hd := m.Cfg.Dim / m.Cfg.Heads
	c := &compiledModel{
		layers: make([]compiledLayer, len(m.Blocks)),
		out:    packMat(tensor.TransposePack(m.Output.W.Value)),
		outB:   m.Output.B.Value.Row(0),
	}
	for li, b := range m.Blocks {
		cl := &c.layers[li]
		cl.wq = packMat(packHeads(b.Attn.heads, hd, m.Cfg.Dim, func(h *head) *nn.Linear { return h.Wq }))
		cl.wk = packMat(packHeads(b.Attn.heads, hd, m.Cfg.Dim, func(h *head) *nn.Linear { return h.Wk }))
		cl.wv = packMat(packHeads(b.Attn.heads, hd, m.Cfg.Dim, func(h *head) *nn.Linear { return h.Wv }))
		cl.wo = packMat(tensor.TransposePack(b.Attn.Wo.W.Value))
		cl.ffnIn = packMat(tensor.TransposePack(b.FFN.In.W.Value))
		cl.ffnOut = packMat(tensor.TransposePack(b.FFN.Out.W.Value))
		cl.ffnInB = b.FFN.In.B.Value.Row(0)
		cl.ffnOutB = b.FFN.Out.B.Value.Row(0)
	}
	return c
}

// packHeads stacks the transposed per-head projection matrices (each Dim×hd
// in training layout) into one (heads·hd)×Dim matrix, head-major.
func packHeads(heads []*head, hd, dim int, pick func(*head) *nn.Linear) *tensor.Tensor {
	out := tensor.New(len(heads)*hd, dim)
	for hi, h := range heads {
		t := tensor.TransposePack(pick(h).W.Value)
		copy(out.Data[hi*hd*dim:(hi+1)*hd*dim], t.Data)
	}
	return out
}
