package transformer

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BatchedPredictor performs autoregressive inference for many sequences at
// once over the same model, batching the dense work (Q/K/V/output
// projections, FFN, unembedding) of one decoding step across sequences into
// matrix multiplies while keeping an independent per-sequence KV cache.
// Sequences join (Add) and leave (Drop) the batch at any step, which is what
// the serving front end's continuous batching relies on.
//
// The step is cross-sequence GEMM work: every dense projection runs as one
// packedMat.matMat sweep with the batch's residual rows as the right-hand
// matrix, so each sixteen-row weight block is streamed from memory exactly
// once per step regardless of batch size (four rows per stream through the
// fused mathx.DotInterleaved16X4 kernel). Per-sequence attention reads the
// same incrementally maintained interleaved key packs the chunked prefill
// uses, sixteen keys per kernel call. Per-row arithmetic is
// Predictor.Append's operation for operation — same kernels, same
// accumulation orders — so the logits for a sequence are bitwise identical
// to running it alone through a Predictor.
//
// Like Predictor, the batched path avoids per-step churn: each sequence's
// KV cache is preallocated to the window at Add, and all step intermediates
// (projections, residuals, logits) live in a scratch arena reused across
// Step calls. The arena grows to the largest live batch and is released
// again when the batch stays well below that high-water mark (see
// trimScratch), so a burst does not pin its peak footprint forever.
//
// A BatchedPredictor reads model weights and is not safe for concurrent use;
// the serving loop owns one and is the sole caller.
type BatchedPredictor struct {
	m    *Model
	c    *compiledModel
	seqs map[int]*batchSeq
	next int

	// Step scratch, grown to the largest batch seen and reused; overCap
	// counts consecutive steps far below capacity (the shrink hysteresis).
	rows    []*batchSeq
	seen    map[int]bool
	overCap int
	x       *tensor.Tensor // embeddings / residual stream (batch×Dim)
	norm    *tensor.Tensor // layer-norm output (batch×Dim)
	q       *tensor.Tensor // all heads' queries, head-major (batch×Dim)
	k       *tensor.Tensor // all heads' keys (batch×Dim)
	v       *tensor.Tensor // all heads' values (batch×Dim)
	concat  *tensor.Tensor // concatenated head outputs (batch×Dim)
	attnOut *tensor.Tensor // attention / FFN output (batch×Dim)
	hidden  *tensor.Tensor // FFN hidden (batch×Hidden)
	logits  *tensor.Tensor // unembedding output (batch×Vocab)
	out     [][]float64    // per-sequence logit views handed to the caller
	scores  []float64      // per-head attention scores (Window)
	smax    []float64      // softmax scratch (Window)

	// Prefill logits buffer, created on first Prefill and reused (the
	// chunk scratch itself is pooled on the model).
	pfLogits []float64

	// Verification scratch for PrefillAll, created on first use and reused:
	// per-position logits and the row views handed to the caller.
	pfAll    *tensor.Tensor
	pfAllOut [][]float64
}

// batchSeq is one sequence's decoding state: positions processed so far and
// the per-layer, per-head KV cache, preallocated to the model window (rows
// [0, n) are valid), plus the interleaved key packs maintained alongside
// the key rows (see packKeyRow).
type batchSeq struct {
	n      int
	keys   [][]*tensor.Tensor
	vals   [][]*tensor.Tensor
	kpacks [][][]float64
}

// NewBatchedPredictor compiles m's weights (the same packed layouts
// Predictor uses) and returns an empty batch over them. Like NewPredictor,
// the compile step snapshots the matrix weights at call time.
func (m *Model) NewBatchedPredictor() *BatchedPredictor {
	return &BatchedPredictor{
		m:      m,
		c:      m.compile(),
		seqs:   map[int]*batchSeq{},
		seen:   map[int]bool{},
		scores: make([]float64, m.Cfg.Window),
		smax:   make([]float64, m.Cfg.Window),
	}
}

// Add registers a new empty sequence and returns its handle.
func (bp *BatchedPredictor) Add() int {
	m := bp.m
	hd := m.Cfg.Dim / m.Cfg.Heads
	s := &batchSeq{
		keys:   make([][]*tensor.Tensor, len(m.Blocks)),
		vals:   make([][]*tensor.Tensor, len(m.Blocks)),
		kpacks: make([][][]float64, len(m.Blocks)),
	}
	for i, b := range m.Blocks {
		s.keys[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		s.vals[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		s.kpacks[i] = make([][]float64, b.Attn.NumHeads())
		for h := range s.keys[i] {
			s.keys[i][h] = tensor.New(m.Cfg.Window, hd)
			s.vals[i][h] = tensor.New(m.Cfg.Window, hd)
			s.kpacks[i][h] = make([]float64, m.Cfg.keyPackLen(hd))
		}
	}
	id := bp.next
	bp.next++
	bp.seqs[id] = s
	return id
}

// Drop releases a sequence and its KV cache.
func (bp *BatchedPredictor) Drop(id int) { delete(bp.seqs, id) }

// Size returns the number of registered sequences.
func (bp *BatchedPredictor) Size() int { return len(bp.seqs) }

// Len returns the number of positions processed for sequence id.
func (bp *BatchedPredictor) Len(id int) int {
	s := bp.seqs[id]
	if s == nil {
		panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
	}
	return s.n
}

// Scratch-retention policy: the step arena tracks the largest batch seen,
// which after a traffic burst can dwarf the steady batch. When the live
// batch has stayed at or below capacity/scratchShrinkFactor for
// scratchShrinkAfter consecutive steps, the arena is released and regrown
// at the live size; tiny arenas (≤ scratchMinRows rows) are never worth
// reclaiming. The hysteresis keeps an oscillating load from thrashing
// between shrink and regrowth.
const (
	scratchShrinkFactor = 4
	scratchShrinkAfter  = 64
	scratchMinRows      = 8
)

// trimScratch applies the retention policy above before a step of the given
// batch size; the following ensure calls regrow at the live size.
func (bp *BatchedPredictor) trimScratch(batch int) {
	if cap(bp.rows) <= scratchMinRows || batch*scratchShrinkFactor > cap(bp.rows) {
		bp.overCap = 0
		return
	}
	if bp.overCap++; bp.overCap < scratchShrinkAfter {
		return
	}
	bp.overCap = 0
	bp.rows, bp.out = nil, nil
	bp.x, bp.norm, bp.q, bp.k, bp.v = nil, nil, nil, nil, nil
	bp.concat, bp.attnOut, bp.hidden, bp.logits = nil, nil, nil, nil
}

// rowParallelWork is the per-call flop count above which a per-row sweep
// fans out across goroutines (matches tensor.MatMul's threshold scale).
const rowParallelWork = 64 * 64 * 64

// parallelRows reports whether a per-row sweep of the given total flop
// count should fan out. Call sites keep a plain inline loop for the serial
// case so the steady-state single-core path allocates nothing (a closure
// passed to rowParallel escapes to the heap).
func parallelRows(n, work int) bool {
	return runtime.GOMAXPROCS(0) >= 2 && n >= 2 && work >= rowParallelWork
}

// rowParallel runs f(i) for every row i in [0, n) across GOMAXPROCS
// goroutines; callers gate on parallelRows. Each row writes only its own
// outputs, so the result is identical to the serial loop at any worker
// count.
func rowParallel(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Step feeds one token per listed sequence and returns next-position logits
// aligned with ids. Sequences not listed stay untouched, which lets callers
// prefill a newly admitted request while others are mid-decode. It panics on
// an unknown or duplicated id, and when a sequence's window is exhausted.
//
// The returned rows are views into the predictor's step scratch: they are
// valid until the next Step call (the serving loop and every decoding
// driver consume them immediately). Clone a row to retain it.
func (bp *BatchedPredictor) Step(ids []int, tokens []int) [][]float64 {
	m := bp.m
	if len(ids) != len(tokens) {
		panic("transformer: BatchedPredictor.Step ids/tokens length mismatch")
	}
	if len(ids) == 0 {
		return nil
	}
	batch := len(ids)
	bp.trimScratch(batch)
	if cap(bp.rows) < batch {
		bp.rows = make([]*batchSeq, batch)
		bp.out = make([][]float64, batch)
	}
	seqs := bp.rows[:batch]
	clear(bp.seen)
	for i, id := range ids {
		s := bp.seqs[id]
		if s == nil {
			panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
		}
		if bp.seen[id] {
			panic(fmt.Sprintf("transformer: sequence %d listed twice in one step", id))
		}
		bp.seen[id] = true
		if s.n >= m.Cfg.Window {
			panic("transformer: predictor window exhausted")
		}
		seqs[i] = s
	}
	// Embed the step's tokens: one row per sequence, at that sequence's
	// own position.
	x := tensor.Ensure(&bp.x, batch, m.Cfg.Dim)
	for i, s := range seqs {
		row := x.Row(i)
		copy(row, m.TokEmb.W.Value.Row(tokens[i]))
		switch m.Cfg.Pos {
		case PosLearned:
			for j, v := range m.PosTable.Value.Row(s.n) {
				row[j] += v
			}
		case PosSinusoidal:
			for j, v := range m.sinTable.Row(s.n) {
				row[j] += v
			}
		}
	}
	for li, b := range m.Blocks {
		bp.blockStepBatch(li, b, x, seqs)
	}
	layerNormRowsInto(x, x, m.FinalNorm)
	// Unembedding as one blocked sweep: the vocab projection — the largest
	// matrix in the model — streams once for the whole batch.
	logits := tensor.Ensure(&bp.logits, batch, m.Cfg.Vocab)
	bp.c.out.matMat(logits, x)
	out := bp.out[:batch]
	for i := 0; i < batch; i++ {
		row := logits.Row(i)
		for o, bv := range bp.c.outB {
			row[o] += bv
		}
		out[i] = row
	}
	for _, s := range seqs {
		s.n++
	}
	return out
}

// blockStepBatch advances one block over the residual stream in x, in place.
// It is the cross-sequence form of Predictor.blockStep: the five dense
// projections run as blocked matrix-matrix sweeps over all batch rows
// (weights streamed once per step), and per-sequence attention scores
// sixteen keys per kernel call against each sequence's interleaved key
// pack. Row for row the arithmetic matches blockStep's bitwise.
func (bp *BatchedPredictor) blockStepBatch(li int, b *Block, x *tensor.Tensor, seqs []*batchSeq) {
	m := bp.m
	cl := &bp.c.layers[li]
	hd := m.Cfg.Dim / m.Cfg.Heads
	batch := x.Shape[0]
	attnIn := x
	if !b.postNorm {
		attnIn = layerNormRowsInto(tensor.Ensure(&bp.norm, batch, m.Cfg.Dim), x, b.LN1)
	}
	// All heads' Q/K/V projections: three blocked sweeps shared by every
	// sequence row.
	q := tensor.Ensure(&bp.q, batch, m.Cfg.Dim)
	k := tensor.Ensure(&bp.k, batch, m.Cfg.Dim)
	v := tensor.Ensure(&bp.v, batch, m.Cfg.Dim)
	cl.wq.matMat(q, attnIn)
	cl.wk.matMat(k, attnIn)
	cl.wv.matMat(v, attnIn)
	concat := tensor.Ensure(&bp.concat, batch, m.Cfg.Dim)
	scale := 1 / math.Sqrt(float64(hd))
	stride := m.Cfg.SparseStride
	for hi := range b.Attn.heads {
		for i, s := range seqs {
			kc, vc := s.keys[li][hi], s.vals[li][hi]
			pos := s.n
			krow := k.Row(i)[hi*hd : (hi+1)*hd]
			copy(kc.Row(pos), krow)
			packKeyRow(s.kpacks[li][hi], krow, pos)
			copy(vc.Row(pos), v.Row(i)[hi*hd:(hi+1)*hd])
			qh := q.Row(i)[hi*hd : (hi+1)*hd]
			scores := bp.scores[:pos+1]
			if stride > 0 {
				for j := 0; j <= pos; j++ {
					if pos-j >= stride && j%stride != 0 {
						scores[j] = math.Inf(-1)
						continue
					}
					scores[j] = mathx.Dot(qh, kc.Row(j)) * scale
				}
			} else {
				packedAttnScores(bp.scores, qh, s.kpacks[li][hi], kc, pos, scale)
			}
			w := mathx.SoftmaxFastInto(scores, scores, bp.smax, 1)
			out := concat.Row(i)[hi*hd : (hi+1)*hd]
			weightedValueSum(out, vc, w, pos, hd)
		}
	}
	attnOut := tensor.Ensure(&bp.attnOut, batch, m.Cfg.Dim)
	cl.wo.matMat(attnOut, concat)
	addRows(x, attnOut, batch)
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN1)
	}
	ffnIn := x
	if !b.postNorm {
		ffnIn = layerNormRowsInto(tensor.Ensure(&bp.norm, batch, m.Cfg.Dim), x, b.LN2)
	}
	h := tensor.Ensure(&bp.hidden, batch, m.Cfg.Hidden)
	cl.ffnIn.matMat(h, ffnIn)
	for i := 0; i < batch; i++ {
		row := h.Row(i)
		for j, bv := range cl.ffnInB {
			row[j] += bv
		}
	}
	// One vectorized activation sweep over the whole batch's hidden rows
	// (contiguous storage), elementwise bitwise-identical to actScalar.
	actInto(b.FFN.Act, h.Data[:batch*m.Cfg.Hidden])
	ffnOut := tensor.Ensure(&bp.attnOut, batch, m.Cfg.Dim)
	cl.ffnOut.matMat(ffnOut, h)
	for i := 0; i < batch; i++ {
		row := ffnOut.Row(i)
		for j, bv := range cl.ffnOutB {
			row[j] += bv
		}
	}
	addRows(x, ffnOut, batch)
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN2)
	}
}

// layerNormRowsInto applies the inference-path layer norm row-by-row into
// dst (which may alias x), reusing the same per-vector kernel as Predictor
// so batched and unbatched decoding agree bitwise.
func layerNormRowsInto(dst, x *tensor.Tensor, ln *nn.LayerNorm) *tensor.Tensor {
	for i := 0; i < x.Shape[0]; i++ {
		layerNormInto(dst.Row(i), x.Row(i), ln)
	}
	return dst
}
