package transformer

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BatchedPredictor performs autoregressive inference for many sequences at
// once over the same model, batching the dense work (Q/K/V/output
// projections, FFN, unembedding) of one decoding step across sequences into
// matrix multiplies while keeping an independent per-sequence KV cache.
// Sequences join (Add) and leave (Drop) the batch at any step, which is what
// the serving front end's continuous batching relies on.
//
// Every step reproduces Predictor.Append's arithmetic operation-for-
// operation, so the logits for a sequence are bitwise identical to running
// it alone through a Predictor: NewBatchedPredictor runs the same inference
// compile step, and every dense projection goes through the same packed
// kernels row by row; per-sequence attention over the KV cache stays
// sequential per row.
//
// Like Predictor, the batched path avoids per-step churn: each sequence's
// KV cache is preallocated to the window at Add, and all step intermediates
// (projections, residuals, logits) live in a scratch arena reused across
// Step calls. Rows are independent through every dense projection, so the
// per-row packed sweeps fan out across GOMAXPROCS when the step is large
// enough to amortize scheduling — output order per row is untouched, so
// results stay bitwise identical at any worker count.
//
// A BatchedPredictor reads model weights and is not safe for concurrent use;
// the serving loop owns one and is the sole caller.
type BatchedPredictor struct {
	m    *Model
	c    *compiledModel
	seqs map[int]*batchSeq
	next int

	// Step scratch, grown to the largest batch seen and reused.
	rows    []*batchSeq
	seen    map[int]bool
	x       *tensor.Tensor // embeddings / residual stream (batch×Dim)
	norm    *tensor.Tensor // layer-norm output (batch×Dim)
	q       *tensor.Tensor // all heads' queries, head-major (batch×Dim)
	k       *tensor.Tensor // all heads' keys (batch×Dim)
	v       *tensor.Tensor // all heads' values (batch×Dim)
	concat  *tensor.Tensor // concatenated head outputs (batch×Dim)
	attnOut *tensor.Tensor // attention / FFN output (batch×Dim)
	hidden  *tensor.Tensor // FFN hidden (batch×Hidden)
	logits  *tensor.Tensor // unembedding output (batch×Vocab)
	out     [][]float64    // per-sequence logit views handed to the caller
	scores  []float64      // per-head attention scores (Window)

	// Prefill logits buffer, created on first Prefill and reused (the
	// chunk scratch itself is pooled on the model).
	pfLogits []float64
}

// batchSeq is one sequence's decoding state: positions processed so far and
// the per-layer, per-head KV cache, preallocated to the model window (rows
// [0, n) are valid).
type batchSeq struct {
	n    int
	keys [][]*tensor.Tensor
	vals [][]*tensor.Tensor
}

// NewBatchedPredictor compiles m's weights (the same packed layouts
// Predictor uses) and returns an empty batch over them. Like NewPredictor,
// the compile step snapshots the matrix weights at call time.
func (m *Model) NewBatchedPredictor() *BatchedPredictor {
	return &BatchedPredictor{
		m:      m,
		c:      m.compile(),
		seqs:   map[int]*batchSeq{},
		seen:   map[int]bool{},
		scores: make([]float64, m.Cfg.Window),
	}
}

// Add registers a new empty sequence and returns its handle.
func (bp *BatchedPredictor) Add() int {
	m := bp.m
	hd := m.Cfg.Dim / m.Cfg.Heads
	s := &batchSeq{
		keys: make([][]*tensor.Tensor, len(m.Blocks)),
		vals: make([][]*tensor.Tensor, len(m.Blocks)),
	}
	for i, b := range m.Blocks {
		s.keys[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		s.vals[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		for h := range s.keys[i] {
			s.keys[i][h] = tensor.New(m.Cfg.Window, hd)
			s.vals[i][h] = tensor.New(m.Cfg.Window, hd)
		}
	}
	id := bp.next
	bp.next++
	bp.seqs[id] = s
	return id
}

// Drop releases a sequence and its KV cache.
func (bp *BatchedPredictor) Drop(id int) { delete(bp.seqs, id) }

// Size returns the number of registered sequences.
func (bp *BatchedPredictor) Size() int { return len(bp.seqs) }

// Len returns the number of positions processed for sequence id.
func (bp *BatchedPredictor) Len(id int) int {
	s := bp.seqs[id]
	if s == nil {
		panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
	}
	return s.n
}

// ensure resizes a scratch tensor view to rows×cols, reusing its backing
// array when capacity allows.
func ensure(t **tensor.Tensor, rows, cols int) *tensor.Tensor {
	if *t == nil || cap((*t).Data) < rows*cols {
		*t = tensor.New(rows, cols)
		return *t
	}
	(*t).Shape[0], (*t).Shape[1] = rows, cols
	(*t).Data = (*t).Data[:rows*cols]
	return *t
}

// rowParallelWork is the per-call flop count above which a per-row sweep
// fans out across goroutines (matches tensor.MatMul's threshold scale).
const rowParallelWork = 64 * 64 * 64

// parallelRows reports whether a per-row sweep of the given total flop
// count should fan out. Call sites keep a plain inline loop for the serial
// case so the steady-state single-core path allocates nothing (a closure
// passed to rowParallel escapes to the heap).
func parallelRows(n, work int) bool {
	return runtime.GOMAXPROCS(0) >= 2 && n >= 2 && work >= rowParallelWork
}

// rowParallel runs f(i) for every row i in [0, n) across GOMAXPROCS
// goroutines; callers gate on parallelRows. Each row writes only its own
// outputs, so the result is identical to the serial loop at any worker
// count.
func rowParallel(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Step feeds one token per listed sequence and returns next-position logits
// aligned with ids. Sequences not listed stay untouched, which lets callers
// prefill a newly admitted request while others are mid-decode. It panics on
// an unknown or duplicated id, and when a sequence's window is exhausted.
//
// The returned rows are views into the predictor's step scratch: they are
// valid until the next Step call (the serving loop and every decoding
// driver consume them immediately). Clone a row to retain it.
func (bp *BatchedPredictor) Step(ids []int, tokens []int) [][]float64 {
	m := bp.m
	if len(ids) != len(tokens) {
		panic("transformer: BatchedPredictor.Step ids/tokens length mismatch")
	}
	if len(ids) == 0 {
		return nil
	}
	batch := len(ids)
	if cap(bp.rows) < batch {
		bp.rows = make([]*batchSeq, batch)
		bp.out = make([][]float64, batch)
	}
	seqs := bp.rows[:batch]
	clear(bp.seen)
	for i, id := range ids {
		s := bp.seqs[id]
		if s == nil {
			panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
		}
		if bp.seen[id] {
			panic(fmt.Sprintf("transformer: sequence %d listed twice in one step", id))
		}
		bp.seen[id] = true
		if s.n >= m.Cfg.Window {
			panic("transformer: predictor window exhausted")
		}
		seqs[i] = s
	}
	// Embed the step's tokens: one row per sequence, at that sequence's
	// own position.
	x := ensure(&bp.x, batch, m.Cfg.Dim)
	for i, s := range seqs {
		row := x.Row(i)
		copy(row, m.TokEmb.W.Value.Row(tokens[i]))
		switch m.Cfg.Pos {
		case PosLearned:
			for j, v := range m.PosTable.Value.Row(s.n) {
				row[j] += v
			}
		case PosSinusoidal:
			for j, v := range m.sinTable.Row(s.n) {
				row[j] += v
			}
		}
	}
	for li, b := range m.Blocks {
		bp.blockStepBatch(li, b, x, seqs)
	}
	layerNormRowsInto(x, x, m.FinalNorm)
	logits := ensure(&bp.logits, batch, m.Cfg.Vocab)
	out := bp.out[:batch]
	// The serial branches below inline the row bodies rather than calling a
	// shared closure: a closure that is ever passed to rowParallel escapes
	// and would cost one heap allocation per step even on the serial path.
	if parallelRows(batch, batch*m.Cfg.Vocab*m.Cfg.Dim) {
		rowParallel(batch, func(i int) {
			row := logits.Row(i)
			bp.c.out.matVec(row, x.Row(i))
			for o, bv := range bp.c.outB {
				row[o] += bv
			}
			out[i] = row
		})
	} else {
		for i := 0; i < batch; i++ {
			row := logits.Row(i)
			bp.c.out.matVec(row, x.Row(i))
			for o, bv := range bp.c.outB {
				row[o] += bv
			}
			out[i] = row
		}
	}
	for _, s := range seqs {
		s.n++
	}
	return out
}

// blockStepBatch advances one block over the residual stream in x, in place.
func (bp *BatchedPredictor) blockStepBatch(li int, b *Block, x *tensor.Tensor, seqs []*batchSeq) {
	m := bp.m
	cl := &bp.c.layers[li]
	hd := m.Cfg.Dim / m.Cfg.Heads
	batch := x.Shape[0]
	attnIn := x
	if !b.postNorm {
		attnIn = layerNormRowsInto(ensure(&bp.norm, batch, m.Cfg.Dim), x, b.LN1)
	}
	// All heads' Q/K/V projections, one packed sweep per sequence row.
	q := ensure(&bp.q, batch, m.Cfg.Dim)
	k := ensure(&bp.k, batch, m.Cfg.Dim)
	v := ensure(&bp.v, batch, m.Cfg.Dim)
	// Serial branches inline the row bodies: a closure passed to
	// rowParallel escapes and would allocate per step (see Step).
	if parallelRows(batch, batch*3*m.Cfg.Dim*m.Cfg.Dim) {
		rowParallel(batch, func(i int) {
			in := attnIn.Row(i)
			cl.wq.matVec(q.Row(i), in)
			cl.wk.matVec(k.Row(i), in)
			cl.wv.matVec(v.Row(i), in)
		})
	} else {
		for i := 0; i < batch; i++ {
			in := attnIn.Row(i)
			cl.wq.matVec(q.Row(i), in)
			cl.wk.matVec(k.Row(i), in)
			cl.wv.matVec(v.Row(i), in)
		}
	}
	concat := ensure(&bp.concat, batch, m.Cfg.Dim)
	scale := 1 / math.Sqrt(float64(hd))
	stride := m.Cfg.SparseStride
	for hi := range b.Attn.heads {
		for i, s := range seqs {
			kc, vc := s.keys[li][hi], s.vals[li][hi]
			pos := s.n
			copy(kc.Row(pos), k.Row(i)[hi*hd:(hi+1)*hd])
			copy(vc.Row(pos), v.Row(i)[hi*hd:(hi+1)*hd])
			qh := q.Row(i)[hi*hd : (hi+1)*hd]
			scores := bp.scores[:pos+1]
			if stride > 0 {
				for j := 0; j <= pos; j++ {
					if pos-j >= stride && j%stride != 0 {
						scores[j] = math.Inf(-1)
						continue
					}
					scores[j] = mathx.Dot(qh, kc.Row(j)) * scale
				}
			} else {
				attnScores(scores, qh, kc, pos, scale)
			}
			w := mathx.SoftmaxInto(scores, scores, 1)
			out := concat.Row(i)[hi*hd : (hi+1)*hd]
			weightedValueSum(out, vc, w, pos, hd)
		}
	}
	attnOut := ensure(&bp.attnOut, batch, m.Cfg.Dim)
	if parallelRows(batch, batch*m.Cfg.Dim*m.Cfg.Dim) {
		rowParallel(batch, func(i int) { cl.wo.matVec(attnOut.Row(i), concat.Row(i)) })
	} else {
		for i := 0; i < batch; i++ {
			cl.wo.matVec(attnOut.Row(i), concat.Row(i))
		}
	}
	for i := 0; i < batch; i++ {
		xr, ar := x.Row(i), attnOut.Row(i)
		for d := range xr {
			xr[d] += ar[d]
		}
	}
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN1)
	}
	ffnIn := x
	if !b.postNorm {
		ffnIn = layerNormRowsInto(ensure(&bp.norm, batch, m.Cfg.Dim), x, b.LN2)
	}
	h := ensure(&bp.hidden, batch, m.Cfg.Hidden)
	if parallelRows(batch, batch*m.Cfg.Dim*m.Cfg.Hidden) {
		rowParallel(batch, func(i int) {
			row := h.Row(i)
			cl.ffnIn.matVec(row, ffnIn.Row(i))
			for j, bv := range cl.ffnInB {
				row[j] += bv
			}
			for j, hv := range row {
				row[j] = actScalar(b.FFN.Act, hv)
			}
		})
	} else {
		for i := 0; i < batch; i++ {
			row := h.Row(i)
			cl.ffnIn.matVec(row, ffnIn.Row(i))
			for j, bv := range cl.ffnInB {
				row[j] += bv
			}
			for j, hv := range row {
				row[j] = actScalar(b.FFN.Act, hv)
			}
		}
	}
	ffnOut := ensure(&bp.attnOut, batch, m.Cfg.Dim)
	if parallelRows(batch, batch*m.Cfg.Dim*m.Cfg.Hidden) {
		rowParallel(batch, func(i int) {
			fr := ffnOut.Row(i)
			cl.ffnOut.matVec(fr, h.Row(i))
			xr := x.Row(i)
			for j, bv := range cl.ffnOutB {
				fr[j] += bv
			}
			for d := range xr {
				xr[d] += fr[d]
			}
		})
	} else {
		for i := 0; i < batch; i++ {
			fr := ffnOut.Row(i)
			cl.ffnOut.matVec(fr, h.Row(i))
			xr := x.Row(i)
			for j, bv := range cl.ffnOutB {
				fr[j] += bv
			}
			for d := range xr {
				xr[d] += fr[d]
			}
		}
	}
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN2)
	}
}

// layerNormRowsInto applies the inference-path layer norm row-by-row into
// dst (which may alias x), reusing the same per-vector kernel as Predictor
// so batched and unbatched decoding agree bitwise.
func layerNormRowsInto(dst, x *tensor.Tensor, ln *nn.LayerNorm) *tensor.Tensor {
	for i := 0; i < x.Shape[0]; i++ {
		layerNormInto(dst.Row(i), x.Row(i), ln)
	}
	return dst
}
