package transformer

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BatchedPredictor performs autoregressive inference for many sequences at
// once over the same model, batching the dense work (Q/K/V/output
// projections, FFN, unembedding) of one decoding step across sequences into
// matrix multiplies while keeping an independent per-sequence KV cache.
// Sequences join (Add) and leave (Drop) the batch at any step, which is what
// the serving front end's continuous batching relies on.
//
// Every step reproduces Predictor.Append's arithmetic operation-for-
// operation, so the logits for a sequence are bitwise identical to running
// it alone through a Predictor. The batch win is cache locality and — with
// GOMAXPROCS > 1 — the parallel matmul kernels; per-sequence attention over
// the KV cache stays sequential per row.
//
// A BatchedPredictor reads model weights and is not safe for concurrent use;
// the serving loop owns one and is the sole caller.
type BatchedPredictor struct {
	m    *Model
	seqs map[int]*batchSeq
	next int
}

// batchSeq is one sequence's decoding state: positions processed so far and
// the per-layer, per-head KV cache (one row per position).
type batchSeq struct {
	n    int
	keys [][]*tensor.Tensor
	vals [][]*tensor.Tensor
}

// NewBatchedPredictor creates an empty batch over m.
func (m *Model) NewBatchedPredictor() *BatchedPredictor {
	return &BatchedPredictor{m: m, seqs: map[int]*batchSeq{}}
}

// Add registers a new empty sequence and returns its handle.
func (bp *BatchedPredictor) Add() int {
	m := bp.m
	hd := m.Cfg.Dim / m.Cfg.Heads
	s := &batchSeq{
		keys: make([][]*tensor.Tensor, len(m.Blocks)),
		vals: make([][]*tensor.Tensor, len(m.Blocks)),
	}
	for i, b := range m.Blocks {
		s.keys[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		s.vals[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		for h := range s.keys[i] {
			s.keys[i][h] = tensor.New(0, hd)
			s.vals[i][h] = tensor.New(0, hd)
		}
	}
	id := bp.next
	bp.next++
	bp.seqs[id] = s
	return id
}

// Drop releases a sequence and its KV cache.
func (bp *BatchedPredictor) Drop(id int) { delete(bp.seqs, id) }

// Size returns the number of registered sequences.
func (bp *BatchedPredictor) Size() int { return len(bp.seqs) }

// Len returns the number of positions processed for sequence id.
func (bp *BatchedPredictor) Len(id int) int {
	s := bp.seqs[id]
	if s == nil {
		panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
	}
	return s.n
}

// Step feeds one token per listed sequence and returns next-position logits
// aligned with ids. Sequences not listed stay untouched, which lets callers
// prefill a newly admitted request while others are mid-decode. It panics on
// an unknown or duplicated id, and when a sequence's window is exhausted.
func (bp *BatchedPredictor) Step(ids []int, tokens []int) [][]float64 {
	m := bp.m
	if len(ids) != len(tokens) {
		panic("transformer: BatchedPredictor.Step ids/tokens length mismatch")
	}
	if len(ids) == 0 {
		return nil
	}
	batch := len(ids)
	seqs := make([]*batchSeq, batch)
	seen := make(map[int]bool, batch)
	for i, id := range ids {
		s := bp.seqs[id]
		if s == nil {
			panic(fmt.Sprintf("transformer: unknown batch sequence %d", id))
		}
		if seen[id] {
			panic(fmt.Sprintf("transformer: sequence %d listed twice in one step", id))
		}
		seen[id] = true
		if s.n >= m.Cfg.Window {
			panic("transformer: predictor window exhausted")
		}
		seqs[i] = s
	}
	// Embed the step's tokens: one row per sequence, at that sequence's
	// own position.
	x := tensor.GatherRows(m.TokEmb.W.Value, tokens)
	for i, s := range seqs {
		row := x.Row(i)
		switch m.Cfg.Pos {
		case PosLearned:
			for j, v := range m.PosTable.Value.Row(s.n) {
				row[j] += v
			}
		case PosSinusoidal:
			for j, v := range m.sinTable.Row(s.n) {
				row[j] += v
			}
		}
	}
	for li, b := range m.Blocks {
		x = bp.blockStepBatch(li, b, x, seqs)
	}
	x = layerNormRows(x, m.FinalNorm)
	logits := tensor.MatMul(x, m.Output.W.Value)
	obias := m.Output.B.Value.Row(0)
	out := make([][]float64, batch)
	for i := range out {
		row := logits.Row(i)
		for o, bv := range obias {
			row[o] += bv
		}
		out[i] = row
	}
	for _, s := range seqs {
		s.n++
	}
	return out
}

func (bp *BatchedPredictor) blockStepBatch(li int, b *Block, x *tensor.Tensor, seqs []*batchSeq) *tensor.Tensor {
	m := bp.m
	hd := m.Cfg.Dim / m.Cfg.Heads
	batch := x.Shape[0]
	attnIn := x
	if !b.postNorm {
		attnIn = layerNormRows(x, b.LN1)
	}
	// All heads' Q/K/V projections for the whole batch in one batched call.
	ws := make([]*tensor.Tensor, 0, 3*len(b.Attn.heads))
	for _, h := range b.Attn.heads {
		ws = append(ws, h.Wq.W.Value, h.Wk.W.Value, h.Wv.W.Value)
	}
	projs := tensor.MatMulBatch(attnIn, ws)
	concat := tensor.New(batch, m.Cfg.Dim)
	scale := 1 / math.Sqrt(float64(hd))
	stride := m.Cfg.SparseStride
	for hi := range b.Attn.heads {
		q, k, v := projs[3*hi], projs[3*hi+1], projs[3*hi+2]
		for i, s := range seqs {
			s.keys[li][hi] = appendRow(s.keys[li][hi], k.Row(i))
			s.vals[li][hi] = appendRow(s.vals[li][hi], v.Row(i))
			kc, vc := s.keys[li][hi], s.vals[li][hi]
			pos := s.n
			scores := make([]float64, pos+1)
			for j := 0; j <= pos; j++ {
				if stride > 0 && pos-j >= stride && j%stride != 0 {
					scores[j] = math.Inf(-1)
					continue
				}
				scores[j] = mathx.Dot(q.Row(i), kc.Row(j)) * scale
			}
			w := mathx.Softmax(scores, 1)
			out := concat.Row(i)[hi*hd : (hi+1)*hd]
			for j := 0; j <= pos; j++ {
				if w[j] == 0 {
					continue
				}
				vr := vc.Row(j)
				for d := range out {
					out[d] += w[j] * vr[d]
				}
			}
		}
	}
	attnOut := tensor.MatMul(concat, b.Attn.Wo.W.Value)
	res := tensor.New(batch, m.Cfg.Dim)
	for i := 0; i < batch; i++ {
		xr, ar, rr := x.Row(i), attnOut.Row(i), res.Row(i)
		for d := range rr {
			rr[d] = xr[d] + ar[d]
		}
	}
	if b.postNorm {
		res = layerNormRows(res, b.LN1)
	}
	ffnIn := res
	if !b.postNorm {
		ffnIn = layerNormRows(res, b.LN2)
	}
	h := tensor.MatMul(ffnIn, b.FFN.In.W.Value)
	inBias := b.FFN.In.B.Value.Row(0)
	for i := 0; i < batch; i++ {
		row := h.Row(i)
		for j, bv := range inBias {
			row[j] += bv
		}
		for j, v := range row {
			row[j] = actScalar(b.FFN.Act, v)
		}
	}
	ffnOut := tensor.MatMul(h, b.FFN.Out.W.Value)
	outBias := b.FFN.Out.B.Value.Row(0)
	out := tensor.New(batch, m.Cfg.Dim)
	for i := 0; i < batch; i++ {
		rr, fr, or := res.Row(i), ffnOut.Row(i), out.Row(i)
		for j, bv := range outBias {
			fr[j] += bv
		}
		for d := range or {
			or[d] = rr[d] + fr[d]
		}
	}
	if b.postNorm {
		out = layerNormRows(out, b.LN2)
	}
	return out
}

// layerNormRows applies the inference-path layer norm row-by-row, reusing
// the same per-vector kernel as Predictor so batched and unbatched decoding
// agree bitwise.
func layerNormRows(x *tensor.Tensor, ln *nn.LayerNorm) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	for i := 0; i < x.Shape[0]; i++ {
		copy(out.Row(i), applyLayerNormVec(x.Row(i), ln))
	}
	return out
}
