package transformer

import (
	"testing"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
)

func benchModel(window int) *Model {
	return MustNew(Config{
		Vocab: 64, Dim: 64, Layers: 2, Heads: 4, Window: window,
		Pos: PosSinusoidal, Act: GELUAct(),
	}, mathx.NewRNG(1))
}

// GELUAct avoids importing nn constants at every call site in benches.
func GELUAct() nn.Activation { return nn.GELU }

// BenchmarkForward measures the training-graph forward pass.
func BenchmarkForward(b *testing.B) {
	m := benchModel(64)
	ids := make([]int, 64)
	rng := mathx.NewRNG(2)
	for i := range ids {
		ids[i] = rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardLogits(ids)
	}
}

// BenchmarkForwardBackward measures one full training step's compute.
func BenchmarkForwardBackward(b *testing.B) {
	m := benchModel(64)
	rng := mathx.NewRNG(3)
	ids := make([]int, 64)
	tgt := make([]int, 64)
	for i := range ids {
		ids[i] = rng.Intn(64)
		tgt[i] = rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrad(m)
		autograd.Backward(m.Loss(ids, tgt))
	}
}

// BenchmarkPredictorToken measures per-token KV-cache inference cost —
// the E12 contrast with re-running the full window.
func BenchmarkPredictorToken(b *testing.B) {
	m := benchModel(4096)
	rng := mathx.NewRNG(4)
	p := m.NewPredictor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Len() >= 4000 {
			b.StopTimer()
			p = m.NewPredictor()
			b.StartTimer()
		}
		p.Append(rng.Intn(64))
	}
}

// BenchmarkFullRecompute is the no-cache alternative at a fixed prefix
// length, for comparison with BenchmarkPredictorToken.
func BenchmarkFullRecompute(b *testing.B) {
	m := benchModel(128)
	rng := mathx.NewRNG(5)
	ids := make([]int, 128)
	for i := range ids {
		ids[i] = rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardLogits(ids)
	}
}
