package transformer

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file is the chunked prefill fast path: prompt ingestion as
// matrix-matrix work. Token-by-token Append streams every packed weight
// matrix from memory once per token and pays per-token kernel overhead for
// vectors of batch one; a chunk pass instead runs each dense projection as
// one blocked matrix-matrix sweep over all chunk positions (weights
// streamed once per chunk), computes attention scores against the KV cache
// in sixteen-key blocks through the same interleaved dot kernel the decode
// path uses, applies the vectorized softmax, and skips the final-norm +
// unembedding for every position except the last (prefill only needs the
// next-token logits once the prompt is in).
//
// Correctness contract: a chunk pass performs, position by position, the
// exact arithmetic Append performs — same kernels or bitwise-equal blocked
// forms of them, same accumulation orders, same layer-norm and activation
// scalars — so logits and KV-cache contents are bitwise identical to
// feeding the tokens one at a time. Causality makes the phase reordering
// sound: within a layer, position p's attention reads keys/values of
// positions ≤ p only, and those are fully determined by the layer's input
// rows, so computing the whole chunk's Q/K/V before any attention yields
// the same values as strict token order. The parity and property tests in
// prefill_test.go enforce this bit for bit, config by config.

// prefillScratch holds every intermediate of a chunk pass, grown to the
// largest chunk seen and reused — steady-state Extend/Prefill calls
// allocate nothing. Scratch lives in a per-model sync.Pool (taken per call,
// returned when the pass completes), so predictors created per request
// share warm buffers instead of each paying a first-call allocation.
type prefillScratch struct {
	x       *tensor.Tensor // residual stream (rows×Dim)
	norm    *tensor.Tensor // layer-norm output (rows×Dim)
	q       *tensor.Tensor // all heads' queries, head-major (rows×Dim)
	k       *tensor.Tensor // all heads' keys (rows×Dim)
	v       *tensor.Tensor // all heads' values (rows×Dim)
	concat  *tensor.Tensor // concatenated head outputs (rows×Dim)
	att     *tensor.Tensor // attention / FFN output (rows×Dim)
	hidden  *tensor.Tensor // FFN hidden (rows×Hidden)
	scores  []float64      // one position's attention scores (Window)
	scores2 []float64      // second score row for the paired-query kernel
	smax    []float64      // softmax scratch (Window)
	norm1   []float64      // final-norm output for the last position (Dim)
}

func (sc *prefillScratch) ensure(cfg Config, rows int) {
	tensor.Ensure(&sc.x, rows, cfg.Dim)
	tensor.Ensure(&sc.norm, rows, cfg.Dim)
	tensor.Ensure(&sc.q, rows, cfg.Dim)
	tensor.Ensure(&sc.k, rows, cfg.Dim)
	tensor.Ensure(&sc.v, rows, cfg.Dim)
	tensor.Ensure(&sc.concat, rows, cfg.Dim)
	tensor.Ensure(&sc.att, rows, cfg.Dim)
	tensor.Ensure(&sc.hidden, rows, cfg.Hidden)
	if len(sc.scores) < cfg.Window {
		sc.scores = make([]float64, cfg.Window)
		sc.scores2 = make([]float64, cfg.Window)
		sc.smax = make([]float64, cfg.Window)
	}
	if len(sc.norm1) < cfg.Dim {
		sc.norm1 = make([]float64, cfg.Dim)
	}
}

// truncTail returns the keep-last suffix of ids that fits the remaining
// window room: the canonical prompt-longer-than-window behavior shared by
// EncodePrompt (which truncates against Window−budget), Predictor.Extend,
// and BatchedPredictor.Prefill (which truncate against Window−Len).
func truncTail(ids []int, room int) []int {
	if room < 0 {
		room = 0
	}
	if len(ids) > room {
		ids = ids[len(ids)-room:]
	}
	return ids
}

// prefillRun advances the model over a whole chunk of token ids starting at
// cache position start, writing the per-layer keys/values (and their
// incremental interleaved key packs) for every chunk position and the last
// position's logits into logits (len Vocab). Chunk rows beyond the window
// must have been truncated by the caller.
func prefillRun(m *Model, c *compiledModel, keys, vals [][]*tensor.Tensor, kpacks [][][]float64, start int, ids []int, logits []float64) {
	sc, _ := m.pfPool.Get().(*prefillScratch)
	if sc == nil {
		sc = &prefillScratch{}
	}
	defer m.pfPool.Put(sc)
	rows := len(ids)
	prefillBody(m, c, sc, keys, vals, kpacks, start, ids)
	// Final norm + unembedding for the last position only: prefill needs
	// one set of next-token logits, not one per prompt position.
	layerNormInto(sc.norm1[:m.Cfg.Dim], sc.x.Row(rows-1), m.FinalNorm)
	c.out.matVec(logits, sc.norm1[:m.Cfg.Dim])
	for o, bv := range c.outB {
		logits[o] += bv
	}
}

// prefillRunAll is prefillRun with per-position outputs: every chunk row is
// final-normed and unembedded, filling logits (rows×Vocab) with the
// next-token logits after each position — the verification pass of
// speculative decoding, which must judge every drafted token, not just the
// last. Row r equals bitwise what Append would have returned for ids[r]: the
// final norm reuses Append's per-vector kernel and the unembedding sweep is
// the blocked matrix-matrix form proven bitwise-identical to matVec per row.
func prefillRunAll(m *Model, c *compiledModel, keys, vals [][]*tensor.Tensor, kpacks [][][]float64, start int, ids []int, logits *tensor.Tensor) {
	sc, _ := m.pfPool.Get().(*prefillScratch)
	if sc == nil {
		sc = &prefillScratch{}
	}
	defer m.pfPool.Put(sc)
	rows := len(ids)
	prefillBody(m, c, sc, keys, vals, kpacks, start, ids)
	// sc.norm is free after the last block, so the all-rows final norm can
	// land there.
	norm := layerNormRowsInto(sc.norm, sc.x, m.FinalNorm)
	c.out.matMat(logits, norm)
	for r := 0; r < rows; r++ {
		row := logits.Row(r)
		for o, bv := range c.outB {
			row[o] += bv
		}
	}
}

// prefillBody runs the shared part of a chunk pass — embedding and every
// transformer block — leaving the chunk's residual stream in sc.x.
func prefillBody(m *Model, c *compiledModel, sc *prefillScratch, keys, vals [][]*tensor.Tensor, kpacks [][][]float64, start int, ids []int) {
	rows := len(ids)
	sc.ensure(m.Cfg, rows)
	x := sc.x
	// Embed every chunk token at its own position.
	for r, id := range ids {
		row := x.Row(r)
		copy(row, m.TokEmb.W.Value.Row(id))
		switch m.Cfg.Pos {
		case PosLearned:
			for j, v := range m.PosTable.Value.Row(start + r) {
				row[j] += v
			}
		case PosSinusoidal:
			for j, v := range m.sinTable.Row(start + r) {
				row[j] += v
			}
		}
	}
	for li, b := range m.Blocks {
		prefillBlock(m, c, sc, li, b, keys[li], vals[li], kpacks[li], start, rows)
	}
}

// prefillBlock advances one transformer block over the chunk rows in sc.x,
// in place — the chunk form of Predictor.blockStep.
func prefillBlock(m *Model, c *compiledModel, sc *prefillScratch, li int, b *Block, keys, vals []*tensor.Tensor, kpacks [][]float64, start, rows int) {
	cl := &c.layers[li]
	hd := m.Cfg.Dim / m.Cfg.Heads
	x := sc.x
	attnIn := x
	if !b.postNorm {
		attnIn = layerNormRowsInto(sc.norm, x, b.LN1)
	}
	// Q/K/V for all chunk positions: three blocked matrix-matrix sweeps.
	cl.wq.matMat(sc.q, attnIn)
	cl.wk.matMat(sc.k, attnIn)
	cl.wv.matMat(sc.v, attnIn)
	scale := 1 / math.Sqrt(float64(hd))
	stride := m.Cfg.SparseStride
	for hi := 0; hi < m.Cfg.Heads; hi++ {
		kc, vc := keys[hi], vals[hi]
		kp := kpacks[hi]
		// Write the whole chunk's keys and values into the cache (and the
		// keys into the sequence's interleaved pack) first; causal
		// attention below reads only rows ≤ its own position.
		for r := 0; r < rows; r++ {
			krow := sc.k.Row(r)[hi*hd : (hi+1)*hd]
			copy(kc.Row(start+r), krow)
			packKeyRow(kp, krow, start+r)
			copy(vc.Row(start+r), sc.v.Row(r)[hi*hd:(hi+1)*hd])
		}
		if stride > 0 {
			for r := 0; r < rows; r++ {
				pos := start + r
				qh := sc.q.Row(r)[hi*hd : (hi+1)*hd]
				scores := sc.scores[:pos+1]
				for j := 0; j <= pos; j++ {
					if pos-j >= stride && j%stride != 0 {
						scores[j] = math.Inf(-1)
						continue
					}
					scores[j] = mathx.Dot(qh, kc.Row(j)) * scale
				}
				w := mathx.SoftmaxFastInto(scores, scores, sc.smax, 1)
				weightedValueSum(sc.concat.Row(r)[hi*hd:(hi+1)*hd], vc, w, pos, hd)
			}
			continue
		}
		// Dense attention over the sequence's incrementally maintained key
		// pack: score rows are computed sixteen keys per kernel call
		// against interleaved blocks that stay cache-resident across the
		// whole chunk; neighboring query rows share each block through the
		// fused two-vector kernel. A query whose causal frontier ends
		// inside a fully packed block lets the kernel compute the whole
		// block — the out-of-frontier lanes land beyond scores[:pos+1] and
		// are never read.
		nFull := (start + rows) / 16
		blocksFor := func(pos int) int {
			nb := (pos + 1 + 15) / 16
			if nb > nFull {
				nb = nFull
			}
			return nb
		}
		finishRow := func(r int, scores []float64, nb int) {
			pos := start + r
			qh := sc.q.Row(r)[hi*hd : (hi+1)*hd]
			for j := nb * 16; j <= pos; j++ {
				scores[j] = mathx.Dot(kc.Row(j), qh)
			}
			s := scores[:pos+1]
			for j := range s {
				s[j] *= scale
			}
			w := mathx.SoftmaxFastInto(s, s, sc.smax, 1)
			weightedValueSum(sc.concat.Row(r)[hi*hd:(hi+1)*hd], vc, w, pos, hd)
		}
		r := 0
		for ; r+2 <= rows; r += 2 {
			qh0 := sc.q.Row(r)[hi*hd : (hi+1)*hd]
			qh1 := sc.q.Row(r + 1)[hi*hd : (hi+1)*hd]
			nb0, nb1 := blocksFor(start+r), blocksFor(start+r+1)
			s0, s1 := sc.scores, sc.scores2
			for bk := 0; bk < nb0; bk++ {
				mathx.DotInterleaved16X2(
					(*[16]float64)(s0[bk*16:bk*16+16]),
					(*[16]float64)(s1[bk*16:bk*16+16]),
					kp[bk*16*hd:(bk+1)*16*hd], qh0, qh1)
			}
			for bk := nb0; bk < nb1; bk++ {
				mathx.DotInterleaved16((*[16]float64)(s1[bk*16:bk*16+16]),
					kp[bk*16*hd:(bk+1)*16*hd], qh1)
			}
			finishRow(r, s0, nb0)
			finishRow(r+1, s1, nb1)
		}
		for ; r < rows; r++ {
			nb := blocksFor(start + r)
			qh := sc.q.Row(r)[hi*hd : (hi+1)*hd]
			for bk := 0; bk < nb; bk++ {
				mathx.DotInterleaved16((*[16]float64)(sc.scores[bk*16:bk*16+16]),
					kp[bk*16*hd:(bk+1)*16*hd], qh)
			}
			finishRow(r, sc.scores, nb)
		}
	}
	cl.wo.matMat(sc.att, sc.concat)
	addRows(x, sc.att, rows)
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN1)
	}
	ffnIn := x
	if !b.postNorm {
		ffnIn = layerNormRowsInto(sc.norm, x, b.LN2)
	}
	cl.ffnIn.matMat(sc.hidden, ffnIn)
	for r := 0; r < rows; r++ {
		row := sc.hidden.Row(r)
		for j, bv := range cl.ffnInB {
			row[j] += bv
		}
	}
	// One vectorized activation sweep over the whole chunk's hidden rows
	// (contiguous storage), elementwise bitwise-identical to actScalar.
	actInto(b.FFN.Act, sc.hidden.Data[:rows*m.Cfg.Hidden])
	cl.ffnOut.matMat(sc.att, sc.hidden)
	for r := 0; r < rows; r++ {
		row := sc.att.Row(r)
		for j, bv := range cl.ffnOutB {
			row[j] += bv
		}
	}
	addRows(x, sc.att, rows)
	if b.postNorm {
		layerNormRowsInto(x, x, b.LN2)
	}
}

// addRows accumulates the first rows rows of src into dst (both tensors are
// chunk scratch shaped rows×cols, so the accumulation runs over the flat
// contiguous storage — per element it is the same += the per-token path
// performs).
func addRows(dst, src *tensor.Tensor, rows int) {
	n := rows * dst.Shape[1]
	d, s := dst.Data[:n], src.Data[:n]
	for i, v := range s {
		d[i] += v
	}
}

// actInto applies the activation elementwise in place, using the vectorized
// kernels where they exist; every element equals actScalar's result bitwise.
func actInto(a nn.Activation, xs []float64) {
	switch a {
	case nn.ReLU:
		for i, v := range xs {
			if !(v > 0) {
				xs[i] = 0
			}
		}
	case nn.Tanh:
		mathx.TanhInto(xs, xs)
	case nn.GELU:
		mathx.GELUInto(xs, xs)
	default:
		panic("transformer: unknown activation")
	}
}

// Extend feeds a whole chunk of tokens and returns the logits for the
// position after the last one — bitwise identical to calling Append on each
// id in order and keeping the final result, at a fraction of the cost (the
// dense work runs as matrix-matrix sweeps and only the last position is
// unembedded). If ids exceeds the remaining window room, only the last
// Window−Len tokens are ingested (keep-last truncation, matching the
// prompt-window policy of EncodePrompt); earlier ids are dropped. It
// returns nil when no tokens remain to ingest.
//
// Like Append, the returned slice is the predictor's reusable scratch,
// valid until the next Append or Extend call. Steady-state Extend performs
// no heap allocations once its chunk scratch has grown to the caller's
// chunk size.
func (p *Predictor) Extend(ids []int) []float64 {
	ids = truncTail(ids, p.m.Cfg.Window-p.n)
	if len(ids) == 0 {
		return nil
	}
	prefillRun(p.m, p.c, p.keys, p.vals, p.kpacks, p.n, ids, p.logits)
	p.n += len(ids)
	return p.logits
}

// Prefill feeds a whole chunk of tokens to one batch sequence and returns
// the logits for the position after the last one — bitwise identical to
// stepping the sequence alone through Step once per token (and therefore to
// Predictor.Append), using the same chunked matrix-matrix pass as
// Predictor.Extend. Sequences not named are untouched, which is what lets
// the serving loop interleave bounded prefill chunks with decode steps. If
// ids exceeds the sequence's remaining window room, only the last
// Window−Len(id) tokens are ingested (keep-last truncation); it returns nil
// when no tokens remain.
//
// The returned slice is shared scratch, valid until the next Step or
// Prefill call.
func (bp *BatchedPredictor) Prefill(id int, ids []int) []float64 {
	s := bp.seqs[id]
	if s == nil {
		panic("transformer: unknown batch sequence")
	}
	ids = truncTail(ids, bp.m.Cfg.Window-s.n)
	if len(ids) == 0 {
		return nil
	}
	if len(bp.pfLogits) < bp.m.Cfg.Vocab {
		bp.pfLogits = make([]float64, bp.m.Cfg.Vocab)
	}
	prefillRun(bp.m, bp.c, s.keys, s.vals, s.kpacks, s.n, ids, bp.pfLogits)
	s.n += len(ids)
	return bp.pfLogits
}
