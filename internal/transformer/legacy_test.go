package transformer

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file preserves the pre-compile Predictor implementation verbatim as a
// reference: the decode fast path must reproduce its logits bitwise (same
// accumulation order everywhere), and the E19 experiment measures the
// speedup against it. It is the slow path by construction — training-layout
// matVec, copy-grown KV cache, fresh slices per token.

type legacyPredictor struct {
	m    *Model
	keys [][]*tensor.Tensor
	vals [][]*tensor.Tensor
	n    int
}

func newLegacyPredictor(m *Model) *legacyPredictor {
	p := &legacyPredictor{m: m}
	p.keys = make([][]*tensor.Tensor, len(m.Blocks))
	p.vals = make([][]*tensor.Tensor, len(m.Blocks))
	for i, b := range m.Blocks {
		p.keys[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		p.vals[i] = make([]*tensor.Tensor, b.Attn.NumHeads())
		hd := m.Cfg.Dim / m.Cfg.Heads
		for h := range p.keys[i] {
			p.keys[i][h] = tensor.New(0, hd)
			p.vals[i][h] = tensor.New(0, hd)
		}
	}
	return p
}

func (p *legacyPredictor) Append(id int) []float64 {
	m := p.m
	if p.n >= m.Cfg.Window {
		panic("transformer: legacy predictor window exhausted")
	}
	pos := p.n
	x := make([]float64, m.Cfg.Dim)
	copy(x, m.TokEmb.W.Value.Row(id))
	switch m.Cfg.Pos {
	case PosLearned:
		for j, v := range m.PosTable.Value.Row(pos) {
			x[j] += v
		}
	case PosSinusoidal:
		for j, v := range m.sinTable.Row(pos) {
			x[j] += v
		}
	}
	for li, b := range m.Blocks {
		x = p.blockStep(li, b, x, pos)
	}
	x = legacyLayerNorm(x, m.FinalNorm)
	logits := make([]float64, m.Cfg.Vocab)
	w := m.Output.W.Value
	for j := range x {
		if x[j] == 0 {
			continue
		}
		row := w.Row(j)
		for o := range logits {
			logits[o] += x[j] * row[o]
		}
	}
	for o, bv := range m.Output.B.Value.Row(0) {
		logits[o] += bv
	}
	p.n++
	return logits
}

func (p *legacyPredictor) blockStep(li int, b *Block, x []float64, pos int) []float64 {
	m := p.m
	hd := m.Cfg.Dim / m.Cfg.Heads
	attnIn := x
	if !b.postNorm {
		attnIn = legacyLayerNorm(x, b.LN1)
	}
	concat := make([]float64, m.Cfg.Dim)
	for hi, h := range b.Attn.heads {
		q := legacyMatVecT(h.Wq.W.Value, attnIn)
		k := legacyMatVecT(h.Wk.W.Value, attnIn)
		v := legacyMatVecT(h.Wv.W.Value, attnIn)
		p.keys[li][hi] = legacyAppendRow(p.keys[li][hi], k)
		p.vals[li][hi] = legacyAppendRow(p.vals[li][hi], v)
		kc, vc := p.keys[li][hi], p.vals[li][hi]
		scale := 1 / math.Sqrt(float64(hd))
		scores := make([]float64, pos+1)
		s := m.Cfg.SparseStride
		for j := 0; j <= pos; j++ {
			if s > 0 && pos-j >= s && j%s != 0 {
				scores[j] = math.Inf(-1)
				continue
			}
			scores[j] = mathx.Dot(q, kc.Row(j)) * scale
		}
		w := mathx.Softmax(scores, 1)
		out := make([]float64, hd)
		for j := 0; j <= pos; j++ {
			if w[j] == 0 {
				continue
			}
			vr := vc.Row(j)
			for d := range out {
				out[d] += w[j] * vr[d]
			}
		}
		copy(concat[hi*hd:(hi+1)*hd], out)
	}
	attnOut := legacyMatVecT(b.Attn.Wo.W.Value, concat)
	res := make([]float64, len(x))
	for i := range res {
		res[i] = x[i] + attnOut[i]
	}
	if b.postNorm {
		res = legacyLayerNorm(res, b.LN1)
	}
	ffnIn := res
	if !b.postNorm {
		ffnIn = legacyLayerNorm(res, b.LN2)
	}
	ffnOut := legacyFFN(b.FFN, ffnIn)
	out := make([]float64, len(res))
	for i := range out {
		out[i] = res[i] + ffnOut[i]
	}
	if b.postNorm {
		out = legacyLayerNorm(out, b.LN2)
	}
	return out
}

func legacyAppendRow(t *tensor.Tensor, row []float64) *tensor.Tensor {
	cols := t.Shape[1]
	return &tensor.Tensor{Shape: []int{t.Shape[0] + 1, cols}, Data: append(t.Data, row...)}
}

func legacyMatVecT(w *tensor.Tensor, x []float64) []float64 {
	out := make([]float64, w.Shape[1])
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := w.Row(i)
		for j, wv := range row {
			out[j] += xv * wv
		}
	}
	return out
}

func legacyLayerNorm(x []float64, ln *nn.LayerNorm) []float64 {
	mu := mathx.Mean(x)
	va := 0.0
	for _, v := range x {
		d := v - mu
		va += d * d
	}
	va /= float64(len(x))
	is := 1 / math.Sqrt(va+ln.Eps)
	g := ln.Gain.Value.Row(0)
	b := ln.Bias.Value.Row(0)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v-mu)*is*g[i] + b[i]
	}
	return out
}

func legacyFFN(f *nn.FFN, x []float64) []float64 {
	h := legacyMatVecT(f.In.W.Value, x)
	for i, bv := range f.In.B.Value.Row(0) {
		h[i] += bv
	}
	for i, v := range h {
		h[i] = actScalar(f.Act, v)
	}
	out := legacyMatVecT(f.Out.W.Value, h)
	for i, bv := range f.Out.B.Value.Row(0) {
		out[i] += bv
	}
	return out
}

// TestCompiledPredictorMatchesLegacyBitwise drives the compiled fast path
// and the preserved pre-compile implementation over identical token streams
// across every positional scheme, norm order, and the sparse mask: logits
// must agree bitwise at every step, not just within tolerance — the whole
// fast path is layout and reuse changes, never arithmetic changes.
func TestCompiledPredictorMatchesLegacyBitwise(t *testing.T) {
	for _, cfg := range []Config{
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 14, Pos: PosLearned, Act: nn.GELU},
		{Vocab: 23, Dim: 16, Layers: 1, Heads: 4, Window: 14, Pos: PosSinusoidal, Act: nn.ReLU},
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 14, Pos: PosNone, Act: nn.Tanh, PostNorm: true},
		{Vocab: 23, Dim: 16, Layers: 2, Heads: 2, Window: 14, Pos: PosLearned, Act: nn.GELU, SparseStride: 3},
	} {
		m := MustNew(cfg, mathx.NewRNG(77))
		rng := mathx.NewRNG(78)
		fast := m.NewPredictor()
		slow := newLegacyPredictor(m)
		for step := 0; step < cfg.Window; step++ {
			id := rng.Intn(cfg.Vocab)
			got := fast.Append(id)
			want := slow.Append(id)
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("cfg %+v step %d logit %d: compiled %v != legacy %v",
						cfg, step, o, got[o], want[o])
				}
			}
		}
	}
}

// BenchmarkDecodeTokenVsLegacy is the E19 before/after pair at the E18
// serving shape: per-token Append cost of the compiled fast path against
// the preserved pre-compile implementation.
func BenchmarkDecodeTokenVsLegacy(b *testing.B) {
	cfg := Config{Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 32,
		Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(9))
	rng := mathx.NewRNG(10)
	b.Run("compiled", func(b *testing.B) {
		p := m.NewPredictor()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p.Len() >= cfg.Window {
				b.StopTimer()
				p = m.NewPredictor()
				b.StartTimer()
			}
			p.Append(rng.Intn(cfg.Vocab))
		}
	})
	b.Run("legacy", func(b *testing.B) {
		p := newLegacyPredictor(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p.n >= cfg.Window {
				b.StopTimer()
				p = newLegacyPredictor(m)
				b.StartTimer()
			}
			p.Append(rng.Intn(cfg.Vocab))
		}
	})
}
