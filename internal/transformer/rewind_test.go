package transformer

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// This file fuzzes the speculative-decoding cache surface: Rewind must be
// indistinguishable from never having fed the discarded tokens, and
// ExtendAll's per-position logits must match token-by-token Append bitwise.
// The shadow in every test is a predictor rebuilt by Append-only replay of
// the surviving history — the reference semantics Rewind claims to preserve
// without clearing any KV rows or key-pack lanes.

// randRewindConfig draws a model shape for the rewind property tests,
// covering the same axes as TestExtendProperty: head widths at and off the
// sixteen-lane pack size, pre/post-norm, dense and sparse attention, all
// positional schemes, windows that cross several sixteen-row pack blocks.
func randRewindConfig(rng *mathx.RNG) Config {
	heads := 1 + rng.Intn(3)
	hd := []int{4, 8, 12, 16, 20}[rng.Intn(5)]
	cfg := Config{
		Vocab:  11 + rng.Intn(40),
		Dim:    heads * hd,
		Hidden: 8 + rng.Intn(64),
		Layers: 1 + rng.Intn(2),
		Heads:  heads,
		Window: 18 + rng.Intn(46),
		Pos:    []PosKind{PosSinusoidal, PosLearned, PosNone}[rng.Intn(3)],
		Act:    []nn.Activation{nn.ReLU, nn.Tanh, nn.GELU}[rng.Intn(3)],
	}
	if rng.Intn(4) == 0 {
		cfg.PostNorm = true
	}
	if rng.Intn(5) == 0 {
		cfg.SparseStride = 2 + rng.Intn(3)
	}
	return cfg
}

// TestRewindProperty drives one predictor through random interleavings of
// Append, Extend, ExtendAll, and Rewind — crossing sixteen-row pack-block
// boundaries in both directions — and checks every produced logit row
// bitwise against a shadow predictor that replays the surviving token
// history through Append alone. A Rewind that left readable stale state in
// the KV cache or the interleaved key packs would surface as a bit
// difference on the next op.
func TestRewindProperty(t *testing.T) {
	rng := mathx.NewRNG(1735)
	for trial := 0; trial < 30; trial++ {
		cfg := randRewindConfig(rng)
		m := MustNew(cfg, mathx.NewRNG(uint64(trial)*17+3))
		p := m.NewPredictor()
		var hist []int
		// rebuilt replays hist into a fresh predictor and returns the last
		// logits row, the Append-only reference for the current state.
		rebuilt := func() []float64 {
			sh := m.NewPredictor()
			var last []float64
			for _, id := range hist {
				last = sh.Append(id)
			}
			return last
		}
		for op := 0; op < 24; op++ {
			room := cfg.Window - p.Len()
			switch {
			case rng.Intn(3) == 0 && p.Len() > 0:
				n := 1 + rng.Intn(p.Len())
				p.Rewind(n)
				hist = hist[:len(hist)-n]
				if p.Len() != len(hist) {
					t.Fatalf("trial %d: Len %d after rewind, want %d", trial, p.Len(), len(hist))
				}
			case room == 0:
				// Window full and this op did not rewind: truncate a lot so
				// later ops cross the pack boundary downward.
				n := 1 + rng.Intn(p.Len())
				p.Rewind(n)
				hist = hist[:len(hist)-n]
			default:
				n := 1 + rng.Intn(room)
				ids := make([]int, n)
				for i := range ids {
					ids[i] = rng.Intn(cfg.Vocab)
				}
				switch rng.Intn(3) {
				case 0:
					for _, id := range ids {
						got := p.Append(id)
						hist = append(hist, id)
						bitsEqual(t, "rewind/append", got, rebuilt())
					}
				case 1:
					got := p.Extend(ids)
					hist = append(hist, ids...)
					bitsEqual(t, "rewind/extend", got, rebuilt())
				default:
					rows := p.ExtendAll(ids)
					// Every verification row must match the Append-only
					// shadow at its own prefix length.
					sh := m.NewPredictor()
					for _, id := range hist {
						sh.Append(id)
					}
					for r, id := range ids {
						bitsEqual(t, "rewind/extendall", rows[r], sh.Append(id))
					}
					hist = append(hist, ids...)
				}
			}
		}
	}
}

// TestBatchedRewindProperty is the BatchedPredictor form: two sequences
// advance through random Step/Prefill/PrefillAll/Rewind interleavings while
// each is shadowed by a solo Predictor given the same net history. Rewinding
// one sequence must leave the other bit-identical, and every logits row must
// match the solo path.
func TestBatchedRewindProperty(t *testing.T) {
	rng := mathx.NewRNG(2470)
	for trial := 0; trial < 12; trial++ {
		cfg := randRewindConfig(rng)
		m := MustNew(cfg, mathx.NewRNG(uint64(trial)*29+5))
		bp := m.NewBatchedPredictor()
		ids := []int{bp.Add(), bp.Add()}
		hists := make([][]int, 2)
		rebuilt := func(si int) []float64 {
			sh := m.NewPredictor()
			var last []float64
			for _, id := range hists[si] {
				last = sh.Append(id)
			}
			return last
		}
		// Seed both sequences so Step (which feeds every listed sequence) has
		// room to compare rows.
		for si := range ids {
			tok := rng.Intn(cfg.Vocab)
			hists[si] = append(hists[si], tok)
			rows := bp.PrefillAll(ids[si], []int{tok})
			bitsEqual(t, "batched/seed", rows[0], rebuilt(si))
		}
		for op := 0; op < 20; op++ {
			si := rng.Intn(2)
			room := cfg.Window - bp.Len(ids[si])
			switch {
			case rng.Intn(3) == 0 && bp.Len(ids[si]) > 1:
				n := 1 + rng.Intn(bp.Len(ids[si])-1)
				bp.Rewind(ids[si], n)
				hists[si] = hists[si][:len(hists[si])-n]
				// The untouched sequence must still match its shadow.
				other := 1 - si
				if bp.Len(ids[other]) < cfg.Window {
					tok := rng.Intn(cfg.Vocab)
					hists[other] = append(hists[other], tok)
					got := bp.Step([]int{ids[other]}, []int{tok})
					bitsEqual(t, "batched/other-after-rewind", got[0], rebuilt(other))
				}
			case room == 0:
				n := 1 + rng.Intn(bp.Len(ids[si])-1)
				bp.Rewind(ids[si], n)
				hists[si] = hists[si][:len(hists[si])-n]
			case rng.Intn(2) == 0 && bp.Len(ids[1-si]) < cfg.Window:
				// Full-batch step: both sequences advance one token.
				toks := []int{rng.Intn(cfg.Vocab), rng.Intn(cfg.Vocab)}
				hists[0] = append(hists[0], toks[0])
				hists[1] = append(hists[1], toks[1])
				rows := bp.Step(ids, toks)
				bitsEqual(t, "batched/step0", rows[0], rebuilt(0))
				bitsEqual(t, "batched/step1", rows[1], rebuilt(1))
			default:
				n := 1 + rng.Intn(room)
				chunk := make([]int, n)
				for i := range chunk {
					chunk[i] = rng.Intn(cfg.Vocab)
				}
				if rng.Intn(2) == 0 {
					got := bp.Prefill(ids[si], chunk)
					hists[si] = append(hists[si], chunk...)
					bitsEqual(t, "batched/prefill", got, rebuilt(si))
				} else {
					rows := bp.PrefillAll(ids[si], chunk)
					sh := m.NewPredictor()
					for _, id := range hists[si] {
						sh.Append(id)
					}
					for r, id := range chunk {
						bitsEqual(t, "batched/prefillall", rows[r], sh.Append(id))
					}
					hists[si] = append(hists[si], chunk...)
				}
			}
		}
	}
}

// TestRewindBounds pins the panic contract: negative counts and counts past
// the cached length must refuse rather than corrupt.
func TestRewindBounds(t *testing.T) {
	cfg := Config{Vocab: 7, Dim: 8, Layers: 1, Heads: 2, Window: 18, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(1))
	p := m.NewPredictor()
	p.Extend([]int{1, 2, 3})
	for _, n := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rewind(%d) with 3 cached: no panic", n)
				}
			}()
			p.Rewind(n)
		}()
	}
	p.Rewind(3)
	if p.Len() != 0 {
		t.Fatalf("Len after full rewind = %d", p.Len())
	}
	bp := m.NewBatchedPredictor()
	id := bp.Add()
	bp.Prefill(id, []int{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchedPredictor.Rewind past length: no panic")
			}
		}()
		bp.Rewind(id, 3)
	}()
	bp.Rewind(id, 2)
	if bp.Len(id) != 0 {
		t.Fatalf("batched Len after full rewind = %d", bp.Len(id))
	}
}
