//go:build !race

package transformer

const raceEnabled = false
