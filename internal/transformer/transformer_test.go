package transformer

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// The streaming/serving stack drives Predictor through sample.Stepper.
var _ sample.Stepper = (*Predictor)(nil)

func tinyConfig() Config {
	return Config{
		Vocab: 11, Dim: 16, Layers: 2, Heads: 2, Window: 12,
		Pos: PosLearned, Act: nn.GELU,
	}
}

func TestValidate(t *testing.T) {
	bad := Config{Vocab: 10, Dim: 7, Layers: 1, Heads: 2, Window: 8}
	if bad.Validate() == nil {
		t.Error("indivisible Dim accepted")
	}
	if (Config{}).Validate() == nil {
		t.Error("zero config accepted")
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Errorf("tiny config rejected: %v", err)
	}
}

func TestForwardShape(t *testing.T) {
	m := MustNew(tinyConfig(), mathx.NewRNG(1))
	logits := m.Forward([]int{1, 2, 3, 4, 5}, nil)
	if logits.Value.Shape[0] != 5 || logits.Value.Shape[1] != 11 {
		t.Fatalf("logits shape %v", logits.Value.Shape)
	}
}

func TestForwardRejectsBadLength(t *testing.T) {
	m := MustNew(tinyConfig(), mathx.NewRNG(1))
	for _, ids := range [][]int{{}, make([]int, 13)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("length %d accepted", len(ids))
				}
			}()
			m.Forward(ids, nil)
		}()
	}
}

// TestCausality is the structural heart of the autoregressive recipe:
// logits at position i must not depend on tokens after i (Eq. 13's j ≤ i).
func TestCausality(t *testing.T) {
	m := MustNew(tinyConfig(), mathx.NewRNG(2))
	base := []int{1, 2, 3, 4, 5, 6}
	out1 := m.Forward(base, nil).Value.Clone()
	// Perturb the last token; earlier rows must be unchanged.
	mod := append([]int(nil), base...)
	mod[5] = 9
	out2 := m.Forward(mod, nil).Value
	for i := 0; i < 5; i++ {
		for j := 0; j < 11; j++ {
			if math.Abs(out1.At(i, j)-out2.At(i, j)) > 1e-12 {
				t.Fatalf("position %d depends on future token", i)
			}
		}
	}
	// The final row must change (otherwise the model ignores input).
	diff := 0.0
	for j := 0; j < 11; j++ {
		diff += math.Abs(out1.At(5, j) - out2.At(5, j))
	}
	if diff == 0 {
		t.Error("final position ignores its own token")
	}
}

func TestPermutationInvarianceWithoutPositions(t *testing.T) {
	// §6: without positional embeddings the last-row logits are invariant
	// under permutations of the *earlier* tokens. This holds exactly for a
	// single block: with depth ≥ 2 the causal mask makes intermediate states
	// prefix-dependent even without positions.
	cfg := tinyConfig()
	cfg.Pos = PosNone
	cfg.Layers = 1
	m := MustNew(cfg, mathx.NewRNG(3))
	a := []int{1, 2, 3, 7}
	b := []int{3, 1, 2, 7} // same multiset before the final token
	la := m.Forward(a, nil).Value
	lb := m.Forward(b, nil).Value
	for j := 0; j < 11; j++ {
		if math.Abs(la.At(3, j)-lb.At(3, j)) > 1e-9 {
			t.Fatalf("PosNone model distinguishes permuted prefixes")
		}
	}
	// With positions the outputs must differ.
	cfgP := tinyConfig()
	mp := MustNew(cfgP, mathx.NewRNG(3))
	pa := mp.Forward(a, nil).Value
	pb := mp.Forward(b, nil).Value
	diff := 0.0
	for j := 0; j < 11; j++ {
		diff += math.Abs(pa.At(3, j) - pb.At(3, j))
	}
	if diff < 1e-9 {
		t.Error("positional model failed to distinguish word order")
	}
}

func TestSinusoidalTableProperties(t *testing.T) {
	tab := SinusoidalTable(16, 8)
	// Position 0: cos(0)=1 at even dims, sin(0)=0 at odd dims.
	row0 := tab.Row(0)
	for i := 0; i < 4; i++ {
		if row0[2*i] != 1 || row0[2*i+1] != 0 {
			t.Fatalf("row 0 = %v", row0)
		}
	}
	// All entries bounded by 1.
	for _, v := range tab.Data {
		if math.Abs(v) > 1 {
			t.Fatal("unbounded positional value")
		}
	}
	// Distinct positions have distinct encodings.
	if mathx.CosineSimilarity(tab.Row(1), tab.Row(9)) > 0.9999 {
		t.Error("positions 1 and 9 nearly identical")
	}
}

func TestCountParametersMatchesModel(t *testing.T) {
	for _, cfg := range []Config{
		tinyConfig(),
		{Vocab: 7, Dim: 8, Layers: 1, Heads: 1, Window: 4, Pos: PosSinusoidal, Act: nn.ReLU},
		{Vocab: 20, Dim: 12, Hidden: 20, Layers: 3, Heads: 3, Window: 9, Pos: PosNone, Act: nn.Tanh},
	} {
		m := MustNew(cfg, mathx.NewRNG(4))
		if got, want := m.NumParameters(), CountParameters(cfg); got != want {
			t.Errorf("cfg %+v: model has %d params, formula says %d", cfg, got, want)
		}
	}
}

// TestGPT3ParameterCount is experiment E15: the §6 estimate 12·D·p² with
// D=96 (counting attention and FFN layers separately, i.e. 48 blocks) and
// p=12288 should land near the advertised 175B.
func TestGPT3ParameterCount(t *testing.T) {
	got := GPT3Estimate(96, 12288)
	if got < 150e9 || float64(got) > 200e9 {
		t.Errorf("GPT-3 estimate = %d, want ≈175B", got)
	}
	// And the exact counter should agree within ~15% for a GPT-3-shaped
	// config (excluding embeddings, which the 12Dp² rule ignores): 96 blocks
	// of width 12288.
	cfg := Config{Vocab: 1, Dim: 12288, Layers: 96, Heads: 96, Window: 1, Pos: PosNone}
	exact := CountParameters(cfg)
	est := GPT3Estimate(96, 12288)
	ratio := float64(exact) / float64(est)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("exact/estimate ratio = %v", ratio)
	}
}

func TestLossDecreasesWithTraining(t *testing.T) {
	// Train on a fixed deterministic cycle; loss must fall substantially.
	cfg := Config{Vocab: 5, Dim: 16, Layers: 1, Heads: 2, Window: 8, Pos: PosLearned, Act: nn.GELU}
	m := MustNew(cfg, mathx.NewRNG(5))
	input := []int{0, 1, 2, 3, 0, 1, 2, 3}
	target := []int{1, 2, 3, 0, 1, 2, 3, 0}
	first := m.Loss(input, target).Value.Data[0]
	params := m.Parameters()
	var last float64
	for step := 0; step < 150; step++ {
		nn.ZeroGrad(m)
		loss := m.Loss(input, target)
		autograd.Backward(loss)
		for _, p := range params {
			tensor.AddScaledInPlace(p.Value, -0.05, p.Grad)
		}
		last = loss.Value.Data[0]
	}
	if last > first/4 {
		t.Errorf("loss %v -> %v: insufficient learning", first, last)
	}
}

func TestGradientCheckTinyModel(t *testing.T) {
	// Full finite-difference check on a minimal transformer.
	cfg := Config{Vocab: 4, Dim: 4, Hidden: 6, Layers: 1, Heads: 2, Window: 4, Pos: PosLearned, Act: nn.Tanh}
	m := MustNew(cfg, mathx.NewRNG(6))
	input := []int{0, 1, 2}
	target := []int{1, 2, 3}
	forward := func() float64 { return m.Loss(input, target).Value.Data[0] }
	nn.ZeroGrad(m)
	autograd.Backward(m.Loss(input, target))
	const h = 1e-5
	for pi, p := range m.Parameters() {
		for i := 0; i < p.Value.Size(); i += 3 { // sample every 3rd element
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := forward()
			p.Value.Data[i] = orig - h
			lm := forward()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			ana := p.Grad.Data[i]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, ana, num)
			}
		}
	}
}

func TestTraceCapturesLayersAndAttention(t *testing.T) {
	m := MustNew(tinyConfig(), mathx.NewRNG(7))
	var tr Trace
	m.Forward([]int{1, 2, 3, 4}, &tr)
	if tr.Embedded == nil || tr.Embedded.Shape[0] != 4 {
		t.Fatal("embedded not captured")
	}
	if len(tr.Layers) != 2 {
		t.Fatalf("captured %d layers", len(tr.Layers))
	}
	for li, lt := range tr.Layers {
		if len(lt.Attention) != 2 {
			t.Fatalf("layer %d captured %d heads", li, len(lt.Attention))
		}
		for _, att := range lt.Attention {
			if att.Shape[0] != 4 || att.Shape[1] != 4 {
				t.Fatalf("attention shape %v", att.Shape)
			}
			for i := 0; i < 4; i++ {
				if s := mathx.Sum(att.Row(i)); math.Abs(s-1) > 1e-9 {
					t.Fatalf("attention row sums to %v", s)
				}
				for j := i + 1; j < 4; j++ {
					if att.At(i, j) != 0 {
						t.Fatal("future attention leaked")
					}
				}
			}
		}
		if lt.Output == nil || lt.Output.Shape[1] != 16 {
			t.Fatal("block output not captured")
		}
	}
}

// TestPredictorMatchesForward checks KV-cache inference agrees with the
// training-graph forward pass on every prefix.
func TestPredictorMatchesForward(t *testing.T) {
	for _, pos := range []PosKind{PosLearned, PosSinusoidal, PosNone} {
		cfg := tinyConfig()
		cfg.Pos = pos
		m := MustNew(cfg, mathx.NewRNG(8))
		ids := []int{2, 7, 1, 9, 4, 4, 0}
		full := m.Forward(ids, nil).Value
		pred := m.NewPredictor()
		for i, id := range ids {
			logits := pred.Append(id)
			for j := range logits {
				if math.Abs(logits[j]-full.At(i, j)) > 1e-8 {
					t.Fatalf("pos=%v: predictor logit (%d,%d) = %v, forward = %v",
						pos, i, j, logits[j], full.At(i, j))
				}
			}
		}
	}
}

func TestPredictorPostNorm(t *testing.T) {
	cfg := tinyConfig()
	cfg.PostNorm = true
	m := MustNew(cfg, mathx.NewRNG(9))
	ids := []int{1, 5, 3}
	full := m.Forward(ids, nil).Value
	pred := m.NewPredictor()
	for i, id := range ids {
		logits := pred.Append(id)
		for j := range logits {
			if math.Abs(logits[j]-full.At(i, j)) > 1e-8 {
				t.Fatalf("post-norm predictor mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPredictorWindowExhaustion(t *testing.T) {
	cfg := tinyConfig()
	cfg.Window = 2
	m := MustNew(cfg, mathx.NewRNG(10))
	p := m.NewPredictor()
	p.Append(1)
	p.Append(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Append(3)
}

func TestSparseAttentionMask(t *testing.T) {
	cfg := tinyConfig()
	cfg.SparseStride = 2
	m := MustNew(cfg, mathx.NewRNG(11))
	var tr Trace
	m.Forward([]int{1, 2, 3, 4, 5, 6, 7, 8}, &tr)
	att := tr.Layers[0].Attention[0]
	// Position 7 with stride 2: recent = {6,7}, strided = even j. Position 5
	// (odd, not recent) must be masked.
	if att.At(7, 5) != 0 {
		t.Errorf("sparse mask leaked at (7,5): %v", att.At(7, 5))
	}
	if att.At(7, 6) == 0 && att.At(7, 7) == 0 && att.At(7, 4) == 0 {
		t.Error("sparse attention all zero on allowed slots")
	}
	// Sparse predictor still matches sparse forward.
	ids := []int{3, 1, 4, 1, 5, 9, 2, 6}
	full := m.Forward(ids, nil).Value
	pred := m.NewPredictor()
	for i, id := range ids {
		logits := pred.Append(id)
		for j := range logits {
			if math.Abs(logits[j]-full.At(i, j)) > 1e-8 {
				t.Fatalf("sparse predictor mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestHiddenDefaultsTo4x(t *testing.T) {
	cfg := Config{Vocab: 5, Dim: 8, Layers: 1, Heads: 1, Window: 4, Act: nn.ReLU}
	m := MustNew(cfg, mathx.NewRNG(12))
	if m.Cfg.Hidden != 32 {
		t.Errorf("hidden = %d, want 32 (ph = 4p)", m.Cfg.Hidden)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := MustNew(tinyConfig(), mathx.NewRNG(42))
	b := MustNew(tinyConfig(), mathx.NewRNG(42))
	la := a.Forward([]int{1, 2, 3}, nil).Value
	lb := b.Forward([]int{1, 2, 3}, nil).Value
	for i := range la.Data {
		if la.Data[i] != lb.Data[i] {
			t.Fatal("same seed produced different models")
		}
	}
}
