package grammar

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// coinGrammar: S → a | b with adjustable probabilities.
func coinGrammar(pa float64) *CNF {
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"a"}, Prob: pa},
		{Lhs: "S", Rhs: []string{"b"}, Prob: 1 - pa},
	})
	return g.ToCNF()
}

func TestReestimateRecoversTerminalFrequencies(t *testing.T) {
	// Corpus: 70 "a", 30 "b". Starting from a wrong prior, EM should land on
	// P(S→a) ≈ 0.7 in one iteration (complete-data case).
	var corpus [][]string
	for i := 0; i < 70; i++ {
		corpus = append(corpus, []string{"a"})
	}
	for i := 0; i < 30; i++ {
		corpus = append(corpus, []string{"b"})
	}
	cnf := coinGrammar(0.2)
	learned, err := cnf.Reestimate(corpus, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range learned.Unary {
		if r.Rhs[0] == "a" && math.Abs(r.Prob-0.7) > 1e-9 {
			t.Errorf("P(S→a) = %v, want 0.7", r.Prob)
		}
		if r.Rhs[0] == "b" && math.Abs(r.Prob-0.3) > 1e-9 {
			t.Errorf("P(S→b) = %v, want 0.3", r.Prob)
		}
	}
}

func TestReestimateMonotoneLikelihood(t *testing.T) {
	// EM's defining invariant: corpus log-likelihood never decreases.
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"S", "S"}, Prob: 0.3},
		{Lhs: "S", Rhs: []string{"a"}, Prob: 0.5},
		{Lhs: "S", Rhs: []string{"b"}, Prob: 0.2},
	})
	cnf := g.ToCNF()
	// Sample a corpus from a *different* distribution.
	truth := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"S", "S"}, Prob: 0.15},
		{Lhs: "S", Rhs: []string{"a"}, Prob: 0.25},
		{Lhs: "S", Rhs: []string{"b"}, Prob: 0.6},
	})
	rng := mathx.NewRNG(1)
	var corpus [][]string
	for i := 0; i < 120; i++ {
		s := truth.GenerateSentence(rng, 6)
		if len(s) <= 6 {
			corpus = append(corpus, s)
		}
	}
	cur := cnf
	prev := math.Inf(-1)
	for it := 0; it < 5; it++ {
		ll, parsed := cur.LogLikelihood(corpus)
		if parsed != len(corpus) {
			t.Fatalf("iteration %d: only %d/%d sentences parse", it, parsed, len(corpus))
		}
		if ll+1e-9 < prev {
			t.Fatalf("log-likelihood decreased at iteration %d: %v -> %v", it, prev, ll)
		}
		prev = ll
		next, err := cur.Reestimate(corpus, 1)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	// Terminal ratio should move toward the sampling distribution (more b
	// than a in the corpus).
	var pa, pb float64
	for _, r := range cur.Unary {
		switch r.Rhs[0] {
		case "a":
			pa = r.Prob
		case "b":
			pb = r.Prob
		}
	}
	if pb <= pa {
		t.Errorf("EM did not shift mass toward the frequent terminal: a=%v b=%v", pa, pb)
	}
}

func TestReestimateProbabilitiesNormalized(t *testing.T) {
	g := Arithmetic()
	cnf := g.ToCNF()
	rng := mathx.NewRNG(2)
	var corpus [][]string
	for i := 0; i < 60; i++ {
		s := g.GenerateSentence(rng, 8)
		if len(s) <= 9 {
			corpus = append(corpus, s)
		}
	}
	learned, err := cnf.Reestimate(corpus, 2)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]float64{}
	for _, r := range learned.Binary {
		totals[r.Lhs] += r.Prob
	}
	for _, r := range learned.Unary {
		totals[r.Lhs] += r.Prob
	}
	for lhs, tot := range totals {
		if math.Abs(tot-1) > 1e-9 {
			t.Errorf("probabilities for %s sum to %v", lhs, tot)
		}
	}
}

func TestReestimateRejectsAlienCorpus(t *testing.T) {
	cnf := coinGrammar(0.5)
	if _, err := cnf.Reestimate([][]string{{"z"}, {"q"}}, 1); err == nil {
		t.Error("corpus outside the language accepted")
	}
}

func TestReestimateLeavesOriginalUntouched(t *testing.T) {
	cnf := coinGrammar(0.5)
	before := cnf.Unary[0].Prob
	_, err := cnf.Reestimate([][]string{{"a"}, {"a"}, {"b"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cnf.Unary[0].Prob != before {
		t.Error("Reestimate mutated the receiver")
	}
}
