// Package grammar implements the formal-grammar substrate of the paper's
// Appendix A: context-free grammars (CFGs) and probabilistic CFGs (PCFGs),
// string generation, CYK parsing, inside probabilities, parse trees, and the
// tree-distance metric used by structural probes (§7).
//
// The Figure 3 arithmetic grammar ships as a fixture (Arithmetic).
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mathx"
)

// Rule is one production: Lhs → Rhs[0] Rhs[1] ... with probability Prob
// (conditional on Lhs). Symbols that appear on some rule's left-hand side
// are nonterminals; everything else is a terminal.
type Rule struct {
	Lhs  string
	Rhs  []string
	Prob float64
}

// Grammar is a (P)CFG with a distinguished start symbol.
type Grammar struct {
	Start string
	Rules []Rule

	byLhs    map[string][]int // rule indices per nonterminal
	minDepth map[string]int   // minimum derivation depth, lazily computed
}

// New builds a grammar and normalizes rule probabilities per nonterminal
// (rules given with Prob 0 share the remaining mass equally; if all are 0
// the distribution is uniform). It returns an error for empty right-hand
// sides or a start symbol with no rules.
func New(start string, rules []Rule) (*Grammar, error) {
	g := &Grammar{Start: start, Rules: append([]Rule(nil), rules...), byLhs: map[string][]int{}}
	for i, r := range g.Rules {
		if len(r.Rhs) == 0 {
			return nil, fmt.Errorf("grammar: rule %d (%s) has empty rhs", i, r.Lhs)
		}
		if r.Prob < 0 {
			return nil, fmt.Errorf("grammar: rule %d (%s) has negative probability", i, r.Lhs)
		}
		g.byLhs[r.Lhs] = append(g.byLhs[r.Lhs], i)
	}
	if len(g.byLhs[start]) == 0 {
		return nil, fmt.Errorf("grammar: start symbol %q has no rules", start)
	}
	// Normalize probabilities per lhs.
	for _, idxs := range g.byLhs {
		total := 0.0
		zeros := 0
		for _, i := range idxs {
			if g.Rules[i].Prob == 0 {
				zeros++
			}
			total += g.Rules[i].Prob
		}
		switch {
		case zeros == len(idxs):
			for _, i := range idxs {
				g.Rules[i].Prob = 1 / float64(len(idxs))
			}
		case zeros > 0:
			rem := 1 - total
			if rem < 0 {
				rem = 0
			}
			for _, i := range idxs {
				if g.Rules[i].Prob == 0 {
					g.Rules[i].Prob = rem / float64(zeros)
				}
			}
			fallthrough
		default:
			total = 0
			for _, i := range idxs {
				total += g.Rules[i].Prob
			}
			for _, i := range idxs {
				g.Rules[i].Prob /= total
			}
		}
	}
	return g, nil
}

// MustNew is New that panics on error, for fixtures.
func MustNew(start string, rules []Rule) *Grammar {
	g, err := New(start, rules)
	if err != nil {
		panic(err)
	}
	return g
}

// IsNonterminal reports whether sym has productions.
func (g *Grammar) IsNonterminal(sym string) bool { return len(g.byLhs[sym]) > 0 }

// Nonterminals returns the sorted nonterminal set.
func (g *Grammar) Nonterminals() []string {
	var ns []string
	for n := range g.byLhs {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Terminals returns the sorted terminal symbols.
func (g *Grammar) Terminals() []string {
	seen := map[string]bool{}
	var ts []string
	for _, r := range g.Rules {
		for _, s := range r.Rhs {
			if !g.IsNonterminal(s) && !seen[s] {
				seen[s] = true
				ts = append(ts, s)
			}
		}
	}
	sort.Strings(ts)
	return ts
}

// Tree is a parse tree node: a symbol, plus children for nonterminal nodes.
type Tree struct {
	Symbol   string
	Children []*Tree
}

// Leaves returns the terminal frontier of the tree, left to right.
func (t *Tree) Leaves() []string {
	if len(t.Children) == 0 {
		return []string{t.Symbol}
	}
	var out []string
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// String renders the tree in bracketed form, e.g. (EXPR (TERM x)).
func (t *Tree) String() string {
	if len(t.Children) == 0 {
		return t.Symbol
	}
	parts := make([]string, 0, len(t.Children)+1)
	parts = append(parts, t.Symbol)
	for _, c := range t.Children {
		parts = append(parts, c.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Depth returns the height of the tree (a leaf has depth 1).
func (t *Tree) Depth() int {
	if len(t.Children) == 0 {
		return 1
	}
	best := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > best {
			best = d
		}
	}
	return best + 1
}

// Generate samples a derivation from the PCFG and returns its parse tree.
// maxDepth bounds recursion: at the bound, the lowest-index rule for each
// nonterminal is chosen (grammars should list a terminating rule early).
func (g *Grammar) Generate(rng *mathx.RNG, maxDepth int) *Tree {
	return g.expand(g.Start, rng, maxDepth)
}

func (g *Grammar) expand(sym string, rng *mathx.RNG, depth int) *Tree {
	idxs := g.byLhs[sym]
	if len(idxs) == 0 {
		return &Tree{Symbol: sym}
	}
	var rule Rule
	if depth <= 0 {
		rule = g.Rules[g.shortestRule(sym)]
	} else {
		w := make([]float64, len(idxs))
		for i, ri := range idxs {
			w[i] = g.Rules[ri].Prob
		}
		rule = g.Rules[idxs[rng.Categorical(w)]]
	}
	node := &Tree{Symbol: sym}
	for _, s := range rule.Rhs {
		node.Children = append(node.Children, g.expand(s, rng, depth-1))
	}
	return node
}

// shortestRule picks the production for sym that leads to the shallowest
// complete derivation, computed by a fixed point over minimum derivation
// depths. This guarantees termination when Generate hits its depth bound.
func (g *Grammar) shortestRule(sym string) int {
	if g.minDepth == nil {
		g.computeMinDepths()
	}
	idxs := g.byLhs[sym]
	best, bestD := idxs[0], 1<<30
	for _, ri := range idxs {
		d := g.ruleDepth(g.Rules[ri])
		if d < bestD {
			best, bestD = ri, d
		}
	}
	return best
}

// ruleDepth is 1 + the max minimum depth of the rule's nonterminals.
func (g *Grammar) ruleDepth(r Rule) int {
	d := 0
	for _, s := range r.Rhs {
		if g.IsNonterminal(s) {
			md := g.minDepth[s]
			if md > d {
				d = md
			}
		}
	}
	if d >= 1<<29 {
		return 1 << 30
	}
	return d + 1
}

func (g *Grammar) computeMinDepths() {
	g.minDepth = map[string]int{}
	for n := range g.byLhs {
		g.minDepth[n] = 1 << 30
	}
	for changed := true; changed; {
		changed = false
		for n, idxs := range g.byLhs {
			for _, ri := range idxs {
				if d := g.ruleDepth(g.Rules[ri]); d < g.minDepth[n] {
					g.minDepth[n] = d
					changed = true
				}
			}
		}
	}
}

// GenerateSentence samples a derivation and returns its terminal string.
func (g *Grammar) GenerateSentence(rng *mathx.RNG, maxDepth int) []string {
	return g.Generate(rng, maxDepth).Leaves()
}

// ---- Chomsky normal form and CYK ----

// CNF is a grammar in Chomsky normal form: every rule is either
// A → B C (two nonterminals) or A → t (single terminal).
type CNF struct {
	Start  string
	Binary []Rule // A → B C
	Unary  []Rule // A → terminal
}

// ToCNF converts g to Chomsky normal form, preserving rule probabilities
// through the standard binarization/unit-elimination transforms. Introduced
// symbols are named _X<i>.
func (g *Grammar) ToCNF() *CNF {
	c := &CNF{Start: g.Start}
	fresh := 0
	newSym := func() string {
		fresh++
		return fmt.Sprintf("_X%d", fresh)
	}
	// Step 1: terminals in long rules get wrapper nonterminals.
	termWrap := map[string]string{}
	var work []Rule
	for _, r := range g.Rules {
		rhs := append([]string(nil), r.Rhs...)
		if len(rhs) >= 2 {
			for i, s := range rhs {
				if !g.IsNonterminal(s) {
					w, ok := termWrap[s]
					if !ok {
						w = "_T_" + s
						termWrap[s] = w
						work = append(work, Rule{Lhs: w, Rhs: []string{s}, Prob: 1})
					}
					rhs[i] = w
				}
			}
		}
		work = append(work, Rule{Lhs: r.Lhs, Rhs: rhs, Prob: r.Prob})
	}
	// Step 2: binarize long rules.
	var bin []Rule
	for _, r := range work {
		for len(r.Rhs) > 2 {
			ns := newSym()
			bin = append(bin, Rule{Lhs: ns, Rhs: r.Rhs[len(r.Rhs)-2:], Prob: 1})
			r.Rhs = append(append([]string(nil), r.Rhs[:len(r.Rhs)-2]...), ns)
		}
		bin = append(bin, r)
	}
	// Step 3: eliminate unit rules A → B (B nonterminal) by inlining B's
	// productions with multiplied probabilities (repeat to a fixed point;
	// cycles are truncated after a bounded number of passes).
	isNT := func(s string) bool {
		if g.IsNonterminal(s) {
			return true
		}
		return strings.HasPrefix(s, "_X") || strings.HasPrefix(s, "_T_")
	}
	for pass := 0; pass < 10; pass++ {
		changed := false
		var next []Rule
		byLhs := map[string][]Rule{}
		for _, r := range bin {
			byLhs[r.Lhs] = append(byLhs[r.Lhs], r)
		}
		for _, r := range bin {
			if len(r.Rhs) == 1 && isNT(r.Rhs[0]) && r.Rhs[0] != r.Lhs {
				for _, sub := range byLhs[r.Rhs[0]] {
					next = append(next, Rule{Lhs: r.Lhs, Rhs: sub.Rhs, Prob: r.Prob * sub.Prob})
				}
				changed = true
			} else if len(r.Rhs) == 1 && r.Rhs[0] == r.Lhs {
				changed = true // drop self-loop
			} else {
				next = append(next, r)
			}
		}
		bin = next
		if !changed {
			break
		}
	}
	for _, r := range bin {
		switch len(r.Rhs) {
		case 2:
			c.Binary = append(c.Binary, r)
		case 1:
			c.Unary = append(c.Unary, r)
		}
	}
	return c
}

// Parse runs CYK on the token sequence and returns the most probable parse
// tree (Viterbi) under the CNF grammar, or ok=false when the string is not
// in the language.
func (c *CNF) Parse(tokens []string) (*Tree, bool) {
	tree, _, ok := c.viterbi(tokens)
	return tree, ok
}

// InsideProb returns the total probability that the grammar generates
// tokens (the inside probability of the start symbol over the whole span,
// per the Inside-Outside algorithm the paper cites for parsing CMs).
func (c *CNF) InsideProb(tokens []string) float64 {
	n := len(tokens)
	if n == 0 {
		return 0
	}
	inside := make([]map[string]float64, n*n)
	cell := func(i, j int) map[string]float64 { return inside[i*n+j] }
	for i := range inside {
		inside[i] = map[string]float64{}
	}
	for i, tok := range tokens {
		for _, r := range c.Unary {
			if r.Rhs[0] == tok {
				cell(i, i)[r.Lhs] += r.Prob
			}
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span - 1
			for k := i; k < j; k++ {
				left, right := cell(i, k), cell(k+1, j)
				if len(left) == 0 || len(right) == 0 {
					continue
				}
				for _, r := range c.Binary {
					pl, ok1 := left[r.Rhs[0]]
					if !ok1 {
						continue
					}
					pr, ok2 := right[r.Rhs[1]]
					if !ok2 {
						continue
					}
					cell(i, j)[r.Lhs] += r.Prob * pl * pr
				}
			}
		}
	}
	return cell(0, n-1)[c.Start]
}

type backptr struct {
	rule  Rule
	split int // -1 for unary
}

func (c *CNF) viterbi(tokens []string) (*Tree, float64, bool) {
	n := len(tokens)
	if n == 0 {
		return nil, 0, false
	}
	best := make([]map[string]float64, n*n)
	back := make([]map[string]backptr, n*n)
	for i := range best {
		best[i] = map[string]float64{}
		back[i] = map[string]backptr{}
	}
	idx := func(i, j int) int { return i*n + j }
	for i, tok := range tokens {
		for _, r := range c.Unary {
			if r.Rhs[0] == tok && r.Prob > best[idx(i, i)][r.Lhs] {
				best[idx(i, i)][r.Lhs] = r.Prob
				back[idx(i, i)][r.Lhs] = backptr{rule: r, split: -1}
			}
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span - 1
			for k := i; k < j; k++ {
				for _, r := range c.Binary {
					pl, ok1 := best[idx(i, k)][r.Rhs[0]]
					if !ok1 {
						continue
					}
					pr, ok2 := best[idx(k+1, j)][r.Rhs[1]]
					if !ok2 {
						continue
					}
					p := r.Prob * pl * pr
					if p > best[idx(i, j)][r.Lhs] {
						best[idx(i, j)][r.Lhs] = p
						back[idx(i, j)][r.Lhs] = backptr{rule: r, split: k}
					}
				}
			}
		}
	}
	p, ok := best[idx(0, n-1)][c.Start]
	if !ok || p == 0 {
		return nil, 0, false
	}
	var build func(i, j int, sym string) *Tree
	build = func(i, j int, sym string) *Tree {
		bp := back[idx(i, j)][sym]
		if bp.split < 0 {
			return &Tree{Symbol: sym, Children: []*Tree{{Symbol: tokens[i]}}}
		}
		return &Tree{Symbol: sym, Children: []*Tree{
			build(i, bp.split, bp.rule.Rhs[0]),
			build(bp.split+1, j, bp.rule.Rhs[1]),
		}}
	}
	return build(0, n-1, c.Start), p, true
}

// Recognize reports whether tokens is in the language of the CNF grammar.
func (c *CNF) Recognize(tokens []string) bool {
	_, ok := c.Parse(tokens)
	return ok
}

// ---- Tree distances (structural-probe targets) ----

// LeafDistances returns the matrix of pairwise tree distances between the
// leaves of t: the number of edges on the path between leaf i and leaf j in
// the tree. This is the target metric of the Hewitt-Manning structural probe
// discussed in §7.
func LeafDistances(t *Tree) [][]int {
	var leaves []*Tree
	parent := map[*Tree]*Tree{}
	depth := map[*Tree]int{}
	var walk func(n *Tree, d int)
	walk = func(n *Tree, d int) {
		depth[n] = d
		if len(n.Children) == 0 {
			leaves = append(leaves, n)
			return
		}
		for _, ch := range n.Children {
			parent[ch] = n
			walk(ch, d+1)
		}
	}
	walk(t, 0)
	n := len(leaves)
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
	}
	anc := func(x *Tree) []*Tree {
		var chain []*Tree
		for x != nil {
			chain = append(chain, x)
			x = parent[x]
		}
		return chain
	}
	for i := 0; i < n; i++ {
		ai := anc(leaves[i])
		aset := map[*Tree]bool{}
		for _, a := range ai {
			aset[a] = true
		}
		for j := i + 1; j < n; j++ {
			// Lowest common ancestor by walking up from j.
			x := leaves[j]
			for !aset[x] {
				x = parent[x]
			}
			d := (depth[leaves[i]] - depth[x]) + (depth[leaves[j]] - depth[x])
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	return dist
}

// ---- Fixtures ----

// Arithmetic returns the paper's Figure 3 grammar for arithmetic
// expressions, with probabilities tuned so sampled expressions stay short.
//
//	EXPR → TERM + EXPR | ( EXPR ) | TERM
//	TERM → VALUE * TERM | ( EXPR ) | VALUE
//	VALUE → x | y | 1
func Arithmetic() *Grammar {
	return MustNew("EXPR", []Rule{
		{Lhs: "EXPR", Rhs: []string{"TERM", "+", "EXPR"}, Prob: 0.30},
		{Lhs: "EXPR", Rhs: []string{"(", "EXPR", ")"}, Prob: 0.05},
		{Lhs: "EXPR", Rhs: []string{"TERM"}, Prob: 0.65},
		{Lhs: "TERM", Rhs: []string{"VALUE", "*", "TERM"}, Prob: 0.30},
		{Lhs: "TERM", Rhs: []string{"(", "EXPR", ")"}, Prob: 0.05},
		{Lhs: "TERM", Rhs: []string{"VALUE"}, Prob: 0.65},
		{Lhs: "VALUE", Rhs: []string{"x"}, Prob: 0.34},
		{Lhs: "VALUE", Rhs: []string{"y"}, Prob: 0.33},
		{Lhs: "VALUE", Rhs: []string{"1"}, Prob: 0.33},
	})
}

// Chronicle returns a low-entropy formulaic PCFG: long fixed phrase
// templates with a handful of skewed binary branch points, in the style of
// a court chronicle. Most tokens are deterministic given a short context,
// so a well-trained model's greedy continuation is predictable from local
// token context alone — the regime where draft-and-verify decoding pays
// off, and the training distribution used by the speculative-decoding
// benchmark (E22). Contrast with TinyEnglish, which carries real entropy
// at nearly every position.
func Chronicle() *Grammar {
	return MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"Subj", "Deed"}, Prob: 1},
		{Lhs: "Subj", Rhs: []string{"the", "Adj", "Noble", "of", "the", "Realm", "realm"}, Prob: 1},
		{Lhs: "Adj", Rhs: []string{"royal"}, Prob: 0.7},
		{Lhs: "Adj", Rhs: []string{"noble"}, Prob: 0.3},
		{Lhs: "Noble", Rhs: []string{"king"}, Prob: 0.6},
		{Lhs: "Noble", Rhs: []string{"queen"}, Prob: 0.4},
		{Lhs: "Realm", Rhs: []string{"northern"}, Prob: 0.7},
		{Lhs: "Realm", Rhs: []string{"southern"}, Prob: 0.3},
		{Lhs: "Deed", Rhs: []string{"proclaimed", "a", "great", "feast", "in", "the", "hall", "of", "the", "ancient", "castle"}, Prob: 0.6},
		{Lhs: "Deed", Rhs: []string{"summoned", "the", "council", "of", "elders", "to", "the", "high", "tower", "at", "dawn"}, Prob: 0.4},
	})
}

// TinyEnglish returns a small English-like PCFG used as the "natural
// language" training distribution for scaling-law and probe experiments.
// Its vocabulary includes the royal/gender word families needed by the
// Eq. 9 analogy experiment.
func TinyEnglish() *Grammar {
	return MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"NP", "VP"}, Prob: 1},
		{Lhs: "NP", Rhs: []string{"Det", "N"}, Prob: 0.55},
		{Lhs: "NP", Rhs: []string{"Det", "Adj", "N"}, Prob: 0.25},
		{Lhs: "NP", Rhs: []string{"Name"}, Prob: 0.20},
		{Lhs: "VP", Rhs: []string{"V", "NP"}, Prob: 0.5},
		{Lhs: "VP", Rhs: []string{"V", "NP", "PP"}, Prob: 0.2},
		{Lhs: "VP", Rhs: []string{"Vi"}, Prob: 0.3},
		{Lhs: "PP", Rhs: []string{"P", "NP"}, Prob: 1},
		{Lhs: "Det", Rhs: []string{"the"}, Prob: 0.7},
		{Lhs: "Det", Rhs: []string{"a"}, Prob: 0.3},
		{Lhs: "Adj", Rhs: []string{"royal"}, Prob: 0.25},
		{Lhs: "Adj", Rhs: []string{"old"}, Prob: 0.25},
		{Lhs: "Adj", Rhs: []string{"young"}, Prob: 0.25},
		{Lhs: "Adj", Rhs: []string{"wise"}, Prob: 0.25},
		{Lhs: "N", Rhs: []string{"king"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"queen"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"man"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"woman"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"prince"}, Prob: 0.08},
		{Lhs: "N", Rhs: []string{"princess"}, Prob: 0.08},
		{Lhs: "N", Rhs: []string{"cat"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"dog"}, Prob: 0.12},
		{Lhs: "N", Rhs: []string{"castle"}, Prob: 0.06},
		{Lhs: "N", Rhs: []string{"garden"}, Prob: 0.06},
		{Lhs: "Name", Rhs: []string{"alice"}, Prob: 0.5},
		{Lhs: "Name", Rhs: []string{"bob"}, Prob: 0.5},
		{Lhs: "V", Rhs: []string{"sees"}, Prob: 0.3},
		{Lhs: "V", Rhs: []string{"greets"}, Prob: 0.3},
		{Lhs: "V", Rhs: []string{"rules"}, Prob: 0.2},
		{Lhs: "V", Rhs: []string{"loves"}, Prob: 0.2},
		{Lhs: "Vi", Rhs: []string{"sleeps"}, Prob: 0.5},
		{Lhs: "Vi", Rhs: []string{"waits"}, Prob: 0.5},
		{Lhs: "P", Rhs: []string{"in"}, Prob: 0.5},
		{Lhs: "P", Rhs: []string{"near"}, Prob: 0.5},
	})
}
