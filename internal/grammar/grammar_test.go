package grammar

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func TestNewNormalizesProbabilities(t *testing.T) {
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"a"}, Prob: 3},
		{Lhs: "S", Rhs: []string{"b"}, Prob: 1},
	})
	if math.Abs(g.Rules[0].Prob-0.75) > 1e-12 || math.Abs(g.Rules[1].Prob-0.25) > 1e-12 {
		t.Errorf("probs = %v, %v", g.Rules[0].Prob, g.Rules[1].Prob)
	}
}

func TestNewUniformWhenUnspecified(t *testing.T) {
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"a"}},
		{Lhs: "S", Rhs: []string{"b"}},
	})
	if g.Rules[0].Prob != 0.5 || g.Rules[1].Prob != 0.5 {
		t.Errorf("probs = %v, %v, want uniform", g.Rules[0].Prob, g.Rules[1].Prob)
	}
}

func TestNewRejectsBadGrammars(t *testing.T) {
	if _, err := New("S", []Rule{{Lhs: "S", Rhs: nil}}); err == nil {
		t.Error("empty rhs accepted")
	}
	if _, err := New("S", []Rule{{Lhs: "T", Rhs: []string{"a"}}}); err == nil {
		t.Error("missing start accepted")
	}
	if _, err := New("S", []Rule{{Lhs: "S", Rhs: []string{"a"}, Prob: -1}}); err == nil {
		t.Error("negative prob accepted")
	}
}

func TestNonterminalsTerminals(t *testing.T) {
	g := Arithmetic()
	ns := g.Nonterminals()
	want := []string{"EXPR", "TERM", "VALUE"}
	if len(ns) != 3 {
		t.Fatalf("nonterminals = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("nonterminals = %v", ns)
		}
	}
	ts := g.Terminals()
	for _, needed := range []string{"x", "y", "1", "+", "*", "(", ")"} {
		found := false
		for _, got := range ts {
			if got == needed {
				found = true
			}
		}
		if !found {
			t.Errorf("terminal %q missing from %v", needed, ts)
		}
	}
}

func TestGenerateProducesParseableStrings(t *testing.T) {
	g := Arithmetic()
	cnf := g.ToCNF()
	rng := mathx.NewRNG(1)
	for i := 0; i < 50; i++ {
		s := g.GenerateSentence(rng, 12)
		if !cnf.Recognize(s) {
			t.Fatalf("generated string not recognized: %v", s)
		}
	}
}

func TestGenerateRespectsDepthBound(t *testing.T) {
	g := Arithmetic()
	rng := mathx.NewRNG(2)
	for i := 0; i < 100; i++ {
		tr := g.Generate(rng, 8)
		if tr.Depth() > 60 { // depth bound plus terminating expansions
			t.Fatalf("tree depth %d exploded", tr.Depth())
		}
	}
}

func TestTreeLeavesAndString(t *testing.T) {
	tr := &Tree{Symbol: "S", Children: []*Tree{
		{Symbol: "A", Children: []*Tree{{Symbol: "a"}}},
		{Symbol: "b"},
	}}
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != "a" || leaves[1] != "b" {
		t.Errorf("leaves = %v", leaves)
	}
	if s := tr.String(); s != "(S (A a) b)" {
		t.Errorf("string = %q", s)
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

// TestPrecedence is experiment E4: the Figure 3 exercise — parse y + 1 * x
// and check multiplication binds tighter than addition.
func TestPrecedence(t *testing.T) {
	g := Arithmetic()
	cnf := g.ToCNF()
	toks := []string{"y", "+", "1", "*", "x"}
	tree, ok := cnf.Parse(toks)
	if !ok {
		t.Fatal("y + 1 * x not parsed")
	}
	// The leaves must round-trip.
	got := tree.Leaves()
	for i := range toks {
		if got[i] != toks[i] {
			t.Fatalf("leaves = %v", got)
		}
	}
	// Multiplication precedence: "1 * x" must form a subtree that excludes
	// "y"; equivalently some node's frontier is exactly [1 * x].
	if !hasFrontier(tree, []string{"1", "*", "x"}) {
		t.Errorf("no subtree spans 1*x; parse = %v", tree)
	}
	if hasFrontier(tree, []string{"y", "+", "1"}) {
		t.Errorf("addition grabbed 1 before *; parse = %v", tree)
	}
}

func hasFrontier(t *Tree, want []string) bool {
	if frontierEq(t.Leaves(), want) {
		return true
	}
	for _, c := range t.Children {
		if hasFrontier(c, want) {
			return true
		}
	}
	return false
}

func frontierEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecognizeRejectsIllFormed(t *testing.T) {
	cnf := Arithmetic().ToCNF()
	bad := [][]string{
		{"+", "x"},
		{"x", "+"},
		{"(", "x"},
		{"x", "y"},
		{"*"},
	}
	for _, toks := range bad {
		if cnf.Recognize(toks) {
			t.Errorf("ill-formed %v recognized", toks)
		}
	}
	good := [][]string{
		{"x"},
		{"x", "+", "y"},
		// Note: "( x + y ) * 1" is NOT in Figure 3's language (the left
		// factor of * must be a VALUE), but "1 * ( x + y )" is.
		{"1", "*", "(", "x", "+", "y", ")"},
	}
	for _, toks := range good {
		if !cnf.Recognize(toks) {
			t.Errorf("well-formed %v rejected", toks)
		}
	}
}

func TestInsideProbPositiveForGrammatical(t *testing.T) {
	g := Arithmetic()
	cnf := g.ToCNF()
	if p := cnf.InsideProb([]string{"x", "+", "y"}); p <= 0 {
		t.Errorf("inside prob = %v, want > 0", p)
	}
	if p := cnf.InsideProb([]string{"+", "+"}); p != 0 {
		t.Errorf("inside prob of garbage = %v, want 0", p)
	}
}

func TestInsideProbSumsOverParses(t *testing.T) {
	// Ambiguous grammar: S → S S | a. "a a a" has 2 parses each with
	// p = P(S→SS)^2 * P(S→a)^3.
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"S", "S"}, Prob: 0.4},
		{Lhs: "S", Rhs: []string{"a"}, Prob: 0.6},
	})
	cnf := g.ToCNF()
	got := cnf.InsideProb([]string{"a", "a", "a"})
	want := 2 * 0.4 * 0.4 * 0.6 * 0.6 * 0.6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("inside prob = %v, want %v", got, want)
	}
}

func TestTinyEnglishGeneratesAndParses(t *testing.T) {
	g := TinyEnglish()
	cnf := g.ToCNF()
	rng := mathx.NewRNG(3)
	for i := 0; i < 30; i++ {
		s := g.GenerateSentence(rng, 10)
		if len(s) < 2 {
			t.Fatalf("degenerate sentence %v", s)
		}
		if !cnf.Recognize(s) {
			t.Fatalf("sentence not in own language: %v", s)
		}
	}
}

func TestTinyEnglishHasAnalogyVocabulary(t *testing.T) {
	ts := strings.Join(TinyEnglish().Terminals(), " ")
	for _, w := range []string{"king", "queen", "man", "woman"} {
		if !strings.Contains(ts, w) {
			t.Errorf("analogy word %q missing", w)
		}
	}
}

func TestLeafDistancesLinearTree(t *testing.T) {
	// (S (A a) (B b)) — distance a↔b = 4 edges? a→A→S→B→b = 4.
	tr := &Tree{Symbol: "S", Children: []*Tree{
		{Symbol: "A", Children: []*Tree{{Symbol: "a"}}},
		{Symbol: "B", Children: []*Tree{{Symbol: "b"}}},
	}}
	d := LeafDistances(tr)
	if d[0][1] != 4 || d[1][0] != 4 {
		t.Errorf("distance = %d, want 4", d[0][1])
	}
	if d[0][0] != 0 {
		t.Errorf("self distance = %d", d[0][0])
	}
}

func TestLeafDistancesTriangleInequality(t *testing.T) {
	g := Arithmetic()
	rng := mathx.NewRNG(4)
	for trial := 0; trial < 20; trial++ {
		tr := g.Generate(rng, 8)
		d := LeafDistances(tr)
		n := len(d)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if d[i][j] > d[i][k]+d[k][j] {
						t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
					}
				}
				if i != j && d[i][j] < 2 {
					t.Fatalf("distinct leaves at distance %d", d[i][j])
				}
			}
		}
	}
}

func TestViterbiParseIsMostProbable(t *testing.T) {
	// Ambiguous grammar with asymmetric probabilities: left-branching parse
	// should win when S→SS is applied high on the left.
	g := MustNew("S", []Rule{
		{Lhs: "S", Rhs: []string{"S", "S"}, Prob: 0.3},
		{Lhs: "S", Rhs: []string{"a"}, Prob: 0.7},
	})
	cnf := g.ToCNF()
	tree, ok := cnf.Parse([]string{"a", "a", "a"})
	if !ok {
		t.Fatal("parse failed")
	}
	if got := tree.Leaves(); len(got) != 3 {
		t.Fatalf("leaves = %v", got)
	}
}

func TestChronicleIsLowEntropy(t *testing.T) {
	g := Chronicle()
	cnf := g.ToCNF()
	rng := mathx.NewRNG(5)
	distinct := map[string]bool{}
	for i := 0; i < 50; i++ {
		s := g.GenerateSentence(rng, 12)
		// Every derivation instantiates the single 18-token template: a
		// 7-token subject and an 11-token deed.
		if len(s) != 18 {
			t.Fatalf("chronicle sentence has %d tokens, want 18: %v", len(s), s)
		}
		if !cnf.Recognize(s) {
			t.Fatalf("sentence not in own language: %v", s)
		}
		distinct[strings.Join(s, " ")] = true
	}
	// Four independent binary branch points bound the language at 16
	// sentences — the determinism the speculative-decoding bench relies on.
	if len(distinct) > 16 {
		t.Errorf("chronicle produced %d distinct sentences, want <= 16", len(distinct))
	}
}
