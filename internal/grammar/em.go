package grammar

import (
	"fmt"
	"math"
)

// Reestimate runs iters rounds of Inside-Outside EM on the CNF grammar's
// rule probabilities, fitting them to the sentence corpus (Appendix A's
// "algorithm for learning a grammar from a corpus": the rule structure is
// fixed, the probabilities are learned). It returns a new CNF; the receiver
// is unchanged. Sentences outside the grammar's language are skipped.
//
// EM guarantees the corpus log-likelihood is non-decreasing per iteration —
// the invariant the tests check.
func (c *CNF) Reestimate(corpus [][]string, iters int) (*CNF, error) {
	cur := c.clone()
	for it := 0; it < iters; it++ {
		binCount := make([]float64, len(cur.Binary))
		unCount := make([]float64, len(cur.Unary))
		used := 0
		for _, sent := range corpus {
			if cur.accumulate(sent, binCount, unCount) {
				used++
			}
		}
		if used == 0 {
			return nil, fmt.Errorf("grammar: no corpus sentence is in the language")
		}
		// Normalize per left-hand side.
		totals := map[string]float64{}
		for i, r := range cur.Binary {
			totals[r.Lhs] += binCount[i]
		}
		for i, r := range cur.Unary {
			totals[r.Lhs] += unCount[i]
		}
		for i := range cur.Binary {
			if t := totals[cur.Binary[i].Lhs]; t > 0 {
				cur.Binary[i].Prob = binCount[i] / t
			}
		}
		for i := range cur.Unary {
			if t := totals[cur.Unary[i].Lhs]; t > 0 {
				cur.Unary[i].Prob = unCount[i] / t
			}
		}
	}
	return cur, nil
}

func (c *CNF) clone() *CNF {
	return &CNF{
		Start:  c.Start,
		Binary: append([]Rule(nil), c.Binary...),
		Unary:  append([]Rule(nil), c.Unary...),
	}
}

// LogLikelihood returns the summed log inside probability of the sentences
// that parse (and the number that did).
func (c *CNF) LogLikelihood(corpus [][]string) (ll float64, parsed int) {
	for _, sent := range corpus {
		p := c.InsideProb(sent)
		if p > 0 {
			ll += math.Log(p)
			parsed++
		}
	}
	return ll, parsed
}

// accumulate adds one sentence's expected rule counts (inside-outside) into
// binCount/unCount. It reports whether the sentence parses.
func (c *CNF) accumulate(tokens []string, binCount, unCount []float64) bool {
	n := len(tokens)
	if n == 0 {
		return false
	}
	idx := func(i, j int) int { return i*n + j }

	// Inside pass.
	inside := make([]map[string]float64, n*n)
	for i := range inside {
		inside[i] = map[string]float64{}
	}
	for i, tok := range tokens {
		for _, r := range c.Unary {
			if r.Rhs[0] == tok {
				inside[idx(i, i)][r.Lhs] += r.Prob
			}
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span - 1
			for k := i; k < j; k++ {
				left, right := inside[idx(i, k)], inside[idx(k+1, j)]
				if len(left) == 0 || len(right) == 0 {
					continue
				}
				for _, r := range c.Binary {
					pl, ok1 := left[r.Rhs[0]]
					if !ok1 {
						continue
					}
					pr, ok2 := right[r.Rhs[1]]
					if !ok2 {
						continue
					}
					inside[idx(i, j)][r.Lhs] += r.Prob * pl * pr
				}
			}
		}
	}
	total := inside[idx(0, n-1)][c.Start]
	if total <= 0 {
		return false
	}

	// Outside pass.
	outside := make([]map[string]float64, n*n)
	for i := range outside {
		outside[i] = map[string]float64{}
	}
	outside[idx(0, n-1)][c.Start] = 1
	for span := n; span >= 2; span-- {
		for i := 0; i+span <= n; i++ {
			j := i + span - 1
			out := outside[idx(i, j)]
			if len(out) == 0 {
				continue
			}
			for k := i; k < j; k++ {
				left, right := inside[idx(i, k)], inside[idx(k+1, j)]
				for _, r := range c.Binary {
					oa, ok := out[r.Lhs]
					if !ok || oa == 0 {
						continue
					}
					pl, ok1 := left[r.Rhs[0]]
					pr, ok2 := right[r.Rhs[1]]
					if !ok1 || !ok2 {
						continue
					}
					outside[idx(i, k)][r.Rhs[0]] += oa * r.Prob * pr
					outside[idx(k+1, j)][r.Rhs[1]] += oa * r.Prob * pl
				}
			}
		}
	}

	// Expected counts.
	for ri, r := range c.Binary {
		for span := 2; span <= n; span++ {
			for i := 0; i+span <= n; i++ {
				j := i + span - 1
				oa, ok := outside[idx(i, j)][r.Lhs]
				if !ok || oa == 0 {
					continue
				}
				for k := i; k < j; k++ {
					pl, ok1 := inside[idx(i, k)][r.Rhs[0]]
					pr, ok2 := inside[idx(k+1, j)][r.Rhs[1]]
					if !ok1 || !ok2 {
						continue
					}
					binCount[ri] += oa * r.Prob * pl * pr / total
				}
			}
		}
	}
	for ri, r := range c.Unary {
		for i, tok := range tokens {
			if r.Rhs[0] != tok {
				continue
			}
			if oa, ok := outside[idx(i, i)][r.Lhs]; ok && oa > 0 {
				unCount[ri] += oa * r.Prob / total
			}
		}
	}
	return true
}
