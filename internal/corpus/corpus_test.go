package corpus

import (
	"strings"
	"testing"

	"repro/internal/grammar"
	"repro/internal/mathx"
)

func TestPCFGTextGrammatical(t *testing.T) {
	g := grammar.TinyEnglish()
	cnf := g.ToCNF()
	lines := PCFGText(g, 20, 10, mathx.NewRNG(1))
	if len(lines) != 20 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if !cnf.Recognize(strings.Fields(l)) {
			t.Errorf("ungrammatical line %q", l)
		}
	}
}

func TestPCFGTreebankConsistent(t *testing.T) {
	g := grammar.Arithmetic()
	sents, trees := PCFGTreebank(g, 10, 8, mathx.NewRNG(2))
	for i := range sents {
		leaves := trees[i].Leaves()
		if len(leaves) != len(sents[i]) {
			t.Fatalf("tree/sentence length mismatch at %d", i)
		}
		for j := range leaves {
			if leaves[j] != sents[i][j] {
				t.Fatalf("tree leaves differ from sentence at %d", i)
			}
		}
	}
}

func TestModularAdditionComplete(t *testing.T) {
	p := 7
	eqs := ModularAddition(p)
	if len(eqs) != p*p {
		t.Fatalf("got %d equations, want %d", len(eqs), p*p)
	}
	for _, e := range eqs {
		if e.C != (e.A+e.B)%p {
			t.Fatalf("wrong sum: %+v", e)
		}
	}
}

func TestModularMultiplication(t *testing.T) {
	for _, e := range ModularMultiplication(5) {
		if e.C != (e.A*e.B)%5 {
			t.Fatalf("wrong product: %+v", e)
		}
	}
}

func TestSplitEquationsPartition(t *testing.T) {
	eqs := ModularAddition(11)
	train, test := SplitEquations(eqs, 0.6, mathx.NewRNG(3))
	if len(train)+len(test) != len(eqs) {
		t.Fatalf("split lost items: %d + %d != %d", len(train), len(test), len(eqs))
	}
	if len(train) != int(0.6*float64(len(eqs))) {
		t.Errorf("train size %d", len(train))
	}
	// No overlap.
	seen := map[ModEquation]bool{}
	for _, e := range train {
		seen[e] = true
	}
	for _, e := range test {
		if seen[e] {
			t.Fatalf("equation %+v in both splits", e)
		}
	}
}

func TestEncodeEquation(t *testing.T) {
	p := 7
	ids := EncodeEquation(ModEquation{A: 3, B: 5, C: 1}, p)
	want := []int{3, 7, 5, 8, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("encoded = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if id >= ModVocabSize(p) {
			t.Fatalf("token %d exceeds vocab %d", id, ModVocabSize(p))
		}
	}
}

func TestInductionSequenceProperty(t *testing.T) {
	rng := mathx.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		seq, target := InductionSequence(24, 10, rng)
		last := seq[len(seq)-1]
		// The trigger token must appear exactly once before the end, and the
		// target must be the token right after that occurrence.
		count, pos := 0, -1
		for i := 0; i < len(seq)-1; i++ {
			if seq[i] == last {
				count++
				pos = i
			}
		}
		if count != 1 {
			t.Fatalf("trigger appears %d times: %v", count, seq)
		}
		if seq[pos+1] != target {
			t.Fatalf("target %d != token after trigger %d", target, seq[pos+1])
		}
	}
}

func TestRepeatedBigramCorpusShape(t *testing.T) {
	rng := mathx.NewRNG(5)
	seqs := RepeatedBigramCorpus(10, 16, 8, rng)
	if len(seqs) != 10 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	for _, s := range seqs {
		if len(s) != 16 {
			t.Fatalf("length %d", len(s))
		}
		for i := 0; i < 8; i++ {
			if s[i] != s[i+8] {
				t.Fatalf("second half not a repeat: %v", s)
			}
		}
	}
}

func TestMakeWindows(t *testing.T) {
	stream := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	ws := MakeWindows(stream, 4)
	if len(ws) != 2 {
		t.Fatalf("got %d windows", len(ws))
	}
	w := ws[0]
	for k := range w.Input {
		if w.Target[k] != w.Input[k]+1 {
			t.Fatalf("target misaligned: %+v", w)
		}
	}
	if ws[1].Input[0] != 4 {
		t.Fatalf("second window starts at %d", ws[1].Input[0])
	}
}

func TestConcat(t *testing.T) {
	enc := func(s string) []int {
		out := make([]int, len(s))
		for i := range s {
			out[i] = int(s[i] - 'a')
		}
		return out
	}
	got := Concat([]string{"ab", "c"}, enc, 99)
	want := []int{0, 1, 99, 2, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat = %v", got)
		}
	}
	noSep := Concat([]string{"ab", "c"}, enc, -1)
	if len(noSep) != 3 {
		t.Fatalf("Concat without sep = %v", noSep)
	}
}

// TestVarianceProblemMatchesFigure1 reproduces the exact instance in the
// paper's Figure 1: variance 10 → n=11, variance 16 → m=7, answer 18.
func TestVarianceProblemMatchesFigure1(t *testing.T) {
	p := VarianceProblem(11, 7)
	if !strings.Contains(p.Question, "10") {
		t.Errorf("question lacks variance 10: %q", p.Question)
	}
	if !strings.Contains(p.Question, "16") {
		t.Errorf("question lacks variance 16: %q", p.Question)
	}
	if p.Answer != "18" {
		t.Errorf("answer = %q, want 18", p.Answer)
	}
	if len(p.Steps) == 0 {
		t.Error("no chain-of-thought steps")
	}
}

func TestArithChainProblem(t *testing.T) {
	p := ArithChainProblem(5, 3, 2)
	if p.Answer != "6" {
		t.Errorf("answer = %q", p.Answer)
	}
	if len(p.Steps) != 2 {
		t.Errorf("steps = %v", p.Steps)
	}
}

func TestSumDiffProblem(t *testing.T) {
	p := SumDiffProblem(10, 4)
	if p.Answer != "7" {
		t.Errorf("answer = %q", p.Answer)
	}
}

func TestProblemSetWellFormed(t *testing.T) {
	ps := ProblemSet(50, mathx.NewRNG(6))
	for i, p := range ps {
		if p.Question == "" || p.Answer == "" || len(p.Steps) == 0 {
			t.Fatalf("problem %d malformed: %+v", i, p)
		}
	}
}

func TestFullTextCoTToggle(t *testing.T) {
	p := ArithChainProblem(1, 2, 0)
	with := p.FullText(true)
	without := p.FullText(false)
	if !strings.Contains(with, p.Steps[0]) {
		t.Error("CoT text missing steps")
	}
	if strings.Contains(without, p.Steps[0]) {
		t.Error("direct text leaked steps")
	}
	if !strings.HasSuffix(with, "answer "+p.Answer) || !strings.HasSuffix(without, "answer "+p.Answer) {
		t.Error("answer suffix missing")
	}
}

func TestAnalogyCorpusVocabulary(t *testing.T) {
	lines := AnalogyCorpus(400, mathx.NewRNG(7))
	if len(lines) < 400 {
		t.Fatalf("got %d lines", len(lines))
	}
	all := strings.Join(lines, " ")
	for _, w := range []string{"king", "queen", "man", "woman", "he", "she", "crown"} {
		if !strings.Contains(all, w) {
			t.Errorf("corpus missing %q", w)
		}
	}
}

func TestAnalogyCorpusGenderBalance(t *testing.T) {
	lines := AnalogyCorpus(1000, mathx.NewRNG(8))
	counts := map[string]int{}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			counts[w]++
		}
	}
	if counts["king"] == 0 || counts["queen"] == 0 {
		t.Fatal("royal words absent")
	}
	ratio := float64(counts["king"]) / float64(counts["queen"])
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("king/queen imbalance: %v", ratio)
	}
}

func TestRunningChainProblem(t *testing.T) {
	p := RunningChainProblem(3, []int{2, -1, 4})
	if p.Answer != "8" {
		t.Errorf("answer = %q", p.Answer)
	}
	if !strings.Contains(p.Question, "start 3") || !strings.Contains(p.Question, "sub 1") {
		t.Errorf("question = %q", p.Question)
	}
	if p.Steps[1] != "5 - 1 = 4" {
		t.Errorf("step = %q", p.Steps[1])
	}
}

func TestRunningChainSetBounded(t *testing.T) {
	rng := mathx.NewRNG(9)
	for _, p := range RunningChainSet(100, 3, rng) {
		// Answer must be a single digit (running totals bounded to [0, 9]).
		if len(p.Answer) != 1 || p.Answer[0] < '0' || p.Answer[0] > '9' {
			t.Fatalf("answer out of range: %q", p.Answer)
		}
		if len(p.Steps) != 3 {
			t.Fatalf("steps = %v", p.Steps)
		}
	}
}
