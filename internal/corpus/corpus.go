// Package corpus generates the synthetic datasets that substitute for the
// paper's web-scale corpora and proprietary benchmarks (§4's "toy worlds"):
// PCFG-generated text, modular-arithmetic equations (the grokking task),
// copy/induction sequences (the induction-head task), templated English for
// embeddings, and the quantitative word problems of Figure 1.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/grammar"
	"repro/internal/mathx"
)

// PCFGText samples n sentences from g (depth-bounded) and returns them as
// whitespace-joined lines. This is the stand-in for "natural language" in
// the scaling-law and probing experiments.
func PCFGText(g *grammar.Grammar, n, maxDepth int, rng *mathx.RNG) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = strings.Join(g.GenerateSentence(rng, maxDepth), " ")
	}
	return lines
}

// PCFGTreebank samples n derivations and returns both sentences and gold
// parse trees — the substitute for the Penn Treebank as structural-probe
// supervision (§7).
func PCFGTreebank(g *grammar.Grammar, n, maxDepth int, rng *mathx.RNG) ([][]string, []*grammar.Tree) {
	sents := make([][]string, n)
	trees := make([]*grammar.Tree, n)
	for i := range sents {
		trees[i] = g.Generate(rng, maxDepth)
		sents[i] = trees[i].Leaves()
	}
	return sents, trees
}

// ---- Modular arithmetic (grokking task) ----

// ModEquation is one training item of the modular-addition toy world:
// the statement "a + b = c (mod modulus)".
type ModEquation struct {
	A, B, C int
}

// ModularAddition enumerates all p² equations a+b≡c (mod p).
func ModularAddition(p int) []ModEquation {
	eqs := make([]ModEquation, 0, p*p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			eqs = append(eqs, ModEquation{A: a, B: b, C: (a + b) % p})
		}
	}
	return eqs
}

// ModularMultiplication enumerates all p² equations a*b≡c (mod p).
func ModularMultiplication(p int) []ModEquation {
	eqs := make([]ModEquation, 0, p*p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			eqs = append(eqs, ModEquation{A: a, B: b, C: (a * b) % p})
		}
	}
	return eqs
}

// SplitEquations shuffles eqs deterministically and splits off trainFrac of
// them for training, the rest for test — the data regime where grokking is
// observed (§4).
func SplitEquations(eqs []ModEquation, trainFrac float64, rng *mathx.RNG) (train, test []ModEquation) {
	perm := rng.Perm(len(eqs))
	cut := int(trainFrac * float64(len(eqs)))
	for i, pi := range perm {
		if i < cut {
			train = append(train, eqs[pi])
		} else {
			test = append(test, eqs[pi])
		}
	}
	return train, test
}

// ModVocabSize returns the token vocabulary size for modulus-p equation
// sequences: p residue tokens plus the operator and equals tokens.
func ModVocabSize(p int) int { return p + 2 }

// EncodeEquation renders eq as the token sequence [a, op, b, eq, c] with
// residues 0..p-1 as themselves, op = p, "=" = p+1. The model is trained to
// predict the final token c.
func EncodeEquation(eq ModEquation, p int) []int {
	return []int{eq.A, p, eq.B, p + 1, eq.C}
}

// ---- Copy / induction sequences ----

// InductionSequence builds a random token sequence of length n over vocab
// [0, vocab) in which the final token is a repeat trigger: the sequence ends
// with a token A that appeared earlier, so the correct continuation is the
// token B that followed A's first occurrence ("A B ... A → B", §7).
// It returns the sequence and the target token B.
func InductionSequence(n, vocab int, rng *mathx.RNG) ([]int, int) {
	if n < 4 {
		panic("corpus: induction sequence needs n >= 4")
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = rng.Intn(vocab)
	}
	// Choose the A-B bigram position in the first half and force the final
	// token to be A.
	pos := rng.Intn(n/2 - 1)
	a := seq[pos]
	b := seq[pos+1]
	// Make A unique before the final repeat so the target is unambiguous.
	for i := range seq[:n-1] {
		if i != pos && seq[i] == a {
			seq[i] = (seq[i] + 1) % vocab
			if seq[i] == a {
				seq[i] = (seq[i] + 1) % vocab
			}
		}
	}
	b = seq[pos+1] // may have been rewritten if it equalled a
	seq[n-1] = a
	return seq, b
}

// RepeatedBigramCorpus generates m training sequences of length n where the
// second half repeats the first half — dense supervision for learning the
// induction circuit.
func RepeatedBigramCorpus(m, n, vocab int, rng *mathx.RNG) [][]int {
	if n%2 != 0 {
		n++
	}
	out := make([][]int, m)
	for i := range out {
		half := make([]int, n/2)
		for j := range half {
			half[j] = rng.Intn(vocab)
		}
		seq := make([]int, 0, n)
		seq = append(seq, half...)
		seq = append(seq, half...)
		out[i] = seq
	}
	return out
}

// ---- LM windowing ----

// Window is one next-token-prediction training example: the model sees
// Input[0..k] and must predict Target[k] for every k (teacher forcing).
type Window struct {
	Input  []int // length L
	Target []int // length L; Target[k] is the token after Input[k]; -1 = pad
}

// MakeWindows slices the token stream into non-overlapping next-token
// windows of length window (the dataset layout behind Eq. 3).
func MakeWindows(stream []int, window int) []Window {
	var ws []Window
	for start := 0; start+window+1 <= len(stream); start += window {
		in := stream[start : start+window]
		tg := stream[start+1 : start+window+1]
		ws = append(ws, Window{Input: append([]int(nil), in...), Target: append([]int(nil), tg...)})
	}
	return ws
}

// Concat flattens lines into one token stream by encoding each line with
// encode and separating lines with sep (pass a negative sep to omit).
func Concat(lines []string, encode func(string) []int, sep int) []int {
	var stream []int
	for _, l := range lines {
		stream = append(stream, encode(l)...)
		if sep >= 0 {
			stream = append(stream, sep)
		}
	}
	return stream
}

// ---- Word problems (Figure 1 family) ----

// Problem is one quantitative QA item with optional chain-of-thought.
type Problem struct {
	Question string
	Steps    []string // intermediate reasoning lines (chain of thought)
	Answer   string
}

// VarianceProblem constructs the exact problem family of Figure 1: given
// variance of the first n naturals ((n²-1)/12) and the variance of the first
// m even naturals ((m²-1)/3), compute m+n. Both n and m must be > 0.
func VarianceProblem(n, m int) Problem {
	v1n, v1d := n*n-1, 12
	v2n, v2d := m*m-1, 3
	q := fmt.Sprintf(
		"assume that the variance of the first %d natural numbers is %s , and the variance of the first %d even natural numbers is %s . compute m + n .",
		n, frac(v1n, v1d), m, frac(v2n, v2d))
	steps := []string{
		fmt.Sprintf("tau2 = ( n2 - 1 ) / 12 = %s so n2 = %d", frac(v1n, v1d), n*n),
		fmt.Sprintf("sigma2 = ( m2 - 1 ) / 3 = %s so m2 = %d", frac(v2n, v2d), m*m),
		fmt.Sprintf("n = %d and m = %d", n, m),
	}
	return Problem{Question: q, Steps: steps, Answer: fmt.Sprintf("%d", n+m)}
}

func frac(num, den int) string {
	if num%den == 0 {
		return fmt.Sprintf("%d", num/den)
	}
	return fmt.Sprintf("%d / %d", num, den)
}

// ArithChainProblem builds a two-step word problem: start with a items, gain
// b, lose c; the answer is a+b-c. Requires a+b >= c.
func ArithChainProblem(a, b, c int) Problem {
	q := fmt.Sprintf("alice has %d apples . bob gives her %d more . she loses %d . how many apples does alice have ?", a, b, c)
	steps := []string{
		fmt.Sprintf("%d + %d = %d", a, b, a+b),
		fmt.Sprintf("%d - %d = %d", a+b, c, a+b-c),
	}
	return Problem{Question: q, Steps: steps, Answer: fmt.Sprintf("%d", a+b-c)}
}

// RunningChainProblem builds a multi-step accumulation problem: start from
// a value and apply signed deltas; the chain-of-thought steps show each
// running total. This is the scratchpad family where intermediate steps
// reuse a small table of single-op facts while the direct answer requires
// composing the whole chain in one hop — the regime where chain-of-thought
// prompting helps most (Figure 1 discussion).
func RunningChainProblem(start int, deltas []int) Problem {
	var q strings.Builder
	fmt.Fprintf(&q, "start %d .", start)
	total := start
	var steps []string
	for _, d := range deltas {
		op, mag := "add", d
		sym := "+"
		if d < 0 {
			op, mag, sym = "sub", -d, "-"
		}
		fmt.Fprintf(&q, " %s %d .", op, mag)
		steps = append(steps, fmt.Sprintf("%d %s %d = %d", total, sym, mag, total+d))
		total += d
	}
	q.WriteString(" result ?")
	return Problem{Question: q.String(), Steps: steps, Answer: fmt.Sprintf("%d", total)}
}

// RunningChainSet samples n chain problems with the given number of steps,
// keeping every running total within [0, 9] so the single-op fact table
// stays small.
func RunningChainSet(n, steps int, rng *mathx.RNG) []Problem {
	ps := make([]Problem, n)
	for i := range ps {
		start := rng.Intn(6)
		total := start
		deltas := make([]int, steps)
		for s := range deltas {
			for {
				d := rng.Intn(9) - 4 // -4..4
				if total+d >= 0 && total+d <= 9 {
					deltas[s] = d
					total += d
					break
				}
			}
		}
		ps[i] = RunningChainProblem(start, deltas)
	}
	return ps
}

// SumDiffProblem: two numbers sum to s and differ by d (same parity);
// the answer is the larger number (s+d)/2.
func SumDiffProblem(s, d int) Problem {
	q := fmt.Sprintf("two numbers sum to %d and differ by %d . compute the larger number .", s, d)
	steps := []string{
		fmt.Sprintf("%d + %d = %d", s, d, s+d),
		fmt.Sprintf("%d / 2 = %d", s+d, (s+d)/2),
	}
	return Problem{Question: q, Steps: steps, Answer: fmt.Sprintf("%d", (s+d)/2)}
}

// ProblemSet samples n mixed problems from the three families with
// parameters small enough to tokenize compactly.
func ProblemSet(n int, rng *mathx.RNG) []Problem {
	ps := make([]Problem, n)
	for i := range ps {
		switch rng.Intn(3) {
		case 0:
			ps[i] = VarianceProblem(2+rng.Intn(18), 2+rng.Intn(18))
		case 1:
			a, b := rng.Intn(20), rng.Intn(20)
			c := rng.Intn(a + b + 1)
			ps[i] = ArithChainProblem(a, b, c)
		default:
			x, y := 1+rng.Intn(20), 1+rng.Intn(20)
			if x < y {
				x, y = y, x
			}
			ps[i] = SumDiffProblem(x+y, x-y)
		}
	}
	return ps
}

// FullText renders a problem as training text: question, chain-of-thought
// steps, then "answer <answer>". withCoT=false omits the steps (the direct-
// answer ablation of experiment E3).
func (p Problem) FullText(withCoT bool) string {
	var b strings.Builder
	b.WriteString(p.Question)
	if withCoT {
		for _, s := range p.Steps {
			b.WriteString(" ; ")
			b.WriteString(s)
		}
	}
	b.WriteString(" answer ")
	b.WriteString(p.Answer)
	return b.String()
}

// ---- Templated English for embedding analogies ----

// AnalogyCorpus generates sentence templates in which word families
// (king/queen/man/woman, prince/princess, actor/actress) appear in
// distributionally parallel contexts, so that co-occurrence embeddings
// exhibit the Eq. 9 linear analogy structure.
func AnalogyCorpus(n int, rng *mathx.RNG) []string {
	male := []string{"king", "man", "prince", "actor", "father", "brother"}
	female := []string{"queen", "woman", "princess", "actress", "mother", "sister"}
	maleCtx := []string{"he", "his", "him", "sir", "lord"}
	femaleCtx := []string{"she", "her", "hers", "lady", "dame"}
	royal := map[string]bool{"king": true, "queen": true, "prince": true, "princess": true}
	shared := [][]string{
		{"the", "%s", "walked", "to", "the", "castle"},
		{"the", "%s", "spoke", "to", "the", "crowd"},
		{"people", "saw", "the", "%s", "in", "the", "garden"},
		{"the", "%s", "smiled"},
		{"a", "%s", "arrived", "at", "dawn"},
	}
	royalTmpl := [][]string{
		{"the", "%s", "wore", "the", "crown"},
		{"the", "%s", "ruled", "the", "kingdom"},
		{"the", "%s", "sat", "on", "the", "throne"},
	}
	var lines []string
	emit := func(word string, ctx []string, tmpl []string) {
		parts := make([]string, 0, len(tmpl))
		for _, t := range tmpl {
			if t == "%s" {
				parts = append(parts, word)
			} else {
				parts = append(parts, t)
			}
		}
		lines = append(lines, strings.Join(parts, " "))
		// A short gendered sentence keeps the gender marker within any
		// reasonable co-occurrence window of the head word, mirroring the
		// natural co-occurrence statistics behind Eq. 10.
		lines = append(lines, "the "+word+" and "+ctx[rng.Intn(len(ctx))])
	}
	for len(lines) < n {
		i := rng.Intn(len(male))
		tmpl := shared[rng.Intn(len(shared))]
		// Royal words additionally co-occur with royal contexts.
		if royal[male[i]] && rng.Float64() < 0.5 {
			tmpl = royalTmpl[rng.Intn(len(royalTmpl))]
		}
		emit(male[i], maleCtx, tmpl)
		if len(lines) < n {
			tmplF := tmpl
			if royal[female[i]] != royal[male[i]] {
				tmplF = shared[rng.Intn(len(shared))]
			}
			emit(female[i], femaleCtx, tmplF)
		}
	}
	return lines
}
