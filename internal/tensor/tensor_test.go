package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestNewAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || a.Dims() != 3 {
		t.Fatalf("size=%d dims=%d", a.Size(), a.Dims())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapePreservesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Fatalf("reshape lost data: %v", b)
	}
	b.Set(0, 0, 99)
	if a.At(0, 0) != 99 {
		t.Fatal("reshape should share storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
}

func TestAddInPlaceAndScaled(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	AddInPlace(a, b)
	if a.Data[1] != 4 {
		t.Errorf("AddInPlace = %v", a.Data)
	}
	AddScaledInPlace(a, -0.5, b)
	if a.Data[0] != 2 || a.Data[1] != 2.5 {
		t.Errorf("AddScaledInPlace = %v", a.Data)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{-1, 2}, 2)
	r := Apply(a, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	})
	if r.Data[0] != 0 || r.Data[1] != 2 {
		t.Errorf("Apply(relu) = %v", r.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := AddRowVector(a, []float64{10, 20})
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if r.Data[i] != want[i] {
			t.Fatalf("AddRowVector = %v, want %v", r.Data, want)
		}
	}
}

func TestSumRowsAndReductions(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	sr := SumRows(a)
	if sr[0] != 4 || sr[1] != 6 {
		t.Errorf("SumRows = %v", sr)
	}
	if SumAll(a) != 10 || MeanAll(a) != 2.5 || MaxAll(a) != 4 {
		t.Error("reductions wrong")
	}
	if n := Norm2(FromSlice([]float64{3, 4}, 2)); n != 5 {
		t.Errorf("Norm2 = %v", n)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := mathx.NewRNG(1)
	a := New(5, 5).RandNorm(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A·I != A")
		}
	}
}

// TestMatMulParallelMatchesSerial forces the parallel path and compares with
// a naive serial product.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := mathx.NewRNG(2)
	m, k, n := 80, 70, 90 // m*n*k > parallelThreshold
	a := New(m, k).RandNorm(rng, 1)
	b := New(k, n).RandNorm(rng, 1)
	got := MatMul(a, b)
	for i := 0; i < m; i += 17 {
		for j := 0; j < n; j += 13 {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			if math.Abs(got.At(i, j)-s) > 1e-9 {
				t.Fatalf("parallel MatMul mismatch at (%d,%d): %v vs %v", i, j, got.At(i, j), s)
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v", at)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := mathx.NewRNG(3)
	f := func(seed uint8) bool {
		r := mathx.NewRNG(uint64(seed) + rng.Uint64()%1000)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := New(m, k).RandNorm(r, 1)
		b := New(k, n).RandNorm(r, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range s.Row(i) {
			sum += v
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax value out of range: %v", v)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Second row is uniform.
	for _, v := range s.Row(1) {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform row wrong: %v", s.Row(1))
		}
	}
}

func TestLogSoftmaxConsistent(t *testing.T) {
	a := FromSlice([]float64{0.3, -1, 2, 5}, 1, 4)
	ls := LogSoftmaxRows(a)
	sm := SoftmaxRows(a)
	for i := range ls.Data {
		if math.Abs(math.Exp(ls.Data[i])-sm.Data[i]) > 1e-12 {
			t.Fatal("exp(logsoftmax) != softmax")
		}
	}
}

func TestRandNormStd(t *testing.T) {
	rng := mathx.NewRNG(5)
	a := New(10000).RandNorm(rng, 0.02)
	if v := mathx.Std(a.Data); math.Abs(v-0.02) > 0.002 {
		t.Errorf("std = %v, want ~0.02", v)
	}
}

func TestFillZero(t *testing.T) {
	a := New(3).Fill(7)
	if a.Data[2] != 7 {
		t.Fatal("Fill failed")
	}
	a.Zero()
	if a.Data[0] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestGatherRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	g := GatherRows(a, []int{2, 0, 2})
	want := []float64{5, 6, 1, 2, 5, 6}
	for i, v := range want {
		if g.Data[i] != v {
			t.Fatalf("GatherRows data[%d] = %v, want %v", i, g.Data[i], v)
		}
	}
	// The gathered rows are copies, not views.
	g.Data[0] = 99
	if a.Data[4] == 99 {
		t.Fatal("GatherRows aliases source storage")
	}
}

func TestMatMulBatchMatchesMatMul(t *testing.T) {
	rng := mathx.NewRNG(9)
	a := New(8, 16).RandNorm(rng, 1)
	bs := make([]*Tensor, 5)
	for i := range bs {
		bs[i] = New(16, 4+i).RandNorm(rng, 1)
	}
	got := MatMulBatch(a, bs)
	for i, b := range bs {
		want := MatMul(a, b)
		if !got[i].SameShape(want) {
			t.Fatalf("product %d shape %v, want %v", i, got[i].Shape, want.Shape)
		}
		for k := range want.Data {
			if got[i].Data[k] != want.Data[k] {
				t.Fatalf("product %d differs from MatMul at %d", i, k)
			}
		}
	}
}

func TestMatMulBatchLargeParallelPath(t *testing.T) {
	rng := mathx.NewRNG(10)
	a := New(64, 64).RandNorm(rng, 1)
	bs := make([]*Tensor, 3)
	for i := range bs {
		bs[i] = New(64, 64).RandNorm(rng, 1)
	}
	got := MatMulBatch(a, bs) // above the parallel threshold
	for i, b := range bs {
		want := MatMul(a, b)
		for k := range want.Data {
			if got[i].Data[k] != want.Data[k] {
				t.Fatalf("parallel product %d differs at %d", i, k)
			}
		}
	}
}

func TestEnsureReusesAndGrows(t *testing.T) {
	var s *Tensor
	a := Ensure(&s, 4, 8)
	if a != s || a.Shape[0] != 4 || a.Shape[1] != 8 || len(a.Data) != 32 {
		t.Fatalf("Ensure from nil: %v (len %d)", a.Shape, len(a.Data))
	}
	backing := &a.Data[0]
	// Shrinking the view reuses the backing array.
	b := Ensure(&s, 2, 8)
	if b.Shape[0] != 2 || len(b.Data) != 16 || &b.Data[0] != backing {
		t.Fatalf("Ensure shrink reallocated or misshaped: %v", b.Shape)
	}
	// Growing back within capacity also reuses it.
	c := Ensure(&s, 4, 8)
	if &c.Data[0] != backing {
		t.Fatal("Ensure regrow within capacity reallocated")
	}
	// Beyond capacity allocates fresh zeroed storage.
	d := Ensure(&s, 5, 8)
	if &d.Data[0] == backing || len(d.Data) != 40 {
		t.Fatalf("Ensure growth beyond capacity kept old storage (len %d)", len(d.Data))
	}
	for i, v := range d.Data {
		if v != 0 {
			t.Fatalf("fresh Ensure storage not zeroed at %d", i)
		}
	}
}
