package tensor

import (
	"fmt"
	"testing"

	"repro/internal/mathx"
)

// BenchmarkMatMul exercises the serial and parallel matmul paths.
func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{16, 64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := mathx.NewRNG(1)
			x := New(n, n).RandNorm(rng, 1)
			y := New(n, n).RandNorm(rng, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := mathx.NewRNG(2)
	x := New(128, 128).RandNorm(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}

func BenchmarkElementwiseAdd(b *testing.B) {
	rng := mathx.NewRNG(3)
	x := New(256, 256).RandNorm(rng, 1)
	y := New(256, 256).RandNorm(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(x, y)
	}
}
