package tensor

import (
	"testing"

	"repro/internal/mathx"
)

// TestMatMulIntoMatchesMatMul drives the panel-packed kernel across shapes
// on both sides of the small-product threshold: results must be bitwise
// identical to MatMul (same per-element accumulation order), and dst reuse
// with stale contents must not leak into the output.
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := mathx.NewRNG(7)
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {16, 16, 16}, {7, 129, 65},
		{64, 64, 70},   // crosses one panel boundary
		{96, 128, 200}, // above the parallel/panel threshold
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k).RandNorm(rng, 1)
		b := New(k, n).RandNorm(rng, 1)
		a.Data[0] = 0 // exercise the zero-skip path
		want := MatMul(a, b)
		dst := New(m, n).Fill(42) // stale contents must be overwritten
		got := MatMulInto(dst, a, b)
		if got != dst {
			t.Fatal("MatMulInto did not return dst")
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v elem %d: MatMulInto %v != MatMul %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulIntoPanics(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	for name, f := range map[string]func(){
		"inner mismatch": func() { MatMulInto(New(2, 2), a, New(2, 2)) },
		"dst shape":      func() { MatMulInto(New(3, 4), a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestTransposePackMatchesTranspose checks the tiled transpose across
// shapes that cover partial edge tiles.
func TestTransposePackMatchesTranspose(t *testing.T) {
	rng := mathx.NewRNG(8)
	for _, s := range [][2]int{{1, 1}, {3, 7}, {32, 32}, {33, 31}, {100, 5}, {64, 200}} {
		a := New(s[0], s[1]).RandNorm(rng, 1)
		want := Transpose(a)
		got := TransposePack(a)
		if !got.SameShape(want) {
			t.Fatalf("shape %v: TransposePack shape %v", s, got.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v elem %d differs", s, i)
			}
		}
	}
}

// TestMatMulBatchStillMatchesMatMul re-pins the serving-path guarantee after
// the MatMulInto rewrite: batched products stay bitwise identical to the
// unbatched kernel, including above the fan-out threshold.
func TestMatMulBatchStillMatchesMatMul(t *testing.T) {
	rng := mathx.NewRNG(9)
	a := New(48, 96).RandNorm(rng, 1)
	var bs []*Tensor
	for i := 0; i < 6; i++ {
		bs = append(bs, New(96, 64+i).RandNorm(rng, 1))
	}
	got := MatMulBatch(a, bs)
	for i, b := range bs {
		want := MatMul(a, b)
		for j := range want.Data {
			if got[i].Data[j] != want.Data[j] {
				t.Fatalf("product %d elem %d: batch %v != MatMul %v", i, j, got[i].Data[j], want.Data[j])
			}
		}
	}
}
