// Package tensor implements the dense n-dimensional float64 tensor engine
// that substitutes for the GPU tensor stack the paper's systems run on.
// It provides construction, views, elementwise kernels, reductions, and a
// parallel matrix multiply; package autograd builds backpropagation on top.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mathx"
)

// Tensor is a dense row-major tensor. Data is shared by views; use Clone for
// an independent copy.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension")
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Ensure resizes *t to a rows×cols matrix view, reusing the backing array
// when its capacity allows and allocating a fresh tensor otherwise (also
// when *t is nil). Reused storage keeps its stale contents — callers
// overwrite every element — so steady-state scratch arenas that Ensure the
// same shapes every call never touch the heap. It returns *t for chaining.
func Ensure(t **Tensor, rows, cols int) *Tensor {
	if *t == nil || cap((*t).Data) < rows*cols {
		*t = New(rows, cols)
		return *t
	}
	(*t).Shape[0], (*t).Shape[1] = rows, cols
	(*t).Data = (*t).Data[:rows*cols]
	return *t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (no copy). It panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, t.Size(), len(data)))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v size mismatch", t.Shape, shape))
	}
	return v
}

// At returns the element at the given multi-index of a 2-D tensor.
func (t *Tensor) At(i, j int) float64 {
	if len(t.Shape) != 2 {
		panic("tensor: At requires a 2-D tensor")
	}
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns the element at (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float64) {
	if len(t.Shape) != 2 {
		panic("tensor: Set requires a 2-D tensor")
	}
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a shared-storage view of row i of a 2-D tensor.
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Zero sets every element to 0 and returns t.
func (t *Tensor) Zero() *Tensor { return t.Fill(0) }

// RandNorm fills t with normal variates of the given std (mean 0), the
// initialization scheme of the paper's §6 (var ~ 1/p), and returns t.
func (t *Tensor) RandNorm(rng *mathx.RNG, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = rng.Norm() * std
	}
	return t
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if t.Size() > 64 {
		return fmt.Sprintf("Tensor(shape=%v, %d elems)", t.Shape, t.Size())
	}
	return fmt.Sprintf("Tensor(shape=%v, data=%v)", t.Shape, t.Data)
}

// ---- Elementwise kernels ----

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product a*b.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace accumulates b into a (a += b).
func AddInPlace(a, b *Tensor) {
	assertSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddScaledInPlace accumulates s*b into a (a += s*b), the axpy kernel used
// by the optimizers (paper Eq. 16).
func AddScaledInPlace(a *Tensor, s float64, b *Tensor) {
	assertSameShape("AddScaledInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// AddRowVector adds vector v (length = last dim) to every row of the 2-D
// tensor a — the broadcasting pattern used for biases and positional sums.
func AddRowVector(a *Tensor, v []float64) *Tensor {
	if len(a.Shape) != 2 || a.Shape[1] != len(v) {
		panic("tensor: AddRowVector shape mismatch")
	}
	out := a.Clone()
	for i := 0; i < a.Shape[0]; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return out
}

// ---- Reductions ----

// SumAll returns the sum of all elements.
func SumAll(a *Tensor) float64 { return mathx.Sum(a.Data) }

// MeanAll returns the mean of all elements.
func MeanAll(a *Tensor) float64 { return mathx.Mean(a.Data) }

// MaxAll returns the largest element.
func MaxAll(a *Tensor) float64 {
	_, v := mathx.ArgMax(a.Data)
	return v
}

// SumRows sums a 2-D tensor over its rows, returning a length-Cols vector.
// This is the gradient-accumulation pattern for broadcast biases.
func SumRows(a *Tensor) []float64 {
	if len(a.Shape) != 2 {
		panic("tensor: SumRows requires 2-D")
	}
	out := make([]float64, a.Shape[1])
	for i := 0; i < a.Shape[0]; i++ {
		row := a.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Norm2 returns the Euclidean norm of all elements (used for gradient
// clipping).
func Norm2(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ---- Matrix multiply ----

// parallelThreshold is the work size above which MatMul fans out across
// goroutines. Tuned so tiny test matrices stay single-threaded.
const parallelThreshold = 64 * 64 * 64

// MatMul returns the matrix product of 2-D tensors a (m×k) and b (k×n).
// Large products are computed in parallel across row blocks; this is the
// "given sufficiently many processors" parallelism of the paper's §6
// discussion of transformer vs RNN cost.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %v · %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	mulRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*n*k < parallelThreshold || m < 2 {
		mulRange(0, m)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MatMulInto computes the matrix product a·b into the preallocated dst
// (which must be m×n and may contain stale data) and returns dst. Large
// right operands are processed in packed column panels — each panel of b is
// copied into a contiguous scratch buffer so the inner loops stream
// sequentially — but the per-element accumulation order (k ascending, zero
// a-elements skipped) is exactly MatMul's, so results are bitwise identical.
// MatMulBatch routes through it; it is also the destination-reusing entry
// point for callers that hold their own output scratch.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMulInto requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner mismatch %v · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst %v, want [%d %d]", dst.Shape, m, n))
	}
	dst.Zero()
	// Small products: the plain MatMul kernel; packing would cost more than
	// it saves.
	if m*n*k < parallelThreshold {
		for i := 0; i < m; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := dst.Data[i*n : (i+1)*n]
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return dst
	}
	// Pack every column panel of b once, up front (panel p occupies
	// packed[p*k*panelCols:...], rows contiguous at the panel width); the
	// row-parallel workers then share the packed copy read-only.
	buf := packBuf.Get().(*[]float64)
	defer packBuf.Put(buf)
	if cap(*buf) < k*n {
		*buf = make([]float64, k*n)
	}
	packed := (*buf)[:k*n]
	np := 0
	for j0 := 0; j0 < n; j0 += panelCols {
		pw := n - j0
		if pw > panelCols {
			pw = panelCols
		}
		panel := packed[np : np+k*pw]
		for kk := 0; kk < k; kk++ {
			copy(panel[kk*pw:(kk+1)*pw], b.Data[kk*n+j0:kk*n+j0+pw])
		}
		np += k * pw
	}
	mulPanels := func(lo, hi int) {
		off := 0
		for j0 := 0; j0 < n; j0 += panelCols {
			pw := n - j0
			if pw > panelCols {
				pw = panelCols
			}
			panel := packed[off : off+k*pw]
			off += k * pw
			for i := lo; i < hi; i++ {
				arow := a.Data[i*k : (i+1)*k]
				orow := dst.Data[i*n+j0 : i*n+j0+pw]
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					brow := panel[kk*pw : (kk+1)*pw]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers < 2 {
		mulPanels(0, m)
		return dst
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulPanels(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// panelCols is the column-panel width of the packed MatMulInto kernel: 64
// columns of float64 = one 512-byte stripe per k-row, small enough that a
// panel row plus the dst stripe stay resident in L1 across the k loop.
const panelCols = 64

// packBuf pools panel-packing scratch so steady-state MatMulInto calls do
// not allocate.
var packBuf = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

// MatMulBatch multiplies one shared left operand against many right
// operands, returning MatMul(a, bs[i]) for each i — the general batched
// entry point for one-input many-weights workloads. (The transformer's
// serving path used it for batched Q/K/V projections until PR 3 moved that
// path onto its own packed per-row kernels.) Independent products are
// fanned out across goroutines when the combined work is large enough to
// amortize scheduling; each product runs through the MatMulInto panel
// kernel, which preserves MatMul's accumulation order, so results are
// bitwise identical to the unbatched calls.
func MatMulBatch(a *Tensor, bs []*Tensor) []*Tensor {
	out := make([]*Tensor, len(bs))
	work := 0
	for _, b := range bs {
		if len(b.Shape) == 2 {
			work += a.Shape[0] * a.Shape[1] * b.Shape[1]
		}
	}
	mulOne := func(i int) {
		b := bs[i]
		if len(b.Shape) != 2 {
			out[i] = MatMul(a, b) // surface the shape panic of the plain kernel
			return
		}
		out[i] = MatMulInto(New(a.Shape[0], b.Shape[1]), a, b)
	}
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || len(bs) < 2 || workers < 2 {
		for i := range bs {
			mulOne(i)
		}
		return out
	}
	// Cap the fan-out at GOMAXPROCS (each product may itself parallelize
	// inside MatMulInto; an unbounded outer spawn would oversubscribe).
	if workers > len(bs) {
		workers = len(bs)
	}
	chunk := (len(bs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(bs) {
			hi = len(bs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				mulOne(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// GatherRows builds a new matrix from the listed rows of a 2-D tensor —
// a batched embedding lookup (one row per listed id).
func GatherRows(a *Tensor, ids []int) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: GatherRows requires 2-D")
	}
	out := New(len(ids), a.Shape[1])
	for i, id := range ids {
		copy(out.Row(i), a.Row(id))
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires 2-D")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// TransposePack returns the transpose of a 2-D tensor via a cache-blocked
// tiled copy: both the source and destination are touched one tile at a time
// so neither side strides through memory for large matrices. The result is
// element-for-element identical to Transpose — this is the layout-packing
// step the transformer's inference compiler runs on every weight matrix.
func TransposePack(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: TransposePack requires 2-D")
	}
	const tile = 32
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i0 := 0; i0 < m; i0 += tile {
		ih := i0 + tile
		if ih > m {
			ih = m
		}
		for j0 := 0; j0 < n; j0 += tile {
			jh := j0 + tile
			if jh > n {
				jh = n
			}
			for i := i0; i < ih; i++ {
				row := a.Data[i*n:]
				for j := j0; j < jh; j++ {
					out.Data[j*m+i] = row[j]
				}
			}
		}
	}
	return out
}

// ---- Softmax / log-softmax over rows ----

// SoftmaxRows applies a stable softmax independently to each row of a 2-D
// tensor (the attention weighting of Eq. 14 and output distribution of
// Eq. 8).
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: SoftmaxRows requires 2-D")
	}
	out := New(a.Shape...)
	for i := 0; i < a.Shape[0]; i++ {
		src := a.Row(i)
		dst := out.Row(i)
		_, m := mathx.ArgMax(src)
		var s float64
		for j, v := range src {
			e := math.Exp(v - m)
			dst[j] = e
			s += e
		}
		for j := range dst {
			dst[j] /= s
		}
	}
	return out
}

// LogSoftmaxRows applies a stable log-softmax to each row.
func LogSoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: LogSoftmaxRows requires 2-D")
	}
	out := New(a.Shape...)
	for i := 0; i < a.Shape[0]; i++ {
		src := a.Row(i)
		dst := out.Row(i)
		lse := mathx.LogSumExp(src)
		for j, v := range src {
			dst[j] = v - lse
		}
	}
	return out
}
