package tokenizer

import (
	"strings"
	"testing"
)

func benchCorpus() []string {
	base := []string{
		"the quick brown fox jumps over the lazy dog",
		"supersymmetrization tokenization internationalization",
		"language models predict the next word in a text",
	}
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, base[i%len(base)])
	}
	return lines
}

func BenchmarkTrainBPE(b *testing.B) {
	corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainBPE(corpus, 100)
	}
}

func BenchmarkBPEEncode(b *testing.B) {
	tok := TrainBPE(benchCorpus(), 100)
	text := strings.Repeat("the quick brown tokenization fox ", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(text)
	}
}

func BenchmarkWordEncode(b *testing.B) {
	tok := NewWord(benchCorpus())
	text := strings.Repeat("the quick brown fox ", 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(text)
	}
}
