// Package tokenizer implements the tokenization step of the paper's §5: the
// conversion from raw text to sequences of integer token ids. Three schemes
// are provided — whitespace words, characters, and trained byte-pair
// encoding (BPE), the scheme that splits "supersymmetrization" into
// meaningful sub-word pieces.
package tokenizer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Special token ids present in every vocabulary.
const (
	PAD = 0 // padding
	BOS = 1 // beginning of sequence
	EOS = 2 // end of sequence
	UNK = 3 // unknown token
)

// NumSpecial is the count of reserved special tokens.
const NumSpecial = 4

var specialNames = []string{"<pad>", "<bos>", "<eos>", "<unk>"}

// Tokenizer converts between text and token-id sequences.
type Tokenizer interface {
	// Encode maps text to token ids (without BOS/EOS framing).
	Encode(text string) []int
	// Decode maps token ids back to text; special tokens are dropped.
	Decode(ids []int) string
	// VocabSize returns the number of distinct token ids.
	VocabSize() int
	// Token returns the surface string of a token id.
	Token(id int) string
}

// ---- Word tokenizer ----

// Word is a whitespace word-level tokenizer over a closed vocabulary.
type Word struct {
	idOf    map[string]int
	tokenOf []string
}

// NewWord builds a word tokenizer whose vocabulary is the distinct
// whitespace-separated words of corpus (plus the special tokens), in first-
// appearance order.
func NewWord(corpus []string) *Word {
	w := &Word{idOf: make(map[string]int)}
	w.tokenOf = append(w.tokenOf, specialNames...)
	for i, s := range specialNames {
		w.idOf[s] = i
	}
	for _, line := range corpus {
		for _, tok := range strings.Fields(line) {
			if _, ok := w.idOf[tok]; !ok {
				w.idOf[tok] = len(w.tokenOf)
				w.tokenOf = append(w.tokenOf, tok)
			}
		}
	}
	return w
}

// Encode implements Tokenizer; unknown words map to UNK.
func (w *Word) Encode(text string) []int {
	fields := strings.Fields(text)
	ids := make([]int, 0, len(fields))
	for _, f := range fields {
		if id, ok := w.idOf[f]; ok {
			ids = append(ids, id)
		} else {
			ids = append(ids, UNK)
		}
	}
	return ids
}

// Decode implements Tokenizer.
func (w *Word) Decode(ids []int) string {
	var parts []string
	for _, id := range ids {
		if id < NumSpecial || id >= len(w.tokenOf) {
			continue
		}
		parts = append(parts, w.tokenOf[id])
	}
	return strings.Join(parts, " ")
}

// VocabSize implements Tokenizer.
func (w *Word) VocabSize() int { return len(w.tokenOf) }

// Token implements Tokenizer.
func (w *Word) Token(id int) string {
	if id < 0 || id >= len(w.tokenOf) {
		return "<invalid>"
	}
	return w.tokenOf[id]
}

// ID returns the id of a known word and whether it exists.
func (w *Word) ID(tok string) (int, bool) {
	id, ok := w.idOf[tok]
	return id, ok
}

// wordJSON is the serialized form of a Word tokenizer.
type wordJSON struct {
	Tokens []string `json:"tokens"`
}

// MarshalJSON serializes the vocabulary.
func (w *Word) MarshalJSON() ([]byte, error) {
	return json.Marshal(wordJSON{Tokens: w.tokenOf})
}

// UnmarshalJSON restores a vocabulary.
func (w *Word) UnmarshalJSON(data []byte) error {
	var j wordJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Tokens) < NumSpecial {
		return fmt.Errorf("tokenizer: corrupt word vocabulary (%d tokens)", len(j.Tokens))
	}
	w.tokenOf = j.Tokens
	w.idOf = make(map[string]int, len(j.Tokens))
	for i, t := range j.Tokens {
		w.idOf[t] = i
	}
	return nil
}

// ---- Character tokenizer ----

// Char is a character-level tokenizer over a closed rune vocabulary.
type Char struct {
	idOf    map[rune]int
	runeOf  []rune
	nameFor []string
}

// NewChar builds a character tokenizer from the distinct runes of corpus.
func NewChar(corpus []string) *Char {
	c := &Char{idOf: make(map[rune]int)}
	c.nameFor = append(c.nameFor, specialNames...)
	c.runeOf = make([]rune, NumSpecial)
	for _, line := range corpus {
		for _, r := range line {
			if _, ok := c.idOf[r]; !ok {
				c.idOf[r] = len(c.nameFor)
				c.runeOf = append(c.runeOf, r)
				c.nameFor = append(c.nameFor, string(r))
			}
		}
	}
	return c
}

// Encode implements Tokenizer.
func (c *Char) Encode(text string) []int {
	var ids []int
	for _, r := range text {
		if id, ok := c.idOf[r]; ok {
			ids = append(ids, id)
		} else {
			ids = append(ids, UNK)
		}
	}
	return ids
}

// Decode implements Tokenizer.
func (c *Char) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id < NumSpecial || id >= len(c.nameFor) {
			continue
		}
		b.WriteRune(c.runeOf[id])
	}
	return b.String()
}

// VocabSize implements Tokenizer.
func (c *Char) VocabSize() int { return len(c.nameFor) }

// Token implements Tokenizer.
func (c *Char) Token(id int) string {
	if id < 0 || id >= len(c.nameFor) {
		return "<invalid>"
	}
	return c.nameFor[id]
}

// ---- BPE tokenizer ----

// BPE is a trained byte-pair-encoding tokenizer. Words are split into
// characters (with an end-of-word marker) and the most frequent adjacent
// pairs are merged greedily, learning sub-word units like "super"+"symmetr".
type BPE struct {
	merges []mergeRule // in training order; earlier = higher priority
	rank   map[[2]string]int
	idOf   map[string]int
	tokens []string
}

type mergeRule struct {
	Left, Right string
}

const eow = "</w>"

// TrainBPE learns numMerges merge rules from corpus and returns the trained
// tokenizer.
func TrainBPE(corpus []string, numMerges int) *BPE {
	// Word frequency table.
	wordFreq := map[string]int{}
	for _, line := range corpus {
		for _, w := range strings.Fields(line) {
			wordFreq[w]++
		}
	}
	// Each word as a symbol sequence.
	type entry struct {
		symbols []string
		freq    int
	}
	var entries []*entry
	var words []string
	for w := range wordFreq {
		words = append(words, w)
	}
	sort.Strings(words) // determinism
	for _, w := range words {
		var syms []string
		for _, r := range w {
			syms = append(syms, string(r))
		}
		syms = append(syms, eow)
		entries = append(entries, &entry{symbols: syms, freq: wordFreq[w]})
	}

	b := &BPE{rank: map[[2]string]int{}, idOf: map[string]int{}}
	for m := 0; m < numMerges; m++ {
		// Count adjacent pairs.
		pairFreq := map[[2]string]int{}
		for _, e := range entries {
			for i := 0; i+1 < len(e.symbols); i++ {
				pairFreq[[2]string{e.symbols[i], e.symbols[i+1]}] += e.freq
			}
		}
		if len(pairFreq) == 0 {
			break
		}
		// Best pair, ties broken lexicographically for determinism.
		var best [2]string
		bestN := -1
		for p, n := range pairFreq {
			if n > bestN || (n == bestN && (p[0] < best[0] || (p[0] == best[0] && p[1] < best[1]))) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // no productive merges left
		}
		b.merges = append(b.merges, mergeRule{best[0], best[1]})
		b.rank[best] = len(b.merges) - 1
		merged := best[0] + best[1]
		for _, e := range entries {
			e.symbols = applyMergeOnce(e.symbols, best, merged)
		}
	}

	// Vocabulary: specials, then single characters, then merged units, all
	// collected from the final symbol sequences plus base characters.
	b.tokens = append(b.tokens, specialNames...)
	for i, s := range specialNames {
		b.idOf[s] = i
	}
	seen := map[string]bool{}
	var units []string
	addUnit := func(u string) {
		if !seen[u] {
			seen[u] = true
			units = append(units, u)
		}
	}
	for _, e := range entries {
		for _, s := range e.symbols {
			addUnit(s)
		}
	}
	// Every merge product must be in the vocabulary even if no training word
	// ends with it: unseen words can stop mid-merge-chain at any product.
	for _, m := range b.merges {
		addUnit(m.Left + m.Right)
	}
	// Also include all raw characters so unseen words degrade gracefully.
	for _, w := range words {
		for _, r := range w {
			addUnit(string(r))
		}
	}
	addUnit(eow)
	sort.Strings(units)
	for _, u := range units {
		b.idOf[u] = len(b.tokens)
		b.tokens = append(b.tokens, u)
	}
	return b
}

func applyMergeOnce(syms []string, pair [2]string, merged string) []string {
	out := syms[:0:0]
	for i := 0; i < len(syms); i++ {
		if i+1 < len(syms) && syms[i] == pair[0] && syms[i+1] == pair[1] {
			out = append(out, merged)
			i++
		} else {
			out = append(out, syms[i])
		}
	}
	return out
}

// segment splits a single word into BPE units by applying the learned merges
// in rank order.
func (b *BPE) segment(word string) []string {
	var syms []string
	for _, r := range word {
		syms = append(syms, string(r))
	}
	syms = append(syms, eow)
	for {
		bestRank := len(b.merges)
		bestIdx := -1
		for i := 0; i+1 < len(syms); i++ {
			if r, ok := b.rank[[2]string{syms[i], syms[i+1]}]; ok && r < bestRank {
				bestRank, bestIdx = r, i
			}
		}
		if bestIdx < 0 {
			break
		}
		pair := [2]string{syms[bestIdx], syms[bestIdx+1]}
		syms = applyMergeOnce(syms, pair, pair[0]+pair[1])
	}
	return syms
}

// Encode implements Tokenizer.
func (b *BPE) Encode(text string) []int {
	var ids []int
	for _, w := range strings.Fields(text) {
		for _, s := range b.segment(w) {
			if id, ok := b.idOf[s]; ok {
				ids = append(ids, id)
			} else {
				ids = append(ids, UNK)
			}
		}
	}
	return ids
}

// Decode implements Tokenizer.
func (b *BPE) Decode(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		if id < NumSpecial || id >= len(b.tokens) {
			continue
		}
		sb.WriteString(b.tokens[id])
	}
	return strings.TrimSpace(strings.ReplaceAll(sb.String(), eow, " "))
}

// VocabSize implements Tokenizer.
func (b *BPE) VocabSize() int { return len(b.tokens) }

// Token implements Tokenizer.
func (b *BPE) Token(id int) string {
	if id < 0 || id >= len(b.tokens) {
		return "<invalid>"
	}
	return b.tokens[id]
}

// NumMerges returns the number of learned merge rules.
func (b *BPE) NumMerges() int { return len(b.merges) }

// bpeJSON is the serialized form of a BPE tokenizer.
type bpeJSON struct {
	Merges [][2]string `json:"merges"`
	Tokens []string    `json:"tokens"`
}

// MarshalJSON serializes the trained tokenizer.
func (b *BPE) MarshalJSON() ([]byte, error) {
	j := bpeJSON{Tokens: b.tokens}
	for _, m := range b.merges {
		j.Merges = append(j.Merges, [2]string{m.Left, m.Right})
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a trained tokenizer.
func (b *BPE) UnmarshalJSON(data []byte) error {
	var j bpeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Tokens) < NumSpecial {
		return fmt.Errorf("tokenizer: corrupt BPE vocabulary (%d tokens)", len(j.Tokens))
	}
	b.merges = nil
	b.rank = map[[2]string]int{}
	b.idOf = map[string]int{}
	b.tokens = j.Tokens
	for i, m := range j.Merges {
		b.merges = append(b.merges, mergeRule{m[0], m[1]})
		b.rank[m] = i
	}
	for i, t := range j.Tokens {
		b.idOf[t] = i
	}
	return nil
}

// Frame surrounds ids with BOS and EOS markers.
func Frame(ids []int) []int {
	out := make([]int, 0, len(ids)+2)
	out = append(out, BOS)
	out = append(out, ids...)
	out = append(out, EOS)
	return out
}
