package tokenizer

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	w := NewWord([]string{"the cat sat", "the dog ran"})
	ids := w.Encode("the cat ran")
	if got := w.Decode(ids); got != "the cat ran" {
		t.Errorf("round trip = %q", got)
	}
}

func TestWordUnknown(t *testing.T) {
	w := NewWord([]string{"a b"})
	ids := w.Encode("a zebra b")
	if ids[1] != UNK {
		t.Errorf("unknown word id = %d, want UNK", ids[1])
	}
}

func TestWordVocabStable(t *testing.T) {
	w := NewWord([]string{"x y x"})
	if w.VocabSize() != NumSpecial+2 {
		t.Errorf("vocab size = %d", w.VocabSize())
	}
	id1, _ := w.ID("x")
	w2 := NewWord([]string{"x y x"})
	id2, _ := w2.ID("x")
	if id1 != id2 {
		t.Error("vocabulary ids not deterministic")
	}
}

func TestWordSpecialTokensReserved(t *testing.T) {
	w := NewWord([]string{"hello"})
	if w.Token(PAD) != "<pad>" || w.Token(BOS) != "<bos>" || w.Token(EOS) != "<eos>" || w.Token(UNK) != "<unk>" {
		t.Error("special token names wrong")
	}
	if got, _ := w.ID("hello"); got < NumSpecial {
		t.Error("real word collided with special ids")
	}
}

func TestCharRoundTrip(t *testing.T) {
	c := NewChar([]string{"abc xyz"})
	ids := c.Encode("cab")
	if got := c.Decode(ids); got != "cab" {
		t.Errorf("round trip = %q", got)
	}
}

func TestCharUnknownRune(t *testing.T) {
	c := NewChar([]string{"ab"})
	ids := c.Encode("aQb")
	if ids[1] != UNK {
		t.Errorf("unknown rune id = %d", ids[1])
	}
}

func TestBPELearnsFrequentPairs(t *testing.T) {
	// "ab" appears constantly; the first merge should be a+b.
	corpus := []string{strings.Repeat("abab ", 50) + strings.Repeat("cd ", 5)}
	b := TrainBPE(corpus, 10)
	if b.NumMerges() == 0 {
		t.Fatal("no merges learned")
	}
	seg := b.segment("abab")
	// After merging, far fewer units than 5 raw symbols (4 chars + eow).
	if len(seg) >= 5 {
		t.Errorf("segment(abab) = %v, expected compression", seg)
	}
}

func TestBPERoundTrip(t *testing.T) {
	corpus := []string{"the cat sat on the mat", "the dog sat on the log", "supersymmetrization is a long word"}
	b := TrainBPE(corpus, 60)
	for _, text := range []string{"the cat sat", "supersymmetrization", "the dog on the mat"} {
		ids := b.Encode(text)
		if got := b.Decode(ids); got != text {
			t.Errorf("round trip %q -> %q", text, got)
		}
	}
}

func TestBPEDeterministic(t *testing.T) {
	corpus := []string{"alpha beta gamma alpha beta", "gamma beta alpha"}
	b1 := TrainBPE(corpus, 20)
	b2 := TrainBPE(corpus, 20)
	ids1 := b1.Encode("alpha gamma")
	ids2 := b2.Encode("alpha gamma")
	if len(ids1) != len(ids2) {
		t.Fatal("nondeterministic training")
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatal("nondeterministic encoding")
		}
	}
}

func TestBPEUnseenWordDegradesToChars(t *testing.T) {
	b := TrainBPE([]string{"aa bb aa bb aa"}, 5)
	ids := b.Encode("ab")
	// Every id must be valid (chars are in vocab), no UNK needed for seen chars.
	for _, id := range ids {
		if id == UNK {
			t.Errorf("seen characters produced UNK: %v", ids)
		}
	}
	if got := b.Decode(ids); got != "ab" {
		t.Errorf("decode = %q", got)
	}
}

func TestBPEMoreMergesShortenSequences(t *testing.T) {
	corpus := []string{strings.Repeat("tokenization tokenizer tokens ", 20)}
	small := TrainBPE(corpus, 2)
	large := TrainBPE(corpus, 50)
	text := "tokenization tokens"
	if len(large.Encode(text)) >= len(small.Encode(text)) {
		t.Errorf("more merges did not shorten: %d vs %d",
			len(large.Encode(text)), len(small.Encode(text)))
	}
}

func TestBPESerializationRoundTrip(t *testing.T) {
	b := TrainBPE([]string{"hello world hello gopher"}, 30)
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var restored BPE
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	text := "hello gopher world"
	a, c := b.Encode(text), restored.Encode(text)
	if len(a) != len(c) {
		t.Fatal("restored tokenizer encodes differently")
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("restored tokenizer id mismatch")
		}
	}
	if restored.Decode(c) != text {
		t.Error("restored decode mismatch")
	}
}

func TestBPEUnmarshalCorrupt(t *testing.T) {
	var b BPE
	if err := json.Unmarshal([]byte(`{"tokens":["x"]}`), &b); err == nil {
		t.Error("expected error on corrupt vocab")
	}
}

func TestFrame(t *testing.T) {
	ids := Frame([]int{5, 6})
	if ids[0] != BOS || ids[len(ids)-1] != EOS || len(ids) != 4 {
		t.Errorf("Frame = %v", ids)
	}
}

func TestTokenizerInterfaceCompliance(t *testing.T) {
	var _ Tokenizer = NewWord(nil)
	var _ Tokenizer = NewChar(nil)
	var _ Tokenizer = TrainBPE([]string{"a"}, 1)
}

// TestBPERoundTripQuick is a property test: any text over a small alphabet
// round-trips through a BPE trained on related text.
func TestBPERoundTripQuick(t *testing.T) {
	b := TrainBPE([]string{"ab ba aab abb bab baa ab ab ba"}, 30)
	f := func(raw []byte) bool {
		// Map arbitrary bytes to the {a,b} alphabet with spaces.
		var sb strings.Builder
		for i, c := range raw {
			if i > 0 && i%4 == 0 {
				sb.WriteByte(' ')
			}
			if c%2 == 0 {
				sb.WriteByte('a')
			} else {
				sb.WriteByte('b')
			}
		}
		text := strings.Join(strings.Fields(sb.String()), " ")
		if text == "" {
			return true
		}
		return b.Decode(b.Encode(text)) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordSerializationRoundTrip(t *testing.T) {
	w := NewWord([]string{"the king rules the kingdom"})
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var restored Word
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	text := "the king rules"
	a, b := w.Encode(text), restored.Encode(text)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored word tokenizer id mismatch")
		}
	}
	if restored.Decode(b) != text {
		t.Error("restored decode mismatch")
	}
}

func TestWordUnmarshalCorrupt(t *testing.T) {
	var w Word
	if err := json.Unmarshal([]byte(`{"tokens":["x"]}`), &w); err == nil {
		t.Error("corrupt word vocab accepted")
	}
}
