// Package serve is the batched generation front end: a request queue that
// coalesces concurrent Generate calls into batched forward passes over the
// transformer's KV-cache inference path (continuous batching). Each request
// keeps its own sampling strategy, seed, and token budget, and is dropped
// from the batch the moment its context is cancelled. One background loop
// owns the model's BatchedPredictor; callers only ever touch channels, so
// the server is safe for arbitrary concurrent use.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sample"
	"repro/internal/tokenizer"
)

// ErrClosed is returned for requests submitted to (or stranded in) a server
// that has been Closed.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the batching loop. The zero value selects the defaults.
type Config struct {
	// MaxBatch is the largest number of sequences decoded per step
	// (default 8).
	MaxBatch int
	// QueueDepth is the pending-request buffer; submissions beyond it
	// block in Generate (default 64).
	QueueDepth int
	// CoalesceWait is how long a freshly formed batch lingers for more
	// requests to arrive before decoding starts (default 2ms). 0 keeps
	// the default; negative disables lingering.
	CoalesceWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceWait == 0 {
		c.CoalesceWait = 2 * time.Millisecond
	}
	return c
}

// Request is one generation job.
type Request struct {
	Prompt    string
	MaxTokens int             // tokens to generate; must be in [1, window)
	Strategy  sample.Strategy // nil = greedy
	Seed      uint64          // per-request sampling seed
	StopAtEOS bool            // stop at the sentence separator and trim it
}

// Result is a finished generation.
type Result struct {
	Text   string
	Tokens []int
}

// Stats is a snapshot of server counters. StepRows/Steps is the mean batch
// size actually achieved; MaxBatch is the peak. Once the server is idle,
// Requests == Completed + Cancelled + Failed.
type Stats struct {
	Requests  uint64 `json:"requests"`  // accepted by Do/Generate (past validation)
	Completed uint64 `json:"completed"` // finished with a result
	Cancelled uint64 `json:"cancelled"` // dropped by context cancellation
	Failed    uint64 `json:"failed"`    // prompt errors and shutdown rejections
	Steps     uint64 `json:"steps"`     // batched forward steps executed
	StepRows  uint64 `json:"step_rows"` // total sequence-rows fed across all steps
	MaxBatch  int    `json:"max_batch"` // largest per-step batch observed
}

// Server owns one model and one batching loop.
type Server struct {
	model *core.LLM
	cfg   Config

	queue chan *pending
	quit  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu    sync.Mutex
	stats Stats
}

type pending struct {
	ctx  context.Context
	req  Request
	done chan outcome
}

type outcome struct {
	res Result
	err error
}

// liveReq is a request admitted into the decoding batch.
type liveReq struct {
	p      *pending
	slot   int   // BatchedPredictor sequence handle
	forced []int // prompt tokens not yet fed (prefill)
	last   int   // most recently sampled token (decode phase)
	dec    *sample.Decoder
}

// New starts a server over model. Callers must Close it to stop the
// background loop.
func New(model *core.LLM, cfg Config) *Server {
	s := &Server{
		model: model,
		cfg:   cfg.withDefaults(),
		quit:  make(chan struct{}),
	}
	s.queue = make(chan *pending, s.cfg.QueueDepth)
	s.wg.Add(1)
	go s.loop()
	return s
}

// Close stops the loop. In-flight and queued requests fail with ErrClosed.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Generate enqueues a free-running generation (no stop token) and blocks
// until it completes, mirroring core.LLM.Generate: for a given model,
// prompt, strategy, and seed the text is identical to the unbatched call.
func (s *Server) Generate(ctx context.Context, prompt string, n int, strat sample.Strategy, seed uint64) (string, error) {
	res, err := s.Do(ctx, Request{Prompt: prompt, MaxTokens: n, Strategy: strat, Seed: seed})
	return res.Text, err
}

// Do enqueues req and blocks until it completes, the context is cancelled,
// or the server closes.
func (s *Server) Do(ctx context.Context, req Request) (Result, error) {
	if req.MaxTokens <= 0 {
		return Result{}, fmt.Errorf("serve: MaxTokens %d must be positive", req.MaxTokens)
	}
	if w := s.model.Model.Cfg.Window; req.MaxTokens >= w {
		return Result{}, fmt.Errorf("serve: MaxTokens %d must be below the model window %d", req.MaxTokens, w)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := &pending{ctx: ctx, req: req, done: make(chan outcome, 1)}
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()
	select {
	case s.queue <- p:
	case <-ctx.Done():
		s.count(func(st *Stats) { st.Cancelled++ })
		return Result{}, ctx.Err()
	case <-s.quit:
		s.count(func(st *Stats) { st.Failed++ })
		return Result{}, ErrClosed
	}
	select {
	case o := <-p.done:
		return o.res, o.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-s.quit:
		// The loop may have replied just before shutting down.
		select {
		case o := <-p.done:
			return o.res, o.err
		default:
			return Result{}, ErrClosed
		}
	}
}

// ---- batching loop ----

func (s *Server) loop() {
	defer s.wg.Done()
	bp := s.model.Model.NewBatchedPredictor()
	var active []*liveReq
	for {
		// Admission: block when idle, otherwise top up without waiting.
		if len(active) == 0 {
			select {
			case p := <-s.queue:
				s.admit(bp, &active, p)
				s.coalesce(bp, &active)
			case <-s.quit:
				s.shutdown(bp, active)
				return
			}
		} else {
			for len(active) < s.cfg.MaxBatch {
				select {
				case p := <-s.queue:
					s.admit(bp, &active, p)
					continue
				default:
				}
				break
			}
		}
		select {
		case <-s.quit:
			s.shutdown(bp, active)
			return
		default:
		}
		// Cancellation sweep.
		alive := active[:0]
		for _, lr := range active {
			if err := lr.p.ctx.Err(); err != nil {
				bp.Drop(lr.slot)
				lr.p.done <- outcome{err: err}
				s.count(func(st *Stats) { st.Cancelled++ })
				continue
			}
			alive = append(alive, lr)
		}
		active = alive
		if len(active) == 0 {
			continue
		}
		// One batched forward step: prefilling requests feed their next
		// prompt token, decoding requests feed their last sample.
		ids := make([]int, len(active))
		toks := make([]int, len(active))
		for i, lr := range active {
			ids[i] = lr.slot
			if len(lr.forced) > 0 {
				toks[i] = lr.forced[0]
			} else {
				toks[i] = lr.last
			}
		}
		logits := bp.Step(ids, toks)
		s.count(func(st *Stats) {
			st.Steps++
			st.StepRows += uint64(len(ids))
			if len(ids) > st.MaxBatch {
				st.MaxBatch = len(ids)
			}
		})
		alive = active[:0]
		for i, lr := range active {
			if len(lr.forced) > 0 {
				lr.forced = lr.forced[1:]
				if len(lr.forced) > 0 {
					alive = append(alive, lr) // still prefilling
					continue
				}
				// Prompt fully fed: these logits are the first to sample.
			}
			tok, done := lr.dec.Next(logits[i])
			lr.last = tok
			if done {
				bp.Drop(lr.slot)
				s.finish(lr)
				continue
			}
			alive = append(alive, lr)
		}
		active = alive
	}
}

// admit moves a queued request into the decoding batch.
func (s *Server) admit(bp batchPredictor, active *[]*liveReq, p *pending) {
	if err := p.ctx.Err(); err != nil {
		p.done <- outcome{err: err}
		s.count(func(st *Stats) { st.Cancelled++ })
		return
	}
	ids, err := s.model.PromptWindow(p.req.Prompt, p.req.MaxTokens)
	if err != nil {
		p.done <- outcome{err: err}
		s.count(func(st *Stats) { st.Failed++ })
		return
	}
	strat := p.req.Strategy
	if strat == nil {
		strat = sample.Greedy{}
	}
	stop := -1
	if p.req.StopAtEOS {
		stop = tokenizer.EOS
	}
	*active = append(*active, &liveReq{
		p:      p,
		slot:   bp.Add(),
		forced: ids,
		dec:    sample.NewDecoder(strat, stop, p.req.MaxTokens, mathx.NewRNG(p.req.Seed+977)),
	})
}

// coalesce lingers briefly after a batch forms from idle, gathering more
// concurrent requests so they share the first decoding steps.
func (s *Server) coalesce(bp batchPredictor, active *[]*liveReq) {
	if s.cfg.CoalesceWait <= 0 {
		return
	}
	timer := time.NewTimer(s.cfg.CoalesceWait)
	defer timer.Stop()
	for len(*active) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			s.admit(bp, active, p)
		case <-timer.C:
			return
		case <-s.quit:
			return // the main loop observes quit next
		}
	}
}

// finish decodes a completed request and replies.
func (s *Server) finish(lr *liveReq) {
	toks := lr.dec.Tokens()
	if lr.p.req.StopAtEOS && len(toks) > 0 && toks[len(toks)-1] == tokenizer.EOS {
		toks = toks[:len(toks)-1]
	}
	lr.p.done <- outcome{res: Result{Text: s.model.Tok.Decode(toks), Tokens: toks}}
	s.count(func(st *Stats) { st.Completed++ })
}

// shutdown fails the active batch and drains the queue.
func (s *Server) shutdown(bp batchPredictor, active []*liveReq) {
	for _, lr := range active {
		bp.Drop(lr.slot)
		lr.p.done <- outcome{err: ErrClosed}
		s.count(func(st *Stats) { st.Failed++ })
	}
	for {
		select {
		case p := <-s.queue:
			p.done <- outcome{err: ErrClosed}
			s.count(func(st *Stats) { st.Failed++ })
		default:
			return
		}
	}
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// batchPredictor is the slice of transformer.BatchedPredictor the loop uses
// (an interface so the admission helpers stay testable).
type batchPredictor interface {
	Add() int
	Drop(id int)
	Step(ids []int, tokens []int) [][]float64
}
