// Package serve is the batched generation front end: a request queue that
// coalesces concurrent Generate calls into batched forward passes over the
// transformer's KV-cache inference path (continuous batching). Each request
// keeps its own sampling strategy, seed, and token budget, and is dropped
// from the batch the moment its context is cancelled. One background loop
// owns the model's BatchedPredictor; callers only ever touch channels, so
// the server is safe for arbitrary concurrent use.
//
// Results stream: Stream delivers per-token events as each continuous-
// batching step completes, and the final text is bitwise identical to the
// unbatched lm.Gen / core.LLM.Generate result for the same request.
//
// The server is backend-agnostic at the API level: NewBackend accepts any
// lm.LanguageModel. The transformer pipeline (core.LLM) gets the batched
// loop; other substrates (n-gram, FFN-LM, RNN) are served by an equivalent
// single-sequence loop with the same queue, cancellation, streaming, and
// stats behavior.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/sample"
	"repro/internal/tokenizer"
)

// ErrClosed is returned for requests submitted to (or stranded in) a server
// that has been Closed.
var ErrClosed = errors.New("serve: server closed")

// ErrDeadline is returned for requests that exhaust their per-request
// deadline (Request.Timeout, or the server-wide Config.RequestTimeout
// default). The loop enforces it between decode steps, so a slow or stuck
// request cannot occupy a batch slot indefinitely; the failure is charged
// to Stats.Failed (and Deadlined), never to Cancelled — the client did not
// leave, the server gave up.
var ErrDeadline = errors.New("serve: request deadline exceeded")

// ErrStalled is returned for requests the stall watchdog killed: no token
// (or prefill) progress for Config.StallTimeout. Unlike ErrDeadline — which
// bounds total request time — the watchdog bounds time between consecutive
// tokens, the signature of a wedged loop or a blocked predictor rather than
// a merely long generation.
var ErrStalled = errors.New("serve: stream stalled: no token progress within the stall timeout")

// PanicError wraps a panic recovered inside the serving loop: the request
// that triggered it fails with this error while the batch and server keep
// running. Site names the loop operation that panicked (sample, prefill,
// verify, step, single).
type PanicError struct {
	Site  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: panic in %s: %v", e.Site, e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so callers can
// errors.Is/As through the recovery boundary (e.g. to a failpoint-injected
// panic).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Config tunes the batching loop. The zero value selects the defaults.
type Config struct {
	// MaxBatch is the largest number of sequences decoded per step
	// (default 8).
	MaxBatch int
	// QueueDepth is the pending-request buffer; submissions beyond it
	// block in Generate (default 64).
	QueueDepth int
	// CoalesceWait is how long a freshly formed batch lingers for more
	// requests to arrive before decoding starts (default 2ms). 0 keeps
	// the default; negative disables lingering.
	CoalesceWait time.Duration
	// PrefillChunk caps how many prompt tokens one chunked-prefill pass
	// ingests (default 32). The loop runs at most one prefill chunk
	// between consecutive decode steps, so this bounds the extra latency
	// a mid-decode request can see from another request's prompt: one
	// chunk's compute, regardless of prompt length. Larger chunks ingest
	// prompts faster (better time-to-first-token for the new request);
	// smaller chunks keep in-flight streams smoother. 0 keeps the
	// default; negative removes the cap (whole prompts in one pass).
	PrefillChunk int
	// Speculate enables speculative decoding in the batched loop: each
	// iteration runs one verification round of this draft depth for one
	// decode-phase request (round-robin, mirroring the prefill-chunk
	// policy, so draft work never starves the other in-flight decodes)
	// while the rest take the normal batched step. Requires Drafter;
	// 0 disables. Greedy requests keep bitwise-identical output; stochastic
	// requests keep their exact token distribution via rejection sampling.
	Speculate int
	// Drafter is the shared proposal model for Speculate (e.g.
	// lm.DistillDrafter over the served checkpoint). The loop is its only
	// caller, so it needs no internal locking.
	Drafter sample.Drafter
	// RequestTimeout is the server-side default deadline applied to
	// requests that do not carry their own Request.Timeout; 0 disables.
	// Enforced between decode steps, so a request can overrun by at most
	// one step (plus one prefill chunk / verify round).
	RequestTimeout time.Duration
	// StallTimeout arms the token-progress watchdog: a request that makes
	// no progress (no sampled token, no prefill chunk) for this long is
	// failed with ErrStalled, even while the loop itself is wedged — the
	// watchdog runs on its own goroutine and kills via context cause.
	// 0 disables.
	StallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceWait == 0 {
		c.CoalesceWait = 2 * time.Millisecond
	}
	if c.PrefillChunk == 0 {
		c.PrefillChunk = 32
	}
	return c
}

// Request is one generation job — the struct form of the unified generation
// options, with the prompt attached. Build it directly or with NewRequest.
type Request struct {
	Prompt    string
	MaxTokens int             // tokens to generate; must be >= 1 (and below the window for windowed models)
	Strategy  sample.Strategy // nil = greedy
	Seed      uint64          // per-request sampling seed
	StopAtEOS bool            // stop at the sentence separator and trim it
	// Timeout is this request's end-to-end deadline, measured from
	// submission; 0 falls back to Config.RequestTimeout (and negative is
	// rejected at validation). On expiry the request fails with
	// ErrDeadline between decode steps and its batch slot is reclaimed.
	Timeout time.Duration
}

// NewRequest builds a Request from the unified functional options.
func NewRequest(prompt string, opts ...sample.Option) Request {
	o := sample.BuildOptions(opts...)
	return Request{
		Prompt: prompt, MaxTokens: o.MaxTokens,
		Strategy: o.Strategy, Seed: o.Seed, StopAtEOS: o.StopAtEOS,
		Timeout: o.Timeout,
	}
}

// Options converts the request back to the options struct shared with the
// single-sequence decoding driver.
func (r Request) Options() sample.Options {
	return sample.Options{
		MaxTokens: r.MaxTokens, Strategy: r.Strategy,
		Seed: r.Seed, StopAtEOS: r.StopAtEOS, Timeout: r.Timeout,
	}
}

// Result is a finished generation (same shape as the direct lm.Gen path).
type Result = lm.Result

// Stats is a snapshot of server counters. StepRows/Steps is the mean decode
// batch size actually achieved; MaxBatch is the peak. PromptTokens and
// DecodeTokens split throughput by phase — prompt ingestion through the
// chunked prefill fast path versus sampled tokens from decode steps — so
// prefill and decode rates are separately observable. Once the server is
// idle, Requests == Completed + Cancelled + Failed.
type Stats struct {
	Requests  uint64 `json:"requests"`  // accepted by Do/Generate (past validation)
	Completed uint64 `json:"completed"` // finished with a result
	Cancelled uint64 `json:"cancelled"` // dropped by context cancellation
	Failed    uint64 `json:"failed"`    // prompt errors and shutdown rejections
	Steps     uint64 `json:"steps"`     // decode steps executed
	StepRows  uint64 `json:"step_rows"` // total sequence-rows fed across decode steps
	MaxBatch  int    `json:"max_batch"` // largest per-step decode batch observed

	PromptTokens uint64 `json:"prompt_tokens"` // prompt tokens ingested by prefill
	DecodeTokens uint64 `json:"decode_tokens"` // tokens sampled (incl. each prompt's first, sampled from prefill logits)

	// InFlight and Queued are live gauges, not cumulative counters: the
	// number of accepted requests not yet finished (decoding, queued, or
	// replying) and the subset still waiting in the submission queue at
	// snapshot time. They are the load signal a routing tier polls off
	// /v1/stats to pick the least-loaded replica, so unlike the counters
	// above they go back down as the server drains.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`

	// PrefillChunkHist is a histogram of per-pass prefill chunk sizes:
	// bucket i counts chunks of size in (2^(i-1), 2^i] (bucket 0 is size
	// 1, the last bucket collects everything larger than 2^7).
	PrefillChunkHist [9]uint64 `json:"prefill_chunk_hist"`

	// BatchHist is the same power-of-two histogram over per-step decode
	// batch sizes. With the cross-sequence GEMM step, weight traffic per
	// step is near-constant, so the histogram shows directly how well
	// traffic amortizes that fixed cost: mass in the higher buckets means
	// each weight stream served many sequences.
	BatchHist [9]uint64 `json:"batch_hist"`

	// Speculative-decoding counters (Config.Speculate). SpecAcceptHist is
	// the acceptance-length histogram: bucket i counts verification rounds
	// that accepted exactly i draft tokens (the last bucket collects deeper
	// rounds), so mean accepted length and its spread are read directly off
	// /v1/stats. SpecRounds counts every verification round; only rounds
	// that actually drafted contribute to SpecDrafted/SpecAccepted and the
	// histogram.
	SpecRounds     uint64     `json:"spec_rounds"`
	SpecDrafted    uint64     `json:"spec_drafted"`
	SpecAccepted   uint64     `json:"spec_accepted"`
	SpecAcceptHist [17]uint64 `json:"spec_accept_hist"`

	// Failure-mode counters, each a subset of Failed: requests killed by a
	// recovered panic (theirs or a whole-batch step failure), by their
	// deadline, or by the stall watchdog. The panic counter in particular
	// is the worker-survival signal the chaos harness asserts on: panics
	// observed, process still serving.
	Panics    uint64 `json:"panics"`
	Deadlined uint64 `json:"deadline_exceeded"`
	Stalled   uint64 `json:"stalled"`
}

// histBucket maps a positive size to its power-of-two histogram bucket:
// bucket i covers (2^(i-1), 2^i], bucket 0 is size 1, and the final bucket
// collects everything beyond the range.
func histBucket(n, buckets int) int {
	b := bits.Len(uint(n - 1))
	if n <= 1 {
		b = 0
	}
	if b > buckets-1 {
		b = buckets - 1
	}
	return b
}

// Server owns one model and one serving loop (batched for core.LLM,
// single-sequence for other backends).
type Server struct {
	backend lm.LanguageModel
	model   *core.LLM // non-nil in batched mode
	window  int       // 0 = unbounded
	cfg     Config

	// newBatch builds the loop's predictor; a seam the scheduling tests
	// replace to observe the exact prefill/decode call sequence.
	newBatch func() batchPredictor

	// spec is the speculative-decoding driver (batched mode with
	// Config.Speculate set); only the loop goroutine touches it.
	spec *sample.Speculative

	queue chan *pending
	quit  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu    sync.Mutex
	stats Stats

	// watch is the stall watchdog's registry of live requests (nil when
	// Config.StallTimeout is 0): every accepted pending is registered at
	// enqueue and removed when its outcome is delivered, and the watchdog
	// goroutine kills any entry whose progress stamp goes stale.
	wmu   sync.Mutex
	watch map[*pending]struct{}
}

type pending struct {
	ctx    context.Context
	req    Request
	done   chan outcome
	events chan sample.Token // nil unless the caller is streaming

	// cancel tears the request down with a cause (ErrStalled from the
	// watchdog); nil when the request was built without prepare (tests
	// driving the queue directly).
	cancel context.CancelCauseFunc
	// progress is the UnixNano stamp of the last observable progress
	// (admission, a prefill chunk, a sampled token) — the watchdog's
	// staleness signal. Only maintained when the watchdog is armed.
	progress atomic.Int64
}

type outcome struct {
	res Result
	err error
}

// liveReq is a request admitted into the decoding batch.
type liveReq struct {
	p      *pending
	slot   int   // BatchedPredictor sequence handle
	forced []int // prompt tokens not yet fed (prefill)
	last   int   // most recently sampled token (decode phase)
	ctx    []int // full decoded context incl. last (speculative mode only)
	dec    *sample.Decoder
	pd     *lm.PieceDecoder // non-nil when streaming
}

// New starts a batched server over the transformer pipeline. Callers must
// Close it to stop the background loop.
func New(model *core.LLM, cfg Config) *Server {
	s := newServer(model, model, cfg)
	s.wg.Add(1)
	go s.loop()
	return s
}

// NewBackend starts a server over any LanguageModel. The transformer
// pipeline gets the continuous-batching loop; every other backend is served
// by a single-sequence loop with identical request semantics (queue,
// per-request options, streaming, cancellation, stats).
func NewBackend(m lm.LanguageModel, cfg Config) *Server {
	if model, ok := m.(*core.LLM); ok {
		return New(model, cfg)
	}
	s := newServer(m, nil, cfg)
	s.wg.Add(1)
	go s.loopSingle()
	return s
}

func newServer(backend lm.LanguageModel, model *core.LLM, cfg Config) *Server {
	s := &Server{
		backend: backend,
		model:   model,
		window:  backend.ContextWindow(),
		cfg:     cfg.withDefaults(),
		quit:    make(chan struct{}),
	}
	if model != nil {
		s.newBatch = func() batchPredictor { return model.Model.NewBatchedPredictor() }
	}
	if s.cfg.Speculate > 0 && s.cfg.Drafter != nil {
		s.spec = &sample.Speculative{K: s.cfg.Speculate, Drafter: s.cfg.Drafter}
	}
	s.queue = make(chan *pending, s.cfg.QueueDepth)
	if s.cfg.StallTimeout > 0 {
		s.watch = make(map[*pending]struct{})
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// watchdog is the token-progress stall detector: on its own goroutine — so
// it keeps ticking even when the serving loop is wedged inside a predictor
// call — it sweeps the live-request registry and cancels, with ErrStalled
// as the cause, any request whose progress stamp is older than
// StallTimeout. The loop (or the caller's select) then observes the
// cancellation and charges the request to Failed/Stalled.
func (s *Server) watchdog() {
	defer s.wg.Done()
	period := s.cfg.StallTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-ticker.C:
			cutoff := now.Add(-s.cfg.StallTimeout).UnixNano()
			s.wmu.Lock()
			for p := range s.watch {
				if p.progress.Load() < cutoff && p.cancel != nil {
					p.cancel(ErrStalled)
				}
			}
			s.wmu.Unlock()
		}
	}
}

// stamp records observable progress on p (watchdog-armed servers only).
func (s *Server) stamp(p *pending) {
	if s.watch != nil {
		p.progress.Store(time.Now().UnixNano())
	}
}

// track registers p with the watchdog; reply unregisters it.
func (s *Server) track(p *pending) {
	if s.watch == nil {
		return
	}
	p.progress.Store(time.Now().UnixNano())
	s.wmu.Lock()
	s.watch[p] = struct{}{}
	s.wmu.Unlock()
}

// reply delivers p's terminal outcome and drops it from the watchdog
// registry — the single exit point that keeps "exactly one terminal
// outcome per accepted request" true.
func (s *Server) reply(p *pending, o outcome) {
	if s.watch != nil {
		s.wmu.Lock()
		delete(s.watch, p)
		s.wmu.Unlock()
	}
	p.done <- o
}

// prepare wraps the caller's context with the request's teardown handles:
// a cancel-with-cause hook for the watchdog and, when the request or server
// sets a timeout, a deadline whose expiry cause is ErrDeadline. The
// returned cancel releases both.
func (s *Server) prepare(ctx context.Context, req Request) (context.Context, context.CancelCauseFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	d := req.Timeout
	if d <= 0 {
		d = s.cfg.RequestTimeout
	}
	if d <= 0 {
		return ctx, cancel
	}
	dctx, stop := context.WithDeadlineCause(ctx, time.Now().Add(d), ErrDeadline)
	return dctx, func(cause error) { cancel(cause); stop() }
}

// settle replies to a context-terminated request: a server-imposed deadline
// or stall is charged to Failed (the server gave up), a client cancellation
// to Cancelled. It returns the error delivered.
func (s *Server) settle(p *pending) error {
	cause := context.Cause(p.ctx)
	switch {
	case errors.Is(cause, ErrDeadline):
		s.reply(p, outcome{err: ErrDeadline})
		s.count(func(st *Stats) { st.Failed++; st.Deadlined++ })
		return ErrDeadline
	case errors.Is(cause, ErrStalled):
		s.reply(p, outcome{err: ErrStalled})
		s.count(func(st *Stats) { st.Failed++; st.Stalled++ })
		return ErrStalled
	default:
		err := p.ctx.Err()
		s.reply(p, outcome{err: err})
		s.count(func(st *Stats) { st.Cancelled++ })
		return err
	}
}

// Close stops the loop. In-flight and queued requests fail with ErrClosed.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// Stats returns a snapshot of the server counters. The InFlight and Queued
// gauges are derived at snapshot time: every accepted request is counted in
// Requests immediately and reaches exactly one terminal counter (Completed,
// Cancelled, or Failed) when it leaves the server, so the difference is the
// live in-flight population, and len(queue) is the part of it still waiting
// for admission into the batch.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.InFlight = int(st.Requests - st.Completed - st.Cancelled - st.Failed)
	st.Queued = len(s.queue)
	return st
}

// Generate enqueues a free-running generation (no stop token) and blocks
// until it completes, mirroring core.LLM.Generate: for a given model,
// prompt, strategy, and seed the text is identical to the unbatched call.
//
// Deprecated: use Gen with functional options, or Do with a Request.
func (s *Server) Generate(ctx context.Context, prompt string, n int, strat sample.Strategy, seed uint64) (string, error) {
	res, err := s.Do(ctx, Request{Prompt: prompt, MaxTokens: n, Strategy: strat, Seed: seed})
	return res.Text, err
}

// Gen enqueues a generation built from the unified functional options and
// blocks until it completes.
func (s *Server) Gen(ctx context.Context, prompt string, opts ...sample.Option) (Result, error) {
	return s.Do(ctx, NewRequest(prompt, opts...))
}

// maxTokensCap bounds per-request generation budgets for backends with no
// finite context window (n-gram, recurrent), so a single request cannot
// pin the loop or pre-allocate an absurd event buffer.
const maxTokensCap = 4096

// validateBudget is the cheap admission precondition Do and Stream check
// before enqueueing; prompt errors surface at admission, which encodes the
// prompt anyway. Strategy parameters are validated here too, so a malformed
// request (e.g. a non-positive temperature) is rejected with an error at
// the door instead of tripping a panic guard inside the batching loop.
func (s *Server) validateBudget(req Request) error {
	if req.MaxTokens <= 0 {
		return fmt.Errorf("serve: MaxTokens %d must be positive", req.MaxTokens)
	}
	if s.window > 0 && req.MaxTokens >= s.window {
		return fmt.Errorf("serve: MaxTokens %d must be below the model window %d", req.MaxTokens, s.window)
	}
	if s.window == 0 && req.MaxTokens > maxTokensCap {
		return fmt.Errorf("serve: MaxTokens %d exceeds the per-request cap %d", req.MaxTokens, maxTokensCap)
	}
	if req.Timeout < 0 {
		return fmt.Errorf("serve: Timeout %v must not be negative", req.Timeout)
	}
	if err := sample.ValidateStrategy(req.Strategy); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// Validate reports whether req would be accepted, without submitting it —
// front ends use it to reject bad requests (including unencodable prompts)
// before committing to a response, e.g. before writing streaming headers.
func (s *Server) Validate(req Request) error {
	if err := s.validateBudget(req); err != nil {
		return err
	}
	_, err := s.backend.EncodePrompt(req.Prompt, req.MaxTokens)
	return err
}

// enqueue submits p, counting it as accepted and registering it with the
// stall watchdog.
func (s *Server) enqueue(ctx context.Context, p *pending) error {
	s.count(func(st *Stats) { st.Requests++ })
	s.track(p)
	select {
	case s.queue <- p:
		return nil
	case <-ctx.Done():
		return s.settle(p)
	case <-s.quit:
		s.reply(p, outcome{err: ErrClosed})
		s.count(func(st *Stats) { st.Failed++ })
		return ErrClosed
	}
}

// Do enqueues req and blocks until it completes, the context is cancelled,
// the request's deadline or the stall watchdog fires, or the server closes.
func (s *Server) Do(ctx context.Context, req Request) (Result, error) {
	if err := s.validateBudget(req); err != nil {
		return Result{}, err
	}
	ctx, cancel := s.prepare(ctx, req)
	defer cancel(nil)
	p := &pending{ctx: ctx, req: req, done: make(chan outcome, 1), cancel: cancel}
	if err := s.enqueue(ctx, p); err != nil {
		return Result{}, err
	}
	select {
	case o := <-p.done:
		return o.res, o.err
	case <-ctx.Done():
		return Result{}, context.Cause(ctx)
	case <-s.quit:
		// The loop may have replied just before shutting down.
		select {
		case o := <-p.done:
			return o.res, o.err
		default:
			return Result{}, ErrClosed
		}
	}
}

// Stream is Do with per-token delivery: onToken is invoked, in order, with
// every sampled token the moment its decoding step completes — in batched
// mode that is one continuous-batching step shared with the other in-flight
// requests. The concatenated event pieces and the final Result.Text are
// bitwise identical to the unbatched path. A non-nil error from onToken
// cancels the request.
func (s *Server) Stream(ctx context.Context, req Request, onToken func(sample.Token) error) (Result, error) {
	if onToken == nil {
		return s.Do(ctx, req)
	}
	if err := s.validateBudget(req); err != nil {
		return Result{}, err
	}
	ctx, cancel := s.prepare(ctx, req)
	defer cancel(nil)
	p := &pending{
		ctx: ctx, req: req, done: make(chan outcome, 1), cancel: cancel,
		// The loop must never block on delivery: capacity covers every
		// token the decoder can produce.
		events: make(chan sample.Token, req.MaxTokens+1),
	}
	if err := s.enqueue(ctx, p); err != nil {
		return Result{}, err
	}
	var cbErr error
	deliver := func(ev sample.Token) {
		if cbErr != nil {
			return
		}
		if err := onToken(ev); err != nil {
			cbErr = err
			cancel(err) // drops the request from the batch
		}
	}
	finish := func(o outcome) (Result, error) {
		for {
			select {
			case ev := <-p.events:
				deliver(ev)
				continue
			default:
			}
			break
		}
		if cbErr != nil {
			return Result{}, cbErr
		}
		return o.res, o.err
	}
	for {
		select {
		case ev := <-p.events:
			deliver(ev)
		case o := <-p.done:
			return finish(o)
		case <-ctx.Done():
			if cbErr != nil {
				return Result{}, cbErr
			}
			return Result{}, context.Cause(ctx)
		case <-s.quit:
			select {
			case o := <-p.done:
				return finish(o)
			default:
				return Result{}, ErrClosed
			}
		}
	}
}

// ---- batching loop (transformer backend) ----

// loop is the continuous-batching scheduler. Each iteration interleaves the
// two phases of the workload:
//
//   - at most ONE chunked prefill pass (round-robin over the requests still
//     ingesting their prompt, at most PrefillChunk tokens), so a prompt of
//     any length delays in-flight decodes by one bounded chunk rather than
//     monopolizing the loop;
//   - in speculative mode, at most ONE verification round (round-robin over
//     the decode-phase requests) — the same bounded-intrusion policy, so
//     draft blocks never starve the other in-flight decodes;
//   - one batched decode step over every other request past its prompt.
//
// A request whose prompt finishes mid-iteration samples its first token
// from the prefill logits immediately (the exact logits the old
// one-forced-token-per-step loop sampled, so outputs are unchanged) and
// joins the decode batch the same iteration. Every decode-phase request
// advances at least one token per iteration — via its speculative round or
// via the batched step — so speculation changes scheduling only by letting
// one request advance several tokens.
func (s *Server) loop() {
	defer s.wg.Done()
	bp := s.newBatch()
	var active []*liveReq
	// Step buffers, reused across iterations: the decode loop allocates
	// nothing per step beyond what a request's own lifecycle requires.
	var ids, toks []int
	var decs []*liveReq
	rr := 0 // round-robin cursor over prefilling requests
	sr := 0 // round-robin cursor over speculating requests
	for {
		// Admission: block when idle, otherwise top up without waiting.
		if len(active) == 0 {
			select {
			case p := <-s.queue:
				s.admit(bp, &active, p)
				s.coalesce(bp, &active)
			case <-s.quit:
				s.shutdown(bp, active)
				return
			}
		} else {
			for len(active) < s.cfg.MaxBatch {
				select {
				case p := <-s.queue:
					s.admit(bp, &active, p)
					continue
				default:
				}
				break
			}
		}
		select {
		case <-s.quit:
			s.shutdown(bp, active)
			return
		default:
		}
		// Cancellation sweep, run between decode steps: client
		// cancellations, per-request deadline expiries (ErrDeadline
		// cause), and watchdog kills (ErrStalled cause) all reclaim the
		// batch slot here — settle charges each to the right counter.
		alive := active[:0]
		for _, lr := range active {
			if lr.p.ctx.Err() != nil {
				bp.Drop(lr.slot)
				s.settle(lr.p)
				continue
			}
			alive = append(alive, lr)
		}
		active = alive
		if len(active) == 0 {
			continue
		}
		// One prefill chunk for the next prompt-ingesting request.
		var pf *liveReq
		for i := 0; i < len(active); i++ {
			lr := active[(rr+i)%len(active)]
			if len(lr.forced) > 0 {
				pf = lr
				rr = (rr + i + 1) % len(active)
				break
			}
		}
		if pf != nil {
			chunk := len(pf.forced)
			if s.cfg.PrefillChunk > 0 && chunk > s.cfg.PrefillChunk {
				chunk = s.cfg.PrefillChunk
			}
			logits, err := s.tryPrefill(bp, pf, chunk)
			switch {
			case err != nil:
				// The pass failed or panicked: only this request is
				// implicated (per-sequence KV state is slot-local), so
				// evict it and keep the batch running.
				s.evict(bp, pf, err)
				active = remove(active, pf)
			default:
				pf.forced = pf.forced[chunk:]
				s.stamp(pf.p)
				// A finished prompt samples its first token from these logits
				// below; the same counter update keeps DecodeTokens covering
				// every sampled token, as in single-sequence mode.
				s.countPrefill(chunk, len(pf.forced) == 0)
				if len(pf.forced) == 0 {
					// Prompt fully ingested: the chunk's logits are the first
					// to sample.
					done, err := s.trySample(pf, logits)
					switch {
					case err != nil:
						s.evict(bp, pf, err)
						active = remove(active, pf)
					case done:
						bp.Drop(pf.slot)
						s.finish(pf)
						active = remove(active, pf)
					}
				}
			}
		}
		// One speculative verification round for the next decode-phase
		// request; it advances several tokens at once and sits out the
		// batched step below.
		var sped *liveReq
		if s.spec != nil {
			for i := 0; i < len(active); i++ {
				lr := active[(sr+i)%len(active)]
				if len(lr.forced) == 0 {
					sped = lr
					sr = (sr + i + 1) % len(active)
					break
				}
			}
		}
		if sped != nil {
			done, err := s.trySpec(bp, sped)
			switch {
			case err != nil:
				s.evict(bp, sped, err)
				active = remove(active, sped)
			case done:
				bp.Drop(sped.slot)
				s.finish(sped)
				active = remove(active, sped)
			}
		}
		// One batched decode step over every other request past its prompt.
		ids, toks, decs = ids[:0], toks[:0], decs[:0]
		for _, lr := range active {
			if len(lr.forced) == 0 && lr != sped {
				ids = append(ids, lr.slot)
				toks = append(toks, lr.last)
				decs = append(decs, lr)
			}
		}
		if len(ids) == 0 {
			continue
		}
		logits, err := s.tryStep(bp, ids, toks)
		if err != nil {
			// A failed batched step cannot be attributed to one request,
			// and a panic mid-step may have left partially written KV rows
			// behind: fail the whole active batch and rebuild the
			// predictor — the catastrophic-but-survivable path. The worker
			// process keeps serving; new requests get a clean predictor.
			for _, lr := range active {
				s.reply(lr.p, outcome{err: fmt.Errorf("serve: batched step failed: %w", err)})
				s.countFailure(err)
			}
			active = active[:0]
			bp = s.newBatch()
			continue
		}
		s.countStep(len(ids))
		for i, lr := range decs {
			done, err := s.trySample(lr, logits[i])
			switch {
			case err != nil:
				// Sampling state is per-request: a panicking strategy (or
				// an injected fault) kills only its own request, and the
				// other in-flight streams finish bitwise-intact.
				s.evict(bp, lr, err)
				active = remove(active, lr)
			case done:
				bp.Drop(lr.slot)
				s.finish(lr)
				active = remove(active, lr)
			}
		}
	}
}

// sampleTok samples one token for lr from logits, delivers its stream event,
// and reports whether the request finished.
func (s *Server) sampleTok(lr *liveReq, logits []float64) bool {
	tok, done := lr.dec.Next(logits)
	lr.last = tok
	if lr.ctx != nil {
		lr.ctx = append(lr.ctx, tok)
	}
	s.stamp(lr.p)
	if lr.p.events != nil {
		// Delivered as soon as this step completes; capacity is pre-sized,
		// so the loop never blocks.
		lr.p.events <- lr.pd.Next(tok)
	}
	return done
}

// ---- panic isolation ----
//
// The loop goroutine is the whole worker: before this layer existed, any
// panic that reached it — a malformed strategy tripping a guard in
// internal/sample, a bug in the predictor, an injected fault — killed the
// process and every in-flight stream. Each loop operation now runs behind
// a recover that converts the panic into an error; per-request operations
// (prefill, sampling, a verify round) evict only the offending request,
// while a batched-step failure fails the batch and rebuilds the predictor.

// trySample is the guarded sampleTok: a panic in the sampling strategy (or
// a fault injected at serve/sample) becomes an error attributed to lr.
func (s *Server) trySample(lr *liveReq, logits []float64) (done bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Site: "sample", Value: v}
		}
	}()
	if err := failpoint.Inject(failpoint.ServeSample); err != nil {
		return false, err
	}
	return s.sampleTok(lr, logits), nil
}

// tryPrefill is the guarded per-request prefill pass (failpoint site
// serve/prefill).
func (s *Server) tryPrefill(bp batchPredictor, lr *liveReq, chunk int) (logits []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Site: "prefill", Value: v}
		}
	}()
	if err := failpoint.Inject(failpoint.ServePrefill); err != nil {
		return nil, err
	}
	return bp.Prefill(lr.slot, lr.forced[:chunk]), nil
}

// trySpec is the guarded speculative verification round (failpoint site
// serve/verify).
func (s *Server) trySpec(bp batchPredictor, lr *liveReq) (done bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Site: "verify", Value: v}
		}
	}()
	if err := failpoint.Inject(failpoint.ServeVerify); err != nil {
		return false, err
	}
	return s.specRound(bp, lr), nil
}

// tryStep is the guarded batched decode step (failpoint site serve/step).
func (s *Server) tryStep(bp batchPredictor, ids, toks []int) (logits [][]float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Site: "step", Value: v}
		}
	}()
	if err := failpoint.Inject(failpoint.ServeStep); err != nil {
		return nil, err
	}
	return bp.Step(ids, toks), nil
}

// evict fails one request out of the batch with err. The slot release is
// itself guarded: the panic that doomed the request may have left its
// slot-local state inconsistent, and a second panic during cleanup must not
// undo the isolation.
func (s *Server) evict(bp batchPredictor, lr *liveReq, err error) {
	func() {
		defer func() { recover() }()
		bp.Drop(lr.slot)
	}()
	s.reply(lr.p, outcome{err: err})
	s.countFailure(err)
}

// countFailure charges one terminal failure, splitting out the panic
// counter the chaos harness asserts on.
func (s *Server) countFailure(err error) {
	var pe *PanicError
	isPanic := errors.As(err, &pe)
	s.count(func(st *Stats) {
		st.Failed++
		if isPanic {
			st.Panics++
		}
	})
}

// slotTarget adapts one BatchedPredictor sequence to the single-sequence
// verification surface sample.Speculative drives.
type slotTarget struct {
	bp   batchPredictor
	slot int
}

func (t slotTarget) ExtendAll(ids []int) [][]float64 { return t.bp.PrefillAll(t.slot, ids) }
func (t slotTarget) Rewind(n int)                    { t.bp.Rewind(t.slot, n) }
func (t slotTarget) Len() int                        { return t.bp.Len(t.slot) }

// specRound runs one speculative verification round for lr and reports
// whether the request finished. The emitted tokens are delivered and counted
// exactly as the batched step's sampled tokens are, so greedy requests keep
// bitwise-identical output and the stats stay coherent.
func (s *Server) specRound(bp batchPredictor, lr *liveReq) bool {
	room := 1 << 30
	if s.window > 0 {
		// Admission guarantees prompt+budget fit the window, so room covers
		// the pending token and at least one draft whenever a round runs.
		room = s.window - bp.Len(lr.slot)
	}
	rr := s.spec.Round(slotTarget{bp, lr.slot}, lr.dec, lr.ctx, room)
	if len(rr.Emitted) > 0 {
		s.stamp(lr.p)
	}
	for _, tok := range rr.Emitted {
		lr.last = tok
		if lr.p.events != nil {
			lr.p.events <- lr.pd.Next(tok)
		}
	}
	lr.ctx = append(lr.ctx, rr.Emitted...)
	s.countSpec(rr.Drafted, rr.Accepted, len(rr.Emitted))
	return rr.Done
}

// remove deletes lr from the batch, preserving order (the round-robin
// cursor and per-step iteration depend on stable ordering). slices.Delete
// zeroes the vacated tail slot, so a finished request's buffers are not
// retained by the backing array while the server idles.
func remove(active []*liveReq, lr *liveReq) []*liveReq {
	if i := slices.Index(active, lr); i >= 0 {
		return slices.Delete(active, i, i+1)
	}
	return active
}

// admit moves a queued request into the decoding batch.
func (s *Server) admit(bp batchPredictor, active *[]*liveReq, p *pending) {
	if p.ctx.Err() != nil {
		s.settle(p)
		return
	}
	ids, err := s.model.EncodePrompt(p.req.Prompt, p.req.MaxTokens)
	if err != nil {
		s.reply(p, outcome{err: err})
		s.count(func(st *Stats) { st.Failed++ })
		return
	}
	strat := p.req.Strategy
	if strat == nil {
		strat = sample.Greedy{}
	}
	stop := -1
	if p.req.StopAtEOS {
		stop = tokenizer.EOS
	}
	lr := &liveReq{
		p:      p,
		slot:   bp.Add(),
		forced: ids,
		dec:    sample.NewDecoder(strat, stop, p.req.MaxTokens, mathx.NewRNG(p.req.Seed+977)),
	}
	if p.events != nil {
		lr.pd = lm.NewPieceDecoder(s.backend.Decode)
	}
	if s.spec != nil {
		// Speculative rounds need the full decoded context (the drafter
		// conditions on it); cloned so prefill's reslicing of forced cannot
		// alias it.
		lr.ctx = append([]int(nil), ids...)
	}
	*active = append(*active, lr)
}

// coalesce lingers briefly after a batch forms from idle, gathering more
// concurrent requests so they share the first decoding steps.
func (s *Server) coalesce(bp batchPredictor, active *[]*liveReq) {
	if s.cfg.CoalesceWait <= 0 {
		return
	}
	timer := time.NewTimer(s.cfg.CoalesceWait)
	defer timer.Stop()
	for len(*active) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			s.admit(bp, active, p)
		case <-timer.C:
			return
		case <-s.quit:
			return // the main loop observes quit next
		}
	}
}

// finish decodes a completed request and replies.
func (s *Server) finish(lr *liveReq) {
	s.reply(lr.p, outcome{res: lm.Finish(s.backend, lr.dec.Tokens(), lr.p.req.Options())})
	s.count(func(st *Stats) { st.Completed++ })
}

// shutdown fails the active batch and drains the queue.
func (s *Server) shutdown(bp batchPredictor, active []*liveReq) {
	for _, lr := range active {
		bp.Drop(lr.slot)
		s.reply(lr.p, outcome{err: ErrClosed})
		s.count(func(st *Stats) { st.Failed++ })
	}
	s.drainQueue()
}

// drainQueue fails everything still queued at shutdown.
func (s *Server) drainQueue() {
	for {
		select {
		case p := <-s.queue:
			s.reply(p, outcome{err: ErrClosed})
			s.count(func(st *Stats) { st.Failed++ })
		default:
			return
		}
	}
}

// ---- single-sequence loop (non-transformer backends) ----

// loopSingle serves requests one at a time through the generic decoding
// driver: same queue, validation, streaming, cancellation, and stats
// surface as the batched loop, for backends without a batched predictor.
func (s *Server) loopSingle() {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.serveSingle(p)
		case <-s.quit:
			s.drainQueue()
			return
		}
	}
}

// serveSingle runs one queued request to completion.
func (s *Server) serveSingle(p *pending) {
	if p.ctx.Err() != nil {
		s.settle(p)
		return
	}
	// The prompt-token split of the batched loop, for parity: the driver
	// below re-encodes, so this costs one extra (cheap) encode.
	if ids, err := s.backend.EncodePrompt(p.req.Prompt, p.req.MaxTokens); err == nil {
		n := uint64(len(ids))
		s.count(func(st *Stats) { st.PromptTokens += n })
	}
	onTok := func(ev sample.Token) error {
		select {
		case <-s.quit:
			return ErrClosed
		default:
		}
		if err := failpoint.Inject(failpoint.ServeSample); err != nil {
			return err
		}
		s.countStep(1)
		s.stamp(p)
		if p.events != nil {
			p.events <- ev
		}
		return nil
	}
	res, err := s.trySingle(p, onTok)
	switch {
	case err == nil:
		s.reply(p, outcome{res: res})
		s.count(func(st *Stats) { st.Completed++ })
	case p.ctx.Err() != nil:
		s.settle(p)
	default:
		s.reply(p, outcome{err: err})
		s.countFailure(err)
	}
}

// trySingle is the guarded single-sequence driver: a panic anywhere in the
// backend or sampling path fails this request only, and the loop goroutine
// survives to serve the next one.
func (s *Server) trySingle(p *pending, onTok func(sample.Token) error) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Site: "single", Value: v}
		}
	}()
	return lm.StreamOptions(p.ctx, s.backend, p.req.Prompt, onTok, p.req.Options())
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// countStep records one decoding step of the given batch width without
// allocating (the closure form would capture the width and escape). Every
// decode row samples exactly one token, so the same call maintains
// DecodeTokens.
func (s *Server) countStep(rows int) {
	bucket := histBucket(rows, len(s.stats.BatchHist))
	s.mu.Lock()
	s.stats.Steps++
	s.stats.StepRows += uint64(rows)
	s.stats.DecodeTokens += uint64(rows)
	s.stats.BatchHist[bucket]++
	if rows > s.stats.MaxBatch {
		s.stats.MaxBatch = rows
	}
	s.mu.Unlock()
}

// countSpec records one speculative verification round: the round itself,
// the draft/accept split and acceptance-length histogram (drafting rounds
// only, matching sample.SpecStats), and the emitted tokens under
// DecodeTokens so token throughput spans both decode paths.
func (s *Server) countSpec(drafted, accepted, emitted int) {
	s.mu.Lock()
	s.stats.SpecRounds++
	if drafted > 0 {
		s.stats.SpecDrafted += uint64(drafted)
		s.stats.SpecAccepted += uint64(accepted)
		b := accepted
		if b >= len(s.stats.SpecAcceptHist) {
			b = len(s.stats.SpecAcceptHist) - 1
		}
		s.stats.SpecAcceptHist[b]++
	}
	s.stats.DecodeTokens += uint64(emitted)
	s.mu.Unlock()
}

// countPrefill records one chunked-prefill pass of the given token count;
// sampled marks a pass that completed its prompt, whose logits immediately
// yield one sampled token (counted here so DecodeTokens spans every
// sampled token without an extra lock in the sampling path).
func (s *Server) countPrefill(chunk int, sampled bool) {
	bucket := histBucket(chunk, len(s.stats.PrefillChunkHist))
	s.mu.Lock()
	s.stats.PromptTokens += uint64(chunk)
	s.stats.PrefillChunkHist[bucket]++
	if sampled {
		s.stats.DecodeTokens++
	}
	s.mu.Unlock()
}

// batchPredictor is the slice of transformer.BatchedPredictor the loop uses
// (an interface so the admission helpers and the chunk scheduling stay
// testable).
type batchPredictor interface {
	Add() int
	Drop(id int)
	Step(ids []int, tokens []int) [][]float64
	Prefill(id int, ids []int) []float64
	PrefillAll(id int, ids []int) [][]float64
	Rewind(id int, n int)
	Len(id int) int
}
