package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/transformer"
)

// testModel trains one small LLM per test binary (training dominates test
// time, so it is shared; the model is read-only after training).
var (
	modelOnce sync.Once
	model     *core.LLM
)

func testLLM(t *testing.T) *core.LLM {
	t.Helper()
	modelOnce.Do(func() {
		lines := corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
		m, _, err := core.Train(lines, core.Config{
			Tokenizer: core.WordTok,
			Model: transformer.Config{
				Dim: 16, Layers: 1, Heads: 2, Window: 16,
				Pos: transformer.PosLearned, Act: nn.GELU,
			},
			Steps: 30, BatchSize: 2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		model = m
	})
	return model
}

// TestBatchedMatchesUnbatched fires concurrent requests with different
// sampling strategies and seeds; every response must equal the serial
// core.LLM.Generate result for the same parameters.
func TestBatchedMatchesUnbatched(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 4, CoalesceWait: 30 * time.Millisecond})
	defer s.Close()

	type job struct {
		prompt string
		n      int
		strat  sample.Strategy
		seed   uint64
	}
	jobs := []job{
		{"the king", 6, sample.Greedy{}, 0},
		{"a queen", 5, sample.Temperature{T: 0.8}, 1},
		{"the royal crown", 7, sample.TopK{K: 5, T: 0.9}, 2},
		{"the king", 4, sample.TopP{P: 0.9, T: 0.7}, 3},
		{"a king sees", 6, sample.Temperature{T: 1.2}, 4},
		{"the queen", 5, sample.Greedy{}, 5},
	}
	want := make([]string, len(jobs))
	for i, j := range jobs {
		w, err := m.Generate(j.prompt, j.n, j.strat, j.seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	got := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			got[i], errs[i] = s.Generate(context.Background(), j.prompt, j.n, j.strat, j.seed)
		}(i, j)
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("job %d: batched %q != serial %q", i, got[i], want[i])
		}
	}
}

// TestRequestsAreBatched asserts the engine actually coalesces concurrent
// requests into shared steps rather than serializing them.
func TestRequestsAreBatched(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 8, CoalesceWait: 100 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Generate(context.Background(), "the king", 5, sample.Greedy{}, uint64(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != 6 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d: concurrent requests were never batched", st.MaxBatch)
	}
	if st.Steps == 0 || st.StepRows <= st.Steps {
		t.Errorf("Steps=%d StepRows=%d: no step carried more than one sequence",
			st.Steps, st.StepRows)
	}
}

func TestCancellationMidGeneration(t *testing.T) {
	m := testLLM(t)
	// A long coalesce window keeps the lone request admitted-but-undecoded
	// until well after the cancel below, so the cancellation sweep (not a
	// finished result) must answer it.
	s := New(m, Config{MaxBatch: 4, CoalesceWait: 300 * time.Millisecond})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, Request{Prompt: "the king", MaxTokens: 15, Seed: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}
	// The server keeps working after a cancellation.
	out, err := s.Generate(context.Background(), "the king", 3, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Generate("the king", 3, sample.Greedy{}, 0); out != want {
		t.Fatalf("post-cancel result %q != %q", out, want)
	}
}

func TestStopAtEOSMatchesComplete(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	res, err := s.Do(context.Background(), Request{
		Prompt: "the king", MaxTokens: 8, StopAtEOS: true, Seed: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Complete("the king", 8); res.Text != want {
		t.Fatalf("StopAtEOS result %q != Complete %q", res.Text, want)
	}
}

func TestRequestValidation(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	if _, err := s.Do(context.Background(), Request{Prompt: "x", MaxTokens: 0}); err == nil {
		t.Error("MaxTokens=0 accepted")
	}
	w := m.Model.Cfg.Window
	if _, err := s.Do(context.Background(), Request{Prompt: "x", MaxTokens: w}); err == nil {
		t.Error("MaxTokens=window accepted")
	}
	// A prompt that encodes to no tokens errors rather than hanging.
	if _, err := s.Do(context.Background(), Request{Prompt: "", MaxTokens: 3}); err == nil ||
		!strings.Contains(err.Error(), "encodes to no tokens") {
		t.Errorf("empty prompt: err = %v", err)
	}
}

func TestCloseFailsPending(t *testing.T) {
	m := testLLM(t)
	// MaxBatch above the request count keeps the batch lingering in the
	// coalesce window, so every request is still unanswered at Close.
	s := New(m, Config{MaxBatch: 16, CoalesceWait: 300 * time.Millisecond})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{
				Prompt: "the king", MaxTokens: 14, Seed: uint64(i),
			})
			errCh <- err
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(errCh)
	closed := 0
	for err := range errCh {
		if errors.Is(err, ErrClosed) {
			closed++
		} else if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if closed != 8 {
		t.Errorf("got %d ErrClosed replies, want 8", closed)
	}
	if _, err := s.Do(context.Background(), Request{Prompt: "x", MaxTokens: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close err = %v, want ErrClosed", err)
	}
}

// TestManyConcurrentMixedRequests is a stress pass: more requests than
// MaxBatch with mixed budgets, all answers checked against the serial path.
func TestManyConcurrentMixedRequests(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 3, CoalesceWait: 10 * time.Millisecond, QueueDepth: 4})
	defer s.Close()
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			budget := 2 + i%7
			seed := uint64(i)
			want, err := m.Generate("the king", budget, sample.Temperature{T: 0.9}, seed)
			if err != nil {
				t.Error(err)
				return
			}
			got, err := s.Generate(context.Background(), "the king", budget, sample.Temperature{T: 0.9}, seed)
			if err != nil {
				t.Error(err)
				return
			}
			if got != want {
				t.Errorf("req %d: %q != %q", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != n {
		t.Fatalf("Completed = %d, want %d", st.Completed, n)
	}
}

func TestGenerateUnknownPromptTokens(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	// A prompt of known words mixed with punctuation the word tokenizer
	// drops should still work through the window-truncation path.
	out, err := s.Generate(context.Background(), "the king!", 3, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Generate("the king!", 3, sample.Greedy{}, 0); out != want {
		t.Fatalf("%q != %q", out, want)
	}
}
