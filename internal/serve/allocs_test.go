package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/sample"
)

// TestServerDecodeStepAllocsBounded bounds the serving loop's steady-state
// cost: one non-streaming request of many tokens is dominated by decode
// steps, and with the predictor arena, the decoder's sampling scratch, and
// the loop's reused step buffers, the amortized allocations per generated
// token must stay small and — crucially — independent of position. The
// bound is deliberately loose (request admission, channel plumbing, and the
// result all allocate once per request); what it catches is a regression
// back to per-token slice churn, which lands at dozens of allocations per
// token.
func TestServerDecodeStepAllocsBounded(t *testing.T) {
	model := testLLM(t)
	s := New(model, Config{MaxBatch: 4, CoalesceWait: -1})
	defer s.Close()
	const tokens = 12
	req := Request{Prompt: "the king", MaxTokens: tokens, Strategy: sample.TopP{P: 0.9, T: 0.8}, Seed: 5}
	do := func() {
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	do() // warm the loop, the batch slot, and every scratch arena
	allocs := testing.AllocsPerRun(20, do)
	perToken := allocs / tokens
	if perToken > 8 {
		t.Errorf("server decode allocates %.1f per token (%.0f per request), want <= 8",
			perToken, allocs)
	}
}

// TestServerConcurrentDecodeAllocsBounded is the wide-batch form of the
// bound above: a full burst of concurrent requests decoding together (the
// cross-sequence GEMM step at MaxBatch rows) must keep amortized per-token
// allocations small — the shared step scratch grows once for the burst
// width and is reused, so batching must not reintroduce per-row churn.
func TestServerConcurrentDecodeAllocsBounded(t *testing.T) {
	model := testLLM(t)
	s := New(model, Config{MaxBatch: 8, CoalesceWait: 2 * time.Millisecond})
	defer s.Close()
	const load, tokens = 8, 10
	burst := func() {
		var wg sync.WaitGroup
		for j := 0; j < load; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				req := Request{Prompt: "the king", MaxTokens: tokens,
					Strategy: sample.Temperature{T: 0.9}, Seed: uint64(j)}
				if _, err := s.Do(context.Background(), req); err != nil {
					t.Error(err)
				}
			}(j)
		}
		wg.Wait()
	}
	burst() // warm the loop, all batch slots, and the step arena
	allocs := testing.AllocsPerRun(10, burst)
	perToken := allocs / (load * tokens)
	if perToken > 12 {
		t.Errorf("concurrent decode allocates %.1f per token (%.0f per burst), want <= 12",
			perToken, allocs)
	}
}

// TestServerDecodeStepAllocsFlat verifies the per-token allocation cost
// does not grow with the generation length (i.e. nothing per-step scales
// with position): doubling MaxTokens must not double per-token allocations.
func TestServerDecodeStepAllocsFlat(t *testing.T) {
	model := testLLM(t)
	s := New(model, Config{MaxBatch: 4, CoalesceWait: time.Millisecond})
	defer s.Close()
	perToken := func(n int) float64 {
		req := Request{Prompt: "the king", MaxTokens: n, Strategy: sample.Temperature{T: 0.9}, Seed: 7}
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := s.Do(context.Background(), req); err != nil {
				t.Fatal(err)
			}
		})
		return allocs / float64(n)
	}
	short := perToken(6)
	long := perToken(12)
	if long > 4*short+8 {
		t.Errorf("per-token allocations grew with length: %.1f at n=6 vs %.1f at n=12", short, long)
	}
}
