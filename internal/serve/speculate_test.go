package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lm"
	"repro/internal/sample"
)

// uniformDrafter proposes the uniform distribution; its argmax is token 0,
// which matches Greedy over fakeBatch's zero logits, so every draft is
// accepted — the deterministic regime the scheduling test pins.
type uniformDrafter struct{ vocab int }

func (u uniformDrafter) NextDist([]int) []float64 {
	d := make([]float64, u.vocab)
	for i := range d {
		d[i] = 1 / float64(u.vocab)
	}
	return d
}

// TestSpeculativeScheduling pins the speculative serving policy on the fake
// predictor: at most one verification round per loop iteration, rounds
// interleave with (never block) another request's chunked prefill, every
// round's depth respects the remaining budget, and the stats counters match
// the pinned op sequence exactly.
func TestSpeculativeScheduling(t *testing.T) {
	m := testLLM(t)
	s := newServer(m, m, Config{
		MaxBatch: 4, CoalesceWait: -1, PrefillChunk: 4,
		Speculate: 3, Drafter: uniformDrafter{m.Tok.VocabSize()},
	})
	fake := &fakeBatch{vocab: m.Tok.VocabSize()}
	s.newBatch = func() batchPredictor { return fake }

	// A: short prompt, 9 decode tokens — enters decode immediately and takes
	// speculative rounds. B, queued behind it: a 12-token prompt (3 chunks)
	// whose ingestion must interleave with A's rounds.
	pa := &pending{ctx: context.Background(),
		req: Request{Prompt: "the king", MaxTokens: 9}, done: make(chan outcome, 1)}
	pb := &pending{ctx: context.Background(),
		req:  Request{Prompt: strings.TrimSpace(strings.Repeat("the king ", 6)), MaxTokens: 3},
		done: make(chan outcome, 1)}
	s.queue <- pa
	s.queue <- pb
	s.wg.Add(1)
	go s.loop()
	if o := <-pa.done; o.err != nil {
		t.Fatal(o.err)
	}
	if o := <-pb.done; o.err != nil {
		t.Fatal(o.err)
	}
	s.Close()

	// Iteration by iteration: A prefills and takes a depth-3 round (V4 =
	// pending + 3 drafts, all accepted, no rewind); B's prompt chunks land
	// between A's rounds; B's own round is budget-clamped to depth 1 (V2).
	want := []string{"P2", "V4", "P4", "V4", "P4", "P4", "V2"}
	if got := fmt.Sprint(fake.ops); got != fmt.Sprint(want) {
		t.Fatalf("op sequence %v, want %v", fake.ops, want)
	}

	st := s.Stats()
	if st.SpecRounds != 3 || st.SpecDrafted != 7 || st.SpecAccepted != 7 {
		t.Errorf("spec counters rounds=%d drafted=%d accepted=%d, want 3/7/7",
			st.SpecRounds, st.SpecDrafted, st.SpecAccepted)
	}
	if st.SpecAcceptHist[3] != 2 || st.SpecAcceptHist[1] != 1 {
		t.Errorf("SpecAcceptHist = %v, want two depth-3 rounds and one depth-1", st.SpecAcceptHist)
	}
	if st.DecodeTokens != 12 {
		t.Errorf("DecodeTokens = %d, want 12 (9+3 sampled tokens)", st.DecodeTokens)
	}
	if st.PromptTokens != 14 {
		t.Errorf("PromptTokens = %d, want 14", st.PromptTokens)
	}
}

// TestServeSpeculativeParity checks the end-to-end contract on the real
// model: greedy requests served with speculative decoding produce bitwise
// the same text and tokens as the plain single-sequence driver, including
// under concurrency and streaming.
func TestServeSpeculativeParity(t *testing.T) {
	m := testLLM(t)
	drafter := lm.DistillDrafter(m, 3, 300, 1)
	s := New(m, Config{Speculate: 4, Drafter: drafter})
	defer s.Close()

	prompts := []string{"the king", "a dragon sees the castle", "the old wizard"}
	type out struct {
		got Result
		err error
	}
	ch := make(chan out, len(prompts))
	for _, p := range prompts {
		go func(p string) {
			var pieces strings.Builder
			res, err := s.Stream(context.Background(), NewRequest(p, sample.WithMaxTokens(8)),
				func(ev sample.Token) error { pieces.WriteString(ev.Text); return nil })
			if err == nil && pieces.String() != res.Text {
				err = fmt.Errorf("stream pieces %q != result %q", pieces.String(), res.Text)
			}
			ch <- out{res, err}
		}(p)
	}
	got := map[string]bool{}
	for range prompts {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		got[o.got.Text] = true
	}
	for _, p := range prompts {
		want, err := lm.Gen(m, p, sample.WithMaxTokens(8))
		if err != nil {
			t.Fatal(err)
		}
		if !got[want.Text] {
			t.Errorf("plain result %q for prompt %q missing from speculative outputs %v",
				want.Text, p, got)
		}
	}

	st := s.Stats()
	if st.SpecRounds == 0 || st.SpecDrafted == 0 {
		t.Fatalf("speculative server ran no drafting rounds: %+v", st)
	}
	if st.SpecAccepted > st.SpecDrafted {
		t.Fatalf("accepted %d > drafted %d", st.SpecAccepted, st.SpecDrafted)
	}
	var histRounds, histWeighted uint64
	for i, c := range st.SpecAcceptHist {
		histRounds += c
		histWeighted += uint64(i) * c
	}
	if histRounds > st.SpecRounds {
		t.Errorf("histogram rounds %d > SpecRounds %d", histRounds, st.SpecRounds)
	}
	if histWeighted != st.SpecAccepted {
		t.Errorf("histogram-weighted accepted %d != SpecAccepted %d", histWeighted, st.SpecAccepted)
	}
}

// TestServeSpeculativeStochastic checks that stochastic strategies under the
// speculative server are deterministic per (request, seed) — rejection
// sampling redraws from the same seeded stream — and stop/budget contracts
// hold. (Distribution correctness is pinned by the chi-square test at the
// sample layer.)
func TestServeSpeculativeStochastic(t *testing.T) {
	m := testLLM(t)
	drafter := lm.DistillDrafter(m, 3, 300, 1)
	req := NewRequest("the king",
		sample.WithMaxTokens(8), sample.WithStrategy(sample.Temperature{T: 0.9}), sample.WithSeed(11))

	run := func() Result {
		s := New(m, Config{Speculate: 4, Drafter: lm.DistillDrafter(m, 3, 300, 1)})
		defer s.Close()
		res, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Text != b.Text || fmt.Sprint(a.Tokens) != fmt.Sprint(b.Tokens) {
		t.Fatalf("stochastic speculative serving not deterministic: %q vs %q", a.Text, b.Text)
	}
	if len(a.Tokens) == 0 || len(a.Tokens) > 8 {
		t.Fatalf("token budget violated: %d tokens", len(a.Tokens))
	}

	// Stop-at-EOS under speculation: the emitted stream must end at (and
	// trim) the stop token without overshooting the budget.
	s := New(m, Config{Speculate: 4, Drafter: drafter})
	defer s.Close()
	res, err := s.Do(context.Background(), NewRequest("the king",
		sample.WithMaxTokens(10), sample.WithStop(), sample.WithSeed(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) > 10 {
		t.Fatalf("stop-mode budget violated: %d tokens", len(res.Tokens))
	}
}
