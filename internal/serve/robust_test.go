package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/sample"
)

// bombStrategy picks greedily until its fuse runs out, then panics — the
// organic stand-in for any bug that detonates inside one request's sampling
// path while it shares a batch with healthy requests.
type bombStrategy struct {
	fuse  int
	picks int
}

func (b *bombStrategy) Pick(logits []float64, rng *mathx.RNG) int {
	b.picks++
	if b.picks > b.fuse {
		panic("bomb: strategy detonated")
	}
	i, _ := mathx.ArgMax(logits)
	return i
}

// checkInvariant asserts the terminal-outcome ledger once the server idles:
// every accepted request reached exactly one of Completed/Cancelled/Failed.
func checkInvariant(t *testing.T, st Stats) {
	t.Helper()
	if st.Requests != st.Completed+st.Cancelled+st.Failed {
		t.Errorf("lost requests: %d accepted != %d completed + %d cancelled + %d failed",
			st.Requests, st.Completed, st.Cancelled, st.Failed)
	}
}

// TestPanicIsolationBitwiseIntact: one request whose sampling strategy
// panics mid-batch fails alone; the other in-flight requests complete with
// output bitwise identical to the fault-free serial path, and the server
// keeps serving afterwards.
func TestPanicIsolationBitwiseIntact(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 4, CoalesceWait: 50 * time.Millisecond})
	defer s.Close()

	type job struct {
		prompt string
		n      int
		seed   uint64
	}
	jobs := []job{
		{"the king", 6, 1},
		{"a queen", 5, 2},
		{"the royal crown", 7, 3},
	}
	want := make([]string, len(jobs))
	for i, j := range jobs {
		w, err := m.Generate(j.prompt, j.n, sample.Temperature{T: 0.8}, j.seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	got := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	var victimErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, victimErr = s.Do(context.Background(), Request{
			Prompt: "the king", MaxTokens: 8, Strategy: &bombStrategy{fuse: 2},
		})
	}()
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			got[i], errs[i] = s.Generate(context.Background(), j.prompt, j.n, sample.Temperature{T: 0.8}, j.seed)
		}(i, j)
	}
	wg.Wait()

	var pe *PanicError
	if !errors.As(victimErr, &pe) {
		t.Fatalf("victim error = %v, want *PanicError", victimErr)
	}
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("bystander %d failed: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("bystander %d: batched %q != fault-free serial %q", i, got[i], want[i])
		}
	}
	// The worker survived: a fresh request completes normally.
	if _, err := s.Generate(context.Background(), "the queen", 4, sample.Greedy{}, 9); err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.Panics != 1 || st.Failed != 1 {
		t.Errorf("Panics = %d, Failed = %d, want 1, 1", st.Panics, st.Failed)
	}
	if st.Completed != uint64(len(jobs))+1 {
		t.Errorf("Completed = %d, want %d", st.Completed, len(jobs)+1)
	}
	checkInvariant(t, st)
}

// TestStepPanicFailsBatchAndRecovers: a panic inside the batched decode step
// cannot be pinned on one request, so the whole active batch fails — but the
// loop rebuilds its predictor and the next request decodes correctly.
func TestStepPanicFailsBatchAndRecovers(t *testing.T) {
	m := testLLM(t)
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.ServeStep, Kind: failpoint.KindPanic, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := New(m, Config{MaxBatch: 4, CoalesceWait: 50 * time.Millisecond})
	defer s.Close()

	const n = 3
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Generate(context.Background(), "the king sees", 5, sample.Greedy{}, uint64(i))
		}(i)
	}
	wg.Wait()

	failed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if !errors.Is(err, failpoint.ErrInjected) {
			t.Errorf("request %d failed with %v, not the injected fault", i, err)
		}
	}
	if failed == 0 {
		t.Fatal("step panic fired but no request failed")
	}
	failpoint.Disarm()

	// Recovery: the rebuilt predictor decodes bitwise-correctly.
	want, err := m.Generate("the queen", 5, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Generate(context.Background(), "the queen", 5, sample.Greedy{}, 0)
	if err != nil {
		t.Fatalf("server did not recover from step panic: %v", err)
	}
	if got != want {
		t.Errorf("post-recovery output %q != direct %q", got, want)
	}
	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.Panics != uint64(failed) {
		t.Errorf("Panics = %d, want %d (one per batch victim)", st.Panics, failed)
	}
	checkInvariant(t, st)
}

// TestRequestDeadline: a request that overruns its Timeout fails with
// ErrDeadline between decode steps, charged to Failed/Deadlined — and the
// server-wide Config.RequestTimeout default applies when the request does
// not carry its own.
func TestRequestDeadline(t *testing.T) {
	m := testLLM(t)
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.ServeStep, Kind: failpoint.KindLatency, Sleep: 10 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := New(m, Config{RequestTimeout: 40 * time.Millisecond})
	defer s.Close()

	// Per-request timeout.
	_, err := s.Do(context.Background(), Request{
		Prompt: "the king", MaxTokens: 14, Timeout: 30 * time.Millisecond,
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// Server-wide default.
	_, err = s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 14})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("default-timeout err = %v, want ErrDeadline", err)
	}
	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.Deadlined != 2 || st.Failed != 2 {
		t.Errorf("Deadlined = %d, Failed = %d, want 2, 2", st.Deadlined, st.Failed)
	}
	checkInvariant(t, st)

	// Within budget the same request completes.
	failpoint.Disarm()
	if _, err := s.Do(context.Background(), Request{
		Prompt: "the king", MaxTokens: 5, Timeout: 5 * time.Second,
	}); err != nil {
		t.Fatalf("in-budget request failed: %v", err)
	}
}

// TestStallWatchdog: a stream that stops making token progress — here the
// loop is wedged inside a slow decode step — is killed by the watchdog with
// ErrStalled even though the loop goroutine itself cannot observe anything.
func TestStallWatchdog(t *testing.T) {
	m := testLLM(t)
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.ServeStep, Kind: failpoint.KindLatency, Sleep: 250 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := New(m, Config{StallTimeout: 40 * time.Millisecond})
	defer s.Close()

	start := time.Now()
	_, err := s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 10})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	// The caller was released by the watchdog, not by the wedged loop.
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("stalled request took %v to fail, watchdog should fire at ~40ms", d)
	}
	failpoint.Disarm()
	// Wait out the wedged step: the loop is still inside the injected sleep,
	// and a request queued behind it would be (correctly) stall-killed too.
	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.Stalled != 1 {
		t.Errorf("Stalled = %d, want 1", st.Stalled)
	}
	checkInvariant(t, st)
	// A healthy request keeps the stamps fresh and completes.
	if _, err := s.Do(context.Background(), Request{Prompt: "the queen", MaxTokens: 5}); err != nil {
		t.Fatalf("post-stall request failed: %v", err)
	}
}

// TestAdmissionValidation: malformed strategy parameters and negative
// timeouts are rejected at the door with an error — they used to reach the
// panic guards inside internal/sample from the middle of the batch loop.
func TestAdmissionValidation(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()

	bad := []Request{
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.Temperature{T: 0}},
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.Temperature{T: -1}},
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.TopK{K: -1, T: 0.8}},
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.TopK{K: 5, T: -0.5}},
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.TopP{P: 1.5, T: 0.8}},
		{Prompt: "the king", MaxTokens: 5, Strategy: sample.TopP{P: -0.1, T: 0.8}},
		{Prompt: "the king", MaxTokens: 5, Timeout: -time.Second},
	}
	for i, req := range bad {
		if _, err := s.Do(context.Background(), req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if st := s.Stats(); st.Requests != 0 {
		t.Errorf("rejected requests were counted as accepted: %+v", st)
	}
	// The well-formed variants pass.
	good := []Request{
		{Prompt: "the king", MaxTokens: 3, Strategy: sample.Temperature{T: 0.8}},
		{Prompt: "the king", MaxTokens: 3, Strategy: sample.TopK{K: 5, T: 0.8}},
		{Prompt: "the king", MaxTokens: 3, Strategy: sample.TopP{P: 0.9, T: 0.8}},
	}
	for i, req := range good {
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Errorf("good request %d rejected: %v", i, err)
		}
	}
}

// TestSingleLoopPanicIsolation: the single-sequence loop (non-transformer
// backends) survives a panicking request the same way the batched loop does.
func TestSingleLoopPanicIsolation(t *testing.T) {
	b := testBackend(t)
	s := NewBackend(b, Config{})
	defer s.Close()

	_, err := s.Do(context.Background(), Request{
		Prompt: "the king", MaxTokens: 6, Strategy: &bombStrategy{fuse: 2},
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if _, err := s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 4}); err != nil {
		t.Fatalf("single loop dead after panic: %v", err)
	}
	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.Panics != 1 || st.Completed != 1 {
		t.Errorf("Panics = %d, Completed = %d, want 1, 1", st.Panics, st.Completed)
	}
	checkInvariant(t, st)
}

// TestFailpointSitesInLoop: every serve-loop site actually evaluates its
// failpoint — an error rule at each site fails a request with the injected
// error rather than being silently skipped.
func TestFailpointSitesInLoop(t *testing.T) {
	m := testLLM(t)
	for _, site := range []string{failpoint.ServePrefill, failpoint.ServeSample, failpoint.ServeStep} {
		t.Run(site, func(t *testing.T) {
			if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
				{Site: site, Kind: failpoint.KindError, Count: 1},
			}}); err != nil {
				t.Fatal(err)
			}
			defer failpoint.Disarm()
			s := New(m, Config{})
			defer s.Close()
			_, err := s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 5})
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("site %s: err = %v, want the injected error", site, err)
			}
			hits := failpoint.Stats()[site]
			if hits.Fired != 1 {
				t.Fatalf("site %s: fired %d, want 1", site, hits.Fired)
			}
			st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
			checkInvariant(t, st)
		})
	}
}

// TestFailpointVerifySite: the serve/verify site fires inside the
// speculative round and fails only its round's request.
func TestFailpointVerifySite(t *testing.T) {
	m := testLLM(t)
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.ServeVerify, Kind: failpoint.KindError, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	s := New(m, Config{Speculate: 3, Drafter: lm.DistillDrafter(m, 3, 300, 1)})
	defer s.Close()
	_, err := s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 6})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	failpoint.Disarm()
	want, err := m.Generate("the queen", 5, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Generate(context.Background(), "the queen", 5, sample.Greedy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-fault speculative output %q != direct %q", got, want)
	}
}
