package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lm"
	"repro/internal/sample"
)

// fakeBatch records the loop's exact predictor call sequence, so the
// scheduling tests can assert the chunked-prefill and speculative-round
// policies (bounded chunks, at most one chunk or round between decode
// steps) independent of model arithmetic. Zero logits make Greedy sample
// token 0 deterministically. Per-slot lengths track Prefill/PrefillAll/
// Step/Rewind so the speculative scheduling test can assert window
// accounting too.
type fakeBatch struct {
	vocab int
	next  int
	ops   []string    // "P<len>" per Prefill, "S<rows>" per Step, "V<len>" per PrefillAll, "R<n>" per Rewind
	lens  map[int]int // ingested positions per live slot
}

func (f *fakeBatch) Add() int {
	if f.lens == nil {
		f.lens = make(map[int]int)
	}
	id := f.next
	f.next++
	f.lens[id] = 0
	return id
}

func (f *fakeBatch) Drop(id int) { delete(f.lens, id) }

func (f *fakeBatch) Step(ids, toks []int) [][]float64 {
	f.ops = append(f.ops, fmt.Sprintf("S%d", len(ids)))
	out := make([][]float64, len(ids))
	for i, id := range ids {
		f.lens[id]++
		out[i] = make([]float64, f.vocab)
	}
	return out
}

func (f *fakeBatch) Prefill(id int, ids []int) []float64 {
	f.ops = append(f.ops, fmt.Sprintf("P%d", len(ids)))
	f.lens[id] += len(ids)
	return make([]float64, f.vocab)
}

func (f *fakeBatch) PrefillAll(id int, ids []int) [][]float64 {
	f.ops = append(f.ops, fmt.Sprintf("V%d", len(ids)))
	f.lens[id] += len(ids)
	out := make([][]float64, len(ids))
	for i := range out {
		out[i] = make([]float64, f.vocab)
	}
	return out
}

func (f *fakeBatch) Rewind(id, n int) {
	f.ops = append(f.ops, fmt.Sprintf("R%d", n))
	if n < 0 || n > f.lens[id] {
		panic("fakeBatch: rewind out of range")
	}
	f.lens[id] -= n
}

func (f *fakeBatch) Len(id int) int { return f.lens[id] }

// TestPrefillChunkScheduling pins the serving loop's interleaving policy:
// prompts are ingested in chunks of at most PrefillChunk tokens, at most
// one chunk runs between consecutive decode steps (so a mid-decode request
// is never stalled by more than one chunk of someone else's prompt), and a
// finished prompt samples its first token from the prefill logits and joins
// the decode batch the same iteration.
func TestPrefillChunkScheduling(t *testing.T) {
	m := testLLM(t)
	s := newServer(m, m, Config{MaxBatch: 4, CoalesceWait: -1, PrefillChunk: 4})
	fake := &fakeBatch{vocab: m.Tok.VocabSize()}
	s.newBatch = func() batchPredictor { return fake }

	// Request A: a 2-token prompt and 8 decode tokens. Request B, queued
	// behind it: a 12-token prompt (3 chunks of <=4) and 3 decode tokens.
	pa := &pending{ctx: context.Background(),
		req: Request{Prompt: "the king", MaxTokens: 8}, done: make(chan outcome, 1)}
	pb := &pending{ctx: context.Background(),
		req:  Request{Prompt: strings.TrimSpace(strings.Repeat("the king ", 6)), MaxTokens: 3},
		done: make(chan outcome, 1)}
	s.queue <- pa
	s.queue <- pb
	s.wg.Add(1)
	go s.loop()
	if o := <-pa.done; o.err != nil {
		t.Fatal(o.err)
	}
	if o := <-pb.done; o.err != nil {
		t.Fatal(o.err)
	}
	s.Close()

	// B's 12-token prompt is chunked and interleaved with A's decode steps.
	want := []string{"P2", "S1", "P4", "S1", "P4", "S1", "P4", "S2", "S2", "S1", "S1"}
	if got := fmt.Sprint(fake.ops); got != fmt.Sprint(want) {
		t.Fatalf("op sequence %v, want %v", fake.ops, want)
	}
	// The general bound, independent of the exact schedule: while decoding
	// is in flight, consecutive decode steps are separated by at most one
	// prefill pass, and no pass exceeds the configured chunk.
	prefills := 0
	for _, op := range fake.ops {
		if op[0] == 'P' {
			prefills++
			var n int
			fmt.Sscanf(op, "P%d", &n)
			if n > 4 {
				t.Fatalf("prefill chunk of %d tokens exceeds PrefillChunk 4", n)
			}
			if prefills > 1 {
				t.Fatalf("two prefill passes between decode steps: %v", fake.ops)
			}
			continue
		}
		prefills = 0
	}

	st := s.Stats()
	if st.PromptTokens != 14 {
		t.Errorf("PromptTokens = %d, want 14", st.PromptTokens)
	}
	// 8+3 sampled tokens, two of them from prefill logits (those two count
	// toward DecodeTokens but occupy no decode-step row).
	if st.DecodeTokens != 11 {
		t.Errorf("DecodeTokens = %d, want 11", st.DecodeTokens)
	}
	if st.StepRows != 9 {
		t.Errorf("StepRows = %d, want 9", st.StepRows)
	}
	if st.PrefillChunkHist[1] != 1 || st.PrefillChunkHist[2] != 3 {
		t.Errorf("PrefillChunkHist = %v, want one size-2 and three size-4 chunks", st.PrefillChunkHist)
	}
	// The op sequence fixes the decode batch sizes exactly: five 1-row
	// steps and two 2-row steps.
	if st.BatchHist[0] != 5 || st.BatchHist[1] != 2 {
		t.Errorf("BatchHist = %v, want five size-1 and two size-2 steps", st.BatchHist)
	}
	if st.Steps != 7 {
		t.Errorf("Steps = %d, want 7", st.Steps)
	}
}

// TestServeOverlongPromptMatchesDirect pins the keep-last window truncation
// at the serving layer: a prompt beyond the model window generates exactly
// what the direct driver produces for the same prompt.
func TestServeOverlongPromptMatchesDirect(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{PrefillChunk: 3})
	defer s.Close()
	long := strings.TrimSpace(strings.Repeat("the king sees ", 8)) // 24 tokens > window 16
	opts := []sample.Option{sample.WithMaxTokens(4), sample.WithSeed(2)}
	got, err := s.Gen(context.Background(), long, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lm.Gen(m, long, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Fatalf("served overlong prompt %q != direct %q", got.Text, want.Text)
	}
	if st := s.Stats(); st.PromptTokens == 0 {
		t.Errorf("PromptTokens = 0 after a served request")
	}
}

// TestPrefillChunkConfigured checks chunk-size selection: default 32,
// explicit values honored, negative = whole prompt in one pass.
func TestPrefillChunkConfigured(t *testing.T) {
	if got := (Config{}).withDefaults().PrefillChunk; got != 32 {
		t.Fatalf("default PrefillChunk = %d, want 32", got)
	}
	if got := (Config{PrefillChunk: 7}).withDefaults().PrefillChunk; got != 7 {
		t.Fatalf("explicit PrefillChunk = %d, want 7", got)
	}

	m := testLLM(t)
	s := newServer(m, m, Config{CoalesceWait: -1, PrefillChunk: -1})
	fake := &fakeBatch{vocab: m.Tok.VocabSize()}
	s.newBatch = func() batchPredictor { return fake }
	p := &pending{ctx: context.Background(),
		req:  Request{Prompt: strings.TrimSpace(strings.Repeat("the king ", 6)), MaxTokens: 2},
		done: make(chan outcome, 1)}
	s.queue <- p
	s.wg.Add(1)
	go s.loop()
	if o := <-p.done; o.err != nil {
		t.Fatal(o.err)
	}
	s.Close()
	if want := []string{"P12", "S1"}; fmt.Sprint(fake.ops) != fmt.Sprint(want) {
		t.Fatalf("unchunked op sequence %v, want %v", fake.ops, want)
	}
}
