package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/sample"
)

// blockingBatch pins decode in flight: every Step waits on release, so a
// test can hold a known request population inside the server while it
// samples the InFlight/Queued gauges.
type blockingBatch struct {
	fakeBatch
	release chan struct{}
}

func (b *blockingBatch) Step(ids, toks []int) [][]float64 {
	<-b.release
	return b.fakeBatch.Step(ids, toks)
}

// waitStats polls Stats until cond accepts a snapshot or the deadline
// expires, returning the last snapshot either way.
func waitStats(s *Server, cond func(Stats) bool) Stats {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) || time.Now().After(deadline) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInFlightQueuedGauges pins the live-load gauges a routing tier polls:
// with the batch full and decode blocked, InFlight counts every accepted
// request and Queued the ones still waiting for admission; both return to
// zero once the server drains.
func TestInFlightQueuedGauges(t *testing.T) {
	m := testLLM(t)
	s := newServer(m, m, Config{MaxBatch: 2, CoalesceWait: -1})
	fake := &blockingBatch{
		fakeBatch: fakeBatch{vocab: m.Tok.VocabSize()},
		release:   make(chan struct{}),
	}
	s.newBatch = func() batchPredictor { return fake }
	s.wg.Add(1)
	go s.loop()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Do(context.Background(), Request{Prompt: "the king", MaxTokens: 2}); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	// With coalescing disabled the idle loop admits exactly one request,
	// prefills it, and blocks in its first decode step; the other 3 wait in
	// the submission queue. All 4 are in flight.
	st := waitStats(s, func(st Stats) bool { return st.InFlight == n && st.Queued == n-1 })
	if st.InFlight != n {
		t.Errorf("InFlight = %d with %d requests held in the server, want %d", st.InFlight, n, n)
	}
	if st.Queued != n-1 {
		t.Errorf("Queued = %d with one request admitted and %d in flight, want %d", st.Queued, n, n-1)
	}

	close(fake.release)
	wg.Wait()
	st = waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("after drain InFlight = %d, Queued = %d, want 0, 0", st.InFlight, st.Queued)
	}
	if st.Completed != n {
		t.Errorf("Completed = %d, want %d", st.Completed, n)
	}
	s.Close()
}

// TestGaugesUnderConcurrentLoad hammers a real batched server with
// concurrent streaming requests while a sampler goroutine reads the gauges:
// every snapshot must be internally consistent (0 <= Queued <= InFlight <=
// accepted population), and both gauges must settle at zero when the load
// stops. Run under -race this also proves Stats' snapshot path is safe
// against the serving loop.
func TestGaugesUnderConcurrentLoad(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 4})
	defer s.Close()

	const n = 16
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Queued < 0 || st.InFlight < 0 || st.Queued > st.InFlight || st.InFlight > n {
				t.Errorf("inconsistent gauges: InFlight=%d Queued=%d", st.InFlight, st.Queued)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			req := Request{Prompt: "the king sees", MaxTokens: 6, Seed: seed}
			if _, err := s.Stream(context.Background(), req, func(sample.Token) error { return nil }); err != nil {
				t.Errorf("Stream: %v", err)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	st := waitStats(s, func(st Stats) bool { return st.InFlight == 0 })
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("idle gauges InFlight = %d, Queued = %d, want 0, 0", st.InFlight, st.Queued)
	}
	if st.Completed != n {
		t.Errorf("Completed = %d, want %d", st.Completed, n)
	}
}
