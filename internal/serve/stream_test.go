package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/sample"
)

// TestStreamMatchesUnbatched is the tentpole acceptance test: streamed
// output — both the per-token pieces and the final text — is bitwise
// identical to the unbatched path, for concurrent requests with mixed
// strategies flowing through the continuous-batching loop.
func TestStreamMatchesUnbatched(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 4, CoalesceWait: 30 * time.Millisecond})
	defer s.Close()

	type job struct {
		prompt string
		opts   []sample.Option
	}
	jobs := []job{
		{"the king", []sample.Option{sample.WithMaxTokens(6), sample.WithSeed(0)}},
		{"a queen", []sample.Option{sample.WithMaxTokens(5), sample.WithStrategy(sample.Temperature{T: 0.8}), sample.WithSeed(1)}},
		{"the royal crown", []sample.Option{sample.WithMaxTokens(7), sample.WithStrategy(sample.TopK{K: 5, T: 0.9}), sample.WithSeed(2)}},
		{"the king", []sample.Option{sample.WithMaxTokens(4), sample.WithStrategy(sample.TopP{P: 0.9, T: 0.7}), sample.WithSeed(3)}},
		{"a king sees", []sample.Option{sample.WithMaxTokens(6), sample.WithStrategy(sample.Temperature{T: 1.2}), sample.WithSeed(4)}},
	}
	// Reference: the direct unbatched driver.
	want := make([]lm.Result, len(jobs))
	for i, j := range jobs {
		r, err := lm.Gen(m, j.prompt, j.opts...)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			var pieces []string
			res, err := s.Stream(context.Background(), NewRequest(j.prompt, j.opts...), func(tok sample.Token) error {
				pieces = append(pieces, tok.Text)
				return nil
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if res.Text != want[i].Text {
				t.Errorf("job %d: streamed result %q != unbatched %q", i, res.Text, want[i].Text)
			}
			if got := strings.Join(pieces, ""); got != want[i].Text {
				t.Errorf("job %d: concatenated pieces %q != unbatched %q", i, got, want[i].Text)
			}
			if len(pieces) != len(want[i].Tokens) {
				t.Errorf("job %d: %d events, want %d", i, len(pieces), len(want[i].Tokens))
			}
		}(i, j)
	}
	wg.Wait()
	// The streamed requests really did share batched steps.
	if st := s.Stats(); st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d: streamed requests were never batched", st.MaxBatch)
	}
}

// TestStreamDirectPathMatchesServer cross-checks the two streaming paths
// (lm.Stream and Server.Stream) event by event.
func TestStreamDirectPathMatchesServer(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	opts := []sample.Option{
		sample.WithMaxTokens(6), sample.WithStrategy(sample.Temperature{T: 0.9}), sample.WithSeed(7),
	}
	var direct, batched []sample.Token
	if _, err := lm.Stream(context.Background(), m, "the king", func(tok sample.Token) error {
		direct = append(direct, tok)
		return nil
	}, opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stream(context.Background(), NewRequest("the king", opts...), func(tok sample.Token) error {
		batched = append(batched, tok)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(batched) {
		t.Fatalf("event counts differ: direct %d, server %d", len(direct), len(batched))
	}
	for i := range direct {
		if direct[i] != batched[i] {
			t.Errorf("event %d: direct %+v != server %+v", i, direct[i], batched[i])
		}
	}
}

func TestStreamStopAtEOS(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	var pieces []string
	res, err := s.Stream(context.Background(),
		NewRequest("the king", sample.WithMaxTokens(8), sample.WithStop()),
		func(tok sample.Token) error {
			pieces = append(pieces, tok.Text)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Complete("the king", 8); res.Text != want {
		t.Fatalf("streamed StopAtEOS %q != Complete %q", res.Text, want)
	}
	if got := strings.Join(pieces, ""); got != res.Text {
		t.Fatalf("pieces %q != final %q", got, res.Text)
	}
}

// TestStreamCallbackErrorCancels: an erroring consumer drops the request
// from the batch and surfaces the callback error.
func TestStreamCallbackErrorCancels(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{})
	defer s.Close()
	boom := errors.New("consumer failed")
	events := 0
	_, err := s.Stream(context.Background(),
		NewRequest("the king", sample.WithMaxTokens(10), sample.WithSeed(1)),
		func(sample.Token) error {
			events++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
	if events != 1 {
		t.Fatalf("callback ran %d times, want 1", events)
	}
	// The server keeps serving afterwards.
	if _, err := s.Gen(context.Background(), "the king", sample.WithMaxTokens(3)); err != nil {
		t.Fatal(err)
	}
}

// TestCancellationDuringPrefill cancels a request after admission but
// before its first decode step (the long coalesce window guarantees no
// step has run), exercising the prefill-phase cancellation path.
func TestCancellationDuringPrefill(t *testing.T) {
	m := testLLM(t)
	s := New(m, Config{MaxBatch: 4, CoalesceWait: 400 * time.Millisecond})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	done := make(chan error, 1)
	go func() {
		_, err := s.Stream(ctx,
			NewRequest("the king sees the royal crown", sample.WithMaxTokens(10), sample.WithSeed(1)),
			func(sample.Token) error {
				events++
				return nil
			})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // admitted, still coalescing: prefill not started
	if st := s.Stats(); st.Steps != 0 {
		t.Fatalf("decode already started (Steps=%d); coalesce window too short", st.Steps)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled prefill request did not return")
	}
	if events != 0 {
		t.Fatalf("cancelled-before-decode request delivered %d token events", events)
	}
	// The caller returns on ctx.Done; the loop's cancellation sweep counts
	// the drop when the coalesce window ends. Wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Cancelled != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Cancelled = %d, want 1", s.Stats().Cancelled)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The loop recovered and the next request decodes normally.
	out, err := s.Gen(context.Background(), "the king", sample.WithMaxTokens(3))
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := m.Generate("the king", 3, sample.Greedy{}, 0); out.Text != want {
		t.Fatalf("post-cancel result %q != %q", out.Text, want)
	}
}

// TestStatsUnderConcurrentLoad checks the counter invariants with plain,
// streamed, and cancelled requests in flight at once.
func TestStatsUnderConcurrentLoad(t *testing.T) {
	m := testLLM(t)
	cfg := Config{MaxBatch: 3, CoalesceWait: 5 * time.Millisecond, QueueDepth: 4}
	s := New(m, cfg)
	defer s.Close()
	const n = 18
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := []sample.Option{
				sample.WithMaxTokens(2 + i%5),
				sample.WithStrategy(sample.Temperature{T: 0.9}),
				sample.WithSeed(uint64(i)),
			}
			switch i % 3 {
			case 0: // plain
				if _, err := s.Gen(context.Background(), "the king", opts...); err != nil {
					t.Error(err)
				}
			case 1: // streamed
				if _, err := s.Stream(context.Background(), NewRequest("a queen", opts...),
					func(sample.Token) error { return nil }); err != nil {
					t.Error(err)
				}
			case 2: // cancelled almost immediately
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(time.Millisecond)
					cancel()
				}()
				_, err := s.Gen(ctx, "the royal king", opts...)
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	// Let the loop finish its final accounting sweep.
	deadline := time.Now().Add(2 * time.Second)
	st := s.Stats()
	for st.Completed+st.Cancelled+st.Failed != st.Requests && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		st = s.Stats()
	}
	if st.Requests != n {
		t.Errorf("Requests = %d, want %d", st.Requests, n)
	}
	if got := st.Completed + st.Cancelled + st.Failed; got != st.Requests {
		t.Errorf("Completed+Cancelled+Failed = %d, want Requests = %d (%+v)", got, st.Requests, st)
	}
	if st.Failed != 0 {
		t.Errorf("Failed = %d, want 0 (%+v)", st.Failed, st)
	}
	if st.Steps == 0 || st.StepRows < st.Steps {
		t.Errorf("Steps=%d StepRows=%d: inconsistent", st.Steps, st.StepRows)
	}
	if st.MaxBatch < 2 || st.MaxBatch > cfg.MaxBatch {
		t.Errorf("MaxBatch = %d, want in [2, %d]", st.MaxBatch, cfg.MaxBatch)
	}
	// The prompt/decode split: every decode row samples one token, every
	// completed request additionally sampled its first token from prefill
	// logits (cancelled requests may or may not have reached that point),
	// and the completed requests' prompts all went through prefill.
	if st.DecodeTokens < st.StepRows+st.Completed || st.DecodeTokens > st.StepRows+st.Requests {
		t.Errorf("DecodeTokens = %d, want in [StepRows+Completed, StepRows+Requests] = [%d, %d]",
			st.DecodeTokens, st.StepRows+st.Completed, st.StepRows+st.Requests)
	}
	if st.PromptTokens < st.Completed {
		t.Errorf("PromptTokens = %d < Completed = %d: prompts unaccounted", st.PromptTokens, st.Completed)
	}
	chunks := uint64(0)
	for _, c := range st.PrefillChunkHist {
		chunks += c
	}
	if chunks == 0 {
		t.Errorf("PrefillChunkHist empty with %d prompt tokens ingested", st.PromptTokens)
	}
	// Every decode step lands in exactly one batch-size bucket, and the
	// rows those buckets imply must bracket the exact StepRows total.
	var steps, rowsLo, rowsHi uint64
	for i, c := range st.BatchHist {
		steps += c
		lo, hi := uint64(1), uint64(1)<<i
		if i > 0 {
			lo = 1<<(i-1) + 1
		}
		rowsLo += c * lo
		rowsHi += c * hi
	}
	if steps != st.Steps {
		t.Errorf("BatchHist sums to %d steps, want %d", steps, st.Steps)
	}
	if st.StepRows < rowsLo || st.StepRows > rowsHi {
		t.Errorf("StepRows = %d outside BatchHist bounds [%d, %d]", st.StepRows, rowsLo, rowsHi)
	}
}

// ---- single-sequence backend mode ----

var (
	backendOnce sync.Once
	backend     lm.LanguageModel
)

// testBackend trains one small non-transformer backend per test binary.
func testBackend(t *testing.T) lm.LanguageModel {
	t.Helper()
	backendOnce.Do(func() {
		lines := corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
		b, err := lm.TrainBackend("rnn", lines, 5)
		if err != nil {
			panic(err)
		}
		backend = b
	})
	return backend
}

// TestBackendServerMatchesDirect: a non-transformer backend served in
// single-sequence mode returns exactly the direct lm.Gen output, for both
// Do and Stream.
func TestBackendServerMatchesDirect(t *testing.T) {
	b := testBackend(t)
	s := NewBackend(b, Config{})
	defer s.Close()
	opts := []sample.Option{
		sample.WithMaxTokens(6), sample.WithStrategy(sample.Temperature{T: 0.9}), sample.WithSeed(3),
	}
	want, err := lm.Gen(b, "the king", opts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Gen(context.Background(), "the king", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Fatalf("served %q != direct %q", got.Text, want.Text)
	}
	var pieces []string
	streamed, err := s.Stream(context.Background(), NewRequest("the king", opts...),
		func(tok sample.Token) error {
			pieces = append(pieces, tok.Text)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Text != want.Text {
		t.Fatalf("streamed %q != direct %q", streamed.Text, want.Text)
	}
	if joined := strings.Join(pieces, ""); joined != want.Text {
		t.Fatalf("pieces %q != direct %q", joined, want.Text)
	}
	st := s.Stats()
	if st.Completed != 2 || st.MaxBatch != 1 || st.Steps != st.StepRows {
		t.Errorf("single-sequence stats inconsistent: %+v", st)
	}
}

// TestBackendServerConcurrent: concurrent requests against the single-
// sequence loop all complete with deterministic results.
func TestBackendServerConcurrent(t *testing.T) {
	b := testBackend(t)
	s := NewBackend(b, Config{QueueDepth: 4})
	defer s.Close()
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := []sample.Option{sample.WithMaxTokens(3 + i%3), sample.WithSeed(uint64(i))}
			want, err := lm.Gen(b, "the king", opts...)
			if err != nil {
				t.Error(err)
				return
			}
			got, err := s.Gen(context.Background(), "the king", opts...)
			if err != nil {
				t.Error(err)
				return
			}
			if got.Text != want.Text {
				t.Errorf("req %d: %q != %q", i, got.Text, want.Text)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Completed != n {
		t.Errorf("Completed = %d, want %d", st.Completed, n)
	}
}

// TestBackendServerCancellation: a queued request cancelled before the
// loop reaches it reports context.Canceled, and the loop keeps serving.
func TestBackendServerCancellation(t *testing.T) {
	b := testBackend(t)
	s := NewBackend(b, Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Gen(ctx, "the king", sample.WithMaxTokens(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := s.Gen(context.Background(), "the king", sample.WithMaxTokens(3)); err != nil {
		t.Fatal(err)
	}
}

// TestNewBackendPrefersBatchedLoop: handing the transformer pipeline to
// NewBackend selects the continuous-batching loop.
func TestNewBackendPrefersBatchedLoop(t *testing.T) {
	m := testLLM(t)
	s := NewBackend(m, Config{MaxBatch: 4, CoalesceWait: 50 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Gen(context.Background(), "the king",
				sample.WithMaxTokens(5), sample.WithSeed(uint64(i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d: transformer backend was not batched", st.MaxBatch)
	}
}
