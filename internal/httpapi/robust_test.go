package httpapi

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/serve"
)

// TestValidationRejectsMalformedBodies: out-of-range knobs get a 400 at the
// door instead of reaching the sampling panic guards from inside the loop.
func TestValidationRejectsMalformedBodies(t *testing.T) {
	ts, _ := newTestServer(t, testModel(t))
	bad := []GenRequest{
		{Prompt: "the king", Tokens: -1},
		{Prompt: "the king", Strategy: "temp", Temperature: -0.5},
		{Prompt: "the king", Strategy: "topk", TopK: -3},
		{Prompt: "the king", Strategy: "topp", TopP: 1.5},
		{Prompt: "the king", Strategy: "topp", TopP: -0.2},
		{Prompt: "the king", TimeoutMS: -10},
	}
	for _, path := range []string{"/v1/generate", "/v1/stream"} {
		for i, req := range bad {
			resp := postJSON(t, ts.URL+path, req)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s bad request %d: status %d, want 400", path, i, resp.StatusCode)
			}
		}
	}
}

// TestTimeoutHeaderValidation: a malformed budget header is a 400, not a
// silently ignored deadline.
func TestTimeoutHeaderValidation(t *testing.T) {
	ts, _ := newTestServer(t, testModel(t))
	body, _ := json.Marshal(GenRequest{Prompt: "the king", Tokens: 4})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/generate", strings.NewReader(string(body)))
	req.Header.Set(TimeoutHeader, "soon")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad header: status %d, want 400", resp.StatusCode)
	}
}

// TestDeadlineMapsTo504: a request that exhausts its timeout budget fails
// with 504 Gateway Timeout (not 400 or 499), whether the budget came from
// the body's timeout_ms or from the router's header — and the header wins
// over a generous body value.
func TestDeadlineMapsTo504(t *testing.T) {
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.ServeSample, Kind: failpoint.KindLatency, Sleep: 20 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ts, _ := newTestServer(t, testModel(t))

	resp := postJSON(t, ts.URL+"/v1/generate", GenRequest{
		Prompt: "the king", Tokens: 30, TimeoutMS: 40,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("body timeout: status %d, want 504", resp.StatusCode)
	}

	// Header wins: the body grants ten minutes, the header 40ms.
	body, _ := json.Marshal(GenRequest{Prompt: "the king", Tokens: 30, TimeoutMS: 600_000})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/generate", strings.NewReader(string(body)))
	req.Header.Set(TimeoutHeader, "40")
	start := time.Now()
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("header timeout: status %d, want 504", hresp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("header budget ignored: request ran %v", d)
	}
}

// TestHandlerPanicBecomes500: a panic before the response is committed is
// answered with a 500 — the worker process does not die, and the next
// request succeeds.
func TestHandlerPanicBecomes500(t *testing.T) {
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.HTTPGenerate, Kind: failpoint.KindPanic, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ts, _ := newTestServer(t, testModel(t))

	resp := postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: "the king", Tokens: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: "the king", Tokens: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker did not survive the panic: status %d", resp.StatusCode)
	}
}

// TestMidStreamErrorFrame: a fault injected after the SSE headers are out
// surfaces as an in-band error frame terminating the stream, with the
// request cleanly charged server-side.
func TestMidStreamErrorFrame(t *testing.T) {
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.HTTPStreamMid, Kind: failpoint.KindError, After: 2, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ts, h := newTestServer(t, testModel(t))

	resp := postJSON(t, ts.URL+"/v1/stream", GenRequest{Prompt: "the king", Tokens: 8})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (fault fires mid-stream)", resp.StatusCode)
	}
	r := bufio.NewReader(resp.Body)
	sawError := false
	for i := 0; i < 16; i++ {
		payload := readEvent(t, r)
		var probe map[string]any
		if err := json.Unmarshal([]byte(payload), &probe); err != nil {
			t.Fatalf("bad frame %q: %v", payload, err)
		}
		if _, ok := probe["error"]; ok {
			sawError = true
			break
		}
		if _, ok := probe["done"]; ok {
			t.Fatal("stream completed; injected fault never surfaced")
		}
	}
	if !sawError {
		t.Fatal("no in-band error frame observed")
	}
	// The failed stream reached a terminal outcome server-side.
	waitIdle(t, h)
}

// TestMidStreamDropSeversConnection: a drop fault mid-stream kills the
// connection the way a crashing worker would — the client sees a transport
// error, not a clean done frame — and the worker keeps serving.
func TestMidStreamDropSeversConnection(t *testing.T) {
	if err := failpoint.Arm(failpoint.Plan{Seed: 1, Rules: []failpoint.Rule{
		{Site: failpoint.HTTPStreamMid, Kind: failpoint.KindDrop, After: 1, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	ts, h := newTestServer(t, testModel(t))

	resp := postJSON(t, ts.URL+"/v1/stream", GenRequest{Prompt: "the king", Tokens: 8})
	defer resp.Body.Close()
	_, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("stream body read completed; want a severed connection")
	}
	failpoint.Disarm()
	resp = postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: "the king", Tokens: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker did not survive the drop: status %d", resp.StatusCode)
	}
	waitIdle(t, h)
}

// waitIdle polls the server stats until every accepted request has reached
// a terminal outcome.
func waitIdle(t *testing.T, h *Handler) serve.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := h.srv.Stats()
		if st.InFlight == 0 && st.Requests == st.Completed+st.Cancelled+st.Failed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never idled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
