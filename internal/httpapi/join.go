// Dynamic-membership client side: the wire types for the router's
// /v1/register and /v1/deregister endpoints, and the Joiner — the worker's
// self-registration loop. A worker started with -join announces itself to
// the router, heartbeats to keep its lease alive (register and heartbeat
// are the same call), and deregisters explicitly when it drains, so the
// fleet can grow, shrink, and replace crashed workers without restarting
// the router.

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// RegisterRequest is the POST /v1/register body: the worker's advertised
// base URL and the lease TTL it wants. A zero LeaseMS asks for the
// router's default; the router clamps either way and echoes the grant.
type RegisterRequest struct {
	URL     string `json:"url"`
	LeaseMS int64  `json:"lease_ms,omitempty"`
}

// RegisterResponse acknowledges a register/heartbeat: the membership epoch
// after the call, the granted lease, and whether the call created a new
// member (false on renewals).
type RegisterResponse struct {
	Epoch   uint64 `json:"epoch"`
	LeaseMS int64  `json:"lease_ms"`
	Created bool   `json:"created"`
}

// DeregisterRequest is the POST /v1/deregister body: the base URL of the
// member leaving the fleet.
type DeregisterRequest struct {
	URL string `json:"url"`
}

// DeregisterResponse acknowledges a deregistration; Removed is false when
// the member was already gone (the call is idempotent).
type DeregisterResponse struct {
	Epoch   uint64 `json:"epoch"`
	Removed bool   `json:"removed"`
}

// JoinConfig configures a worker's self-registration loop.
type JoinConfig struct {
	// Router is the router's base URL (e.g. http://127.0.0.1:8370).
	Router string
	// Self is the base URL this worker advertises as reachable.
	Self string
	// Lease is the TTL requested per register call (default 15s).
	Lease time.Duration
	// Interval is the heartbeat period (default Lease/3, so a renewal can
	// miss twice before the lease lapses).
	Interval time.Duration
	// Client issues the registration calls (default: 5s total timeout —
	// control-plane calls are tiny; one must never hang a heartbeat slot).
	Client *http.Client
	// Logf, when non-nil, receives state-transition logs (joined, lost
	// contact, re-joined) — not one line per heartbeat.
	Logf func(format string, args ...any)
}

// Joiner keeps one worker registered with one router until stopped.
type Joiner struct {
	cfg  JoinConfig
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// StartJoiner registers the worker and keeps its lease renewed from a
// background goroutine. The first register is attempted inline with the
// same retry policy as later ones, but errors do not fail the start: a
// worker that boots before its router retries until the router appears,
// with jittered exponential backoff.
func StartJoiner(cfg JoinConfig) (*Joiner, error) {
	if cfg.Router == "" || cfg.Self == "" {
		return nil, errors.New("httpapi: join needs both router and self URLs")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Lease / 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	j := &Joiner{cfg: cfg, quit: make(chan struct{}), done: make(chan struct{})}
	go j.loop()
	return j, nil
}

func (j *Joiner) logf(format string, args ...any) {
	if j.cfg.Logf != nil {
		j.cfg.Logf(format, args...)
	}
}

// loop heartbeats until Stop. Success sleeps one Interval; failure retries
// on a jittered exponential backoff starting well under the interval (a
// worker racing its router's startup should not idle a whole heartbeat
// period) and capped at it (a dead router must not push the retry period
// past the lease).
func (j *Joiner) loop() {
	defer close(j.done)
	const minBackoff = 5 * time.Millisecond
	backoff := j.cfg.Interval / 4
	if backoff < minBackoff {
		backoff = minBackoff
	}
	base := backoff
	joined := false
	for {
		err := j.registerOnce()
		var sleep time.Duration
		if err == nil {
			if !joined {
				j.logf("joined router %s (lease %v, heartbeat %v)", j.cfg.Router, j.cfg.Lease, j.cfg.Interval)
			}
			joined = true
			backoff = base
			sleep = j.cfg.Interval
		} else {
			if joined {
				j.logf("lost router %s: %v (retrying)", j.cfg.Router, err)
			}
			joined = false
			half := backoff / 2
			sleep = half + rand.N(backoff-half+1)
			backoff *= 2
			if backoff > j.cfg.Interval {
				backoff = j.cfg.Interval
			}
		}
		select {
		case <-j.quit:
			return
		case <-time.After(sleep):
		}
	}
}

// registerOnce issues one register/heartbeat call.
func (j *Joiner) registerOnce() error {
	if err := failpoint.Inject(failpoint.JoinHeartbeat); err != nil {
		return err
	}
	body, _ := json.Marshal(RegisterRequest{URL: j.cfg.Self, LeaseMS: j.cfg.Lease.Milliseconds()})
	resp, err := j.cfg.Client.Post(j.cfg.Router+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("httpapi: register: router answered %d", resp.StatusCode)
	}
	return nil
}

// Stop halts the heartbeat loop without deregistering — the lease is left
// to expire, which is what an ungraceful death looks like. Idempotent.
func (j *Joiner) Stop() {
	j.once.Do(func() { close(j.quit) })
	<-j.done
}

// Leave is the graceful exit: stop heartbeating (waiting out any in-flight
// register so a stale heartbeat cannot resurrect the membership after the
// deregister lands), then tell the router to drop this worker now instead
// of waiting out the lease.
func (j *Joiner) Leave(ctx context.Context) error {
	j.Stop()
	body, _ := json.Marshal(DeregisterRequest{URL: j.cfg.Self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, j.cfg.Router+"/v1/deregister", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("httpapi: deregister: router answered %d", resp.StatusCode)
	}
	return nil
}
