// Dynamic-membership client side: the wire types for the router's
// /v1/register and /v1/deregister endpoints, and the Joiner — the worker's
// self-registration loop. A worker started with -join announces itself to
// the router, heartbeats to keep its lease alive (register and heartbeat
// are the same call), and deregisters explicitly when it drains, so the
// fleet can grow, shrink, and replace crashed workers without restarting
// the router.
//
// With replicated routers (-join takes a comma-separated list) the Joiner
// runs one independent heartbeat loop per router: each router's view of
// this worker is first-hand, any subset of routers being down degrades
// nothing as long as one is reachable, and a router that restarts from
// empty relearns the worker within one heartbeat interval without help
// from its peers. Leave fans the deregister out to every router, each with
// its own bounded retry, so a single unreachable router cannot stall a
// drain — its peers tombstone the worker and gossip the leave to it when
// it returns.

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// RegisterRequest is the POST /v1/register body: the worker's advertised
// base URL and the lease TTL it wants. A zero LeaseMS asks for the
// router's default; the router clamps either way and echoes the grant.
type RegisterRequest struct {
	URL     string `json:"url"`
	LeaseMS int64  `json:"lease_ms,omitempty"`
}

// RegisterResponse acknowledges a register/heartbeat: the membership epoch
// after the call, the granted lease, and whether the call created a new
// member (false on renewals).
type RegisterResponse struct {
	Epoch   uint64 `json:"epoch"`
	LeaseMS int64  `json:"lease_ms"`
	Created bool   `json:"created"`
}

// DeregisterRequest is the POST /v1/deregister body: the base URL of the
// member leaving the fleet.
type DeregisterRequest struct {
	URL string `json:"url"`
}

// DeregisterResponse acknowledges a deregistration; Removed is false when
// the member was already gone (the call is idempotent).
type DeregisterResponse struct {
	Epoch   uint64 `json:"epoch"`
	Removed bool   `json:"removed"`
}

// JoinConfig configures a worker's self-registration loop.
type JoinConfig struct {
	// Router is a single router's base URL (e.g. http://127.0.0.1:8370).
	// Kept for single-router callers; merged into Routers.
	Router string
	// Routers lists every router base URL the worker registers with and
	// heartbeats. Duplicates (including of Router) are dropped.
	Routers []string
	// Self is the base URL this worker advertises as reachable.
	Self string
	// Lease is the TTL requested per register call (default 15s).
	Lease time.Duration
	// Interval is the heartbeat period (default Lease/3, so a renewal can
	// miss twice before the lease lapses).
	Interval time.Duration
	// Client issues the registration calls (default: 5s total timeout —
	// control-plane calls are tiny; one must never hang a heartbeat slot).
	Client *http.Client
	// Logf, when non-nil, receives state-transition logs (joined, lost
	// contact, re-joined) — not one line per heartbeat.
	Logf func(format string, args ...any)
}

// Joiner keeps one worker registered with a set of routers until stopped.
type Joiner struct {
	cfg     JoinConfig
	routers []string
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// joinRouters normalizes the configured router list: Router plus Routers,
// trimmed, with empties and duplicates dropped, order preserved.
func joinRouters(cfg JoinConfig) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range append([]string{cfg.Router}, cfg.Routers...) {
		r = strings.TrimSuffix(strings.TrimSpace(r), "/")
		if r == "" || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// StartJoiner registers the worker and keeps its leases renewed, one
// background heartbeat loop per router so a slow or dead router cannot
// delay renewals at the others. The first register per router is attempted
// inline with the same retry policy as later ones, but errors do not fail
// the start: a worker that boots before its routers retries until they
// appear, with jittered exponential backoff.
func StartJoiner(cfg JoinConfig) (*Joiner, error) {
	routers := joinRouters(cfg)
	if len(routers) == 0 || cfg.Self == "" {
		return nil, errors.New("httpapi: join needs router and self URLs")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Lease / 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	j := &Joiner{cfg: cfg, routers: routers, quit: make(chan struct{})}
	for _, r := range routers {
		j.wg.Add(1)
		go j.loop(r)
	}
	return j, nil
}

func (j *Joiner) logf(format string, args ...any) {
	if j.cfg.Logf != nil {
		j.cfg.Logf(format, args...)
	}
}

// loop heartbeats one router until Stop. Success sleeps one Interval;
// failure retries on a jittered exponential backoff starting well under
// the interval (a worker racing its router's startup should not idle a
// whole heartbeat period) and capped at it (a dead router must not push
// the retry period past the lease). Each router gets its own loop and its
// own backoff state, so losing one router leaves the heartbeat cadence at
// the others untouched.
func (j *Joiner) loop(router string) {
	defer j.wg.Done()
	const minBackoff = 5 * time.Millisecond
	backoff := j.cfg.Interval / 4
	if backoff < minBackoff {
		backoff = minBackoff
	}
	base := backoff
	joined := false
	for {
		err := j.registerOnce(router)
		var sleep time.Duration
		if err == nil {
			if !joined {
				j.logf("joined router %s (lease %v, heartbeat %v)", router, j.cfg.Lease, j.cfg.Interval)
			}
			joined = true
			backoff = base
			sleep = j.cfg.Interval
		} else {
			if joined {
				j.logf("lost router %s: %v (retrying)", router, err)
			}
			joined = false
			half := backoff / 2
			sleep = half + rand.N(backoff-half+1)
			backoff *= 2
			if backoff > j.cfg.Interval {
				backoff = j.cfg.Interval
			}
		}
		select {
		case <-j.quit:
			return
		case <-time.After(sleep):
		}
	}
}

// registerOnce issues one register/heartbeat call to one router.
func (j *Joiner) registerOnce(router string) error {
	if err := failpoint.Inject(failpoint.JoinHeartbeat); err != nil {
		return err
	}
	body, _ := json.Marshal(RegisterRequest{URL: j.cfg.Self, LeaseMS: j.cfg.Lease.Milliseconds()})
	resp, err := j.cfg.Client.Post(router+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("httpapi: register: router answered %d", resp.StatusCode)
	}
	return nil
}

// Stop halts the heartbeat loops without deregistering — the leases are
// left to expire, which is what an ungraceful death looks like. Idempotent.
func (j *Joiner) Stop() {
	j.once.Do(func() { close(j.quit) })
	j.wg.Wait()
}

// leaveAttempts bounds the per-router deregister retry in Leave. The
// deregister is a courtesy — an unreachable router tombstones the worker
// via lease lapse or a peer's gossip anyway — so the retry is short: it
// papers over a transient blip without letting one dead router stall a
// drain for long.
const leaveAttempts = 3

// Leave is the graceful exit: stop heartbeating (waiting out any in-flight
// register so a stale heartbeat cannot resurrect the membership after the
// deregister lands), then tell every router to drop this worker now
// instead of waiting out the lease. Routers are notified concurrently,
// each with its own bounded retry; the joined error reports every router
// that could not be reached within the budget.
func (j *Joiner) Leave(ctx context.Context) error {
	j.Stop()
	errs := make([]error, len(j.routers))
	var wg sync.WaitGroup
	for i, r := range j.routers {
		wg.Add(1)
		go func(i int, router string) {
			defer wg.Done()
			errs[i] = j.leaveOne(ctx, router)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// leaveOne deregisters from one router, retrying up to leaveAttempts with
// a short doubling backoff (ctx cancellation cuts it short).
func (j *Joiner) leaveOne(ctx context.Context, router string) error {
	var err error
	backoff := 25 * time.Millisecond
	for attempt := 0; attempt < leaveAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("httpapi: deregister %s: %w (last error: %w)", router, ctx.Err(), err)
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err = j.deregisterOnce(ctx, router); err == nil {
			return nil
		}
	}
	return fmt.Errorf("httpapi: deregister %s: %w", router, err)
}

// deregisterOnce issues one deregister call to one router.
func (j *Joiner) deregisterOnce(ctx context.Context, router string) error {
	body, _ := json.Marshal(DeregisterRequest{URL: j.cfg.Self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, router+"/v1/deregister", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered %d", resp.StatusCode)
	}
	return nil
}
