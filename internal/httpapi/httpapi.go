// Package httpapi is the worker-side HTTP surface of the serving stack: the
// JSON/SSE front end one llm-serve process exposes over a serve.Server. It
// exists as a package (rather than code private to cmd/llm-serve) because
// three parties must agree on the wire contract: the worker binary, the
// llm-router tier that proxies and health-checks workers, and the
// llm-bench -load generator that self-hosts worker fleets in-process.
//
// Endpoints:
//
//	POST /v1/generate  one-shot generation, JSON in/out
//	POST /v1/stream    same body; SSE, one data frame per sampled token
//	GET  /v1/stats     serve.Stats counters + live in_flight/queued gauges
//	GET  /healthz      readiness: 200 while serving, 503 once draining
//	POST /v1/drain     enter drain mode (also wired to SIGTERM by the binary)
//
// Drain mode is the rolling-restart/scale-down story: Drain flips the
// handler to reject new generation work with 503 + Retry-After and turns
// /healthz not-ready — so a router stops picking this worker — while
// requests already in flight (including SSE streams) run to completion.
// The binary then uses http.Server.Shutdown, which waits for exactly those
// in-flight handlers, to exit cleanly.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/sample"
	"repro/internal/serve"
)

// TimeoutHeader carries a request's remaining deadline budget in milliseconds
// across the routing tier: the router reads the client's budget, decrements
// it per relay attempt, and forwards the remainder here, where it wins over
// the body's timeout_ms field.
const TimeoutHeader = "X-Request-Timeout-Ms"

// Handler is the HTTP front end over one serve.Server.
type Handler struct {
	srv      *serve.Server
	mux      *http.ServeMux
	draining atomic.Bool
	once     sync.Once
	onDrain  func()
}

// New builds the worker handler. onDrain, if non-nil, runs once (on its own
// goroutine) when drain mode is entered — the binary hooks graceful
// http.Server shutdown there; tests and in-process fleets pass nil.
func New(srv *serve.Server, onDrain func()) *Handler {
	h := &Handler{srv: srv, onDrain: onDrain}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", h.handleGenerate)
	mux.HandleFunc("POST /v1/stream", h.handleStream)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, h.srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if h.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		h.Drain()
		WriteJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
	})
	h.mux = mux
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gw := &guardWriter{ResponseWriter: w}
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			// The deliberate sever-the-connection panic (also how the drop
			// fault kind manifests): let net/http abort the response.
			panic(v)
		}
		// Anything else is a handler bug (or an injected panic): the worker
		// answers it instead of dying. Before the response is committed a
		// proper 500 goes out; mid-SSE the best remaining option is an
		// in-band error frame so the client sees a terminal event rather
		// than a silently truncated stream.
		msg := map[string]string{"error": fmt.Sprintf("internal error: %v", v)}
		if !gw.wrote {
			WriteJSON(gw, http.StatusInternalServerError, msg)
			return
		}
		WriteEvent(gw, msg)
		gw.Flush()
	}()
	h.mux.ServeHTTP(gw, r)
}

// guardWriter tracks whether the response has been committed, so the panic
// recovery layer knows whether a real 500 status is still possible. It
// always implements http.Flusher (flushing is a no-op when the underlying
// writer cannot), keeping the SSE handler's capability check working.
type guardWriter struct {
	http.ResponseWriter
	wrote bool
}

func (g *guardWriter) WriteHeader(code int) {
	g.wrote = true
	g.ResponseWriter.WriteHeader(code)
}

func (g *guardWriter) Write(b []byte) (int, error) {
	g.wrote = true
	return g.ResponseWriter.Write(b)
}

func (g *guardWriter) Flush() {
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Drain flips the worker to not-ready: new generation requests get 503 with
// Retry-After, /healthz reports 503, and in-flight work keeps running. The
// onDrain hook fires once, asynchronously — synchronously it would deadlock
// with an http.Server.Shutdown that waits for the very /v1/drain request
// that triggered it.
func (h *Handler) Drain() {
	h.draining.Store(true)
	h.once.Do(func() {
		if h.onDrain != nil {
			go h.onDrain()
		}
	})
}

// Draining reports whether drain mode has been entered.
func (h *Handler) Draining() bool { return h.draining.Load() }

// rejectDraining answers a generation request arriving after Drain.
func (h *Handler) rejectDraining(w http.ResponseWriter) bool {
	if !h.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
	return true
}

// GenRequest is the POST /v1/generate and /v1/stream body. Session is not
// interpreted by the worker: it is the routing tier's affinity key, carried
// in the body so keyed requests need no custom headers (the router also
// accepts an X-Session-Key header, which wins over the body field).
type GenRequest struct {
	Prompt      string  `json:"prompt"`
	Tokens      int     `json:"tokens"`
	Strategy    string  `json:"strategy"` // greedy (default), temp, topk, topp
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k"`
	TopP        float64 `json:"top_p"`
	Seed        uint64  `json:"seed"`
	StopAtEOS   bool    `json:"stop_at_eos"`
	Session     string  `json:"session,omitempty"`
	// TimeoutMS is the request's end-to-end deadline budget in milliseconds
	// (0 = the worker's default). The TimeoutHeader, when present, wins —
	// that is how the router forwards a decremented budget per attempt.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// GenResponse is the POST /v1/generate reply.
type GenResponse struct {
	Completion string  `json:"completion"`
	Tokens     []int   `json:"tokens"`
	DurationMS float64 `json:"duration_ms"`
}

// StreamDone is the terminal SSE event of a /v1/stream response.
type StreamDone struct {
	Done       bool    `json:"done"`
	Completion string  `json:"completion"`
	DurationMS float64 `json:"duration_ms"`
}

// parseRequest decodes and validates a request body into a serve.Request.
// Out-of-range knobs are rejected here with an error (a 400 at the call
// sites) — before this check a negative temperature rode through
// ParseStrategy's unset-value defaulting or reached the panic guards in
// internal/sample from the middle of the batch loop.
func parseRequest(r *http.Request) (serve.Request, error) {
	var req GenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return serve.Request{}, fmt.Errorf("bad json: %w", err)
	}
	switch {
	case req.Tokens < 0:
		return serve.Request{}, fmt.Errorf("tokens %d must not be negative", req.Tokens)
	case req.Temperature < 0:
		return serve.Request{}, fmt.Errorf("temperature %v must not be negative", req.Temperature)
	case req.TopK < 0:
		return serve.Request{}, fmt.Errorf("top_k %d must not be negative", req.TopK)
	case req.TopP < 0 || req.TopP > 1:
		return serve.Request{}, fmt.Errorf("top_p %v outside [0,1]", req.TopP)
	case req.TimeoutMS < 0:
		return serve.Request{}, fmt.Errorf("timeout_ms %d must not be negative", req.TimeoutMS)
	}
	if req.Tokens == 0 {
		req.Tokens = 12
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if hd := r.Header.Get(TimeoutHeader); hd != "" {
		ms, err := strconv.ParseInt(hd, 10, 64)
		if err != nil || ms < 0 {
			return serve.Request{}, fmt.Errorf("bad %s %q", TimeoutHeader, hd)
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	strat, err := sample.ParseStrategy(req.Strategy, req.Temperature, req.TopP, req.TopK)
	if err != nil {
		return serve.Request{}, err
	}
	if err := sample.ValidateStrategy(strat); err != nil {
		return serve.Request{}, err
	}
	return serve.Request{
		Prompt: req.Prompt, MaxTokens: req.Tokens, Strategy: strat,
		Seed: req.Seed, StopAtEOS: req.StopAtEOS, Timeout: timeout,
	}, nil
}

// injectHTTP evaluates an HTTP-layer failpoint site: a drop fault becomes
// the sever-the-connection panic (caught and re-raised by ServeHTTP), any
// other fault is answered with a 500. Reports whether the handler should
// stop.
func injectHTTP(w http.ResponseWriter, site string) bool {
	err := failpoint.Inject(site)
	if err == nil {
		return false
	}
	if errors.Is(err, failpoint.ErrDrop) {
		panic(http.ErrAbortHandler)
	}
	WriteJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	return true
}

func (h *Handler) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if h.rejectDraining(w) {
		return
	}
	if injectHTTP(w, failpoint.HTTPGenerate) {
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	start := time.Now()
	res, err := h.srv.Do(r.Context(), req)
	if err != nil {
		WriteJSON(w, errStatus(err), map[string]string{"error": err.Error()})
		return
	}
	WriteJSON(w, http.StatusOK, GenResponse{
		Completion: res.Text,
		Tokens:     res.Tokens,
		DurationMS: sinceMS(start),
	})
}

// handleStream serves one generation as server-sent events, flushing each
// token the moment its batched decoding step completes.
func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	if h.rejectDraining(w) {
		return
	}
	if injectHTTP(w, failpoint.HTTPStreamPreSSE) {
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Reject invalid requests with a proper status before committing to
	// streaming headers, matching /v1/generate's error contract.
	if err := h.srv.Validate(req); err != nil {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	start := time.Now()
	res, err := h.srv.Stream(r.Context(), req, func(t sample.Token) error {
		if err := failpoint.Inject(failpoint.HTTPStreamMid); err != nil {
			return err
		}
		if err := WriteEvent(w, t); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
	if err != nil {
		if errors.Is(err, failpoint.ErrDrop) {
			// A mid-stream drop fault: sever the connection the way a
			// crashing worker would, after the stream request has been
			// cleanly cancelled out of the batch.
			panic(http.ErrAbortHandler)
		}
		// Headers are sent; report the failure in-band and end the stream.
		WriteEvent(w, map[string]string{"error": err.Error()})
		flusher.Flush()
		return
	}
	WriteEvent(w, StreamDone{Done: true, Completion: res.Text, DurationMS: sinceMS(start)})
	flusher.Flush()
}

// WriteEvent emits one SSE data frame.
func WriteEvent(w http.ResponseWriter, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// errStatus maps engine errors to HTTP statuses.
func errStatus(err error) int {
	var pe *serve.PanicError
	switch {
	case errors.Is(err, serve.ErrDeadline), errors.Is(err, serve.ErrStalled):
		// The server gave up on the request, not the client on the server.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func sinceMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// WriteJSON writes v as the JSON body of a response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
