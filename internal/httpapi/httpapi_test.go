package httpapi

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/sample"
	"repro/internal/serve"
)

// testModel trains the fast n-gram backend — milliseconds, deterministic,
// and served through the same single-sequence loop the worker binary uses
// for it.
func testModel(t *testing.T) lm.LanguageModel {
	t.Helper()
	lines := corpus.PCFGText(grammar.TinyEnglish(), 80, 8, mathx.NewRNG(7))
	m, err := lm.TrainBackend("ngram", lines, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// slowModel gates decode steps on a channel receive, holding requests in
// flight for as long as the test wants — the fake slow backend seam the
// drain test hangs a real SSE stream on. The first free Append calls pass
// ungated so prompt ingestion (which also steps the model on this
// single-sequence path) is not counted; after that, token k+1's step blocks
// until a permit arrives (token 1 samples straight off the prompt logits,
// so it needs none). Closing the gate releases everything.
type slowModel struct {
	lm.LanguageModel
	gate chan struct{}
	free int
}

func (s slowModel) NewStepper() sample.Stepper {
	inner := s.LanguageModel.NewStepper()
	n := 0
	return sample.StepperFunc(func(id int) []float64 {
		n++
		if n > s.free {
			<-s.gate
		}
		return inner.Append(id)
	})
}

// promptLen returns how many tokens prompt encodes to for m.
func promptLen(t *testing.T, m lm.LanguageModel, prompt string, budget int) int {
	t.Helper()
	ids, err := m.EncodePrompt(prompt, budget)
	if err != nil {
		t.Fatal(err)
	}
	return len(ids)
}

func newTestServer(t *testing.T, m lm.LanguageModel) (*httptest.Server, *Handler) {
	t.Helper()
	srv := serve.NewBackend(m, serve.Config{})
	t.Cleanup(srv.Close)
	h := New(srv, nil)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readEvent reads the next SSE data frame and returns its raw payload.
func readEvent(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		line = strings.TrimSpace(line)
		if payload, ok := strings.CutPrefix(line, "data: "); ok {
			return payload
		}
	}
}

// sseEvents reads every remaining data frame of an SSE body, returning the
// token pieces in order and the final done frame.
func sseEvents(t *testing.T, r *bufio.Reader) (pieces []string, done StreamDone) {
	t.Helper()
	for {
		payload := readEvent(t, r)
		var probe map[string]any
		if err := json.Unmarshal([]byte(payload), &probe); err != nil {
			t.Fatalf("bad event %q: %v", payload, err)
		}
		if errMsg, ok := probe["error"]; ok {
			t.Fatalf("in-band stream error: %v", errMsg)
		}
		if _, ok := probe["done"]; ok {
			if err := json.Unmarshal([]byte(payload), &done); err != nil {
				t.Fatal(err)
			}
			return pieces, done
		}
		var tok sample.Token
		if err := json.Unmarshal([]byte(payload), &tok); err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, tok.Text)
	}
}

// TestGenerateStreamParity pins the wire contract: /v1/generate and
// /v1/stream return the same completion for the same request, and the
// streamed pieces concatenate to exactly the final text.
func TestGenerateStreamParity(t *testing.T) {
	ts, _ := newTestServer(t, testModel(t))
	req := GenRequest{Prompt: "the king", Tokens: 8, Seed: 3}

	resp := postJSON(t, ts.URL+"/v1/generate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d", resp.StatusCode)
	}
	var gen GenResponse
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		t.Fatal(err)
	}
	if gen.Completion == "" || len(gen.Tokens) == 0 {
		t.Fatalf("empty generation: %+v", gen)
	}

	sresp := postJSON(t, ts.URL+"/v1/stream", req)
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	pieces, done := sseEvents(t, bufio.NewReader(sresp.Body))
	if got := strings.Join(pieces, ""); got != done.Completion {
		t.Errorf("pieces %q != completion %q", got, done.Completion)
	}
	if done.Completion != gen.Completion {
		t.Errorf("streamed completion %q != generate %q", done.Completion, gen.Completion)
	}
}

func TestBadRequestStatus(t *testing.T) {
	ts, _ := newTestServer(t, testModel(t))
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d, want 400", resp.StatusCode)
	}
	// An empty prompt encodes to no tokens; the stream handler must reject
	// it with a real 400 before committing to SSE headers.
	resp2 := postJSON(t, ts.URL+"/v1/stream", GenRequest{Prompt: "", Tokens: 4})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unencodable streamed prompt status %d, want 400", resp2.StatusCode)
	}
}

// TestStatsGauges checks /v1/stats carries the live gauges the router polls.
func TestStatsGauges(t *testing.T) {
	ts, _ := newTestServer(t, testModel(t))
	postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: "the king", Tokens: 4}).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Requests uint64 `json:"requests"`
		InFlight int    `json:"in_flight"`
		Queued   int    `json:"queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats after one idle request: %+v", st)
	}
}

// TestDrainReadinessAndRejection: /healthz flips 200 -> 503 on drain, new
// generation work is refused with 503 + Retry-After, and the onDrain hook
// fires exactly once.
func TestDrainReadinessAndRejection(t *testing.T) {
	fired := make(chan struct{}, 2)
	srv := serve.NewBackend(testModel(t), serve.Config{})
	t.Cleanup(srv.Close)
	h := New(srv, func() { fired <- struct{}{} })
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready healthz %d, want 200", resp.StatusCode)
	}

	dr, err := http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("drain status %d, want 202", dr.StatusCode)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("onDrain hook never fired")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", resp.StatusCode)
	}
	gen := postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: "the king", Tokens: 4})
	defer gen.Body.Close()
	if gen.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining generate %d, want 503", gen.StatusCode)
	}
	if gen.Header.Get("Retry-After") == "" {
		t.Error("draining generate reply missing Retry-After")
	}
	// Second drain is idempotent and must not re-fire the hook.
	dr2, err := http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dr2.Body.Close()
	select {
	case <-fired:
		t.Fatal("onDrain fired twice")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDrainCompletesInFlightStream is the rolling-restart core: a stream
// already in flight when drain begins keeps delivering tokens and finishes
// with its done frame, while new work is rejected the whole time.
func TestDrainCompletesInFlightStream(t *testing.T) {
	const tokens = 4
	const prompt = "the king"
	m := testModel(t)
	gate := make(chan struct{})
	ts, h := newTestServer(t, slowModel{m, gate, promptLen(t, m, prompt, tokens)})

	resp := postJSON(t, ts.URL+"/v1/stream", GenRequest{Prompt: prompt, Tokens: tokens})
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)

	// Token 1 samples off the prompt logits with no gated step; once it
	// arrives the server is provably blocked mid-stream on token 2's step.
	first := readEvent(t, r)
	if strings.Contains(first, "error") || strings.Contains(first, "done") {
		t.Fatalf("first event %q is not a token", first)
	}
	h.Drain()

	rej := postJSON(t, ts.URL+"/v1/generate", GenRequest{Prompt: prompt, Tokens: 2})
	rej.Body.Close()
	if rej.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("generate during drain %d, want 503", rej.StatusCode)
	}

	close(gate) // let the in-flight stream run to completion
	pieces, done := sseEvents(t, r)
	if len(pieces) != tokens-1 {
		t.Fatalf("drained stream delivered %d more tokens after drain, want %d", len(pieces), tokens-1)
	}
	if !done.Done || done.Completion == "" {
		t.Fatalf("drained stream done frame: %+v", done)
	}
}

// TestStreamClientDisconnect ensures a dropped client cancels the request
// server-side rather than wedging the serving loop.
func TestStreamClientDisconnect(t *testing.T) {
	const prompt = "the king"
	gate := make(chan struct{})
	inner := testModel(t)
	m := slowModel{inner, gate, promptLen(t, inner, prompt, 8)}
	srv := serve.NewBackend(m, serve.Config{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(New(srv, nil))
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/stream", GenRequest{Prompt: prompt, Tokens: 8})
	readEvent(t, bufio.NewReader(resp.Body)) // stream is live
	resp.Body.Close()                        // disconnect mid-stream
	close(gate)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.InFlight == 0 {
			if st.Cancelled+st.Completed == 0 {
				t.Fatalf("request vanished without a terminal count: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("request still in flight after disconnect: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
