package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRouter is the control-plane seam for the Joiner tests: it records
// every register/deregister call and can fail the first N registers to
// exercise the retry loop.
type fakeRouter struct {
	ts          *httptest.Server
	registers   atomic.Int64
	deregisters atomic.Int64
	failFirst   atomic.Int64 // registers to answer 500 before succeeding
	failDereg   atomic.Int64 // deregisters to answer 500 before succeeding
	lastReg     atomic.Value // RegisterRequest
	lastDereg   atomic.Value // DeregisterRequest
}

func newFakeRouter(t *testing.T) *fakeRouter {
	t.Helper()
	fr := &fakeRouter{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		json.NewDecoder(r.Body).Decode(&req)
		fr.lastReg.Store(req)
		n := fr.registers.Add(1)
		if n <= fr.failFirst.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		WriteJSON(w, http.StatusOK, RegisterResponse{Epoch: 1, LeaseMS: req.LeaseMS, Created: n == 1})
	})
	mux.HandleFunc("POST /v1/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		json.NewDecoder(r.Body).Decode(&req)
		fr.lastDereg.Store(req)
		n := fr.deregisters.Add(1)
		if n <= fr.failDereg.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		WriteJSON(w, http.StatusOK, DeregisterResponse{Epoch: 2, Removed: true})
	})
	fr.ts = httptest.NewServer(mux)
	t.Cleanup(fr.ts.Close)
	return fr
}

func waitJoin(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJoinerHeartbeats: the loop registers immediately, keeps renewing on
// the interval with the advertised URL and lease, and stops when told.
func TestJoinerHeartbeats(t *testing.T) {
	fr := newFakeRouter(t)
	j, err := StartJoiner(JoinConfig{
		Router: fr.ts.URL, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJoin(t, "three heartbeats", func() bool { return fr.registers.Load() >= 3 })
	req := fr.lastReg.Load().(RegisterRequest)
	if req.URL != "http://127.0.0.1:9999" || req.LeaseMS != 300 {
		t.Fatalf("heartbeat carried %+v, want the advertised URL and 300ms lease", req)
	}

	j.Stop()
	after := fr.registers.Load()
	time.Sleep(80 * time.Millisecond)
	if got := fr.registers.Load(); got != after {
		t.Fatalf("heartbeats continued after Stop: %d -> %d", after, got)
	}
	if fr.deregisters.Load() != 0 {
		t.Fatal("Stop must not deregister — that is Leave's job")
	}
}

// TestJoinerRetriesThroughFailures: a router that errors the first several
// registers (a worker booting before its router) is retried with backoff
// until it answers, and the loop recovers without intervention.
func TestJoinerRetriesThroughFailures(t *testing.T) {
	fr := newFakeRouter(t)
	fr.failFirst.Store(5)
	j, err := StartJoiner(JoinConfig{
		Router: fr.ts.URL, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	waitJoin(t, "a successful register after 5 failures", func() bool { return fr.registers.Load() >= 7 })
}

// TestLeaveDeregisters: Leave halts heartbeats first (no stale renewal can
// land after), then posts exactly one deregister for the advertised URL.
func TestLeaveDeregisters(t *testing.T) {
	fr := newFakeRouter(t)
	j, err := StartJoiner(JoinConfig{
		Router: fr.ts.URL, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJoin(t, "first register", func() bool { return fr.registers.Load() >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := j.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fr.deregisters.Load(); got != 1 {
		t.Fatalf("deregisters = %d, want 1", got)
	}
	dereg := fr.lastDereg.Load().(DeregisterRequest)
	if dereg.URL != "http://127.0.0.1:9999" {
		t.Fatalf("deregistered %q, want the advertised URL", dereg.URL)
	}
	regs := fr.registers.Load()
	time.Sleep(80 * time.Millisecond)
	if got := fr.registers.Load(); got != regs {
		t.Fatalf("heartbeats continued after Leave: %d -> %d", regs, got)
	}
}

// TestJoinRoutersNormalize: the legacy single Router and the Routers list
// merge, with whitespace, trailing slashes, empties, and duplicates
// dropped — a worker must never run two heartbeat loops at one router.
func TestJoinRoutersNormalize(t *testing.T) {
	got := joinRouters(JoinConfig{
		Router:  "http://a:1/",
		Routers: []string{" http://b:2 ", "", "http://a:1", "http://b:2/"},
	})
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("joinRouters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("joinRouters = %v, want %v", got, want)
		}
	}
}

// TestJoinerHeartbeatsEveryRouter: with a replicated router tier the
// Joiner heartbeats all routers independently, and one router dying does
// not disturb the cadence at the survivor.
func TestJoinerHeartbeatsEveryRouter(t *testing.T) {
	fr1, fr2 := newFakeRouter(t), newFakeRouter(t)
	j, err := StartJoiner(JoinConfig{
		Routers: []string{fr1.ts.URL, fr2.ts.URL}, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	waitJoin(t, "three heartbeats at each router", func() bool {
		return fr1.registers.Load() >= 3 && fr2.registers.Load() >= 3
	})

	// Kill router 1; router 2 must keep receiving renewals.
	fr1.ts.Close()
	before := fr2.registers.Load()
	waitJoin(t, "three more heartbeats at the survivor", func() bool {
		return fr2.registers.Load() >= before+3
	})
}

// TestLeaveDeregistersEveryRouter: Leave fans out to every router, and a
// router that fails transiently is retried within the per-router budget —
// a blip must not leave a stale member squatting until lease expiry.
func TestLeaveDeregistersEveryRouter(t *testing.T) {
	fr1, fr2 := newFakeRouter(t), newFakeRouter(t)
	fr2.failDereg.Store(2) // first two attempts 500, third succeeds
	j, err := StartJoiner(JoinConfig{
		Routers: []string{fr1.ts.URL, fr2.ts.URL}, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJoin(t, "first register at each router", func() bool {
		return fr1.registers.Load() >= 1 && fr2.registers.Load() >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := j.Leave(ctx); err != nil {
		t.Fatalf("Leave with a transiently failing router: %v", err)
	}
	if got := fr1.deregisters.Load(); got != 1 {
		t.Fatalf("healthy router saw %d deregisters, want 1", got)
	}
	if got := fr2.deregisters.Load(); got != 3 {
		t.Fatalf("flaky router saw %d deregisters, want 3 (2 failures + 1 success)", got)
	}
}

// TestLeaveBoundedRetryReportsDeadRouter: a router that is down for the
// whole drain exhausts its bounded retry and is reported in the joined
// error — but the healthy router is still notified, and Leave returns
// instead of hanging on the corpse.
func TestLeaveBoundedRetryReportsDeadRouter(t *testing.T) {
	fr := newFakeRouter(t)
	dead := newFakeRouter(t)
	deadURL := dead.ts.URL
	j, err := StartJoiner(JoinConfig{
		Routers: []string{fr.ts.URL, deadURL}, Self: "http://127.0.0.1:9999",
		Lease: 300 * time.Millisecond, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJoin(t, "first register", func() bool { return fr.registers.Load() >= 1 })
	dead.ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err = j.Leave(ctx)
	if err == nil {
		t.Fatal("Leave with a dead router returned nil, want its failure reported")
	}
	if !strings.Contains(err.Error(), deadURL) {
		t.Fatalf("Leave error %q does not name the dead router %s", err, deadURL)
	}
	if got := fr.deregisters.Load(); got != 1 {
		t.Fatalf("healthy router saw %d deregisters, want 1 despite the dead peer", got)
	}
}
