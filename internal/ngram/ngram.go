// Package ngram implements the classical statistical language models of the
// paper's §3 and §5: the 1-gram frequency model (Eq. 1) and general N-gram
// models with the count-ratio estimator (Eq. 6), plus add-k smoothing,
// interpolation across orders, perplexity (Eq. 3) and sampling.
package ngram

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mathx"
)

// Model is an N-gram language model over integer token ids.
type Model struct {
	N     int // context length + 1; N=1 is the unigram model of Eq. 1
	Vocab int

	// counts[order] maps a context key (order tokens) to next-token counts.
	counts []map[string]map[int]int
	// totals[order] maps a context key to its total count.
	totals []map[string]int

	// Smoothing configuration.
	AddK          float64   // add-k (Laplace when k=1); 0 disables
	Interpolation []float64 // per-order mixture weights, highest order last; nil disables
}

// New creates an untrained N-gram model with vocabulary size vocab.
func New(n, vocab int) *Model {
	if n < 1 {
		panic("ngram: order must be >= 1")
	}
	m := &Model{N: n, Vocab: vocab}
	m.counts = make([]map[string]map[int]int, n)
	m.totals = make([]map[string]int, n)
	for i := 0; i < n; i++ {
		m.counts[i] = map[string]map[int]int{}
		m.totals[i] = map[string]int{}
	}
	return m
}

func key(ctx []int) string {
	if len(ctx) == 0 {
		return ""
	}
	var b strings.Builder
	for i, t := range ctx {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	return b.String()
}

// Train accumulates counts from the token stream for every order up to N.
// It may be called repeatedly to add data.
func (m *Model) Train(stream []int) {
	for i := range stream {
		for order := 0; order < m.N; order++ {
			if i < order {
				continue
			}
			k := key(stream[i-order : i])
			nm := m.counts[order][k]
			if nm == nil {
				nm = map[int]int{}
				m.counts[order][k] = nm
			}
			nm[stream[i]]++
			m.totals[order][k]++
		}
	}
}

// Observe adds one (context, next) observation at every order, as if the
// pair had occurred in a Train stream — the incremental surface for
// consumers that generate supervision pairs rather than a contiguous stream
// (e.g. distilling a draft model from a teacher's per-context predictions).
func (m *Model) Observe(ctx []int, next int) {
	for order := 0; order < m.N; order++ {
		if len(ctx) < order {
			break
		}
		k := key(ctx[len(ctx)-order:])
		nm := m.counts[order][k]
		if nm == nil {
			nm = map[int]int{}
			m.counts[order][k] = nm
		}
		nm[next]++
		m.totals[order][k]++
	}
}

// probOrder returns P(next | ctx) using exactly the given order's counts
// with add-k smoothing (k may be 0).
func (m *Model) probOrder(order int, ctx []int, next int) (float64, bool) {
	k := key(ctx)
	total := m.totals[order][k]
	count := 0
	if nm := m.counts[order][k]; nm != nil {
		count = nm[next]
	}
	if m.AddK > 0 {
		return (float64(count) + m.AddK) / (float64(total) + m.AddK*float64(m.Vocab)), true
	}
	if total == 0 {
		return 0, false
	}
	return float64(count) / float64(total), true
}

// Prob returns the model probability P(next | ctx) per Eq. 5/6, using the
// last N-1 tokens of ctx. With Interpolation set, orders are mixed; without
// it the model backs off to the longest order with observed context.
func (m *Model) Prob(ctx []int, next int) float64 {
	if len(ctx) > m.N-1 {
		ctx = ctx[len(ctx)-(m.N-1):]
	}
	if m.Interpolation != nil {
		if len(m.Interpolation) != m.N {
			panic("ngram: interpolation weights must have one entry per order")
		}
		p := 0.0
		for order := 0; order < m.N; order++ {
			use := ctx
			if len(use) > order {
				use = use[len(use)-order:]
			}
			if len(use) < order {
				continue // not enough context for this order
			}
			po, ok := m.probOrder(order, use, next)
			if ok {
				p += m.Interpolation[order] * po
			}
		}
		return p
	}
	// Backoff: longest available order whose context was observed.
	for order := min(m.N-1, len(ctx)); order >= 0; order-- {
		use := ctx[len(ctx)-order:]
		if p, ok := m.probOrder(order, use, next); ok {
			return p
		}
	}
	return 0
}

// Dist returns the full next-token distribution given ctx.
func (m *Model) Dist(ctx []int) []float64 {
	d := make([]float64, m.Vocab)
	for t := 0; t < m.Vocab; t++ {
		d[t] = m.Prob(ctx, t)
	}
	return d
}

// DistInto fills dst (length Vocab) with a normalized next-token
// distribution from the longest order whose context was actually observed,
// applying add-k smoothing within that order, and returns dst. Unlike
// Prob's per-token path — where any positive AddK makes the highest order
// always answer, even for contexts never seen in training — DistInto backs
// off past unobserved contexts to the order that has real counts, and it
// builds each context key once per order rather than once per token. This
// is the bulk-query surface for consumers that need the whole distribution
// at once (the speculative-decoding drafter).
func (m *Model) DistInto(dst []float64, ctx []int) []float64 {
	if len(ctx) > m.N-1 {
		ctx = ctx[len(ctx)-(m.N-1):]
	}
	for order := min(m.N-1, len(ctx)); order >= 0; order-- {
		k := key(ctx[len(ctx)-order:])
		total := m.totals[order][k]
		if total == 0 && order > 0 {
			continue
		}
		nm := m.counts[order][k]
		denom := float64(total) + m.AddK*float64(m.Vocab)
		if denom <= 0 {
			break // untrained model: uniform fallback below
		}
		for t := range dst {
			dst[t] = m.AddK / denom
		}
		for t, c := range nm {
			if t < len(dst) {
				dst[t] = (float64(c) + m.AddK) / denom
			}
		}
		return dst
	}
	u := 1 / float64(m.Vocab)
	for t := range dst {
		dst[t] = u
	}
	return dst
}

// CrossEntropy evaluates Eq. 3 on the held-out stream: the mean negative
// log probability of each token given its preceding context. Tokens with
// zero model probability contribute the floor penalty log(vocab·1e6) to keep
// the result finite; with smoothing enabled this never triggers.
func (m *Model) CrossEntropy(stream []int) float64 {
	if len(stream) == 0 {
		return 0
	}
	total := 0.0
	floor := math.Log(float64(m.Vocab) * 1e6)
	for i := range stream {
		lo := i - (m.N - 1)
		if lo < 0 {
			lo = 0
		}
		p := m.Prob(stream[lo:i], stream[i])
		if p <= 0 {
			total += floor
		} else {
			total -= math.Log(p)
		}
	}
	return total / float64(len(stream))
}

// Perplexity is exp(CrossEntropy) — the paper's headline LM metric.
func (m *Model) Perplexity(stream []int) float64 {
	return math.Exp(m.CrossEntropy(stream))
}

// Sample draws length tokens autoregressively starting from the given
// context (which may be empty), demonstrating that N-gram models are
// generative in the paper's §3 sense.
func (m *Model) Sample(ctx []int, length int, rng *mathx.RNG) []int {
	out := append([]int(nil), ctx...)
	for step := 0; step < length; step++ {
		d := m.Dist(out)
		if mathx.Sum(d) <= 0 {
			break
		}
		out = append(out, rng.Categorical(d))
	}
	return out[len(ctx):]
}

// UnigramCounts exposes the raw unigram frequency table (Eq. 1's estimator)
// for inspection; index = token id.
func (m *Model) UnigramCounts() []int {
	out := make([]int, m.Vocab)
	if nm := m.counts[0][""]; nm != nil {
		for t, c := range nm {
			if t < m.Vocab {
				out[t] = c
			}
		}
	}
	return out
}

// DistinctContexts returns the number of distinct contexts observed at the
// highest order — the quantity whose exponential growth in N makes large-N
// models hopeless (§5).
func (m *Model) DistinctContexts() int {
	return len(m.totals[m.N-1])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
