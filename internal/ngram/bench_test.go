package ngram

import (
	"fmt"
	"testing"

	"repro/internal/mathx"
)

func benchStream(n int) []int {
	rng := mathx.NewRNG(1)
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(64)
	}
	return s
}

func BenchmarkTrain(b *testing.B) {
	for _, order := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			stream := benchStream(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := New(order, 64)
				m.Train(stream)
			}
		})
	}
}

func BenchmarkPerplexity(b *testing.B) {
	stream := benchStream(10000)
	m := New(3, 64)
	m.AddK = 0.1
	m.Train(stream)
	test := benchStream(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Perplexity(test)
	}
}
