package ngram

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestUnigramFrequencies(t *testing.T) {
	// Eq. 1: P(w) = count(w)/total.
	m := New(1, 4)
	m.Train([]int{0, 0, 0, 1, 2, 2, 3, 3, 3, 3})
	if p := m.Prob(nil, 0); !almostEqual(p, 0.3, 1e-12) {
		t.Errorf("P(0) = %v, want 0.3", p)
	}
	if p := m.Prob(nil, 3); !almostEqual(p, 0.4, 1e-12) {
		t.Errorf("P(3) = %v, want 0.4", p)
	}
	counts := m.UnigramCounts()
	if counts[0] != 3 || counts[3] != 4 {
		t.Errorf("counts = %v", counts)
	}
}

func TestBigramConditional(t *testing.T) {
	// Eq. 6: count ratio. Stream: 0 1 0 2 0 1 → P(1|0)=2/3, P(2|0)=1/3.
	m := New(2, 3)
	m.Train([]int{0, 1, 0, 2, 0, 1})
	if p := m.Prob([]int{0}, 1); !almostEqual(p, 2.0/3, 1e-12) {
		t.Errorf("P(1|0) = %v", p)
	}
	if p := m.Prob([]int{0}, 2); !almostEqual(p, 1.0/3, 1e-12) {
		t.Errorf("P(2|0) = %v", p)
	}
}

func TestDistSumsToOne(t *testing.T) {
	rng := mathx.NewRNG(1)
	m := New(3, 5)
	stream := make([]int, 500)
	for i := range stream {
		stream[i] = rng.Intn(5)
	}
	m.Train(stream)
	for _, ctx := range [][]int{nil, {1}, {1, 2}, {4, 4}} {
		d := m.Dist(ctx)
		if s := mathx.Sum(d); !almostEqual(s, 1, 1e-9) {
			t.Errorf("dist(%v) sums to %v", ctx, s)
		}
	}
}

func TestAddKSmoothingNonzero(t *testing.T) {
	m := New(2, 10)
	m.AddK = 1
	m.Train([]int{0, 1, 2})
	// Unseen continuation must be nonzero but small.
	p := m.Prob([]int{0}, 9)
	if p <= 0 {
		t.Fatal("smoothed probability is zero")
	}
	if p >= m.Prob([]int{0}, 1) {
		t.Error("unseen as likely as seen")
	}
	if s := mathx.Sum(m.Dist([]int{0})); !almostEqual(s, 1, 1e-9) {
		t.Errorf("smoothed dist sums to %v", s)
	}
}

func TestBackoffToLowerOrder(t *testing.T) {
	m := New(3, 4)
	m.Train([]int{0, 1, 2, 0, 1, 2})
	// Context (3,3) never seen at order 2, nor 3 at order 1 → falls back to
	// unigram.
	p := m.Prob([]int{3, 3}, 2)
	uni := m.Prob(nil, 2)
	if !almostEqual(p, uni, 1e-12) {
		t.Errorf("backoff prob %v != unigram %v", p, uni)
	}
}

func TestInterpolationMixesOrders(t *testing.T) {
	m := New(2, 3)
	m.Interpolation = []float64{0.4, 0.6}
	m.Train([]int{0, 1, 0, 1, 0, 2})
	// P = 0.4*P_uni(1) + 0.6*P_bi(1|0).
	want := 0.4*(2.0/6) + 0.6*(2.0/3)
	if p := m.Prob([]int{0}, 1); !almostEqual(p, want, 1e-12) {
		t.Errorf("interpolated P = %v, want %v", p, want)
	}
}

func TestCrossEntropyOnTrainingData(t *testing.T) {
	// A deterministic cycle is perfectly predictable by a bigram model:
	// cross entropy ~ 0 for all but the first token.
	stream := make([]int, 300)
	for i := range stream {
		stream[i] = i % 3
	}
	m := New(2, 3)
	m.Train(stream)
	ce := m.CrossEntropy(stream[1:])
	if ce > 0.01 {
		t.Errorf("cross entropy on deterministic cycle = %v", ce)
	}
}

func TestPerplexityUniformStream(t *testing.T) {
	// IID uniform tokens → perplexity ≈ vocab for any model.
	rng := mathx.NewRNG(2)
	vocab := 8
	stream := make([]int, 8000)
	for i := range stream {
		stream[i] = rng.Intn(vocab)
	}
	m := New(1, vocab)
	m.Train(stream[:6000])
	pp := m.Perplexity(stream[6000:])
	if pp < 7 || pp > 9 {
		t.Errorf("perplexity = %v, want ~8", pp)
	}
}

// TestHigherOrderHelpsOnStructuredData verifies the paper's §5 claim that
// modest N (3-4) beats unigram on structured text, using a deterministic
// pattern with long dependencies.
func TestHigherOrderHelpsOnStructuredData(t *testing.T) {
	pattern := []int{0, 1, 2, 3, 0, 2, 1, 3}
	stream := make([]int, 0, 4000)
	for len(stream) < 4000 {
		stream = append(stream, pattern...)
	}
	train, test := stream[:3000], stream[3000:]
	uni := New(1, 4)
	uni.AddK = 0.1
	uni.Train(train)
	tri := New(3, 4)
	tri.AddK = 0.1
	tri.Train(train)
	ppUni := uni.Perplexity(test)
	ppTri := tri.Perplexity(test)
	if ppTri >= ppUni {
		t.Errorf("trigram pp %v not better than unigram pp %v", ppTri, ppUni)
	}
	if ppTri > 1.5 {
		t.Errorf("trigram pp on deterministic pattern = %v, want ~1", ppTri)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	m := New(1, 3)
	m.Train([]int{0, 0, 0, 0, 0, 0, 0, 1, 1, 2})
	rng := mathx.NewRNG(3)
	n := 20000
	counts := make([]float64, 3)
	got := m.Sample(nil, n, rng)
	for _, tkn := range got {
		counts[tkn]++
	}
	if f := counts[0] / float64(n); !almostEqual(f, 0.7, 0.02) {
		t.Errorf("sample freq of 0 = %v, want ~0.7", f)
	}
}

func TestSampleRespectsContext(t *testing.T) {
	// After token 5, only token 6 ever follows.
	m := New(2, 8)
	m.Train([]int{5, 6, 5, 6, 5, 6, 7, 5, 6})
	rng := mathx.NewRNG(4)
	for i := 0; i < 20; i++ {
		out := m.Sample([]int{5}, 1, rng)
		if out[0] != 6 {
			t.Fatalf("sampled %d after 5, want 6", out[0])
		}
	}
}

func TestDistinctContextsGrowth(t *testing.T) {
	// The §5 argument: the number of distinct N-gram contexts grows rapidly
	// with N on random data.
	rng := mathx.NewRNG(5)
	stream := make([]int, 2000)
	for i := range stream {
		stream[i] = rng.Intn(10)
	}
	m2 := New(2, 10)
	m2.Train(stream)
	m4 := New(4, 10)
	m4.Train(stream)
	if m4.DistinctContexts() <= m2.DistinctContexts() {
		t.Errorf("contexts: order4=%d order2=%d", m4.DistinctContexts(), m2.DistinctContexts())
	}
}

func TestZeroProbWithoutSmoothing(t *testing.T) {
	m := New(1, 4)
	m.Train([]int{0, 1})
	if p := m.Prob(nil, 3); p != 0 {
		t.Errorf("unseen unsmoothed prob = %v", p)
	}
	// Cross entropy stays finite thanks to the floor.
	if ce := m.CrossEntropy([]int{3, 3}); math.IsInf(ce, 1) {
		t.Error("cross entropy diverged")
	}
}

func TestTrainIncremental(t *testing.T) {
	a := New(2, 3)
	a.Train([]int{0, 1, 2})
	a.Train([]int{2, 1, 0})
	b := New(2, 3)
	b.Train([]int{0, 1, 2})
	// Incremental training treats each call as a separate stream, so the
	// bigram (2,2) across the boundary must NOT be counted.
	if p := a.Prob([]int{2}, 2); p != 0 && !almostEqual(p, b.Prob([]int{2}, 2), 1e-12) {
		// Each Train call is independent; (2→2) never occurs within a call.
		t.Errorf("cross-boundary bigram counted: %v", p)
	}
}

func TestNewPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5)
}
