package mathx

import "testing"

// TestDotInterleaved16MatchesDot checks the interleaved kernel (assembly on
// amd64, portable elsewhere) bitwise against both the portable reference
// and sixteen independent Dot calls, across lengths that exercise the empty,
// short, and long paths.
func TestDotInterleaved16MatchesDot(t *testing.T) {
	rng := NewRNG(1)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 32, 33, 128, 1000} {
		w := make([]float64, 16*n)
		x := make([]float64, n)
		for i := range w {
			w[i] = rng.Norm()
		}
		for i := range x {
			x[i] = rng.Norm()
		}
		// Sprinkle exact zeros to cover the ±0 accumulation paths.
		if n > 2 {
			x[1] = 0
			w[16+3] = 0
		}
		var got, ref [16]float64
		DotInterleaved16(&got, w, x)
		dotInterleaved16Go(&ref, w, x)
		for k := 0; k < 16; k++ {
			row := make([]float64, n)
			for i := 0; i < n; i++ {
				row[i] = w[i*16+k]
			}
			want := Dot(row, x)
			if got[k] != want {
				t.Fatalf("n=%d lane %d: kernel %v != Dot %v", n, k, got[k], want)
			}
			if ref[k] != want {
				t.Fatalf("n=%d lane %d: portable %v != Dot %v", n, k, ref[k], want)
			}
		}
	}
}

// TestDotInterleaved16X2MatchesSingle checks the fused two-vector kernel
// bitwise against two independent DotInterleaved16 calls.
func TestDotInterleaved16X2MatchesSingle(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 32, 33, 128, 1000} {
		w := make([]float64, 16*n)
		x0 := make([]float64, n)
		x1 := make([]float64, n)
		for i := range w {
			w[i] = rng.Norm()
		}
		for i := range x0 {
			x0[i], x1[i] = rng.Norm(), rng.Norm()
		}
		if n > 2 {
			x0[1], x1[2] = 0, 0
		}
		var want0, want1, got0, got1 [16]float64
		DotInterleaved16(&want0, w, x0)
		DotInterleaved16(&want1, w, x1)
		DotInterleaved16X2(&got0, &got1, w, x0, x1)
		for k := 0; k < 16; k++ {
			if got0[k] != want0[k] || got1[k] != want1[k] {
				t.Fatalf("n=%d lane %d: X2 (%v, %v) != single (%v, %v)",
					n, k, got0[k], got1[k], want0[k], want1[k])
			}
		}
	}
}

// TestDotInterleaved16X4MatchesSingle checks the fused four-vector kernel
// (two half-row assembly passes on amd64) bitwise against four independent
// DotInterleaved16 calls.
func TestDotInterleaved16X4MatchesSingle(t *testing.T) {
	rng := NewRNG(5)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 32, 33, 128, 1000} {
		w := make([]float64, 16*n)
		xs := make([][]float64, 4)
		for i := range w {
			w[i] = rng.Norm()
		}
		for v := range xs {
			xs[v] = make([]float64, n)
			for i := range xs[v] {
				xs[v][i] = rng.Norm()
			}
		}
		if n > 3 {
			xs[0][1], xs[1][2], xs[2][0], xs[3][3] = 0, 0, 0, 0
		}
		var want [4][16]float64
		for v := range xs {
			DotInterleaved16(&want[v], w, xs[v])
		}
		var got [4][16]float64
		DotInterleaved16X4(&got[0], &got[1], &got[2], &got[3], w, xs[0], xs[1], xs[2], xs[3])
		for v := 0; v < 4; v++ {
			for k := 0; k < 16; k++ {
				if got[v][k] != want[v][k] {
					t.Fatalf("n=%d vector %d lane %d: X4 %v != single %v",
						n, v, k, got[v][k], want[v][k])
				}
			}
		}
	}
}

func TestDotInterleaved16X4PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var d0, d1, d2, d3 [16]float64
	DotInterleaved16X4(&d0, &d1, &d2, &d3, make([]float64, 32),
		make([]float64, 2), make([]float64, 2), make([]float64, 1), make([]float64, 2))
}

func TestDotInterleaved16PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var dst [16]float64
	DotInterleaved16(&dst, make([]float64, 15), make([]float64, 1))
}

// TestSoftmaxIntoMatchesSoftmax pins the scratch variant (including the
// aliased dst == xs case the attention path uses) bitwise to Softmax.
func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	rng := NewRNG(2)
	for _, n := range []int{1, 2, 17, 100} {
		for _, beta := range []float64{0.25, 1, 4} {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Norm() * 3
			}
			want := Softmax(xs, beta)
			dst := make([]float64, n)
			SoftmaxInto(dst, xs, beta)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("n=%d beta=%v: SoftmaxInto[%d] = %v, Softmax %v", n, beta, i, dst[i], want[i])
				}
			}
			// In place.
			inplace := append([]float64(nil), xs...)
			SoftmaxInto(inplace, inplace, beta)
			for i := range want {
				if inplace[i] != want[i] {
					t.Fatalf("n=%d beta=%v aliased: [%d] = %v, want %v", n, beta, i, inplace[i], want[i])
				}
			}
		}
	}
}
