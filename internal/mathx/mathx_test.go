package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	if m := Mean(xs); !almostEqual(m, 0, 0.03) {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if v := Variance(xs); !almostEqual(v, 1, 0.05) {
		t.Errorf("normal variance = %v, want ~1", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := NewRNG(5)
	w := []float64{1, 2, 7}
	counts := make([]float64, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := counts[i] / float64(n)
		if !almostEqual(got, want, 0.02) {
			t.Errorf("category %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero weights")
		}
	}()
	NewRNG(1).Categorical([]float64{0, 0})
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("mean = %v, want 3", m)
	}
	if v := Variance(xs); v != 2 {
		t.Errorf("variance = %v, want 2", v)
	}
}

// TestVarianceFirstN checks the closed form var(1..n) = (n^2-1)/12 used in
// the paper's Figure 1 word problem.
func TestVarianceFirstN(t *testing.T) {
	for _, n := range []int{3, 7, 11, 20} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		want := (float64(n)*float64(n) - 1) / 12
		if v := Variance(xs); !almostEqual(v, want, 1e-9) {
			t.Errorf("var(1..%d) = %v, want %v", n, v, want)
		}
	}
}

// TestVarianceFirstNEven checks var(2,4,..,2m) = (m^2-1)/3 from Figure 1.
func TestVarianceFirstNEven(t *testing.T) {
	for _, m := range []int{3, 7, 10} {
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = float64(2 * (i + 1))
		}
		want := (float64(m)*float64(m) - 1) / 3
		if v := Variance(xs); !almostEqual(v, want, 1e-9) {
			t.Errorf("var(evens to %d) = %v, want %v", 2*m, v, want)
		}
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); !almostEqual(c, 1, 1e-12) {
		t.Errorf("correlation = %v, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEqual(c, -1, 1e-12) {
		t.Errorf("correlation = %v, want -1", c)
	}
}

func TestLogSumExpStable(t *testing.T) {
	xs := []float64{1000, 1000}
	want := 1000 + math.Log(2)
	if got := LogSumExp(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	xs := []float64{1, 2, 3}
	p := Softmax(xs, 1)
	if s := Sum(p); !almostEqual(s, 1, 1e-12) {
		t.Errorf("softmax sums to %v", s)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	// High beta approaches argmax (paper Eq. 8 remark).
	sharp := Softmax(xs, 100)
	if sharp[2] < 0.999 {
		t.Errorf("beta=100 softmax not concentrated: %v", sharp)
	}
	// beta=0 is uniform.
	flat := Softmax(xs, 0)
	for _, v := range flat {
		if !almostEqual(v, 1.0/3, 1e-12) {
			t.Errorf("beta=0 softmax not uniform: %v", flat)
		}
	}
}

func TestSoftmaxSumsToOneQuick(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.Abs(v) > 200 {
				return true // skip pathological inputs
			}
		}
		p := Softmax([]float64{a, b, c}, 1)
		return almostEqual(Sum(p), 1, 1e-9) && p[0] >= 0 && p[1] >= 0 && p[2] >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Mat{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(9)
	a := NewMat(4, 7)
	for i := range a.Data {
		a.Data[i] = r.Norm()
	}
	tt := a.T().T()
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice changed the matrix")
		}
	}
}

func TestSolveKnown(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 2, Data: []float64{2, 1, 1, 3}}
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Errorf("solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRoundTripQuick(t *testing.T) {
	r := NewRNG(13)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = r.Norm()
		}
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Norm()
		}
		b := MatVec(a, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-6) {
				t.Fatalf("trial %d: solve mismatch %v vs %v", trial, got, want)
			}
		}
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2x exactly.
	a := NewMat(5, 2)
	y := make([]float64, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, float64(i))
		y[i] = 3 + 2*float64(i)
	}
	x, err := LeastSquares(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-8) || !almostEqual(x[1], 2, 1e-8) {
		t.Errorf("coef = %v, want [3 2]", x)
	}
}

func TestRidgeShrinks(t *testing.T) {
	a := NewMat(4, 1)
	y := []float64{2, 4, 6, 8}
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
	}
	x0, _ := LeastSquares(a, y, 0)
	x1, _ := LeastSquares(a, y, 100)
	if !(math.Abs(x1[0]) < math.Abs(x0[0])) {
		t.Errorf("ridge did not shrink: %v vs %v", x1[0], x0[0])
	}
}

func TestPowerIterationDominantEig(t *testing.T) {
	// Symmetric with eigenvalues 5 and 1 (eigvecs along (1,1)/(1,-1)).
	a := &Mat{Rows: 2, Cols: 2, Data: []float64{3, 2, 2, 3}}
	lam, v := PowerIteration(a, 200, NewRNG(17))
	if !almostEqual(lam, 5, 1e-6) {
		t.Errorf("dominant eigenvalue = %v, want 5", lam)
	}
	if !almostEqual(math.Abs(v[0]), math.Abs(v[1]), 1e-6) {
		t.Errorf("eigenvector = %v, want ±(1,1)/√2", v)
	}
}

func TestTopEigenOrthogonal(t *testing.T) {
	a := &Mat{Rows: 3, Cols: 3, Data: []float64{4, 1, 0, 1, 3, 0, 0, 0, 1}}
	vals, vecs := TopEigen(a, 2, 300, NewRNG(23))
	if vals[0] < vals[1] {
		t.Errorf("eigenvalues out of order: %v", vals)
	}
	if d := math.Abs(Dot(vecs[0], vecs[1])); d > 1e-4 {
		t.Errorf("eigenvectors not orthogonal: dot=%v", d)
	}
}

func TestPCAReducesToDominantDirection(t *testing.T) {
	// Points along direction (3,4)/5 with tiny noise: first PC should align.
	r := NewRNG(29)
	x := NewMat(200, 2)
	for i := 0; i < 200; i++ {
		tv := r.Norm()
		x.Set(i, 0, 3*tv+0.01*r.Norm())
		x.Set(i, 1, 4*tv+0.01*r.Norm())
	}
	_, comp := PCA(x, 1, true, r)
	c := comp.Row(0)
	cos := math.Abs(CosineSimilarity(c, []float64{3, 4}))
	if cos < 0.999 {
		t.Errorf("first PC misaligned: cos=%v comp=%v", cos, c)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * math.Pow(x, -0.076)
	}
	f := FitPowerLaw(xs, ys)
	if !almostEqual(f.Alpha, -0.076, 1e-9) {
		t.Errorf("alpha = %v, want -0.076", f.Alpha)
	}
	if !almostEqual(f.C(), 3.5, 1e-9) {
		t.Errorf("C = %v, want 3.5", f.C())
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestLinearFitKnown(t *testing.T) {
	s, b := LinearFit([]float64{0, 1, 2}, []float64{1, 3, 5})
	if !almostEqual(s, 2, 1e-12) || !almostEqual(b, 1, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 1)", s, b)
	}
}

func TestFitAnsatzRecoversGeneratedSurface(t *testing.T) {
	truth := AnsatzFit{AlphaP: 0.076, AlphaD: 0.095, Pc: 100, Dc: 1000}
	var ps, ds, ls []float64
	for _, p := range []float64{10, 30, 100, 300} {
		for _, d := range []float64{100, 1000, 10000} {
			ps = append(ps, p)
			ds = append(ds, d)
			ls = append(ls, truth.Eval(p, d))
		}
	}
	fit := FitAnsatz(ps, ds, ls)
	if fit.RMSE > 0.05 {
		t.Errorf("ansatz fit RMSE = %v, want < 0.05 (fit=%+v)", fit.RMSE, fit)
	}
	// Predictions at held-out points should be close in log space.
	for _, p := range []float64{50, 200} {
		pred := fit.Eval(p, 3000)
		want := truth.Eval(p, 3000)
		if math.Abs(math.Log(pred)-math.Log(want)) > 0.15 {
			t.Errorf("ansatz extrapolation at P=%v: got %v want %v", p, pred, want)
		}
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, 2, 9}
	if i, v := ArgMax(xs); i != 1 || v != 9 {
		t.Errorf("ArgMax = (%d, %v)", i, v)
	}
	if i, v := ArgMin(xs); i != 2 || v != 2 {
		t.Errorf("ArgMin = (%d, %v)", i, v)
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Error("Clip misbehaved")
	}
}

func TestLinspaceLogspace(t *testing.T) {
	ls := Linspace(0, 1, 5)
	if len(ls) != 5 || ls[0] != 0 || ls[4] != 1 {
		t.Errorf("Linspace = %v", ls)
	}
	lg := Logspace(0, 2, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !almostEqual(lg[i], want[i], 1e-9) {
			t.Errorf("Logspace = %v", lg)
		}
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Errorf("orthogonal cos = %v", c)
	}
	if c := CosineSimilarity([]float64{1, 1}, []float64{2, 2}); !almostEqual(c, 1, 1e-12) {
		t.Errorf("parallel cos = %v", c)
	}
	if c := CosineSimilarity([]float64{0, 0}, []float64{1, 2}); c != 0 {
		t.Errorf("zero-vector cos = %v", c)
	}
}
