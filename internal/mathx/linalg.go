package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("mathx: NewMat with negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (shared storage) of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatMul returns a*b. It panics on inner-dimension mismatch.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: MatMul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns a·x for a Rows x Cols matrix and length-Cols vector.
func MatVec(a *Mat, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mathx: MatVec dimension mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// CosineSimilarity returns a·b / (|a||b|), or 0 when either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ErrSingular reports that a linear system was (numerically) singular.
var ErrSingular = errors.New("mathx: singular matrix")

// Solve solves a·x = b by Gaussian elimination with partial pivoting.
// a is Rows x Rows and is not modified. It returns ErrSingular when a pivot
// underflows.
func Solve(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mathx: Solve dimension mismatch")
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if p != col {
			wp, wc := w.Row(p), w.Row(col)
			for j := range wp {
				wp[j], wc[j] = wc[j], wp[j]
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) / piv
			if f == 0 {
				continue
			}
			wr, wc := w.Row(r), w.Row(col)
			for j := col; j < n; j++ {
				wr[j] -= f * wc[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := w.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// LeastSquares solves min_x |A·x - y|^2 via the normal equations
// (AᵀA + ridge·I)·x = Aᵀy. ridge >= 0; a small positive ridge regularizes
// ill-conditioned designs (ridge regression).
func LeastSquares(a *Mat, y []float64, ridge float64) ([]float64, error) {
	if a.Rows != len(y) {
		panic("mathx: LeastSquares dimension mismatch")
	}
	at := a.T()
	ata := MatMul(at, a)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	aty := MatVec(at, y)
	return Solve(ata, aty)
}

// PowerIteration returns the dominant eigenvalue and unit eigenvector of the
// symmetric matrix a, using iters rounds starting from a deterministic seed
// vector derived from rng.
func PowerIteration(a *Mat, iters int, rng *RNG) (float64, []float64) {
	n := a.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Norm()
	}
	normalize(v)
	for t := 0; t < iters; t++ {
		v = MatVec(a, v)
		if Norm2(v) == 0 {
			// Degenerate: restart from a basis vector.
			v[0] = 1
		}
		normalize(v)
	}
	av := MatVec(a, v)
	return Dot(v, av), v
}

func normalize(v []float64) {
	n := Norm2(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// TopEigen computes the k leading eigenpairs of the symmetric matrix a by
// power iteration with deflation. Eigenvalues are returned in descending
// order of magnitude; eigvecs[i] is the unit eigenvector for eigvals[i].
func TopEigen(a *Mat, k, iters int, rng *RNG) (eigvals []float64, eigvecs [][]float64) {
	work := a.Clone()
	for c := 0; c < k; c++ {
		lam, v := PowerIteration(work, iters, rng)
		eigvals = append(eigvals, lam)
		eigvecs = append(eigvecs, v)
		// Deflate: work -= lam * v vᵀ
		for i := 0; i < work.Rows; i++ {
			row := work.Row(i)
			for j := range row {
				row[j] -= lam * v[i] * v[j]
			}
		}
	}
	return eigvals, eigvecs
}

// PCA projects the rows of x (samples x features) onto the top k principal
// components of the (uncentered if center is false) covariance. It returns
// the projected samples (samples x k) and the components (k x features).
// This is the compression step the paper applies to co-occurrence columns.
func PCA(x *Mat, k int, center bool, rng *RNG) (*Mat, *Mat) {
	n, d := x.Rows, x.Cols
	if k > d {
		k = d
	}
	work := x.Clone()
	if center {
		for j := 0; j < d; j++ {
			m := 0.0
			for i := 0; i < n; i++ {
				m += work.At(i, j)
			}
			m /= float64(n)
			for i := 0; i < n; i++ {
				work.Set(i, j, work.At(i, j)-m)
			}
		}
	}
	// Covariance (features x features), scaled by 1/n.
	cov := MatMul(work.T(), work)
	for i := range cov.Data {
		cov.Data[i] /= float64(n)
	}
	_, vecs := TopEigen(cov, k, 100, rng)
	comp := NewMat(k, d)
	for i, v := range vecs {
		copy(comp.Row(i), v)
	}
	proj := MatMul(work, comp.T())
	return proj, comp
}
