//go:build amd64

package mathx

// The assembly kernels keep four vector accumulators (one per group of four
// interleaved rows); every lane performs the same sequence of scalar
// multiply-then-add operations as the portable loop — separate VMULPD and
// VADDPD, never fused multiply-add — so lane results are bitwise identical
// to Dot. AVX (256-bit, four rows per register) is selected at startup when
// the CPU and OS support it; every amd64 CPU has the SSE2 path.

//go:noescape
func dotInterleaved16AVX(dst *[16]float64, w, x []float64)

//go:noescape
func dotInterleaved16SSE(dst *[16]float64, w, x []float64)

//go:noescape
func dotInterleaved16X2AVX(dst0, dst1 *[16]float64, w, x0, x1 []float64)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

var useAVX = detectAVX()

// detectAVX reports AVX support: CPU capability (CPUID leaf 1 ECX bit 28),
// OSXSAVE enabled (bit 27), and the OS actually saving xmm+ymm state
// (XGETBV XCR0 bits 1 and 2).
func detectAVX() bool {
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&0x6 == 0x6
}

func dotInterleaved16(dst *[16]float64, w, x []float64) {
	if useAVX {
		dotInterleaved16AVX(dst, w, x)
		return
	}
	dotInterleaved16SSE(dst, w, x)
}

func dotInterleaved16x2(dst0, dst1 *[16]float64, w, x0, x1 []float64) {
	if useAVX {
		dotInterleaved16X2AVX(dst0, dst1, w, x0, x1)
		return
	}
	dotInterleaved16SSE(dst0, w, x0)
	dotInterleaved16SSE(dst1, w, x1)
}
