//go:build amd64

package mathx

// The assembly kernels keep the sixteen row accumulators in vector
// registers; every lane performs the same sequence of scalar
// multiply-then-add operations as the portable loop — separate VMULPD and
// VADDPD, never fused multiply-add — so lane results are bitwise identical
// to Dot. AVX-512 (512-bit, eight rows per register, double the
// mul+add-per-cycle ceiling of the 256-bit path) is selected at startup
// when the CPU and OS support it, then AVX (256-bit, four rows per
// register); every amd64 CPU has the SSE2 path.

//go:noescape
func dotInterleaved16AVX(dst *[16]float64, w, x []float64)

//go:noescape
func dotInterleaved16SSE(dst *[16]float64, w, x []float64)

//go:noescape
func dotInterleaved16X2AVX(dst0, dst1 *[16]float64, w, x0, x1 []float64)

//go:noescape
func dotInterleaved16X4AVX(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64)

//go:noescape
func dotInterleaved16AVX512(dst *[16]float64, w, x []float64)

//go:noescape
func dotInterleaved16X2AVX512(dst0, dst1 *[16]float64, w, x0, x1 []float64)

//go:noescape
func dotInterleaved16X4AVX512(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

var (
	useAVX    = detectAVX()
	useAVX512 = detectAVX512()
)

// detectAVX reports AVX support: CPU capability (CPUID leaf 1 ECX bit 28),
// OSXSAVE enabled (bit 27), and the OS actually saving xmm+ymm state
// (XGETBV XCR0 bits 1 and 2).
func detectAVX() bool {
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&0x6 == 0x6
}

// detectAVX512 reports AVX-512 foundation support: OSXSAVE on, the OS
// saving opmask and full ZMM state (XCR0 bits 1, 2, 5, 6, 7), and CPUID
// leaf 7 EBX bit 16 (AVX512F — the only extension the kernels use; the
// zeroing idiom is VPXORQ, also foundation).
func detectAVX512() bool {
	if maxLeaf, _, _, _ := cpuid(0, 0); maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	return ebx&avx512f != 0
}

func dotInterleaved16(dst *[16]float64, w, x []float64) {
	if useAVX512 {
		dotInterleaved16AVX512(dst, w, x)
		return
	}
	if useAVX {
		dotInterleaved16AVX(dst, w, x)
		return
	}
	dotInterleaved16SSE(dst, w, x)
}

func dotInterleaved16x2(dst0, dst1 *[16]float64, w, x0, x1 []float64) {
	if useAVX512 {
		dotInterleaved16X2AVX512(dst0, dst1, w, x0, x1)
		return
	}
	if useAVX {
		dotInterleaved16X2AVX(dst0, dst1, w, x0, x1)
		return
	}
	dotInterleaved16SSE(dst0, w, x0)
	dotInterleaved16SSE(dst1, w, x1)
}

func dotInterleaved16x4(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64) {
	if useAVX512 {
		dotInterleaved16X4AVX512(dst0, dst1, dst2, dst3, w, x0, x1, x2, x3)
		return
	}
	if useAVX {
		dotInterleaved16X4AVX(dst0, dst1, dst2, dst3, w, x0, x1, x2, x3)
		return
	}
	dotInterleaved16SSE(dst0, w, x0)
	dotInterleaved16SSE(dst1, w, x1)
	dotInterleaved16SSE(dst2, w, x2)
	dotInterleaved16SSE(dst3, w, x3)
}
