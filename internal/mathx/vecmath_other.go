//go:build !amd64

package mathx

// Non-amd64 builds always take the scalar loops in vecmath.go.
const useVecMath = false

func expShiftBlocks(dst, xs []float64, shift float64) int { return 0 }

func tanhBlocks(dst, xs []float64) int { return 0 }

func geluBlocks(dst, xs []float64) int { return 0 }

func maxBlocks(xs []float64) (int, float64) { return 0, 0 }
