//go:build amd64

#include "textflag.h"

// Vectorized exp / tanh / GELU kernels, four float64 lanes per step.
//
// Every lane executes the exact operation sequence of the scalar function
// it replaces — Go's math.Exp assembly (SLEEF Taylor-plus-squaring, FMA
// path) for exp, and the Cephes rational approximation of math.Tanh (whose
// large-|x| branch itself calls math.Exp) — so each result is bitwise
// identical to the scalar call. The packed instructions apply one IEEE-754
// operation per lane with the same rounding as their scalar counterparts;
// no reassociation, no extra fusing beyond the FMAs the scalar path already
// performs. Each kernel screens its block with a vectorized range test and
// stops at the first block containing a lane outside the plain-arithmetic
// range (near overflow/underflow, non-finite, NaN); the Go wrapper resolves
// that block with scalar calls, which handle every special case.

// ---- constants, replicated across the four lanes ----

#define REP4(name, val) \
	DATA name<>+0(SB)/8, val \
	DATA name<>+8(SB)/8, val \
	DATA name<>+16(SB)/8, val \
	DATA name<>+24(SB)/8, val \
	GLOBL name<>(SB), RODATA|NOPTR, $32

// math.Exp constants (copied verbatim from the Go runtime's exp assembly).
REP4(log2e4, $1.4426950408889634073599246810018920)
REP4(ln2u4, $0.69314718055966295651160180568695068359375)
REP4(ln2l4, $0.28235290563031577122588448175013436025525412068e-12)
REP4(sixt4, $0.0625)
REP4(expc8, $2.4801587301587301587e-5)
REP4(expc7, $1.9841269841269841270e-4)
REP4(expc6, $1.3888888888888888889e-3)
REP4(expc5, $8.3333333333333333333e-3)
REP4(expc4, $4.1666666666666666667e-2)
REP4(expc3, $1.6666666666666666667e-1)
REP4(half4, $0.5)
REP4(one4, $1.0)
REP4(two4, $2.0)
REP4(bias4, $0x00000000000003ff)
// Safe range for the vector exp: comfortably inside the scalar overflow
// (709.78) and denormal-result (≈ -708.4) thresholds.
REP4(explo4, $-700.0)
REP4(exphi4, $700.0)

// math.Tanh constants (Cephes P/Q rational coefficients).
REP4(tanhp0, $-9.64399179425052238628e-1)
REP4(tanhp1, $-9.92877231001918586564e1)
REP4(tanhp2, $-1.61468768441708447952e3)
REP4(tanhq0, $1.12811678491632931402e2)
REP4(tanhq1, $2.23548839060100448583e3)
REP4(tanhq2, $4.84406305325125486048e3)
REP4(t625_4, $0.625)
// Tanh screen: |x| <= 350 keeps the inner exp argument 2|x| inside the
// exp safe range; beyond ~19 the exp branch already rounds to ±1 exactly,
// matching the scalar large-|x| cutoff at 44.014... bit for bit.
REP4(tanhhi4, $350.0)

// GELU constants: sqrt(2/pi) and the cubic coefficient of the tanh
// approximation (shared with mathx.GELU and the transformer activation).
REP4(geluc4, $0.7978845608028654)
REP4(gelua4, $0.044715)
// GELU screen: |x| <= 20 bounds the tanh argument by ~302, inside the tanh
// screen range.
REP4(geluhi4, $20.0)

REP4(absmask4, $0x7fffffffffffffff)
REP4(signmask4, $0x8000000000000000)

DATA neginf8<>+0(SB)/8, $0xfff0000000000000
GLOBL neginf8<>(SB), RODATA|NOPTR, $8

// EXPCOREP: RV = exp(RV), lane-exact replica of math.Exp's FMA path.
// RT is a ymm temporary; RI/XI the same ymm/xmm register pair carrying the
// int32 exponents across the Taylor chain. Lanes must be pre-screened into
// [-700, 700]. Two instantiations on disjoint registers form independent
// dependency chains the out-of-order core overlaps.
#define EXPCOREP(RV, RT, RI, XI) \
	VMULPD log2e4<>(SB), RV, RT        \ // k = round(x/ln2)
	VCVTPD2DQY RT, XI                  \ // (round-to-nearest, as the scalar CVTSD2SL)
	VCVTDQ2PD XI, RT                   \
	VFNMADD231PD ln2u4<>(SB), RT, RV   \ // x -= k*ln2 (split high/low)
	VFNMADD231PD ln2l4<>(SB), RT, RV   \
	VMULPD sixt4<>(SB), RV, RV         \ // x /= 16
	VMOVUPD expc8<>(SB), RT            \ // Taylor series for e^x - 1
	VFMADD213PD expc7<>(SB), RV, RT    \
	VFMADD213PD expc6<>(SB), RV, RT    \
	VFMADD213PD expc5<>(SB), RV, RT    \
	VFMADD213PD expc4<>(SB), RV, RT    \
	VFMADD213PD expc3<>(SB), RV, RT    \
	VFMADD213PD half4<>(SB), RV, RT    \
	VFMADD213PD one4<>(SB), RV, RT     \
	VMULPD RT, RV, RV                  \
	VADDPD two4<>(SB), RV, RT          \ // four squarings: g*(g+2), undoing /16
	VMULPD RT, RV, RV                  \
	VADDPD two4<>(SB), RV, RT          \
	VMULPD RT, RV, RV                  \
	VADDPD two4<>(SB), RV, RT          \
	VMULPD RT, RV, RV                  \
	VADDPD two4<>(SB), RV, RT          \
	VFMADD213PD one4<>(SB), RT, RV     \
	VPMOVSXDQ XI, RT                   \ // scale by 2^k via exponent bits
	VPADDQ bias4<>(SB), RT, RT         \
	VPSLLQ $52, RT, RT                 \
	VMULPD RT, RV, RV

#define EXPCORE EXPCOREP(Y0, Y1, Y3, X3)

// TANHEXP: Y0 = sign-restored exp-branch tanh of Y7 (valid for |x| >=
// 0.625): 1 - 2/(exp(2|x|)+1), the Cephes large-argument form. Input Y2 =
// |Y7|. Clobbers Y1, Y3, X3; preserves Y2, Y7.
#define TANHEXP \
	VMULPD two4<>(SB), Y2, Y0          \
	EXPCORE                            \ // e = exp(2z)
	VADDPD one4<>(SB), Y0, Y0          \
	VMOVUPD two4<>(SB), Y1             \
	VDIVPD Y0, Y1, Y0                  \ // 2/(e+1)
	VMOVUPD one4<>(SB), Y1             \
	VSUBPD Y0, Y1, Y0                  \ // 1 - 2/(e+1)
	VANDPD signmask4<>(SB), Y7, Y1     \
	VXORPD Y1, Y0, Y0                  // restore sign

// TANHPOLY: Y6 = rational-branch tanh of Y7 (valid for |x| < 0.625, except
// that ±0 must be passed through afterwards): x + x·s·P(s)/Q(s), s = x².
// Clobbers Y3, Y4, Y5; preserves Y2, Y7.
#define TANHPOLY \
	VMULPD Y7, Y7, Y3                  \ // s = x*x
	VMOVUPD tanhp0<>(SB), Y4           \
	VMULPD Y3, Y4, Y4                  \ // num = (P0*s+P1)*s+P2
	VADDPD tanhp1<>(SB), Y4, Y4        \
	VMULPD Y3, Y4, Y4                  \
	VADDPD tanhp2<>(SB), Y4, Y4        \
	VADDPD tanhq0<>(SB), Y3, Y5        \ // den = ((s+Q0)*s+Q1)*s+Q2
	VMULPD Y3, Y5, Y5                  \
	VADDPD tanhq1<>(SB), Y5, Y5        \
	VMULPD Y3, Y5, Y5                  \
	VADDPD tanhq2<>(SB), Y5, Y5        \
	VMULPD Y3, Y7, Y6                  \ // poly = x + x*s*num/den
	VMULPD Y4, Y6, Y6                  \
	VDIVPD Y5, Y6, Y6                  \
	VADDPD Y6, Y7, Y6

// TANHZERO: pass ±0 inputs through unchanged (the scalar x == 0 special
// case; the rational branch would flip the sign of -0). Clobbers Y4.
#define TANHZERO \
	VXORPD Y4, Y4, Y4                  \
	VCMPPD $0x00, Y4, Y7, Y4           \ // x == ±0 -> x itself
	VBLENDVPD Y4, Y7, Y0, Y0

// TANHCORE: Y0 = tanh(Y7), lane-exact replica of math.Tanh: both branches
// computed and blended on |x| < 0.625. Input Y2 = |Y7|. Clobbers Y1-Y6,
// X3; preserves Y7. Lanes must be pre-screened to |x| <= 350 and ordered.
#define TANHCORE \
	TANHEXP                            \
	TANHPOLY                           \
	VCMPPD $0x11, t625_4<>(SB), Y2, Y4 \ // z < 0.625 -> rational branch
	VBLENDVPD Y4, Y6, Y0, Y0           \
	TANHZERO

// func expShiftBlocksAVX(dst, xs []float64, shift float64) int
TEXT ·expShiftBlocksAVX(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ xs_base+24(FP), SI
	MOVQ xs_len+32(FP), CX
	VBROADCASTSD shift+48(FP), Y15
	XORQ AX, AX
exploop8:
	// Eight lanes per pass while they last: two independent exp chains in
	// flight hide the serial FMA latency that bounds a single chain.
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $8
	JLT  exploop
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y8
	VSUBPD  Y15, Y0, Y0
	VSUBPD  Y15, Y8, Y8
	VCMPPD $0x1D, explo4<>(SB), Y0, Y1
	VCMPPD $0x12, exphi4<>(SB), Y0, Y2
	VANDPD Y2, Y1, Y1
	VCMPPD $0x1D, explo4<>(SB), Y8, Y9
	VCMPPD $0x12, exphi4<>(SB), Y8, Y10
	VANDPD Y10, Y9, Y9
	VANDPD Y9, Y1, Y1
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  exploop
	EXPCOREP(Y0, Y1, Y3, X3)
	EXPCOREP(Y8, Y9, Y10, X10)
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y8, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  exploop8
exploop:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  expdone
	VMOVUPD (SI)(AX*8), Y0
	VSUBPD  Y15, Y0, Y0                 // a = x - shift
	VCMPPD $0x1D, explo4<>(SB), Y0, Y1  // a >= -700
	VCMPPD $0x12, exphi4<>(SB), Y0, Y2  // a <= 700 (false for NaN)
	VANDPD Y2, Y1, Y1
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  expdone
	EXPCORE
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  exploop8
expdone:
	MOVQ AX, ret+56(FP)
	VZEROUPPER
	RET

// func tanhBlocksAVX(dst, xs []float64) int
TEXT ·tanhBlocksAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ xs_base+24(FP), SI
	MOVQ xs_len+32(FP), CX
	XORQ AX, AX
tanhloop:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  tanhdone
	VMOVUPD (SI)(AX*8), Y7
	VANDPD absmask4<>(SB), Y7, Y2
	VCMPPD $0x12, tanhhi4<>(SB), Y2, Y1 // |x| <= 350 (false for NaN)
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  tanhdone
	TANHCORE
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  tanhloop
tanhdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func maxBlocksAVX(xs []float64) (n int, m float64)
//
// Folds four-lane maxima over the longest NaN-free prefix of whole blocks,
// returning how many elements were folded (a multiple of four) and their
// maximum. Max is order-independent for NaN-free data, so the fold equals
// the scalar scan's value — except possibly the sign of a zero maximum,
// which the softmax caller tolerates (see softmaxMax). Blocks containing a
// NaN stop the kernel; the caller rescans from there with the exact scalar
// semantics.
TEXT ·maxBlocksAVX(SB), NOSPLIT, $0-40
	MOVQ xs_base+0(FP), SI
	MOVQ xs_len+8(FP), CX
	XORQ AX, AX
	VBROADCASTSD neginf8<>(SB), Y0      // running max, seeded with -Inf
maxloop:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  maxdone
	VMOVUPD (SI)(AX*8), Y1
	VCMPPD $0x03, Y1, Y1, Y2            // unordered with itself = NaN lane
	VMOVMSKPD Y2, DX
	TESTL DX, DX
	JNE  maxdone
	VMAXPD Y1, Y0, Y0
	ADDQ $4, AX
	JMP  maxloop
maxdone:
	VEXTRACTF128 $1, Y0, X1
	VMAXPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VMAXSD X1, X0, X0
	MOVQ AX, n+24(FP)
	MOVSD X0, m+32(FP)
	VZEROUPPER
	RET

// func geluBlocksAVX(dst, xs []float64) int
TEXT ·geluBlocksAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ xs_base+24(FP), SI
	MOVQ xs_len+32(FP), CX
	XORQ AX, AX
geluloop:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  geludone
	VMOVUPD (SI)(AX*8), Y8
	VANDPD absmask4<>(SB), Y8, Y1
	VCMPPD $0x12, geluhi4<>(SB), Y1, Y1 // |x| <= 20 (false for NaN)
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  geludone
	VMULPD gelua4<>(SB), Y8, Y7         // t = c*(x + 0.044715*x*x*x),
	VMULPD Y8, Y7, Y7                   // multiply-by-multiply as in the
	VMULPD Y8, Y7, Y7                   // scalar source (no fusing)
	VADDPD Y7, Y8, Y7
	VMULPD geluc4<>(SB), Y7, Y7
	// Dispatch on the tanh branch: when all four lanes fall on one side of
	// the 0.625 threshold — the common case for a block of neighboring
	// activations — only that branch is computed.
	VANDPD absmask4<>(SB), Y7, Y2       // z = |t|
	VCMPPD $0x11, t625_4<>(SB), Y2, Y4  // z < 0.625
	VMOVMSKPD Y4, R8
	CMPL R8, $0xF
	JEQ  gelupoly
	CMPL R8, $0x0
	JEQ  geluexp
	TANHCORE                            // mixed block: both branches
	JMP  gelutanh
gelupoly:
	TANHPOLY
	VMOVUPD Y6, Y0
	TANHZERO
	JMP  gelutanh
geluexp:
	TANHEXP
gelutanh:
	VADDPD one4<>(SB), Y0, Y0           // 1 + tanh(t)
	VMULPD half4<>(SB), Y8, Y1          // 0.5*x
	VMULPD Y1, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  geluloop
geludone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET
