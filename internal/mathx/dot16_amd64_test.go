//go:build amd64

package mathx

import "testing"

// TestDotInterleavedImplsAgree exercises every implementation the runtime
// dispatch can select — SSE2, AVX, and (hardware permitting) AVX-512, in
// all fusion widths — bitwise against the portable reference, so the
// variants that dispatch skips on this machine stay covered too.
func TestDotInterleavedImplsAgree(t *testing.T) {
	rng := NewRNG(9)
	for _, n := range []int{0, 1, 3, 16, 33, 257} {
		w := make([]float64, 16*n)
		xs := make([][]float64, 4)
		for i := range w {
			w[i] = rng.Norm()
		}
		for v := range xs {
			xs[v] = make([]float64, n)
			for i := range xs[v] {
				xs[v][i] = rng.Norm()
			}
		}
		var want [4][16]float64
		for v := range xs {
			dotInterleaved16Go(&want[v], w, xs[v])
		}
		check := func(name string, got [4][16]float64, vectors int) {
			t.Helper()
			for v := 0; v < vectors; v++ {
				for k := 0; k < 16; k++ {
					if got[v][k] != want[v][k] {
						t.Fatalf("n=%d %s vector %d lane %d: %v != portable %v",
							n, name, v, k, got[v][k], want[v][k])
					}
				}
			}
		}
		var got [4][16]float64
		dotInterleaved16SSE(&got[0], w, xs[0])
		check("sse", got, 1)
		if useAVX {
			dotInterleaved16AVX(&got[0], w, xs[0])
			check("avx", got, 1)
			dotInterleaved16X2AVX(&got[0], &got[1], w, xs[0], xs[1])
			check("avx-x2", got, 2)
			dotInterleaved16X4AVX(&got[0], &got[1], &got[2], &got[3], w, xs[0], xs[1], xs[2], xs[3])
			check("avx-x4", got, 4)
		}
		if useAVX512 {
			dotInterleaved16AVX512(&got[0], w, xs[0])
			check("avx512", got, 1)
			dotInterleaved16X2AVX512(&got[0], &got[1], w, xs[0], xs[1])
			check("avx512-x2", got, 2)
			dotInterleaved16X4AVX512(&got[0], &got[1], &got[2], &got[3], w, xs[0], xs[1], xs[2], xs[3])
			check("avx512-x4", got, 4)
		}
	}
}
