//go:build amd64

#include "textflag.h"

// func dotInterleaved16AVX(dst *[16]float64, w, x []float64)
//
// Four 256-bit accumulators Y0-Y3 hold the sixteen row sums (four rows per
// register). Per element i: broadcast x[i], then for each group of four
// rows one aligned-run load, one VMULPD and one VADDPD. Each lane sees the
// exact scalar sequence s += w[i]*x[i] in ascending i order — no FMA, no
// reassociation — so results are bitwise identical to the portable loop.
TEXT ·dotInterleaved16AVX(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ w_base+8(FP), SI
	MOVQ x_base+32(FP), DX
	MOVQ x_len+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX
avxloop:
	CMPQ AX, CX
	JGE  avxdone
	VBROADCASTSD (DX)(AX*8), Y4
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD 32(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y1, Y1
	VMOVUPD 64(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y2, Y2
	VMOVUPD 96(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y3, Y3
	INCQ AX
	JMP  avxloop
avxdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dotInterleaved16SSE(dst *[16]float64, w, x []float64)
//
// Baseline-amd64 variant of the same kernel: eight 128-bit accumulators
// X0-X7 (two rows each), broadcast via UNPCKLPD. Identical per-lane
// arithmetic order.
TEXT ·dotInterleaved16SSE(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ w_base+8(FP), SI
	MOVQ x_base+32(FP), DX
	MOVQ x_len+40(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ AX, AX
sseloop:
	CMPQ AX, CX
	JGE  ssedone
	MOVSD    (DX)(AX*8), X8
	UNPCKLPD X8, X8
	MOVQ AX, BX
	SHLQ $7, BX
	MOVUPD (SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X0
	MOVUPD 16(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X1
	MOVUPD 32(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X2
	MOVUPD 48(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X3
	MOVUPD 64(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X4
	MOVUPD 80(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X5
	MOVUPD 96(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X6
	MOVUPD 112(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X7
	INCQ AX
	JMP  sseloop
ssedone:
	MOVUPD X0, (DI)
	MOVUPD X1, 16(DI)
	MOVUPD X2, 32(DI)
	MOVUPD X3, 48(DI)
	MOVUPD X4, 64(DI)
	MOVUPD X5, 80(DI)
	MOVUPD X6, 96(DI)
	MOVUPD X7, 112(DI)
	RET

// func dotInterleaved16X4AVX(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64)
//
// Four right-hand vectors against one interleaved block, walked in two
// half-row passes so the working set fits the sixteen vector registers:
// pass one accumulates rows 0-7 for all four vectors (Y0-Y3 rows 0-3 of
// x0..x3, Y4-Y7 rows 4-7), pass two rows 8-15. Each pass streams only its
// half of every element's sixteen-row run, so the block as a whole is
// loaded exactly once per call — a quarter of the per-vector traffic of
// four independent calls and half of two X2 calls. Y8-Y11 hold the four
// broadcast x values, Y12 the current half-run, Y13 the product. Lane
// arithmetic (separate VMULPD and VADDPD, ascending elements) is exactly
// dotInterleaved16AVX's, so all four results are bitwise identical to four
// independent calls.
TEXT ·dotInterleaved16X4AVX(SB), NOSPLIT, $0-152
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R9
	MOVQ dst2+16(FP), R10
	MOVQ dst3+24(FP), R11
	MOVQ w_base+32(FP), SI
	MOVQ x0_base+56(FP), DX
	MOVQ x0_len+64(FP), CX
	MOVQ x1_base+80(FP), R12
	MOVQ x2_base+104(FP), R13
	MOVQ x3_base+128(FP), R14

	// Pass one: rows 0-7.
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
x4lo:
	CMPQ AX, CX
	JGE  x4lodone
	VBROADCASTSD (DX)(AX*8), Y8
	VBROADCASTSD (R12)(AX*8), Y9
	VBROADCASTSD (R13)(AX*8), Y10
	VBROADCASTSD (R14)(AX*8), Y11
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Y12
	VMULPD  Y8, Y12, Y13
	VADDPD  Y13, Y0, Y0
	VMULPD  Y9, Y12, Y13
	VADDPD  Y13, Y1, Y1
	VMULPD  Y10, Y12, Y13
	VADDPD  Y13, Y2, Y2
	VMULPD  Y11, Y12, Y13
	VADDPD  Y13, Y3, Y3
	VMOVUPD 32(SI)(BX*1), Y12
	VMULPD  Y8, Y12, Y13
	VADDPD  Y13, Y4, Y4
	VMULPD  Y9, Y12, Y13
	VADDPD  Y13, Y5, Y5
	VMULPD  Y10, Y12, Y13
	VADDPD  Y13, Y6, Y6
	VMULPD  Y11, Y12, Y13
	VADDPD  Y13, Y7, Y7
	INCQ AX
	JMP  x4lo
x4lodone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, (R11)
	VMOVUPD Y4, 32(DI)
	VMOVUPD Y5, 32(R9)
	VMOVUPD Y6, 32(R10)
	VMOVUPD Y7, 32(R11)

	// Pass two: rows 8-15.
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
x4hi:
	CMPQ AX, CX
	JGE  x4hidone
	VBROADCASTSD (DX)(AX*8), Y8
	VBROADCASTSD (R12)(AX*8), Y9
	VBROADCASTSD (R13)(AX*8), Y10
	VBROADCASTSD (R14)(AX*8), Y11
	MOVQ AX, BX
	SHLQ $7, BX
	VMOVUPD 64(SI)(BX*1), Y12
	VMULPD  Y8, Y12, Y13
	VADDPD  Y13, Y0, Y0
	VMULPD  Y9, Y12, Y13
	VADDPD  Y13, Y1, Y1
	VMULPD  Y10, Y12, Y13
	VADDPD  Y13, Y2, Y2
	VMULPD  Y11, Y12, Y13
	VADDPD  Y13, Y3, Y3
	VMOVUPD 96(SI)(BX*1), Y12
	VMULPD  Y8, Y12, Y13
	VADDPD  Y13, Y4, Y4
	VMULPD  Y9, Y12, Y13
	VADDPD  Y13, Y5, Y5
	VMULPD  Y10, Y12, Y13
	VADDPD  Y13, Y6, Y6
	VMULPD  Y11, Y12, Y13
	VADDPD  Y13, Y7, Y7
	INCQ AX
	JMP  x4hi
x4hidone:
	VMOVUPD Y0, 64(DI)
	VMOVUPD Y1, 64(R9)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 64(R11)
	VMOVUPD Y4, 96(DI)
	VMOVUPD Y5, 96(R9)
	VMOVUPD Y6, 96(R10)
	VMOVUPD Y7, 96(R11)
	VZEROUPPER
	RET

// func dotInterleaved16AVX512(dst *[16]float64, w, x []float64)
//
// The 512-bit form of dotInterleaved16AVX: two ZMM accumulators hold the
// sixteen row sums (eight rows per register), so each element costs one
// broadcast, two aligned-run loads, two VMULPD and two VADDPD — twice the
// multiply-add lanes per cycle of the 256-bit path at the same pinned
// per-lane arithmetic (separate multiply and add, ascending elements;
// bitwise identical to the portable loop). Only AVX-512F instructions are
// used (zeroing via VPXORQ).
TEXT ·dotInterleaved16AVX512(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ w_base+8(FP), SI
	MOVQ x_base+32(FP), DX
	MOVQ x_len+40(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	XORQ AX, AX
z1loop:
	CMPQ AX, CX
	JGE  z1done
	VBROADCASTSD (DX)(AX*8), Z4
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Z5
	VMULPD  Z4, Z5, Z6
	VADDPD  Z6, Z0, Z0
	VMOVUPD 64(SI)(BX*1), Z5
	VMULPD  Z4, Z5, Z6
	VADDPD  Z6, Z1, Z1
	INCQ AX
	JMP  z1loop
z1done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VZEROUPPER
	RET

// func dotInterleaved16X2AVX512(dst0, dst1 *[16]float64, w, x0, x1 []float64)
//
// Two right-hand vectors, 512-bit: Z0-Z1 accumulate x0's sixteen sums,
// Z2-Z3 x1's; each element's two half-runs are loaded once and feed both
// vectors' multiply-add pairs. Lane arithmetic matches two independent
// calls bitwise.
TEXT ·dotInterleaved16X2AVX512(SB), NOSPLIT, $0-88
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R9
	MOVQ w_base+16(FP), SI
	MOVQ x0_base+40(FP), DX
	MOVQ x0_len+48(FP), CX
	MOVQ x1_base+64(FP), R10
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	XORQ AX, AX
z2loop:
	CMPQ AX, CX
	JGE  z2done
	VBROADCASTSD (DX)(AX*8), Z8
	VBROADCASTSD (R10)(AX*8), Z9
	MOVQ AX, BX
	SHLQ $7, BX
	VMOVUPD (SI)(BX*1), Z10
	VMULPD  Z8, Z10, Z11
	VADDPD  Z11, Z0, Z0
	VMULPD  Z9, Z10, Z11
	VADDPD  Z11, Z2, Z2
	VMOVUPD 64(SI)(BX*1), Z10
	VMULPD  Z8, Z10, Z11
	VADDPD  Z11, Z1, Z1
	VMULPD  Z9, Z10, Z11
	VADDPD  Z11, Z3, Z3
	INCQ AX
	JMP  z2loop
z2done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, (R9)
	VMOVUPD Z3, 64(R9)
	VZEROUPPER
	RET

// func dotInterleaved16X4AVX512(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64)
//
// Four right-hand vectors, 512-bit, in a single pass (no half-row split:
// the thirty-two ZMM registers hold all eight accumulators comfortably):
// Z0-Z1 accumulate x0, Z2-Z3 x1, Z4-Z5 x2, Z6-Z7 x3; Z8-Z11 hold the four
// broadcast x values, Z12 the current half-run, Z13 the product. Each
// element streams its sixteen-row run once for all four vectors, and the
// per-lane arithmetic (separate VMULPD and VADDPD, ascending elements) is
// exactly the one-vector kernel's, so all four results are bitwise
// identical to four independent calls.
TEXT ·dotInterleaved16X4AVX512(SB), NOSPLIT, $0-152
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R9
	MOVQ dst2+16(FP), R10
	MOVQ dst3+24(FP), R11
	MOVQ w_base+32(FP), SI
	MOVQ x0_base+56(FP), DX
	MOVQ x0_len+64(FP), CX
	MOVQ x1_base+80(FP), R12
	MOVQ x2_base+104(FP), R13
	MOVQ x3_base+128(FP), R14
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	XORQ AX, AX
z4loop:
	CMPQ AX, CX
	JGE  z4done
	VBROADCASTSD (DX)(AX*8), Z8
	VBROADCASTSD (R12)(AX*8), Z9
	VBROADCASTSD (R13)(AX*8), Z10
	VBROADCASTSD (R14)(AX*8), Z11
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Z12
	VMULPD  Z8, Z12, Z13
	VADDPD  Z13, Z0, Z0
	VMULPD  Z9, Z12, Z13
	VADDPD  Z13, Z2, Z2
	VMULPD  Z10, Z12, Z13
	VADDPD  Z13, Z4, Z4
	VMULPD  Z11, Z12, Z13
	VADDPD  Z13, Z6, Z6
	VMOVUPD 64(SI)(BX*1), Z12
	VMULPD  Z8, Z12, Z13
	VADDPD  Z13, Z1, Z1
	VMULPD  Z9, Z12, Z13
	VADDPD  Z13, Z3, Z3
	VMULPD  Z10, Z12, Z13
	VADDPD  Z13, Z5, Z5
	VMULPD  Z11, Z12, Z13
	VADDPD  Z13, Z7, Z7
	INCQ AX
	JMP  z4loop
z4done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, (R9)
	VMOVUPD Z3, 64(R9)
	VMOVUPD Z4, (R10)
	VMOVUPD Z5, 64(R10)
	VMOVUPD Z6, (R11)
	VMOVUPD Z7, 64(R11)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotInterleaved16X2AVX(dst0, dst1 *[16]float64, w, x0, x1 []float64)
//
// Two right-hand vectors against one interleaved block: Y0-Y3 accumulate
// x0's sixteen row sums, Y4-Y7 x1's. Per element one shared block load
// feeds both vectors' multiply-add pairs, and the eight independent
// accumulator chains hide the vector-add latency that bounds the one-vector
// kernel. Lane arithmetic (separate VMULPD and VADDPD, ascending elements)
// is exactly dotInterleaved16AVX's, so both results are bitwise identical
// to two independent calls.
TEXT ·dotInterleaved16X2AVX(SB), NOSPLIT, $0-88
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R9
	MOVQ w_base+16(FP), SI
	MOVQ x0_base+40(FP), DX
	MOVQ x0_len+48(FP), CX
	MOVQ x1_base+64(FP), R10
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
x2loop:
	CMPQ AX, CX
	JGE  x2done
	VBROADCASTSD (DX)(AX*8), Y8
	VBROADCASTSD (R10)(AX*8), Y9
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y0, Y0
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y4, Y4
	VMOVUPD 32(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y1, Y1
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y5, Y5
	VMOVUPD 64(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y2, Y2
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y6, Y6
	VMOVUPD 96(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y3, Y3
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y7, Y7
	INCQ AX
	JMP  x2loop
x2done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, (R9)
	VMOVUPD Y5, 32(R9)
	VMOVUPD Y6, 64(R9)
	VMOVUPD Y7, 96(R9)
	VZEROUPPER
	RET
