//go:build amd64

#include "textflag.h"

// func dotInterleaved16AVX(dst *[16]float64, w, x []float64)
//
// Four 256-bit accumulators Y0-Y3 hold the sixteen row sums (four rows per
// register). Per element i: broadcast x[i], then for each group of four
// rows one aligned-run load, one VMULPD and one VADDPD. Each lane sees the
// exact scalar sequence s += w[i]*x[i] in ascending i order — no FMA, no
// reassociation — so results are bitwise identical to the portable loop.
TEXT ·dotInterleaved16AVX(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ w_base+8(FP), SI
	MOVQ x_base+32(FP), DX
	MOVQ x_len+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX
avxloop:
	CMPQ AX, CX
	JGE  avxdone
	VBROADCASTSD (DX)(AX*8), Y4
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD 32(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y1, Y1
	VMOVUPD 64(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y2, Y2
	VMOVUPD 96(SI)(BX*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y3, Y3
	INCQ AX
	JMP  avxloop
avxdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dotInterleaved16SSE(dst *[16]float64, w, x []float64)
//
// Baseline-amd64 variant of the same kernel: eight 128-bit accumulators
// X0-X7 (two rows each), broadcast via UNPCKLPD. Identical per-lane
// arithmetic order.
TEXT ·dotInterleaved16SSE(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ w_base+8(FP), SI
	MOVQ x_base+32(FP), DX
	MOVQ x_len+40(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ AX, AX
sseloop:
	CMPQ AX, CX
	JGE  ssedone
	MOVSD    (DX)(AX*8), X8
	UNPCKLPD X8, X8
	MOVQ AX, BX
	SHLQ $7, BX
	MOVUPD (SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X0
	MOVUPD 16(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X1
	MOVUPD 32(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X2
	MOVUPD 48(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X3
	MOVUPD 64(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X4
	MOVUPD 80(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X5
	MOVUPD 96(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X6
	MOVUPD 112(SI)(BX*1), X9
	MULPD  X8, X9
	ADDPD  X9, X7
	INCQ AX
	JMP  sseloop
ssedone:
	MOVUPD X0, (DI)
	MOVUPD X1, 16(DI)
	MOVUPD X2, 32(DI)
	MOVUPD X3, 48(DI)
	MOVUPD X4, 64(DI)
	MOVUPD X5, 80(DI)
	MOVUPD X6, 96(DI)
	MOVUPD X7, 112(DI)
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotInterleaved16X2AVX(dst0, dst1 *[16]float64, w, x0, x1 []float64)
//
// Two right-hand vectors against one interleaved block: Y0-Y3 accumulate
// x0's sixteen row sums, Y4-Y7 x1's. Per element one shared block load
// feeds both vectors' multiply-add pairs, and the eight independent
// accumulator chains hide the vector-add latency that bounds the one-vector
// kernel. Lane arithmetic (separate VMULPD and VADDPD, ascending elements)
// is exactly dotInterleaved16AVX's, so both results are bitwise identical
// to two independent calls.
TEXT ·dotInterleaved16X2AVX(SB), NOSPLIT, $0-88
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R9
	MOVQ w_base+16(FP), SI
	MOVQ x0_base+40(FP), DX
	MOVQ x0_len+48(FP), CX
	MOVQ x1_base+64(FP), R10
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
x2loop:
	CMPQ AX, CX
	JGE  x2done
	VBROADCASTSD (DX)(AX*8), Y8
	VBROADCASTSD (R10)(AX*8), Y9
	MOVQ AX, BX
	SHLQ $7, BX            // byte offset of element i's 16-row run: i*16*8
	VMOVUPD (SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y0, Y0
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y4, Y4
	VMOVUPD 32(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y1, Y1
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y5, Y5
	VMOVUPD 64(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y2, Y2
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y6, Y6
	VMOVUPD 96(SI)(BX*1), Y10
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y3, Y3
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y7, Y7
	INCQ AX
	JMP  x2loop
x2done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, (R9)
	VMOVUPD Y5, 32(R9)
	VMOVUPD Y6, 64(R9)
	VMOVUPD Y7, 96(R9)
	VZEROUPPER
	RET
