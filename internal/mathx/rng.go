// Package mathx provides the deterministic numerical substrate shared by the
// rest of the repository: a fast seedable RNG, numerically stable reductions,
// descriptive statistics, small dense linear algebra, and power-law fitting.
//
// Everything is pure Go (stdlib only) and deterministic given a seed, which
// keeps the paper-reproduction experiments bit-for-bit repeatable.
package mathx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. It is not safe for concurrent use; clone one per goroutine
// with Split.
type RNG struct {
	state uint64
	// cached spare normal variate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r, advancing r once. The
// derived stream is decorrelated from the parent stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (mean 0, variance 1) using the
// Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormScaled returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormScaled(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical samples an index from the (unnormalized, non-negative) weight
// vector w. It panics if all weights are zero or any is negative.
func (r *RNG) Categorical(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("mathx: Categorical weight negative or NaN")
		}
		total += x
	}
	if total <= 0 {
		panic("mathx: Categorical with zero total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}
