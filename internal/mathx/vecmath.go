package mathx

import "math"

// This file is the vectorized-transcendental layer behind the prefill fast
// path: slice kernels for exp, tanh, and tanh-GELU whose results are bitwise
// identical to the scalar math.Exp / math.Tanh / GELU calls they replace.
//
// The amd64 implementations replicate, four lanes at a time, the exact
// operation sequence of the scalar code: Go's math.Exp assembly (the SLEEF
// Taylor + squaring scheme, FMA path) and the Cephes math.Tanh rational
// approximation. Every lane performs the same IEEE-754 operations in the
// same order as one scalar call, so results match bit for bit. Lanes whose
// argument falls outside a conservative "plain arithmetic" range (near
// overflow/underflow, non-finite, NaN) are detected by a vectorized screen
// and the block falls back to the scalar function, which handles every
// special case by definition. Non-amd64 builds, and amd64 CPUs without
// AVX2+FMA, always take the scalar loop.

// ExpShiftInto writes exp(xs[i]-shift) into dst[i] for every element. Each
// result is bitwise identical to math.Exp(xs[i]-shift): the vector kernel
// performs the same subtraction and the same exponential operation sequence
// per lane. dst may alias xs. A shift of 0 makes it a plain vectorized exp.
//
// The shifted form exists for softmax: both exp sweeps there subtract a
// row statistic (max, then log-sum-exp) right before exponentiating, and
// fusing the subtraction avoids a separate pass over the row.
func ExpShiftInto(dst, xs []float64, shift float64) {
	if len(dst) != len(xs) {
		panic("mathx: ExpShiftInto length mismatch")
	}
	i := 0
	for useVecMath && len(xs)-i >= 4 {
		i += expShiftBlocks(dst[i:], xs[i:], shift)
		if len(xs)-i >= 4 {
			// The kernel stopped on a block with an out-of-range lane:
			// resolve those four scalars, then resume vectorized.
			for k := 0; k < 4; k++ {
				dst[i+k] = math.Exp(xs[i+k] - shift)
			}
			i += 4
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = math.Exp(xs[i] - shift)
	}
}

// TanhInto writes math.Tanh(xs[i]) into dst[i], bitwise identical to the
// scalar calls. dst may alias xs.
func TanhInto(dst, xs []float64) {
	if len(dst) != len(xs) {
		panic("mathx: TanhInto length mismatch")
	}
	i := 0
	for useVecMath && len(xs)-i >= 4 {
		i += tanhBlocks(dst[i:], xs[i:])
		if len(xs)-i >= 4 {
			for k := 0; k < 4; k++ {
				dst[i+k] = math.Tanh(xs[i+k])
			}
			i += 4
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = math.Tanh(xs[i])
	}
}

// GELU is the tanh-approximation Gaussian Error Linear Unit used by the
// transformer (the GPT activation): 0.5·x·(1+tanh(√(2/π)·(x+0.044715·x³))).
// It is the scalar reference the vectorized GELUInto must match bitwise;
// the transformer's inference and training paths share it.
func GELU(x float64) float64 {
	const c = 0.7978845608028654
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUInto writes GELU(xs[i]) into dst[i], bitwise identical to the scalar
// calls. dst may alias xs.
func GELUInto(dst, xs []float64) {
	if len(dst) != len(xs) {
		panic("mathx: GELUInto length mismatch")
	}
	i := 0
	for useVecMath && len(xs)-i >= 4 {
		i += geluBlocks(dst[i:], xs[i:])
		if len(xs)-i >= 4 {
			for k := 0; k < 4; k++ {
				dst[i+k] = GELU(xs[i+k])
			}
			i += 4
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = GELU(xs[i])
	}
}

// SoftmaxFastInto is SoftmaxInto with the two exponential sweeps vectorized:
// it performs the exact arithmetic of SoftmaxInto (same scale, same max, the
// same exp(x−max) terms summed in the same order, the same exp(x−logsumexp)
// normalization), so the result is bitwise identical for every input. The
// softmax over each attention row is the dominant irreducible cost of
// prefill, which is why it gets its own scratch-carrying entry point: the
// caller provides scratch (len ≥ len(xs), must not overlap dst) so the
// kernel allocates nothing. dst may alias xs.
func SoftmaxFastInto(dst, xs, scratch []float64, beta float64) []float64 {
	if len(dst) != len(xs) {
		panic("mathx: SoftmaxFastInto length mismatch")
	}
	if len(xs) == 0 {
		return dst
	}
	if len(scratch) < len(xs) {
		panic("mathx: SoftmaxFastInto scratch too small")
	}
	if beta == 1 {
		// 1*x is bitwise x for every value the softmax paths see, so the
		// scale pass reduces to at most a copy.
		if &dst[0] != &xs[0] {
			copy(dst, xs)
		}
	} else {
		for i, x := range xs {
			dst[i] = beta * x
		}
	}
	m := softmaxMax(dst)
	lse := m
	if !math.IsInf(m, -1) {
		scratch = scratch[:len(xs)]
		ExpShiftInto(scratch, dst, m)
		s := 0.0
		for _, e := range scratch {
			s += e
		}
		lse = m + math.Log(s)
	}
	ExpShiftInto(dst, dst, lse)
	return dst
}

// softmaxMax returns the maximum of xs with ArgMax's scan semantics (NaN
// wins only from position zero), folding NaN-free whole blocks through the
// vector max first. The one permitted deviation from the scalar scan is the
// sign of a zero maximum (the vector fold may pick the other zero of a
// ±0 tie); the downstream softmax arithmetic is bitwise-insensitive to it,
// because exp(x−m) and the x−lse chain collapse both signed zeros to the
// same results — SoftmaxFastInto's parity tests cover the tie cases.
func softmaxMax(xs []float64) float64 {
	i := 0
	bv := math.Inf(-1)
	if useVecMath && len(xs) >= 8 {
		if n, m := maxBlocks(xs); n > 0 {
			bv, i = m, n
		}
	}
	if i == 0 {
		bv, i = xs[0], 1
	}
	for ; i < len(xs); i++ {
		if xs[i] > bv {
			bv = xs[i]
		}
	}
	return bv
}
