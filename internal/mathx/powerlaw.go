package mathx

import "math"

// PowerLawFit holds the result of fitting y = C * x^alpha by ordinary least
// squares in log-log space, as done for the paper's Figure 2 scaling plots.
type PowerLawFit struct {
	Alpha float64 // exponent (slope in log-log space)
	LogC  float64 // intercept: log(C)
	R2    float64 // coefficient of determination in log-log space
}

// C returns the multiplicative constant of the fitted law.
func (f PowerLawFit) C() float64 { return math.Exp(f.LogC) }

// Predict evaluates the fitted law at x.
func (f PowerLawFit) Predict(x float64) float64 {
	return f.C() * math.Pow(x, f.Alpha)
}

// FitPowerLaw fits y ≈ C·x^alpha by linear regression of log y on log x.
// All xs and ys must be strictly positive; the function panics otherwise.
func FitPowerLaw(xs, ys []float64) PowerLawFit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("mathx: FitPowerLaw needs >= 2 matched points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("mathx: FitPowerLaw requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept := LinearFit(lx, ly)
	// R^2 in log space.
	var ssRes, ssTot float64
	my := Mean(ly)
	for i := range lx {
		pred := intercept + slope*lx[i]
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - my) * (ly[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Alpha: slope, LogC: intercept, R2: r2}
}

// LinearFit returns the OLS slope and intercept of y on x.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("mathx: LinearFit needs >= 2 matched points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}

// AnsatzFit holds the parameters of the paper's Eq. 4 joint scaling ansatz
//
//	L(P, D) = [ (Pc/P)^(αP/αD) + Dc/D ]^αD
//
// fitted to a grid of (P, D, L) observations.
type AnsatzFit struct {
	AlphaP, AlphaD float64
	Pc, Dc         float64
	RMSE           float64 // root-mean-square error of log-loss residuals
}

// Eval evaluates the ansatz at model size p and dataset size d.
func (a AnsatzFit) Eval(p, d float64) float64 {
	inner := math.Pow(a.Pc/p, a.AlphaP/a.AlphaD) + a.Dc/d
	return math.Pow(inner, a.AlphaD)
}

// FitAnsatz fits Eq. 4 by coarse-to-fine grid search over (αP, αD, Pc, Dc),
// minimizing squared log-loss residuals. ps, ds, ls are matched observations.
// The search is bounded and deterministic; it is adequate for the small
// sweeps this repository runs (the paper's authors used similar nonlinear
// fits over a handful of decades).
func FitAnsatz(ps, ds, ls []float64) AnsatzFit {
	if len(ps) != len(ds) || len(ds) != len(ls) || len(ps) < 4 {
		panic("mathx: FitAnsatz needs >= 4 matched observations")
	}
	best := AnsatzFit{RMSE: math.Inf(1)}
	pMax := ps[0]
	dMax := ds[0]
	for i := range ps {
		pMax = math.Max(pMax, ps[i])
		dMax = math.Max(dMax, ds[i])
	}
	alphas := []float64{0.02, 0.05, 0.08, 0.12, 0.2, 0.3, 0.5, 0.76, 1.0}
	scales := []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10}
	for _, ap := range alphas {
		for _, ad := range alphas {
			for _, sp := range scales {
				for _, sd := range scales {
					cand := AnsatzFit{AlphaP: ap, AlphaD: ad, Pc: sp * pMax, Dc: sd * dMax}
					cand.RMSE = ansatzRMSE(cand, ps, ds, ls)
					if cand.RMSE < best.RMSE {
						best = cand
					}
				}
			}
		}
	}
	// One local refinement pass around the best cell.
	for pass := 0; pass < 2; pass++ {
		step := 0.5 / float64(pass+1)
		for _, fp := range []float64{1 - step/2, 1, 1 + step/2} {
			for _, fd := range []float64{1 - step/2, 1, 1 + step/2} {
				for _, fpc := range []float64{1 - step, 1, 1 + step} {
					for _, fdc := range []float64{1 - step, 1, 1 + step} {
						cand := AnsatzFit{
							AlphaP: best.AlphaP * fp, AlphaD: best.AlphaD * fd,
							Pc: best.Pc * fpc, Dc: best.Dc * fdc,
						}
						cand.RMSE = ansatzRMSE(cand, ps, ds, ls)
						if cand.RMSE < best.RMSE {
							best = cand
						}
					}
				}
			}
		}
	}
	return best
}

func ansatzRMSE(a AnsatzFit, ps, ds, ls []float64) float64 {
	var s float64
	for i := range ps {
		pred := a.Eval(ps[i], ds[i])
		if pred <= 0 || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return math.Inf(1)
		}
		d := math.Log(pred) - math.Log(ls[i])
		s += d * d
	}
	return math.Sqrt(s / float64(len(ps)))
}
