package mathx

import (
	"math"
	"testing"
)

// The vector kernels claim bitwise identity with the scalar functions; the
// tests sweep dense grids across every branch boundary of the scalar
// implementations, the special values, and randomized mixtures (specials
// embedded mid-slice, to exercise the block-fallback resume path).

// specials every kernel must pass through its scalar fallback untouched.
var vecSpecials = []float64{
	0, math.Copysign(0, -1), 1, -1,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	1e-300, -1e-300, 5e-324,
	// exp overflow/denormal-result boundaries
	709.782712893384, 709.7827128933841, -708.39, -708.4, -745.2,
	699.999, 700.0, 700.001, -699.999, -700.0, -700.001,
	// tanh branch boundaries
	0.625, 0.6249999999999999, 0.6250000000000001, -0.625,
	44.014845965556525, 44.014845965556526, 44.1, -44.1,
	19, 19.5, 350.0, 350.1, -350.0, -350.1, 20.0, 20.1, -20.0, -20.1,
}

func denseGrid(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	return xs
}

// mixed builds a slice interleaving grid values with specials at varying
// offsets so fallback blocks occur at every alignment.
func mixed(grid []float64) []float64 {
	out := make([]float64, 0, len(grid)+len(vecSpecials)*8)
	k := 0
	for i, v := range grid {
		out = append(out, v)
		if i%7 == 3 {
			out = append(out, vecSpecials[k%len(vecSpecials)])
			k++
		}
	}
	return append(out, vecSpecials...)
}

func TestExpShiftIntoMatchesMathExp(t *testing.T) {
	for _, shift := range []float64{0, 1.5, -3.25, 690, -690} {
		xs := mixed(denseGrid(-760, 760, 200001))
		dst := make([]float64, len(xs))
		ExpShiftInto(dst, xs, shift)
		for i, x := range xs {
			want := math.Exp(x - shift)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("shift %v: exp(%v-%v) = %v (bits %x), want %v (bits %x)",
					shift, x, shift, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
			}
		}
	}
	// In-place aliasing.
	xs := denseGrid(-20, 20, 1001)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = math.Exp(x)
	}
	ExpShiftInto(xs, xs, 0)
	for i := range xs {
		if math.Float64bits(xs[i]) != math.Float64bits(want[i]) {
			t.Fatalf("aliased exp mismatch at %d", i)
		}
	}
}

func TestExpShiftIntoShortAndEmpty(t *testing.T) {
	for n := 0; n < 9; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) - 3.5
		}
		dst := make([]float64, n)
		ExpShiftInto(dst, xs, 0.5)
		for i := range xs {
			want := math.Exp(xs[i] - 0.5)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, dst[i], want)
			}
		}
	}
}

func TestTanhIntoMatchesMathTanh(t *testing.T) {
	xs := mixed(denseGrid(-400, 400, 200001))
	// Dense coverage around the rational/exp switch and the ±1 cutoff.
	xs = append(xs, denseGrid(-1, 1, 50001)...)
	xs = append(xs, denseGrid(43, 45, 20001)...)
	dst := make([]float64, len(xs))
	TanhInto(dst, xs)
	for i, x := range xs {
		want := math.Tanh(x)
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Fatalf("tanh(%v) = %v (bits %x), want %v (bits %x)",
				x, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
		}
	}
}

func TestGELUIntoMatchesScalar(t *testing.T) {
	xs := mixed(denseGrid(-25, 25, 200001))
	dst := make([]float64, len(xs))
	GELUInto(dst, xs)
	for i, x := range xs {
		want := GELU(x)
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Fatalf("gelu(%v) = %v (bits %x), want %v (bits %x)",
				x, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
		}
	}
}

// TestGELUFormulaPinned pins the scalar reference to the exact expression
// the transformer activation historically used; the vector kernel and the
// inference fast paths all inherit bitwise identity from this form.
func TestGELUFormulaPinned(t *testing.T) {
	for _, x := range append(denseGrid(-9, 9, 10001), vecSpecials...) {
		const c = 0.7978845608028654
		want := 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
		got := GELU(x)
		if math.Float64bits(got) != math.Float64bits(want) &&
			!(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("GELU(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSoftmaxFastIntoMatchesSoftmaxInto(t *testing.T) {
	rng := NewRNG(41)
	scratch := make([]float64, 300)
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(257)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Norm() * 20
		}
		// Sprinkle the masked-attention sentinel and ties.
		if n > 0 && trial%3 == 0 {
			for k := 0; k < n/4; k++ {
				xs[rng.Intn(n)] = math.Inf(-1)
			}
		}
		if n > 2 && trial%5 == 0 {
			xs[0] = xs[n-1]
		}
		if n > 0 && trial%17 == 0 {
			for i := range xs {
				xs[i] = math.Inf(-1)
			}
		}
		// Signed-zero maxima in both orders: the vector max fold may pick
		// either zero of a tie, which must not change any output bit.
		if n > 9 && trial%7 == 0 {
			for i := range xs {
				xs[i] = -math.Abs(xs[i])
			}
			xs[1], xs[8] = math.Copysign(0, -1), 0
			if trial%2 == 0 {
				xs[1], xs[8] = xs[8], xs[1]
			}
		}
		beta := []float64{1, 1, 1, 0.5, 2.25}[trial%5]
		want := make([]float64, n)
		SoftmaxInto(want, xs, beta)
		got := SoftmaxFastInto(make([]float64, n), xs, scratch, beta)
		for i := range want {
			wb, gb := math.Float64bits(want[i]), math.Float64bits(got[i])
			if wb != gb && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				t.Fatalf("trial %d beta %v elem %d: got %x want %x", trial, beta, i, gb, wb)
			}
		}
		// Aliased form, as the attention rows use it.
		aliased := append([]float64(nil), xs...)
		SoftmaxFastInto(aliased, aliased, scratch, beta)
		for i := range want {
			wb, gb := math.Float64bits(want[i]), math.Float64bits(aliased[i])
			if wb != gb && !(math.IsNaN(want[i]) && math.IsNaN(aliased[i])) {
				t.Fatalf("trial %d aliased elem %d: got %x want %x", trial, i, gb, wb)
			}
		}
	}
}

func BenchmarkExpShiftInto(b *testing.B) {
	xs := denseGrid(-30, 0, 256)
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpShiftInto(dst, xs, 1.0)
	}
	b.ReportMetric(float64(b.N*len(xs))/b.Elapsed().Seconds()/1e6, "Melem/s")
}

func BenchmarkMathExpLoop(b *testing.B) {
	xs := denseGrid(-30, 0, 256)
	dst := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			dst[j] = math.Exp(x - 1.0)
		}
	}
	b.ReportMetric(float64(b.N*len(xs))/b.Elapsed().Seconds()/1e6, "Melem/s")
}

func BenchmarkGELUInto(b *testing.B) {
	xs := denseGrid(-8, 8, 256)
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GELUInto(dst, xs)
	}
	b.ReportMetric(float64(b.N*len(xs))/b.Elapsed().Seconds()/1e6, "Melem/s")
}

func BenchmarkSoftmaxFastInto(b *testing.B) {
	rng := NewRNG(7)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = rng.Norm() * 4
	}
	dst := make([]float64, len(xs))
	scratch := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxFastInto(dst, xs, scratch, 1)
	}
}

func BenchmarkSoftmaxInto(b *testing.B) {
	rng := NewRNG(7)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = rng.Norm() * 4
	}
	dst := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxInto(dst, xs, 1)
	}
}
