package mathx

import "math"

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It panics if the lengths differ and returns NaN when either series is
// constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mathx: Correlation length mismatch")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ArgMax returns the index of the largest element (first on ties) and that
// value. It panics on empty input.
func ArgMax(xs []float64) (int, float64) {
	if len(xs) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	bi, bv := 0, xs[0]
	for i, x := range xs {
		if x > bv {
			bi, bv = i, x
		}
	}
	return bi, bv
}

// ArgMin returns the index of the smallest element (first on ties) and that
// value. It panics on empty input.
func ArgMin(xs []float64) (int, float64) {
	if len(xs) == 0 {
		panic("mathx: ArgMin of empty slice")
	}
	bi, bv := 0, xs[0]
	for i, x := range xs {
		if x < bv {
			bi, bv = i, x
		}
	}
	return bi, bv
}

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. It returns -Inf
// for empty input.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	_, m := ArgMax(xs)
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of xs (with inverse temperature beta, i.e. the
// Boltzmann distribution of the paper's Eq. 8) into a new slice.
func Softmax(xs []float64, beta float64) []float64 {
	return SoftmaxInto(make([]float64, len(xs)), xs, beta)
}

// SoftmaxInto is Softmax writing into a caller-provided slice (len(dst) must
// equal len(xs)); dst may alias xs. It performs the exact arithmetic of
// Softmax, so results are bitwise identical — the allocation-free variant the
// inference hot paths reuse a scratch buffer with.
func SoftmaxInto(dst, xs []float64, beta float64) []float64 {
	if len(dst) != len(xs) {
		panic("mathx: SoftmaxInto length mismatch")
	}
	if len(xs) == 0 {
		return dst
	}
	for i, x := range xs {
		dst[i] = beta * x
	}
	lse := LogSumExp(dst)
	for i, x := range dst {
		dst[i] = math.Exp(x - lse)
	}
	return dst
}

// Clip returns x clamped into [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Logspace returns n values evenly spaced in log10 between 10^loExp and
// 10^hiExp inclusive.
func Logspace(loExp, hiExp float64, n int) []float64 {
	exps := Linspace(loExp, hiExp, n)
	out := make([]float64, n)
	for i, e := range exps {
		out[i] = math.Pow(10, e)
	}
	return out
}
