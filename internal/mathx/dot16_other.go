//go:build !amd64

package mathx

func dotInterleaved16(dst *[16]float64, w, x []float64) {
	dotInterleaved16Go(dst, w, x)
}

func dotInterleaved16x2(dst0, dst1 *[16]float64, w, x0, x1 []float64) {
	dotInterleaved16Go(dst0, w, x0)
	dotInterleaved16Go(dst1, w, x1)
}

func dotInterleaved16x4(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64) {
	dotInterleaved16Go(dst0, w, x0)
	dotInterleaved16Go(dst1, w, x1)
	dotInterleaved16Go(dst2, w, x2)
	dotInterleaved16Go(dst3, w, x3)
}
