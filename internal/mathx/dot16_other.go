//go:build !amd64

package mathx

func dotInterleaved16(dst *[16]float64, w, x []float64) {
	dotInterleaved16Go(dst, w, x)
}
