//go:build amd64

package mathx

// The vector transcendental kernels need AVX2 (256-bit integer shifts for
// the exponent reconstruction) and FMA (the scalar math.Exp assembly they
// replicate takes its FMA path exactly when the CPU has AVX and FMA, so the
// lane arithmetic only matches on such CPUs). detectAVX already verified
// OS support for ymm state.
var useVecMath = useAVX && detectAVX2FMA()

// detectAVX2FMA reports CPUID FMA (leaf 1 ECX bit 12) and AVX2 (leaf 7
// EBX bit 5).
func detectAVX2FMA() bool {
	_, _, ecx, _ := cpuid(1, 0)
	const fma = 1 << 12
	if ecx&fma == 0 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}

// Each *Blocks kernel processes xs four lanes at a time, writing exp/tanh/
// GELU results that are bitwise identical to the scalar functions, and stops
// early at the first block containing a lane outside its safe-arithmetic
// range (or with fewer than four elements left). It returns the number of
// elements completed — always a multiple of four — and the Go wrapper
// resolves the offending block with scalar calls before resuming.

//go:noescape
func expShiftBlocksAVX(dst, xs []float64, shift float64) int

//go:noescape
func tanhBlocksAVX(dst, xs []float64) int

//go:noescape
func geluBlocksAVX(dst, xs []float64) int

//go:noescape
func maxBlocksAVX(xs []float64) (n int, m float64)

func expShiftBlocks(dst, xs []float64, shift float64) int {
	return expShiftBlocksAVX(dst, xs, shift)
}

func tanhBlocks(dst, xs []float64) int { return tanhBlocksAVX(dst, xs) }

func geluBlocks(dst, xs []float64) int { return geluBlocksAVX(dst, xs) }

func maxBlocks(xs []float64) (int, float64) { return maxBlocksAVX(xs) }
