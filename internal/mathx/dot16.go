package mathx

// DotInterleaved16 computes sixteen dot products against a shared right-hand
// vector in one pass: w holds sixteen rows interleaved element-wise
// (w[i*16+k] is element i of row k, len(w) = 16*len(x)), and dst receives
// the sixteen sums.
//
// Each row's sum accumulates in strictly ascending element order with a
// separate multiply and add per term, so every result is bitwise identical
// to sixteen independent Dot calls. The interleaved layout is what makes the
// kernel fast: element i of all sixteen rows is one contiguous 128-byte run,
// and the sixteen accumulators are independent dependency chains, so the
// amd64 assembly implementation keeps four 4-lane vector accumulators in
// flight and saturates the FP ports instead of stalling on one serial
// add chain. This is the inner kernel of the transformer's compiled decode
// path; packing is done once per weight matrix at predictor-compile time.
func DotInterleaved16(dst *[16]float64, w, x []float64) {
	if len(w) != 16*len(x) {
		panic("mathx: DotInterleaved16 length mismatch")
	}
	dotInterleaved16(dst, w, x)
}

// dotInterleaved16Go is the portable implementation (and the reference the
// assembly kernels are tested against bitwise): four passes of four
// independent accumulators.
func dotInterleaved16Go(dst *[16]float64, w, x []float64) {
	for off := 0; off < 16; off += 4 {
		var s0, s1, s2, s3 float64
		for i, xv := range x {
			base := i*16 + off
			s0 += w[base] * xv
			s1 += w[base+1] * xv
			s2 += w[base+2] * xv
			s3 += w[base+3] * xv
		}
		dst[off] = s0
		dst[off+1] = s1
		dst[off+2] = s2
		dst[off+3] = s3
	}
}
