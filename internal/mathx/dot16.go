package mathx

// DotInterleaved16 computes sixteen dot products against a shared right-hand
// vector in one pass: w holds sixteen rows interleaved element-wise
// (w[i*16+k] is element i of row k, len(w) = 16*len(x)), and dst receives
// the sixteen sums.
//
// Each row's sum accumulates in strictly ascending element order with a
// separate multiply and add per term, so every result is bitwise identical
// to sixteen independent Dot calls. The interleaved layout is what makes the
// kernel fast: element i of all sixteen rows is one contiguous 128-byte run,
// and the sixteen accumulators are independent dependency chains, so the
// amd64 assembly implementation keeps four 4-lane vector accumulators in
// flight and saturates the FP ports instead of stalling on one serial
// add chain. This is the inner kernel of the transformer's compiled decode
// path; packing is done once per weight matrix at predictor-compile time.
func DotInterleaved16(dst *[16]float64, w, x []float64) {
	if len(w) != 16*len(x) {
		panic("mathx: DotInterleaved16 length mismatch")
	}
	dotInterleaved16(dst, w, x)
}

// DotInterleaved16X2 runs DotInterleaved16 for two right-hand vectors
// against the same interleaved block in one pass: dst0 receives the sixteen
// row sums against x0, dst1 against x1. Per lane the arithmetic is exactly
// DotInterleaved16's (ascending elements, separate multiply and add), so
// both results are bitwise identical to two independent calls. The fusion
// exists for the chunked prefill matrices: the per-lane accumulation order
// pins each sum to a serial add chain, so a single vector's sixteen lanes
// leave the FP adders mostly idle waiting on latency — interleaving a
// second vector's sixteen independent chains roughly doubles throughput
// while also halving weight-block traffic.
func DotInterleaved16X2(dst0, dst1 *[16]float64, w, x0, x1 []float64) {
	if len(w) != 16*len(x0) || len(x0) != len(x1) {
		panic("mathx: DotInterleaved16X2 length mismatch")
	}
	dotInterleaved16x2(dst0, dst1, w, x0, x1)
}

// DotInterleaved16X4 runs DotInterleaved16 for four right-hand vectors
// against the same interleaved block in one pass: dstN receives the sixteen
// row sums against xN. Per lane the arithmetic is exactly
// DotInterleaved16's (ascending elements, separate multiply and add), so
// all four results are bitwise identical to four independent calls.
//
// This is the batched-decode kernel: with four residual-stream rows sharing
// each weight stream, a dense projection over a decode batch loads every
// packed block from memory once per four sequences instead of once per
// sequence, which is what keeps per-step weight traffic near-flat as the
// batch grows. The amd64 implementation walks each block in two half-row
// passes so the thirty-two independent accumulator chains fit the sixteen
// vector registers; the block is still streamed exactly once per call.
func DotInterleaved16X4(dst0, dst1, dst2, dst3 *[16]float64, w, x0, x1, x2, x3 []float64) {
	if len(w) != 16*len(x0) || len(x0) != len(x1) || len(x0) != len(x2) || len(x0) != len(x3) {
		panic("mathx: DotInterleaved16X4 length mismatch")
	}
	dotInterleaved16x4(dst0, dst1, dst2, dst3, w, x0, x1, x2, x3)
}

// dotInterleaved16Go is the portable implementation (and the reference the
// assembly kernels are tested against bitwise): four passes of four
// independent accumulators.
func dotInterleaved16Go(dst *[16]float64, w, x []float64) {
	for off := 0; off < 16; off += 4 {
		var s0, s1, s2, s3 float64
		for i, xv := range x {
			base := i*16 + off
			s0 += w[base] * xv
			s1 += w[base+1] * xv
			s2 += w[base+2] * xv
			s3 += w[base+3] * xv
		}
		dst[off] = s0
		dst[off+1] = s1
		dst[off+2] = s2
		dst[off+3] = s3
	}
}
