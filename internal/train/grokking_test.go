package train

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/transformer"
)

// TestGrokkingPhases is experiment E7: on modular addition with weight
// decay, train accuracy saturates long before test accuracy rises — the
// two-phase memorize-then-generalize curve of §4. Full grokking to ~100%
// test accuracy takes 10^4-10^6 steps (Power et al); at test budget we
// assert the delayed-generalization gap at a reachable threshold.
func TestGrokkingPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-step training run")
	}
	const (
		modulus   = 13
		trainFrac = 0.5
		steps     = 2600
	)
	rng := mathx.NewRNG(13)
	eqs := corpus.ModularAddition(modulus)
	trainEqs, testEqs := corpus.SplitEquations(eqs, trainFrac, rng)

	toBatch := func(eqs []corpus.ModEquation) []Batch {
		out := make([]Batch, len(eqs))
		for i, e := range eqs {
			ids := corpus.EncodeEquation(e, modulus)
			out[i] = Batch{Input: ids[:4], Target: []int{-1, -1, -1, ids[4]}}
		}
		return out
	}
	trainB, testB := toBatch(trainEqs), toBatch(testEqs)

	model := transformer.MustNew(transformer.Config{
		Vocab: corpus.ModVocabSize(modulus), Dim: 48, Layers: 1, Heads: 4,
		Window: 8, Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(14))

	res, err := Run(model, trainB, Config{
		Steps: steps, BatchSize: 16,
		Schedule:  Constant(0.002),
		Optimizer: NewAdam(0.3), // AdamW decay: the regularizer grokking needs
		ClipNorm:  1,
		EvalEvery: 100, EvalTrain: trainB, EvalTest: testB,
		AccuracyPositions: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	trainStep, testStep, gap := GrokkingGap(res.Curve, 0.45)
	t.Logf("train>45%% at step %d, test>45%% at step %d, gap %d", trainStep, testStep, gap)
	if trainStep < 0 {
		t.Fatal("model never fit the training set")
	}
	if testStep < 0 {
		t.Fatal("test accuracy never crossed the threshold — no generalization at all")
	}
	if gap <= 0 {
		t.Errorf("no delayed generalization: train at %d, test at %d", trainStep, testStep)
	}
	// Memorization completes essentially immediately relative to
	// generalization: the gap should dominate the fit time.
	if gap < trainStep {
		t.Errorf("gap %d suspiciously small vs fit time %d", gap, trainStep)
	}
}
