// Package train implements the optimization machinery of the paper's §3/§6:
// the gradient-descent update of Eq. 16 and its standard refinements
// (momentum, Adam, AdamW weight decay), learning-rate schedules with warmup,
// gradient clipping, mini-batched training loops over next-token windows,
// and the train/test curve recording needed for the grokking experiment E7.
package train

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update at learning rate lr and clears gradients.
	Step(params []*autograd.Node, lr float64)
}

// SGD is plain stochastic gradient descent — exactly Eq. 16.
type SGD struct{}

// Step implements Optimizer.
func (SGD) Step(params []*autograd.Node, lr float64) {
	for _, p := range params {
		tensor.AddScaledInPlace(p.Value, -lr, p.Grad)
		p.ZeroGrad()
	}
}

// Momentum is SGD with heavy-ball momentum.
type Momentum struct {
	Beta float64 // typically 0.9
	vel  map[*autograd.Node]*tensor.Tensor
}

// NewMomentum returns a momentum optimizer with coefficient beta.
func NewMomentum(beta float64) *Momentum {
	return &Momentum{Beta: beta, vel: map[*autograd.Node]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (m *Momentum) Step(params []*autograd.Node, lr float64) {
	for _, p := range params {
		v := m.vel[p]
		if v == nil {
			v = tensor.New(p.Value.Shape...)
			m.vel[p] = v
		}
		for i := range v.Data {
			v.Data[i] = m.Beta*v.Data[i] + p.Grad.Data[i]
			p.Value.Data[i] -= lr * v.Data[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer; with WeightDecay > 0 it becomes AdamW
// (decoupled decay), the regularizer that §4's grokking runs rely on.
type Adam struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t int
	m map[*autograd.Node]*tensor.Tensor
	v map[*autograd.Node]*tensor.Tensor
}

// NewAdam returns Adam with the standard defaults (0.9, 0.999, 1e-8).
func NewAdam(weightDecay float64) *Adam {
	return &Adam{
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*autograd.Node]*tensor.Tensor{},
		v: map[*autograd.Node]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*autograd.Node, lr float64) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape...)
			v = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			upd := mhat / (math.Sqrt(vhat) + a.Eps)
			if a.WeightDecay > 0 {
				upd += a.WeightDecay * p.Value.Data[i]
			}
			p.Value.Data[i] -= lr * upd
		}
		p.ZeroGrad()
	}
}

// ---- Schedules ----

// Schedule maps a step index to a learning rate.
type Schedule func(step int) float64

// Constant returns lr for every step.
func Constant(lr float64) Schedule { return func(int) float64 { return lr } }

// WarmupCosine linearly warms from 0 to peak over warmup steps, then decays
// along a cosine to floor at total steps — the schedule family used for
// GPT-scale training.
func WarmupCosine(peak, floor float64, warmup, total int) Schedule {
	return func(step int) float64 {
		if step < warmup {
			return peak * float64(step+1) / float64(warmup)
		}
		if step >= total {
			return floor
		}
		frac := float64(step-warmup) / float64(total-warmup)
		return floor + 0.5*(peak-floor)*(1+math.Cos(math.Pi*frac))
	}
}

// ---- Gradient clipping ----

// ClipGradNorm rescales gradients so their global L2 norm is at most max.
// It returns the pre-clip norm.
func ClipGradNorm(params []*autograd.Node, max float64) float64 {
	total := 0.0
	for _, p := range params {
		n := tensor.Norm2(p.Grad)
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// ---- Trainer ----

// LossModel is any model exposing the Eq. 3 window loss.
type LossModel interface {
	nn.Module
	Loss(input, target []int) *autograd.Node
}

// Batch is one (input, target) window pair.
type Batch struct {
	Input, Target []int
}

// Record is one point of a training curve.
type Record struct {
	Step      int
	LR        float64
	TrainLoss float64
	TestLoss  float64 // NaN when not evaluated
	TrainAcc  float64 // NaN when not evaluated
	TestAcc   float64 // NaN when not evaluated
}

// Config controls a training run.
type Config struct {
	Steps     int
	BatchSize int // windows per optimizer step
	Schedule  Schedule
	Optimizer Optimizer
	ClipNorm  float64 // 0 disables clipping

	// EvalEvery > 0 evaluates train/test accuracy every that many steps.
	EvalEvery int
	EvalTrain []Batch
	EvalTest  []Batch

	// AccuracyPositions restricts accuracy to target positions with these
	// indices from the end (e.g. []int{0} scores only the final token, as in
	// the grokking equations task). Empty = all non-pad positions.
	AccuracyPositions []int

	// Workers is the number of data-parallel goroutines per optimizer step.
	// 0 or 1 trains sequentially (bit-identical to the classic single-thread
	// loop); values > 1 shard each step's minibatch across weight-sharing
	// model replicas and reduce the shard gradients with a deterministic
	// tree-sum before the optimizer update, so a run is reproducible for a
	// fixed (Seed, Workers) pair. A negative value selects runtime.NumCPU().
	// Models that do not implement nn.Replicable fall back to the sequential
	// path regardless of Workers.
	Workers int

	Seed uint64
}

// Result is the recorded curve of a run.
type Result struct {
	Curve []Record
}

// FinalTrainLoss returns the last recorded training loss.
func (r *Result) FinalTrainLoss() float64 {
	if len(r.Curve) == 0 {
		return math.NaN()
	}
	return r.Curve[len(r.Curve)-1].TrainLoss
}

// Run trains model on data (sampled uniformly with replacement per step)
// according to cfg and returns the loss/accuracy curve.
func Run(model LossModel, data []Batch, cfg Config) (*Result, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("train: no data")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Schedule == nil {
		cfg.Schedule = Constant(1e-2)
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = SGD{}
	}
	rng := mathx.NewRNG(cfg.Seed + 1)
	params := model.Parameters()
	// Optimizer steps mutate the weight tensors in place; models that cache
	// a compiled inference view (transformer.Model) must drop it so
	// predictors built after this run see the trained weights.
	if inv, ok := model.(interface{ InvalidateCompiled() }); ok {
		defer inv.InvalidateCompiled()
	}
	pool := newWorkerPool(model, cfg)
	res := &Result{}
	idx := make([]int, cfg.BatchSize)
	for step := 0; step < cfg.Steps; step++ {
		lr := cfg.Schedule(step)
		// Draw the step's minibatch indices up front: the RNG stream is
		// identical to the classic loop (one Intn per window, in order)
		// and independent of the worker count.
		for b := range idx {
			idx[b] = rng.Intn(len(data))
		}
		totalLoss := 0.0
		if pool == nil {
			for _, j := range idx {
				batch := data[j]
				loss := model.Loss(batch.Input, batch.Target)
				// Scale so the batch gradient is the mean over windows.
				autograd.Backward(autograd.Scale(loss, 1/float64(cfg.BatchSize)))
				totalLoss += loss.Value.Data[0]
			}
		} else {
			totalLoss = pool.step(data, idx)
		}
		if cfg.ClipNorm > 0 {
			ClipGradNorm(params, cfg.ClipNorm)
		}
		cfg.Optimizer.Step(params, lr)
		rec := Record{
			Step: step, LR: lr,
			TrainLoss: totalLoss / float64(cfg.BatchSize),
			TestLoss:  math.NaN(), TrainAcc: math.NaN(), TestAcc: math.NaN(),
		}
		if cfg.EvalEvery > 0 && (step%cfg.EvalEvery == 0 || step == cfg.Steps-1) {
			if len(cfg.EvalTrain) > 0 {
				rec.TrainAcc = Accuracy(model, cfg.EvalTrain, cfg.AccuracyPositions)
			}
			if len(cfg.EvalTest) > 0 {
				rec.TestAcc = Accuracy(model, cfg.EvalTest, cfg.AccuracyPositions)
				rec.TestLoss = MeanLoss(model, cfg.EvalTest)
			}
		}
		res.Curve = append(res.Curve, rec)
	}
	return res, nil
}

// Accuracy scores greedy next-token accuracy of model over batches,
// restricted to the given positions-from-end (nil/empty = all non-pad).
func Accuracy(model LossModel, batches []Batch, positionsFromEnd []int) float64 {
	correct, total := 0, 0
	for _, b := range batches {
		logits := logitsOf(model, b)
		if logits == nil {
			continue
		}
		consider := func(i int) bool {
			if len(positionsFromEnd) == 0 {
				return b.Target[i] >= 0
			}
			for _, k := range positionsFromEnd {
				if i == len(b.Target)-1-k {
					return b.Target[i] >= 0
				}
			}
			return false
		}
		for i := range b.Target {
			if !consider(i) {
				continue
			}
			pred, _ := mathx.ArgMax(logits.Row(i))
			if pred == b.Target[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(correct) / float64(total)
}

// MeanLoss evaluates the mean window loss over batches without updating.
func MeanLoss(model LossModel, batches []Batch) float64 {
	if len(batches) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, b := range batches {
		total += model.Loss(b.Input, b.Target).Value.Data[0]
	}
	return total / float64(len(batches))
}

// logitsOf recovers the logits tensor for a batch. Models in this
// repository implement ForwardLogits; anything else is a programming error.
func logitsOf(model LossModel, b Batch) *tensor.Tensor {
	type forwarder interface {
		ForwardLogits(input []int) *tensor.Tensor
	}
	if f, ok := model.(forwarder); ok {
		return f.ForwardLogits(b.Input)
	}
	panic("train: model does not implement ForwardLogits")
}

// GrokkingGap analyzes a curve and returns the step at which train accuracy
// first exceeds thresh, the step at which test accuracy does, and their
// difference — the delayed-generalization signature of §4. Steps are -1 when
// never reached.
func GrokkingGap(curve []Record, thresh float64) (trainStep, testStep, gap int) {
	trainStep, testStep = -1, -1
	for _, r := range curve {
		if trainStep < 0 && !math.IsNaN(r.TrainAcc) && r.TrainAcc >= thresh {
			trainStep = r.Step
		}
		if testStep < 0 && !math.IsNaN(r.TestAcc) && r.TestAcc >= thresh {
			testStep = r.Step
		}
	}
	if trainStep >= 0 && testStep >= 0 {
		return trainStep, testStep, testStep - trainStep
	}
	return trainStep, testStep, -1
}
