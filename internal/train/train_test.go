package train

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// quadModel is a 1-parameter toy LossModel: loss = (w - 3)², so all
// optimizers should drive w → 3. Input/target are ignored.
type quadModel struct {
	w *autograd.Node
}

func newQuad() *quadModel {
	return &quadModel{w: autograd.Param(tensor.FromSlice([]float64{0}, 1, 1))}
}

func (q *quadModel) Parameters() []*autograd.Node { return []*autograd.Node{q.w} }

func (q *quadModel) Loss(_, _ []int) *autograd.Node {
	d := autograd.Sub(q.w, autograd.Const(tensor.FromSlice([]float64{3}, 1, 1)))
	return autograd.MeanAll(autograd.Mul(d, d))
}

func (q *quadModel) ForwardLogits(input []int) *tensor.Tensor {
	return tensor.New(len(input), 1)
}

func TestSGDConverges(t *testing.T) {
	q := newQuad()
	res, err := Run(q, []Batch{{Input: []int{0}, Target: []int{0}}}, Config{
		Steps: 100, Schedule: Constant(0.1), Optimizer: SGD{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := q.w.Value.Data[0]; math.Abs(w-3) > 0.01 {
		t.Errorf("SGD w = %v, want 3", w)
	}
	if res.FinalTrainLoss() > 1e-3 {
		t.Errorf("final loss %v", res.FinalTrainLoss())
	}
}

func TestMomentumConverges(t *testing.T) {
	q := newQuad()
	_, err := Run(q, []Batch{{Input: []int{0}, Target: []int{0}}}, Config{
		Steps: 100, Schedule: Constant(0.05), Optimizer: NewMomentum(0.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := q.w.Value.Data[0]; math.Abs(w-3) > 0.05 {
		t.Errorf("momentum w = %v, want 3", w)
	}
}

func TestAdamConverges(t *testing.T) {
	q := newQuad()
	_, err := Run(q, []Batch{{Input: []int{0}, Target: []int{0}}}, Config{
		Steps: 400, Schedule: Constant(0.05), Optimizer: NewAdam(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := q.w.Value.Data[0]; math.Abs(w-3) > 0.05 {
		t.Errorf("adam w = %v, want 3", w)
	}
}

func TestAdamWDecayShrinksWeights(t *testing.T) {
	// With pure decay (zero gradient signal toward any minimum other than
	// w=3) the decayed run should end with smaller |w| than the undecayed.
	q1, q2 := newQuad(), newQuad()
	cfg := Config{Steps: 300, Schedule: Constant(0.05)}
	data := []Batch{{Input: []int{0}, Target: []int{0}}}
	cfg.Optimizer = NewAdam(0)
	_, _ = Run(q1, data, cfg)
	cfg.Optimizer = NewAdam(0.5)
	_, _ = Run(q2, data, cfg)
	if math.Abs(q2.w.Value.Data[0]) >= math.Abs(q1.w.Value.Data[0]) {
		t.Errorf("decay did not shrink: %v vs %v", q2.w.Value.Data[0], q1.w.Value.Data[0])
	}
}

func TestWarmupCosineShape(t *testing.T) {
	s := WarmupCosine(1.0, 0.1, 10, 100)
	if s(0) >= s(5) {
		t.Error("no warmup")
	}
	if math.Abs(s(9)-1.0) > 0.11 {
		t.Errorf("peak = %v", s(9))
	}
	if s(50) >= s(10) {
		t.Error("no decay after warmup")
	}
	if got := s(1000); got != 0.1 {
		t.Errorf("floor = %v", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := autograd.Param(tensor.FromSlice([]float64{0, 0}, 1, 2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*autograd.Node{p}, 1)
	if norm != 5 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	if got := tensor.Norm2(p.Grad); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %v", got)
	}
	// Below the cap nothing changes.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0
	ClipGradNorm([]*autograd.Node{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Error("clip modified small gradient")
	}
}

func TestRunRequiresData(t *testing.T) {
	if _, err := Run(newQuad(), nil, Config{Steps: 1}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestScheduleRecordedInCurve(t *testing.T) {
	q := newQuad()
	res, _ := Run(q, []Batch{{Input: []int{0}, Target: []int{0}}}, Config{
		Steps: 5, Schedule: Constant(0.25),
	})
	if len(res.Curve) != 5 {
		t.Fatalf("curve length %d", len(res.Curve))
	}
	for _, r := range res.Curve {
		if r.LR != 0.25 {
			t.Errorf("recorded lr = %v", r.LR)
		}
	}
}

func TestTransformerTrainsOnCycleViaRun(t *testing.T) {
	cfg := transformer.Config{Vocab: 4, Dim: 16, Layers: 1, Heads: 2, Window: 8,
		Pos: transformer.PosLearned, Act: nn.GELU}
	m := transformer.MustNew(cfg, mathx.NewRNG(1))
	in := []int{0, 1, 2, 3, 0, 1, 2, 3}
	tg := []int{1, 2, 3, 0, 1, 2, 3, 0}
	data := []Batch{{Input: in, Target: tg}}
	res, err := Run(m, data, Config{
		Steps: 120, BatchSize: 1, Schedule: Constant(0.003), Optimizer: NewAdam(0),
		ClipNorm: 1, EvalEvery: 20, EvalTrain: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Curve[len(res.Curve)-1]
	if last.TrainLoss > 0.4 {
		t.Errorf("train loss = %v after 120 adam steps", last.TrainLoss)
	}
	if !math.IsNaN(last.TrainAcc) && last.TrainAcc < 0.9 {
		t.Errorf("train accuracy = %v", last.TrainAcc)
	}
}

func TestAccuracyPositionsFromEnd(t *testing.T) {
	cfg := transformer.Config{Vocab: 9, Dim: 8, Layers: 1, Heads: 1, Window: 5,
		Pos: transformer.PosLearned, Act: nn.ReLU}
	m := transformer.MustNew(cfg, mathx.NewRNG(2))
	eq := corpus.ModEquation{A: 1, B: 2, C: 3}
	ids := corpus.EncodeEquation(eq, 7)
	in := ids[:4]
	tg := []int{-1, -1, -1, ids[4]}
	b := []Batch{{Input: in, Target: tg}}
	// Only the final position should be scored.
	acc := Accuracy(m, b, []int{0})
	if math.IsNaN(acc) {
		t.Fatal("accuracy NaN")
	}
	if acc != 0 && acc != 1 {
		t.Errorf("single-position accuracy = %v", acc)
	}
}

func TestMeanLoss(t *testing.T) {
	q := newQuad()
	ml := MeanLoss(q, []Batch{{Input: []int{0}, Target: []int{0}}})
	if math.Abs(ml-9) > 1e-12 { // (0-3)²
		t.Errorf("mean loss = %v, want 9", ml)
	}
	if !math.IsNaN(MeanLoss(q, nil)) {
		t.Error("empty batches should give NaN")
	}
}

func TestGrokkingGapAnalysis(t *testing.T) {
	curve := []Record{
		{Step: 0, TrainAcc: 0.2, TestAcc: 0.1},
		{Step: 10, TrainAcc: 0.99, TestAcc: 0.2},
		{Step: 20, TrainAcc: 1.0, TestAcc: 0.5},
		{Step: 30, TrainAcc: 1.0, TestAcc: 0.97},
	}
	trainStep, testStep, gap := GrokkingGap(curve, 0.95)
	if trainStep != 10 || testStep != 30 || gap != 20 {
		t.Errorf("gap analysis = (%d, %d, %d)", trainStep, testStep, gap)
	}
	_, _, g2 := GrokkingGap(curve[:2], 0.95)
	if g2 != -1 {
		t.Errorf("unreached threshold gap = %d, want -1", g2)
	}
}

func TestBatchGradientIsMean(t *testing.T) {
	// Two identical windows with BatchSize 2 must give the same update as
	// one window with BatchSize 1 (gradient averaged, not summed).
	mk := func(bs int) float64 {
		q := newQuad()
		data := []Batch{{Input: []int{0}, Target: []int{0}}}
		_, _ = Run(q, data, Config{Steps: 1, BatchSize: bs, Schedule: Constant(0.1)})
		return q.w.Value.Data[0]
	}
	if w1, w2 := mk(1), mk(4); math.Abs(w1-w2) > 1e-12 {
		t.Errorf("batch scaling broken: %v vs %v", w1, w2)
	}
}
