package train

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/ffnlm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/transformer"
)

// parallelFixture builds a fresh tiny transformer and synthetic window data;
// identical calls produce bitwise-identical models and data.
func parallelFixture() (*transformer.Model, []Batch) {
	model := transformer.MustNew(transformer.Config{
		Vocab: 17, Dim: 16, Layers: 2, Heads: 2, Window: 10,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(21))
	rng := mathx.NewRNG(22)
	data := make([]Batch, 24)
	for i := range data {
		in := make([]int, 10)
		tg := make([]int, 10)
		for j := range in {
			in[j] = rng.Intn(17)
			tg[j] = rng.Intn(17)
		}
		data[i] = Batch{Input: in, Target: tg}
	}
	return model, data
}

func parallelConfig(workers int) Config {
	return Config{
		Steps: 12, BatchSize: 6, Schedule: Constant(0.005),
		Optimizer: NewAdam(0), ClipNorm: 1, Seed: 3, Workers: workers,
	}
}

// legacyRun reimplements the pre-parallelism training loop verbatim (draw
// one window at a time, backprop into the model, clip, step) as the bitwise
// reference for the Workers<=1 path.
func legacyRun(model LossModel, data []Batch, cfg Config) []float64 {
	rng := mathx.NewRNG(cfg.Seed + 1)
	params := model.Parameters()
	var losses []float64
	for step := 0; step < cfg.Steps; step++ {
		lr := cfg.Schedule(step)
		totalLoss := 0.0
		for b := 0; b < cfg.BatchSize; b++ {
			batch := data[rng.Intn(len(data))]
			loss := model.Loss(batch.Input, batch.Target)
			autograd.Backward(autograd.Scale(loss, 1/float64(cfg.BatchSize)))
			totalLoss += loss.Value.Data[0]
		}
		if cfg.ClipNorm > 0 {
			ClipGradNorm(params, cfg.ClipNorm)
		}
		cfg.Optimizer.Step(params, lr)
		losses = append(losses, totalLoss/float64(cfg.BatchSize))
	}
	return losses
}

func TestWorkersOneBitMatchesLegacyLoop(t *testing.T) {
	ref, data := parallelFixture()
	refLosses := legacyRun(ref, data, parallelConfig(1))

	model, data2 := parallelFixture()
	res, err := Run(model, data2, parallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Curve {
		if r.TrainLoss != refLosses[i] {
			t.Fatalf("step %d: Workers=1 loss %v != legacy loss %v", i, r.TrainLoss, refLosses[i])
		}
	}
	refP, newP := ref.Parameters(), model.Parameters()
	for i := range refP {
		for k := range refP[i].Value.Data {
			if refP[i].Value.Data[k] != newP[i].Value.Data[k] {
				t.Fatalf("param %d[%d]: Workers=1 %v != legacy %v",
					i, k, newP[i].Value.Data[k], refP[i].Value.Data[k])
			}
		}
	}
}

func TestWorkersRunIsDeterministic(t *testing.T) {
	a, dataA := parallelFixture()
	resA, err := Run(a, dataA, parallelConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, dataB := parallelFixture()
	resB, err := Run(b, dataB, parallelConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Curve {
		if resA.Curve[i].TrainLoss != resB.Curve[i].TrainLoss {
			t.Fatalf("step %d: repeat runs with Workers=3 differ: %v vs %v",
				i, resA.Curve[i].TrainLoss, resB.Curve[i].TrainLoss)
		}
	}
	ap, bp := a.Parameters(), b.Parameters()
	for i := range ap {
		for k := range ap[i].Value.Data {
			if ap[i].Value.Data[k] != bp[i].Value.Data[k] {
				t.Fatalf("param %d[%d] differs across identical Workers=3 runs", i, k)
			}
		}
	}
}

func TestWorkersMatchSequentialLosses(t *testing.T) {
	seq, dataSeq := parallelFixture()
	resSeq, err := Run(seq, dataSeq, parallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, dataPar := parallelFixture()
		resPar, err := Run(par, dataPar, parallelConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range resSeq.Curve {
			d := math.Abs(resSeq.Curve[i].TrainLoss - resPar.Curve[i].TrainLoss)
			if d > 1e-6 {
				t.Fatalf("step %d: Workers=%d loss %v deviates from sequential %v by %g",
					i, workers, resPar.Curve[i].TrainLoss, resSeq.Curve[i].TrainLoss, d)
			}
		}
	}
}

func TestWorkersExceedingBatchAndNegative(t *testing.T) {
	// Workers far above BatchSize and the NumCPU sentinel must both run.
	for _, workers := range []int{64, -1} {
		model, data := parallelFixture()
		cfg := parallelConfig(workers)
		if _, err := Run(model, data, cfg); err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
	}
}

// TestWorkersFallbackNonReplicable: a model without nn.Replicable support
// must train on the sequential path even when Workers > 1, bit-matching the
// Workers=1 run.
func TestWorkersFallbackNonReplicable(t *testing.T) {
	build := func() (LossModel, []Batch) {
		m := ffnlm.MustNew(ffnlm.Config{Vocab: 11, Dim: 8, Context: 3, Hidden: 16},
			mathx.NewRNG(7))
		rng := mathx.NewRNG(8)
		data := make([]Batch, 12)
		for i := range data {
			in := make([]int, 6)
			tg := make([]int, 6)
			for j := range in {
				in[j] = rng.Intn(11)
				tg[j] = rng.Intn(11)
			}
			data[i] = Batch{Input: in, Target: tg}
		}
		return m, data
	}
	mkCfg := func(workers int) Config {
		return Config{Steps: 8, BatchSize: 4, Schedule: Constant(0.01),
			Optimizer: NewAdam(0), Seed: 5, Workers: workers}
	}
	seqM, seqD := build()
	resSeq, err := Run(seqM, seqD, mkCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	parM, parD := build()
	resPar, err := Run(parM, parD, mkCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resSeq.Curve {
		if resSeq.Curve[i].TrainLoss != resPar.Curve[i].TrainLoss {
			t.Fatalf("step %d: non-replicable fallback diverged: %v vs %v",
				i, resSeq.Curve[i].TrainLoss, resPar.Curve[i].TrainLoss)
		}
	}
}
