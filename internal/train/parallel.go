package train

import (
	"runtime"
	"sync"

	"repro/internal/autograd"
	"repro/internal/nn"
)

// workerPool is the data-parallel training engine: worker 0 is the model
// itself and workers 1..n-1 are weight-sharing replicas (see nn.Replicable).
// Each optimizer step shards the minibatch contiguously across workers, runs
// forward/backward per shard concurrently, and reduces the shard gradients
// with a deterministic tree-sum into the model's gradient buffers, so the
// optimizer update itself stays single-threaded and identical in form to the
// sequential path.
//
// Determinism: the reduction tree shape depends only on the worker count, and
// each shard accumulates its windows in minibatch order, so a run is bitwise
// reproducible for a fixed (Seed, Workers) pair. With one worker the shard is
// the whole minibatch and the tree is a leaf, which makes Workers<=1 bitwise
// identical to the classic sequential loop. Across different worker counts
// the losses agree only up to floating-point summation order.
type workerPool struct {
	models []LossModel        // models[0] is the caller's model
	grads  [][]*autograd.Node // parameter leaves per model, index-aligned
	batch  int                // configured minibatch size (gradient scale)
}

// newWorkerPool sizes a pool for cfg, returning nil when the sequential path
// should be used: Workers<=1 after clamping, or a model that cannot produce
// replicas.
func newWorkerPool(model LossModel, cfg Config) *workerPool {
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers <= 1 {
		return nil
	}
	rep, ok := model.(nn.Replicable)
	if !ok {
		return nil
	}
	p := &workerPool{
		models: []LossModel{model},
		grads:  [][]*autograd.Node{model.Parameters()},
		batch:  cfg.BatchSize,
	}
	for i := 1; i < workers; i++ {
		r, ok := rep.ReplicaModule().(LossModel)
		if !ok {
			return nil
		}
		rp := r.Parameters()
		if len(rp) != len(p.grads[0]) {
			panic("train: replica parameter count mismatch")
		}
		p.models = append(p.models, r)
		p.grads = append(p.grads, rp)
	}
	return p
}

// step runs one data-parallel optimizer step over the windows selected by
// idx, leaving the reduced gradient in the caller's model parameters, and
// returns the summed (unnormalized) minibatch loss.
func (p *workerPool) step(data []Batch, idx []int) float64 {
	w := len(p.models)
	chunk := (len(idx) + w - 1) / w
	losses := make([]float64, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(idx) {
			hi = len(idx)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			m := p.models[i]
			sum := 0.0
			for _, j := range idx[lo:hi] {
				batch := data[j]
				loss := m.Loss(batch.Input, batch.Target)
				autograd.Backward(autograd.Scale(loss, 1/float64(p.batch)))
				sum += loss.Value.Data[0]
			}
			losses[i] = sum
		}(i, lo, hi)
	}
	wg.Wait()
	p.reduce()
	// Shard losses are summed in worker order — deterministic for a fixed
	// worker count.
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total
}

// reduce tree-sums the replica gradients into the model's gradient buffers
// (worker 0) with a fixed binary-tree order: at stride s, worker i absorbs
// worker i+s. Afterwards every replica gradient is cleared for the next step.
func (p *workerPool) reduce() {
	w := len(p.grads)
	for stride := 1; stride < w; stride *= 2 {
		for i := 0; i+stride < w; i += 2 * stride {
			dst, src := p.grads[i], p.grads[i+stride]
			for k, d := range dst {
				if d.Grad != nil && src[k].Grad != nil {
					d.Grad.Data = addInto(d.Grad.Data, src[k].Grad.Data)
				}
			}
		}
	}
	for _, ps := range p.grads[1:] {
		for _, param := range ps {
			param.ZeroGrad()
		}
	}
}

// addInto accumulates src into dst elementwise and returns dst.
func addInto(dst, src []float64) []float64 {
	for i, v := range src {
		dst[i] += v
	}
	return dst
}
