package failpoint

import (
	"errors"
	"testing"
	"time"
)

// TestDisarmedInjectIsNil pins the production state: no plan, no fault, at
// every compiled-in site.
func TestDisarmedInjectIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("registry armed with no plan installed")
	}
	for _, s := range Sites() {
		if err := Inject(s); err != nil {
			t.Fatalf("disarmed Inject(%s) = %v, want nil", s, err)
		}
	}
}

// TestDisarmedInjectZeroAlloc pins the disarmed fast path: one atomic load,
// no allocation — the property that lets the sites ship in release builds.
func TestDisarmedInjectZeroAlloc(t *testing.T) {
	Disarm()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject(ServeStep); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Inject allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDisarmedInject(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(ServeStep); err != nil {
			b.Fatal(err)
		}
	}
}

// TestArmRejectsBadRules: typos and out-of-range probabilities must not
// silently install a no-op chaos schedule.
func TestArmRejectsBadRules(t *testing.T) {
	defer Disarm()
	if err := Arm(Plan{Rules: []Rule{{Site: "serve/nope"}}}); err == nil {
		t.Fatal("Arm accepted an unknown site")
	}
	if err := Arm(Plan{Rules: []Rule{{Site: ServeStep, Prob: 1.5}}}); err == nil {
		t.Fatal("Arm accepted probability 1.5")
	}
	if Armed() {
		t.Fatal("failed Arm left the registry armed")
	}
}

// TestErrorRule: a Prob-1 error rule fires on every hit, wraps ErrInjected,
// and the counters record it.
func TestErrorRule(t *testing.T) {
	defer Disarm()
	if err := Arm(Plan{Seed: 1, Rules: []Rule{{Site: RouterRelay, Kind: KindError, Msg: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := Inject(RouterRelay)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
		if errors.Is(err, ErrDrop) {
			t.Fatalf("error rule produced ErrDrop: %v", err)
		}
	}
	if err := Inject(RouterProbe); err != nil {
		t.Fatalf("unruled site injected: %v", err)
	}
	st := Stats()[RouterRelay]
	if st.Hits != 3 || st.Fired != 3 {
		t.Fatalf("stats = %+v, want 3 hits / 3 fired", st)
	}
}

// TestAfterAndCountSchedule: After skips leading hits, Count caps the total.
func TestAfterAndCountSchedule(t *testing.T) {
	defer Disarm()
	if err := Arm(Plan{Seed: 7, Rules: []Rule{
		{Site: HTTPGenerate, Kind: KindError, After: 2, Count: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 0; i < 10; i++ {
		if Inject(HTTPGenerate) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
}

// TestProbabilisticDeterminism: the same seed reproduces the same
// activation pattern; a different seed varies it; the empirical rate tracks
// Prob.
func TestProbabilisticDeterminism(t *testing.T) {
	defer Disarm()
	pattern := func(seed uint64) []bool {
		if err := Arm(Plan{Seed: seed, Rules: []Rule{{Site: ServeStep, Kind: KindError, Prob: 0.3}}}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Inject(ServeStep) != nil
		}
		return out
	}
	a, b, c := pattern(42), pattern(42), pattern(43)
	fires, differs := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: same seed, different activation", i)
		}
		if a[i] != c[i] {
			differs = true
		}
		if a[i] {
			fires++
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("Prob 0.3 fired %d/200 times, outside [30,90]", fires)
	}
}

// TestPanicAndDropKinds: panic rules panic with *Panicked, drop rules
// return ErrDrop.
func TestPanicAndDropKinds(t *testing.T) {
	defer Disarm()
	if err := Arm(Plan{Seed: 3, Rules: []Rule{
		{Site: ServeSample, Kind: KindPanic, Count: 1},
		{Site: HTTPStreamMid, Kind: KindDrop},
	}}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			p, ok := recover().(*Panicked)
			if !ok || p.Site != ServeSample {
				t.Fatalf("recover() = %v, want *Panicked at %s", p, ServeSample)
			}
			if !errors.Is(p, ErrInjected) {
				t.Fatal("*Panicked does not unwrap to ErrInjected")
			}
		}()
		Inject(ServeSample)
	}()
	// Count exhausted: next hit passes.
	if err := Inject(ServeSample); err != nil {
		t.Fatalf("exhausted panic rule still fired: %v", err)
	}
	if err := Inject(HTTPStreamMid); !errors.Is(err, ErrDrop) {
		t.Fatalf("drop rule returned %v, want ErrDrop", err)
	}
}

// TestLatencyRule: latency rules pause and proceed.
func TestLatencyRule(t *testing.T) {
	defer Disarm()
	if err := Arm(Plan{Seed: 5, Rules: []Rule{
		{Site: ServePrefill, Kind: KindLatency, Sleep: 20 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(ServePrefill); err != nil {
		t.Fatalf("latency rule returned %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 20ms", d)
	}
}

// TestDisarmClearsPlan: Disarm returns every site to pass-through.
func TestDisarmClearsPlan(t *testing.T) {
	if err := Arm(Plan{Seed: 1, Rules: []Rule{{Site: ServeStep, Kind: KindError}}}); err != nil {
		t.Fatal(err)
	}
	if Inject(ServeStep) == nil {
		t.Fatal("armed rule did not fire")
	}
	Disarm()
	if err := Inject(ServeStep); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
	if len(Stats()) != 0 {
		t.Fatal("Disarm left site stats behind")
	}
}
