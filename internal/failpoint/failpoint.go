// Package failpoint is the serving stack's fault-injection registry: named
// sites wired through the hot paths (HTTP handlers, the router's relay and
// probe loops, the continuous-batching loop) evaluate an installed fault
// plan and, when a rule activates, inject a failure — an error return, added
// latency, a panic, or a dropped connection — exactly where a real fault
// would surface. The chaos harness (llm-bench -chaos) and the robustness
// tests arm seeded plans and assert the stack's failure invariants: every
// request reaches exactly one terminal outcome, a panicking request never
// takes the worker down, and unaffected requests are bitwise identical to a
// fault-free run.
//
// The registry is process-global (the production call sites must not thread
// a handle through every layer) and disarmed by default. Disarmed, a site
// evaluation is one atomic load and an immediate return — no map lookup, no
// lock, no allocation — so the sites can stay compiled into release builds;
// TestDisarmedInjectZeroAlloc and BenchmarkDisarmedInject pin that cost.
//
// Plans are deterministic: every rule draws its activation decisions from
// its own splitmix64 stream seeded from (plan seed, site, rule index), so a
// pinned seed yields the same fault schedule per site-hit sequence. Under
// concurrency the interleaving of hits across requests still varies — chaos
// assertions must be invariants, not golden fault logs.
package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
)

// Site names wired through the serving stack. They live here, not in the
// packages that fire them, so chaos plans and the site inventory in
// DESIGN.md have one authoritative list (and so arming a plan can reject
// typos via Known).
const (
	// HTTPGenerate fires at POST /v1/generate entry, before the body is
	// parsed. Error → 500; Drop → the connection is severed.
	HTTPGenerate = "httpapi/generate"
	// HTTPStreamPreSSE fires at POST /v1/stream entry, before the SSE
	// headers are committed. Error → 500 (a proper status, still
	// retryable upstream).
	HTTPStreamPreSSE = "httpapi/stream/pre-sse"
	// HTTPStreamMid fires on every streamed token after the SSE headers
	// are out. Error → in-band error frame; Drop → the connection is
	// severed mid-stream (what a crashing worker looks like to a router).
	HTTPStreamMid = "httpapi/stream/mid"
	// RouterRelay fires per relay attempt in the router, before the
	// upstream request is sent. Error → the attempt fails as a transport
	// error would (passive failure detection, retry to the next replica).
	RouterRelay = "router/relay"
	// RouterProbe fires per active health probe. Error → the probe fails,
	// driving ejection without touching the worker.
	RouterProbe = "router/probe"
	// RouterRegister fires in the router's membership handlers, once per
	// /v1/register or /v1/deregister call before the body is parsed.
	// Error → 500 (the worker's join loop backs off and retries); Drop →
	// the control-plane connection is severed; Latency → a slow control
	// plane that delays lease renewal.
	RouterRegister = "router/register"
	// JoinHeartbeat fires per worker-side register/heartbeat attempt in
	// the httpapi join loop, before the HTTP call leaves the worker.
	// Error/Drop → the attempt fails and the loop retries with jittered
	// backoff; Latency → a heartbeat that almost misses its lease.
	JoinHeartbeat = "httpapi/join/heartbeat"
	// RouterPeerSend fires per outgoing peer-sync exchange (the anti-
	// entropy push-pull and the relay-on-change path), before the HTTP
	// call leaves the router. Error/Drop → the exchange fails and the next
	// anti-entropy tick retries — a partitioned peer link; Latency → a
	// slow cross-router network.
	RouterPeerSend = "router/peer-send"
	// RouterPeerRecv fires in the router's POST /v1/sync handler before
	// the peer's records are parsed. Error → 500 (the sender counts a
	// failed exchange); Drop → the connection is severed; Latency → a slow
	// merge.
	RouterPeerRecv = "router/peer-recv"
	// ServePrefill fires per chunked-prefill pass in the batching loop,
	// attributed to the request whose prompt is being ingested. Panic →
	// that request is evicted; the batch and server keep running.
	ServePrefill = "serve/prefill"
	// ServeStep fires per batched decode step. A fault here cannot be
	// attributed to one request: the whole active batch fails and the
	// loop rebuilds its predictor — the catastrophic-but-survivable path.
	ServeStep = "serve/step"
	// ServeVerify fires per speculative verification round, attributed to
	// the round's request.
	ServeVerify = "serve/verify"
	// ServeSample fires per sampled token, attributed to the sampling
	// request — the cheapest way to panic exactly one victim.
	ServeSample = "serve/sample"
)

// Sites is the inventory of every site compiled into the serving stack.
func Sites() []string {
	return []string{
		HTTPGenerate, HTTPStreamPreSSE, HTTPStreamMid,
		RouterRelay, RouterProbe, RouterRegister, JoinHeartbeat,
		RouterPeerSend, RouterPeerRecv,
		ServePrefill, ServeStep, ServeVerify, ServeSample,
	}
}

// Known reports whether name is a compiled-in site.
func Known(name string) bool {
	for _, s := range Sites() {
		if s == name {
			return true
		}
	}
	return false
}

// Kind selects what an activated rule injects.
type Kind int

const (
	// KindError makes Inject return an injected-failure error.
	KindError Kind = iota
	// KindLatency makes Inject sleep for the rule's Sleep, then proceed.
	KindLatency
	// KindPanic makes Inject panic with a *Panicked value.
	KindPanic
	// KindDrop makes Inject return ErrDrop; HTTP sites translate it into
	// severing the client connection.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the root of every injected error; errors.Is against it
// distinguishes chaos faults from organic failures in test assertions.
var ErrInjected = errors.New("failpoint: injected failure")

// ErrDrop marks a KindDrop activation. It wraps ErrInjected.
var ErrDrop = fmt.Errorf("drop connection: %w", ErrInjected)

// Panicked is the value a KindPanic activation panics with.
type Panicked struct{ Site string }

func (p *Panicked) Error() string {
	return fmt.Sprintf("failpoint: injected panic at %s: %v", p.Site, ErrInjected)
}

// Unwrap lets errors.Is(p, ErrInjected) hold when the panic value is later
// folded into an error chain.
func (p *Panicked) Unwrap() error { return ErrInjected }

// Rule schedules one fault kind at one site. The zero Prob means 1 (fire on
// every eligible hit); After skips the first hits; Count caps activations
// (0 = unlimited). Activation draws from a per-rule seeded stream, so two
// rules on the same site are independent.
type Rule struct {
	Site  string
	Kind  Kind
	Prob  float64       // activation probability per hit after After (0 → 1)
	After int           // hits to let pass untouched first
	Count int           // max activations, 0 = unlimited
	Sleep time.Duration // KindLatency pause
	Msg   string        // optional error-message override for KindError
}

// Plan is a complete fault schedule: a seed and the rules it drives.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// SiteStats is one site's observability snapshot.
type SiteStats struct {
	Hits  uint64 `json:"hits"`  // times the site was evaluated while armed
	Fired uint64 `json:"fired"` // times a rule activated
}

// rule is one armed rule plus its private activation stream and budget.
type rule struct {
	Rule
	rng   *mathx.RNG
	fired int
}

// site is the armed per-site state.
type site struct {
	mu    sync.Mutex
	rules []*rule
	hits  uint64
	fired uint64
}

var (
	// armed is the disarmed fast path: zero means no plan is installed and
	// Inject returns after this one load.
	armed atomic.Int32

	mu    sync.Mutex
	sites map[string]*site
)

// Arm installs plan, replacing any previous one. Unknown site names are
// rejected so a typo cannot silently disarm a chaos schedule.
func Arm(plan Plan) error {
	for _, r := range plan.Rules {
		if !Known(r.Site) {
			return fmt.Errorf("failpoint: unknown site %q", r.Site)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("failpoint: rule at %s: probability %v outside [0,1]", r.Site, r.Prob)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	sites = make(map[string]*site)
	for i, r := range plan.Rules {
		st := sites[r.Site]
		if st == nil {
			st = &site{}
			sites[r.Site] = st
		}
		// Per-rule stream: seed, site, and rule index mixed through the
		// same splitmix-based RNG the rest of the repo uses, so a pinned
		// plan seed reproduces every rule's decisions.
		seed := plan.Seed ^ hashString(r.Site) ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		st.rules = append(st.rules, &rule{Rule: r, rng: mathx.NewRNG(seed)})
	}
	armed.Store(int32(len(plan.Rules)))
	return nil
}

// Disarm removes the installed plan; every site returns to the single-
// atomic-load fast path.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
	sites = nil
}

// Armed reports whether a plan with at least one rule is installed.
func Armed() bool { return armed.Load() != 0 }

// Stats snapshots hit/fired counters per site that saw traffic while armed.
func Stats() map[string]SiteStats {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]SiteStats, len(sites))
	for name, st := range sites {
		st.mu.Lock()
		if st.hits > 0 {
			out[name] = SiteStats{Hits: st.hits, Fired: st.fired}
		}
		st.mu.Unlock()
	}
	return out
}

// Inject evaluates the named site against the installed plan. Disarmed (the
// production state) it is one atomic load. Armed, an activated rule injects
// its fault: KindLatency sleeps and proceeds (nil), KindError returns an
// error wrapping ErrInjected, KindDrop returns ErrDrop, and KindPanic
// panics with a *Panicked — exercising the caller's recovery path exactly
// as an organic panic would.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return inject(name)
}

func inject(name string) error {
	mu.Lock()
	st := sites[name]
	mu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	st.hits++
	var act *rule
	for _, r := range st.rules {
		if int(st.hits) <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob != 0 && r.Prob != 1 && r.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		st.fired++
		act = r
		break
	}
	st.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.Kind {
	case KindLatency:
		time.Sleep(act.Sleep)
		return nil
	case KindPanic:
		panic(&Panicked{Site: name})
	case KindDrop:
		return ErrDrop
	default:
		if act.Msg != "" {
			return fmt.Errorf("failpoint: %s at %s: %w", act.Msg, name, ErrInjected)
		}
		return fmt.Errorf("failpoint: fault at %s: %w", name, ErrInjected)
	}
}

// hashString is FNV-1a, enough to decorrelate per-site rule streams.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
