// Package icl implements the in-context-learning experiment of the paper's
// §4 and §7 (after Garg et al and Akyürek et al): a transformer is trained
// on episodes of (x, y) pairs from random linear functions and must predict
// y for a query x presented in-context, with no weight updates. Its error is
// compared against the explicit computational models the paper discusses —
// exact least squares, ridge regression, and k steps of gradient descent —
// to ask which algorithm the trained network implements.
package icl

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/transformer"
)

// Episode is one in-context regression task: K labelled examples and a
// query drawn from the same random linear function y = w·x (+ noise).
type Episode struct {
	Xs     [][]float64 // K × d context inputs
	Ys     []float64   // K context labels
	QueryX []float64   // query input
	QueryY float64     // ground-truth query label
}

// GenEpisode samples an episode with d-dimensional inputs, k context
// examples and observation noise of the given std.
func GenEpisode(d, k int, noise float64, rng *mathx.RNG) Episode {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.Norm()
	}
	ep := Episode{QueryX: make([]float64, d)}
	for j := 0; j < k; j++ {
		x := make([]float64, d)
		for i := range x {
			x[i] = rng.Norm()
		}
		ep.Xs = append(ep.Xs, x)
		ep.Ys = append(ep.Ys, mathx.Dot(w, x)+noise*rng.Norm())
	}
	for i := range ep.QueryX {
		ep.QueryX[i] = rng.Norm()
	}
	ep.QueryY = mathx.Dot(w, ep.QueryX)
	return ep
}

// ---- Computational-model baselines ----

// PredictOLS solves exact least squares on the context and applies it to
// the query. Underdetermined systems fall back to ridge with a tiny
// regularizer.
func PredictOLS(ep Episode) float64 {
	return PredictRidge(ep, 1e-8)
}

// PredictRidge fits ridge regression with strength lambda on the context.
func PredictRidge(ep Episode, lambda float64) float64 {
	k := len(ep.Xs)
	if k == 0 {
		return 0
	}
	d := len(ep.Xs[0])
	a := mathx.NewMat(k, d)
	for i, x := range ep.Xs {
		copy(a.Row(i), x)
	}
	w, err := mathx.LeastSquares(a, ep.Ys, lambda)
	if err != nil {
		return 0
	}
	return mathx.Dot(w, ep.QueryX)
}

// PredictGD runs steps of full-batch gradient descent from w = 0 at
// learning rate lr on the context squared loss, then applies the iterate.
// One step of GD is the weakest of the paper's candidate CMs.
func PredictGD(ep Episode, steps int, lr float64) float64 {
	if len(ep.Xs) == 0 {
		return 0
	}
	d := len(ep.Xs[0])
	w := make([]float64, d)
	k := float64(len(ep.Xs))
	for s := 0; s < steps; s++ {
		grad := make([]float64, d)
		for i, x := range ep.Xs {
			err := mathx.Dot(w, x) - ep.Ys[i]
			for j := range grad {
				grad[j] += 2 * err * x[j] / k
			}
		}
		for j := range w {
			w[j] -= lr * grad[j]
		}
	}
	return mathx.Dot(w, ep.QueryX)
}

// PredictZero is the trivial baseline (always 0 — the prior mean).
func PredictZero(Episode) float64 { return 0 }

// MSE evaluates a predictor over episodes.
func MSE(pred func(Episode) float64, eps []Episode) float64 {
	if len(eps) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, ep := range eps {
		d := pred(ep) - ep.QueryY
		total += d * d
	}
	return total / float64(len(eps))
}

// ---- The in-context transformer ----

// Model wraps a transformer core with continuous input/output projections.
// Episodes use the standard alternating encoding: x-tokens [x, 0, 0] and
// y-tokens [0…0, y, 1]. The model is supervised to predict y_i at every
// x_i position (where y_i is not yet visible), so each episode provides K
// training signals, and inference reads the prediction at the final
// (query) x position.
type Model struct {
	D    int // input dimension
	In   *nn.Linear
	Core *transformer.Model
	Head *nn.Linear // Dim → 1
}

// NewModel builds an in-context regressor for d-dimensional inputs with up
// to maxK context examples.
func NewModel(d, dim, layers, heads, maxK int, rng *mathx.RNG) (*Model, error) {
	core, err := transformer.New(transformer.Config{
		Vocab: 2, // token embeddings unused; minimal table
		Dim:   dim, Layers: layers, Heads: heads, Window: 2*maxK + 1,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}, rng)
	if err != nil {
		return nil, err
	}
	return &Model{
		D:    d,
		In:   nn.NewLinear(d+2, dim, true, rng),
		Core: core,
		Head: nn.NewLinear(dim, 1, true, rng),
	}, nil
}

// MustNewModel panics on error.
func MustNewModel(d, dim, layers, heads, maxK int, rng *mathx.RNG) *Model {
	m, err := NewModel(d, dim, layers, heads, maxK, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Parameters implements nn.Module. Token-embedding and vocab-output
// parameters of the core are excluded: this model bypasses them.
func (m *Model) Parameters() []*autograd.Node {
	var ps []*autograd.Node
	ps = append(ps, m.In.Parameters()...)
	ps = append(ps, m.Core.PosTable)
	for _, b := range m.Core.Blocks {
		ps = append(ps, b.Parameters()...)
	}
	ps = append(ps, m.Core.FinalNorm.Parameters()...)
	ps = append(ps, m.Head.Parameters()...)
	return ps
}

// encode renders the episode as a (2K+1)×(d+2) matrix of continuous tokens:
// x-token at even rows, y-token at odd rows, query x last.
func (m *Model) encode(ep Episode) *tensor.Tensor {
	k := len(ep.Xs)
	t := tensor.New(2*k+1, m.D+2)
	for i, x := range ep.Xs {
		copy(t.Row(2*i), x)
		yr := t.Row(2*i + 1)
		yr[m.D] = ep.Ys[i]
		yr[m.D+1] = 1
	}
	copy(t.Row(2*k), ep.QueryX)
	return t
}

// forward returns the (2K+1)×1 per-position prediction node.
func (m *Model) forward(ep Episode) *autograd.Node {
	tokens := autograd.Const(m.encode(ep))
	x := m.In.Forward(tokens)
	l := x.Value.Shape[0]
	x = autograd.Add(x, autograd.SliceRows(m.Core.PosTable, 0, l))
	h := m.Core.HiddenStates(x)
	return m.Head.Forward(h)
}

// Predict returns the model's query prediction for an episode.
func (m *Model) Predict(ep Episode) float64 {
	out := m.forward(ep)
	return out.Value.Data[out.Value.Shape[0]-1]
}

// EpisodeLoss is the mean squared error over every x position: at position
// 2i the model predicts y_i having seen (x_1, y_1, …, x_i), and at the
// final position it predicts the query label.
func (m *Model) EpisodeLoss(ep Episode) *autograd.Node {
	out := m.forward(ep)
	k := len(ep.Xs)
	preds := make([]*autograd.Node, 0, k+1)
	targets := make([]float64, 0, k+1)
	for i := 0; i < k; i++ {
		preds = append(preds, autograd.SliceRows(out, 2*i, 2*i+1))
		targets = append(targets, ep.Ys[i])
	}
	preds = append(preds, autograd.SliceRows(out, 2*k, 2*k+1))
	targets = append(targets, ep.QueryY)
	stacked := autograd.ConcatRows(preds...)
	return autograd.MSE(stacked, tensor.FromSlice(targets, len(targets), 1))
}

// Train meta-trains the model on freshly sampled episodes (d fixed, k
// sampled in [1, maxK]), averaging gradients over batch episodes per step,
// and returns the loss curve (mean per 50 steps).
func (m *Model) Train(steps, batch, maxK int, noise, lr float64, rng *mathx.RNG) []float64 {
	if batch <= 0 {
		batch = 1
	}
	opt := train.NewAdam(0)
	params := m.Parameters()
	var curve []float64
	window := 0.0
	const span = 50
	for s := 0; s < steps; s++ {
		stepLoss := 0.0
		for b := 0; b < batch; b++ {
			k := 1 + rng.Intn(maxK)
			ep := GenEpisode(m.D, k, noise, rng)
			loss := m.EpisodeLoss(ep)
			autograd.Backward(autograd.Scale(loss, 1/float64(batch)))
			stepLoss += loss.Value.Data[0]
		}
		train.ClipGradNorm(params, 1)
		opt.Step(params, lr)
		window += stepLoss / float64(batch)
		if (s+1)%span == 0 {
			curve = append(curve, window/span)
			window = 0
		}
	}
	return curve
}

// Compare evaluates the trained model against all baseline CMs on n fresh
// episodes with k context examples, returning MSEs keyed by name.
func Compare(m *Model, n, k int, noise float64, rng *mathx.RNG) map[string]float64 {
	eps := make([]Episode, n)
	for i := range eps {
		eps[i] = GenEpisode(m.D, k, noise, rng)
	}
	return map[string]float64{
		"transformer": MSE(m.Predict, eps),
		"ols":         MSE(PredictOLS, eps),
		"ridge":       MSE(func(e Episode) float64 { return PredictRidge(e, 0.1) }, eps),
		"gd1":         MSE(func(e Episode) float64 { return PredictGD(e, 1, 0.2) }, eps),
		"gd10":        MSE(func(e Episode) float64 { return PredictGD(e, 10, 0.2) }, eps),
		"zero":        MSE(PredictZero, eps),
	}
}

// FormatComparison renders a comparison map deterministically.
func FormatComparison(res map[string]float64) string {
	order := []string{"zero", "gd1", "gd10", "ridge", "ols", "transformer"}
	s := ""
	for _, k := range order {
		if v, ok := res[k]; ok {
			s += fmt.Sprintf("%-12s %.4f\n", k, v)
		}
	}
	return s
}
