package icl

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestGenEpisodeShapes(t *testing.T) {
	rng := mathx.NewRNG(1)
	ep := GenEpisode(3, 5, 0, rng)
	if len(ep.Xs) != 5 || len(ep.Ys) != 5 || len(ep.QueryX) != 3 {
		t.Fatalf("episode shapes: %d xs, %d ys, %d query", len(ep.Xs), len(ep.Ys), len(ep.QueryX))
	}
}

func TestGenEpisodeLinearConsistency(t *testing.T) {
	// With zero noise, OLS on d well-conditioned examples recovers w exactly
	// and predicts the query perfectly.
	rng := mathx.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		ep := GenEpisode(4, 8, 0, rng)
		if err := math.Abs(PredictOLS(ep) - ep.QueryY); err > 1e-6 {
			t.Fatalf("OLS error %v on noiseless determined episode", err)
		}
	}
}

func TestOLSUnderdetermined(t *testing.T) {
	rng := mathx.NewRNG(3)
	ep := GenEpisode(8, 2, 0, rng) // fewer examples than dims
	pred := PredictOLS(ep)
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Fatalf("OLS diverged: %v", pred)
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	rng := mathx.NewRNG(4)
	ep := GenEpisode(3, 6, 0, rng)
	small := PredictRidge(ep, 1e-6)
	big := PredictRidge(ep, 1e6)
	if math.Abs(big) >= math.Abs(small) && math.Abs(small) > 1e-9 {
		t.Errorf("heavy ridge did not shrink: %v vs %v", big, small)
	}
}

func TestGDApproachesOLS(t *testing.T) {
	rng := mathx.NewRNG(5)
	var gd1, gd100, ols float64
	n := 50
	for i := 0; i < n; i++ {
		ep := GenEpisode(3, 10, 0, rng)
		d1 := PredictGD(ep, 1, 0.1) - ep.QueryY
		d100 := PredictGD(ep, 100, 0.1) - ep.QueryY
		do := PredictOLS(ep) - ep.QueryY
		gd1 += d1 * d1
		gd100 += d100 * d100
		ols += do * do
	}
	if gd100 >= gd1 {
		t.Errorf("more GD steps did not help: %v vs %v", gd100/float64(n), gd1/float64(n))
	}
	if gd100/float64(n) > ols/float64(n)+0.05 {
		t.Errorf("100-step GD (%v) far from OLS (%v)", gd100/float64(n), ols/float64(n))
	}
}

func TestMSEBasics(t *testing.T) {
	rng := mathx.NewRNG(6)
	eps := []Episode{GenEpisode(2, 3, 0, rng)}
	if m := MSE(PredictZero, eps); m != eps[0].QueryY*eps[0].QueryY {
		t.Errorf("zero-predictor MSE = %v", m)
	}
	if !math.IsNaN(MSE(PredictZero, nil)) {
		t.Error("empty MSE not NaN")
	}
}

func TestModelForwardShape(t *testing.T) {
	rng := mathx.NewRNG(7)
	m := MustNewModel(2, 16, 1, 2, 8, rng)
	ep := GenEpisode(2, 4, 0, rng)
	pred := m.Predict(ep)
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Fatalf("prediction = %v", pred)
	}
}

func TestModelParametersExcludeVocab(t *testing.T) {
	rng := mathx.NewRNG(8)
	m := MustNewModel(2, 16, 1, 2, 8, rng)
	for _, p := range m.Parameters() {
		if p == m.Core.TokEmb.W {
			t.Fatal("token embedding leaked into trainable params")
		}
		if p == m.Core.Output.W {
			t.Fatal("vocab head leaked into trainable params")
		}
	}
}

// TestICLApproachesRidge is experiment E11: after meta-training, the
// transformer's in-context regression error is far below the zero and
// 1-step-GD baselines, moving toward the ridge/OLS solutions, and error
// falls as the number of in-context examples grows.
func TestICLApproachesRidge(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-training test")
	}
	rng := mathx.NewRNG(9)
	d, maxK := 1, 8
	m := MustNewModel(d, 32, 2, 2, maxK, rng)
	m.Train(1200, 8, maxK, 0.3, 0.003, rng)
	res := Compare(m, 100, 6, 0.3, mathx.NewRNG(10))
	t.Logf("\n%s", FormatComparison(res))
	if res["transformer"] >= res["zero"]*0.5 {
		t.Errorf("ICL barely beats zero: %v vs %v", res["transformer"], res["zero"])
	}
	if res["transformer"] >= res["gd1"] {
		t.Errorf("ICL worse than 1-step GD: %v vs %v", res["transformer"], res["gd1"])
	}
	// The defining in-context-learning signature: error falls with context.
	few := Compare(m, 200, 1, 0.3, mathx.NewRNG(12))["transformer"]
	many := Compare(m, 200, 7, 0.3, mathx.NewRNG(12))["transformer"]
	if many >= few {
		t.Errorf("error did not fall with context: k=1 %v, k=7 %v", few, many)
	}
}

func TestTrainReturnsCurve(t *testing.T) {
	rng := mathx.NewRNG(13)
	m := MustNewModel(2, 16, 1, 2, 4, rng)
	curve := m.Train(100, 2, 4, 0, 0.002, rng)
	if len(curve) != 2 {
		t.Fatalf("curve length %d", len(curve))
	}
	for _, v := range curve {
		if math.IsNaN(v) {
			t.Fatal("NaN in training curve")
		}
	}
}

func TestFormatComparison(t *testing.T) {
	s := FormatComparison(map[string]float64{"zero": 1, "transformer": 0.25})
	if s == "" || len(s) < 10 {
		t.Errorf("format = %q", s)
	}
}
