package probe

import (
	"math"
	"testing"
)

// TestBoardProbeBeatsBaseline is experiment E9: after next-move training,
// (a) the model predicts legal moves far above an untrained control,
// (b) occupancy probes on its activations beat the majority baseline, and
// (c) probe-guided interventions change downstream move predictions.
func TestBoardProbeBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an Othello model")
	}
	cfg := DefaultOthello()
	res, err := RunOthello(cfg)
	if err != nil {
		t.Fatal(err)
	}
	control, err := UntrainedLegalRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legal=%.3f (untrained %.3f) probe=%.3f baseline=%.3f intervention=%.3f",
		res.LegalMoveRate, control, res.ProbeAccuracy, res.MajorityBaseline, res.InterventionFlipRate)
	if res.LegalMoveRate < control+0.2 {
		t.Errorf("legal-move rate %.3f not far above untrained %.3f", res.LegalMoveRate, control)
	}
	if res.ProbeAccuracy < res.MajorityBaseline+0.05 {
		t.Errorf("probe %.3f does not beat baseline %.3f", res.ProbeAccuracy, res.MajorityBaseline)
	}
	if !math.IsNaN(res.InterventionFlipRate) && res.InterventionFlipRate == 0 {
		t.Log("note: no interventions flipped the prediction (weak causal signal at this scale)")
	}
}
