package probe

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/othello"
	"repro/internal/train"
	"repro/internal/transformer"
)

// OthelloConfig sizes the §7 world-model experiment (Li et al's
// Othello-GPT, experiment E9): a transformer is trained only on legal move
// sequences, then linear probes ask whether its activations encode the
// board state, and interventions ask whether that encoding is causally
// used.
type OthelloConfig struct {
	BoardN     int // 6 for fast runs, 8 for the paper's board
	Games      int
	ProbeGames int // held-out games for probing
	Steps      int
	Dim        int
	Layers     int
	ProbeLayer int // which block's output to probe
	Seed       uint64
}

// DefaultOthello returns test-scale settings on the 6×6 board.
func DefaultOthello() OthelloConfig {
	return OthelloConfig{
		BoardN: 6, Games: 150, ProbeGames: 40, Steps: 400,
		Dim: 48, Layers: 2, ProbeLayer: 1, Seed: 21,
	}
}

// OthelloResult summarizes the experiment.
type OthelloResult struct {
	// LegalMoveRate is the fraction of held-out positions where the model's
	// greedy next-move prediction is legal (the paper reports "only legal
	// moves with very high accuracy").
	LegalMoveRate float64
	// ProbeAccuracy is mean per-square occupancy-probe accuracy on held-out
	// positions; MajorityBaseline is the matching always-majority control.
	ProbeAccuracy    float64
	MajorityBaseline float64
	// InterventionFlipRate is the fraction of probe-guided activation edits
	// that change the model's greedy next-move prediction — evidence the
	// probed board representation is causally used.
	InterventionFlipRate float64
}

// RunOthello executes the full E9 pipeline.
func RunOthello(cfg OthelloConfig) (OthelloResult, error) {
	rng := mathx.NewRNG(cfg.Seed)
	n := cfg.BoardN
	maxMoves := n*n - 4
	games := othello.Corpus(cfg.Games+cfg.ProbeGames, n, maxMoves, rng)
	trainGames, probeGames := games[:cfg.Games], games[cfg.Games:]

	model, err := transformer.New(transformer.Config{
		Vocab: othello.VocabSize(n), Dim: cfg.Dim, Layers: cfg.Layers, Heads: 2,
		Window: maxMoves + 2, Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(cfg.Seed+1))
	if err != nil {
		return OthelloResult{}, err
	}
	var batches []train.Batch
	for _, g := range trainGames {
		ids := othello.EncodeMoves(g)
		if len(ids) < 2 {
			continue
		}
		batches = append(batches, train.Batch{Input: ids[:len(ids)-1], Target: ids[1:]})
	}
	if _, err := train.Run(model, batches, train.Config{
		Steps: cfg.Steps, BatchSize: 4,
		Schedule:  train.WarmupCosine(0.003, 0.0003, cfg.Steps/10, cfg.Steps),
		Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: cfg.Seed,
	}); err != nil {
		return OthelloResult{}, err
	}

	res := OthelloResult{}

	// Legal-move rate and probe-data collection on held-out games.
	type sampleRow struct {
		act   []float64
		cells []othello.Cell
	}
	var rows []sampleRow
	legal, positions := 0, 0
	for _, g := range probeGames {
		ids := othello.EncodeMoves(g)
		if len(ids) < 2 {
			continue
		}
		var tr transformer.Trace
		logits := model.Forward(ids[:len(ids)-1], &tr)
		acts := tr.Layers[cfg.ProbeLayer].Output
		for i := 0; i < len(ids)-1 && i < len(g.States); i++ {
			pred, _ := mathx.ArgMax(logits.Value.Row(i))
			if pred < n*n && g.States[i].IsLegal(othello.Move(pred)) {
				legal++
			}
			positions++
			act := append([]float64(nil), acts.Row(i)...)
			rows = append(rows, sampleRow{act: act, cells: append([]othello.Cell(nil), g.States[i].Cells...)})
		}
	}
	if positions == 0 {
		return OthelloResult{}, fmt.Errorf("probe: no held-out positions")
	}
	res.LegalMoveRate = float64(legal) / float64(positions)

	// Per-square occupancy probes (3 classes: empty/black/white), trained on
	// the first 70% of collected rows and tested on the rest.
	cut := len(rows) * 7 / 10
	trainRows, testRows := rows[:cut], rows[cut:]
	var accSum, baseSum float64
	squares := 0
	probes := make([]*Linear, n*n)
	for s := 0; s < n*n; s++ {
		xs := make([][]float64, len(trainRows))
		ys := make([]int, len(trainRows))
		for i, r := range trainRows {
			xs[i] = r.act
			ys[i] = int(r.cells[s])
		}
		p, err := TrainLinear(xs, ys, 3, 1.0)
		if err != nil {
			continue
		}
		probes[s] = p
		txs := make([][]float64, len(testRows))
		tys := make([]int, len(testRows))
		for i, r := range testRows {
			txs[i] = r.act
			tys[i] = int(r.cells[s])
		}
		accSum += p.Accuracy(txs, tys)
		baseSum += MajorityBaseline(tys, 3)
		squares++
	}
	if squares == 0 {
		return OthelloResult{}, fmt.Errorf("probe: no square probes trained")
	}
	res.ProbeAccuracy = accSum / float64(squares)
	res.MajorityBaseline = baseSum / float64(squares)

	// Interventions: flip one square's probed class in the layer-k residual
	// stream of the final position and check the downstream prediction moves.
	flips, tried := 0, 0
	for _, g := range probeGames {
		if tried >= 30 {
			break
		}
		ids := othello.EncodeMoves(g)
		if len(ids) < 4 {
			continue
		}
		var tr transformer.Trace
		base := model.Forward(ids[:len(ids)-1], &tr)
		last := len(ids) - 2
		basePred, _ := mathx.ArgMax(base.Value.Row(last))
		acts := tr.Layers[cfg.ProbeLayer].Output.Clone()
		// Pick the first square whose probe is confident and flip it.
		for s := 0; s < n*n; s++ {
			p := probes[s]
			if p == nil {
				continue
			}
			cur := p.Predict(acts.Row(last))
			target := (cur + 1) % 3
			edited := p.Intervene(acts.Row(last), target, 2.0)
			if p.Predict(edited) != target {
				continue
			}
			mod := acts.Clone()
			copy(mod.Row(last), edited)
			out := model.InferFromLayer(mod, cfg.ProbeLayer+1)
			newPred, _ := mathx.ArgMax(out.Row(last))
			tried++
			if newPred != basePred {
				flips++
			}
			break
		}
	}
	if tried > 0 {
		res.InterventionFlipRate = float64(flips) / float64(tried)
	} else {
		res.InterventionFlipRate = math.NaN()
	}
	return res, nil
}

// UntrainedLegalRate measures the greedy legal-move rate of an untrained
// model on the same distribution — the control for E9.
func UntrainedLegalRate(cfg OthelloConfig) (float64, error) {
	rng := mathx.NewRNG(cfg.Seed + 99)
	n := cfg.BoardN
	maxMoves := n*n - 4
	games := othello.Corpus(cfg.ProbeGames, n, maxMoves, rng)
	model, err := transformer.New(transformer.Config{
		Vocab: othello.VocabSize(n), Dim: cfg.Dim, Layers: cfg.Layers, Heads: 2,
		Window: maxMoves + 2, Pos: transformer.PosLearned, Act: nn.GELU,
	}, mathx.NewRNG(cfg.Seed+100))
	if err != nil {
		return 0, err
	}
	legal, positions := 0, 0
	for _, g := range games {
		ids := othello.EncodeMoves(g)
		if len(ids) < 2 {
			continue
		}
		logits := model.ForwardLogits(ids[:len(ids)-1])
		for i := 0; i < len(ids)-1 && i < len(g.States); i++ {
			pred, _ := mathx.ArgMax(logits.Row(i))
			if pred < n*n && g.States[i].IsLegal(othello.Move(pred)) {
				legal++
			}
			positions++
		}
	}
	if positions == 0 {
		return 0, fmt.Errorf("probe: no positions")
	}
	return float64(legal) / float64(positions), nil
}
