package probe

import (
	"math"
	"testing"

	"repro/internal/grammar"
	"repro/internal/mathx"
)

func TestLinearProbeSeparable(t *testing.T) {
	// Two well-separated Gaussian blobs.
	rng := mathx.NewRNG(1)
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		c := i % 2
		mu := float64(c*6 - 3)
		xs = append(xs, []float64{mu + rng.Norm(), mu + rng.Norm()})
		ys = append(ys, c)
	}
	p, err := TrainLinear(xs, ys, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := p.Accuracy(xs, ys); acc < 0.97 {
		t.Errorf("separable accuracy = %v", acc)
	}
}

func TestLinearProbeMultiClass(t *testing.T) {
	rng := mathx.NewRNG(2)
	centers := [][]float64{{5, 0}, {0, 5}, {-5, -5}}
	var xs [][]float64
	var ys []int
	for i := 0; i < 300; i++ {
		c := i % 3
		xs = append(xs, []float64{centers[c][0] + rng.Norm(), centers[c][1] + rng.Norm()})
		ys = append(ys, c)
	}
	p, err := TrainLinear(xs, ys, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := p.Accuracy(xs, ys); acc < 0.95 {
		t.Errorf("3-class accuracy = %v", acc)
	}
}

func TestLinearProbeRejectsBadInput(t *testing.T) {
	if _, err := TrainLinear(nil, nil, 2, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := TrainLinear([][]float64{{1, 2}, {1}}, []int{0, 1}, 2, 0); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestMajorityBaseline(t *testing.T) {
	ys := []int{0, 0, 0, 1, 2}
	if b := MajorityBaseline(ys, 3); math.Abs(b-0.6) > 1e-12 {
		t.Errorf("baseline = %v", b)
	}
	if !math.IsNaN(MajorityBaseline(nil, 2)) {
		t.Error("empty baseline not NaN")
	}
}

func TestProbeBeatsBaselineOnStructuredData(t *testing.T) {
	// Labels depend linearly on a hidden direction: a probe must beat the
	// majority baseline by a wide margin.
	rng := mathx.NewRNG(3)
	var xs [][]float64
	var ys []int
	for i := 0; i < 400; i++ {
		x := []float64{rng.Norm(), rng.Norm(), rng.Norm()}
		y := 0
		if x[0]+0.5*x[1] > 0 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	p, _ := TrainLinear(xs, ys, 2, 0.01)
	acc := p.Accuracy(xs, ys)
	base := MajorityBaseline(ys, 2)
	if acc < base+0.3 {
		t.Errorf("probe %v vs baseline %v", acc, base)
	}
}

// syntheticSentences builds structural-probe data where an exact solution
// exists: the tree distance between two leaves equals the squared Euclidean
// distance between their root-path edge-indicator vectors (indicator entries
// are 0/1, so |a-b| = (a-b)² per coordinate). Noise dimensions are appended
// so the probe must isolate the signal subspace.
func syntheticSentences(n int, rng *mathx.RNG) []Sentence {
	g := grammar.Arithmetic()
	const signalDim, noiseDim = 20, 8
	var out []Sentence
	for len(out) < n {
		tr := g.Generate(rng, 8)
		leaves := tr.Leaves()
		if len(leaves) < 3 || len(leaves) > 9 {
			continue
		}
		d := grammar.LeafDistances(tr)
		paths := edgePaths(tr)
		if len(paths) != len(leaves) {
			continue
		}
		ok := true
		emb := make([][]float64, len(leaves))
		for i, path := range paths {
			v := make([]float64, signalDim+noiseDim)
			for _, e := range path {
				if e >= signalDim {
					ok = false
					break
				}
				v[e] = 1
			}
			for j := signalDim; j < signalDim+noiseDim; j++ {
				v[j] = rng.Norm() * 0.05
			}
			emb[i] = v
		}
		if !ok {
			continue
		}
		out = append(out, Sentence{Embeddings: emb, Distances: d})
	}
	return out
}

// edgePaths returns, for each leaf in order, the ids of the edges on its
// root path.
func edgePaths(t *grammar.Tree) [][]int {
	var paths [][]int
	edge := 0
	var walk func(n *grammar.Tree, acc []int)
	walk = func(n *grammar.Tree, acc []int) {
		if len(n.Children) == 0 {
			paths = append(paths, append([]int(nil), acc...))
			return
		}
		for _, c := range n.Children {
			id := edge
			edge++
			walk(c, append(acc, id))
		}
	}
	walk(t, nil)
	return paths
}

func TestStructuralProbeLearnsDistances(t *testing.T) {
	rng := mathx.NewRNG(4)
	data := syntheticSentences(30, rng)
	s, err := TrainStructural(data, 4, 400, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	corr, rmse := s.Evaluate(data)
	if corr < 0.55 {
		t.Errorf("distance correlation = %v, want > 0.55", corr)
	}
	if math.IsNaN(rmse) {
		t.Error("rmse NaN")
	}
}

// TestLowRankSufficient is experiment E10's shape: a low-rank projection
// achieves correlation close to a higher-rank one.
func TestLowRankSufficient(t *testing.T) {
	rng := mathx.NewRNG(5)
	data := syntheticSentences(30, rng)
	low, err := TrainStructural(data, 3, 150, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := TrainStructural(data, 12, 150, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := low.Evaluate(data)
	ch, _ := high.Evaluate(data)
	if cl < ch-0.25 {
		t.Errorf("rank-3 corr %v far below rank-12 corr %v", cl, ch)
	}
}

func TestStructuralProbeErrors(t *testing.T) {
	if _, err := TrainStructural(nil, 2, 10, 0.1, mathx.NewRNG(1)); err == nil {
		t.Error("empty data accepted")
	}
}

func TestInterveneFlipsProbe(t *testing.T) {
	rng := mathx.NewRNG(6)
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		c := i % 2
		mu := float64(c*4 - 2)
		xs = append(xs, []float64{mu + 0.3*rng.Norm(), 0.3 * rng.Norm()})
		ys = append(ys, c)
	}
	p, _ := TrainLinear(xs, ys, 2, 0.05)
	// Take a class-0 point and push it to class 1.
	x := xs[0]
	if p.Predict(x) != 0 {
		t.Skip("probe misclassifies chosen point")
	}
	edited := p.Intervene(x, 1, 1.5)
	if p.Predict(edited) != 1 {
		t.Errorf("intervention failed: scores %v -> %v", p.Scores(x), p.Scores(edited))
	}
	// Original unchanged (defensive copy).
	if x[0] != xs[0][0] {
		t.Error("intervention mutated input")
	}
	// No-op when already at the target class.
	same := p.Intervene(edited, 1, 1.5)
	for i := range same {
		if same[i] != edited[i] {
			t.Error("intervene changed an already-correct point")
		}
	}
}
