// Package probe implements the probing methodology of the paper's §7:
// linear/ridge classifiers trained to predict postulated targets from model
// activations, the Hewitt-Manning structural probe that recovers parse-tree
// distances from a low-rank projection of embeddings, and activation
// interventions that test whether probed structure is causally used.
package probe

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Linear is a multi-class ridge-regression probe: one-vs-all linear readout
// with argmax decision. Following §7, the probe model is deliberately
// simple so that success reflects structure in the representation, not
// probe capacity.
type Linear struct {
	Classes int
	W       *mathx.Mat // Classes × (dim+1), last column is the bias
}

// TrainLinear fits a probe from activation vectors xs to integer labels ys
// in [0, classes) with ridge strength ridge.
func TrainLinear(xs [][]float64, ys []int, classes int, ridge float64) (*Linear, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("probe: need matched non-empty xs/ys (%d, %d)", len(xs), len(ys))
	}
	dim := len(xs[0])
	design := mathx.NewMat(len(xs), dim+1)
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("probe: inconsistent activation dims")
		}
		copy(design.Row(i), x)
		design.Set(i, dim, 1) // bias feature
	}
	p := &Linear{Classes: classes, W: mathx.NewMat(classes, dim+1)}
	for c := 0; c < classes; c++ {
		target := make([]float64, len(ys))
		for i, y := range ys {
			if y == c {
				target[i] = 1
			}
		}
		w, err := mathx.LeastSquares(design, target, ridge)
		if err != nil {
			return nil, fmt.Errorf("probe: class %d: %w", c, err)
		}
		copy(p.W.Row(c), w)
	}
	return p, nil
}

// Scores returns the per-class scores for activation x.
func (p *Linear) Scores(x []float64) []float64 {
	s := make([]float64, p.Classes)
	for c := 0; c < p.Classes; c++ {
		row := p.W.Row(c)
		acc := row[len(row)-1]
		for i, xi := range x {
			acc += row[i] * xi
		}
		s[c] = acc
	}
	return s
}

// Predict returns the argmax class for activation x.
func (p *Linear) Predict(x []float64) int {
	i, _ := mathx.ArgMax(p.Scores(x))
	return i
}

// Accuracy scores the probe on a labelled set.
func (p *Linear) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	correct := 0
	for i, x := range xs {
		if p.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// MajorityBaseline returns the accuracy of always predicting the most
// frequent label — the control every probe must beat (§7's caution about
// probes picking up trivial signal).
func MajorityBaseline(ys []int, classes int) float64 {
	if len(ys) == 0 {
		return math.NaN()
	}
	counts := make([]float64, classes)
	for _, y := range ys {
		counts[y]++
	}
	_, m := mathx.ArgMax(counts)
	return m / float64(len(ys))
}

// ---- Structural probe (parse-tree distances) ----

// Structural is the Hewitt-Manning probe: a rank-k projection P such that
// ||P(u_i - u_j)||² approximates the parse-tree distance between words i
// and j. The paper reports rank ≈ 50 suffices at d ≈ 1000 for BERT.
type Structural struct {
	P *mathx.Mat // k × dim
}

// Sentence is one structural-probe training item: per-word embeddings and
// the gold pairwise tree distances.
type Sentence struct {
	Embeddings [][]float64 // L × dim
	Distances  [][]int     // L × L tree distances
}

// TrainStructural learns a rank-k projection by gradient descent on the
// squared-distance regression loss. iters and lr control the optimizer.
func TrainStructural(data []Sentence, rank, iters int, lr float64, rng *mathx.RNG) (*Structural, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("probe: no sentences")
	}
	dim := len(data[0].Embeddings[0])
	p := mathx.NewMat(rank, dim)
	for i := range p.Data {
		p.Data[i] = rng.Norm() / math.Sqrt(float64(dim))
	}
	grad := mathx.NewMat(rank, dim)
	for it := 0; it < iters; it++ {
		for i := range grad.Data {
			grad.Data[i] = 0
		}
		count := 0
		for _, s := range data {
			l := len(s.Embeddings)
			for i := 0; i < l; i++ {
				for j := i + 1; j < l; j++ {
					diff := make([]float64, dim)
					for d := 0; d < dim; d++ {
						diff[d] = s.Embeddings[i][d] - s.Embeddings[j][d]
					}
					proj := mathx.MatVec(p, diff)
					pred := mathx.Dot(proj, proj)
					target := float64(s.Distances[i][j])
					// d(pred)/dP = 2 * proj ⊗ diff; loss = (pred - target)².
					coef := 4 * (pred - target)
					for r := 0; r < rank; r++ {
						prow := grad.Row(r)
						pr := coef * proj[r]
						for d := 0; d < dim; d++ {
							prow[d] += pr * diff[d]
						}
					}
					count++
				}
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("probe: no word pairs")
		}
		scale := lr / float64(count)
		// Clip the update norm: the quartic loss surface explodes for large
		// initial distances, and a bounded step keeps descent stable.
		norm := 0.0
		for _, g := range grad.Data {
			norm += scale * g * scale * g
		}
		norm = math.Sqrt(norm)
		if norm > 1 {
			scale /= norm
		}
		for i := range p.Data {
			p.Data[i] -= scale * grad.Data[i]
		}
	}
	return &Structural{P: p}, nil
}

// Distance returns the probe's predicted squared distance between two
// embeddings.
func (s *Structural) Distance(a, b []float64) float64 {
	diff := make([]float64, len(a))
	for i := range a {
		diff[i] = a[i] - b[i]
	}
	proj := mathx.MatVec(s.P, diff)
	return mathx.Dot(proj, proj)
}

// Evaluate returns the Pearson correlation between predicted and gold
// distances over all word pairs, plus the root-mean-square error.
func (s *Structural) Evaluate(data []Sentence) (corr, rmse float64) {
	var preds, golds []float64
	for _, snt := range data {
		l := len(snt.Embeddings)
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				preds = append(preds, s.Distance(snt.Embeddings[i], snt.Embeddings[j]))
				golds = append(golds, float64(snt.Distances[i][j]))
			}
		}
	}
	if len(preds) == 0 {
		return math.NaN(), math.NaN()
	}
	corr = mathx.Correlation(preds, golds)
	se := 0.0
	for i := range preds {
		d := preds[i] - golds[i]
		se += d * d
	}
	rmse = math.Sqrt(se / float64(len(preds)))
	return corr, rmse
}

// ---- Interventions ----

// Intervene shifts activation x along the probe's decision direction so the
// probe flips from its current prediction to target, returning the edited
// copy. strength scales the step. This is the §7 Othello-GPT manipulation:
// change the representation minimally, then check downstream behaviour.
func (p *Linear) Intervene(x []float64, target int, strength float64) []float64 {
	cur := p.Predict(x)
	out := append([]float64(nil), x...)
	if cur == target {
		return out
	}
	// Move along (w_target - w_cur), the direction that raises the target
	// score fastest while lowering the current one.
	wt := p.W.Row(target)
	wc := p.W.Row(cur)
	dir := make([]float64, len(x))
	for i := range x {
		dir[i] = wt[i] - wc[i]
	}
	n := mathx.Norm2(dir)
	if n == 0 {
		return out
	}
	// Step just far enough to cross the decision boundary, times strength.
	gap := p.Scores(x)[cur] - p.Scores(x)[target]
	step := strength * (gap/(n*n) + 1e-6)
	for i := range out {
		out[i] += step * dir[i]
	}
	return out
}
