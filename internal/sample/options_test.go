package sample

import "testing"

func TestBuildOptionsDefaults(t *testing.T) {
	o := BuildOptions()
	if o.MaxTokens != DefaultMaxTokens {
		t.Errorf("MaxTokens = %d, want %d", o.MaxTokens, DefaultMaxTokens)
	}
	if _, ok := o.Strategy.(Greedy); !ok {
		t.Errorf("default strategy = %T, want Greedy", o.Strategy)
	}
	if o.Seed != 0 || o.StopAtEOS {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestBuildOptionsSetters(t *testing.T) {
	o := BuildOptions(
		WithMaxTokens(7),
		WithStrategy(Temperature{T: 0.5}),
		WithSeed(99),
		WithStop(),
	)
	if o.MaxTokens != 7 || o.Seed != 99 || !o.StopAtEOS {
		t.Errorf("options = %+v", o)
	}
	if ts, ok := o.Strategy.(Temperature); !ok || ts.T != 0.5 {
		t.Errorf("strategy = %#v", o.Strategy)
	}
}

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		name    string
		temp, p float64
		k       int
		want    any
		wantErr bool
	}{
		{name: "", want: Greedy{}},
		{name: "greedy", want: Greedy{}},
		{name: "temp", temp: 1.2, want: Temperature{T: 1.2}},
		{name: "temp", want: Temperature{T: 0.8}}, // default temperature
		{name: "topk", temp: 0.9, k: 5, want: TopK{K: 5, T: 0.9}},
		{name: "topk", want: TopK{K: 10, T: 0.8}}, // default k
		{name: "topp", temp: 0.7, p: 0.95, want: TopP{P: 0.95, T: 0.7}},
		{name: "topp", want: TopP{P: 0.9, T: 0.8}}, // default p
		{name: "beam", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseStrategy(c.name, c.temp, c.p, c.k)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseStrategy(%q) succeeded, want error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStrategy(%q, %v, %v, %d) = %#v, want %#v",
				c.name, c.temp, c.p, c.k, got, c.want)
		}
	}
}
