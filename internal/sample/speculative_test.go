package sample

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/mathx"
)

// fakeTarget is a deterministic SpecTarget/Stepper over an arbitrary
// history→logits function, so the acceptance machinery can be tested without
// a transformer: ExtendAll really ingests, Rewind really truncates, and the
// same function drives the plain reference decode.
type fakeTarget struct {
	logits func(hist []int) []float64
	hist   []int
}

func (f *fakeTarget) Append(id int) []float64 {
	f.hist = append(f.hist, id)
	return f.logits(f.hist)
}

func (f *fakeTarget) ExtendAll(ids []int) [][]float64 {
	rows := make([][]float64, len(ids))
	for i, id := range ids {
		f.hist = append(f.hist, id)
		rows[i] = f.logits(f.hist)
	}
	return rows
}

func (f *fakeTarget) Rewind(n int) { f.hist = f.hist[:len(f.hist)-n] }
func (f *fakeTarget) Len() int     { return len(f.hist) }

// hashLogits is a pseudo-random but deterministic history→logits function:
// structured enough that drafts sometimes agree and sometimes do not.
func hashLogits(vocab int) func(hist []int) []float64 {
	return func(hist []int) []float64 {
		h := uint64(2166136261)
		for _, id := range hist {
			h = (h ^ uint64(id+1)) * 16777619
		}
		out := make([]float64, vocab)
		for i := range out {
			h = h*6364136223846793005 + 1442695040888963407
			out[i] = float64(h>>40) / float64(1<<24) * 4
		}
		return out
	}
}

// uniformDrafter proposes the uniform distribution — a rejection-heavy
// proposal that exercises the correction path constantly.
type uniformDrafter struct{ vocab int }

func (d uniformDrafter) NextDist([]int) []float64 {
	out := make([]float64, d.vocab)
	for i := range out {
		out[i] = 1 / float64(d.vocab)
	}
	return out
}

// peakedDrafter concentrates mass on a fixed token — an adversarial proposal
// whose argmax is almost always wrong.
type peakedDrafter struct{ vocab, tok int }

func (d peakedDrafter) NextDist([]int) []float64 {
	out := make([]float64, d.vocab)
	eps := 0.01 / float64(d.vocab)
	for i := range out {
		out[i] = eps
	}
	out[d.tok] = 1 - 0.01 + eps
	return out
}

// oracleDrafter proposes a softmax of the target's own logits — high
// acceptance, the self-distilled regime.
type oracleDrafter struct {
	logits func(hist []int) []float64
	buf    []float64
}

func (d *oracleDrafter) NextDist(ctx []int) []float64 {
	l := d.logits(ctx)
	if cap(d.buf) < len(l) {
		d.buf = make([]float64, len(l))
	}
	d.buf = d.buf[:len(l)]
	return mathx.SoftmaxInto(d.buf, l, 1)
}

// specDecode runs a full speculative generation over a fakeTarget: prompt
// prefill, first token from the prefill logits, then Rounds until done —
// the same shape as the lm driver's loop.
func specDecode(t *testing.T, logits func([]int) []float64, prompt []int, sp *Speculative, strat Strategy, stop, maxTokens int, seed uint64) []int {
	t.Helper()
	tgt := &fakeTarget{logits: logits}
	var last []float64
	for _, id := range prompt {
		last = tgt.Append(id)
	}
	dec := NewDecoder(strat, stop, maxTokens, mathx.NewRNG(seed))
	tok, done := dec.Next(last)
	ctx := append(append([]int(nil), prompt...), tok)
	for !done {
		rr := sp.Round(tgt, dec, ctx, 1<<30)
		ctx = append(ctx, rr.Emitted...)
		done = rr.Done
		if len(rr.Emitted) == 0 {
			t.Fatal("Round emitted nothing")
		}
	}
	// The target must hold the context minus the pending token (or all of it
	// when decoding finished on an accepted draft): every rejected draft
	// rewound, nothing else lost.
	if d := len(ctx) - tgt.Len(); d != 0 && d != 1 {
		t.Fatalf("target ingested %d positions, context holds %d", tgt.Len(), len(ctx))
	}
	return append([]int(nil), dec.Tokens()...)
}

// plainDecode is the reference loop (Generate's semantics over the same
// fake model).
func plainDecode(logits func([]int) []float64, prompt []int, strat Strategy, stop, maxTokens int, seed uint64) []int {
	tgt := &fakeTarget{logits: logits}
	var last []float64
	for _, id := range prompt {
		last = tgt.Append(id)
	}
	dec := NewDecoder(strat, stop, maxTokens, mathx.NewRNG(seed))
	for !dec.Done() {
		tok, done := dec.Next(last)
		if !done {
			last = tgt.Append(tok)
		}
	}
	return append([]int(nil), dec.Tokens()...)
}

// TestSpeculativeGreedyParity: greedy speculative output must be identical
// to plain greedy decode for every draft depth and drafter quality — the
// exact-match rule makes correctness independent of what the drafter
// proposes.
func TestSpeculativeGreedyParity(t *testing.T) {
	const vocab = 9
	lf := hashLogits(vocab)
	drafters := map[string]Drafter{
		"uniform": uniformDrafter{vocab: vocab},
		"peaked":  peakedDrafter{vocab: vocab, tok: 3},
		"oracle":  &oracleDrafter{logits: lf},
		"nil":     nil,
	}
	want := plainDecode(lf, []int{1, 2}, Greedy{}, -1, 30, 5)
	for name, d := range drafters {
		for _, k := range []int{1, 2, 4, 8} {
			sp := &Speculative{K: k, Drafter: d}
			got := specDecode(t, lf, []int{1, 2}, sp, Greedy{}, -1, 30, 5)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("drafter %s k=%d: speculative %v != plain %v", name, k, got, want)
			}
		}
	}
}

// TestSpeculativeExactMatchParity: with ExactMatch forced, stochastic
// strategies must also reproduce plain decoding bit for bit — verification
// consumes the RNG exactly as the plain loop does and drafting consumes
// none.
func TestSpeculativeExactMatchParity(t *testing.T) {
	const vocab = 9
	lf := hashLogits(vocab)
	strats := map[string]Strategy{
		"temp": Temperature{T: 0.8},
		"topk": TopK{K: 4, T: 0.9},
		"topp": TopP{P: 0.9, T: 0.7},
	}
	for name, strat := range strats {
		want := plainDecode(lf, []int{3}, strat, -1, 25, 11)
		for _, k := range []int{2, 5} {
			sp := &Speculative{K: k, Drafter: &oracleDrafter{logits: lf}, ExactMatch: true}
			got := specDecode(t, lf, []int{3}, sp, strat, -1, 25, 11)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s k=%d exact-match: speculative %v != plain %v", name, k, got, want)
			}
		}
	}
}

// TestSpeculativeStopToken: speculation must respect the stop token exactly
// where plain decoding stops, in both acceptance modes.
func TestSpeculativeStopToken(t *testing.T) {
	const vocab = 6
	lf := hashLogits(vocab)
	for _, strat := range []Strategy{Greedy{}, Temperature{T: 1}} {
		want := plainDecode(lf, []int{1}, strat, 2, 40, 9)
		sp := &Speculative{K: 4, Drafter: uniformDrafter{vocab: vocab}}
		got := specDecode(t, lf, []int{1}, sp, strat, 2, 40, 9)
		if _, greedy := strat.(Greedy); greedy {
			if !reflect.DeepEqual(got, want) {
				t.Errorf("greedy stop: %v != %v", got, want)
			}
		}
		// Stochastic streams differ draw-by-draw, but both must stop at the
		// stop token or the budget.
		if len(got) > 40 {
			t.Errorf("budget overrun: %d tokens", len(got))
		}
		for i, tok := range got[:len(got)-1] {
			if tok == 2 {
				t.Errorf("stop token emitted mid-stream at %d: %v", i, got)
			}
		}
	}
}

// TestSpeculativeStatsAccounting pins the bookkeeping: drafted totals match
// K·rounds (full-depth rounds), accepted ≤ drafted, the histogram rows sum
// to the drafting rounds, and emitted counts line up with accepted+1.
func TestSpeculativeStatsAccounting(t *testing.T) {
	const vocab = 9
	lf := hashLogits(vocab)
	sp := &Speculative{K: 3, Drafter: &oracleDrafter{logits: lf}}
	got := specDecode(t, lf, []int{1, 2}, sp, Greedy{}, -1, 40, 5)
	if len(got) != 40 {
		t.Fatalf("decoded %d tokens, want 40", len(got))
	}
	st := sp.Stats
	if st.Rounds == 0 || st.Drafted == 0 {
		t.Fatalf("no drafting recorded: %+v", st)
	}
	if st.Accepted > st.Drafted {
		t.Fatalf("accepted %d > drafted %d", st.Accepted, st.Drafted)
	}
	var histSum, histTok uint64
	for i, c := range st.AcceptHist {
		histSum += c
		histTok += uint64(i) * c
	}
	if histSum == 0 || histSum > st.Rounds {
		t.Fatalf("histogram mass %d vs rounds %d", histSum, st.Rounds)
	}
	if histTok != st.Accepted {
		t.Fatalf("histogram-weighted accepted %d != %d", histTok, st.Accepted)
	}
}

// chiSquare computes Σ (obs−exp)²/exp over the vocabulary.
func chiSquare(obs []int, exp []float64, trials int) float64 {
	x := 0.0
	for i, p := range exp {
		e := p * float64(trials)
		if e == 0 {
			continue
		}
		d := float64(obs[i]) - e
		x += d * d / e
	}
	return x
}

// TestSpeculativeRejectionMarginals is the statistical acceptance test for
// rejection sampling: over many independent single-round trials, the first
// token emitted by the speculative path must follow the plain strategy's
// distribution, for proposals both close to and far from the target. The
// chi-square statistic is compared against a pinned threshold (df = vocab−1
// = 7; 24.3 is the 0.999 quantile — the seeds are fixed, so the test is
// deterministic) and, as a calibration control, against the statistic of
// plain Decoder draws at the same trial count.
func TestSpeculativeRejectionMarginals(t *testing.T) {
	const vocab, trials = 8, 20000
	const threshold = 24.3
	lf := hashLogits(vocab)
	base := lf([]int{7, 1}) // logits after the fixed context [7, 1]

	strats := map[string]Strategy{
		"temp": Temperature{T: 0.9},
		"topk": TopK{K: 5, T: 0.8},
		"topp": TopP{P: 0.85, T: 1.1},
	}
	drafters := map[string]Drafter{
		"uniform": uniformDrafter{vocab: vocab},
		"peaked":  peakedDrafter{vocab: vocab, tok: 2},
		"oracle":  &oracleDrafter{logits: lf},
	}
	for sname, strat := range strats {
		// Expected marginal: the strategy's own distribution on base.
		exp := make([]float64, vocab)
		strat.(distStrategy).dist(exp, base, &pickScratch{})

		// Calibration control: plain Decoder draws from the same logits.
		plainObs := make([]int, vocab)
		for trial := 0; trial < trials; trial++ {
			dec := NewDecoder(strat, -1, 4, mathx.NewRNG(uint64(trial)*7+13))
			tok, _ := dec.Next(base)
			plainObs[tok]++
		}
		if x := chiSquare(plainObs, exp, trials); x > threshold {
			t.Fatalf("%s control drifted: chi-square %.2f > %.2f", sname, x, threshold)
		}

		for dname, d := range drafters {
			obs := make([]int, vocab)
			for trial := 0; trial < trials; trial++ {
				tgt := &fakeTarget{logits: lf}
				tgt.Append(7)
				dec := NewDecoder(strat, -1, 4, mathx.NewRNG(uint64(trial)*7+13))
				sp := &Speculative{K: 3, Drafter: d}
				rr := sp.Round(tgt, dec, []int{7, 1}, 1<<30)
				obs[rr.Emitted[0]]++
			}
			x := chiSquare(obs, exp, trials)
			if x > threshold {
				t.Errorf("%s/%s: speculative marginal drifted: chi-square %.2f > %.2f (obs %v)",
					sname, dname, x, threshold, obs)
			}
			if math.IsNaN(x) {
				t.Errorf("%s/%s: NaN chi-square", sname, dname)
			}
		}
	}
}
