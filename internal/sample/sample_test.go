package sample

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/transformer"
)

func TestGreedyPicksArgmax(t *testing.T) {
	g := Greedy{}
	if got := g.Pick([]float64{0.1, 5, -2}, mathx.NewRNG(1)); got != 1 {
		t.Errorf("greedy = %d", got)
	}
}

// TestTemperatureLimits is experiment E14: β→∞ (T→0⁺) approaches argmax,
// large T approaches uniform.
func TestTemperatureLimits(t *testing.T) {
	logits := []float64{1, 2, 4}
	rng := mathx.NewRNG(2)
	n := 20000
	count := func(strat Strategy) []float64 {
		c := make([]float64, 3)
		for i := 0; i < n; i++ {
			c[strat.Pick(logits, rng)]++
		}
		for i := range c {
			c[i] /= float64(n)
		}
		return c
	}
	cold := count(Temperature{T: 0.05})
	if cold[2] < 0.999 {
		t.Errorf("cold sampling not argmax-like: %v", cold)
	}
	hot := count(Temperature{T: 100})
	for _, f := range hot {
		if math.Abs(f-1.0/3) > 0.02 {
			t.Errorf("hot sampling not uniform: %v", hot)
		}
	}
	// T=1 matches the softmax probabilities.
	mid := count(Temperature{T: 1})
	want := mathx.Softmax(logits, 1)
	for i := range want {
		if math.Abs(mid[i]-want[i]) > 0.02 {
			t.Errorf("T=1 frequencies %v, want %v", mid, want)
		}
	}
}

func TestTemperaturePanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Temperature{T: 0}.Pick([]float64{1, 2}, mathx.NewRNG(1))
}

func TestTopKRestrictsSupport(t *testing.T) {
	logits := []float64{10, 9, 8, -50, -60}
	rng := mathx.NewRNG(3)
	s := TopK{K: 2, T: 1}
	for i := 0; i < 500; i++ {
		got := s.Pick(logits, rng)
		if got != 0 && got != 1 {
			t.Fatalf("top-2 sampled index %d", got)
		}
	}
	// K <= 0 falls back to full support.
	full := TopK{K: 0, T: 1}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[full.Pick([]float64{1, 1, 1}, rng)] = true
	}
	if len(seen) != 3 {
		t.Errorf("K=0 support = %v", seen)
	}
}

func TestTopPRestrictsSupport(t *testing.T) {
	// Probabilities ~ (0.6, 0.3, 0.1): nucleus at P=0.7 keeps tokens 0, 1.
	logits := []float64{math.Log(0.6), math.Log(0.3), math.Log(0.1)}
	rng := mathx.NewRNG(4)
	s := TopP{P: 0.7, T: 1}
	for i := 0; i < 500; i++ {
		got := s.Pick(logits, rng)
		if got == 2 {
			t.Fatal("nucleus leaked tail token")
		}
	}
	// P=1 keeps everything.
	all := TopP{P: 1, T: 1}
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[all.Pick(logits, rng)] = true
	}
	if len(seen) != 3 {
		t.Errorf("P=1 support = %v", seen)
	}
}

// cycleStepper deterministically predicts (last+1) mod vocab.
type cycleStepper struct {
	vocab int
	last  int
}

func (c *cycleStepper) Append(id int) []float64 {
	c.last = id
	logits := make([]float64, c.vocab)
	logits[(id+1)%c.vocab] = 10
	return logits
}

func TestGenerateFollowsModel(t *testing.T) {
	s := &cycleStepper{vocab: 4}
	out := Generate(s, []int{0}, 5, Greedy{}, -1, mathx.NewRNG(5))
	want := []int{1, 2, 3, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("generated %v, want %v", out, want)
		}
	}
}

func TestGenerateStopToken(t *testing.T) {
	s := &cycleStepper{vocab: 4}
	out := Generate(s, []int{0}, 10, Greedy{}, 2, mathx.NewRNG(6))
	if len(out) != 2 || out[len(out)-1] != 2 {
		t.Errorf("stop handling: %v", out)
	}
}

func TestGenerateEmptyPromptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(&cycleStepper{vocab: 2}, nil, 1, Greedy{}, -1, mathx.NewRNG(1))
}

func TestBeamSearchFindsHighProbPath(t *testing.T) {
	// Scorer: prefers token 0 at each step but gives token 1 a large bonus
	// if the previous token was 1 — greedy takes 0s; a 2-beam search should
	// discover the 1,1 path when it scores higher in total.
	next := func(prefix []int) []float64 {
		last := prefix[len(prefix)-1]
		if last == 1 {
			return []float64{0, 5}
		}
		return []float64{1.0, 0.8}
	}
	beams := BeamSearch(next, []int{0}, 2, 4)
	if len(beams) == 0 {
		t.Fatal("no beams")
	}
	best := beams[0]
	if best.Tokens[0] != 1 || best.Tokens[1] != 1 {
		t.Errorf("best beam = %v (logp %v)", best.Tokens, best.LogProb)
	}
	// Beams sorted descending.
	for i := 1; i < len(beams); i++ {
		if beams[i].LogProb > beams[i-1].LogProb {
			t.Fatal("beams unsorted")
		}
	}
}

func TestBeamWidthOneIsGreedy(t *testing.T) {
	next := func(prefix []int) []float64 {
		return []float64{0.1, 2, 0.3}
	}
	beams := BeamSearch(next, []int{0}, 3, 1)
	for _, tok := range beams[0].Tokens {
		if tok != 1 {
			t.Errorf("width-1 beam deviated: %v", beams[0].Tokens)
		}
	}
}

func TestStreamCrossEntropyPerfectPredictor(t *testing.T) {
	vocab := 5
	next := func(prefix []int) []float64 {
		logits := make([]float64, vocab)
		logits[(prefix[len(prefix)-1]+1)%vocab] = 50
		return logits
	}
	stream := []int{0, 1, 2, 3, 4, 0, 1}
	if ce := StreamCrossEntropy(next, stream); ce > 1e-6 {
		t.Errorf("perfect predictor CE = %v", ce)
	}
	uniform := func(prefix []int) []float64 { return make([]float64, vocab) }
	if pp := Perplexity(uniform, stream); math.Abs(pp-5) > 1e-9 {
		t.Errorf("uniform perplexity = %v, want 5", pp)
	}
}

// TestGenerateWithTransformerPredictor wires the sampler to the real model's
// KV-cache stepper.
func TestGenerateWithTransformerPredictor(t *testing.T) {
	cfg := transformer.Config{Vocab: 6, Dim: 8, Layers: 1, Heads: 2, Window: 16,
		Pos: transformer.PosLearned, Act: nn.GELU}
	m := transformer.MustNew(cfg, mathx.NewRNG(7))
	out := Generate(m.NewPredictor(), []int{1, 2}, 6, Temperature{T: 1}, -1, mathx.NewRNG(8))
	if len(out) != 6 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= 6 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

// TestDecoderMatchesGenerate drives a Decoder by hand against the classic
// Generate loop: identical strategy, seed, and logits must yield identical
// tokens (the serving loop depends on this equivalence).
func TestDecoderMatchesGenerate(t *testing.T) {
	cfg := transformer.Config{Vocab: 6, Dim: 8, Layers: 1, Heads: 2, Window: 16,
		Pos: transformer.PosLearned, Act: nn.GELU}
	m := transformer.MustNew(cfg, mathx.NewRNG(7))
	prompt := []int{1, 2}
	want := Generate(m.NewPredictor(), prompt, 6, Temperature{T: 1}, -1, mathx.NewRNG(8))

	p := m.NewPredictor()
	var logits []float64
	for _, id := range prompt {
		logits = p.Append(id)
	}
	d := NewDecoder(Temperature{T: 1}, -1, 6, mathx.NewRNG(8))
	for {
		tok, done := d.Next(logits)
		if done {
			break
		}
		logits = p.Append(tok)
	}
	got := d.Tokens()
	if len(got) != len(want) {
		t.Fatalf("decoder produced %d tokens, Generate %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: decoder %d != Generate %d", i, got[i], want[i])
		}
	}
}

func TestDecoderStopsAtStopToken(t *testing.T) {
	// Logits that always argmax to token 3.
	logits := []float64{0, 0, 0, 5, 0}
	d := NewDecoder(Greedy{}, 3, 10, mathx.NewRNG(1))
	tok, done := d.Next(logits)
	if tok != 3 || !done {
		t.Fatalf("Next = (%d, %v), want (3, true)", tok, done)
	}
	if !d.Done() || len(d.Tokens()) != 1 {
		t.Fatalf("Done=%v Tokens=%v", d.Done(), d.Tokens())
	}
}

func TestDecoderBudget(t *testing.T) {
	logits := []float64{1, 0}
	d := NewDecoder(Greedy{}, -1, 3, mathx.NewRNG(1))
	steps := 0
	for !d.Done() {
		d.Next(logits)
		steps++
	}
	if steps != 3 {
		t.Fatalf("decoder ran %d steps, want 3", steps)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next after completion did not panic")
		}
	}()
	d.Next(logits)
}
