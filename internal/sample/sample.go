// Package sample implements autoregressive decoding (§3's "practical method
// for sampling from the distribution"): the Eq. 8 Boltzmann/temperature
// softmax over logits, greedy decoding (its β → ∞ limit), top-k and nucleus
// truncation, and beam search.
package sample

import (
	"math"
	"sort"

	"repro/internal/mathx"
)

// Stepper is a stateful next-token scorer: each Append consumes one token
// and returns logits for the next position. transformer.Predictor and an
// rnn.Model wrapped with StepperFunc both satisfy it.
type Stepper interface {
	Append(id int) []float64
}

// StepperFunc adapts a closure to Stepper.
type StepperFunc func(id int) []float64

// Append implements Stepper.
func (f StepperFunc) Append(id int) []float64 { return f(id) }

// Extender is a Stepper that can ingest a whole token chunk in one pass:
// Extend feeds ids in order and returns the logits after the last one,
// bitwise identical to len(ids) Append calls, but as batched matrix work
// (transformer.Predictor implements it; see its documentation for the
// keep-last window-truncation behavior). The generation drivers type-assert
// for it so prompt prefill takes the fast path on models that provide one.
type Extender interface {
	Stepper
	Extend(ids []int) []float64
}

// Strategy picks the next token from logits.
type Strategy interface {
	Pick(logits []float64, rng *mathx.RNG) int
}

// Greedy always takes the argmax — the β → ∞ limit of Eq. 8.
type Greedy struct{}

// Pick implements Strategy.
func (Greedy) Pick(logits []float64, _ *mathx.RNG) int {
	i, _ := mathx.ArgMax(logits)
	return i
}

// Temperature samples from softmax(logits / T) (Eq. 8 with β = 1/T).
// T must be > 0.
type Temperature struct{ T float64 }

// Pick implements Strategy.
func (s Temperature) Pick(logits []float64, rng *mathx.RNG) int {
	return s.pickScratch(logits, rng, &pickScratch{})
}

func (s Temperature) pickScratch(logits []float64, rng *mathx.RNG, sc *pickScratch) int {
	if s.T <= 0 {
		panic("sample: temperature must be positive (use Greedy for T→0)")
	}
	probs := sc.floats(&sc.probs, len(logits))
	return rng.Categorical(mathx.SoftmaxInto(probs, logits, 1/s.T))
}

// TopK samples at temperature T from only the K highest-logit tokens,
// selected by partial heap selection rather than a full-vocabulary sort
// (identical result, including tie order).
type TopK struct {
	K int
	T float64
}

// Pick implements Strategy.
func (s TopK) Pick(logits []float64, rng *mathx.RNG) int {
	return s.pickScratch(logits, rng, &pickScratch{})
}

func (s TopK) pickScratch(logits []float64, rng *mathx.RNG, sc *pickScratch) int {
	k := s.K
	if k <= 0 || k > len(logits) {
		k = len(logits)
	}
	idx := selectTopK(logits, k, sc)
	sub := sc.floats(&sc.sub, k)
	for i, j := range idx {
		sub[i] = logits[j]
	}
	t := s.T
	if t <= 0 {
		t = 1
	}
	return idx[rng.Categorical(mathx.SoftmaxInto(sub, sub, 1/t))]
}

// TopP (nucleus) samples from the smallest set of tokens whose softmax
// probability mass reaches P, found by popping a max-heap until the mass
// condition holds rather than sorting the full vocabulary (identical
// result: same selection, same tie order, same cumulative sums).
type TopP struct {
	P float64
	T float64
}

// Pick implements Strategy.
func (s TopP) Pick(logits []float64, rng *mathx.RNG) int {
	return s.pickScratch(logits, rng, &pickScratch{})
}

func (s TopP) pickScratch(logits []float64, rng *mathx.RNG, sc *pickScratch) int {
	t := s.T
	if t <= 0 {
		t = 1
	}
	probs := mathx.SoftmaxInto(sc.floats(&sc.probs, len(logits)), logits, 1/t)
	idx := selectNucleus(probs, s.P, sc)
	sub := sc.floats(&sc.sub, len(idx))
	for i, j := range idx {
		sub[i] = probs[j]
	}
	return idx[rng.Categorical(sub)]
}

// Decoder is the per-request state of incremental decoding: a sampling
// strategy, its private RNG stream, a stop token, and a token budget. It
// separates "pick the next token from these logits" from the question of
// where the logits come from, so the same decoding logic drives both the
// single-sequence Generate loop and the batched serving front end (where one
// batched forward pass produces logits for many decoders at once).
type Decoder struct {
	strat     Strategy
	rng       *mathx.RNG
	stop      int
	remaining int
	done      bool
	out       []int
	// sc is reused across steps by the built-in strategies, so the
	// per-token sampling state (softmax probabilities, selection heap) is
	// allocated once per request instead of once per token.
	sc pickScratch
}

// NewDecoder returns a decoder that samples up to maxTokens tokens with
// strat, stopping early when stop (≥ 0) is produced. A non-positive
// maxTokens yields a decoder that is already done.
func NewDecoder(strat Strategy, stop, maxTokens int, rng *mathx.RNG) *Decoder {
	return &Decoder{strat: strat, rng: rng, stop: stop, remaining: maxTokens, done: maxTokens <= 0}
}

// Next samples one token from logits, records it, and reports whether
// decoding is finished (budget exhausted or stop token emitted). It panics
// when called after completion.
func (d *Decoder) Next(logits []float64) (tok int, done bool) {
	if d.done {
		panic("sample: Decoder.Next after completion")
	}
	if sp, ok := d.strat.(scratchPicker); ok {
		tok = sp.pickScratch(logits, d.rng, &d.sc)
	} else {
		tok = d.strat.Pick(logits, d.rng)
	}
	d.out = append(d.out, tok)
	d.remaining--
	if d.remaining <= 0 || (d.stop >= 0 && tok == d.stop) {
		d.done = true
	}
	return tok, d.done
}

// Done reports whether decoding has finished.
func (d *Decoder) Done() bool { return d.done }

// Tokens returns the tokens sampled so far (including a final stop token).
func (d *Decoder) Tokens() []int { return d.out }

// Generate feeds prompt into the stepper and then samples n further tokens
// with the strategy, stopping early if stop (≥ 0) is produced. It returns
// only the newly generated tokens.
func Generate(s Stepper, prompt []int, n int, strat Strategy, stop int, rng *mathx.RNG) []int {
	if len(prompt) == 0 {
		panic("sample: empty prompt")
	}
	var logits []float64
	if ex, ok := s.(Extender); ok {
		logits = ex.Extend(prompt)
	} else {
		for _, id := range prompt {
			logits = s.Append(id)
		}
	}
	if n <= 0 {
		return nil
	}
	d := NewDecoder(strat, stop, n, rng)
	for {
		tok, done := d.Next(logits)
		if done {
			break
		}
		logits = s.Append(tok)
	}
	return d.Tokens()
}

// Beam is one beam-search hypothesis.
type Beam struct {
	Tokens  []int
	LogProb float64
}

// BeamSearch explores width hypotheses using next, a stateless scorer from
// prefix to next-token logits, generating n tokens beyond the prompt. It
// returns hypotheses sorted by total log probability (best first). The
// prompt is not included in the returned token slices.
func BeamSearch(next func(prefix []int) []float64, prompt []int, n, width int) []Beam {
	if width <= 0 {
		width = 1
	}
	beams := []Beam{{}}
	for step := 0; step < n; step++ {
		var cands []Beam
		for _, b := range beams {
			prefix := append(append([]int(nil), prompt...), b.Tokens...)
			logits := next(prefix)
			logp := logSoftmax(logits)
			for tok, lp := range logp {
				cands = append(cands, Beam{
					Tokens:  append(append([]int(nil), b.Tokens...), tok),
					LogProb: b.LogProb + lp,
				})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].LogProb > cands[j].LogProb })
		if len(cands) > width {
			cands = cands[:width]
		}
		beams = cands
	}
	return beams
}

func logSoftmax(logits []float64) []float64 {
	lse := mathx.LogSumExp(logits)
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = v - lse
	}
	return out
}

// StreamCrossEntropy scores a held-out stream under a stateless next-logits
// scorer: mean NLL of each token given its prefix — Eq. 3 for neural models.
func StreamCrossEntropy(next func(prefix []int) []float64, stream []int) float64 {
	if len(stream) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(stream); i++ {
		logits := next(stream[:i])
		lp := logSoftmax(logits)
		total -= lp[stream[i]]
	}
	return total / float64(len(stream)-1)
}

// Perplexity is exp(StreamCrossEntropy).
func Perplexity(next func(prefix []int) []float64, stream []int) float64 {
	return math.Exp(StreamCrossEntropy(next, stream))
}
