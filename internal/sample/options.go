package sample

import (
	"fmt"
	"time"
)

// DefaultMaxTokens is the generation budget used when a request does not
// set one explicitly.
const DefaultMaxTokens = 12

// Options is the unified parameterization of one generation: the Eq. 8
// decoding strategy plus the bookkeeping every entry point (direct calls,
// the batched server, the eval harness, the CLIs) needs. It is the single
// request shape behind llm.GenRequest; build it with the With* functional
// options.
type Options struct {
	MaxTokens int      // tokens to generate (DefaultMaxTokens when 0)
	Strategy  Strategy // nil = Greedy
	Seed      uint64   // per-request sampling seed
	StopAtEOS bool     // stop at the sequence separator and trim it

	// Speculative enables speculative decoding on drivers whose stepper
	// implements SpecTarget (the transformer); other backends ignore it.
	// The caller owns the driver and can read its accumulated Stats after
	// the generation. nil decodes plainly.
	Speculative *Speculative

	// Timeout is the request's end-to-end deadline, measured from
	// submission; 0 means no per-request deadline (the serving tier may
	// still apply its own default). Only the batched server enforces it;
	// direct decoding drivers ignore it.
	Timeout time.Duration
}

// Option mutates Options; the With* constructors are the public vocabulary.
type Option func(*Options)

// WithMaxTokens sets the generation budget.
func WithMaxTokens(n int) Option { return func(o *Options) { o.MaxTokens = n } }

// WithStrategy sets the decoding strategy (Greedy, Temperature, TopK, TopP).
func WithStrategy(s Strategy) Option { return func(o *Options) { o.Strategy = s } }

// WithSeed sets the sampling seed; for a fixed (model, prompt, options,
// seed) every generation path produces identical text.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithStop makes decoding stop at the end-of-sequence separator (answer-
// style decoding); the separator is trimmed from the result.
func WithStop() Option { return func(o *Options) { o.StopAtEOS = true } }

// WithSpeculative runs the generation through the given speculative-decoding
// driver (draft depth, draft model, and accumulated acceptance stats) when
// the model supports block verification; see Options.Speculative.
func WithSpeculative(sp *Speculative) Option {
	return func(o *Options) { o.Speculative = sp }
}

// WithTimeout sets the request's end-to-end deadline; see Options.Timeout.
func WithTimeout(d time.Duration) Option {
	return func(o *Options) { o.Timeout = d }
}

// BuildOptions folds opts over the defaults.
func BuildOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if o.MaxTokens == 0 {
		o.MaxTokens = DefaultMaxTokens
	}
	if o.Strategy == nil {
		o.Strategy = Greedy{}
	}
	return o
}

// Token is one streamed generation event: the id-th sampled token of a
// request, its vocabulary id, and the piece of decoded text it contributes.
// Concatenating the Text of every event of a generation yields exactly the
// final decoded output.
type Token struct {
	Index int    `json:"index"` // 0-based position within the continuation
	ID    int    `json:"id"`    // vocabulary token id
	Text  string `json:"text"`  // decoded text piece (may be empty for specials)
}

// ValidateStrategy checks a strategy's parameters against the preconditions
// the Pick implementations enforce with panics, so front ends can reject a
// malformed request at admission (a 400) instead of letting it trip a panic
// guard inside a serving loop. nil (greedy) is valid.
func ValidateStrategy(s Strategy) error {
	switch st := s.(type) {
	case nil, Greedy:
		return nil
	case Temperature:
		if st.T <= 0 {
			return fmt.Errorf("sample: temperature %v must be positive (use greedy for T→0)", st.T)
		}
	case TopK:
		if st.K < 0 {
			return fmt.Errorf("sample: top-k %d must not be negative", st.K)
		}
		if st.T < 0 {
			return fmt.Errorf("sample: temperature %v must not be negative", st.T)
		}
	case TopP:
		if st.P < 0 || st.P > 1 {
			return fmt.Errorf("sample: top-p %v outside [0,1]", st.P)
		}
		if st.T < 0 {
			return fmt.Errorf("sample: temperature %v must not be negative", st.T)
		}
	}
	return nil
}

// ParseStrategy resolves a strategy name ("", "greedy", "temp", "topk",
// "topp") and its numeric knobs into a Strategy, applying the conventional
// defaults (temperature 0.8, k 10, p 0.9) for unset values. It is the one
// switch shared by the CLIs and the HTTP front end.
func ParseStrategy(name string, temp, p float64, k int) (Strategy, error) {
	if temp <= 0 {
		temp = 0.8
	}
	if k <= 0 {
		k = 10
	}
	if p <= 0 {
		p = 0.9
	}
	switch name {
	case "", "greedy":
		return Greedy{}, nil
	case "temp":
		return Temperature{T: temp}, nil
	case "topk":
		return TopK{K: k, T: temp}, nil
	case "topp":
		return TopP{P: p, T: temp}, nil
	default:
		return nil, fmt.Errorf("sample: unknown strategy %q (want greedy, temp, topk or topp)", name)
	}
}
