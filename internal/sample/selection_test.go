package sample

import (
	"math"
	"sort"
	"testing"

	"repro/internal/mathx"
)

// argsortDesc is the sort-based selection order the heap path replaced,
// kept as the parity-test reference.
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// referenceTopK is the retired sort-based TopK.Pick, kept verbatim as the
// parity oracle for the heap-selection fast path.
func referenceTopK(s TopK, logits []float64, rng *mathx.RNG) int {
	k := s.K
	if k <= 0 || k > len(logits) {
		k = len(logits)
	}
	idx := argsortDesc(logits)[:k]
	sub := make([]float64, k)
	for i, j := range idx {
		sub[i] = logits[j]
	}
	t := s.T
	if t <= 0 {
		t = 1
	}
	return idx[rng.Categorical(mathx.Softmax(sub, 1/t))]
}

// referenceTopP is the retired sort-based TopP.Pick.
func referenceTopP(s TopP, logits []float64, rng *mathx.RNG) int {
	t := s.T
	if t <= 0 {
		t = 1
	}
	probs := mathx.Softmax(logits, 1/t)
	idx := argsortDesc(probs)
	mass := 0.0
	cut := len(idx)
	for i, j := range idx {
		mass += probs[j]
		if mass >= s.P {
			cut = i + 1
			break
		}
	}
	idx = idx[:cut]
	sub := make([]float64, cut)
	for i, j := range idx {
		sub[i] = probs[j]
	}
	return idx[rng.Categorical(sub)]
}

// tieLogits builds a vocabulary with deliberate duplicate values so the
// stable tie order (lower index first) is actually exercised.
func tieLogits(n int, rng *mathx.RNG) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		// Quantized draws force frequent exact ties.
		xs[i] = math.Floor(rng.Norm()*4) / 4
	}
	return xs
}

func TestSelectTopKMatchesArgsort(t *testing.T) {
	rng := mathx.NewRNG(21)
	var sc pickScratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(97)
		xs := tieLogits(n, rng)
		want := argsortDesc(xs)
		for _, k := range []int{1, 2, n / 2, n} {
			if k < 1 {
				k = 1
			}
			if k > n {
				k = n
			}
			got := selectTopK(xs, k, &sc)
			for i := 0; i < k; i++ {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d k=%d pos %d: heap %d != sort %d (xs=%v)",
						trial, n, k, i, got[i], want[i], xs)
				}
			}
		}
	}
}

func TestSelectNucleusMatchesArgsort(t *testing.T) {
	rng := mathx.NewRNG(22)
	var sc pickScratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(97)
		probs := mathx.Softmax(tieLogits(n, rng), 1)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.999, 1.0, 2.0} {
			idx := argsortDesc(probs)
			mass := 0.0
			cut := len(idx)
			for i, j := range idx {
				mass += probs[j]
				if mass >= p {
					cut = i + 1
					break
				}
			}
			want := idx[:cut]
			got := selectNucleus(probs, p, &sc)
			if len(got) != len(want) {
				t.Fatalf("trial %d p=%v: nucleus size %d != %d", trial, p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d p=%v pos %d: heap %d != sort %d", trial, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHeapStrategiesMatchSortReference drives the live TopK/TopP (heap +
// scratch) and the preserved sort-based implementations with identical RNG
// streams over many random vocabularies: every sampled token must agree,
// proving the fast path changes neither the candidate sets, their order,
// nor the floating-point sums that pick the nucleus cutoff.
func TestHeapStrategiesMatchSortReference(t *testing.T) {
	rng := mathx.NewRNG(23)
	var sc pickScratch
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(128)
		logits := tieLogits(n, rng)
		seed := uint64(trial)

		topk := TopK{K: 1 + rng.Intn(n), T: 0.7}
		if got, want := topk.pickScratch(logits, mathx.NewRNG(seed), &sc),
			referenceTopK(topk, logits, mathx.NewRNG(seed)); got != want {
			t.Fatalf("trial %d TopK%+v: heap %d != sort %d", trial, topk, got, want)
		}

		topp := TopP{P: []float64{0.1, 0.5, 0.9, 1}[rng.Intn(4)], T: 0.7}
		if got, want := topp.pickScratch(logits, mathx.NewRNG(seed), &sc),
			referenceTopP(topp, logits, mathx.NewRNG(seed)); got != want {
			t.Fatalf("trial %d TopP%+v: heap %d != sort %d", trial, topp, got, want)
		}

		// And the exported Pick (fresh scratch) agrees with the reused one.
		if got, want := topk.Pick(logits, mathx.NewRNG(seed)),
			topk.pickScratch(logits, mathx.NewRNG(seed), &sc); got != want {
			t.Fatalf("trial %d TopK: Pick %d != scratch %d", trial, got, want)
		}
		if got, want := topp.Pick(logits, mathx.NewRNG(seed)),
			topp.pickScratch(logits, mathx.NewRNG(seed), &sc); got != want {
			t.Fatalf("trial %d TopP: Pick %d != scratch %d", trial, got, want)
		}
	}
}

// TestDecoderScratchReuseIsAllocationFree pins the per-token sampling cost:
// after the first step warms the scratch, further Decoder.Next calls with
// the built-in truncated strategies must not allocate.
func TestDecoderScratchReuseIsAllocationFree(t *testing.T) {
	rng := mathx.NewRNG(24)
	logits := make([]float64, 512)
	for i := range logits {
		logits[i] = rng.Norm()
	}
	for _, strat := range []Strategy{Temperature{T: 0.8}, TopK{K: 40, T: 0.8}, TopP{P: 0.9, T: 0.8}} {
		d := NewDecoder(strat, -1, 1<<30, mathx.NewRNG(25))
		d.Next(logits) // warm the scratch
		// The token ring (d.out) grows amortized; pre-grow it so the
		// measurement isolates the sampling path.
		d.out = make([]int, 1, 4096)
		allocs := testing.AllocsPerRun(200, func() {
			d.Next(logits)
		})
		if allocs != 0 {
			t.Errorf("%T: %v allocs per Next, want 0", strat, allocs)
		}
	}
}
