package sample

import "repro/internal/mathx"

// This file is the truncated-sampling fast path: TopK and TopP used to
// stable-sort the full vocabulary per token; they now run partial selection
// with a max-heap — O(V + k·log V) for top-k, O(V + m·log V) for a nucleus
// of m tokens — over a scratch arena the Decoder reuses across steps. The
// heap order (value descending, index ascending on ties) is exactly the
// order sort.SliceStable produced, so the selected sets, their iteration
// order, and therefore the sampled token streams are identical to the
// sort-based implementation (argsortDesc, kept for the parity tests).

// pickScratch is per-decoder scratch for the sampling strategies: softmax
// probabilities, heap storage, and the selected-candidate buffers. The zero
// value is ready to use; buffers grow to the vocabulary size once and are
// reused every step.
type pickScratch struct {
	probs []float64 // softmax output (TopP) or truncated logits (TopK)
	sub   []float64 // candidate weights handed to Categorical
	heap  []int     // max-heap of candidate indices
	sel   []int     // selected indices in descending order
}

func (sc *pickScratch) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (sc *pickScratch) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// scratchPicker is implemented by strategies that can run against a reused
// scratch arena; Decoder feeds its persistent scratch through it so
// steady-state decoding does not reallocate sampling state.
type scratchPicker interface {
	pickScratch(logits []float64, rng *mathx.RNG, sc *pickScratch) int
}

// heapBetter is the selection order: higher value first, lower index first
// on ties — the exact order of a stable descending sort.
func heapBetter(xs []float64, a, b int) bool {
	if xs[a] != xs[b] {
		return xs[a] > xs[b]
	}
	return a < b
}

// heapInit fills h with 0..n-1 arranged as a max-heap under heapBetter.
func heapInit(h []int, xs []float64) {
	for i := range h {
		h[i] = i
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, xs, i)
	}
}

func siftDown(h []int, xs []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && heapBetter(xs, h[r], h[l]) {
			best = r
		}
		if !heapBetter(xs, h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// heapPop removes and returns the root of h (the current best index),
// returning the shrunk heap.
func heapPop(h []int, xs []float64) (int, []int) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if len(h) > 0 {
		siftDown(h, xs, 0)
	}
	return top, h
}

// selectTopK writes the indices of the k largest values of xs into sc.sel
// in stable descending order — equal to argsortDesc(xs)[:k] — without
// sorting the rest.
func selectTopK(xs []float64, k int, sc *pickScratch) []int {
	h := sc.ints(&sc.heap, len(xs))
	heapInit(h, xs)
	sel := sc.ints(&sc.sel, k)
	for i := 0; i < k; i++ {
		sel[i], h = heapPop(h, xs)
	}
	return sel
}

// selectNucleus writes the smallest stable-descending prefix of probs whose
// mass reaches p into sc.sel (the whole vocabulary when it never does),
// accumulating mass in the same order — and therefore with the same
// floating-point sums and cutoff — as the sorted implementation.
func selectNucleus(probs []float64, p float64, sc *pickScratch) []int {
	h := sc.ints(&sc.heap, len(probs))
	heapInit(h, probs)
	sel := sc.ints(&sc.sel, 0)
	mass := 0.0
	for len(h) > 0 {
		var j int
		j, h = heapPop(h, probs)
		sel = append(sel, j)
		mass += probs[j]
		if mass >= p {
			break
		}
	}
	sc.sel = sel
	return sel
}
