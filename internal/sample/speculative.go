package sample

import "repro/internal/mathx"

// This file is the speculative-decoding driver: a cheap draft model proposes
// a block of k tokens, the target model scores the whole block in one
// chunked verification pass (SpecTarget.ExtendAll), and the longest
// acceptable prefix is kept while the rejected suffix is rewound out of the
// target's cache. Every accepted round replaces k+1 sequential target steps
// with one matrix-matrix pass, which is where the tokens/s comes from.
//
// Two acceptance rules, chosen by the decoder's strategy:
//
//   - Exact match (greedy, and the fallback for strategies that expose no
//     distribution): the decoder samples each verification row exactly as
//     plain decoding would — same logits, same order, same RNG draws — and a
//     draft token survives only if it equals the decoder's own pick. The
//     emitted stream is therefore bitwise identical to plain decode for any
//     strategy; drafting consumes no randomness.
//   - Rejection sampling (Temperature/TopK/TopP): draft token d with
//     proposal probability q(d) is accepted with probability min(1, p(d)/q(d))
//     against the target distribution p; on rejection the correction token
//     is sampled from the residual max(p−q, 0)/Σ, and when the whole block
//     survives a bonus token is sampled from the target's next-position
//     distribution. Token marginals equal plain decoding's exactly (the
//     standard speculative-sampling identity); the chi-square test in
//     speculative_test.go checks this empirically.
type Speculative struct {
	// K is the draft depth: tokens proposed per round. Each round's actual
	// depth is clamped to the decoder's remaining budget and the target's
	// window room.
	K int
	// Drafter proposes draft tokens. nil degrades every round to a plain
	// single-token verification step (correct, never faster).
	Drafter Drafter
	// ExactMatch forces exact-match acceptance for stochastic strategies
	// too: lower acceptance than rejection sampling, but the emitted stream
	// stays bitwise identical to plain decode — the lever the parity tests
	// pull to check stochastic strategies end to end.
	ExactMatch bool

	// Stats accumulates across rounds; callers read it between rounds (the
	// driver is single-threaded).
	Stats SpecStats

	// Round scratch, grown once and reused.
	dctx    []int
	chunk   []int
	emitted []int
	qd      [][]float64
	pbuf    []float64
	resid   []float64
	sc      pickScratch
}

// Drafter is the draft-model contract: NextDist returns the normalized
// next-token distribution given the full decoded context so far. The
// returned slice may be the drafter's reusable scratch, valid until the next
// NextDist call (Speculative copies what it must keep).
type Drafter interface {
	NextDist(ctx []int) []float64
}

// SpecTarget is the target-model surface speculative decoding needs beyond
// plain stepping: block verification with per-position logits, cache
// truncation, and the current cached length. transformer.Predictor
// implements it; the serving loop adapts BatchedPredictor sequences to it.
type SpecTarget interface {
	// ExtendAll ingests ids and returns next-token logits for every
	// position, bitwise identical to feeding them one at a time.
	ExtendAll(ids []int) [][]float64
	// Rewind discards the last n ingested positions.
	Rewind(n int)
	// Len returns the number of ingested positions.
	Len() int
}

// SpecStats counts speculative-decoding outcomes. AcceptHist[i] counts
// drafting rounds whose accepted prefix was exactly i draft tokens (the last
// bucket collects deeper rounds); rounds that drafted nothing (budget or
// window exhausted the depth) count in Rounds only.
type SpecStats struct {
	Rounds     uint64     `json:"rounds"`
	Drafted    uint64     `json:"drafted"`
	Accepted   uint64     `json:"accepted"`
	AcceptHist [17]uint64 `json:"accept_hist"`
}

// RoundResult reports one verification round. Emitted aliases the driver's
// scratch and is valid until the next Round call.
type RoundResult struct {
	Emitted  []int // tokens emitted this round, in order (at least one)
	Drafted  int   // draft tokens proposed
	Accepted int   // draft tokens accepted
	Done     bool  // decoding finished (budget or stop token)
}

// distStrategy is implemented by strategies that can expose their full
// normalized sampling distribution — what rejection sampling needs. dst must
// have vocabulary length; the result is written there and returned.
type distStrategy interface {
	dist(dst, logits []float64, sc *pickScratch) []float64
}

// dist implements distStrategy: softmax(logits/T) over the full vocabulary.
func (s Temperature) dist(dst, logits []float64, _ *pickScratch) []float64 {
	if s.T <= 0 {
		panic("sample: temperature must be positive (use Greedy for T→0)")
	}
	return mathx.SoftmaxInto(dst, logits, 1/s.T)
}

// dist implements distStrategy: the temperature softmax over the selected k,
// zero elsewhere — exactly the per-token probabilities Pick samples from.
func (s TopK) dist(dst, logits []float64, sc *pickScratch) []float64 {
	k := s.K
	if k <= 0 || k > len(logits) {
		k = len(logits)
	}
	idx := selectTopK(logits, k, sc)
	sub := sc.floats(&sc.sub, k)
	for i, j := range idx {
		sub[i] = logits[j]
	}
	t := s.T
	if t <= 0 {
		t = 1
	}
	mathx.SoftmaxInto(sub, sub, 1/t)
	for i := range dst {
		dst[i] = 0
	}
	for i, j := range idx {
		dst[j] = sub[i]
	}
	return dst
}

// dist implements distStrategy: the nucleus probabilities renormalized over
// the selected set, zero elsewhere.
func (s TopP) dist(dst, logits []float64, sc *pickScratch) []float64 {
	t := s.T
	if t <= 0 {
		t = 1
	}
	probs := mathx.SoftmaxInto(sc.floats(&sc.probs, len(logits)), logits, 1/t)
	idx := selectNucleus(probs, s.P, sc)
	mass := 0.0
	for _, j := range idx {
		mass += probs[j]
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, j := range idx {
		dst[j] = probs[j] / mass
	}
	return dst
}

// accept records an externally sampled token on the decoder — the
// rejection-sampling path, where the token came from the draft/residual
// machinery rather than strat.Pick — and reports completion, applying the
// same budget and stop-token bookkeeping as Next.
func (d *Decoder) accept(tok int) bool {
	if d.done {
		panic("sample: Decoder accept after completion")
	}
	d.out = append(d.out, tok)
	d.remaining--
	if d.remaining <= 0 || (d.stop >= 0 && tok == d.stop) {
		d.done = true
	}
	return d.done
}

// Round runs one draft/verify/rewind cycle. ctx is the full decoded context
// so far — prompt plus every emitted token — whose final element is the
// pending token the target has not ingested yet; room is the target's
// remaining window capacity (use a large value for unbounded targets). Round
// ingests the pending token plus up to K draft tokens through one
// ExtendAll pass, emits the accepted prefix plus one token sampled from the
// target (the correction on a rejection, the bonus when the whole draft
// survives) through dec, and rewinds the target past whatever was rejected.
// On return the target has ingested exactly the old context plus the
// accepted tokens; the new pending token is the last element of
// RoundResult.Emitted.
func (sp *Speculative) Round(t SpecTarget, dec *Decoder, ctx []int, room int) RoundResult {
	if dec.done {
		panic("sample: Speculative.Round after completion")
	}
	if len(ctx) == 0 {
		panic("sample: Speculative.Round needs the pending token in ctx")
	}
	if room < 1 {
		panic("sample: Speculative.Round without window room")
	}
	_, greedy := dec.strat.(Greedy)
	ds, hasDist := dec.strat.(distStrategy)
	exact := greedy || sp.ExactMatch || !hasDist

	// Clamp the draft depth: the round emits accepted+1 ≤ m+1 tokens against
	// a budget of dec.remaining, and ingests m+1 positions against room.
	m := sp.K
	if r := dec.remaining - 1; m > r {
		m = r
	}
	if m > room-1 {
		m = room - 1
	}
	if m < 0 || sp.Drafter == nil {
		m = 0
	}

	// Draft m tokens from the proposal model. Exact-match mode drafts by
	// argmax so no RNG draws are consumed — the decoder's stream must stay
	// aligned with plain decoding. Rejection mode samples the proposal and
	// keeps a copy of each position's q (the drafter reuses its buffer).
	sp.chunk = append(sp.chunk[:0], ctx[len(ctx)-1])
	sp.dctx = append(sp.dctx[:0], ctx...)
	for i := 0; i < m; i++ {
		q := sp.Drafter.NextDist(sp.dctx)
		var d int
		if exact {
			d, _ = mathx.ArgMax(q)
		} else {
			d = dec.rng.Categorical(q)
			copy(sp.qrow(i, len(q)), q)
		}
		sp.chunk = append(sp.chunk, d)
		sp.dctx = append(sp.dctx, d)
	}

	// One chunked verification pass: logits after every drafted position.
	L := t.ExtendAll(sp.chunk)
	sp.emitted = sp.emitted[:0]
	accepted, done := 0, false
	if exact {
		// The decoder samples each row exactly as plain decoding would; a
		// draft token survives only if it equals the decoder's own pick, so
		// the emitted stream is bitwise identical to plain decode. The first
		// disagreement already emitted the correction; all-agree emits the
		// bonus from the last row.
		for i := 0; i <= m && !done; i++ {
			tok, dd := dec.Next(L[i])
			sp.emitted = append(sp.emitted, tok)
			done = dd
			if i < m && tok == sp.chunk[i+1] {
				accepted++
				continue
			}
			break
		}
	} else {
		rejected := false
		for i := 0; i < m && !done && !rejected; i++ {
			p := ds.dist(sp.floats(&sp.pbuf, len(L[i])), L[i], &sp.sc)
			d := sp.chunk[i+1]
			// Accept with probability min(1, p/q): u·q < p, u ∈ [0,1).
			if dec.rng.Float64()*sp.qd[i][d] < p[d] {
				accepted++
				sp.emitted = append(sp.emitted, d)
				done = dec.accept(d)
				continue
			}
			// Rejected: the correction comes from the residual max(p−q, 0),
			// which together with the acceptance rule reproduces p exactly.
			resid := sp.floats(&sp.resid, len(p))
			total := 0.0
			for j := range p {
				r := p[j] - sp.qd[i][j]
				if r > 0 {
					resid[j] = r
					total += r
				} else {
					resid[j] = 0
				}
			}
			var tok int
			if total > 0 {
				tok = dec.rng.Categorical(resid)
			} else {
				// p ≤ q pointwise means p == q; the residual rule degenerates
				// and any p-draw is correct.
				tok = dec.rng.Categorical(p)
			}
			sp.emitted = append(sp.emitted, tok)
			done = dec.accept(tok)
			rejected = true
		}
		if !done && !rejected && accepted == m {
			// Whole draft survived: the bonus token is a plain strategy draw
			// from the next position's target logits.
			tok, dd := dec.Next(L[m])
			sp.emitted = append(sp.emitted, tok)
			done = dd
		}
	}

	// Rewind the rejected suffix: the target ingested m+1 positions, the
	// context advanced by accepted+1 of them (pending + accepted drafts —
	// this round's emitted correction/bonus is the next pending token).
	if rw := m - accepted; rw > 0 {
		t.Rewind(rw)
	}

	sp.Stats.Rounds++
	if m > 0 {
		sp.Stats.Drafted += uint64(m)
		sp.Stats.Accepted += uint64(accepted)
		b := accepted
		if b >= len(sp.Stats.AcceptHist) {
			b = len(sp.Stats.AcceptHist) - 1
		}
		sp.Stats.AcceptHist[b]++
	}
	return RoundResult{Emitted: sp.emitted, Drafted: m, Accepted: accepted, Done: done}
}

// qrow returns row i of the proposal-distribution scratch, sized to n.
func (sp *Speculative) qrow(i, n int) []float64 {
	for len(sp.qd) <= i {
		sp.qd = append(sp.qd, nil)
	}
	if cap(sp.qd[i]) < n {
		sp.qd[i] = make([]float64, n)
	}
	sp.qd[i] = sp.qd[i][:n]
	return sp.qd[i]
}

func (sp *Speculative) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
