package embed

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mathx"
)

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary([]string{"a b a", "c"})
	if v.Size() != 3 {
		t.Fatalf("size = %d", v.Size())
	}
	id, ok := v.ID("b")
	if !ok || v.Word(id) != "b" {
		t.Fatal("ID/Word round trip failed")
	}
	if _, ok := v.ID("zzz"); ok {
		t.Fatal("unknown word found")
	}
}

func TestCooccurrenceCounts(t *testing.T) {
	lines := []string{"a b c"}
	v := NewVocabulary(lines)
	m := Cooccurrence(lines, v, 1)
	ai, _ := v.ID("a")
	bi, _ := v.ID("b")
	ci, _ := v.ID("c")
	if m.At(ai, bi) != 1 || m.At(bi, ai) != 1 {
		t.Errorf("a-b co-occurrence = %v", m.At(ai, bi))
	}
	if m.At(ai, ci) != 0 {
		t.Errorf("a-c at window 1 = %v, want 0", m.At(ai, ci))
	}
	m2 := Cooccurrence(lines, v, 2)
	if m2.At(ai, ci) != 1 {
		t.Errorf("a-c at window 2 = %v, want 1", m2.At(ai, ci))
	}
}

func TestCooccurrenceSymmetric(t *testing.T) {
	lines := corpus.AnalogyCorpus(200, mathx.NewRNG(1))
	v := NewVocabulary(lines)
	m := Cooccurrence(lines, v, 3)
	for i := 0; i < v.Size(); i++ {
		for j := 0; j < v.Size(); j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestPPMIProperties(t *testing.T) {
	lines := []string{"a b a b a b", "c d c d"}
	v := NewVocabulary(lines)
	m := Cooccurrence(lines, v, 1)
	p := PPMI(m)
	ai, _ := v.ID("a")
	bi, _ := v.ID("b")
	ci, _ := v.ID("c")
	// a-b associate strongly; a-c never co-occur → 0.
	if p.At(ai, bi) <= 0 {
		t.Errorf("PPMI(a,b) = %v, want > 0", p.At(ai, bi))
	}
	if p.At(ai, ci) != 0 {
		t.Errorf("PPMI(a,c) = %v, want 0", p.At(ai, ci))
	}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			if p.At(i, j) < 0 {
				t.Fatal("negative PPMI")
			}
		}
	}
}

func TestPPMIEmptyMatrix(t *testing.T) {
	p := PPMI(mathx.NewMat(3, 3))
	for _, v := range p.Data {
		if v != 0 {
			t.Fatal("PPMI of zero matrix nonzero")
		}
	}
}

func buildEmbeddings(t *testing.T, n int, seed uint64, compress int) *Embeddings {
	t.Helper()
	lines := corpus.AnalogyCorpus(n, mathx.NewRNG(seed))
	v := NewVocabulary(lines)
	m := Cooccurrence(lines, v, 4)
	e := FromMatrix(v, PPMI(m))
	if compress > 0 {
		e = e.Compress(compress, mathx.NewRNG(seed+1))
	}
	return e
}

// TestKingQueenAnalogy is experiment E6's headline check: Eq. 9 holds on
// distributional embeddings built from co-occurrence statistics.
func TestKingQueenAnalogy(t *testing.T) {
	e := buildEmbeddings(t, 3000, 2, 0)
	got, ok := e.Analogy("man", "woman", "king")
	if !ok {
		t.Fatal("analogy failed to evaluate")
	}
	if got != "queen" {
		t.Errorf("man:woman :: king:%q, want queen", got)
	}
}

func TestAnalogyAccuracyHigh(t *testing.T) {
	e := buildEmbeddings(t, 4000, 3, 0)
	acc := e.AnalogyAccuracy(StandardQuads())
	if acc < 0.6 {
		t.Errorf("analogy accuracy = %v, want >= 0.6", acc)
	}
}

// TestCompressionPreservesAnalogies reproduces the §7 compression claim:
// projecting to much lower rank keeps the analogy structure.
func TestCompressionPreservesAnalogies(t *testing.T) {
	full := buildEmbeddings(t, 4000, 4, 0)
	small := buildEmbeddings(t, 4000, 4, 12)
	if small.Dim() != 12 {
		t.Fatalf("compressed dim = %d", small.Dim())
	}
	if small.Dim() >= full.Dim() {
		t.Fatal("compression did not reduce dimension")
	}
	accFull := full.AnalogyAccuracy(StandardQuads())
	accSmall := small.AnalogyAccuracy(StandardQuads())
	if accSmall < accFull-0.30 {
		t.Errorf("compression destroyed analogies: %v -> %v", accFull, accSmall)
	}
}

func TestNearestExcludes(t *testing.T) {
	e := buildEmbeddings(t, 1000, 5, 0)
	vk, _ := e.Vector("king")
	ns := e.Nearest(vk, 3, "king")
	for _, n := range ns {
		if n.Word == "king" {
			t.Fatal("excluded word returned")
		}
	}
	if len(ns) != 3 {
		t.Fatalf("got %d neighbours", len(ns))
	}
	// Scores sorted descending.
	for i := 1; i < len(ns); i++ {
		if ns[i].Score > ns[i-1].Score {
			t.Fatal("neighbours not sorted")
		}
	}
}

func TestNearestSelfIsTop(t *testing.T) {
	e := buildEmbeddings(t, 1000, 6, 0)
	vq, _ := e.Vector("queen")
	ns := e.Nearest(vq, 1)
	if len(ns) == 0 || ns[0].Word != "queen" {
		t.Errorf("nearest to queen = %+v", ns)
	}
	if math.Abs(ns[0].Score-1) > 1e-9 {
		t.Errorf("self-similarity = %v", ns[0].Score)
	}
}

func TestAnalogyUnknownWord(t *testing.T) {
	e := buildEmbeddings(t, 500, 7, 0)
	if _, ok := e.Analogy("man", "woman", "xylophone"); ok {
		t.Error("analogy with unknown word succeeded")
	}
}

func TestVectorUnknown(t *testing.T) {
	e := buildEmbeddings(t, 500, 8, 0)
	if _, ok := e.Vector("nope"); ok {
		t.Error("unknown vector found")
	}
}
