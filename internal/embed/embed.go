// Package embed implements the word-embedding pipeline of the paper's §5:
// the co-occurrence matrix M_N (Eq. 7's embedding map ι), the PPMI
// transform that underlies the Eq. 10 co-occurrence-ratio explanation of
// analogies, PCA compression of the high-dimensional columns, nearest-
// neighbour search, and vector-arithmetic analogy solving (Eq. 9).
package embed

import (
	"math"
	"sort"
	"strings"

	"repro/internal/mathx"
)

// Vocabulary maps words to contiguous ids in first-appearance order.
type Vocabulary struct {
	idOf   map[string]int
	wordOf []string
}

// NewVocabulary builds a vocabulary from whitespace-tokenized lines.
func NewVocabulary(lines []string) *Vocabulary {
	v := &Vocabulary{idOf: map[string]int{}}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			if _, ok := v.idOf[w]; !ok {
				v.idOf[w] = len(v.wordOf)
				v.wordOf = append(v.wordOf, w)
			}
		}
	}
	return v
}

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.wordOf) }

// ID returns the id of w and whether it is known.
func (v *Vocabulary) ID(w string) (int, bool) {
	id, ok := v.idOf[w]
	return id, ok
}

// Word returns the surface form of id.
func (v *Vocabulary) Word(id int) string { return v.wordOf[id] }

// Cooccurrence builds the symmetric co-occurrence matrix M over lines: entry
// (w, w') counts the occurrences of w' within window positions of w.
// This is the N-gram co-occurrence matrix of §5 with N = window+1.
func Cooccurrence(lines []string, v *Vocabulary, window int) *mathx.Mat {
	m := mathx.NewMat(v.Size(), v.Size())
	for _, l := range lines {
		words := strings.Fields(l)
		ids := make([]int, 0, len(words))
		for _, w := range words {
			if id, ok := v.idOf[w]; ok {
				ids = append(ids, id)
			}
		}
		for i, wi := range ids {
			for j := i + 1; j <= i+window && j < len(ids); j++ {
				wj := ids[j]
				m.Set(wi, wj, m.At(wi, wj)+1)
				m.Set(wj, wi, m.At(wj, wi)+1)
			}
		}
	}
	return m
}

// PPMI transforms a co-occurrence matrix into positive pointwise mutual
// information: max(0, log( P(w,c) / (P(w)P(c)) )). PMI ratios are exactly
// the statistics the paper's Eq. 10 invokes to explain analogy structure.
func PPMI(m *mathx.Mat) *mathx.Mat {
	n := m.Rows
	rowSum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowSum[i] += m.At(i, j)
		}
		total += rowSum[i]
	}
	out := mathx.NewMat(n, n)
	if total == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		if rowSum[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			c := m.At(i, j)
			if c == 0 || rowSum[j] == 0 {
				continue
			}
			pmi := math.Log(c * total / (rowSum[i] * rowSum[j]))
			if pmi > 0 {
				out.Set(i, j, pmi)
			}
		}
	}
	return out
}

// Embeddings holds one vector per word.
type Embeddings struct {
	Vocab *Vocabulary
	Vecs  *mathx.Mat // Size() × dim
}

// FromMatrix treats each row of m as the embedding of the corresponding
// word (the raw column/row-of-M_N embedding of §5).
func FromMatrix(v *Vocabulary, m *mathx.Mat) *Embeddings {
	return &Embeddings{Vocab: v, Vecs: m}
}

// Compress projects the embeddings onto their top-k principal components —
// the §5 "standard statistical cure" for high-dimensional sparse columns
// and the §7 compression discussion.
func (e *Embeddings) Compress(k int, rng *mathx.RNG) *Embeddings {
	proj, _ := mathx.PCA(e.Vecs, k, true, rng)
	return &Embeddings{Vocab: e.Vocab, Vecs: proj}
}

// Vector returns the embedding of word w, or ok=false if unknown.
func (e *Embeddings) Vector(w string) ([]float64, bool) {
	id, ok := e.Vocab.ID(w)
	if !ok {
		return nil, false
	}
	return e.Vecs.Row(id), true
}

// Dim returns the embedding dimensionality.
func (e *Embeddings) Dim() int { return e.Vecs.Cols }

// Neighbor is a scored word.
type Neighbor struct {
	Word  string
	Score float64
}

// Nearest returns the k words most cosine-similar to the query vector,
// excluding the words in exclude.
func (e *Embeddings) Nearest(query []float64, k int, exclude ...string) []Neighbor {
	ex := map[string]bool{}
	for _, w := range exclude {
		ex[w] = true
	}
	var ns []Neighbor
	for id := 0; id < e.Vocab.Size(); id++ {
		w := e.Vocab.Word(id)
		if ex[w] {
			continue
		}
		ns = append(ns, Neighbor{Word: w, Score: mathx.CosineSimilarity(query, e.Vecs.Row(id))})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Score != ns[j].Score {
			return ns[i].Score > ns[j].Score
		}
		return ns[i].Word < ns[j].Word
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// Analogy solves "a is to b as c is to ?" by the Eq. 9 vector arithmetic
// ι(b) - ι(a) + ι(c) and returns the nearest word (excluding a, b, c).
func (e *Embeddings) Analogy(a, b, c string) (string, bool) {
	va, ok1 := e.Vector(a)
	vb, ok2 := e.Vector(b)
	vc, ok3 := e.Vector(c)
	if !ok1 || !ok2 || !ok3 {
		return "", false
	}
	q := make([]float64, len(va))
	for i := range q {
		q[i] = vb[i] - va[i] + vc[i]
	}
	ns := e.Nearest(q, 1, a, b, c)
	if len(ns) == 0 {
		return "", false
	}
	return ns[0].Word, true
}

// AnalogyQuad is one analogy test item: A:B :: C:D.
type AnalogyQuad struct{ A, B, C, D string }

// AnalogyAccuracy scores the fraction of quads solved exactly.
func (e *Embeddings) AnalogyAccuracy(quads []AnalogyQuad) float64 {
	if len(quads) == 0 {
		return 0
	}
	correct := 0
	for _, q := range quads {
		if got, ok := e.Analogy(q.A, q.B, q.C); ok && got == q.D {
			correct++
		}
	}
	return float64(correct) / float64(len(quads))
}

// StandardQuads returns the gender/royalty analogy test set matching the
// vocabulary of corpus.AnalogyCorpus.
func StandardQuads() []AnalogyQuad {
	return []AnalogyQuad{
		{"man", "woman", "king", "queen"},
		{"king", "queen", "man", "woman"},
		{"man", "woman", "prince", "princess"},
		{"prince", "princess", "king", "queen"},
		{"man", "woman", "actor", "actress"},
		{"man", "woman", "father", "mother"},
		{"man", "woman", "brother", "sister"},
		{"king", "queen", "father", "mother"},
	}
}
