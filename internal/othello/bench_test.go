package othello

import (
	"testing"

	"repro/internal/mathx"
)

func BenchmarkLegalMoves(b *testing.B) {
	rng := mathx.NewRNG(1)
	g := RandomGame(8, 30, rng)
	mid := g.States[len(g.States)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mid.LegalMoves()
	}
}

func BenchmarkRandomGame(b *testing.B) {
	rng := mathx.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomGame(8, 60, rng)
	}
}
