// Package othello implements the board game used by the paper's §7
// world-model probing experiment (Li et al's Othello-GPT): full rules on an
// n×n board (8×8 standard; 6×6 for fast tests), legal-move generation,
// flip application, and random legal self-play game generation. The "main
// point" the paper highlights — that the function from move sequences to
// board state is easily computable yet nonlocal and nonlinear — is exactly
// what this engine provides ground truth for.
package othello

import (
	"fmt"
	"strings"

	"repro/internal/mathx"
)

// Cell contents.
type Cell int8

// Board cell states.
const (
	Empty Cell = 0
	Black Cell = 1
	White Cell = 2
)

// Opponent returns the other player.
func Opponent(c Cell) Cell {
	switch c {
	case Black:
		return White
	case White:
		return Black
	}
	return Empty
}

// Board is an n×n Othello position with the player to move.
type Board struct {
	N      int
	Cells  []Cell // row-major, len N*N
	ToMove Cell
}

var dirs = [8][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}

// NewBoard returns the standard initial position on an n×n board (n even,
// n >= 4): the four centre squares alternately filled, Black to move.
func NewBoard(n int) *Board {
	if n < 4 || n%2 != 0 {
		panic("othello: board size must be even and >= 4")
	}
	b := &Board{N: n, Cells: make([]Cell, n*n), ToMove: Black}
	h := n / 2
	b.set(h-1, h-1, White)
	b.set(h, h, White)
	b.set(h-1, h, Black)
	b.set(h, h-1, Black)
	return b
}

func (b *Board) at(r, c int) Cell     { return b.Cells[r*b.N+c] }
func (b *Board) set(r, c int, v Cell) { b.Cells[r*b.N+c] = v }
func (b *Board) inside(r, c int) bool { return r >= 0 && r < b.N && c >= 0 && c < b.N }

// Clone returns a deep copy.
func (b *Board) Clone() *Board {
	return &Board{N: b.N, Cells: append([]Cell(nil), b.Cells...), ToMove: b.ToMove}
}

// Move is a square index r*N + c.
type Move int

// RC converts a move to row, column on an n×n board.
func (m Move) RC(n int) (int, int) { return int(m) / n, int(m) % n }

// Notation renders a move in algebraic form ("E3": column letter + 1-based
// row), the encoding the paper quotes for Othello-GPT inputs.
func (m Move) Notation(n int) string {
	r, c := m.RC(n)
	return fmt.Sprintf("%c%d", 'A'+c, r+1)
}

// flips returns the list of opponent stones flipped by playing mv for the
// side to move, or nil when the move is illegal.
func (b *Board) flips(mv Move) []int {
	r0, c0 := mv.RC(b.N)
	if !b.inside(r0, c0) || b.at(r0, c0) != Empty {
		return nil
	}
	me := b.ToMove
	opp := Opponent(me)
	var all []int
	for _, d := range dirs {
		var line []int
		r, c := r0+d[0], c0+d[1]
		for b.inside(r, c) && b.at(r, c) == opp {
			line = append(line, r*b.N+c)
			r, c = r+d[0], c+d[1]
		}
		if len(line) > 0 && b.inside(r, c) && b.at(r, c) == me {
			all = append(all, line...)
		}
	}
	return all
}

// LegalMoves lists the legal moves for the side to move, in ascending
// square order.
func (b *Board) LegalMoves() []Move {
	var ms []Move
	for i := 0; i < b.N*b.N; i++ {
		if len(b.flips(Move(i))) > 0 {
			ms = append(ms, Move(i))
		}
	}
	return ms
}

// IsLegal reports whether mv is legal for the side to move.
func (b *Board) IsLegal(mv Move) bool { return len(b.flips(mv)) > 0 }

// Play applies mv for the side to move, flipping captured stones, then
// advances the turn (passing automatically if the opponent has no move;
// if neither side can move the game is over and ToMove is Empty).
// It returns an error for illegal moves.
func (b *Board) Play(mv Move) error {
	fl := b.flips(mv)
	if len(fl) == 0 {
		return fmt.Errorf("othello: illegal move %s", mv.Notation(b.N))
	}
	r, c := mv.RC(b.N)
	b.set(r, c, b.ToMove)
	for _, i := range fl {
		b.Cells[i] = b.ToMove
	}
	next := Opponent(b.ToMove)
	b.ToMove = next
	if len(b.LegalMoves()) == 0 {
		b.ToMove = Opponent(next) // pass back
		if len(b.LegalMoves()) == 0 {
			b.ToMove = Empty // game over
		}
	}
	return nil
}

// GameOver reports whether neither player can move.
func (b *Board) GameOver() bool { return b.ToMove == Empty }

// Count returns the number of stones of each colour.
func (b *Board) Count() (black, white int) {
	for _, c := range b.Cells {
		switch c {
		case Black:
			black++
		case White:
			white++
		}
	}
	return black, white
}

// String renders the board for debugging.
func (b *Board) String() string {
	var sb strings.Builder
	sym := map[Cell]byte{Empty: '.', Black: 'X', White: 'O'}
	for r := 0; r < b.N; r++ {
		for c := 0; c < b.N; c++ {
			sb.WriteByte(sym[b.at(r, c)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Game is a complete random-legal game: the move list and the board state
// before each move (the probe targets of experiment E9).
type Game struct {
	N      int
	Moves  []Move
	States []*Board // States[i] is the position in which Moves[i] was played
	Final  *Board
}

// RandomGame plays uniformly random legal moves until the game ends or
// maxMoves is reached.
func RandomGame(n, maxMoves int, rng *mathx.RNG) *Game {
	b := NewBoard(n)
	g := &Game{N: n}
	for len(g.Moves) < maxMoves && !b.GameOver() {
		ms := b.LegalMoves()
		if len(ms) == 0 {
			break
		}
		mv := ms[rng.Intn(len(ms))]
		g.States = append(g.States, b.Clone())
		g.Moves = append(g.Moves, mv)
		if err := b.Play(mv); err != nil {
			panic(err) // unreachable: mv came from LegalMoves
		}
	}
	g.Final = b
	return g
}

// Corpus generates m random games.
func Corpus(m, n, maxMoves int, rng *mathx.RNG) []*Game {
	gs := make([]*Game, m)
	for i := range gs {
		gs[i] = RandomGame(n, maxMoves, rng)
	}
	return gs
}

// VocabSize returns the move-token vocabulary for an n×n board: one token
// per square plus a BOS token (index n²).
func VocabSize(n int) int { return n*n + 1 }

// BOSToken is the sequence-start token id for an n×n board.
func BOSToken(n int) int { return n * n }

// EncodeMoves converts a game's moves to a token sequence with leading BOS,
// the input format of the next-move-prediction model.
func EncodeMoves(g *Game) []int {
	out := make([]int, 0, len(g.Moves)+1)
	out = append(out, BOSToken(g.N))
	for _, m := range g.Moves {
		out = append(out, int(m))
	}
	return out
}
