package othello

import (
	"testing"

	"repro/internal/mathx"
)

func TestNewBoardSetup(t *testing.T) {
	b := NewBoard(8)
	black, white := b.Count()
	if black != 2 || white != 2 {
		t.Fatalf("initial stones: %d black %d white", black, white)
	}
	if b.at(3, 3) != White || b.at(4, 4) != White || b.at(3, 4) != Black || b.at(4, 3) != Black {
		t.Fatalf("initial layout wrong:\n%s", b)
	}
	if b.ToMove != Black {
		t.Fatal("black should move first")
	}
}

func TestNewBoardValidation(t *testing.T) {
	for _, n := range []int{3, 5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d accepted", n)
				}
			}()
			NewBoard(n)
		}()
	}
}

func TestInitialLegalMoves(t *testing.T) {
	b := NewBoard(8)
	ms := b.LegalMoves()
	if len(ms) != 4 {
		t.Fatalf("initial legal moves = %d, want 4 (%v)", len(ms), ms)
	}
	// The classic four: D3, C4, F5, E6 → (r2,c3), (r3,c2), (r4,c5), (r5,c4).
	want := map[Move]bool{Move(2*8 + 3): true, Move(3*8 + 2): true, Move(4*8 + 5): true, Move(5*8 + 4): true}
	for _, m := range ms {
		if !want[m] {
			t.Errorf("unexpected legal move %s", m.Notation(8))
		}
	}
}

func TestPlayFlips(t *testing.T) {
	b := NewBoard(8)
	// Black D3 (row 2, col 3) flips D4 (row 3, col 3).
	if err := b.Play(Move(2*8 + 3)); err != nil {
		t.Fatal(err)
	}
	if b.at(3, 3) != Black {
		t.Fatalf("flip missing:\n%s", b)
	}
	black, white := b.Count()
	if black != 4 || white != 1 {
		t.Fatalf("after first move: %d black, %d white", black, white)
	}
	if b.ToMove != White {
		t.Fatal("turn did not pass")
	}
}

func TestIllegalMoveRejected(t *testing.T) {
	b := NewBoard(8)
	if err := b.Play(Move(0)); err == nil {
		t.Fatal("corner accepted as first move")
	}
	if err := b.Play(Move(3*8 + 3)); err == nil {
		t.Fatal("occupied square accepted")
	}
}

func TestNotation(t *testing.T) {
	if got := Move(2*8 + 4).Notation(8); got != "E3" {
		t.Errorf("notation = %q, want E3", got)
	}
	if got := Move(0).Notation(8); got != "A1" {
		t.Errorf("notation = %q, want A1", got)
	}
}

// TestStoneCountInvariant: total stones grow by exactly one per move.
func TestStoneCountInvariant(t *testing.T) {
	rng := mathx.NewRNG(1)
	b := NewBoard(6)
	prev, _ := b.Count()
	prevW := 0
	_, prevW = b.Count()
	for !b.GameOver() {
		ms := b.LegalMoves()
		if len(ms) == 0 {
			break
		}
		if err := b.Play(ms[rng.Intn(len(ms))]); err != nil {
			t.Fatal(err)
		}
		bl, wh := b.Count()
		if bl+wh != prev+prevW+1 {
			t.Fatalf("stones %d+%d, expected %d", bl, wh, prev+prevW+1)
		}
		prev, prevW = bl, wh
	}
}

// TestFlipsAreSandwiched: every flipped stone lies strictly between the new
// stone and an existing own stone along some direction (the defining rule).
func TestFlipsAreSandwiched(t *testing.T) {
	rng := mathx.NewRNG(2)
	for trial := 0; trial < 10; trial++ {
		b := NewBoard(6)
		for step := 0; step < 10 && !b.GameOver(); step++ {
			ms := b.LegalMoves()
			if len(ms) == 0 {
				break
			}
			mv := ms[rng.Intn(len(ms))]
			me := b.ToMove
			before := b.Clone()
			if err := b.Play(mv); err != nil {
				t.Fatal(err)
			}
			// Every cell that changed colour (other than the placed one)
			// must previously have held the opponent.
			r0, c0 := mv.RC(6)
			for i, c := range b.Cells {
				if before.Cells[i] != c && i != r0*6+c0 {
					if before.Cells[i] != Opponent(me) || c != me {
						t.Fatalf("illegal flip at %d: %v -> %v", i, before.Cells[i], c)
					}
				}
			}
		}
	}
}

func TestRandomGameEndsLegally(t *testing.T) {
	rng := mathx.NewRNG(3)
	g := RandomGame(6, 64, rng)
	if len(g.Moves) == 0 {
		t.Fatal("empty game")
	}
	if len(g.Moves) != len(g.States) {
		t.Fatalf("moves %d != states %d", len(g.Moves), len(g.States))
	}
	// Replay: each recorded state must accept its recorded move.
	for i, st := range g.States {
		if !st.IsLegal(g.Moves[i]) {
			t.Fatalf("recorded move %d illegal in its state", i)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(3, 6, 20, mathx.NewRNG(7))
	b := Corpus(3, 6, 20, mathx.NewRNG(7))
	for i := range a {
		if len(a[i].Moves) != len(b[i].Moves) {
			t.Fatal("nondeterministic corpus")
		}
		for j := range a[i].Moves {
			if a[i].Moves[j] != b[i].Moves[j] {
				t.Fatal("nondeterministic moves")
			}
		}
	}
}

func TestEncodeMoves(t *testing.T) {
	rng := mathx.NewRNG(4)
	g := RandomGame(6, 10, rng)
	ids := EncodeMoves(g)
	if ids[0] != BOSToken(6) {
		t.Fatalf("missing BOS: %v", ids[0])
	}
	if len(ids) != len(g.Moves)+1 {
		t.Fatalf("length %d", len(ids))
	}
	for _, id := range ids {
		if id < 0 || id >= VocabSize(6) {
			t.Fatalf("token %d out of vocab", id)
		}
	}
}

func TestPassHandling(t *testing.T) {
	// Construct a position where one side must pass: fill a small board so
	// White has no move after Black's move. We verify via random play on 4×4
	// boards that ToMove is never a player with zero legal moves.
	rng := mathx.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		b := NewBoard(4)
		for !b.GameOver() {
			ms := b.LegalMoves()
			if len(ms) == 0 {
				t.Fatalf("player to move has no moves but game not over:\n%s", b)
			}
			if err := b.Play(ms[rng.Intn(len(ms))]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFullGameFillsOrBlocks(t *testing.T) {
	rng := mathx.NewRNG(6)
	g := RandomGame(8, 100, rng)
	black, white := g.Final.Count()
	total := black + white
	if total < 10 {
		t.Errorf("game ended after only %d stones", total)
	}
	if !g.Final.GameOver() && len(g.Moves) < 100 {
		t.Error("game stopped early without being over")
	}
}
