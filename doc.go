// Package repro is a pure-Go, stdlib-only reproduction of the systems and
// experiments described in "Large Language Models: Principles and Practice"
// (the LLM tutorial literature). The public API lives in package llm; the
// substrates live under internal/; the root-level benchmarks regenerate
// every table and figure of the paper's evaluation (see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for measured results).
package repro
